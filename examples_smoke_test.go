package perseas_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end-to-end and checks
// its key output lines. These are the repository's acceptance tests:
// each example exercises a different deployment (in-process SCI model,
// real TCP mirrors, failure injection).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples spawn `go run`; skipped in -short mode")
	}
	tests := []struct {
		dir  string
		args []string
		want []string
	}{
		{"./examples/quickstart", nil, []string{
			`database:   "hello, durable world!"`,
			"committed:  tx 1",
		}},
		{"./examples/bank", []string{"-accounts", "100", "-transfers", "400"}, []string{
			"consistent",
		}},
		{"./examples/orderentry", nil, []string{
			"phase 3: recovered — 200 orders on the books",
			"= 500000 (expected 500000)",
		}},
		{"./examples/crashcourse", nil, []string{
			"scene 1: v1------",
			"scene 2: v1------",
			"scene 3: v2------",
			"scene 4: v3------",
		}},
		{"./examples/kvstore", nil, []string{
			"after recovery:",
			"ada      = countess",
			"dolphin    (absent)",
		}},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(strings.TrimPrefix(tt.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			args := append([]string{"run", tt.dir}, tt.args...)
			out, err := exec.Command("go", args...).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", tt.dir, err, out)
			}
			for _, want := range tt.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}
