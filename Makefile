# PERSEAS — build, test and experiment targets.

GO ?= go

.PHONY: all check build vet test test-short test-race bench bench-obs bench-fanout bench-quorum bench-shard bench-server bench-recovery experiments fuzz examples clean

all: build vet test

# The full pre-merge gate: build, vet, tests, and the race detector.
check: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Concurrent transaction handles make the race detector a first-class
# gate, not an optional extra.
test-race:
	$(GO) test -race ./...

# Skips the soak test and the `go run` example harness.
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Observability hot paths only: histogram Observe plus the trace and
# flight recorders' disabled/enabled costs. The disabled numbers must
# stay under 100ns — they ride on every commit.
bench-obs:
	$(GO) test -bench=. -benchmem -run='^$$' ./internal/obs/ ./internal/trace/ ./internal/flight/

# Mirror fan-out microbenchmark: Push over 1/2/4 delayed mirrors,
# serial loop vs parallel fan-out, plus the loopback-TCP commit-path
# comparison. Writes machine-readable results to BENCH_fanout.json.
bench-fanout:
	$(GO) run ./cmd/perseas-bench -experiment fanout -bench-out BENCH_fanout.json
	$(GO) run ./cmd/perseas-bench -experiment commitpath -tcp -mirrors 2 -txs 300

bench-quorum:
	$(GO) run ./cmd/perseas-bench -experiment fanout -quorum 2 -txs 2000 -bench-out BENCH_quorum.json

# Shard scaling sweep: the same workload against 1, 2 and 4 complete
# PERSEAS instances behind the router, each mirror link modelled as a
# serialised fixed-latency pipe. Writes machine-readable results to
# BENCH_shard.json; 2 shards must clear 1.6x aggregate throughput.
bench-shard:
	$(GO) run ./cmd/perseas-bench -experiment shard -txs 2000 -bench-out BENCH_shard.json

# Crash-recovery and rebuild sweep: recovery wall-clock at 1/2/4
# workers and mirror rebuild at pipeline depth 1/2, each mirror link a
# serialised fixed-latency pipe. Writes machine-readable results to
# BENCH_recovery.json; 4 workers must clear 2x on recovery and depth 2
# must clear 1.5x on rebuild.
bench-recovery:
	$(GO) run ./cmd/perseas-bench -experiment recovery -bench-out BENCH_recovery.json

# Transaction front-door sweep: group commit vs serial commits as
# clients pile onto one tx server over loopback TCP. Writes
# machine-readable results to BENCH_server.json; group commit must beat
# serial on tx/s at the top of the client sweep.
bench-server:
	$(GO) run ./cmd/perseas-bench -experiment server -bench-out BENCH_server.json

# Regenerate every table and figure of the paper.
experiments:
	$(GO) run ./cmd/perseas-bench -experiment all

# Short fuzzing passes over every decoder.
fuzz:
	$(GO) test -run xxx -fuzz FuzzDecodeRequest -fuzztime 30s ./internal/wire/
	$(GO) test -run xxx -fuzz FuzzDecodeResponse -fuzztime 30s ./internal/wire/
	$(GO) test -run xxx -fuzz FuzzDecodeTxStats -fuzztime 30s ./internal/wire/
	$(GO) test -run xxx -fuzz FuzzDecodeRecord -fuzztime 30s ./internal/aries/
	$(GO) test -run xxx -fuzz FuzzDecodeCheckpoint -fuzztime 30s ./internal/aries/
	$(GO) test -run xxx -fuzz FuzzParseRecord -fuzztime 30s ./internal/core/
	$(GO) test -run xxx -fuzz FuzzScanUndoLog -fuzztime 30s ./internal/core/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/bank -accounts 200 -transfers 1000
	$(GO) run ./examples/orderentry
	$(GO) run ./examples/crashcourse
	$(GO) run ./examples/kvstore

clean:
	$(GO) clean ./...
