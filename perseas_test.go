package perseas_test

import (
	"testing"

	perseas "github.com/ics-forth/perseas"
)

func TestFacadeEndToEnd(t *testing.T) {
	cluster, err := perseas.NewLocalCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := perseas.Init(cluster.RAM, cluster.Clock)
	if err != nil {
		t.Fatal(err)
	}
	db, err := lib.CreateDB("db", 128)
	if err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes(), "initial state")
	if err := lib.InitDB(db); err != nil {
		t.Fatal(err)
	}

	tx, err := lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 13); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes(), "updated state")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Crash and attach from a "different workstation".
	if err := lib.Crash(perseas.CrashPower); err != nil {
		t.Fatal(err)
	}
	takeover, err := perseas.Attach(cluster.RAM, cluster.Clock)
	if err != nil {
		t.Fatal(err)
	}
	re, err := takeover.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[:13]); got != "updated state" {
		t.Errorf("recovered %q", got)
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := perseas.NewLocalCluster(0); err == nil {
		t.Error("empty cluster should be rejected")
	}
	if _, err := perseas.DialMirrors(); err == nil {
		t.Error("DialMirrors with no addresses should be rejected")
	}
	if _, err := perseas.DialMirrors("127.0.0.1:1"); err == nil {
		t.Error("DialMirrors to a dead port should fail")
	}
}

func TestFacadeOptions(t *testing.T) {
	cluster, err := perseas.NewLocalCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := perseas.Init(cluster.RAM, cluster.Clock,
		perseas.WithUndoLogSize(1<<16),
		perseas.WithMemModel(perseas.DefaultMemModel()))
	if err != nil {
		t.Fatal(err)
	}
	db, err := lib.CreateDB("db", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.InitDB(db); err != nil {
		t.Fatal(err)
	}
	tx, err := lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	// The configured 64 KiB undo log cannot hold a 128 KiB range.
	if err := tx.SetRange(db, 0, 1<<17); err == nil {
		t.Fatal("oversized SetRange should overflow the configured undo log")
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
}
