// Go benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark reports two numbers:
//
//   - ns/op — real host time (dominated by the byte copies the engines
//     actually perform);
//   - sim-us/tx and sim-tps — the calibrated virtual-clock measurements
//     that correspond to the paper's published latencies/throughputs.
//
// Run with: go test -bench=. -benchmem
package perseas_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/ics-forth/perseas/internal/bench"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/rig"
	"github.com/ics-forth/perseas/internal/sci"
)

// reportSim attaches the virtual-clock metrics to a benchmark.
func reportSim(b *testing.B, res bench.Result) {
	b.Helper()
	b.ReportMetric(float64(res.PerTx.Nanoseconds())/1e3, "sim-us/tx")
	b.ReportMetric(res.TPS, "sim-tps")
}

// benchWorkload runs b.N transactions of a workload on one engine.
func benchWorkload(b *testing.B, builder rig.Builder, mk func() (bench.Workload, error)) {
	b.Helper()
	lab, err := builder.Build(rig.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer lab.Engine.Close()
	w, err := mk()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	res, err := bench.Run(lab.Engine, lab.Clock, w, b.N, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	reportSim(b, res)
}

// BenchmarkFigure5SCIRemoteWrite regenerates Fig. 5: the latency of one
// SCI remote store at word offset 0, for the paper's 4..200-byte range.
func BenchmarkFigure5SCIRemoteWrite(b *testing.B) {
	for _, size := range []int{4, 16, 32, 64, 128, 200} {
		size := size
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			card, err := sci.New(sci.DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			var last int64
			for i := 0; i < b.N; i++ {
				last = card.StoreLatency(0, size).Nanoseconds()
			}
			b.ReportMetric(float64(last)/1e3, "sim-us/store")
		})
	}
}

// BenchmarkFigure6SyntheticSweep regenerates Fig. 6: PERSEAS transaction
// overhead versus transaction size, 4 bytes to 1 MByte.
func BenchmarkFigure6SyntheticSweep(b *testing.B) {
	for _, size := range []uint64{4, 64, 1024, 16384, 262144, 1 << 20} {
		size := size
		b.Run(fmt.Sprintf("txsize=%d", size), func(b *testing.B) {
			benchWorkload(b, rig.Builder{Name: "perseas", Build: rig.NewPerseas},
				func() (bench.Workload, error) { return bench.NewSynthetic(2<<20, size) })
		})
	}
}

// BenchmarkTable1DebitCredit regenerates the debit-credit row of
// Table 1: PERSEAS throughput on the TPC-B-like banking workload.
func BenchmarkTable1DebitCredit(b *testing.B) {
	benchWorkload(b, rig.Builder{Name: "perseas", Build: rig.NewPerseas},
		func() (bench.Workload, error) { return bench.NewDebitCredit(0, 0) })
}

// BenchmarkTable1OrderEntry regenerates the order-entry row of Table 1:
// PERSEAS throughput on the TPC-C-like wholesale-supplier workload.
func BenchmarkTable1OrderEntry(b *testing.B) {
	benchWorkload(b, rig.Builder{Name: "perseas", Build: rig.NewPerseas},
		func() (bench.Workload, error) { return bench.NewOrderEntry(0, 0, 0) })
}

// BenchmarkComparisonDebitCredit regenerates the Section 5.1 comparison
// on debit-credit: every engine the paper discusses.
func BenchmarkComparisonDebitCredit(b *testing.B) {
	for _, builder := range rig.All() {
		builder := builder
		b.Run(builder.Name, func(b *testing.B) {
			benchWorkload(b, builder,
				func() (bench.Workload, error) { return bench.NewDebitCredit(2, 500) })
		})
	}
}

// BenchmarkComparisonSynthetic regenerates the Section 5.1 small-
// transaction comparison (the "orders of magnitude" claim).
func BenchmarkComparisonSynthetic(b *testing.B) {
	for _, builder := range rig.All() {
		builder := builder
		b.Run(builder.Name, func(b *testing.B) {
			benchWorkload(b, builder,
				func() (bench.Workload, error) { return bench.NewSynthetic(1<<20, 64) })
		})
	}
}

// BenchmarkDBSizeInvariance regenerates the Section 5.1 observation that
// PERSEAS throughput is almost constant while the database fits in RAM.
func BenchmarkDBSizeInvariance(b *testing.B) {
	for _, branches := range []int{1, 4, 16} {
		branches := branches
		b.Run(fmt.Sprintf("branches=%d", branches), func(b *testing.B) {
			benchWorkload(b, rig.Builder{Name: "perseas", Build: rig.NewPerseas},
				func() (bench.Workload, error) { return bench.NewDebitCredit(branches, 2500) })
		})
	}
}

// BenchmarkAblation regenerates the design-choice ablation table.
func BenchmarkAblation(b *testing.B) {
	configs := []struct {
		name   string
		mutate func(*rig.Config)
	}{
		{"default", func(*rig.Config) {}},
		{"no-alignment", func(c *rig.Config) { c.NoAlignment = true }},
		{"no-remote-undo", func(c *rig.Config) { c.NoRemoteUndo = true }},
		{"mirrors-2", func(c *rig.Config) { c.Mirrors = 2 }},
		{"mirrors-3", func(c *rig.Config) { c.Mirrors = 3 }},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			benchWorkload(b,
				rig.Builder{Name: "perseas", Build: func(c rig.Config) (*rig.Lab, error) {
					cfg.mutate(&c)
					return rig.NewPerseas(c)
				}},
				func() (bench.Workload, error) { return bench.NewDebitCredit(0, 0) })
		})
	}
}

// BenchmarkRecovery measures the paper's "simple and efficient recovery":
// full crash-and-attach cycles, including rolling back an in-flight
// transaction.
func BenchmarkRecovery(b *testing.B) {
	lab, err := rig.NewPerseas(rig.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	db, err := lab.Engine.CreateDB("db", 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	if err := lab.Engine.InitDB(db); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, err := lab.Engine.Begin()
		if err != nil {
			b.Fatal(err)
		}
		off := uint64(rng.Intn(1 << 19))
		if err := tx.SetRange(db, off, 256); err != nil {
			b.Fatal(err)
		}
		if err := lab.Engine.Crash(fault.AllKinds()[i%3]); err != nil {
			b.Fatal(err)
		}
		if err := lab.Engine.Recover(); err != nil {
			b.Fatal(err)
		}
		re, err := lab.Engine.OpenDB("db")
		if err != nil {
			b.Fatal(err)
		}
		db = re
	}
}

// BenchmarkExtraARIES measures the ARIES reference baseline (cited by
// the paper as a WAL exemplar) on debit-credit: like RVM, it commits at
// magnetic-disk latency — the cost PERSEAS removes.
func BenchmarkExtraARIES(b *testing.B) {
	benchWorkload(b, rig.Builder{Name: "aries", Build: rig.NewARIES},
		func() (bench.Workload, error) { return bench.NewDebitCredit(2, 500) })
}
