// Package enginetest is a conformance and crash-consistency suite run
// against every transaction engine in this repository — PERSEAS and all
// baselines. It checks the engine.Engine contract (handle state machine,
// visibility, abort semantics) and then drives randomised workloads with
// crash injection at arbitrary points — including from concurrent
// goroutines — asserting all-or-nothing transaction visibility after
// recovery.
package enginetest

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
)

// Caps declares which guarantees an engine makes, so the suite can assert
// exactly those.
type Caps struct {
	// SurvivesKind reports whether durable state outlives a crash of
	// the given kind (e.g. Rio-based engines do not survive power loss).
	SurvivesKind func(fault.CrashKind) bool
	// DurableOnCommit is false for engines whose Commit may return
	// before the transaction is forced to stable storage (group
	// commit): such engines may lose a bounded suffix of committed
	// transactions in a crash.
	DurableOnCommit bool
	// LossWindow bounds how many committed transactions a crash may
	// lose when DurableOnCommit is false.
	LossWindow int
}

// Factory builds a fresh engine instance for one test case.
type Factory func(t *testing.T) engine.Engine

// Run executes the whole suite.
func Run(t *testing.T, name string, mk Factory, caps Caps) {
	t.Run(name+"/lifecycle", func(t *testing.T) { testLifecycle(t, mk) })
	t.Run(name+"/visibility", func(t *testing.T) { testVisibility(t, mk) })
	t.Run(name+"/abort", func(t *testing.T) { testAbort(t, mk) })
	t.Run(name+"/overlap", func(t *testing.T) { testOverlapUnwind(t, mk) })
	t.Run(name+"/multidb", func(t *testing.T) { testMultiDB(t, mk) })
	t.Run(name+"/badrange", func(t *testing.T) { testBadRange(t, mk) })
	t.Run(name+"/statemachine", func(t *testing.T) { testStateMachine(t, mk) })
	for _, kind := range fault.AllKinds() {
		kind := kind
		t.Run(fmt.Sprintf("%s/crash-%s", name, kind), func(t *testing.T) {
			testCrashRecover(t, mk, caps, kind)
		})
	}
	t.Run(name+"/random-crash", func(t *testing.T) { testRandomised(t, mk, caps) })
	t.Run(name+"/concurrent", func(t *testing.T) { testConcurrentCommits(t, mk) })
	for _, kind := range fault.AllKinds() {
		kind := kind
		t.Run(fmt.Sprintf("%s/concurrent-crash-%s", name, kind), func(t *testing.T) {
			testConcurrentCrash(t, mk, caps, kind)
		})
	}
}

func create(t *testing.T, e engine.Engine, name string, size uint64, fill byte) engine.DB {
	t.Helper()
	db, err := e.CreateDB(name, size)
	if err != nil {
		t.Fatalf("CreateDB: %v", err)
	}
	buf := db.Bytes()
	for i := range buf {
		buf[i] = fill
	}
	if err := e.InitDB(db); err != nil {
		t.Fatalf("InitDB: %v", err)
	}
	return db
}

func commitWrite(t *testing.T, e engine.Engine, db engine.DB, offset uint64, data []byte) {
	t.Helper()
	tx, err := e.Begin()
	if err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := tx.SetRange(db, offset, uint64(len(data))); err != nil {
		t.Fatalf("SetRange: %v", err)
	}
	copy(db.Bytes()[offset:], data)
	if err := tx.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func testLifecycle(t *testing.T, mk Factory) {
	e := mk(t)
	defer e.Close()
	db := create(t, e, "db", 256, 0x5A)
	if db.Name() != "db" || db.Size() != 256 {
		t.Fatalf("bad db handle: %s/%d", db.Name(), db.Size())
	}
	if got, err := e.OpenDB("db"); err != nil || got.Name() != "db" {
		t.Fatalf("OpenDB: %v", err)
	}
	if _, err := e.OpenDB("missing"); err == nil {
		t.Fatal("OpenDB(missing) should fail")
	}
	if _, err := e.CreateDB("db", 64); err == nil {
		t.Fatal("duplicate CreateDB should fail")
	}
}

func testVisibility(t *testing.T, mk Factory) {
	e := mk(t)
	defer e.Close()
	db := create(t, e, "db", 128, 0)
	commitWrite(t, e, db, 32, []byte("payload"))
	if got := string(db.Bytes()[32:39]); got != "payload" {
		t.Fatalf("committed data = %q", got)
	}
}

func testAbort(t *testing.T, mk Factory) {
	e := mk(t)
	defer e.Close()
	db := create(t, e, "db", 128, 0xCC)
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 64); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes(), bytes.Repeat([]byte{0xDD}, 64))
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(db.Bytes(), bytes.Repeat([]byte{0xCC}, 128)) {
		t.Fatal("abort did not restore before-image")
	}
}

func testOverlapUnwind(t *testing.T, mk Factory) {
	e := mk(t)
	defer e.Close()
	db := create(t, e, "db", 64, 0)
	commitWrite(t, e, db, 0, []byte("original"))

	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 8); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes(), []byte("mutated1"))
	if err := tx.SetRange(db, 2, 4); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[2:], []byte("XXXX"))
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := string(db.Bytes()[:8]); got != "original" {
		t.Fatalf("overlap unwind = %q, want original", got)
	}
}

func testMultiDB(t *testing.T, mk Factory) {
	e := mk(t)
	defer e.Close()
	a := create(t, e, "a", 64, 0)
	b := create(t, e, "b", 64, 0)
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(a, 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(b, 8, 4); err != nil {
		t.Fatal(err)
	}
	copy(a.Bytes(), []byte("AAAA"))
	copy(b.Bytes()[8:], []byte("BBBB"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if string(a.Bytes()[:4]) != "AAAA" || string(b.Bytes()[8:12]) != "BBBB" {
		t.Fatal("multi-db transaction lost writes")
	}
}

func testBadRange(t *testing.T, mk Factory) {
	e := mk(t)
	defer e.Close()
	db := create(t, e, "db", 64, 0)
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 60, 8); err == nil {
		t.Fatal("overflow SetRange should fail")
	}
	if err := tx.SetRange(db, 1<<40, 1); err == nil {
		t.Fatal("far-out SetRange should fail")
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
}

func testStateMachine(t *testing.T, mk Factory) {
	e := mk(t)
	defer e.Close()
	db := create(t, e, "db", 64, 0)

	// A committed handle is retired: every further operation fails.
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 4); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes(), []byte("abcd"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("Commit on retired handle should fail")
	}
	if err := tx.Abort(); err == nil {
		t.Fatal("Abort on retired handle should fail")
	}
	if err := tx.SetRange(db, 0, 4); err == nil {
		t.Fatal("SetRange on retired handle should fail")
	}

	// Abort retires the handle too.
	tx2, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err == nil {
		t.Fatal("double Abort should fail")
	}

	// Retired handles do not poison fresh ones.
	tx3, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
}

func testCrashRecover(t *testing.T, mk Factory, caps Caps, kind fault.CrashKind) {
	e := mk(t)
	defer e.Close()
	db := create(t, e, "db", 128, 0x11)
	commitWrite(t, e, db, 0, []byte("durable!"))

	// Leave a transaction in flight so recovery has something to roll
	// back.
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 8); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes(), []byte("garbage?"))

	if err := e.Crash(kind); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if _, err := e.Begin(); err == nil {
		t.Fatal("Begin while crashed should fail")
	}

	err = e.Recover()
	if !caps.SurvivesKind(kind) {
		if err == nil {
			t.Fatalf("Recover after %v crash should fail for this engine", kind)
		}
		return
	}
	if err != nil {
		t.Fatalf("Recover after %v crash: %v", kind, err)
	}
	re, err := e.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	got := string(re.Bytes()[:8])
	initial := string(bytes.Repeat([]byte{0x11}, 8))
	if caps.DurableOnCommit {
		if got != "durable!" {
			t.Fatalf("after %v crash recovered %q, want %q", kind, got, "durable!")
		}
	} else if got != "durable!" && got != initial {
		// A group-commit engine may lose the unforced commit, but must
		// recover atomically to a prior committed state.
		t.Fatalf("after %v crash recovered %q, want %q or the initial state", kind, got, "durable!")
	}
	if re.Bytes()[127] != 0x11 {
		t.Fatal("fill byte lost in recovery")
	}
	// The engine keeps working.
	commitWrite(t, e, re, 0, []byte("again123"))
}

// testRandomised drives random committed/aborted/crashed transactions
// against a reference model and checks all-or-nothing visibility.
func testRandomised(t *testing.T, mk Factory, caps Caps) {
	const (
		dbSize = 512
		seeds  = 8
		steps  = 60
	)
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			e := mk(t)
			defer e.Close()
			db := create(t, e, "db", dbSize, 0)

			// committedStates[i] is the db image after the i-th commit;
			// index 0 is the initial state.
			committed := [][]byte{bytes.Repeat([]byte{0}, dbSize)}

			for step := 0; step < steps; step++ {
				tx, err := e.Begin()
				if err != nil {
					t.Fatalf("step %d begin: %v", step, err)
				}
				work := append([]byte(nil), committed[len(committed)-1]...)
				nRanges := 1 + rng.Intn(3)
				for i := 0; i < nRanges; i++ {
					// A third of the ranges land in a 48-byte hot region
					// so transactions regularly declare overlapping
					// ranges — the pattern that distinguishes correct
					// reverse-order undo from subtly broken variants.
					var off uint64
					if rng.Intn(3) == 0 {
						off = uint64(rng.Intn(48))
					} else {
						off = uint64(rng.Intn(dbSize - 16))
					}
					ln := uint64(1 + rng.Intn(16))
					if err := tx.SetRange(db, off, ln); err != nil {
						t.Fatalf("step %d set_range: %v", step, err)
					}
					for j := uint64(0); j < ln; j++ {
						b := byte(rng.Intn(256))
						db.Bytes()[off+j] = b
						work[off+j] = b
					}
				}
				switch rng.Intn(10) {
				case 0, 1: // abort
					if err := tx.Abort(); err != nil {
						t.Fatalf("step %d abort: %v", step, err)
					}
					if !bytes.Equal(db.Bytes(), committed[len(committed)-1]) {
						t.Fatalf("step %d: abort left dirty state", step)
					}
				case 2: // crash mid-transaction
					kind := fault.AllKinds()[rng.Intn(3)]
					if err := e.Crash(kind); err != nil {
						t.Fatalf("step %d crash: %v", step, err)
					}
					err := e.Recover()
					if !caps.SurvivesKind(kind) {
						if err == nil {
							t.Fatalf("step %d: recovery should fail after %v", step, kind)
						}
						return // engine is legitimately dead
					}
					if err != nil {
						t.Fatalf("step %d recover: %v", step, err)
					}
					re, err := e.OpenDB("db")
					if err != nil {
						t.Fatalf("step %d reopen: %v", step, err)
					}
					db = re
					if !matchesSuffix(db.Bytes(), committed, caps) {
						t.Fatalf("step %d: post-crash state matches no committed state", step)
					}
					// Resynchronise the model with whichever state
					// survived.
					committed = [][]byte{append([]byte(nil), db.Bytes()...)}
				default: // commit
					if err := tx.Commit(); err != nil {
						t.Fatalf("step %d commit: %v", step, err)
					}
					committed = append(committed, work)
					if len(committed) > 40 {
						committed = committed[len(committed)-40:]
					}
				}
			}
		})
	}
}

// matchesSuffix reports whether state equals one of the recent committed
// states — exactly the last one for durable engines, any of the last
// LossWindow+1 for group-commit engines.
func matchesSuffix(state []byte, committed [][]byte, caps Caps) bool {
	window := 1
	if !caps.DurableOnCommit {
		window = caps.LossWindow + 1
	}
	for i := 0; i < window && i < len(committed); i++ {
		if bytes.Equal(state, committed[len(committed)-1-i]) {
			return true
		}
	}
	return false
}
