package enginetest

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
)

// testConcurrentCommits runs several goroutines, each committing a
// stream of transactions against its own database, and checks no update
// is lost. Natively concurrent engines interleave the transactions;
// sequential cores behind the adapter serialise them — both must end
// with every worker's writes intact.
func testConcurrentCommits(t *testing.T, mk Factory) {
	const (
		workers      = 4
		txsPerWorker = 25
		dbSize       = 256
	)
	e := mk(t)
	defer e.Close()

	dbs := make([]engine.DB, workers)
	models := make([][]byte, workers)
	for i := range dbs {
		dbs[i] = create(t, e, fmt.Sprintf("w%d", i), dbSize, 0)
		models[i] = make([]byte, dbSize)
	}

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + i)))
			// The buffer is cached once: Crash-free runs never invalidate
			// it, and engines may drop their buffer references during
			// concurrent lifecycle calls.
			buf := dbs[i].Bytes()
			model := models[i]
			for n := 0; n < txsPerWorker; n++ {
				tx, err := e.Begin()
				if err != nil {
					errs[i] = fmt.Errorf("tx %d begin: %w", n, err)
					return
				}
				off := uint64(rng.Intn(dbSize - 16))
				ln := uint64(1 + rng.Intn(16))
				if err := tx.SetRange(dbs[i], off, ln); err != nil {
					_ = tx.Abort()
					errs[i] = fmt.Errorf("tx %d set_range: %w", n, err)
					return
				}
				for j := uint64(0); j < ln; j++ {
					b := byte(rng.Intn(256))
					buf[off+j] = b
					model[off+j] = b
				}
				if err := tx.Commit(); err != nil {
					errs[i] = fmt.Errorf("tx %d commit: %w", n, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	for i := range dbs {
		if !bytes.Equal(dbs[i].Bytes(), models[i]) {
			t.Fatalf("worker %d: database diverged from its model", i)
		}
	}
}

// cWorker is the main-goroutine-visible state of one concurrent-crash
// worker. The worker mutates it exclusively until wg.Wait() returns.
type cWorker struct {
	db  engine.DB
	buf []byte
	// confirmed holds recent images whose Commit returned success, oldest
	// first; index 0 at start is the initial image.
	confirmed [][]byte
	// pending is the image of a Commit whose outcome the crash left
	// unknown (the call was in flight or errored after the decision
	// point). Nil when no commit can be half-decided.
	pending []byte
}

// allowedAfterCrash reports whether a recovered database image is an
// all-or-nothing outcome for this worker: the pending commit (fully
// applied) or one of the recent confirmed images — exactly the newest
// for durable-on-commit engines, any of the last LossWindow+1 otherwise.
func (w *cWorker) allowedAfterCrash(state []byte, caps Caps) bool {
	if w.pending != nil && bytes.Equal(state, w.pending) {
		return true
	}
	window := 1
	if !caps.DurableOnCommit {
		window = caps.LossWindow + 1
	}
	for i := 0; i < window && i < len(w.confirmed); i++ {
		if bytes.Equal(state, w.confirmed[len(w.confirmed)-1-i]) {
			return true
		}
	}
	return false
}

// testConcurrentCrash is the concurrent crash-consistency property test:
// N goroutines run random transactions against their own databases, the
// main goroutine crashes the engine at an arbitrary moment, and after
// recovery every database must hold an all-or-nothing outcome of its
// worker's transaction stream — a committed image in full, never a torn
// one.
func testConcurrentCrash(t *testing.T, mk Factory, caps Caps, kind fault.CrashKind) {
	const (
		workers = 4
		dbSize  = 256
	)
	e := mk(t)
	defer e.Close()

	ws := make([]*cWorker, workers)
	for i := range ws {
		db := create(t, e, fmt.Sprintf("w%d", i), dbSize, 0)
		ws[i] = &cWorker{
			db:        db,
			buf:       db.Bytes(),
			confirmed: [][]byte{make([]byte, dbSize)},
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := range ws {
		i := i
		w := ws[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7700 + i)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := e.Begin()
				if err != nil {
					// The engine crashed (or a sequential core's Begin
					// woke up to a crashed engine); the worker's story
					// ends here.
					return
				}
				work := append([]byte(nil), w.confirmed[len(w.confirmed)-1]...)
				ok := true
				for r := 0; r < 1+rng.Intn(2); r++ {
					off := uint64(rng.Intn(dbSize - 16))
					ln := uint64(1 + rng.Intn(16))
					if err := tx.SetRange(w.db, off, ln); err != nil {
						_ = tx.Abort()
						ok = false
						break
					}
					for j := uint64(0); j < ln; j++ {
						b := byte(rng.Intn(256))
						w.buf[off+j] = b
						work[off+j] = b
					}
				}
				if !ok {
					return
				}
				if rng.Intn(10) == 0 {
					if err := tx.Abort(); err != nil {
						return
					}
					continue
				}
				// From here the commit may land before or after the
				// crash; either full image is a legal recovery outcome.
				w.pending = work
				if err := tx.Commit(); err != nil {
					return
				}
				w.confirmed = append(w.confirmed, work)
				w.pending = nil
				if len(w.confirmed) > 8 {
					w.confirmed = w.confirmed[len(w.confirmed)-8:]
				}
			}
		}()
	}

	// Let the workers race for a few wall-clock milliseconds, then pull
	// the plug under them.
	time.Sleep(3 * time.Millisecond)
	if err := e.Crash(kind); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	close(stop)
	wg.Wait()

	err := e.Recover()
	if !caps.SurvivesKind(kind) {
		if err == nil {
			t.Fatalf("Recover after %v crash should fail for this engine", kind)
		}
		return
	}
	if err != nil {
		t.Fatalf("Recover after %v crash: %v", kind, err)
	}
	for i, w := range ws {
		re, err := e.OpenDB(fmt.Sprintf("w%d", i))
		if err != nil {
			t.Fatalf("worker %d reopen: %v", i, err)
		}
		if !w.allowedAfterCrash(re.Bytes(), caps) {
			t.Fatalf("worker %d: post-crash state is not an all-or-nothing outcome", i)
		}
		// The engine keeps working on the recovered state.
		commitWrite(t, e, re, 0, []byte{0xAB})
	}
}
