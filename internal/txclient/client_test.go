package txclient_test

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/trace"
	"github.com/ics-forth/perseas/internal/transport"
	"github.com/ics-forth/perseas/internal/txclient"
	"github.com/ics-forth/perseas/internal/txserver"
)

// dialer returns a net.Pipe dialer bound to srv.
func dialer(srv *txserver.Server) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		a, b := net.Pipe()
		go srv.ServeConn(b)
		return a, nil
	}
}

// TestCrossClientCoherence: two independent clients — two replicas —
// drive one server. After A commits, B's next SetRange over the same
// bytes must refresh B's replica with A's committed value; that is
// what makes read-modify-write correct across client processes.
func TestCrossClientCoherence(t *testing.T) {
	srv := txserver.New(newLibrary(t))
	a, err := txclient.New(dialer(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := txclient.New(dialer(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	dbA, err := a.CreateDB("shared", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.InitDB(dbA); err != nil {
		t.Fatal(err)
	}
	dbB, err := b.OpenDB("shared")
	if err != nil {
		t.Fatal(err)
	}

	// A commits a counter value.
	tx, err := a.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(dbA, 0, 8); err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint64(dbA.Bytes()[0:8], 41)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// B's replica is stale until it claims the range; after SetRange it
	// must read 41, increment, and commit 42.
	tx, err = b.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(dbB, 0, 8); err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(dbB.Bytes()[0:8]); got != 41 {
		t.Fatalf("replica after SetRange reads %d, want 41 (A's committed value)", got)
	}
	binary.BigEndian.PutUint64(dbB.Bytes()[0:8], 42)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// And back: A sees B's increment on its next claim.
	tx, err = a.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(dbA, 0, 8); err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(dbA.Bytes()[0:8]); got != 42 {
		t.Fatalf("A's replica after SetRange reads %d, want 42", got)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
}

// TestRefreshPreservesOwnWrites: a second overlapping declaration in
// the same transaction must not clobber the first declaration's
// uncommitted local writes with server bytes.
func TestRefreshPreservesOwnWrites(t *testing.T) {
	srv := txserver.New(newLibrary(t))
	cl, err := txclient.New(dialer(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	db, err := cl.CreateDB("own", 64)
	if err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes(), "original")
	if err := cl.InitDB(db); err != nil {
		t.Fatal(err)
	}

	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 8); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[0:8], "mutated1")
	// Overlapping declaration: bytes [2,6) are already owned by this
	// transaction; the refresh must leave "tate" in place.
	if err := tx.SetRange(db, 2, 4); err != nil {
		t.Fatal(err)
	}
	if got := string(db.Bytes()[0:8]); got != "mutated1" {
		t.Fatalf("replica after overlapping SetRange = %q, want %q", got, "mutated1")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := string(db.Bytes()[0:8]); got != "mutated1" {
		t.Fatalf("committed state = %q, want %q", got, "mutated1")
	}
}

// TestBusySentinel: a server-side admission rejection surfaces as
// txclient.ErrBusy, the retryable sentinel.
func TestBusySentinel(t *testing.T) {
	srv := txserver.New(newLibrary(t), txserver.WithMaxTxs(1))
	cl, err := txclient.New(dialer(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Begin(); !errors.Is(err, txclient.ErrBusy) {
		t.Fatalf("over-limit Begin returned %v, want ErrBusy", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
}

// TestBusyRetryAbsorbsRejection: with WithBusyRetry configured, Begin
// eats a BUSY by backing off and retrying, and the metrics expose the
// pressure that was invisible before.
func TestBusyRetryAbsorbsRejection(t *testing.T) {
	srv := txserver.New(newLibrary(t), txserver.WithMaxTxs(1))
	cl, err := txclient.New(dialer(srv),
		txclient.WithBusyRetry(50, 100*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// Hold the only transaction slot briefly, then release it; the
	// second Begin must ride its retry loop through the window.
	done := make(chan error, 1)
	go func() {
		tx2, err := cl.Begin()
		if err != nil {
			done <- err
			return
		}
		done <- tx2.Abort()
	}()
	time.Sleep(2 * time.Millisecond)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("retried Begin: %v", err)
	}
	m := cl.Metrics()
	if m.BusyReplies.Load() == 0 || m.BusyRetries.Load() == 0 {
		t.Fatalf("busy metrics unmoved: replies=%d retries=%d",
			m.BusyReplies.Load(), m.BusyRetries.Load())
	}
	if m.BackoffNS.Load() == 0 {
		t.Fatal("BackoffNS did not accumulate")
	}
}

// TestClientTracingStitchesWithServer: a traced client transaction and
// the serving process's capture merge into one tree — the client's RTT
// spans parent the server's envelope spans through the propagated
// trace context.
func TestClientTracingStitchesWithServer(t *testing.T) {
	srvRec := trace.NewRecorder()
	srvRec.Enable()
	srvRec.SetProcess("server")

	clock := simclock.NewSim()
	var mirrors []netram.Mirror
	for i := 0; i < 2; i++ {
		ms := memserver.New()
		tr, err := transport.NewInProc(ms, sci.DefaultParams(), clock)
		if err != nil {
			t.Fatal(err)
		}
		mirrors = append(mirrors, netram.Mirror{Name: ms.Label(), T: tr})
	}
	netc, err := netram.NewClient(mirrors)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := core.Init(netc, clock, core.WithTracer(srvRec))
	if err != nil {
		t.Fatal(err)
	}
	srv := txserver.New(lib, txserver.WithTracer(srvRec))

	cliRec := trace.NewRecorder()
	cliRec.Enable()
	cliRec.SetProcess("client")
	cl, err := txclient.New(dialer(srv), txclient.WithTracer(cliRec))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	db, err := cl.CreateDB("traced", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.InitDB(db); err != nil {
		t.Fatal(err)
	}
	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 8); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[0:8], "abcdefgh")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	cliSpans := cliRec.Snapshot()
	var traceID uint64
	names := map[string]bool{}
	for _, sp := range cliSpans {
		names[sp.Name] = true
		if sp.Name == "tx" {
			traceID = sp.Trace
		}
	}
	for _, want := range []string{"tx", "pool_acquire", "begin_rtt", "set_range_rtt", "commit_rtt"} {
		if !names[want] {
			t.Fatalf("client capture missing %q span (have %v)", want, names)
		}
	}
	if traceID == 0 {
		t.Fatal("client root span carries no trace id")
	}
	var adopted bool
	for _, sp := range srvRec.Snapshot() {
		if sp.Trace == traceID {
			adopted = true
			break
		}
	}
	if !adopted {
		t.Fatalf("server capture has no spans under propagated trace %d", traceID)
	}
	merged := trace.MergeSpans(cliSpans, srvRec.Snapshot())
	if n := trace.StitchedTraces(merged); n != 1 {
		t.Fatalf("StitchedTraces(merged) = %d, want 1", n)
	}
}

// TestForeignDB: handles from another engine are rejected locally.
func TestForeignDB(t *testing.T) {
	lib := newLibrary(t)
	srv := txserver.New(lib)
	cl, err := txclient.New(dialer(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	native, err := lib.CreateDB("native", 32)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := cl.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(native, 0, 8); err == nil {
		t.Fatal("SetRange accepted a foreign database handle")
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := cl.InitDB(native); err == nil {
		t.Fatal("InitDB accepted a foreign database handle")
	}
}

// TestConcurrentClientsSameRow: many clients increment one shared
// counter under conflict control; the committed total must equal the
// number of successful commits — no lost updates between replicas.
func TestConcurrentClientsSameRow(t *testing.T) {
	srv := txserver.New(newLibrary(t))
	setup, err := txclient.New(dialer(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	db, err := setup.CreateDB("counter", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.InitDB(db); err != nil {
		t.Fatal(err)
	}

	const clients = 4
	const perClient = 25
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := txclient.New(dialer(srv), txclient.WithConns(1))
			if err != nil {
				errs[i] = err
				return
			}
			defer cl.Close()
			d, err := cl.OpenDB("counter")
			if err != nil {
				errs[i] = err
				return
			}
			for n := 0; n < perClient; {
				tx, err := cl.Begin()
				if err != nil {
					errs[i] = err
					return
				}
				if err := tx.SetRange(d, 0, 8); err != nil {
					_ = tx.Abort()
					if errors.Is(err, engine.ErrConflict) {
						continue // lost the claim; retry
					}
					errs[i] = err
					return
				}
				binary.BigEndian.PutUint64(d.Bytes(),
					binary.BigEndian.Uint64(d.Bytes())+1)
				if err := tx.Commit(); err != nil {
					errs[i] = err
					return
				}
				n++
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	final, err := setup.OpenDB("counter")
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(final.Bytes()); got != clients*perClient {
		t.Fatalf("counter = %d after %d increments across %d replicas", got, clients*perClient, clients)
	}
}
