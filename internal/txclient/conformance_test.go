package txclient_test

import (
	"net"
	"testing"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/enginetest"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/router"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
	"github.com/ics-forth/perseas/internal/txclient"
	"github.com/ics-forth/perseas/internal/txserver"
)

// newLibrary builds one PERSEAS engine over two in-process mirrors.
func newLibrary(t *testing.T) *core.Library {
	t.Helper()
	clock := simclock.NewSim()
	var mirrors []netram.Mirror
	for i := 0; i < 2; i++ {
		srv := memserver.New()
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
		if err != nil {
			t.Fatal(err)
		}
		mirrors = append(mirrors, netram.Mirror{Name: srv.Label(), T: tr})
	}
	net, err := netram.NewClient(mirrors)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := core.Init(net, clock)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

// serveRemote fronts eng with an in-process txserver and returns a
// pooled client speaking to it over net.Pipe connections. The whole
// transaction API crosses the wire; only the bytes stay in process.
func serveRemote(t *testing.T, eng engine.Engine, opts ...txserver.Option) *txclient.Client {
	t.Helper()
	srv := txserver.New(eng, append([]txserver.Option{txserver.WithFaultInjection()}, opts...)...)
	cl, err := txclient.New(func() (net.Conn, error) {
		a, b := net.Pipe()
		go srv.ServeConn(b)
		return a, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		eng.Close()
	})
	return cl
}

// TestRemoteEngineConformance runs the full engine conformance suite —
// lifecycle, aborts, crash recovery, concurrency, the randomised crash
// property test — against a txclient backed by an in-process txserver
// over a single PERSEAS engine.
func TestRemoteEngineConformance(t *testing.T) {
	enginetest.Run(t, "remote", func(t *testing.T) engine.Engine {
		return serveRemote(t, newLibrary(t))
	}, enginetest.Caps{
		// Durability lives in the mirrors behind the serving engine; the
		// client's crash kind never reaches them.
		SurvivesKind:    func(fault.CrashKind) bool { return true },
		DurableOnCommit: true,
	})
}

// TestRemoteShardedConformance is the same suite with a 2-shard router
// behind the server — the composed deployment the CLI offers as
// `perseas-server -tx -shard 2`.
func TestRemoteShardedConformance(t *testing.T) {
	enginetest.Run(t, "remote-sharded", func(t *testing.T) engine.Engine {
		libs := []*core.Library{newLibrary(t), newLibrary(t)}
		r, err := router.New(libs)
		if err != nil {
			t.Fatal(err)
		}
		return serveRemote(t, r)
	}, enginetest.Caps{
		SurvivesKind:    func(fault.CrashKind) bool { return true },
		DurableOnCommit: true,
	})
}

// TestRemoteSerialCommitConformance re-runs the suite with the group
// commit gate disabled, so the no-batching baseline serves correctly
// too — the benchmark compares the two modes on equal footing.
func TestRemoteSerialCommitConformance(t *testing.T) {
	enginetest.Run(t, "remote-serial", func(t *testing.T) engine.Engine {
		return serveRemote(t, newLibrary(t), txserver.WithCommitMode(txserver.SerialCommit))
	}, enginetest.Caps{
		SurvivesKind:    func(fault.CrashKind) bool { return true },
		DurableOnCommit: true,
	})
}
