// Package txclient is the client half of the transaction front door:
// an engine.Engine whose operations travel over the wire protocol to a
// txserver instead of into a linked library. Existing workloads — the
// benchmark harness, the conformance suite, the stress driver — run
// unmodified against a remote PERSEAS installation by swapping in this
// engine.
//
// The client holds a small pool of connections. Requests carry
// correlation IDs, so many transactions multiplex over one connection
// and their replies complete out of order; a per-connection reader
// goroutine demultiplexes them back to their callers. A transaction is
// connection-sticky: Begin picks a connection and every request the
// handle sends rides it, matching the server's rule that a transaction
// handle is only valid on the connection that began it.
//
// Each database keeps a local replica of its bytes (engine.DB.Bytes
// must hand the application real memory). SetRange snapshots the local
// before-image after the server accepts the declaration; Commit ships
// the declared ranges' final bytes in one batched request; Abort
// restores the local before-images in reverse declaration order and
// releases the server-side transaction. OpenDB rehydrates the replica
// from the server, which is how a client resynchronises after the
// engine recovers from a crash.
package txclient

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/trace"
	"github.com/ics-forth/perseas/internal/wire"
)

// Client errors.
var (
	// ErrBusy surfaces a server-side admission-control rejection: the
	// server is at a connection, pipeline, or transaction limit. The
	// operation did not run; back off and retry.
	ErrBusy = errors.New("txclient: server busy")
	// ErrClosed is returned by operations on a closed client.
	ErrClosed = errors.New("txclient: client closed")
)

// DefaultConns is the connection pool size when WithConns is not given.
const DefaultConns = 4

// chunk bounds one OpTxRead/OpTxLoad transfer, comfortably under the
// wire frame limit.
const chunk = 1 << 20

// Option configures a Client.
type Option func(*Client)

// WithConns sets the connection pool size (0 keeps the default). The
// stress driver uses 1 so each simulated client is one connection.
func WithConns(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.nconns = n
		}
	}
}

// WithTracer records client-side spans — pool acquisition, request
// round trips, busy backoff — on rec, and propagates each traced
// transaction's trace id to the server on the wire, so a server-side
// capture of the same run stitches into one tree per transaction
// (trace.MergeSpans). The disabled path stays one atomic load per
// Begin.
func WithTracer(rec *trace.Recorder) Option {
	return func(c *Client) { c.tracer = rec }
}

// WithBusyRetry makes Begin absorb up to n server BUSY rejections
// itself, sleeping an exponentially growing backoff starting at base
// between attempts (0 values keep the defaults: 8 attempts, 1ms).
// Retries and time slept are counted on the client's Metrics; only
// Begin retries — a BUSY mid-transaction surfaces, because the
// transaction's claims must not be held across a sleep.
func WithBusyRetry(n int, base time.Duration) Option {
	return func(c *Client) {
		c.busyRetries = 8
		if n > 0 {
			c.busyRetries = n
		}
		c.busyBase = time.Millisecond
		if base > 0 {
			c.busyBase = base
		}
	}
}

// WithSharedMetrics points the client's counters at m, so a fleet of
// clients (one per simulated connection in the stress driver)
// aggregates into one place.
func WithSharedMetrics(m *Metrics) Option {
	return func(c *Client) {
		if m != nil {
			c.metrics = m
		}
	}
}

// Metrics are the client's busy-backpressure counters: the server-side
// admission control was invisible from the client until they existed.
type Metrics struct {
	// BusyReplies counts BUSY rejections received from the server,
	// wherever they surfaced.
	BusyReplies obs.Counter
	// BusyRetries counts Begin attempts re-sent after a BUSY; BackoffNS
	// accumulates the nanoseconds slept between them.
	BusyRetries obs.Counter
	BackoffNS   obs.Counter
}

// Register publishes the counters on reg under perseas_txclient_*.
func (m *Metrics) Register(reg *obs.Registry) {
	reg.RegisterCounter("perseas_txclient_busy_replies_total", "BUSY rejections received from the server", &m.BusyReplies)
	reg.RegisterCounter("perseas_txclient_busy_retries_total", "Begin attempts retried after a BUSY", &m.BusyRetries)
	reg.RegisterCounter("perseas_txclient_backoff_ns_total", "nanoseconds slept backing off from BUSY", &m.BackoffNS)
}

// Client is a remote engine.Engine speaking to a txserver.
type Client struct {
	nconns      int
	conns       []*poolConn
	nextID      atomic.Uint64
	rr          atomic.Uint64
	closed      atomic.Bool
	tracer      *trace.Recorder
	metrics     *Metrics
	busyRetries int
	busyBase    time.Duration
}

// Metrics exposes the client's counters (the shared instance when
// WithSharedMetrics configured one).
func (c *Client) Metrics() *Metrics { return c.metrics }

var _ engine.Engine = (*Client)(nil)

// New builds a client whose pool connections come from dial — tests
// pass a net.Pipe dialer bound to an in-process server.
func New(dial func() (net.Conn, error), opts ...Option) (*Client, error) {
	c := &Client{nconns: DefaultConns, metrics: &Metrics{}}
	for _, o := range opts {
		o(c)
	}
	for i := 0; i < c.nconns; i++ {
		nc, err := dial()
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("txclient: dial: %w", err)
		}
		p := &poolConn{c: nc, pending: make(map[uint64]chan callResult)}
		go p.readLoop()
		c.conns = append(c.conns, p)
	}
	return c, nil
}

// Dial connects the pool to a TCP txserver.
func Dial(addr string, opts ...Option) (*Client, error) {
	return New(func() (net.Conn, error) { return net.Dial("tcp", addr) }, opts...)
}

// Name implements engine.Engine.
func (c *Client) Name() string { return "remote" }

// pick returns the next pool connection round-robin.
func (c *Client) pick() *poolConn {
	return c.conns[c.rr.Add(1)%uint64(len(c.conns))]
}

// call runs one request/response exchange on p, mapping typed failure
// codes back onto the engine's sentinel errors.
func (c *Client) call(p *poolConn, req *wire.Request) (*wire.Response, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	resp, err := p.call(c.nextID.Add(1), req)
	if err != nil {
		return nil, err
	}
	if err := respError(resp); err != nil {
		if errors.Is(err, ErrBusy) {
			c.metrics.BusyReplies.Inc()
		}
		return nil, err
	}
	return resp, nil
}

// respError maps a typed error response onto the engine sentinels, so
// errors.Is works across the wire exactly as it does in-process.
func respError(resp *wire.Response) error {
	if resp.Status == wire.StatusOK {
		return nil
	}
	switch resp.Code {
	case wire.TxBusy:
		return fmt.Errorf("%w: %s", ErrBusy, resp.Err)
	case wire.TxConflict:
		return fmt.Errorf("txclient: %w", engine.ErrConflict)
	case wire.TxNoTransaction, wire.TxUnknownTx:
		// A handle the server no longer holds — finished, orphaned, or
		// wiped by a crash — is a transaction that no longer exists.
		return fmt.Errorf("txclient: %w", engine.ErrNoTransaction)
	case wire.TxInTransaction:
		return fmt.Errorf("txclient: %w", engine.ErrInTransaction)
	case wire.TxCrashed:
		return fmt.Errorf("txclient: %w", engine.ErrCrashed)
	case wire.TxUnrecoverable:
		return fmt.Errorf("txclient: %w", engine.ErrUnrecoverable)
	default:
		return fmt.Errorf("txclient: server: %s", resp.Err)
	}
}

// clientDB is a local replica of one remote database.
type clientDB struct {
	name   string
	handle uint32
	buf    []byte
}

func (d *clientDB) Name() string  { return d.name }
func (d *clientDB) Size() uint64  { return uint64(len(d.buf)) }
func (d *clientDB) Bytes() []byte { return d.buf }

// asClientDB rejects database handles from other engines.
func asClientDB(db engine.DB) (*clientDB, error) {
	d, ok := db.(*clientDB)
	if !ok {
		return nil, fmt.Errorf("txclient: foreign database handle %T", db)
	}
	return d, nil
}

// CreateDB implements engine.Engine: the server allocates the region,
// the client allocates the replica.
func (c *Client) CreateDB(name string, size uint64) (engine.DB, error) {
	resp, err := c.call(c.pick(), &wire.Request{Op: wire.OpTxCreateDB, Name: name, Size: size})
	if err != nil {
		return nil, err
	}
	return &clientDB{name: name, handle: resp.Seg, buf: make([]byte, size)}, nil
}

// InitDB implements engine.Engine: it uploads the replica's current
// content in chunks, then asks the server to publish it as the initial
// durable image.
func (c *Client) InitDB(db engine.DB) error {
	d, err := asClientDB(db)
	if err != nil {
		return err
	}
	p := c.pick()
	for off := 0; off < len(d.buf); off += chunk {
		end := off + chunk
		if end > len(d.buf) {
			end = len(d.buf)
		}
		if _, err := c.call(p, &wire.Request{
			Op: wire.OpTxLoad, Seg: d.handle, Offset: uint64(off), Data: d.buf[off:end],
		}); err != nil {
			return err
		}
	}
	_, err = c.call(p, &wire.Request{Op: wire.OpTxInitDB, Seg: d.handle})
	return err
}

// OpenDB implements engine.Engine: it re-attaches the named database
// and rehydrates the local replica from the server's bytes — the
// resynchronisation step after the serving engine recovers.
func (c *Client) OpenDB(name string) (engine.DB, error) {
	p := c.pick()
	resp, err := c.call(p, &wire.Request{Op: wire.OpTxOpenDB, Name: name})
	if err != nil {
		return nil, err
	}
	d := &clientDB{name: name, handle: resp.Seg, buf: make([]byte, resp.Size)}
	for off := uint64(0); off < uint64(len(d.buf)); off += chunk {
		n := uint64(len(d.buf)) - off
		if n > chunk {
			n = chunk
		}
		rd, err := c.call(p, &wire.Request{
			Op: wire.OpTxRead, Seg: d.handle, Offset: off, Length: uint32(n),
		})
		if err != nil {
			return nil, err
		}
		if uint64(len(rd.Data)) != n {
			return nil, fmt.Errorf("txclient: short read: %d of %d bytes", len(rd.Data), n)
		}
		copy(d.buf[off:], rd.Data)
	}
	return d, nil
}

// txWrite is one declared range and its local before-image.
type txWrite struct {
	db          *clientDB
	off, length uint64
	before      []byte
}

// clientTx is one remote transaction. Like every engine.Tx it is owned
// by the goroutine that began it; its requests all ride the connection
// Begin picked.
type clientTx struct {
	c      *Client
	p      *poolConn
	id     uint64
	done   bool
	writes []txWrite
	// tt buffers the client-side span tree (nil when tracing is off);
	// root is the open "tx" span. Its trace id rides every request this
	// handle sends, so the server's spans land in the same tree.
	tt   *trace.TxTrace
	root trace.SpanRef
}

// Begin implements engine.Engine. With WithBusyRetry configured it
// absorbs server BUSY rejections here — before the transaction holds
// any conflict-table claims — backing off exponentially between
// attempts.
func (c *Client) Begin() (engine.Tx, error) {
	tt := c.tracer.Tx()
	root := tt.Start(trace.LayerClient, "tx")
	acquire := tt.Start(trace.LayerClient, "pool_acquire")
	p := c.pick()
	acquire.End()
	backoff := c.busyBase
	for attempt := 0; ; attempt++ {
		rtt := tt.Start(trace.LayerClient, "begin_rtt")
		resp, err := c.call(p, &wire.Request{
			Op: wire.OpTxBegin, TraceID: tt.Trace(), TraceSpan: rtt.ID(),
		})
		rtt.End()
		if err == nil {
			return &clientTx{c: c, p: p, id: resp.Tx, tt: tt, root: root}, nil
		}
		if attempt >= c.busyRetries || !errors.Is(err, ErrBusy) {
			root.End()
			tt.Finish()
			return nil, err
		}
		c.metrics.BusyRetries.Inc()
		sp := tt.Start(trace.LayerClient, "busy_backoff")
		time.Sleep(backoff)
		sp.End()
		c.metrics.BackoffNS.Add(uint64(backoff))
		backoff *= 2
	}
}

// SetRange implements engine.Tx: the server captures its before-image
// and claims the range in the conflict table; only after it accepts is
// the local replica touched (a rejected range must not be sliced
// locally — it may be out of bounds). The reply carries the range's
// current server-side bytes, and the replica refreshes from them so
// read-modify-write transactions observe other clients' committed
// updates — except where an earlier declaration in this transaction
// already owns the bytes, whose uncommitted local writes must survive.
func (t *clientTx) SetRange(db engine.DB, offset, length uint64) error {
	if t.done {
		return engine.ErrNoTransaction
	}
	d, err := asClientDB(db)
	if err != nil {
		return err
	}
	rtt := t.tt.Start(trace.LayerClient, "set_range_rtt")
	resp, err := t.c.call(t.p, &wire.Request{
		Op: wire.OpTxSetRange, Tx: t.id, Seg: d.handle, Offset: offset, Size: length,
		TraceID: t.tt.Trace(), TraceSpan: rtt.ID(),
	})
	rtt.End()
	if err != nil {
		return err
	}
	if uint64(len(resp.Data)) == length {
		t.refresh(d, offset, resp.Data)
	}
	before := append([]byte(nil), d.buf[offset:offset+length]...)
	t.writes = append(t.writes, txWrite{db: d, off: offset, length: length, before: before})
	return nil
}

// refresh copies the server's bytes for [off, off+len(data)) of d into
// the local replica, skipping any sub-interval an earlier declaration
// of this transaction covers.
func (t *clientTx) refresh(d *clientDB, off uint64, data []byte) {
	type span struct{ lo, hi uint64 }
	spans := []span{{off, off + uint64(len(data))}}
	for _, w := range t.writes {
		if w.db != d {
			continue
		}
		wlo, whi := w.off, w.off+w.length
		next := spans[:0:0]
		for _, s := range spans {
			if whi <= s.lo || wlo >= s.hi {
				next = append(next, s)
				continue
			}
			if s.lo < wlo {
				next = append(next, span{s.lo, wlo})
			}
			if whi < s.hi {
				next = append(next, span{whi, s.hi})
			}
		}
		spans = next
	}
	for _, s := range spans {
		copy(d.buf[s.lo:s.hi], data[s.lo-off:s.hi-off])
	}
}

// Commit implements engine.Tx: one batched request carries every
// declared range's final local bytes and commits the transaction.
func (t *clientTx) Commit() error {
	if t.done {
		return engine.ErrNoTransaction
	}
	t.done = true
	batch := make([]wire.BatchEntry, 0, len(t.writes))
	for _, w := range t.writes {
		batch = append(batch, wire.BatchEntry{
			Seg:    w.db.handle,
			Offset: w.off,
			Data:   append([]byte(nil), w.db.buf[w.off:w.off+w.length]...),
		})
	}
	rtt := t.tt.Start(trace.LayerClient, "commit_rtt")
	_, err := t.c.call(t.p, &wire.Request{
		Op: wire.OpTxCommit, Tx: t.id, Batch: batch,
		TraceID: t.tt.Trace(), TraceSpan: rtt.ID(),
	})
	rtt.End()
	t.finishTrace()
	return err
}

// finishTrace closes the handle's root span and flushes its span tree
// into the recorder (no-ops when untraced).
func (t *clientTx) finishTrace() {
	t.root.End()
	t.tt.Finish()
	t.tt = nil
}

// Abort implements engine.Tx: the local replica rolls back to the
// before-images in reverse declaration order (overlapping declarations
// unwind correctly), then the server releases the transaction.
func (t *clientTx) Abort() error {
	if t.done {
		return engine.ErrNoTransaction
	}
	t.done = true
	for i := len(t.writes) - 1; i >= 0; i-- {
		w := t.writes[i]
		copy(w.db.buf[w.off:], w.before)
	}
	rtt := t.tt.Start(trace.LayerClient, "abort_rtt")
	_, err := t.c.call(t.p, &wire.Request{
		Op: wire.OpTxAbort, Tx: t.id,
		TraceID: t.tt.Trace(), TraceSpan: rtt.ID(),
	})
	rtt.End()
	t.finishTrace()
	return err
}

// Crash implements engine.Engine (served only when the server enables
// fault injection).
func (c *Client) Crash(kind fault.CrashKind) error {
	_, err := c.call(c.pick(), &wire.Request{Op: wire.OpTxCrash, Size: uint64(kind)})
	return err
}

// Recover implements engine.Engine (gated like Crash).
func (c *Client) Recover() error {
	_, err := c.call(c.pick(), &wire.Request{Op: wire.OpTxRecover})
	return err
}

// ServerStats fetches the server's counter snapshot.
func (c *Client) ServerStats() (*wire.TxStats, error) {
	resp, err := c.call(c.pick(), &wire.Request{Op: wire.OpTxStats})
	if err != nil {
		return nil, err
	}
	return wire.DecodeTxStats(resp.Data)
}

// Close implements engine.Engine: it drops the pool. The server aborts
// any transactions the connections still owned; durable state remains.
func (c *Client) Close() error {
	c.closed.Store(true)
	for _, p := range c.conns {
		p.c.Close()
	}
	return nil
}

// callResult is one demultiplexed reply.
type callResult struct {
	resp *wire.Response
	err  error
}

// poolConn is one pooled connection: a write mutex serialises frames
// out, a reader goroutine routes replies back by correlation ID.
type poolConn struct {
	c   net.Conn
	wmu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan callResult
	dead    bool
	err     error
}

// call sends req with correlation id and blocks for its reply.
func (p *poolConn) call(id uint64, req *wire.Request) (*wire.Response, error) {
	ch := make(chan callResult, 1)
	p.mu.Lock()
	if p.dead {
		err := p.err
		p.mu.Unlock()
		return nil, err
	}
	p.pending[id] = ch
	p.mu.Unlock()

	req.ID = id
	p.wmu.Lock()
	err := wire.SendRequest(p.c, req)
	p.wmu.Unlock()
	if err != nil {
		p.fail(fmt.Errorf("txclient: send: %w", err))
	}
	r := <-ch
	return r.resp, r.err
}

// readLoop demultiplexes replies until the stream dies.
func (p *poolConn) readLoop() {
	for {
		resp, err := wire.RecvResponse(p.c)
		if err != nil {
			p.fail(fmt.Errorf("txclient: connection lost: %w", err))
			return
		}
		p.mu.Lock()
		ch, ok := p.pending[resp.ID]
		if ok {
			delete(p.pending, resp.ID)
		}
		p.mu.Unlock()
		if ok {
			ch <- callResult{resp: resp}
			continue
		}
		// A reply with no matching request: the server answered a frame
		// it could not correlate (its malformed-frame report carries no
		// id) or the stream desynchronised. Either way it is unusable.
		detail := resp.Err
		if detail == "" {
			detail = fmt.Sprintf("unmatched reply id %d", resp.ID)
		}
		p.fail(fmt.Errorf("txclient: protocol failure: %s", detail))
		return
	}
}

// fail kills the connection and delivers err to every pending caller.
func (p *poolConn) fail(err error) {
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return
	}
	p.dead = true
	p.err = err
	pending := p.pending
	p.pending = make(map[uint64]chan callResult)
	p.mu.Unlock()
	p.c.Close()
	for _, ch := range pending {
		ch <- callResult{err: err}
	}
}
