package hostmem

import (
	"bytes"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/simclock"
)

func TestCopyCost(t *testing.T) {
	m := Default()
	if got := m.CopyCost(0); got != 0 {
		t.Errorf("CopyCost(0) = %v, want 0", got)
	}
	if got := m.CopyCost(-1); got != 0 {
		t.Errorf("CopyCost(-1) = %v, want 0", got)
	}
	small := m.CopyCost(4)
	big := m.CopyCost(1 << 20)
	if small <= 0 || big <= small {
		t.Errorf("costs not monotone: %v, %v", small, big)
	}
	// ~150 MB/s: 1 MiB should take 6-8 ms.
	if big < 5*time.Millisecond || big > 10*time.Millisecond {
		t.Errorf("1 MiB copy = %v, want ~7ms at era bandwidth", big)
	}
}

func TestCopyChargesAndCopies(t *testing.T) {
	m := Default()
	clock := simclock.NewSim()
	src := []byte("hello world")
	dst := make([]byte, len(src))
	n := m.Copy(clock, dst, src)
	if n != len(src) || !bytes.Equal(dst, src) {
		t.Fatalf("copy broken: n=%d dst=%q", n, dst)
	}
	if clock.Now() != m.CopyCost(len(src)) {
		t.Errorf("charged %v, want %v", clock.Now(), m.CopyCost(len(src)))
	}
}

func TestCopyShortDst(t *testing.T) {
	m := Fast()
	clock := simclock.NewSim()
	dst := make([]byte, 3)
	n := m.Copy(clock, dst, []byte("abcdef"))
	if n != 3 {
		t.Errorf("n = %d, want 3", n)
	}
	if clock.Now() != m.CopyCost(3) {
		t.Errorf("charged %v for %d bytes", clock.Now(), n)
	}
}

func TestFastCheaperThanDefault(t *testing.T) {
	if Fast().CopyCost(1<<20) >= Default().CopyCost(1<<20) {
		t.Error("Fast model should be cheaper than Default")
	}
}
