// Package hostmem models the cost of local main-memory copies on the
// paper's experimental platform (133 MHz Pentium PCs).
//
// Every engine in this repository performs its local copies through this
// model so that undo-log creation, WAL record construction and database
// updates all charge comparable virtual time, keeping the reproduced
// latency figures internally consistent.
package hostmem

import (
	"time"

	"github.com/ics-forth/perseas/internal/simclock"
)

// Model prices local memory-copy operations.
type Model struct {
	// CopyBase is the fixed overhead of one memcpy call (function call,
	// cache warm-up).
	CopyBase time.Duration
	// NsPerByte is the per-byte cost; 1/NsPerByte GB/s is the copy
	// bandwidth.
	NsPerByte float64
}

// Default returns constants for the paper's era: roughly 150 MB/s
// sustained copy bandwidth and a 150 ns call overhead.
func Default() Model {
	return Model{
		CopyBase:  150 * time.Nanosecond,
		NsPerByte: 6.5, // ~154 MB/s
	}
}

// Fast returns constants for a modern machine; used by tests that want
// negligible local-copy time.
func Fast() Model {
	return Model{CopyBase: 10 * time.Nanosecond, NsPerByte: 0.1}
}

// CopyCost returns the modelled cost of copying n bytes.
func (m Model) CopyCost(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return m.CopyBase + time.Duration(float64(n)*m.NsPerByte)
}

// Copy copies src into dst and charges the modelled cost to clock. It
// returns the number of bytes copied.
func (m Model) Copy(clock simclock.Clock, dst, src []byte) int {
	n := copy(dst, src)
	clock.Advance(m.CopyCost(n))
	return n
}
