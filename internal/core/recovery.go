package core

import (
	"fmt"

	"github.com/ics-forth/perseas/internal/hostmem"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/simclock"
)

// Recover implements engine.Engine: the paper's Section 3/4 recovery
// procedure, run after the primary node crashed and lost its main memory.
//
// The library first reconnects to the segments holding the PERSEAS
// metadata (the paper's sci_connect_segment); from those it retrieves the
// information needed to find and reconnect to the remote database records
// and the remote undo log. If an in-flight transaction had started
// propagating modifications before the failure, the original data found
// in the remote undo log are copied back to the remote database,
// discarding the illegal updates; the local database is then recovered
// from the — now legal — remote segments.
func (l *Library) Recover() error {
	if !l.crashed {
		return fmt.Errorf("perseas: recover called on a running library")
	}

	// Reconnect to the metadata segments and fetch the directory.
	meta, err := l.net.Connect(l.qualify(metaRegionName))
	if err != nil {
		return fmt.Errorf("perseas: reconnect metadata: %w", err)
	}
	if err := l.net.FetchInto(meta, 0, meta.Size()); err != nil {
		return fmt.Errorf("perseas: fetch metadata: %w", err)
	}
	committed, undoSize, storedNextID, entries, err := readDirectory(meta.Local)
	if err != nil {
		return err
	}

	// Reconnect to the remote undo log and fetch its contents.
	undo, err := l.net.Connect(l.qualify(undoRegionName))
	if err != nil {
		return fmt.Errorf("perseas: reconnect undo log: %w", err)
	}
	if undo.Size() != undoSize {
		return fmt.Errorf("perseas: undo log size %d does not match metadata %d",
			undo.Size(), undoSize)
	}
	// The remote undo log is fetched lazily, chunk by chunk, while the
	// scan below walks it: most crashes leave only a handful of records,
	// so recovery transfers kilobytes, not the whole log region.
	const undoChunk = 64 << 10
	var undoFetched uint64
	ensure := func(n uint64) error {
		if n > undo.Size() {
			n = undo.Size()
		}
		if n <= undoFetched {
			return nil
		}
		target := (n + undoChunk - 1) / undoChunk * undoChunk
		if target > undo.Size() {
			target = undo.Size()
		}
		if err := l.net.FetchInto(undo, undoFetched, target-undoFetched); err != nil {
			return fmt.Errorf("perseas: fetch undo log: %w", err)
		}
		undoFetched = target
		return nil
	}

	// Reconnect to every database record and copy it back.
	dbs := make(map[string]*Database, len(entries))
	byID := make(map[uint32]*Database, len(entries))
	var maxID uint32
	for _, e := range entries {
		region, err := l.net.Connect(l.qualify(dbRegionPrefix + e.name))
		if err != nil {
			return fmt.Errorf("perseas: reconnect database %q: %w", e.name, err)
		}
		if region.Size() != e.size {
			return fmt.Errorf("perseas: database %q size %d does not match directory %d",
				e.name, region.Size(), e.size)
		}
		if err := l.net.FetchInto(region, 0, region.Size()); err != nil {
			return fmt.Errorf("perseas: fetch database %q: %w", e.name, err)
		}
		db := &Database{id: e.id, name: e.name, region: region}
		dbs[e.name] = db
		byID[e.id] = db
		if e.id > maxID {
			maxID = e.id
		}
	}

	// Roll back the in-flight transaction, newest record first: restore
	// each before-image locally and repair the mirror copy.
	recs, err := scanUndoLogLazy(undo.Local, committed, ensure)
	if err != nil {
		return err
	}
	lastTxID := committed
	for _, rec := range recs {
		if rec.txID > lastTxID {
			lastTxID = rec.txID
		}
	}
	l.metaSize = meta.Size()
	l.undoSize = undoSize
	l.meta = meta
	l.undo = undo
	l.dbs = dbs
	l.byID = byID
	l.nextDBID = maxID + 1
	if storedNextID > l.nextDBID {
		// Ids of dropped databases stay retired so no stale undo record
		// can ever alias a database created after this recovery.
		l.nextDBID = storedNextID
	}
	for i := len(recs) - 1; i >= 0; i-- {
		rec := recs[i]
		db, ok := byID[rec.dbID]
		if !ok {
			// The record references a database dropped after the
			// transaction aborted; there is nothing left to restore.
			continue
		}
		if rec.offset > db.Size() || rec.length > db.Size()-rec.offset {
			return fmt.Errorf("perseas: undo record outside database %q", db.name)
		}
		l.mem.Copy(l.clock, db.region.Local[rec.offset:rec.offset+rec.length], rec.data)
		if err := l.net.Push(db.region, rec.offset, rec.length); err != nil {
			return fmt.Errorf("perseas: repair mirror of %q: %w", db.name, err)
		}
	}

	l.committed = committed
	l.lastTxID = lastTxID
	l.txActive = false
	l.ranges = nil
	l.cursor = 0
	l.pushed = nil
	l.crashed = false
	l.stats.Recoveries++
	return nil
}

// Attach builds a Library on a node that did not create the database —
// either the restarted primary or any other workstation taking over after
// a failure (the paper stresses that mirrored data are accessible from
// any node, so recovery "can be started right-away in any available
// workstation"). It runs the full recovery procedure before returning.
func Attach(net *netram.Client, clock simclock.Clock, opts ...Option) (*Library, error) {
	l := &Library{
		net:     net,
		mem:     hostmem.Default(),
		clock:   clock,
		crashed: true,
	}
	for _, o := range opts {
		o(l)
	}
	if err := l.Recover(); err != nil {
		return nil, err
	}
	return l, nil
}
