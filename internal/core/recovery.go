package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/ics-forth/perseas/internal/hostmem"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/simclock"
)

// recoveredSlot pairs a reconnected undo-slot region with its committed
// word as read from the recovered metadata region. Under quorum
// recovery, committed is the maximum word any reachable mirror holds
// for the slot and holders lists the mirrors whose metadata snapshot
// held that maximum (empty in all-ack mode).
type recoveredSlot struct {
	region    *netram.Region
	committed uint64
	holders   []int
}

// mirrorCopy is one reachable mirror's snapshot of the metadata region,
// taken at the start of a quorum recovery. A crash can leave mirrors at
// different prefixes of the push stream, so no single copy can be
// trusted for the commit words.
type mirrorCopy struct {
	idx int
	buf []byte
}

// fetchMetaCopies snapshots the metadata region from every reachable
// mirror. Quorum recovery needs at least n-w+1 copies: a commit word
// acked by w of n mirrors is then guaranteed to appear in at least one
// snapshot, so taking the per-slot maximum over the copies recovers
// every quorum-committed word.
func (l *Library) fetchMetaCopies(meta *netram.Region) ([]mirrorCopy, error) {
	n := l.net.Mirrors()
	w := l.net.Quorum()
	copies := make([]mirrorCopy, 0, n)
	var lastErr error
	for i := 0; i < n; i++ {
		data, err := l.net.FetchMirror(i, meta, 0, meta.Size())
		if err != nil {
			lastErr = err
			continue
		}
		buf := make([]byte, len(data))
		copy(buf, data)
		copies = append(copies, mirrorCopy{idx: i, buf: buf})
	}
	if len(copies) < n-w+1 {
		return nil, fmt.Errorf("perseas: quorum recovery reached %d of %d metadata copies, needs %d to cover every %d-ack commit: %w",
			len(copies), n, n-w+1, w, lastErr)
	}
	return copies, nil
}

// repairOp is one undo slot's staged crash repair. forward means the
// slot's head transaction is committed (its id equals the slot's merged
// commit word, or a coordinator decided it) but may not have reached
// every mirror: its modified ranges are re-fetched from the winner
// mirror and re-published. Otherwise the head transaction is in flight
// and its before-images roll it back. holders counts the mirrors whose
// snapshot held the slot's merged word — because every mirror receives
// the push stream in the same order, holder sets of different commit
// words are nested, so a larger holder set means the word was enqueued
// earlier: sorting forward repairs by descending holder count replays
// committed overlaps in true commit order even when transaction ids
// (assigned at Begin) disagree with it.
type repairOp struct {
	slot    int
	forward bool
	txID    uint64
	winner  int
	holders int
	recs    []undoRecord
}

// scanMirrorUndoLog parses mirror m's copy of an undo-slot region
// without touching the region's local buffer, fetching lazily in
// chunks. The returned records alias buf; fetched is how many leading
// bytes of the mirror's log were materialised.
func (l *Library) scanMirrorUndoLog(m int, region *netram.Region, committed uint64) (recs []undoRecord, buf []byte, fetched uint64, err error) {
	const undoChunk = 64 << 10
	buf = make([]byte, region.Size())
	ensure := func(n uint64) error {
		if n > region.Size() {
			n = region.Size()
		}
		if n <= fetched {
			return nil
		}
		target := (n + undoChunk - 1) / undoChunk * undoChunk
		if target > region.Size() {
			target = region.Size()
		}
		data, ferr := l.net.FetchMirror(m, region, fetched, target-fetched)
		if ferr != nil {
			return fmt.Errorf("perseas: fetch undo log from mirror %d: %w", m, ferr)
		}
		copy(buf[fetched:], data)
		fetched = target
		return nil
	}
	recs, err = scanUndoLogLazy(buf, committed, ensure)
	return recs, buf, fetched, err
}

// planSlotRepair decides how quorum recovery settles undo slot k. Every
// mirror receives the slot's pushes in enqueue order, so each mirror's
// log is a prefix of the slot's true record sequence; the scan with the
// lowest threshold that still admits the head transaction (word-1)
// makes a committed-but-possibly-lagging head visible. Among the
// slot's word holders the log with the highest head id, then the most
// records, is the longest prefix — it contains every record that has
// data anywhere. Its bytes become the local view of the slot.
func (l *Library) planSlotRepair(k int, rs recoveredSlot) (*repairOp, error) {
	threshold := rs.committed
	if threshold > 0 {
		threshold--
	}
	bestN := -1
	var bestHead, bestFetched uint64
	var bestWinner int
	var bestRecs []undoRecord
	var bestBuf []byte
	var lastErr error
	for _, m := range rs.holders {
		recs, buf, fetched, err := l.scanMirrorUndoLog(m, rs.region, threshold)
		if err != nil {
			lastErr = err
			continue
		}
		head := uint64(0)
		if len(recs) > 0 {
			head = recs[0].txID
		}
		if bestN < 0 || head > bestHead || (head == bestHead && len(recs) > bestN) {
			bestHead, bestN, bestWinner = head, len(recs), m
			bestRecs, bestBuf, bestFetched = recs, buf, fetched
		}
	}
	if bestN < 0 {
		return nil, fmt.Errorf("perseas: undo slot %d unreadable on every quorum-current mirror: %w", k, lastErr)
	}
	copy(rs.region.Local[:bestFetched], bestBuf[:bestFetched])
	if bestN == 0 {
		return nil, nil
	}
	return &repairOp{
		slot:    k,
		forward: bestHead == rs.committed,
		txID:    bestHead,
		winner:  bestWinner,
		holders: len(rs.holders),
		recs:    bestRecs,
	}, nil
}

// lazyFetcher returns an ensure(n) callback that materialises region
// bytes [0,n) on demand, chunk by chunk: most crashes leave only a
// handful of records per slot, so recovery transfers kilobytes, not the
// whole undo region.
func (l *Library) lazyFetcher(region *netram.Region) func(uint64) error {
	const undoChunk = 64 << 10
	var fetched uint64
	return func(n uint64) error {
		if n > region.Size() {
			n = region.Size()
		}
		if n <= fetched {
			return nil
		}
		target := (n + undoChunk - 1) / undoChunk * undoChunk
		if target > region.Size() {
			target = region.Size()
		}
		if err := l.net.FetchInto(region, fetched, target-fetched); err != nil {
			return fmt.Errorf("perseas: fetch undo log: %w", err)
		}
		fetched = target
		return nil
	}
}

// Recover implements engine.Engine: the paper's Section 3/4 recovery
// procedure, run after the primary node crashed and lost its main memory.
//
// The library first reconnects to the segments holding the PERSEAS
// metadata (the paper's sci_connect_segment); from those it retrieves the
// information needed to find and reconnect to the remote database records
// and the remote undo logs. Undo slots beyond the paper's slot 0 are
// discovered by probing their derived segment names until one is missing.
// Each slot is then handled exactly as the paper handles its single log:
// if the slot's head transaction had started propagating modifications
// before the failure (its records are newer than the slot's commit word),
// the original data found in the remote undo log are copied back to the
// remote database, discarding the illegal updates; the local database is
// then recovered from the — now legal — remote segments. Concurrent
// transactions hold disjoint ranges, so the rollback order across slots
// does not matter.
func (l *Library) Recover() error {
	return l.RecoverWithDecisions(nil)
}

// RecoverWithDecisions is Recover plus a coordinator's verdicts: decided
// maps an undo-slot index to a transaction id a cross-shard coordinator
// recorded as committed. A decided id that outranks the slot's recovered
// commit word means the commit-word push lost a race with the crash
// after the decision became durable; recovery publishes the word itself
// before the rollback scan, so the transaction's records count as
// committed on this shard instead of being rolled back. Stale decisions
// (id not above the recovered word) are no-ops, so replaying an old
// decision record is always safe.
func (l *Library) RecoverWithDecisions(decided map[int]uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.crashed {
		return fmt.Errorf("perseas: recover called on a running library")
	}

	// Reconnect to the metadata segments and fetch the directory.
	meta, err := l.net.Connect(l.qualify(metaRegionName))
	if err != nil {
		return fmt.Errorf("perseas: reconnect metadata: %w", err)
	}
	if err := l.net.FetchInto(meta, 0, meta.Size()); err != nil {
		return fmt.Errorf("perseas: fetch metadata: %w", err)
	}
	committed0, undoSize, storedNextID, entries, err := readDirectory(meta.Local)
	if err != nil {
		return err
	}

	// Quorum mode: the commit words on the fetched copy may lag other
	// mirrors, so snapshot the metadata from every reachable mirror and
	// merge each slot's word by maximum below. The directory itself is
	// always pushed fully acked, so the base copy is authoritative for
	// everything but the words.
	q := l.net.Quorum()
	var metaCopies []mirrorCopy
	if q > 0 {
		metaCopies, err = l.fetchMetaCopies(meta)
		if err != nil {
			return err
		}
	}

	// Reconnect to every undo slot. Slot 0 always exists; further slots
	// were allocated on demand by past concurrency and are found by name.
	recovered := []recoveredSlot{}
	for k := 0; k < maxUndoSlots; k++ {
		region, err := l.net.Connect(l.qualify(undoSlotName(k)))
		if err != nil {
			if k == 0 {
				return fmt.Errorf("perseas: reconnect undo log: %w", err)
			}
			break
		}
		if region.Size() != undoSize {
			return fmt.Errorf("perseas: undo slot %d size %d does not match metadata %d",
				k, region.Size(), undoSize)
		}
		word := committed0
		if k > 0 {
			word = binary.BigEndian.Uint64(meta.Local[slotWordOffset(meta.Size(), k):])
		}
		var holders []int
		if q > 0 {
			// Merge the slot's word across the snapshots: a commit that
			// reached its quorum is on at least one of them. Mirrors
			// holding the maximum are the slot's repair candidates — the
			// word is enqueued after the head transaction's records and
			// data, so a word holder has all of them.
			wordOff := slotWordOffset(meta.Size(), k)
			merged := word
			for _, mc := range metaCopies {
				if w := binary.BigEndian.Uint64(mc.buf[wordOff:]); w > merged {
					merged = w
				}
			}
			stale := false
			for _, mc := range metaCopies {
				if binary.BigEndian.Uint64(mc.buf[wordOff:]) == merged {
					holders = append(holders, mc.idx)
				} else {
					stale = true
				}
			}
			if len(holders) == 0 {
				for _, mc := range metaCopies {
					holders = append(holders, mc.idx)
				}
			}
			if merged != word || stale {
				binary.BigEndian.PutUint64(meta.Local[wordOff:], merged)
				if err := l.net.PushAcked(meta, wordOff, 8); err != nil {
					return fmt.Errorf("perseas: republish commit word of slot %d: %w", k, err)
				}
				word = merged
			}
		}
		if d := decided[k]; d > word {
			// The coordinator decided this slot's head transaction
			// committed but the crash beat the word push. Publish the
			// word now, before the rollback scan, so the scan treats the
			// transaction's records as committed.
			wordOff := slotWordOffset(meta.Size(), k)
			binary.BigEndian.PutUint64(meta.Local[wordOff:], d)
			if err := l.net.PushAcked(meta, wordOff, 8); err != nil {
				return fmt.Errorf("perseas: publish decided commit word: %w", err)
			}
			word = d
			if q > 0 {
				// No snapshot holds the decided word, but the prepared
				// data behind a decision is always pushed fully acked,
				// so any reachable mirror can serve the repair.
				holders = holders[:0]
				for _, mc := range metaCopies {
					holders = append(holders, mc.idx)
				}
			}
		}
		recovered = append(recovered, recoveredSlot{region: region, committed: word, holders: holders})
	}

	// Reconnect to every database record and copy it back.
	dbs := make(map[string]*Database, len(entries))
	byID := make(map[uint32]*Database, len(entries))
	var maxID uint32
	for _, e := range entries {
		region, err := l.net.Connect(l.qualify(dbRegionPrefix + e.name))
		if err != nil {
			return fmt.Errorf("perseas: reconnect database %q: %w", e.name, err)
		}
		if region.Size() != e.size {
			return fmt.Errorf("perseas: database %q size %d does not match directory %d",
				e.name, region.Size(), e.size)
		}
		if err := l.net.FetchInto(region, 0, region.Size()); err != nil {
			return fmt.Errorf("perseas: fetch database %q: %w", e.name, err)
		}
		db := &Database{id: e.id, name: e.name, region: region}
		dbs[e.name] = db
		byID[e.id] = db
		if e.id > maxID {
			maxID = e.id
		}
	}

	// Scan each slot's remote undo log for its head transaction's
	// records. The largest id seen anywhere — commit words and log
	// records — re-seeds the transaction-id counter.
	committed := uint64(0)
	lastTxID := uint64(0)
	slotRecs := make([][]undoRecord, len(recovered))
	var repairs []repairOp
	for k, rs := range recovered {
		if rs.committed > committed {
			committed = rs.committed
		}
		if rs.committed > lastTxID {
			lastTxID = rs.committed
		}
		var recs []undoRecord
		if q > 0 {
			op, err := l.planSlotRepair(k, rs)
			if err != nil {
				return err
			}
			if op != nil {
				repairs = append(repairs, *op)
				recs = op.recs
			}
		} else {
			recs, err = scanUndoLogLazy(rs.region.Local, rs.committed, l.lazyFetcher(rs.region))
			if err != nil {
				return err
			}
			slotRecs[k] = recs
		}
		for _, rec := range recs {
			if rec.txID > lastTxID {
				lastTxID = rec.txID
			}
		}
	}

	l.metaSize = meta.Size()
	l.undoSize = undoSize
	l.metaMu.Lock()
	l.meta = meta
	l.metaMu.Unlock()
	l.slots = make([]*undoSlot, len(recovered))
	for k, rs := range recovered {
		l.slots[k] = &undoSlot{
			idx:       k,
			region:    rs.region,
			wordOff:   slotWordOffset(meta.Size(), k),
			committed: rs.committed,
		}
	}
	l.dbs = dbs
	l.byID = byID
	l.nextDBID = maxID + 1
	if storedNextID > l.nextDBID {
		// Ids of dropped databases stay retired so no stale undo record
		// can ever alias a database created after this recovery.
		l.nextDBID = storedNextID
	}
	l.dirEnd = directoryEnd(entries)

	// Roll back each slot's in-flight transaction, newest record first:
	// restore each before-image locally and repair the mirror copy.
	for _, recs := range slotRecs {
		for i := len(recs) - 1; i >= 0; i-- {
			rec := recs[i]
			db, ok := byID[rec.dbID]
			if !ok {
				// The record references a database dropped after the
				// transaction aborted; there is nothing left to restore.
				continue
			}
			if rec.offset > db.Size() || rec.length > db.Size()-rec.offset {
				return fmt.Errorf("perseas: undo record outside database %q", db.name)
			}
			l.mem.Copy(l.clock, db.region.Local[rec.offset:rec.offset+rec.length], rec.data)
			if err := l.net.Push(db.region, rec.offset, rec.length); err != nil {
				return fmt.Errorf("perseas: repair mirror of %q: %w", db.name, err)
			}
		}
	}

	// Quorum repairs are staged against the local image first and
	// published only afterwards: writes to the mirrors begin only after
	// every winner's bytes were fetched, so one slot's repair can never
	// clobber bytes another slot still needs to read. Forward repairs
	// apply in commit order (descending holder count — see repairOp);
	// rollbacks apply last, because an in-flight claim is always the
	// newest writer of its bytes.
	if len(repairs) > 0 {
		sort.SliceStable(repairs, func(i, j int) bool {
			a, b := repairs[i], repairs[j]
			if a.forward != b.forward {
				return a.forward
			}
			return a.forward && a.holders > b.holders
		})
		type pubRange struct {
			db   *Database
			off  uint64
			n    uint64
		}
		var pub []pubRange
		for _, op := range repairs {
			for i := len(op.recs) - 1; i >= 0; i-- {
				rec := op.recs[i]
				db, ok := byID[rec.dbID]
				if !ok {
					continue
				}
				if rec.offset > db.Size() || rec.length > db.Size()-rec.offset {
					return fmt.Errorf("perseas: undo record outside database %q", db.name)
				}
				if op.forward {
					data, err := l.net.FetchMirror(op.winner, db.region, rec.offset, rec.length)
					if err != nil {
						return fmt.Errorf("perseas: re-fetch committed range of %q: %w", db.name, err)
					}
					l.mem.Copy(l.clock, db.region.Local[rec.offset:rec.offset+rec.length], data)
				} else {
					l.mem.Copy(l.clock, db.region.Local[rec.offset:rec.offset+rec.length], rec.data)
				}
				pub = append(pub, pubRange{db: db, off: rec.offset, n: rec.length})
			}
		}
		for _, p := range pub {
			if err := l.net.PushAcked(p.db.region, p.off, p.n); err != nil {
				return fmt.Errorf("perseas: repair mirror of %q: %w", p.db.name, err)
			}
		}
	}

	// Quorum recovery adopted each slot's winning undo log as the local
	// image; republish it whole so every mirror's copy — including one
	// that missed straggler writes entirely — is byte-identical before
	// the region set is readable. The tail beyond the winner's records
	// is zeros, which a future scan treats as log end; stale divergent
	// tails must not survive into the next crash's winner election.
	if q > 0 {
		for _, rs := range recovered {
			if err := l.net.PushAllAcked(rs.region); err != nil {
				return fmt.Errorf("perseas: republish undo log: %w", err)
			}
		}
	}

	l.committed = committed
	l.lastTxID = lastTxID
	l.txs = make(map[*Tx]struct{})
	l.locks = newConflictTable()
	l.crashed = false
	l.stats.Recoveries++
	return nil
}

// Attach builds a Library on a node that did not create the database —
// either the restarted primary or any other workstation taking over after
// a failure (the paper stresses that mirrored data are accessible from
// any node, so recovery "can be started right-away in any available
// workstation"). It runs the full recovery procedure before returning.
func Attach(net *netram.Client, clock simclock.Clock, opts ...Option) (*Library, error) {
	l := &Library{
		net:     net,
		mem:     hostmem.Default(),
		clock:   clock,
		crashed: true,
		txs:     make(map[*Tx]struct{}),
		locks:   newConflictTable(),
	}
	for _, o := range opts {
		o(l)
	}
	net.SetClock(clock)
	if err := l.Recover(); err != nil {
		return nil, err
	}
	return l, nil
}
