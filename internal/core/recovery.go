package core

import (
	"encoding/binary"
	"fmt"

	"github.com/ics-forth/perseas/internal/hostmem"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/simclock"
)

// recoveredSlot pairs a reconnected undo-slot region with its committed
// word as read from the recovered metadata region.
type recoveredSlot struct {
	region    *netram.Region
	committed uint64
}

// lazyFetcher returns an ensure(n) callback that materialises region
// bytes [0,n) on demand, chunk by chunk: most crashes leave only a
// handful of records per slot, so recovery transfers kilobytes, not the
// whole undo region.
func (l *Library) lazyFetcher(region *netram.Region) func(uint64) error {
	const undoChunk = 64 << 10
	var fetched uint64
	return func(n uint64) error {
		if n > region.Size() {
			n = region.Size()
		}
		if n <= fetched {
			return nil
		}
		target := (n + undoChunk - 1) / undoChunk * undoChunk
		if target > region.Size() {
			target = region.Size()
		}
		if err := l.net.FetchInto(region, fetched, target-fetched); err != nil {
			return fmt.Errorf("perseas: fetch undo log: %w", err)
		}
		fetched = target
		return nil
	}
}

// Recover implements engine.Engine: the paper's Section 3/4 recovery
// procedure, run after the primary node crashed and lost its main memory.
//
// The library first reconnects to the segments holding the PERSEAS
// metadata (the paper's sci_connect_segment); from those it retrieves the
// information needed to find and reconnect to the remote database records
// and the remote undo logs. Undo slots beyond the paper's slot 0 are
// discovered by probing their derived segment names until one is missing.
// Each slot is then handled exactly as the paper handles its single log:
// if the slot's head transaction had started propagating modifications
// before the failure (its records are newer than the slot's commit word),
// the original data found in the remote undo log are copied back to the
// remote database, discarding the illegal updates; the local database is
// then recovered from the — now legal — remote segments. Concurrent
// transactions hold disjoint ranges, so the rollback order across slots
// does not matter.
func (l *Library) Recover() error {
	return l.RecoverWithDecisions(nil)
}

// RecoverWithDecisions is Recover plus a coordinator's verdicts: decided
// maps an undo-slot index to a transaction id a cross-shard coordinator
// recorded as committed. A decided id that outranks the slot's recovered
// commit word means the commit-word push lost a race with the crash
// after the decision became durable; recovery publishes the word itself
// before the rollback scan, so the transaction's records count as
// committed on this shard instead of being rolled back. Stale decisions
// (id not above the recovered word) are no-ops, so replaying an old
// decision record is always safe.
func (l *Library) RecoverWithDecisions(decided map[int]uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.crashed {
		return fmt.Errorf("perseas: recover called on a running library")
	}

	// Reconnect to the metadata segments and fetch the directory.
	meta, err := l.net.Connect(l.qualify(metaRegionName))
	if err != nil {
		return fmt.Errorf("perseas: reconnect metadata: %w", err)
	}
	if err := l.net.FetchInto(meta, 0, meta.Size()); err != nil {
		return fmt.Errorf("perseas: fetch metadata: %w", err)
	}
	committed0, undoSize, storedNextID, entries, err := readDirectory(meta.Local)
	if err != nil {
		return err
	}

	// Reconnect to every undo slot. Slot 0 always exists; further slots
	// were allocated on demand by past concurrency and are found by name.
	recovered := []recoveredSlot{}
	for k := 0; k < maxUndoSlots; k++ {
		region, err := l.net.Connect(l.qualify(undoSlotName(k)))
		if err != nil {
			if k == 0 {
				return fmt.Errorf("perseas: reconnect undo log: %w", err)
			}
			break
		}
		if region.Size() != undoSize {
			return fmt.Errorf("perseas: undo slot %d size %d does not match metadata %d",
				k, region.Size(), undoSize)
		}
		word := committed0
		if k > 0 {
			word = binary.BigEndian.Uint64(meta.Local[slotWordOffset(meta.Size(), k):])
		}
		if d := decided[k]; d > word {
			// The coordinator decided this slot's head transaction
			// committed but the crash beat the word push. Publish the
			// word now, before the rollback scan, so the scan treats the
			// transaction's records as committed.
			wordOff := slotWordOffset(meta.Size(), k)
			binary.BigEndian.PutUint64(meta.Local[wordOff:], d)
			if err := l.net.Push(meta, wordOff, 8); err != nil {
				return fmt.Errorf("perseas: publish decided commit word: %w", err)
			}
			word = d
		}
		recovered = append(recovered, recoveredSlot{region: region, committed: word})
	}

	// Reconnect to every database record and copy it back.
	dbs := make(map[string]*Database, len(entries))
	byID := make(map[uint32]*Database, len(entries))
	var maxID uint32
	for _, e := range entries {
		region, err := l.net.Connect(l.qualify(dbRegionPrefix + e.name))
		if err != nil {
			return fmt.Errorf("perseas: reconnect database %q: %w", e.name, err)
		}
		if region.Size() != e.size {
			return fmt.Errorf("perseas: database %q size %d does not match directory %d",
				e.name, region.Size(), e.size)
		}
		if err := l.net.FetchInto(region, 0, region.Size()); err != nil {
			return fmt.Errorf("perseas: fetch database %q: %w", e.name, err)
		}
		db := &Database{id: e.id, name: e.name, region: region}
		dbs[e.name] = db
		byID[e.id] = db
		if e.id > maxID {
			maxID = e.id
		}
	}

	// Scan each slot's remote undo log for its head transaction's
	// records. The largest id seen anywhere — commit words and log
	// records — re-seeds the transaction-id counter.
	committed := uint64(0)
	lastTxID := uint64(0)
	slotRecs := make([][]undoRecord, len(recovered))
	for k, rs := range recovered {
		if rs.committed > committed {
			committed = rs.committed
		}
		if rs.committed > lastTxID {
			lastTxID = rs.committed
		}
		recs, err := scanUndoLogLazy(rs.region.Local, rs.committed, l.lazyFetcher(rs.region))
		if err != nil {
			return err
		}
		slotRecs[k] = recs
		for _, rec := range recs {
			if rec.txID > lastTxID {
				lastTxID = rec.txID
			}
		}
	}

	l.metaSize = meta.Size()
	l.undoSize = undoSize
	l.metaMu.Lock()
	l.meta = meta
	l.metaMu.Unlock()
	l.slots = make([]*undoSlot, len(recovered))
	for k, rs := range recovered {
		l.slots[k] = &undoSlot{
			idx:       k,
			region:    rs.region,
			wordOff:   slotWordOffset(meta.Size(), k),
			committed: rs.committed,
		}
	}
	l.dbs = dbs
	l.byID = byID
	l.nextDBID = maxID + 1
	if storedNextID > l.nextDBID {
		// Ids of dropped databases stay retired so no stale undo record
		// can ever alias a database created after this recovery.
		l.nextDBID = storedNextID
	}
	l.dirEnd = directoryEnd(entries)

	// Roll back each slot's in-flight transaction, newest record first:
	// restore each before-image locally and repair the mirror copy.
	for _, recs := range slotRecs {
		for i := len(recs) - 1; i >= 0; i-- {
			rec := recs[i]
			db, ok := byID[rec.dbID]
			if !ok {
				// The record references a database dropped after the
				// transaction aborted; there is nothing left to restore.
				continue
			}
			if rec.offset > db.Size() || rec.length > db.Size()-rec.offset {
				return fmt.Errorf("perseas: undo record outside database %q", db.name)
			}
			l.mem.Copy(l.clock, db.region.Local[rec.offset:rec.offset+rec.length], rec.data)
			if err := l.net.Push(db.region, rec.offset, rec.length); err != nil {
				return fmt.Errorf("perseas: repair mirror of %q: %w", db.name, err)
			}
		}
	}

	l.committed = committed
	l.lastTxID = lastTxID
	l.txs = make(map[*Tx]struct{})
	l.locks = newConflictTable()
	l.crashed = false
	l.stats.Recoveries++
	return nil
}

// Attach builds a Library on a node that did not create the database —
// either the restarted primary or any other workstation taking over after
// a failure (the paper stresses that mirrored data are accessible from
// any node, so recovery "can be started right-away in any available
// workstation"). It runs the full recovery procedure before returning.
func Attach(net *netram.Client, clock simclock.Clock, opts ...Option) (*Library, error) {
	l := &Library{
		net:     net,
		mem:     hostmem.Default(),
		clock:   clock,
		crashed: true,
		txs:     make(map[*Tx]struct{}),
		locks:   newConflictTable(),
	}
	for _, o := range opts {
		o(l)
	}
	net.SetClock(clock)
	if err := l.Recover(); err != nil {
		return nil, err
	}
	return l, nil
}
