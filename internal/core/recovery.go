package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/ics-forth/perseas/internal/flight"
	"github.com/ics-forth/perseas/internal/hostmem"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/trace"
)

// recoveredSlot pairs a reconnected undo-slot region with its committed
// word as read from the recovered metadata region. Under quorum
// recovery, committed is the maximum word any reachable mirror holds
// for the slot and holders lists the mirrors whose metadata snapshot
// held that maximum (empty in all-ack mode). prefix is how many leading
// bytes of the winning mirror's log were adopted into the local image —
// the only bytes the final republish must ship; the tail beyond it is
// zeroed remotely without a payload.
type recoveredSlot struct {
	region    *netram.Region
	committed uint64
	holders   []int
	prefix    uint64
}

// mirrorCopy is one reachable mirror's snapshot of the metadata region,
// taken at the start of a quorum recovery. A crash can leave mirrors at
// different prefixes of the push stream, so no single copy can be
// trusted for the commit words.
type mirrorCopy struct {
	idx int
	buf []byte
}

// runParallel runs fn(0)..fn(n-1) on up to workers goroutines. With
// workers <= 1 it is a plain serial loop that stops at the first error.
// In parallel every index runs regardless of failures and the error of
// the lowest failing index is returned, so the reported failure does not
// depend on goroutine scheduling.
func runParallel(workers, n int, fn func(int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fetchMetaCopies snapshots the metadata region from every reachable
// mirror, up to workers at a time. Quorum recovery needs at least n-w+1
// copies: a commit word acked by w of n mirrors is then guaranteed to
// appear in at least one snapshot, so taking the per-slot maximum over
// the copies recovers every quorum-committed word.
func (l *Library) fetchMetaCopies(meta *netram.Region, workers int) ([]mirrorCopy, error) {
	n := l.net.Mirrors()
	w := l.net.Quorum()
	bufs := make([][]byte, n)
	errs := make([]error, n)
	// Unreachable mirrors are expected here — they are why recovery is
	// running — so a fetch failure is recorded per index, never returned,
	// and the remaining mirrors are always tried.
	_ = runParallel(workers, n, func(i int) error {
		data, err := l.net.FetchMirror(i, meta, 0, meta.Size())
		if err != nil {
			errs[i] = err
			return nil
		}
		buf := make([]byte, len(data))
		copy(buf, data)
		bufs[i] = buf
		return nil
	})
	copies := make([]mirrorCopy, 0, n)
	var lastErr error
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			lastErr = errs[i]
			continue
		}
		copies = append(copies, mirrorCopy{idx: i, buf: bufs[i]})
	}
	if len(copies) < n-w+1 {
		return nil, fmt.Errorf("perseas: quorum recovery reached %d of %d metadata copies, needs %d to cover every %d-ack commit: %w",
			len(copies), n, n-w+1, w, lastErr)
	}
	return copies, nil
}

// repairOp is one undo slot's staged crash repair. forward means the
// slot's head transaction is committed (its id equals the slot's merged
// commit word, or a coordinator decided it) but may not have reached
// every mirror: its modified ranges are re-fetched from the winner
// mirror and re-published. Otherwise the head transaction is in flight
// and its before-images roll it back. holders counts the mirrors whose
// snapshot held the slot's merged word — because every mirror receives
// the push stream in the same order, holder sets of different commit
// words are nested, so a larger holder set means the word was enqueued
// earlier: sorting forward repairs by descending holder count replays
// committed overlaps in true commit order even when transaction ids
// (assigned at Begin) disagree with it.
type repairOp struct {
	slot    int
	forward bool
	txID    uint64
	winner  int
	holders int
	recs    []undoRecord
}

// scanMirrorUndoLog parses mirror m's copy of an undo-slot region
// without touching the region's local buffer, fetching lazily in
// chunks. The buffer grows with the fetched prefix instead of being
// sized for the whole region up front, so scanning every holder of
// every slot allocates proportionally to the records actually written,
// not mirrors × slots × region size. The returned records alias buf;
// fetched is how many leading bytes of the mirror's log were
// materialised.
func (l *Library) scanMirrorUndoLog(m int, region *netram.Region, committed uint64) (recs []undoRecord, buf []byte, fetched uint64, err error) {
	size := region.Size()
	ensure := func(n uint64) ([]byte, error) {
		if n > size {
			n = size
		}
		if n <= fetched {
			return buf, nil
		}
		target := (n + undoChunk - 1) / undoChunk * undoChunk
		if target > size {
			target = size
		}
		if uint64(len(buf)) < target {
			grow := uint64(2 * len(buf))
			if grow < target {
				grow = target
			}
			if grow > size {
				grow = size
			}
			grown := make([]byte, grow)
			copy(grown, buf[:fetched])
			buf = grown
		}
		data, ferr := l.net.FetchMirror(m, region, fetched, target-fetched)
		if ferr != nil {
			return nil, fmt.Errorf("perseas: fetch undo log from mirror %d: %w", m, ferr)
		}
		copy(buf[fetched:], data)
		fetched = target
		return buf, nil
	}
	recs, err = scanUndoLogLazy(committed, size, ensure)
	return recs, buf, fetched, err
}

// planSlotRepair decides how quorum recovery settles undo slot k. Every
// mirror receives the slot's pushes in enqueue order, so each mirror's
// log is a prefix of the slot's true record sequence; the scan with the
// lowest threshold that still admits the head transaction (word-1)
// makes a committed-but-possibly-lagging head visible. Among the
// slot's word holders the log with the highest head id, then the most
// records, is the longest prefix — it contains every record that has
// data anywhere. Its bytes become the local view of the slot; the
// returned prefix is how many of them were materialised, which is all
// the final republish needs to ship.
func (l *Library) planSlotRepair(k int, rs recoveredSlot) (*repairOp, uint64, error) {
	threshold := rs.committed
	if threshold > 0 {
		threshold--
	}
	bestN := -1
	var bestHead, bestFetched uint64
	var bestWinner int
	var bestRecs []undoRecord
	var bestBuf []byte
	var lastErr error
	for _, m := range rs.holders {
		recs, buf, fetched, err := l.scanMirrorUndoLog(m, rs.region, threshold)
		if err != nil {
			lastErr = err
			continue
		}
		head := uint64(0)
		if len(recs) > 0 {
			head = recs[0].txID
		}
		if bestN < 0 || head > bestHead || (head == bestHead && len(recs) > bestN) {
			bestHead, bestN, bestWinner = head, len(recs), m
			bestRecs, bestBuf, bestFetched = recs, buf, fetched
		}
	}
	if bestN < 0 {
		return nil, 0, fmt.Errorf("perseas: undo slot %d unreadable on every quorum-current mirror: %w", k, lastErr)
	}
	copy(rs.region.Local[:bestFetched], bestBuf[:bestFetched])
	if bestN == 0 {
		return nil, bestFetched, nil
	}
	return &repairOp{
		slot:    k,
		forward: bestHead == rs.committed,
		txID:    bestHead,
		winner:  bestWinner,
		holders: len(rs.holders),
		recs:    bestRecs,
	}, bestFetched, nil
}

// lazyFetcher returns an ensure(n) callback that materialises region
// bytes [0,n) on demand, chunk by chunk: most crashes leave only a
// handful of records per slot, so recovery transfers kilobytes, not the
// whole undo region.
func (l *Library) lazyFetcher(region *netram.Region) func(uint64) ([]byte, error) {
	var fetched uint64
	return func(n uint64) ([]byte, error) {
		if n > region.Size() {
			n = region.Size()
		}
		if n <= fetched {
			return region.Local, nil
		}
		target := (n + undoChunk - 1) / undoChunk * undoChunk
		if target > region.Size() {
			target = region.Size()
		}
		if err := l.net.FetchInto(region, fetched, target-fetched); err != nil {
			return nil, fmt.Errorf("perseas: fetch undo log: %w", err)
		}
		fetched = target
		return region.Local, nil
	}
}

// mergeSlotWord settles slot k's commit word after the crash. All-ack
// mode trusts the fetched metadata copy. Quorum mode merges the word
// across the mirror snapshots by maximum — a commit acked by w mirrors
// is on at least one snapshot — and republishes it if any mirror
// lagged; the returned holders are the mirrors whose snapshot held the
// winning word. A coordinator decision that outranks the merged word is
// published the same way, so the decided transaction counts as
// committed on this shard instead of being rolled back.
func (l *Library) mergeSlotWord(meta *netram.Region, k int, committed0 uint64, q int, metaCopies []mirrorCopy, decided map[int]uint64) (uint64, []int, error) {
	word := committed0
	if k > 0 {
		word = binary.BigEndian.Uint64(meta.Local[slotWordOffset(meta.Size(), k):])
	}
	var holders []int
	if q > 0 {
		// Merge the slot's word across the snapshots: a commit that
		// reached its quorum is on at least one of them. Mirrors
		// holding the maximum are the slot's repair candidates — the
		// word is enqueued after the head transaction's records and
		// data, so a word holder has all of them.
		wordOff := slotWordOffset(meta.Size(), k)
		merged := word
		for _, mc := range metaCopies {
			if w := binary.BigEndian.Uint64(mc.buf[wordOff:]); w > merged {
				merged = w
			}
		}
		stale := false
		for _, mc := range metaCopies {
			if binary.BigEndian.Uint64(mc.buf[wordOff:]) == merged {
				holders = append(holders, mc.idx)
			} else {
				stale = true
			}
		}
		if len(holders) == 0 {
			for _, mc := range metaCopies {
				holders = append(holders, mc.idx)
			}
		}
		if merged != word || stale {
			binary.BigEndian.PutUint64(meta.Local[wordOff:], merged)
			if err := l.net.PushAcked(meta, wordOff, 8); err != nil {
				return 0, nil, fmt.Errorf("perseas: republish commit word of slot %d: %w", k, err)
			}
			word = merged
		}
	}
	if d := decided[k]; d > word {
		// The coordinator decided this slot's head transaction
		// committed but the crash beat the word push. Publish the
		// word now, before the rollback scan, so the scan treats the
		// transaction's records as committed.
		wordOff := slotWordOffset(meta.Size(), k)
		binary.BigEndian.PutUint64(meta.Local[wordOff:], d)
		if err := l.net.PushAcked(meta, wordOff, 8); err != nil {
			return 0, nil, fmt.Errorf("perseas: publish decided commit word: %w", err)
		}
		word = d
		if q > 0 {
			// No snapshot holds the decided word, but the prepared
			// data behind a decision is always pushed fully acked,
			// so any reachable mirror can serve the repair.
			holders = holders[:0]
			for _, mc := range metaCopies {
				holders = append(holders, mc.idx)
			}
		}
	}
	return word, holders, nil
}

// recoveryStep runs one recovery phase under a trace span, a phase
// histogram, and a flight-recorder event. The clock is only read, never
// advanced, so instrumented recovery reports the same modelled time as
// the bare procedure.
func (l *Library) recoveryStep(root trace.InfraSpan, workers int, name string, h *obs.Histogram, fn func() error) error {
	l.flightRec.Record(flight.RecoveryPhase, "core", name, uint64(workers))
	sp := root.Child(trace.LayerCore, name)
	start := l.clock.Now()
	err := fn()
	h.ObserveDuration(l.clock.Now() - start)
	sp.End()
	return err
}

// Recover implements engine.Engine: the paper's Section 3/4 recovery
// procedure, run after the primary node crashed and lost its main memory.
//
// The library first reconnects to the segments holding the PERSEAS
// metadata (the paper's sci_connect_segment); from those it retrieves the
// information needed to find and reconnect to the remote database records
// and the remote undo logs. Undo slots beyond the paper's slot 0 are
// discovered by probing their derived segment names until one is missing.
// Each slot is then handled exactly as the paper handles its single log:
// if the slot's head transaction had started propagating modifications
// before the failure (its records are newer than the slot's commit word),
// the original data found in the remote undo log are copied back to the
// remote database, discarding the illegal updates; the local database is
// then recovered from the — now legal — remote segments. Concurrent
// transactions hold disjoint ranges, so the rollback order across slots
// does not matter — which is also what lets WithRecoveryParallelism
// scan and roll back slots concurrently without changing the outcome.
func (l *Library) Recover() error {
	return l.RecoverWithDecisions(nil)
}

// RecoverWithDecisions is Recover plus a coordinator's verdicts: decided
// maps an undo-slot index to a transaction id a cross-shard coordinator
// recorded as committed. A decided id that outranks the slot's recovered
// commit word means the commit-word push lost a race with the crash
// after the decision became durable; recovery publishes the word itself
// before the rollback scan, so the transaction's records count as
// committed on this shard instead of being rolled back. Stale decisions
// (id not above the recovered word) are no-ops, so replaying an old
// decision record is always safe.
func (l *Library) RecoverWithDecisions(decided map[int]uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.crashed {
		return fmt.Errorf("perseas: recover called on a running library")
	}
	workers := l.recoveryWorkers
	if workers < 1 {
		workers = 1
	}
	root := l.tracer.Start(trace.LayerCore, "recover")
	start := l.clock.Now()
	if err := l.recoverLocked(root, workers, decided); err != nil {
		l.flightRec.Record(flight.RecoveryPhase, "core", "failed", uint64(workers))
		root.End()
		return err
	}
	l.recMetrics.RecoverTotal.ObserveDuration(l.clock.Now() - start)
	l.flightRec.Record(flight.RecoveryPhase, "core", "complete", uint64(workers))
	root.EndN(uint64(workers))
	return nil
}

// recoverLocked is the recovery procedure proper, split into phases.
// With workers == 1 every phase runs the exact serial loop this package
// has always run; with workers > 1 the phases whose units are
// independent — metadata snapshots, slot reconnects and scans, database
// fetches, repair publishes — spread over a bounded worker pool, and
// database fetches additionally stripe read chunks across the surviving
// mirrors. The recovered state is byte-identical either way: slots hold
// disjoint ranges, staged repairs still apply serially in commit order,
// and batched publishes ship the same final local bytes the per-record
// pushes would.
func (l *Library) recoverLocked(root trace.InfraSpan, workers int, decided map[int]uint64) error {
	q := l.net.Quorum()

	// Phase 1: reconnect the metadata region, fetch the directory, and —
	// under quorum — snapshot the metadata from every reachable mirror.
	var (
		meta         *netram.Region
		committed0   uint64
		undoSize     uint64
		storedNextID uint32
		entries      []dirEntry
		metaCopies   []mirrorCopy
	)
	err := l.recoveryStep(root, workers, "meta_fetch", &l.recMetrics.MetaFetch, func() error {
		var err error
		meta, err = l.net.Connect(l.qualify(metaRegionName))
		if err != nil {
			return fmt.Errorf("perseas: reconnect metadata: %w", err)
		}
		if err := l.net.FetchInto(meta, 0, meta.Size()); err != nil {
			return fmt.Errorf("perseas: fetch metadata: %w", err)
		}
		committed0, undoSize, storedNextID, entries, err = readDirectory(meta.Local)
		if err != nil {
			return err
		}
		if q > 0 {
			// Quorum mode: the commit words on the fetched copy may lag
			// other mirrors, so snapshot the metadata from every
			// reachable mirror and merge each slot's word by maximum
			// later. The directory itself is always pushed fully acked,
			// so the base copy is authoritative for everything but the
			// words.
			metaCopies, err = l.fetchMetaCopies(meta, workers)
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Phase 2: reconnect every undo slot and settle its commit word.
	// Slot 0 always exists; further slots were allocated on demand by
	// past concurrency and are found by name. Word settlement stays
	// serial at every parallelism — it is a handful of 8-byte writes and
	// its meta.Local updates must not race.
	recovered := []recoveredSlot{}
	err = l.recoveryStep(root, workers, "slot_connect", &l.recMetrics.SlotConnect, func() error {
		if workers <= 1 {
			for k := 0; k < maxUndoSlots; k++ {
				region, err := l.net.Connect(l.qualify(undoSlotName(k)))
				if err != nil {
					if k == 0 {
						return fmt.Errorf("perseas: reconnect undo log: %w", err)
					}
					break
				}
				if region.Size() != undoSize {
					return fmt.Errorf("perseas: undo slot %d size %d does not match metadata %d",
						k, region.Size(), undoSize)
				}
				word, holders, err := l.mergeSlotWord(meta, k, committed0, q, metaCopies, decided)
				if err != nil {
					return err
				}
				recovered = append(recovered, recoveredSlot{region: region, committed: word, holders: holders})
			}
			return nil
		}
		// Probe every possible slot name concurrently; the connected
		// prefix is exactly the slot set the serial probe would find.
		names := make([]string, maxUndoSlots)
		for k := range names {
			names[k] = l.qualify(undoSlotName(k))
		}
		regions, cerr := l.net.ConnectMany(names, workers)
		if len(regions) == 0 {
			return fmt.Errorf("perseas: reconnect undo log: %w", cerr)
		}
		for k, region := range regions {
			if region.Size() != undoSize {
				return fmt.Errorf("perseas: undo slot %d size %d does not match metadata %d",
					k, region.Size(), undoSize)
			}
			word, holders, err := l.mergeSlotWord(meta, k, committed0, q, metaCopies, decided)
			if err != nil {
				return err
			}
			recovered = append(recovered, recoveredSlot{region: region, committed: word, holders: holders})
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Phase 3: reconnect every database record and copy it back. At
	// parallelism the regions reconnect through the pool and each image
	// is fetched in read-chunk stripes spread round-robin across the
	// surviving mirrors, so the transfer rides their aggregate
	// bandwidth. Striping is safe mid-recovery: replicas can only
	// disagree on bytes of some slot's head transaction, and exactly
	// those ranges are rolled back or repaired after the fetch.
	dbs := make(map[string]*Database, len(entries))
	byID := make(map[uint32]*Database, len(entries))
	var maxID uint32
	err = l.recoveryStep(root, workers, "db_fetch", &l.recMetrics.DBFetch, func() error {
		regions := make([]*netram.Region, len(entries))
		if workers <= 1 {
			for i, e := range entries {
				region, err := l.net.Connect(l.qualify(dbRegionPrefix + e.name))
				if err != nil {
					return fmt.Errorf("perseas: reconnect database %q: %w", e.name, err)
				}
				if region.Size() != e.size {
					return fmt.Errorf("perseas: database %q size %d does not match directory %d",
						e.name, region.Size(), e.size)
				}
				if err := l.net.FetchInto(region, 0, region.Size()); err != nil {
					return fmt.Errorf("perseas: fetch database %q: %w", e.name, err)
				}
				regions[i] = region
			}
		} else {
			names := make([]string, len(entries))
			for i, e := range entries {
				names[i] = l.qualify(dbRegionPrefix + e.name)
			}
			regs, cerr := l.net.ConnectMany(names, workers)
			if cerr != nil {
				return fmt.Errorf("perseas: reconnect database %q: %w", entries[len(regs)].name, cerr)
			}
			for i, region := range regs {
				if region.Size() != entries[i].size {
					return fmt.Errorf("perseas: database %q size %d does not match directory %d",
						entries[i].name, region.Size(), entries[i].size)
				}
				regions[i] = region
			}
			if err := runParallel(workers, len(entries), func(i int) error {
				if err := l.net.FetchIntoStriped(regions[i], workers); err != nil {
					return fmt.Errorf("perseas: fetch database %q: %w", entries[i].name, err)
				}
				return nil
			}); err != nil {
				return err
			}
		}
		for i, e := range entries {
			db := &Database{id: e.id, name: e.name, region: regions[i]}
			dbs[e.name] = db
			byID[e.id] = db
			if e.id > maxID {
				maxID = e.id
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Phase 4: scan each slot's remote undo log for its head
	// transaction's records. Slots hold disjoint ranges and each scan
	// touches only its own region, so the scans are independent; the
	// aggregation below runs in slot order either way, keeping the
	// repair list and the id re-seed deterministic. The largest id seen
	// anywhere — commit words and log records — re-seeds the
	// transaction-id counter.
	committed := uint64(0)
	lastTxID := uint64(0)
	slotRecs := make([][]undoRecord, len(recovered))
	type slotScan struct {
		recs   []undoRecord
		op     *repairOp
		prefix uint64
	}
	scans := make([]slotScan, len(recovered))
	var repairs []repairOp
	err = l.recoveryStep(root, workers, "slot_scan", &l.recMetrics.SlotScan, func() error {
		if err := runParallel(workers, len(recovered), func(k int) error {
			rs := recovered[k]
			if q > 0 {
				op, prefix, err := l.planSlotRepair(k, rs)
				if err != nil {
					return err
				}
				scans[k] = slotScan{op: op, prefix: prefix}
				return nil
			}
			recs, err := scanUndoLogLazy(rs.committed, rs.region.Size(), l.lazyFetcher(rs.region))
			if err != nil {
				return err
			}
			scans[k] = slotScan{recs: recs}
			return nil
		}); err != nil {
			return err
		}
		for k := range recovered {
			rs := &recovered[k]
			if rs.committed > committed {
				committed = rs.committed
			}
			if rs.committed > lastTxID {
				lastTxID = rs.committed
			}
			recs := scans[k].recs
			if q > 0 {
				rs.prefix = scans[k].prefix
				if op := scans[k].op; op != nil {
					repairs = append(repairs, *op)
					recs = op.recs
				}
			} else {
				slotRecs[k] = recs
			}
			for _, rec := range recs {
				if rec.txID > lastTxID {
					lastTxID = rec.txID
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	l.metaSize = meta.Size()
	l.undoSize = undoSize
	l.metaMu.Lock()
	l.meta = meta
	l.metaMu.Unlock()
	l.slots = make([]*undoSlot, len(recovered))
	for k, rs := range recovered {
		l.slots[k] = &undoSlot{
			idx:       k,
			region:    rs.region,
			wordOff:   slotWordOffset(meta.Size(), k),
			committed: rs.committed,
		}
	}
	l.dbs = dbs
	l.byID = byID
	l.nextDBID = maxID + 1
	if storedNextID > l.nextDBID {
		// Ids of dropped databases stay retired so no stale undo record
		// can ever alias a database created after this recovery.
		l.nextDBID = storedNextID
	}
	l.dirEnd = directoryEnd(entries)

	// Phase 5: roll back each slot's in-flight transaction, newest
	// record first: restore each before-image locally and repair the
	// mirror copy. At parallelism the local restores still run slot by
	// slot, newest first, and the repair publish batches the final local
	// bytes per database — ranges within a transaction may overlap, but
	// every publish then ships the same fully-restored bytes the
	// per-record pushes would have converged on.
	err = l.recoveryStep(root, workers, "rollback", &l.recMetrics.Rollback, func() error {
		if workers <= 1 {
			for _, recs := range slotRecs {
				for i := len(recs) - 1; i >= 0; i-- {
					rec := recs[i]
					db, ok := byID[rec.dbID]
					if !ok {
						// The record references a database dropped after the
						// transaction aborted; there is nothing left to restore.
						continue
					}
					if rec.offset > db.Size() || rec.length > db.Size()-rec.offset {
						return fmt.Errorf("perseas: undo record outside database %q", db.name)
					}
					l.mem.Copy(l.clock, db.region.Local[rec.offset:rec.offset+rec.length], rec.data)
					if err := l.net.Push(db.region, rec.offset, rec.length); err != nil {
						return fmt.Errorf("perseas: repair mirror of %q: %w", db.name, err)
					}
				}
			}
			return nil
		}
		var order []*Database
		ranges := make(map[*Database][]netram.Range)
		for _, recs := range slotRecs {
			for i := len(recs) - 1; i >= 0; i-- {
				rec := recs[i]
				db, ok := byID[rec.dbID]
				if !ok {
					continue
				}
				if rec.offset > db.Size() || rec.length > db.Size()-rec.offset {
					return fmt.Errorf("perseas: undo record outside database %q", db.name)
				}
				l.mem.Copy(l.clock, db.region.Local[rec.offset:rec.offset+rec.length], rec.data)
				if _, ok := ranges[db]; !ok {
					order = append(order, db)
				}
				ranges[db] = append(ranges[db], netram.Range{Offset: rec.offset, Length: rec.length})
			}
		}
		return runParallel(workers, len(order), func(i int) error {
			db := order[i]
			if err := l.net.PushMany(db.region, ranges[db]); err != nil {
				return fmt.Errorf("perseas: repair mirror of %q: %w", db.name, err)
			}
			return nil
		})
	})
	if err != nil {
		return err
	}

	// Phase 6: quorum repairs are staged against the local image first
	// and published only afterwards: writes to the mirrors begin only
	// after every winner's bytes were fetched, so one slot's repair can
	// never clobber bytes another slot still needs to read. Forward
	// repairs apply in commit order (descending holder count — see
	// repairOp); rollbacks apply last, because an in-flight claim is
	// always the newest writer of its bytes. At parallelism the winner
	// fetches run concurrently up front (the mirrors are untouched until
	// publish, so the bytes read are the same), the local applies keep
	// their serial commit order, and the publishes batch per database.
	if len(repairs) > 0 {
		err = l.recoveryStep(root, workers, "quorum_repair", &l.recMetrics.Repair, func() error {
			sort.SliceStable(repairs, func(i, j int) bool {
				a, b := repairs[i], repairs[j]
				if a.forward != b.forward {
					return a.forward
				}
				return a.forward && a.holders > b.holders
			})
			if workers <= 1 {
				type pubRange struct {
					db  *Database
					off uint64
					n   uint64
				}
				var pub []pubRange
				for _, op := range repairs {
					for i := len(op.recs) - 1; i >= 0; i-- {
						rec := op.recs[i]
						db, ok := byID[rec.dbID]
						if !ok {
							continue
						}
						if rec.offset > db.Size() || rec.length > db.Size()-rec.offset {
							return fmt.Errorf("perseas: undo record outside database %q", db.name)
						}
						if op.forward {
							data, err := l.net.FetchMirror(op.winner, db.region, rec.offset, rec.length)
							if err != nil {
								return fmt.Errorf("perseas: re-fetch committed range of %q: %w", db.name, err)
							}
							l.mem.Copy(l.clock, db.region.Local[rec.offset:rec.offset+rec.length], data)
						} else {
							l.mem.Copy(l.clock, db.region.Local[rec.offset:rec.offset+rec.length], rec.data)
						}
						pub = append(pub, pubRange{db: db, off: rec.offset, n: rec.length})
					}
				}
				for _, p := range pub {
					if err := l.net.PushAcked(p.db.region, p.off, p.n); err != nil {
						return fmt.Errorf("perseas: repair mirror of %q: %w", p.db.name, err)
					}
				}
				return nil
			}
			// Prefetch every forward repair's winner bytes concurrently.
			// Records with a dropped database or bad bounds are skipped
			// here; the serial apply loop below reports them exactly as
			// the serial path would.
			type fetchJob struct{ op, rec int }
			var jobs []fetchJob
			pre := make([][][]byte, len(repairs))
			for i := range repairs {
				op := &repairs[i]
				if !op.forward {
					continue
				}
				pre[i] = make([][]byte, len(op.recs))
				for j, rec := range op.recs {
					db, ok := byID[rec.dbID]
					if !ok {
						continue
					}
					if rec.offset > db.Size() || rec.length > db.Size()-rec.offset {
						continue
					}
					jobs = append(jobs, fetchJob{op: i, rec: j})
				}
			}
			if err := runParallel(workers, len(jobs), func(n int) error {
				j := jobs[n]
				op := &repairs[j.op]
				rec := op.recs[j.rec]
				db := byID[rec.dbID]
				data, err := l.net.FetchMirror(op.winner, db.region, rec.offset, rec.length)
				if err != nil {
					return fmt.Errorf("perseas: re-fetch committed range of %q: %w", db.name, err)
				}
				buf := make([]byte, len(data))
				copy(buf, data)
				pre[j.op][j.rec] = buf
				return nil
			}); err != nil {
				return err
			}
			var order []*Database
			ranges := make(map[*Database][]netram.Range)
			for i := range repairs {
				op := &repairs[i]
				for j := len(op.recs) - 1; j >= 0; j-- {
					rec := op.recs[j]
					db, ok := byID[rec.dbID]
					if !ok {
						continue
					}
					if rec.offset > db.Size() || rec.length > db.Size()-rec.offset {
						return fmt.Errorf("perseas: undo record outside database %q", db.name)
					}
					if op.forward {
						l.mem.Copy(l.clock, db.region.Local[rec.offset:rec.offset+rec.length], pre[i][j])
					} else {
						l.mem.Copy(l.clock, db.region.Local[rec.offset:rec.offset+rec.length], rec.data)
					}
					if _, ok := ranges[db]; !ok {
						order = append(order, db)
					}
					ranges[db] = append(ranges[db], netram.Range{Offset: rec.offset, Length: rec.length})
				}
			}
			return runParallel(workers, len(order), func(i int) error {
				db := order[i]
				if err := l.net.PushManyAckedTraced(db.region, ranges[db], nil); err != nil {
					return fmt.Errorf("perseas: repair mirror of %q: %w", db.name, err)
				}
				return nil
			})
		})
		if err != nil {
			return err
		}
	}

	// Phase 7: quorum recovery adopted each slot's winning undo log as
	// the local image; republish it so every mirror's copy — including
	// one that missed straggler writes entirely — is byte-identical
	// before the region set is readable. Only the materialised prefix
	// ships as payload; the tail beyond the winner's records must be
	// zeros everywhere (a future scan treats zeros as log end, and stale
	// divergent tails must not survive into the next crash's winner
	// election), so it is cleared remotely without shipping a payload of
	// zeroes.
	if q > 0 {
		err = l.recoveryStep(root, workers, "undo_republish", &l.recMetrics.Republish, func() error {
			return runParallel(workers, len(recovered), func(k int) error {
				rs := recovered[k]
				if rs.prefix > 0 {
					if err := l.net.PushAcked(rs.region, 0, rs.prefix); err != nil {
						return fmt.Errorf("perseas: republish undo log: %w", err)
					}
				}
				if rs.prefix < rs.region.Size() {
					if err := l.net.ZeroRangeAcked(rs.region, rs.prefix, rs.region.Size()-rs.prefix); err != nil {
						return fmt.Errorf("perseas: republish undo log: %w", err)
					}
				}
				return nil
			})
		})
		if err != nil {
			return err
		}
	}

	l.committed = committed
	l.lastTxID = lastTxID
	l.txs = make(map[*Tx]struct{})
	l.locks = newConflictTable()
	l.crashed = false
	l.stats.Recoveries++
	return nil
}

// Attach builds a Library on a node that did not create the database —
// either the restarted primary or any other workstation taking over after
// a failure (the paper stresses that mirrored data are accessible from
// any node, so recovery "can be started right-away in any available
// workstation"). It runs the full recovery procedure before returning.
func Attach(net *netram.Client, clock simclock.Clock, opts ...Option) (*Library, error) {
	l := &Library{
		net:     net,
		mem:     hostmem.Default(),
		clock:   clock,
		crashed: true,
		txs:     make(map[*Tx]struct{}),
		locks:   newConflictTable(),
	}
	for _, o := range opts {
		o(l)
	}
	net.SetClock(clock)
	l.tracer.SetClock(clock)
	if err := l.Recover(); err != nil {
		return nil, err
	}
	return l, nil
}
