package core

import (
	"bytes"
	"errors"
	"testing"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

// rig wires a Library to in-process mirror nodes.
type rig struct {
	lib     *Library
	net     *netram.Client
	servers []*memserver.Server
	clock   *simclock.SimClock
}

func newRig(t *testing.T, nMirrors int, opts ...Option) *rig {
	t.Helper()
	clock := simclock.NewSim()
	var mirrors []netram.Mirror
	var servers []*memserver.Server
	for i := 0; i < nMirrors; i++ {
		srv := memserver.New(memserver.WithLabel("node" + string(rune('A'+i))))
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
		if err != nil {
			t.Fatal(err)
		}
		mirrors = append(mirrors, netram.Mirror{Name: srv.Label(), T: tr})
		servers = append(servers, srv)
	}
	net, err := netram.NewClient(mirrors)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := Init(net, clock, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{lib: lib, net: net, servers: servers, clock: clock}
}

// mustCreate makes a db and publishes initial content.
func (r *rig) mustCreate(t *testing.T, name string, size uint64, fill byte) engine.DB {
	t.Helper()
	db, err := r.lib.CreateDB(name, size)
	if err != nil {
		t.Fatal(err)
	}
	buf := db.Bytes()
	for i := range buf {
		buf[i] = fill
	}
	if err := r.lib.InitDB(db); err != nil {
		t.Fatal(err)
	}
	return db
}

// update runs one committed transaction writing data at offset.
func (r *rig) update(t *testing.T, db engine.DB, offset uint64, data []byte) {
	t.Helper()
	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, offset, uint64(len(data))); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[offset:], data)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestInitPublishesMetadata(t *testing.T) {
	r := newRig(t, 2)
	for i, srv := range r.servers {
		seg, err := srv.Connect("perseas.meta")
		if err != nil {
			t.Fatalf("mirror %d has no metadata segment: %v", i, err)
		}
		committed, undoSize, _, entries, err := readDirectory(seg.Data)
		if err != nil {
			t.Fatalf("mirror %d: %v", i, err)
		}
		if committed != 0 || undoSize != DefaultUndoLogSize || len(entries) != 0 {
			t.Errorf("mirror %d: committed=%d undo=%d entries=%d",
				i, committed, undoSize, len(entries))
		}
	}
}

func TestInitValidatesSizes(t *testing.T) {
	clock := simclock.NewSim()
	tr, err := transport.NewInProc(memserver.New(), sci.DefaultParams(), clock)
	if err != nil {
		t.Fatal(err)
	}
	net, err := netram.NewClient([]netram.Mirror{{Name: "n", T: tr}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Init(net, clock, WithMetaSize(4)); err == nil {
		t.Error("tiny metadata region should be rejected")
	}
	if _, err := Init(net, clock, WithUndoLogSize(4)); err == nil {
		t.Error("tiny undo log should be rejected")
	}
}

func TestCommitMakesDataVisibleOnMirrors(t *testing.T) {
	r := newRig(t, 2)
	db := r.mustCreate(t, "accounts", 1024, 0)
	r.update(t, db, 128, []byte("balance=42"))

	for i, srv := range r.servers {
		seg, err := srv.Connect("perseas.db.accounts")
		if err != nil {
			t.Fatal(err)
		}
		got, err := srv.Read(seg.ID, 128, 10)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "balance=42" {
			t.Errorf("mirror %d holds %q", i, got)
		}
	}
	if r.lib.CommittedTxID() != 1 {
		t.Errorf("committed txid = %d, want 1", r.lib.CommittedTxID())
	}
}

func TestAbortRestoresLocalData(t *testing.T) {
	r := newRig(t, 1)
	db := r.mustCreate(t, "db", 256, 0xAA)
	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 10, 20); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[10:], bytes.Repeat([]byte{0xBB}, 20))
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xAA}, 256)
	if !bytes.Equal(db.Bytes(), want) {
		t.Error("abort did not restore the before-image")
	}
	if r.lib.InTransaction() {
		t.Error("transaction still open after abort")
	}
	if got := r.lib.Stats().Aborted; got != 1 {
		t.Errorf("aborted = %d, want 1", got)
	}
}

func TestAbortUnwindsOverlappingRangesInReverse(t *testing.T) {
	r := newRig(t, 1)
	db := r.mustCreate(t, "db", 64, 0)
	copy(db.Bytes(), []byte("original"))
	r.update(t, db, 0, []byte("original")) // make "original" the committed state

	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	// First declaration captures "original"; modify; second declaration
	// of an overlapping range captures the modified bytes.
	if err := tx.SetRange(db, 0, 8); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes(), []byte("mutated1"))
	if err := tx.SetRange(db, 0, 4); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes(), []byte("XXXX"))
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := string(db.Bytes()[:8]); got != "original" {
		t.Errorf("after abort db = %q, want %q (reverse-order unwind)", got, "original")
	}
}

func TestTransactionStateMachine(t *testing.T) {
	r := newRig(t, 1)
	db := r.mustCreate(t, "db", 64, 0)

	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	// A second handle may be opened while the first is still in flight.
	tx2, err := r.lib.BeginTx()
	if err != nil {
		t.Fatalf("concurrent begin: %v", err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// A retired handle rejects every further operation.
	if err := tx.Commit(); !errors.Is(err, engine.ErrNoTransaction) {
		t.Errorf("commit on retired handle: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, engine.ErrNoTransaction) {
		t.Errorf("abort on retired handle: %v", err)
	}
	if err := tx.SetRange(db, 0, 8); !errors.Is(err, engine.ErrNoTransaction) {
		t.Errorf("set_range on retired handle: %v", err)
	}
}

func TestSetRangeValidation(t *testing.T) {
	r := newRig(t, 1)
	db := r.mustCreate(t, "db", 64, 0)
	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 60, 8); !errors.Is(err, ErrBadRange) {
		t.Errorf("overflow range: %v", err)
	}
	if err := tx.SetRange(db, 65, 0); !errors.Is(err, ErrBadRange) {
		t.Errorf("past-end range: %v", err)
	}
	if err := tx.SetRange(db, 0, 0); err != nil {
		t.Errorf("empty range should be legal: %v", err)
	}
}

func TestUndoLogFull(t *testing.T) {
	r := newRig(t, 1, WithUndoLogSize(256))
	db := r.mustCreate(t, "db", 1024, 0)
	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 200); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 200, 200); !errors.Is(err, ErrUndoLogFull) {
		t.Errorf("second range should overflow the 256-byte log: %v", err)
	}
	// The transaction is still consistent: it can be aborted.
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateDBValidation(t *testing.T) {
	r := newRig(t, 1)
	if _, err := r.lib.CreateDB("db", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := r.lib.CreateDB("db", 64); err == nil {
		t.Error("duplicate database name should fail")
	}
	if _, err := r.lib.OpenDB("db"); err != nil {
		t.Errorf("open existing: %v", err)
	}
	if _, err := r.lib.OpenDB("missing"); !errors.Is(err, ErrNoSuchDB) {
		t.Errorf("open missing: %v", err)
	}
}

func TestForeignAndStaleHandles(t *testing.T) {
	r := newRig(t, 1)
	db := r.mustCreate(t, "db", 64, 0)
	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}

	other := newRig(t, 1)
	otherDB := other.mustCreate(t, "db", 64, 0)
	if err := tx.SetRange(otherDB, 0, 4); err == nil {
		t.Error("foreign handle should be rejected")
	}
	_ = otherDB

	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := r.lib.Crash(fault.CrashPower); err != nil {
		t.Fatal(err)
	}
	if err := r.lib.Recover(); err != nil {
		t.Fatal(err)
	}
	tx2, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.SetRange(db, 0, 4); !errors.Is(err, ErrStaleDB) {
		t.Errorf("stale handle after recovery: %v", err)
	}
}

func TestOperationsFailWhileCrashed(t *testing.T) {
	r := newRig(t, 1)
	db := r.mustCreate(t, "db", 64, 0)
	if err := r.lib.Crash(fault.CrashProcess); err != nil {
		t.Fatal(err)
	}
	if _, err := r.lib.BeginTx(); !errors.Is(err, engine.ErrCrashed) {
		t.Errorf("begin while crashed: %v", err)
	}
	if _, err := r.lib.CreateDB("x", 64); !errors.Is(err, engine.ErrCrashed) {
		t.Errorf("create while crashed: %v", err)
	}
	if err := r.lib.InitDB(db); !errors.Is(err, engine.ErrCrashed) {
		t.Errorf("init while crashed: %v", err)
	}
	if _, err := r.lib.OpenDB("db"); !errors.Is(err, engine.ErrCrashed) {
		t.Errorf("open while crashed: %v", err)
	}
}

func TestRecoverRequiresCrash(t *testing.T) {
	r := newRig(t, 1)
	if err := r.lib.Recover(); err == nil {
		t.Error("recover on a running library should fail")
	}
}

func TestMultiRangeMultiDBTransaction(t *testing.T) {
	r := newRig(t, 2)
	accounts := r.mustCreate(t, "accounts", 512, 0)
	branches := r.mustCreate(t, "branches", 512, 0)

	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(accounts, 0, 8); err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(branches, 100, 8); err != nil {
		t.Fatal(err)
	}
	copy(accounts.Bytes()[0:], []byte("acct=100"))
	copy(branches.Bytes()[100:], []byte("brch=100"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	for _, srv := range r.servers {
		segA, err := srv.Connect("perseas.db.accounts")
		if err != nil {
			t.Fatal(err)
		}
		gotA, _ := srv.Read(segA.ID, 0, 8)
		segB, err := srv.Connect("perseas.db.branches")
		if err != nil {
			t.Fatal(err)
		}
		gotB, _ := srv.Read(segB.ID, 100, 8)
		if string(gotA) != "acct=100" || string(gotB) != "brch=100" {
			t.Errorf("mirror %s: %q / %q", srv.Label(), gotA, gotB)
		}
	}
}

func TestStatsProgress(t *testing.T) {
	r := newRig(t, 1)
	db := r.mustCreate(t, "db", 256, 0)
	r.update(t, db, 0, []byte("abcd"))
	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	st := r.lib.Stats()
	if st.Begun != 2 || st.Committed != 1 || st.Aborted != 1 || st.SetRanges != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesLogged != 8 {
		t.Errorf("BytesLogged = %d, want 8", st.BytesLogged)
	}
}

func TestReviveMirrorEndToEnd(t *testing.T) {
	r := newRig(t, 2)
	db := r.mustCreate(t, "db", 256, 0)
	r.update(t, db, 0, []byte("first"))

	// Mirror 1 dies; the next commit degrades it and proceeds.
	r.servers[1].Crash()
	r.update(t, db, 0, []byte("while-down"))
	if got := r.net.Live(); got != 1 {
		t.Fatalf("Live = %d, want 1", got)
	}

	// Mid-transaction revival is refused.
	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.lib.ReviveMirror(1); !errors.Is(err, engine.ErrInTransaction) {
		t.Errorf("mid-tx revive: %v", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}

	// Node repaired: reintegrate, then verify a primary crash can now
	// recover from the revived mirror alone.
	r.servers[1].Restart()
	if err := r.lib.ReviveMirror(1); err != nil {
		t.Fatal(err)
	}
	r.update(t, db, 0, []byte("after-join"))
	r.servers[0].Crash() // the OTHER mirror dies this time
	r.crashAndRecover(t)
	re, err := r.lib.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[:10]); got != "after-join" {
		t.Errorf("recovered %q via revived mirror", got)
	}
}

func TestConcurrentRangeConflict(t *testing.T) {
	r := newRig(t, 1)
	db := r.mustCreate(t, "db", 128, 0)

	tx1, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx1.SetRange(db, 0, 16); err != nil {
		t.Fatal(err)
	}
	tx2, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	// Overlapping another transaction's declared range is refused …
	if err := tx2.SetRange(db, 8, 16); !errors.Is(err, engine.ErrConflict) {
		t.Errorf("overlapping range across transactions: %v", err)
	}
	// … but a disjoint range proceeds, and the same transaction may
	// re-declare its own range freely.
	if err := tx2.SetRange(db, 64, 16); err != nil {
		t.Fatal(err)
	}
	if err := tx1.SetRange(db, 4, 8); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := r.lib.Stats().Conflicts; got != 1 {
		t.Errorf("conflicts = %d, want 1", got)
	}

	// The aborted transaction's claims are released: a fresh handle can
	// take the contested range.
	tx3, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx3.SetRange(db, 0, 16); err != nil {
		t.Fatalf("range should be free after abort: %v", err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestSmallTransactionLatencyMatchesFigure6(t *testing.T) {
	r := newRig(t, 1)
	db := r.mustCreate(t, "db", 1<<20, 0)
	r.update(t, db, 0, []byte{1, 2, 3, 4}) // warm up

	t0 := r.clock.Now()
	const txs = 100
	for i := 0; i < txs; i++ {
		r.update(t, db, uint64(i*64), []byte{1, 2, 3, 4})
	}
	perTx := (r.clock.Now() - t0) / txs
	// Fig. 6: very small transactions complete in under ~10 us,
	// sustaining on the order of 100k transactions per second.
	if perTx > 12_000 { // nanoseconds
		t.Errorf("small transaction costs %v, want ~10us", perTx)
	}
	if perTx < 5_000 {
		t.Errorf("small transaction costs %v — suspiciously cheaper than 3 copies + commit word", perTx)
	}
}
