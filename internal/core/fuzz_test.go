package core

import (
	"bytes"
	"testing"
)

// FuzzParseRecord feeds the PERSEAS undo-log parser arbitrary bytes: it
// must never panic and never return a record extending past the log.
func FuzzParseRecord(f *testing.F) {
	log := make([]byte, 256)
	writeRecord(log, 0, 7, 1, 64, []byte("seed"))
	f.Add(log, uint16(0))
	f.Add([]byte{}, uint16(0))
	f.Add(bytes.Repeat([]byte{0x42}, 100), uint16(17))
	f.Fuzz(func(t *testing.T, log []byte, cursorRaw uint16) {
		cursor := uint64(cursorRaw)
		rec, advance, ok := parseRecord(log, cursor)
		if !ok {
			return
		}
		if cursor+advance > uint64(len(log))+recordAlign {
			t.Fatalf("advance %d overruns log of %d", advance, len(log))
		}
		if rec.length != uint64(len(rec.data)) {
			t.Fatal("length field disagrees with data slice")
		}
	})
}

// FuzzScanUndoLog checks the full scan loop terminates and stays in
// bounds for arbitrary log contents.
func FuzzScanUndoLog(f *testing.F) {
	log := make([]byte, 512)
	cur := writeRecord(log, 0, 9, 1, 0, []byte("aa"))
	writeRecord(log, cur, 9, 1, 8, []byte("bb"))
	f.Add(log, uint64(5))
	f.Add(bytes.Repeat([]byte{0xFF}, 300), uint64(0))
	f.Fuzz(func(t *testing.T, log []byte, committed uint64) {
		recs := scanUndoLog(log, committed)
		for _, r := range recs {
			if r.txID <= committed {
				t.Fatal("scan returned a stale record")
			}
		}
	})
}
