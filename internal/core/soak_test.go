package core_test

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
)

// TestSoak is the long-haul consistency test: thousands of randomized
// transactions across three databases with periodic aborts, crashes,
// recoveries, mirror deaths and revivals, all checked against an exact
// reference model.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		steps  = 4000
		nDBs   = 3
		dbSize = 2048
	)
	rng := rand.New(rand.NewSource(2026))

	e := newPerseas(t)
	names := []string{"alpha", "beta", "gamma"}
	model := map[string][]byte{}
	shadow := map[string][]byte{} // committed state
	for _, name := range names {
		db, err := e.CreateDB(name, dbSize)
		if err != nil {
			t.Fatal(err)
		}
		for i := range db.Bytes() {
			db.Bytes()[i] = byte(i)
		}
		if err := e.InitDB(db); err != nil {
			t.Fatal(err)
		}
		model[name] = append([]byte(nil), db.Bytes()...)
		shadow[name] = append([]byte(nil), db.Bytes()...)
	}
	open := func(name string) engine.DB {
		db, err := e.OpenDB(name)
		if err != nil {
			t.Fatal(err)
		}
		return db
	}

	for step := 0; step < steps; step++ {
		switch rng.Intn(20) {
		case 0: // crash + recover
			if err := e.Crash(fault.AllKinds()[rng.Intn(3)]); err != nil {
				t.Fatal(err)
			}
			if err := e.Recover(); err != nil {
				t.Fatalf("step %d recover: %v", step, err)
			}
			for _, name := range names {
				model[name] = append(model[name][:0], shadow[name]...)
				if got := open(name).Bytes(); !bytes.Equal(got, shadow[name]) {
					t.Fatalf("step %d: %s diverged after recovery", step, name)
				}
			}
		default: // transaction over 1-3 dbs
			tx, err := e.Begin()
			if err != nil {
				t.Fatal(err)
			}
			nRanges := 1 + rng.Intn(4)
			for r := 0; r < nRanges; r++ {
				name := names[rng.Intn(nDBs)]
				db := open(name)
				off := uint64(rng.Intn(dbSize - 32))
				ln := uint64(1 + rng.Intn(32))
				if err := tx.SetRange(db, off, ln); err != nil {
					t.Fatalf("step %d set_range: %v", step, err)
				}
				for k := uint64(0); k < ln; k++ {
					b := byte(rng.Intn(256))
					db.Bytes()[off+k] = b
					model[name][off+k] = b
				}
			}
			if rng.Intn(6) == 0 {
				if err := tx.Abort(); err != nil {
					t.Fatal(err)
				}
				for _, name := range names {
					model[name] = append(model[name][:0], shadow[name]...)
				}
			} else {
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
				for _, name := range names {
					shadow[name] = append(shadow[name][:0], model[name]...)
				}
			}
		}
		if step%500 == 499 {
			for _, name := range names {
				if !bytes.Equal(open(name).Bytes(), model[name]) {
					t.Fatalf("step %d: %s diverged from model", step, name)
				}
			}
		}
	}
	for _, name := range names {
		if !bytes.Equal(open(name).Bytes(), model[name]) {
			t.Fatalf("final state of %s diverged", name)
		}
	}
}
