package core

import (
	"fmt"
	"sort"

	"github.com/ics-forth/perseas/internal/engine"
)

// The shard router moves a database between PERSEAS instances with the
// same dirty-epoch discipline netram.RebuildMirror uses to refill a
// replacement mirror: copy the region in chunks while transactions keep
// committing, re-copy what changed, and only quiesce the database for
// the final shrinking epoch. The primitives below are what that copy
// loop needs from a library: a consistent snapshot of an unclaimed
// range, a raw mirror push for the destination copy, a whole-database
// claim for the final epoch, and a drop that works under that claim.

// migrationTxID is the reserved conflict-table owner under which ClaimDB
// holds a whole database during the final migration epoch. Transaction
// ids are allocated sequentially from 1 and published in commit words,
// so the top id can never collide with a real transaction.
const migrationTxID = ^uint64(0)

// SnapshotRange copies db[off:off+n) into buf. It fails with
// engine.ErrConflict when any in-flight transaction holds a claim
// overlapping the range — those bytes have an undecided writer, so the
// caller marks the chunk dirty and retries next epoch. Unclaimed bytes
// are stable under the paper's API discipline (writes outside a declared
// range have undefined recovery semantics), so the copy is a consistent
// committed image.
func (l *Library) SnapshotRange(db engine.DB, off, n uint64, buf []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkAliveLocked(); err != nil {
		return err
	}
	d, err := l.ownLocked(db)
	if err != nil {
		return err
	}
	if off > d.Size() || n > d.Size()-off {
		return fmt.Errorf("%w: [%d,+%d) in %d-byte database %q",
			ErrBadRange, off, n, d.Size(), d.name)
	}
	if uint64(len(buf)) < n {
		return fmt.Errorf("perseas: snapshot buffer %d bytes, need %d", len(buf), n)
	}
	if l.locks.overlaps(d.id, off, n) {
		return fmt.Errorf("%w: snapshot range [%d,+%d) of %q",
			engine.ErrConflict, off, n, d.name)
	}
	copy(buf[:n], d.region.Local[off:off+n])
	return nil
}

// PushRange mirrors db[off:off+n) from the local copy to every mirror —
// the migration path's raw write, filling a destination shard's copy
// outside any transaction. Like InitDB it must not race transactions
// touching the same bytes; the router guarantees that by only pushing
// ranges of a database it has not yet made reachable on this shard.
func (l *Library) PushRange(db engine.DB, off, n uint64) error {
	l.mu.Lock()
	if err := l.checkAliveLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	d, err := l.ownLocked(db)
	if err != nil {
		l.mu.Unlock()
		return err
	}
	if off > d.Size() || n > d.Size()-off {
		l.mu.Unlock()
		return fmt.Errorf("%w: [%d,+%d) in %d-byte database %q",
			ErrBadRange, off, n, d.Size(), d.name)
	}
	l.mu.Unlock()
	if err := l.net.Push(d.region, off, n); err != nil {
		return fmt.Errorf("perseas: push migration range of %q: %w", d.name, err)
	}
	return nil
}

// ClaimDB claims every byte of db for a non-transactional operation (the
// final migration epoch), failing with engine.ErrConflict while any
// transaction holds a range of it. Once held, new SetRange declarations
// on the database conflict until the claim is released — by
// ReleaseDBClaim on an abandoned migration, or by DropDBMigrated when
// the move completes.
func (l *Library) ClaimDB(db engine.DB) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkAliveLocked(); err != nil {
		return err
	}
	d, err := l.ownLocked(db)
	if err != nil {
		return err
	}
	return l.locks.claim(d.id, 0, d.Size(), migrationTxID)
}

// ReleaseDBClaim drops the whole-database claim ClaimDB took.
func (l *Library) ReleaseDBClaim() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.locks.releaseAll(migrationTxID)
}

// DropDBMigrated removes a database whose contents just moved to another
// shard. Unlike DropDB it does not require global transaction quiescence
// — only that no transaction holds a claim on this database, which the
// caller guarantees by holding the ClaimDB claim through the final copy
// epoch. The migration claim itself is released here.
func (l *Library) DropDBMigrated(name string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkAliveLocked(); err != nil {
		return err
	}
	db, ok := l.dbs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchDB, name)
	}
	for _, cl := range l.locks.byDB[db.id] {
		if cl.tx != migrationTxID {
			return fmt.Errorf("perseas: drop migrated database %q: %w",
				name, engine.ErrInTransaction)
		}
	}
	if err := l.net.Free(db.region); err != nil {
		return fmt.Errorf("perseas: free database %q: %w", name, err)
	}
	db.stale = true
	delete(l.dbs, name)
	delete(l.byID, db.id)
	l.locks.releaseDB(db.id)
	l.locks.releaseAll(migrationTxID)
	return l.writeDirectoryLocked()
}

// DatabaseNames lists the live databases in name order, for tooling and
// the router's post-recovery placement rebuild.
func (l *Library) DatabaseNames() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, 0, len(l.dbs))
	for name := range l.dbs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
