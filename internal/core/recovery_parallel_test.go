package core

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/ics-forth/perseas/internal/hostmem"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

// The parallel recovery equivalence suite: WithRecoveryParallelism must
// be a pure wall-clock optimisation. For every crash scenario the suite
// rebuilds the identical crashed mirror set from scratch, recovers it
// at workers 1, 2 and 4, and demands the outcomes match byte for byte —
// every recovered local image, every byte of every mirror's segments,
// and the transaction-id reseed.

// recoveredState is everything a recovery arm produced that the other
// arms must reproduce exactly.
type recoveredState struct {
	committed uint64
	lastTxID  uint64
	dbs       map[string][]byte
	// servers[i] maps segment name to that mirror's full contents.
	servers []map[string][]byte
}

// captureState snapshots the recovered library and the raw bytes of
// every segment on every mirror server, read through fresh transports
// so no client-side cache can mask a divergence.
func captureState(t *testing.T, lib *Library, servers []*memserver.Server, clock simclock.Clock) recoveredState {
	t.Helper()
	st := recoveredState{
		committed: lib.committed,
		lastTxID:  lib.lastTxID,
		dbs:       make(map[string][]byte),
	}
	for name, db := range lib.dbs {
		st.dbs[name] = append([]byte(nil), db.region.Local...)
	}
	for _, srv := range servers {
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
		if err != nil {
			t.Fatal(err)
		}
		segs, err := tr.List()
		if err != nil {
			t.Fatal(err)
		}
		dump := make(map[string][]byte, len(segs))
		for _, s := range segs {
			h, err := tr.Connect(s.Name)
			if err != nil {
				t.Fatal(err)
			}
			data, err := tr.Read(h.ID, 0, uint32(h.Size))
			if err != nil {
				t.Fatal(err)
			}
			dump[s.Name] = append([]byte(nil), data...)
		}
		st.servers = append(st.servers, dump)
		_ = tr.Close()
	}
	return st
}

// diffStates reports every way got diverges from want.
func diffStates(t *testing.T, workers int, want, got recoveredState) {
	t.Helper()
	if got.committed != want.committed {
		t.Errorf("workers=%d: committed id %d, serial recovered %d", workers, got.committed, want.committed)
	}
	if got.lastTxID != want.lastTxID {
		t.Errorf("workers=%d: id reseed %d, serial recovered %d", workers, got.lastTxID, want.lastTxID)
	}
	if len(got.dbs) != len(want.dbs) {
		t.Errorf("workers=%d: recovered %d databases, serial recovered %d", workers, len(got.dbs), len(want.dbs))
	}
	for name, w := range want.dbs {
		if !bytes.Equal(got.dbs[name], w) {
			t.Errorf("workers=%d: database %q local image diverges from serial recovery", workers, name)
		}
	}
	if len(got.servers) != len(want.servers) {
		t.Fatalf("workers=%d: %d mirror dumps, want %d", workers, len(got.servers), len(want.servers))
	}
	for i := range want.servers {
		if len(got.servers[i]) != len(want.servers[i]) {
			t.Errorf("workers=%d: mirror %d holds %d segments, serial left %d",
				workers, i, len(got.servers[i]), len(want.servers[i]))
		}
		for name, w := range want.servers[i] {
			if !bytes.Equal(got.servers[i][name], w) {
				t.Errorf("workers=%d: mirror %d segment %q diverges from serial recovery", workers, i, name)
			}
		}
	}
}

// attachParallel recovers the crashed mirror set on a fresh node at the
// given parallelism: new transports, new client, full recovery. decided
// non-nil routes through RecoverWithDecisions, the coordinator's path.
func attachParallel(t *testing.T, servers []*memserver.Server, clock simclock.Clock, q, workers int, decided map[int]uint64) (*Library, *netram.Client) {
	t.Helper()
	var mirrors []netram.Mirror
	for _, srv := range servers {
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
		if err != nil {
			t.Fatal(err)
		}
		mirrors = append(mirrors, netram.Mirror{Name: srv.Label(), T: tr})
	}
	var nopts []netram.Option
	if q > 0 {
		nopts = append(nopts, netram.WithQuorum(q))
	}
	net, err := netram.NewClient(mirrors, nopts...)
	if err != nil {
		t.Fatal(err)
	}
	var opts []Option
	if workers > 1 {
		opts = append(opts, WithRecoveryParallelism(workers))
	}
	if decided == nil {
		lib, err := Attach(net, clock, opts...)
		if err != nil {
			t.Fatalf("attach with %d workers: %v", workers, err)
		}
		return lib, net
	}
	l := &Library{
		net:     net,
		mem:     hostmem.Default(),
		clock:   clock,
		crashed: true,
		txs:     make(map[*Tx]struct{}),
		locks:   newConflictTable(),
	}
	for _, o := range opts {
		o(l)
	}
	net.SetClock(clock)
	if err := l.RecoverWithDecisions(decided); err != nil {
		t.Fatalf("recover with decisions at %d workers: %v", workers, err)
	}
	return l, net
}

// dirtyMirror writes data straight onto one mirror server's copy of a
// region, bypassing the client — the crash window where a transaction's
// modifications reached remote memory before the primary died, made
// synchronous and deterministic.
func dirtyMirror(t *testing.T, srv *memserver.Server, clock simclock.Clock, name string, off uint64, data []byte) {
	t.Helper()
	tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tr.Connect(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(h.ID, off, data); err != nil {
		t.Fatal(err)
	}
	_ = tr.Close()
}

// buildAllAckCrash constructs the all-ack scenario: two databases, two
// committed transactions, and two in-flight transactions on two undo
// slots whose garbage already reached every mirror. The primary is then
// abandoned mid-flight.
func buildAllAckCrash(t *testing.T) ([]*memserver.Server, *simclock.SimClock) {
	t.Helper()
	clock := simclock.NewSim()
	var servers []*memserver.Server
	var mirrors []netram.Mirror
	for i := 0; i < 3; i++ {
		srv := memserver.New(memserver.WithLabel("node" + string(rune('A'+i))))
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		mirrors = append(mirrors, netram.Mirror{Name: srv.Label(), T: tr})
	}
	net, err := netram.NewClient(mirrors)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := Init(net, clock)
	if err != nil {
		t.Fatal(err)
	}
	dbA, err := lib.CreateDB("alpha", 4096)
	if err != nil {
		t.Fatal(err)
	}
	dbB, err := lib.CreateDB("beta", 4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dbA.Bytes() {
		dbA.Bytes()[i] = 0x11
	}
	for i := range dbB.Bytes() {
		dbB.Bytes()[i] = 0x22
	}
	if err := lib.InitDB(dbA); err != nil {
		t.Fatal(err)
	}
	if err := lib.InitDB(dbB); err != nil {
		t.Fatal(err)
	}
	for i, db := range []interface {
		Bytes() []byte
	}{dbA, dbB} {
		tx, err := lib.BeginTx()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.SetRange(db.(*Database), uint64(i)*64, 8); err != nil {
			t.Fatal(err)
		}
		copy(db.Bytes()[uint64(i)*64:], []byte(fmt.Sprintf("commit-%d", i)))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Two concurrent in-flight transactions occupy undo slots 0 and 1;
	// their modifications land on every mirror, then the primary dies.
	tx1, err := lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx1.SetRange(dbA, 128, 8); err != nil {
		t.Fatal(err)
	}
	if err := tx2.SetRange(dbB, 256, 8); err != nil {
		t.Fatal(err)
	}
	for _, srv := range servers {
		dirtyMirror(t, srv, clock, "perseas.db.alpha", 128, []byte("GARBAGE1"))
		dirtyMirror(t, srv, clock, "perseas.db.beta", 256, []byte("GARBAGE2"))
	}
	return servers, clock
}

// TestParallelRecoveryEquivalenceAllAck: all-ack crash with rollback
// work on two slots — workers 2 and 4 must reproduce the serial
// recovery byte for byte.
func TestParallelRecoveryEquivalenceAllAck(t *testing.T) {
	var want recoveredState
	for _, workers := range []int{1, 2, 4} {
		servers, clock := buildAllAckCrash(t)
		lib, net := attachParallel(t, servers, clock, 0, workers, nil)
		db, err := lib.OpenDB("alpha")
		if err != nil {
			t.Fatal(err)
		}
		if got := string(db.Bytes()[128:136]); got == "GARBAGE1" {
			t.Fatalf("workers=%d: in-flight transaction not rolled back", workers)
		}
		mismatches, err := net.VerifyAll()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mismatches {
			t.Errorf("workers=%d: post-recovery divergence: %v", workers, m)
		}
		got := captureState(t, lib, servers, clock)
		if workers == 1 {
			want = got
			continue
		}
		diffStates(t, workers, want, got)
	}
}

// TestParallelRecoveryEquivalenceQuorum: w=1 quorum crash where only
// mirror A holds the last committed transaction and an in-flight
// transaction dirtied mirror A alone. Striped fetches and batched
// repairs must land on the identical final state.
func TestParallelRecoveryEquivalenceQuorum(t *testing.T) {
	build := func(t *testing.T) *quorumCrashRig {
		r := newQuorumCrashRig(t, 3, 1, 1, 2)
		db, err := r.lib.CreateDB("ledger", 2048)
		if err != nil {
			t.Fatal(err)
		}
		for i := range db.Bytes() {
			db.Bytes()[i] = 0x33
		}
		if err := r.lib.InitDB(db); err != nil {
			t.Fatal(err)
		}
		tx, err := r.lib.BeginTx()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.SetRange(db, 0, 6); err != nil {
			t.Fatal(err)
		}
		copy(db.Bytes()[0:], []byte("stable"))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		r.net.WaitCatchUp()
		// From here on only mirror A receives writes.
		r.engageStalls()
		tx2, err := r.lib.BeginTx()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx2.SetRange(db, 512, 6); err != nil {
			t.Fatal(err)
		}
		copy(db.Bytes()[512:], []byte("lonely"))
		if err := tx2.Commit(); err != nil {
			t.Fatalf("1-of-3 commit: %v", err)
		}
		// In-flight transaction: undo record on A, garbage on A, no word.
		tx3, err := r.lib.BeginTx()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx3.SetRange(db, 1024, 6); err != nil {
			t.Fatal(err)
		}
		dirtyMirror(t, r.servers[0], r.clock, "perseas.db.ledger", 1024, []byte("BROKEN"))
		return r
	}
	var want recoveredState
	for _, workers := range []int{1, 2, 4} {
		r := build(t)
		lib, net := attachParallel(t, r.servers, r.clock, 1, workers, nil)
		db, err := lib.OpenDB("ledger")
		if err != nil {
			t.Fatal(err)
		}
		if got := string(db.Bytes()[512:518]); got != "lonely" {
			t.Errorf("workers=%d: single-mirror committed tx lost: %q", workers, got)
		}
		if got := string(db.Bytes()[1024:1030]); got == "BROKEN" {
			t.Errorf("workers=%d: in-flight transaction not rolled back", workers)
		}
		mismatches, err := net.VerifyAll()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mismatches {
			t.Errorf("workers=%d: post-recovery divergence: %v", workers, m)
		}
		got := captureState(t, lib, r.servers, r.clock)
		if workers == 1 {
			want = got
			continue
		}
		diffStates(t, workers, want, got)
	}
}

// TestParallelRecoveryEquivalenceDecided: the cross-shard crash window —
// a transaction's data is fully propagated and a coordinator decided it
// committed, but the commit word never landed. RecoverWithDecisions must
// publish the word and keep the transaction at every parallelism.
func TestParallelRecoveryEquivalenceDecided(t *testing.T) {
	build := func(t *testing.T) (*quorumCrashRig, map[int]uint64) {
		r := newQuorumCrashRig(t, 3, 2, 2)
		db, err := r.lib.CreateDB("orders", 1024)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.lib.InitDB(db); err != nil {
			t.Fatal(err)
		}
		tx, err := r.lib.BeginTx()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.SetRange(db, 0, 8); err != nil {
			t.Fatal(err)
		}
		copy(db.Bytes()[0:], []byte("baseline"))
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		r.net.WaitCatchUp()
		r.engageStalls()
		// The decided transaction: undo records and data reach the
		// quorum, the decision is durable on the coordinator, the commit
		// word push loses the race with the crash.
		tx2, err := r.lib.BeginTx()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx2.SetRange(db, 64, 8); err != nil {
			t.Fatal(err)
		}
		copy(db.Bytes()[64:], []byte("decided!"))
		// The data reached the quorum (mirrors A and B) but not the
		// stalled straggler; written server-side so the push cannot race
		// the crash.
		for _, srv := range r.servers[:2] {
			dirtyMirror(t, srv, r.clock, "perseas.db.orders", 64, []byte("decided!"))
		}
		return r, map[int]uint64{tx2.slot.idx: tx2.id}
	}
	var want recoveredState
	for _, workers := range []int{1, 2, 4} {
		r, decided := build(t)
		lib, net := attachParallel(t, r.servers, r.clock, 2, workers, decided)
		db, err := lib.OpenDB("orders")
		if err != nil {
			t.Fatal(err)
		}
		if got := string(db.Bytes()[64:72]); got != "decided!" {
			t.Errorf("workers=%d: decided transaction rolled back: %q", workers, got)
		}
		mismatches, err := net.VerifyAll()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mismatches {
			t.Errorf("workers=%d: post-recovery divergence: %v", workers, m)
		}
		got := captureState(t, lib, r.servers, r.clock)
		if workers == 1 {
			want = got
			continue
		}
		diffStates(t, workers, want, got)
	}
}

// TestQuorumRepublishShipsPrefixOnly pins the coalesced undo republish:
// quorum recovery used to re-push every undo slot in full (n mirrors ×
// undo-region bytes on the wire); now only the winner's fetched prefix
// ships as payload and the tail is zeroed server-side. With a 1 MiB
// undo region holding a handful of records, recovery's total pushed
// payload must stay far below one region's size — let alone three.
func TestQuorumRepublishShipsPrefixOnly(t *testing.T) {
	const undoSize = 1 << 20
	clock := simclock.NewSim()
	var servers []*memserver.Server
	var mirrors []netram.Mirror
	for i := 0; i < 3; i++ {
		srv := memserver.New(memserver.WithLabel("node" + string(rune('A'+i))))
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		mirrors = append(mirrors, netram.Mirror{Name: srv.Label(), T: tr})
	}
	net, err := netram.NewClient(mirrors, netram.WithQuorum(2))
	if err != nil {
		t.Fatal(err)
	}
	lib, err := Init(net, clock, WithUndoLogSize(undoSize))
	if err != nil {
		t.Fatal(err)
	}
	db, err := lib.CreateDB("bank", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.InitDB(db); err != nil {
		t.Fatal(err)
	}
	tx, err := lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 64); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[0:], []byte("conserved"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	net.WaitCatchUp()

	lib2, net2 := attachParallel(t, servers, clock, 2, 1, nil)
	re, err := lib2.OpenDB("bank")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[0:9]); got != "conserved" {
		t.Errorf("recovered %q, want %q", got, "conserved")
	}
	// The republish still leaves every mirror byte-identical…
	mismatches, err := net2.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mismatches {
		t.Errorf("post-recovery divergence: %v", m)
	}
	// …while the whole recovery pushed a small fraction of one undo
	// region as payload. The historical full republish shipped at least
	// 3 mirrors × 1 MiB here.
	if wire := net2.Stats().WireBytes; wire > undoSize/2 {
		t.Errorf("recovery pushed %d payload bytes, want well under the %d-byte undo region", wire, undoSize)
	}
}
