package core

// Regression tests for the mirror-divergence bug: a Push/PushMany that
// fails after reaching a subset of the mirrors used to leave the
// transaction's bookkeeping as if nothing had been sent, so Abort never
// repaired the mirrors that *did* apply the write and their copy of the
// database silently diverged from local memory.

import (
	"bytes"
	"errors"
	"testing"

	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

// droppy wraps a transport and fails the next failNext Write/WriteBatch
// calls while staying pingable — a transient hiccup on one mirror, not a
// dead node.
type droppy struct {
	transport.Transport
	failNext int
}

func (d *droppy) Write(seg uint32, offset uint64, data []byte) error {
	if d.failNext > 0 {
		d.failNext--
		return errors.New("droppy: transient write failure")
	}
	return d.Transport.Write(seg, offset, data)
}

func (d *droppy) WriteBatch(writes []transport.BatchWrite) error {
	if d.failNext > 0 {
		d.failNext--
		return errors.New("droppy: transient batch failure")
	}
	if bw, ok := d.Transport.(transport.BatchWriter); ok {
		return bw.WriteBatch(writes)
	}
	for _, w := range writes {
		if err := d.Transport.Write(w.Seg, w.Offset, w.Data); err != nil {
			return err
		}
	}
	return nil
}

// newDroppyRig wires a library to two mirrors, with mirror 1's transport
// wrapped so tests can make it fail after mirror 0 already succeeded
// (mirrors are written in order).
func newDroppyRig(t *testing.T) (*Library, *netram.Client, *droppy, []*memserver.Server) {
	t.Helper()
	clock := simclock.NewSim()
	var mirrors []netram.Mirror
	var servers []*memserver.Server
	var dr *droppy
	for i := 0; i < 2; i++ {
		srv := memserver.New(memserver.WithLabel("node" + string(rune('A'+i))))
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
		if err != nil {
			t.Fatal(err)
		}
		var tp transport.Transport = tr
		if i == 1 {
			dr = &droppy{Transport: tr}
			tp = dr
		}
		mirrors = append(mirrors, netram.Mirror{Name: srv.Label(), T: tp})
		servers = append(servers, srv)
	}
	net, err := netram.NewClient(mirrors)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := Init(net, clock)
	if err != nil {
		t.Fatal(err)
	}
	return lib, net, dr, servers
}

func TestAbortRepairsPartialCommitPush(t *testing.T) {
	lib, net, dr, servers := newDroppyRig(t)
	db, err := lib.CreateDB("acct", 256)
	if err != nil {
		t.Fatal(err)
	}
	orig := db.Bytes()
	for i := range orig {
		orig[i] = 0xAA
	}
	if err := lib.InitDB(db); err != nil {
		t.Fatal(err)
	}
	region := db.(*Database).region

	tx, err := lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 8); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes(), "deadbeef")

	// Mirror 1 drops the range push and its retry; mirror 0 has already
	// applied the batch by then, so the commit fails half-propagated.
	dr.failNext = 2
	if err := tx.Commit(); err == nil {
		t.Fatal("commit should fail when a mirror drops the range push")
	}
	got, err := servers[0].Read(region.Handle(0).ID, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "deadbeef" {
		t.Fatalf("mirror 0 holds %q; the test needs a half-propagated commit", got)
	}

	// The hiccup clears; Abort must restore local memory AND re-push the
	// restored bytes to the mirror that applied the failed batch.
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(db.Bytes()[:8], orig[:8]) {
		t.Fatal("abort did not restore local memory")
	}
	mm, err := net.Verify(region)
	if err != nil {
		t.Fatal(err)
	}
	if len(mm) != 0 {
		t.Fatalf("mirrors diverged after abort: %+v", mm)
	}
	if n := lib.Metrics().Repairs.Load(); n != 1 {
		t.Errorf("repairs counter = %d, want 1", n)
	}
}

func TestSetRangeAdvancesCursorOnPartialUndoPush(t *testing.T) {
	lib, _, dr, _ := newDroppyRig(t)
	db, err := lib.CreateDB("acct", 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.InitDB(db); err != nil {
		t.Fatal(err)
	}

	tx, err := lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	// The undo-record push reaches mirror 0 and fails on mirror 1. The
	// record is consumed either way: the cursor must advance and the
	// range must be tracked, or the next record would overwrite this one
	// in place and mirror 0's undo log would diverge from the local log.
	dr.failNext = 2
	if err := tx.SetRange(db, 0, 8); err == nil {
		t.Fatal("SetRange should fail when a mirror drops the undo push")
	}
	if want := recordSize(8); tx.cursor != want {
		t.Errorf("cursor = %d after partial undo push, want %d", tx.cursor, want)
	}
	if len(tx.ranges) != 1 {
		t.Errorf("tracked ranges = %d, want 1", len(tx.ranges))
	}

	// After the hiccup clears, a further record appends past the
	// half-pushed one instead of overwriting it.
	if err := tx.SetRange(db, 16, 8); err != nil {
		t.Fatal(err)
	}
	if want := 2 * recordSize(8); tx.cursor != want {
		t.Errorf("cursor = %d after append, want %d", tx.cursor, want)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
}
