package core

import "encoding/binary"

// Exported read-only views of the on-wire metadata and undo-log formats,
// for perseas-inspect: the tool talks to the memory servers directly
// (the primary may be gone) and needs to decode what it reads without a
// live Library.

// MetaSegmentName returns the metadata region's remote segment name
// under the given namespace ("" for the default).
func MetaSegmentName(ns string) string { return qualifySegment(ns, metaRegionName) }

// UndoSegmentName returns undo slot k's remote segment name.
func UndoSegmentName(ns string, k int) string { return qualifySegment(ns, undoSlotName(k)) }

// DBSegmentPrefix returns the prefix of database segment names.
func DBSegmentPrefix(ns string) string { return qualifySegment(ns, dbRegionPrefix) }

func qualifySegment(ns, name string) string {
	if ns == "" {
		return name
	}
	return ns + "/" + name
}

// MaxUndoSlots is the undo-slot cap, bounding an inspector's probe.
const MaxUndoSlots = maxUndoSlots

// DBInfo is one decoded directory row.
type DBInfo struct {
	ID   uint32
	Name string
	Size uint64
}

// MetaInfo is the decoded metadata region.
type MetaInfo struct {
	// Committed is slot 0's commit word (the paper's header word).
	Committed uint64
	// UndoSize is the per-slot undo-log capacity.
	UndoSize uint64
	DBs      []DBInfo
}

// InspectMeta decodes a metadata region image.
func InspectMeta(buf []byte) (MetaInfo, error) {
	committed, undoSize, _, entries, err := readDirectory(buf)
	if err != nil {
		return MetaInfo{}, err
	}
	info := MetaInfo{Committed: committed, UndoSize: undoSize}
	for _, e := range entries {
		info.DBs = append(info.DBs, DBInfo{ID: e.id, Name: e.name, Size: e.size})
	}
	return info, nil
}

// SlotCommitWord reads slot k's commit word from a metadata region image.
func SlotCommitWord(meta []byte, k int) uint64 {
	return binary.BigEndian.Uint64(meta[slotWordOffset(uint64(len(meta)), k):])
}

// UndoHeadTxID parses the record at the head of an undo-log image and
// returns its transaction id. ok is false when the bytes do not form a
// valid record (an empty or fully retired slot). An id above the slot's
// commit word marks an in-flight transaction.
func UndoHeadTxID(log []byte) (txID uint64, ok bool) {
	rec, _, recOK := parseRecord(log, 0)
	if !recOK {
		return 0, false
	}
	return rec.txID, true
}
