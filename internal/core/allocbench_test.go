package core

import (
	"testing"

	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

func BenchmarkCommitCycle(b *testing.B) {
	clock := simclock.NewSim()
	var mirrors []netram.Mirror
	for i := 0; i < 2; i++ {
		srv := memserver.New(memserver.WithLabel("node" + string(rune('A'+i))))
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
		if err != nil {
			b.Fatal(err)
		}
		mirrors = append(mirrors, netram.Mirror{Name: srv.Label(), T: tr})
	}
	net, err := netram.NewClient(mirrors)
	if err != nil {
		b.Fatal(err)
	}
	lib, err := Init(net, clock)
	if err != nil {
		b.Fatal(err)
	}
	db, err := lib.CreateDB("accounts", 8192)
	if err != nil {
		b.Fatal(err)
	}
	buf := db.Bytes()
	cycle := func() {
		tx, err := lib.BeginTx()
		if err != nil {
			b.Fatal(err)
		}
		if err := tx.SetRange(db, 0, 64); err != nil {
			b.Fatal(err)
		}
		if err := tx.SetRange(db, 4096, 128); err != nil {
			b.Fatal(err)
		}
		buf[0]++
		buf[4096]++
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		cycle()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}
