package core

import (
	"errors"
	"testing"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

// TestNamespacesShareMirrors runs two independent PERSEAS applications
// against the SAME mirror nodes, each in its own namespace, and checks
// they neither collide nor see each other's data — including through a
// crash/recovery cycle.
func TestNamespacesShareMirrors(t *testing.T) {
	clock := simclock.NewSim()
	srv := memserver.New()
	newClient := func() *netram.Client {
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
		if err != nil {
			t.Fatal(err)
		}
		net, err := netram.NewClient([]netram.Mirror{{Name: "shared", T: tr}})
		if err != nil {
			t.Fatal(err)
		}
		return net
	}

	netA, netB := newClient(), newClient()
	appA, err := Init(netA, clock, WithNamespace("appA"))
	if err != nil {
		t.Fatal(err)
	}
	appB, err := Init(netB, clock, WithNamespace("appB"))
	if err != nil {
		t.Fatalf("second namespace should coexist: %v", err)
	}

	// Same database name in both namespaces.
	dbA, err := appA.CreateDB("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	dbB, err := appB.CreateDB("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		lib *Library
		db  engine.DB
		val string
	}{
		{appA, dbA, "from-appA"},
		{appB, dbB, "from-appB!"},
	} {
		if err := tc.lib.InitDB(tc.db); err != nil {
			t.Fatal(err)
		}
		tx, err := tc.lib.BeginTx()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.SetRange(tc.db, 0, 10); err != nil {
			t.Fatal(err)
		}
		copy(tc.db.Bytes(), tc.val)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	// Crash and recover application A; B's data must be untouched and
	// A must see only its own.
	if err := appA.Crash(fault.CrashPower); err != nil {
		t.Fatal(err)
	}
	if err := appA.Recover(); err != nil {
		t.Fatal(err)
	}
	reA, err := appA.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(reA.Bytes()[:9]); got != "from-appA" {
		t.Errorf("appA recovered %q", got)
	}
	if got := string(dbB.Bytes()[:10]); got != "from-appB!" {
		t.Errorf("appB disturbed: %q", got)
	}

	// Without a namespace, a third Init on the same mirrors collides
	// with nothing (fresh names) — but a second default-namespace Init
	// would collide with itself.
	if _, err := Init(newClient(), clock); err != nil {
		t.Fatalf("default namespace still free: %v", err)
	}
	if _, err := Init(newClient(), clock); err == nil {
		t.Error("second default-namespace Init on the same mirrors should collide")
	}
}

func TestDropDB(t *testing.T) {
	r := newRig(t, 2)
	db := r.mustCreate(t, "victim", 64, 0)
	_ = r.mustCreate(t, "keeper", 64, 1)

	// Inside a transaction: refused.
	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.lib.DropDB("victim"); !errors.Is(err, engine.ErrInTransaction) {
		t.Errorf("drop inside tx: %v", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}

	if err := r.lib.DropDB("victim"); err != nil {
		t.Fatal(err)
	}
	if err := r.lib.DropDB("victim"); !errors.Is(err, ErrNoSuchDB) {
		t.Errorf("double drop: %v", err)
	}
	if _, err := r.lib.OpenDB("victim"); !errors.Is(err, ErrNoSuchDB) {
		t.Errorf("open after drop: %v", err)
	}
	// The stale handle is rejected.
	tx2, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.SetRange(db, 0, 4); !errors.Is(err, ErrStaleDB) {
		t.Errorf("stale handle: %v", err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}

	// The mirrors no longer hold the segment, and recovery ignores it.
	for _, srv := range r.servers {
		if _, err := srv.Connect("perseas.db.victim"); err == nil {
			t.Error("victim segment survived on a mirror")
		}
	}
	r.crashAndRecover(t)
	if _, err := r.lib.OpenDB("victim"); !errors.Is(err, ErrNoSuchDB) {
		t.Errorf("victim resurrected by recovery: %v", err)
	}
	keeper, err := r.lib.OpenDB("keeper")
	if err != nil {
		t.Fatal(err)
	}
	if keeper.Bytes()[0] != 1 {
		t.Error("keeper lost its data")
	}

	// The dropped name is reusable.
	if _, err := r.lib.CreateDB("victim", 128); err != nil {
		t.Errorf("name not reusable after drop: %v", err)
	}
}

func TestDropDBThenCrashWithStaleUndoRecords(t *testing.T) {
	// Edge case: an aborted transaction leaves remote undo records
	// naming a database that is then dropped; a crash before the next
	// commit must still recover, the stale records must be ignored, and
	// the dropped id must never be reused by a post-recovery CreateDB
	// (or those stale records could alias the new database).
	r := newRig(t, 2)
	keeper := r.mustCreate(t, "keeper", 64, 7)
	victim := r.mustCreate(t, "victim", 64, 0) // the highest id so far
	r.update(t, keeper, 0, []byte("safe"))

	// Aborted transaction touching the soon-to-be-dropped database.
	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(victim, 0, 16); err != nil {
		t.Fatal(err)
	}
	copy(victim.Bytes(), "aborted scribble")
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := r.lib.DropDB("victim"); err != nil {
		t.Fatal(err)
	}

	r.crashAndRecover(t)

	re, err := r.lib.OpenDB("keeper")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[:4]); got != "safe" {
		t.Errorf("keeper = %q after recovery", got)
	}

	// A database created now must NOT take the dropped id: if it did,
	// the stale undo records still in the remote log could target it on
	// the next crash.
	fresh, err := r.lib.CreateDB("fresh", 64)
	if err != nil {
		t.Fatal(err)
	}
	copy(fresh.Bytes(), []byte("fresh-db-content"))
	if err := r.lib.InitDB(fresh); err != nil {
		t.Fatal(err)
	}
	// Crash again immediately (still no commit since the abort): the
	// stale records are scanned once more and must not touch "fresh".
	r.crashAndRecover(t)
	reFresh, err := r.lib.OpenDB("fresh")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(reFresh.Bytes()[:16]); got != "fresh-db-content" {
		t.Errorf("stale undo records leaked into the new database: %q", got)
	}
}
