package core

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRecordSizeAlignment(t *testing.T) {
	tests := []struct {
		dataLen uint64
		want    uint64
	}{
		{0, 32},    // 28-byte header padded to 32
		{1, 32},    // 29 -> 32
		{4, 32},    // 32 -> 32
		{5, 48},    // 33 -> 48
		{20, 48},   // 48 -> 48
		{36, 64},   // 64 -> 64
		{100, 128}, // 128 -> 128
	}
	for _, tt := range tests {
		if got := recordSize(tt.dataLen); got != tt.want {
			t.Errorf("recordSize(%d) = %d, want %d", tt.dataLen, got, tt.want)
		}
		if got := recordSize(tt.dataLen) % recordAlign; got != 0 {
			t.Errorf("recordSize(%d) not %d-byte aligned", tt.dataLen, recordAlign)
		}
	}
}

func TestWriteParseRecordRoundTrip(t *testing.T) {
	log := make([]byte, 4096)
	data := []byte("before-image bytes")
	advance := writeRecord(log, 0, 42, 7, 1234, data)
	if advance != recordSize(uint64(len(data))) {
		t.Fatalf("advance = %d", advance)
	}
	rec, adv, ok := parseRecord(log, 0)
	if !ok {
		t.Fatal("parse failed")
	}
	if adv != advance {
		t.Errorf("parse advance %d != write advance %d", adv, advance)
	}
	if rec.txID != 42 || rec.dbID != 7 || rec.offset != 1234 ||
		rec.length != uint64(len(data)) || !bytes.Equal(rec.data, data) {
		t.Errorf("round trip mismatch: %+v", rec)
	}
}

func TestParseRecordRejectsCorruption(t *testing.T) {
	log := make([]byte, 4096)
	writeRecord(log, 0, 42, 7, 1234, []byte("payload"))

	// Flip one bit anywhere in the record: the checksum must catch it.
	for bit := 0; bit < (recordHeaderSize+7)*8; bit += 13 {
		log[bit/8] ^= 1 << (bit % 8)
		if _, _, ok := parseRecord(log, 0); ok {
			// The only field not covered by the CRC is the CRC itself;
			// flipping CRC bits must still fail the comparison.
			t.Errorf("bit flip at %d not detected", bit)
		}
		log[bit/8] ^= 1 << (bit % 8)
	}
	if _, _, ok := parseRecord(log, 0); !ok {
		t.Fatal("restored record should parse again")
	}
}

func TestParseRecordBounds(t *testing.T) {
	log := make([]byte, 64)
	// Cursor too close to the end for a header.
	if _, _, ok := parseRecord(log, 40); ok {
		t.Error("short header should not parse")
	}
	// A header whose declared length runs past the log end.
	writeRecord(make([]byte, 4096), 0, 1, 1, 0, make([]byte, 100)) // scratch
	big := make([]byte, 4096)
	writeRecord(big, 0, 1, 1, 0, make([]byte, 100))
	copy(log, big[:64])
	if _, _, ok := parseRecord(log, 0); ok {
		t.Error("truncated record should not parse")
	}
}

func TestScanUndoLogStopsAtStale(t *testing.T) {
	log := make([]byte, 4096)
	cur := uint64(0)
	cur += writeRecord(log, cur, 11, 1, 0, []byte("new-a"))
	cur += writeRecord(log, cur, 11, 1, 8, []byte("new-b"))
	// A stale record from an older generation beyond the fresh tail.
	writeRecord(log, cur, 9, 1, 16, []byte("stale"))

	recs := scanUndoLog(log, 10)
	if len(recs) != 2 {
		t.Fatalf("scan found %d records, want 2 (stale txid 9 <= committed 10 stops scan)", len(recs))
	}
	for _, r := range recs {
		if r.txID != 11 {
			t.Errorf("unexpected record %+v", r)
		}
	}

	// Even with committed = 8 (both transactions "newer"), the remnant
	// of transaction 9 is NOT applied: it may be an incomplete suffix
	// whose before-images carry uncommitted bytes. Only the head
	// transaction's records are ever complete.
	recs = scanUndoLog(log, 8)
	if len(recs) != 2 {
		t.Errorf("scan found %d records, want 2 (foreign remnants excluded)", len(recs))
	}
}

func TestScanUndoLogExcludesIncompleteAbortedSuffix(t *testing.T) {
	// The exact corruption scenario the same-transaction rule prevents:
	// tx 11 declared overlapping ranges r1 then r2, so r2's before-image
	// holds tx-11-modified (uncommitted) bytes; tx 11 aborted; tx 12
	// then overwrote the log head with ONE record and crashed. The log
	// now holds [tx12 rec][tx11's r2 record] — applying tx11's r2 image
	// would write uncommitted bytes with its r1 record long gone.
	log := make([]byte, 4096)
	// 20-byte payloads make every record exactly 48 bytes, so tx 12's
	// single record ends precisely where tx 11's first record did and
	// tx 11's second record remains intact and reachable behind it.
	cur := writeRecord(log, 0, 11, 1, 0, []byte("committed-bytes-r1!!")) // r1
	_ = writeRecord(log, cur, 11, 1, 4, []byte("UNCOMMITTED-bytes-r2"))  // r2, captured mid-tx
	// tx 12 overwrites the head with one record of the same size.
	writeRecord(log, 0, 12, 1, 100, []byte("tx12-single-record!!"))

	recs := scanUndoLog(log, 10)
	if len(recs) != 1 {
		t.Fatalf("scan found %d records, want only tx 12's", len(recs))
	}
	if recs[0].txID != 12 {
		t.Errorf("applied record of tx %d", recs[0].txID)
	}
}

func TestScanUndoLogEmptyAndGarbage(t *testing.T) {
	if recs := scanUndoLog(make([]byte, 1024), 0); len(recs) != 0 {
		t.Errorf("zeroed log scanned %d records", len(recs))
	}
	garbage := bytes.Repeat([]byte{0xA7, 0x13, 0xFE}, 400)
	if recs := scanUndoLog(garbage, 0); len(recs) != 0 {
		t.Errorf("garbage log scanned %d records", len(recs))
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(txID uint64, dbID uint32, offset uint64, data []byte) bool {
		if len(data) > 1024 {
			data = data[:1024]
		}
		log := make([]byte, recordSize(uint64(len(data)))+64)
		advance := writeRecord(log, 0, txID, dbID, offset, data)
		rec, adv, ok := parseRecord(log, 0)
		if !ok || adv != advance {
			return false
		}
		return rec.txID == txID && rec.dbID == dbID && rec.offset == offset &&
			rec.length == uint64(len(data)) && bytes.Equal(rec.data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestScanChainProperty(t *testing.T) {
	// One transaction's records, written contiguously from offset zero,
	// scan back in order and in full; a trailing record of another
	// transaction is never included.
	f := func(seed uint8, lengths []uint8) bool {
		if len(lengths) > 20 {
			lengths = lengths[:20]
		}
		log := make([]byte, 64<<10)
		var cur uint64
		var want int
		for i, l := range lengths {
			data := bytes.Repeat([]byte{seed}, int(l)+1)
			if cur+recordSize(uint64(len(data))) > uint64(len(log)) {
				break
			}
			cur += writeRecord(log, cur, 100, 1, uint64(i), data)
			want++
		}
		// A foreign remnant beyond the head transaction's tail. (With no
		// head records it would itself become the head, so only plant it
		// behind an actual head transaction.)
		if want > 0 && cur+recordSize(4) <= uint64(len(log)) {
			writeRecord(log, cur, 101, 1, 0, []byte("zzzz"))
		}
		got := scanUndoLog(log, 99)
		if len(got) != want {
			return false
		}
		for _, r := range got {
			if r.txID != 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
