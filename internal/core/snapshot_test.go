package core

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"github.com/ics-forth/perseas/internal/engine"
)

func TestSnapshotRoundTrip(t *testing.T) {
	src := newRig(t, 1)
	a := src.mustCreate(t, "alpha", 256, 1)
	b := src.mustCreate(t, "beta", 512, 2)
	src.update(t, a, 0, []byte("alpha-data"))
	src.update(t, b, 100, []byte("beta-data"))

	var buf bytes.Buffer
	if err := src.lib.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Restore into a completely separate deployment (fresh mirrors).
	dst := newRig(t, 2)
	if err := dst.lib.RestoreSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	ra, err := dst.lib.OpenDB("alpha")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := dst.lib.OpenDB("beta")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(ra.Bytes()[:10]); got != "alpha-data" {
		t.Errorf("alpha = %q", got)
	}
	if got := string(rb.Bytes()[100:109]); got != "beta-data" {
		t.Errorf("beta = %q", got)
	}
	if ra.Bytes()[255] != 1 || rb.Bytes()[511] != 2 {
		t.Error("fill bytes lost in snapshot round trip")
	}

	// The restored deployment is fully operational, including recovery.
	dst.update(t, ra, 0, []byte("post-resto"))
	dst.crashAndRecover(t)
	re, err := dst.lib.OpenDB("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[:10]); got != "post-resto" {
		t.Errorf("recovered %q after restore", got)
	}
}

func TestSnapshotRefusedMidTransaction(t *testing.T) {
	r := newRig(t, 1)
	_ = r.mustCreate(t, "db", 64, 0)
	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort()
	if err := r.lib.WriteSnapshot(io.Discard); !errors.Is(err, engine.ErrInTransaction) {
		t.Errorf("snapshot mid-tx: %v", err)
	}
	if err := r.lib.RestoreSnapshot(strings.NewReader("")); !errors.Is(err, engine.ErrInTransaction) {
		t.Errorf("restore mid-tx: %v", err)
	}
}

func TestRestoreRejectsCorruption(t *testing.T) {
	src := newRig(t, 1)
	_ = src.mustCreate(t, "db", 128, 7)
	var buf bytes.Buffer
	if err := src.lib.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		bad[0] ^= 0xFF
		dst := newRig(t, 1)
		if err := dst.lib.RestoreSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("flipped content bit", func(t *testing.T) {
		bad := append([]byte(nil), snap...)
		bad[len(bad)-1] ^= 0x01
		dst := newRig(t, 1)
		if err := dst.lib.RestoreSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		dst := newRig(t, 1)
		if err := dst.lib.RestoreSnapshot(bytes.NewReader(snap[:len(snap)-10])); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		dst := newRig(t, 1)
		if err := dst.lib.RestoreSnapshot(strings.NewReader("")); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("got %v", err)
		}
	})
}

func TestRestoreCollidingNames(t *testing.T) {
	src := newRig(t, 1)
	_ = src.mustCreate(t, "db", 64, 0)
	var buf bytes.Buffer
	if err := src.lib.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := newRig(t, 1)
	_ = dst.mustCreate(t, "db", 64, 0)
	if err := dst.lib.RestoreSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("restore over an existing database name should fail")
	}
}

func TestSnapshotAdvancesTxCounter(t *testing.T) {
	src := newRig(t, 1)
	db := src.mustCreate(t, "db", 64, 0)
	for i := 0; i < 5; i++ {
		src.update(t, db, 0, []byte{byte(i)})
	}
	var buf bytes.Buffer
	if err := src.lib.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst := newRig(t, 1)
	if err := dst.lib.RestoreSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	re, err := dst.lib.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	dst.update(t, re, 0, []byte{99})
	// The first post-restore transaction id must exceed the snapshot's
	// committed id (5), so stale undo records can never alias.
	if got := dst.lib.CommittedTxID(); got <= 5 {
		t.Errorf("post-restore committed id = %d, want > 5", got)
	}
}
