package core

import (
	"fmt"

	"github.com/ics-forth/perseas/internal/engine"
)

// Write atomically updates db[offset:offset+len(data)): it declares the
// range (capturing the before-image) and stores the new bytes.
func (t *Tx) Write(db engine.DB, offset uint64, data []byte) error {
	if err := t.SetRange(db, offset, uint64(len(data))); err != nil {
		return err
	}
	d := db.(*Database)
	t.l.mem.Copy(t.l.clock, d.region.Local[offset:offset+uint64(len(data))], data)
	return nil
}

// Writable declares db[offset:offset+length) and returns the slice to
// mutate in place — the zero-copy path for read-modify-write updates.
func (t *Tx) Writable(db engine.DB, offset, length uint64) ([]byte, error) {
	if err := t.SetRange(db, offset, length); err != nil {
		return nil, err
	}
	return db.Bytes()[offset : offset+length], nil
}

// Read returns a view of db[offset:offset+length). Reads need no
// declaration; the slice must not be written through. Under concurrency
// the bytes are only stable if the range is held by this transaction or
// no other transaction writes it.
func (t *Tx) Read(db engine.DB, offset, length uint64) ([]byte, error) {
	l := t.l
	l.mu.Lock()
	d, err := l.ownLocked(db)
	l.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if offset > d.Size() || length > d.Size()-offset {
		return nil, fmt.Errorf("%w: [%d,+%d) in %d-byte database %q",
			ErrBadRange, offset, length, d.Size(), d.name)
	}
	return d.region.Local[offset : offset+length], nil
}

// Update runs fn inside a transaction: Begin before, Commit after, and
// Abort if fn returns an error or panics. It is the idiomatic way to use
// the library when the explicit Begin/SetRange/Commit sequence is not
// needed.
func (l *Library) Update(fn func(*Tx) error) (err error) {
	tx, err := l.BeginTx()
	if err != nil {
		return err
	}
	defer func() {
		if r := recover(); r != nil {
			_ = tx.Abort()
			panic(r)
		}
	}()
	if ferr := fn(tx); ferr != nil {
		if aerr := tx.Abort(); aerr != nil {
			return fmt.Errorf("%w (abort also failed: %v)", ferr, aerr)
		}
		return ferr
	}
	return tx.Commit()
}
