package core

import (
	"fmt"

	"github.com/ics-forth/perseas/internal/engine"
)

// Tx is the handle passed to Update: a thin, misuse-resistant wrapper
// over the paper's explicit SetRange-then-store discipline.
type Tx struct {
	l *Library
}

// Write atomically updates db[offset:offset+len(data)): it declares the
// range (capturing the before-image) and stores the new bytes.
func (t *Tx) Write(db engine.DB, offset uint64, data []byte) error {
	if err := t.l.SetRange(db, offset, uint64(len(data))); err != nil {
		return err
	}
	d := db.(*Database)
	t.l.mem.Copy(t.l.clock, d.region.Local[offset:offset+uint64(len(data))], data)
	return nil
}

// Writable declares db[offset:offset+length) and returns the slice to
// mutate in place — the zero-copy path for read-modify-write updates.
func (t *Tx) Writable(db engine.DB, offset, length uint64) ([]byte, error) {
	if err := t.l.SetRange(db, offset, length); err != nil {
		return nil, err
	}
	return db.Bytes()[offset : offset+length], nil
}

// Read returns a view of db[offset:offset+length). Reads need no
// declaration; the slice must not be written through.
func (t *Tx) Read(db engine.DB, offset, length uint64) ([]byte, error) {
	d, err := t.l.own(db)
	if err != nil {
		return nil, err
	}
	if offset > d.Size() || length > d.Size()-offset {
		return nil, fmt.Errorf("%w: [%d,+%d) in %d-byte database %q",
			ErrBadRange, offset, length, d.Size(), d.name)
	}
	return d.region.Local[offset : offset+length], nil
}

// Update runs fn inside a transaction: Begin before, Commit after, and
// Abort if fn returns an error or panics. It is the idiomatic way to use
// the library when the explicit Begin/SetRange/Commit sequence is not
// needed.
func (l *Library) Update(fn func(*Tx) error) (err error) {
	if err := l.Begin(); err != nil {
		return err
	}
	tx := &Tx{l: l}
	defer func() {
		if r := recover(); r != nil {
			_ = l.Abort()
			panic(r)
		}
	}()
	if ferr := fn(tx); ferr != nil {
		if aerr := l.Abort(); aerr != nil {
			return fmt.Errorf("%w (abort also failed: %v)", ferr, aerr)
		}
		return ferr
	}
	return l.Commit()
}
