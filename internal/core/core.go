// Package core implements PERSEAS, the paper's transaction library for
// main-memory databases.
//
// PERSEAS keeps every database region in local main memory and mirrors it
// in the main memory of one or more remote workstations through the
// reliable network RAM layer (package netram). A transaction needs only
// memory copies — no magnetic disk ever sits on the commit path:
//
//  1. SetRange copies the before-image of the declared range into a
//     local undo log and pushes that log record to the remote undo log
//     (one remote write).
//  2. The application updates the declared ranges in place.
//  3. Commit pushes every modified range to the mirrored remote database
//     and then publishes the transaction id with one small remote write
//     of the commit word — the atomic commit point.
//
// Abort restores the declared ranges from the local undo log with plain
// local memory copies. After a primary-node crash, Recover reconnects to
// the surviving remote segments by name, rolls the remote database back
// with the remote undo log if an in-flight transaction had started
// propagating updates, and re-fetches the database — the paper's Section 3
// recovery procedure.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/hostmem"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/simclock"
)

// Region-name prefixes used on the remote memory servers. Named segments
// are what let a restarted primary reconnect after losing every pointer.
// A library's namespace is prepended to each, so several applications can
// share the same mirror workstations without colliding.
const (
	metaRegionName   = "perseas.meta"
	undoRegionName   = "perseas.undo"
	dbRegionPrefix   = "perseas.db."
	metaMagic        = uint64(0x5045525345415301) // "PERSEAS\x01"
	metaHeaderSize   = 32
	metaMagicOff     = 0
	metaCommittedOff = 8
	metaUndoSizeOff  = 16
	metaDBCountOff   = 24
	metaNextDBIDOff  = 28
)

// Defaults for tunable sizes.
const (
	// DefaultMetaSize is the metadata region size: header plus database
	// directory.
	DefaultMetaSize = 64 << 10
	// DefaultUndoLogSize bounds the before-images one transaction can
	// log.
	DefaultUndoLogSize = 4 << 20
)

// Errors specific to PERSEAS.
var (
	// ErrUndoLogFull is returned by SetRange when the transaction's
	// before-images exceed the undo log capacity.
	ErrUndoLogFull = errors.New("perseas: undo log full")
	// ErrStaleDB is returned when a database handle from before a crash
	// is used after recovery.
	ErrStaleDB = errors.New("perseas: stale database handle; reopen after recovery")
	// ErrNoSuchDB is returned by OpenDB for unknown names.
	ErrNoSuchDB = errors.New("perseas: no such database")
	// ErrMetaFull is returned when the database directory outgrows the
	// metadata region.
	ErrMetaFull = errors.New("perseas: metadata region full")
	// ErrBadRange is returned for ranges outside a database.
	ErrBadRange = errors.New("perseas: range outside database")
)

// Stats counts library activity.
type Stats struct {
	Begun       uint64
	Committed   uint64
	Aborted     uint64
	SetRanges   uint64
	BytesLogged uint64
	Recoveries  uint64
}

// Database is one PERSEAS-managed main-memory database region. It
// implements engine.DB.
type Database struct {
	id     uint32
	name   string
	region *netram.Region
	stale  bool
}

// Name implements engine.DB.
func (d *Database) Name() string { return d.name }

// Size implements engine.DB.
func (d *Database) Size() uint64 { return d.region.Size() }

// Bytes implements engine.DB. The slice is the local main-memory copy;
// modify only ranges declared with SetRange, as the paper's API requires.
func (d *Database) Bytes() []byte { return d.region.Local }

// Region exposes the database's mirrored network-RAM region. It exists
// for tooling and failure-injection tests that need to reach the mirror
// layer directly; applications should not use it.
func (d *Database) Region() *netram.Region { return d.region }

// pending is one range declared by SetRange, remembered until commit.
type pending struct {
	db     *Database
	offset uint64
	length uint64
}

// Library is one PERSEAS instance serving a sequential application, as in
// the paper. It is not safe for concurrent use.
type Library struct {
	net   *netram.Client
	mem   hostmem.Model
	clock simclock.Clock

	metaSize  uint64
	undoSize  uint64
	namespace string

	meta *netram.Region
	undo *netram.Region

	dbs      map[string]*Database
	byID     map[uint32]*Database
	nextDBID uint32

	txActive  bool
	txID      uint64
	lastTxID  uint64
	committed uint64
	cursor    uint64
	ranges    []pending
	// pushed lists the declared ranges a failed Commit managed to push,
	// so Abort can repair the mirrors.
	pushed []pending

	crashed      bool
	noRemoteUndo bool
	stats        Stats
}

// Option configures a Library.
type Option func(*Library)

// WithUndoLogSize overrides the undo log capacity.
func WithUndoLogSize(n uint64) Option {
	return func(l *Library) { l.undoSize = n }
}

// WithMetaSize overrides the metadata region size.
func WithMetaSize(n uint64) Option {
	return func(l *Library) { l.metaSize = n }
}

// WithMemModel overrides the local memory-copy cost model.
func WithMemModel(m hostmem.Model) Option {
	return func(l *Library) { l.mem = m }
}

// WithNamespace prefixes every remote segment name with ns, letting
// several applications keep independent PERSEAS databases on the same
// mirror workstations.
func WithNamespace(ns string) Option {
	return func(l *Library) { l.namespace = ns }
}

// WithUnsafeNoRemoteUndo disables the remote undo-log push in SetRange.
// This exists ONLY for the ablation benchmarks that price the remote
// undo mirroring: without it a primary crash during commit cannot be
// rolled back on the mirrors, so never enable it in real deployments.
func WithUnsafeNoRemoteUndo() Option {
	return func(l *Library) { l.noRemoteUndo = true }
}

// Init creates a PERSEAS instance over the given reliable-network-RAM
// client — the paper's PERSEAS_init. It allocates and mirrors the
// metadata and undo-log regions.
func Init(net *netram.Client, clock simclock.Clock, opts ...Option) (*Library, error) {
	l := &Library{
		net:      net,
		mem:      hostmem.Default(),
		clock:    clock,
		metaSize: DefaultMetaSize,
		undoSize: DefaultUndoLogSize,
		dbs:      make(map[string]*Database),
		byID:     make(map[uint32]*Database),
		nextDBID: 1,
	}
	for _, o := range opts {
		o(l)
	}
	if l.metaSize < metaHeaderSize {
		return nil, fmt.Errorf("perseas: metadata region too small (%d bytes)", l.metaSize)
	}
	if l.undoSize < recordHeaderSize+1 {
		return nil, fmt.Errorf("perseas: undo log too small (%d bytes)", l.undoSize)
	}

	meta, err := net.Malloc(l.qualify(metaRegionName), l.metaSize)
	if err != nil {
		return nil, fmt.Errorf("perseas: allocate metadata: %w", err)
	}
	undo, err := net.Malloc(l.qualify(undoRegionName), l.undoSize)
	if err != nil {
		_ = net.Free(meta)
		return nil, fmt.Errorf("perseas: allocate undo log: %w", err)
	}
	l.meta, l.undo = meta, undo

	binary.BigEndian.PutUint64(meta.Local[metaMagicOff:], metaMagic)
	binary.BigEndian.PutUint64(meta.Local[metaCommittedOff:], 0)
	binary.BigEndian.PutUint64(meta.Local[metaUndoSizeOff:], l.undoSize)
	binary.BigEndian.PutUint32(meta.Local[metaDBCountOff:], 0)
	if err := net.PushAll(meta); err != nil {
		return nil, fmt.Errorf("perseas: publish metadata: %w", err)
	}
	return l, nil
}

// Stats returns a snapshot of the library counters.
func (l *Library) Stats() Stats { return l.stats }

// Net exposes the underlying network-RAM client (benchmarks inspect its
// traffic counters).
func (l *Library) Net() *netram.Client { return l.net }

// InTransaction reports whether a transaction is open.
func (l *Library) InTransaction() bool { return l.txActive }

// CommittedTxID returns the id of the last committed transaction.
func (l *Library) CommittedTxID() uint64 { return l.committed }

func (l *Library) checkAlive() error {
	if l.crashed {
		return engine.ErrCrashed
	}
	return nil
}

// qualify prepends the library's namespace to a segment name.
func (l *Library) qualify(name string) string {
	if l.namespace == "" {
		return name
	}
	return l.namespace + "/" + name
}

// Name implements engine.Engine.
func (l *Library) Name() string { return "perseas" }

// CreateDB implements engine.Engine: the paper's PERSEAS_malloc. It
// allocates local memory for the database records and prepares the remote
// segments the records will be mirrored in.
func (l *Library) CreateDB(name string, size uint64) (engine.DB, error) {
	if err := l.checkAlive(); err != nil {
		return nil, err
	}
	if _, ok := l.dbs[name]; ok {
		return nil, fmt.Errorf("perseas: database %q exists", name)
	}
	region, err := l.net.Malloc(l.qualify(dbRegionPrefix+name), size)
	if err != nil {
		return nil, fmt.Errorf("perseas: allocate database %q: %w", name, err)
	}
	db := &Database{id: l.nextDBID, name: name, region: region}
	l.nextDBID++
	l.dbs[name] = db
	l.byID[db.id] = db
	if err := l.writeDirectory(); err != nil {
		delete(l.dbs, name)
		delete(l.byID, db.id)
		_ = l.net.Free(region)
		return nil, err
	}
	return db, nil
}

// InitDB implements engine.Engine: the paper's PERSEAS_init_remote_db.
// Call it once after setting the local records to their initial values;
// it mirrors the whole database to the remote nodes.
func (l *Library) InitDB(db engine.DB) error {
	if err := l.checkAlive(); err != nil {
		return err
	}
	d, err := l.own(db)
	if err != nil {
		return err
	}
	if err := l.net.PushAll(d.region); err != nil {
		return fmt.Errorf("perseas: mirror database %q: %w", d.name, err)
	}
	return nil
}

// DropDB removes a database: its remote segments are freed on every
// mirror and the directory is republished. It cannot run inside a
// transaction.
func (l *Library) DropDB(name string) error {
	if err := l.checkAlive(); err != nil {
		return err
	}
	if l.txActive {
		return fmt.Errorf("perseas: drop database: %w", engine.ErrInTransaction)
	}
	db, ok := l.dbs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchDB, name)
	}
	if err := l.net.Free(db.region); err != nil {
		return fmt.Errorf("perseas: free database %q: %w", name, err)
	}
	db.stale = true
	delete(l.dbs, name)
	delete(l.byID, db.id)
	return l.writeDirectory()
}

// OpenDB implements engine.Engine.
func (l *Library) OpenDB(name string) (engine.DB, error) {
	if err := l.checkAlive(); err != nil {
		return nil, err
	}
	db, ok := l.dbs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchDB, name)
	}
	return db, nil
}

// Close implements engine.Engine. Remote segments stay exported so
// another node can take over the database.
func (l *Library) Close() error {
	l.crashed = true
	return nil
}

// own checks that db is a live Database of this library.
func (l *Library) own(db engine.DB) (*Database, error) {
	d, ok := db.(*Database)
	if !ok {
		return nil, fmt.Errorf("perseas: foreign DB handle %T", db)
	}
	if d.stale {
		return nil, ErrStaleDB
	}
	if l.byID[d.id] != d {
		return nil, fmt.Errorf("perseas: unknown database handle %q", d.name)
	}
	return d, nil
}

// writeDirectory serialises the database directory into the metadata
// region and mirrors it.
func (l *Library) writeDirectory() error {
	buf := l.meta.Local
	binary.BigEndian.PutUint32(buf[metaDBCountOff:], uint32(len(l.byID)))
	// The id counter is persisted so ids of dropped databases are never
	// reused after a crash: stale undo records naming a dropped id must
	// not be able to alias a database created after recovery.
	binary.BigEndian.PutUint32(buf[metaNextDBIDOff:], l.nextDBID)
	off := metaHeaderSize
	// Directory entries are ordered by id so recovery rebuilds ids
	// deterministically.
	for id := uint32(1); id < l.nextDBID; id++ {
		db, ok := l.byID[id]
		if !ok {
			continue
		}
		need := 4 + 8 + 2 + len(db.name)
		if off+need > len(buf) {
			return fmt.Errorf("%w: %d databases", ErrMetaFull, len(l.byID))
		}
		binary.BigEndian.PutUint32(buf[off:], db.id)
		binary.BigEndian.PutUint64(buf[off+4:], db.region.Size())
		binary.BigEndian.PutUint16(buf[off+12:], uint16(len(db.name)))
		copy(buf[off+14:], db.name)
		off += need
	}
	if err := l.net.PushAll(l.meta); err != nil {
		return fmt.Errorf("perseas: publish directory: %w", err)
	}
	return nil
}

// readDirectory parses the metadata region into (id, name, size) tuples
// plus the persisted id counter.
func readDirectory(buf []byte) (committed uint64, undoSize uint64, nextDBID uint32, entries []dirEntry, err error) {
	if len(buf) < metaHeaderSize {
		return 0, 0, 0, nil, errors.New("perseas: metadata region truncated")
	}
	if binary.BigEndian.Uint64(buf[metaMagicOff:]) != metaMagic {
		return 0, 0, 0, nil, errors.New("perseas: bad metadata magic")
	}
	committed = binary.BigEndian.Uint64(buf[metaCommittedOff:])
	undoSize = binary.BigEndian.Uint64(buf[metaUndoSizeOff:])
	nextDBID = binary.BigEndian.Uint32(buf[metaNextDBIDOff:])
	count := binary.BigEndian.Uint32(buf[metaDBCountOff:])
	off := metaHeaderSize
	for i := uint32(0); i < count; i++ {
		if off+14 > len(buf) {
			return 0, 0, 0, nil, errors.New("perseas: metadata directory truncated")
		}
		e := dirEntry{
			id:   binary.BigEndian.Uint32(buf[off:]),
			size: binary.BigEndian.Uint64(buf[off+4:]),
		}
		nameLen := int(binary.BigEndian.Uint16(buf[off+12:]))
		if off+14+nameLen > len(buf) {
			return 0, 0, 0, nil, errors.New("perseas: metadata directory truncated")
		}
		e.name = string(buf[off+14 : off+14+nameLen])
		off += 14 + nameLen
		entries = append(entries, e)
	}
	return committed, undoSize, nextDBID, entries, nil
}

// dirEntry is one parsed directory row.
type dirEntry struct {
	id   uint32
	size uint64
	name string
}

// ReviveMirror reintegrates a repaired mirror node: every PERSEAS region
// — metadata, undo log and all databases — is re-exported there and
// refilled from the primary's copies, restoring the replication degree.
// It must be called between transactions: the local copies are then
// exactly the committed state, so the resync cannot leak uncommitted
// data.
func (l *Library) ReviveMirror(i int) error {
	if err := l.checkAlive(); err != nil {
		return err
	}
	if l.txActive {
		return fmt.Errorf("perseas: revive mirror: %w", engine.ErrInTransaction)
	}
	if err := l.net.Revive(i); err != nil {
		return err
	}
	return nil
}

// Crash implements engine.Engine: the primary workstation fails. Local
// main memory — the databases, the local undo log, every pointer — is
// gone regardless of crash kind; only the remote mirrors survive.
func (l *Library) Crash(fault.CrashKind) error {
	l.crashed = true
	for _, db := range l.dbs {
		db.stale = true
	}
	l.dbs = make(map[string]*Database)
	l.byID = make(map[uint32]*Database)
	l.meta = nil
	l.undo = nil
	l.txActive = false
	l.ranges = nil
	l.cursor = 0
	l.pushed = nil
	return nil
}
