// Package core implements PERSEAS, the paper's transaction library for
// main-memory databases.
//
// PERSEAS keeps every database region in local main memory and mirrors it
// in the main memory of one or more remote workstations through the
// reliable network RAM layer (package netram). A transaction needs only
// memory copies — no magnetic disk ever sits on the commit path:
//
//  1. Tx.SetRange copies the before-image of the declared range into a
//     local undo log and pushes that log record to the remote undo log
//     (one remote write).
//  2. The application updates the declared ranges in place.
//  3. Tx.Commit pushes every modified range to the mirrored remote
//     database and then publishes the transaction id with one small
//     remote write of the commit word — the atomic commit point.
//
// Where the paper's library serves one sequential application, this
// implementation hands out explicit transaction handles and lets many
// transactions run concurrently. Each in-flight transaction owns a
// private undo-log slot (slot 0 is the paper's single undo region;
// further slots are allocated on demand and mirrored under derived
// names) and a per-slot commit word in the metadata region, so commits
// from different transactions never contend for the same remote bytes.
// A range-conflict table makes overlapping SetRange declarations from
// concurrent transactions fail fast with engine.ErrConflict, preserving
// the paper's in-place update discipline: a declared range has exactly
// one writer until its transaction finishes.
//
// Abort restores the declared ranges from the transaction's undo slot
// with plain local memory copies. After a primary-node crash, Recover
// reconnects to the surviving remote segments by name, rolls the remote
// database back with each slot's remote undo log if an in-flight
// transaction had started propagating updates, and re-fetches the
// database — the paper's Section 3 recovery procedure, applied per
// transaction slot.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/flight"
	"github.com/ics-forth/perseas/internal/hostmem"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/trace"
)

// Region-name prefixes used on the remote memory servers. Named segments
// are what let a restarted primary reconnect after losing every pointer.
// A library's namespace is prepended to each, so several applications can
// share the same mirror workstations without colliding.
const (
	metaRegionName   = "perseas.meta"
	undoRegionName   = "perseas.undo"
	dbRegionPrefix   = "perseas.db."
	metaMagic        = uint64(0x5045525345415301) // "PERSEAS\x01"
	metaHeaderSize   = 32
	metaMagicOff     = 0
	metaCommittedOff = 8
	metaUndoSizeOff  = 16
	metaDBCountOff   = 24
	metaNextDBIDOff  = 28
)

// Defaults for tunable sizes.
const (
	// DefaultMetaSize is the metadata region size: header plus database
	// directory plus the per-slot commit words at the region tail.
	DefaultMetaSize = 64 << 10
	// DefaultUndoLogSize bounds the before-images one transaction can
	// log.
	DefaultUndoLogSize = 4 << 20
	// maxUndoSlots caps the number of concurrently open transactions:
	// each needs its own undo-log slot and commit word. The cap bounds
	// the reconnection probe recovery performs.
	maxUndoSlots = 64
)

// Errors specific to PERSEAS.
var (
	// ErrUndoLogFull is returned by SetRange when the transaction's
	// before-images exceed the undo log capacity.
	ErrUndoLogFull = errors.New("perseas: undo log full")
	// ErrStaleDB is returned when a database handle from before a crash
	// is used after recovery.
	ErrStaleDB = errors.New("perseas: stale database handle; reopen after recovery")
	// ErrNoSuchDB is returned by OpenDB for unknown names.
	ErrNoSuchDB = errors.New("perseas: no such database")
	// ErrMetaFull is returned when the database directory outgrows the
	// metadata region.
	ErrMetaFull = errors.New("perseas: metadata region full")
	// ErrBadRange is returned for ranges outside a database.
	ErrBadRange = errors.New("perseas: range outside database")
	// ErrTooManyTxs is returned by Begin when every undo slot is busy
	// and the slot cap is reached. It wraps engine.ErrBusy: the caller
	// backs off and retries once a slot frees.
	ErrTooManyTxs = fmt.Errorf("%w: too many concurrent transactions", engine.ErrBusy)
)

// Stats counts library activity.
type Stats struct {
	Begun       uint64
	Committed   uint64
	Aborted     uint64
	Conflicts   uint64
	SetRanges   uint64
	BytesLogged uint64
	Recoveries  uint64
}

// Database is one PERSEAS-managed main-memory database region. It
// implements engine.DB.
type Database struct {
	id     uint32
	name   string
	region *netram.Region
	stale  bool // guarded by the owning Library's mu
}

// Name implements engine.DB.
func (d *Database) Name() string { return d.name }

// Size implements engine.DB.
func (d *Database) Size() uint64 { return d.region.Size() }

// Bytes implements engine.DB. The slice is the local main-memory copy;
// modify only ranges declared with SetRange, as the paper's API requires.
func (d *Database) Bytes() []byte { return d.region.Local }

// Region exposes the database's mirrored network-RAM region. It exists
// for tooling and failure-injection tests that need to reach the mirror
// layer directly; applications should not use it.
func (d *Database) Region() *netram.Region { return d.region }

// pending is one range declared by SetRange, remembered until commit.
type pending struct {
	db     *Database
	offset uint64
	length uint64
}

// undoSlot is one transaction-private undo log: a mirrored region plus
// the offset of the slot's commit word inside the metadata region.
// Slot 0 is the paper's undo log with the paper's commit word; extra
// slots live under derived segment names with commit words packed at
// the metadata region's tail.
type undoSlot struct {
	idx     int
	region  *netram.Region
	wordOff uint64
	busy    bool // guarded by Library.mu
	// committed is the id of the last transaction committed from this
	// slot — the local view of the slot's remote commit word. Records
	// at the slot head with larger ids belong to an unfinished
	// transaction. Guarded by Library.mu.
	committed uint64
	// tx is the slot's reusable transaction handle: BeginTx hands it
	// out again once the previous transaction on this slot retired, so
	// the steady state allocates no handle and keeps the range/scratch
	// slices' capacity warm. A retired handle must not be used once a
	// new transaction has begun on its slot (the usual Go rule for
	// pooled objects); retired-handle misuse before that is still
	// caught by the done flag.
	tx *Tx
	// fence gates slot reuse on the retiring transaction's quorum
	// stragglers: the slot stays out of acquireSlotLocked until every
	// push the last transaction enqueued has reached every mirror. This
	// keeps the per-slot undo log's remote copies prefix-consistent —
	// at most the HEAD transaction of a slot can be partially
	// propagated at a crash, which is what quorum recovery's
	// forward-repair step relies on. The zero Fence is already Done, so
	// all-ack clients never wait.
	fence netram.Fence
}

// Library is one PERSEAS instance. Unlike the paper's sequential
// library, it is safe for concurrent use: Begin hands out independent
// transaction handles and any number of them may be in flight.
type Library struct {
	net   *netram.Client
	mem   hostmem.Model
	clock simclock.Clock

	metaSize     uint64
	undoSize     uint64
	namespace    string
	noRemoteUndo bool
	// coalesce enables store-gather merging of a committing
	// transaction's adjacent/overlapping ranges (see Tx.Commit). Off by
	// default: merging reduces the modelled per-write packet overhead,
	// so reproduced figures keep the paper's one-write-per-range cost.
	coalesce bool

	// mu guards every mutable field below plus Database.stale, Tx.done
	// and undoSlot.busy/committed. Network pushes run outside mu; the
	// conflict table guarantees the bytes they read are not concurrently
	// written.
	mu       sync.Mutex
	meta     *netram.Region
	slots    []*undoSlot
	dbs      map[string]*Database
	byID     map[uint32]*Database
	nextDBID uint32
	// dirEnd is the first metadata byte past the serialised directory;
	// slot commit words may not be allocated below it.
	dirEnd   uint64
	lastTxID uint64
	// committed is the largest committed transaction id across slots.
	committed uint64
	txs       map[*Tx]struct{}
	locks     conflictTable
	crashed   bool
	stats     Stats

	// metaMu orders writes to the metadata region's local buffer and its
	// pushes: per-slot commit words are disjoint bytes, so their writers
	// share the read lock; directory rewrites (which push the whole
	// region) take the write lock.
	metaMu sync.RWMutex

	// metrics is the lock-free commit-path breakdown; it reads the
	// clock but never advances it.
	metrics CommitMetrics

	// recMetrics is the per-phase recovery breakdown, populated by
	// Recover/Attach; like metrics it only reads the clock.
	recMetrics RecoveryMetrics

	// tracer records per-transaction span trees; nil (the default)
	// disables tracing entirely. Like metrics it only reads the clock.
	tracer *trace.Recorder

	// flightRec records recovery/rebuild phase transitions on the shared
	// anomaly flight recorder; nil records nothing.
	flightRec *flight.Recorder

	// recoveryWorkers bounds the goroutines crash recovery may use per
	// phase. 1 (the default) runs the exact historical serial loops, so
	// reproduced recovery figures are unchanged unless parallelism is
	// asked for.
	recoveryWorkers int
}

// Option configures a Library.
type Option func(*Library)

// WithUndoLogSize overrides the per-transaction undo log capacity.
func WithUndoLogSize(n uint64) Option {
	return func(l *Library) { l.undoSize = n }
}

// WithMetaSize overrides the metadata region size.
func WithMetaSize(n uint64) Option {
	return func(l *Library) { l.metaSize = n }
}

// WithMemModel overrides the local memory-copy cost model.
func WithMemModel(m hostmem.Model) Option {
	return func(l *Library) { l.mem = m }
}

// WithNamespace prefixes every remote segment name with ns, letting
// several applications keep independent PERSEAS databases on the same
// mirror workstations.
func WithNamespace(ns string) Option {
	return func(l *Library) { l.namespace = ns }
}

// WithTracer attaches a span recorder to the library: every transaction
// records its commit-path phases (and the per-mirror writes under them)
// as one span tree. The recorder never advances the library clock, so
// simulated figures are unaffected; a nil recorder records nothing.
func WithTracer(rec *trace.Recorder) Option {
	return func(l *Library) { l.tracer = rec }
}

// WithRecoveryParallelism lets crash recovery use up to n workers per
// phase: metadata snapshots fetch concurrently, undo slots reconnect and
// scan in parallel (slots hold disjoint ranges, so their scans are
// independent), database regions fetch through a bounded pool striping
// read chunks across the surviving mirrors, and rollback/repair
// publishes batch per region. n <= 1 keeps the paper's serial recovery
// loop byte-for-byte, so reproduced figures are unaffected by default.
// The recovered state is identical at every parallelism level.
func WithRecoveryParallelism(n int) Option {
	return func(l *Library) {
		if n > 1 {
			l.recoveryWorkers = n
		}
	}
}

// WithFlightRecorder attaches the anomaly flight recorder: recovery and
// rebuild phase transitions are recorded as events, giving a crash
// post-mortem the timeline metrics alone cannot. A nil recorder records
// nothing.
func WithFlightRecorder(rec *flight.Recorder) Option {
	return func(l *Library) { l.flightRec = rec }
}

// WithUnsafeNoRemoteUndo disables the remote undo-log push in SetRange.
// This exists ONLY for the ablation benchmarks that price the remote
// undo mirroring: without it a primary crash during commit cannot be
// rolled back on the mirrors, so never enable it in real deployments.
func WithUnsafeNoRemoteUndo() Option {
	return func(l *Library) { l.noRemoteUndo = true }
}

// WithStoreGather merges adjacent or overlapping declared ranges at
// commit time — the software analogue of the SCI adapter's 8×64 B
// store-gathering — shrinking the wire range count for workloads that
// touch consecutive rows (order-entry's order-line inserts). Off by
// default so reproduced figures keep the paper's one-write-per-range
// packet accounting; enable it over real transports, where fewer
// larger writes are a strict win.
func WithStoreGather() Option {
	return func(l *Library) { l.coalesce = true }
}

// Init creates a PERSEAS instance over the given reliable-network-RAM
// client — the paper's PERSEAS_init. It allocates and mirrors the
// metadata region and the first undo-log slot.
func Init(net *netram.Client, clock simclock.Clock, opts ...Option) (*Library, error) {
	l := &Library{
		net:      net,
		mem:      hostmem.Default(),
		clock:    clock,
		metaSize: DefaultMetaSize,
		undoSize: DefaultUndoLogSize,
		dbs:      make(map[string]*Database),
		byID:     make(map[uint32]*Database),
		txs:      make(map[*Tx]struct{}),
		locks:    newConflictTable(),
		nextDBID: 1,
		dirEnd:   metaHeaderSize,
	}
	for _, o := range opts {
		o(l)
	}
	// Latency histograms on both layers read this clock (never advance
	// it), so simulated runs report modelled time — and span timestamps
	// follow the same clock.
	net.SetClock(clock)
	l.tracer.SetClock(clock)
	if l.metaSize < metaHeaderSize+8 {
		return nil, fmt.Errorf("perseas: metadata region too small (%d bytes)", l.metaSize)
	}
	if l.undoSize < recordHeaderSize+1 {
		return nil, fmt.Errorf("perseas: undo log too small (%d bytes)", l.undoSize)
	}

	meta, err := net.Malloc(l.qualify(metaRegionName), l.metaSize)
	if err != nil {
		return nil, fmt.Errorf("perseas: allocate metadata: %w", err)
	}
	undo, err := net.Malloc(l.qualify(undoRegionName), l.undoSize)
	if err != nil {
		_ = net.Free(meta)
		return nil, fmt.Errorf("perseas: allocate undo log: %w", err)
	}
	l.meta = meta
	l.slots = []*undoSlot{{idx: 0, region: undo, wordOff: metaCommittedOff}}

	binary.BigEndian.PutUint64(meta.Local[metaMagicOff:], metaMagic)
	binary.BigEndian.PutUint64(meta.Local[metaCommittedOff:], 0)
	binary.BigEndian.PutUint64(meta.Local[metaUndoSizeOff:], l.undoSize)
	binary.BigEndian.PutUint32(meta.Local[metaDBCountOff:], 0)
	// Acked on every mirror: recovery reads the metadata region from
	// whichever mirror it reaches first, so quorum mode must not leave a
	// lagging copy behind. Identical to PushAll under all-ack.
	if err := net.PushAllAcked(meta); err != nil {
		return nil, fmt.Errorf("perseas: publish metadata: %w", err)
	}
	return l, nil
}

// undoSlotName derives the remote segment name of undo slot k.
func undoSlotName(k int) string {
	if k == 0 {
		return undoRegionName
	}
	return fmt.Sprintf("%s.%d", undoRegionName, k)
}

// slotWordOffset places slot k's commit word. Slot 0 uses the paper's
// header word; later slots pack 8-byte words down from the metadata
// region's tail, leaving the middle to the database directory.
func slotWordOffset(metaSize uint64, k int) uint64 {
	if k == 0 {
		return metaCommittedOff
	}
	return metaSize - 8*uint64(k)
}

// acquireSlotLocked finds a free undo slot or allocates a new one.
// Caller holds l.mu.
func (l *Library) acquireSlotLocked() (*undoSlot, error) {
	for _, s := range l.slots {
		if !s.busy && s.fence.Done() {
			return s, nil
		}
	}
	k := len(l.slots)
	if k >= maxUndoSlots {
		return nil, fmt.Errorf("%w: %d slots busy", ErrTooManyTxs, k)
	}
	wordOff := slotWordOffset(l.metaSize, k)
	if wordOff < l.dirEnd || wordOff < metaHeaderSize {
		return nil, fmt.Errorf("%w: no room for commit word of undo slot %d", ErrMetaFull, k)
	}
	region, err := l.net.Malloc(l.qualify(undoSlotName(k)), l.undoSize)
	if err != nil {
		return nil, fmt.Errorf("perseas: allocate undo slot %d: %w", k, err)
	}
	s := &undoSlot{idx: k, region: region, wordOff: wordOff}
	l.slots = append(l.slots, s)
	return s, nil
}

// Stats returns a snapshot of the library counters.
func (l *Library) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Net exposes the underlying network-RAM client (benchmarks inspect its
// traffic counters).
func (l *Library) Net() *netram.Client { return l.net }

// InTransaction reports whether any transaction is open.
func (l *Library) InTransaction() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.txs) > 0
}

// CommittedTxID returns the largest committed transaction id.
func (l *Library) CommittedTxID() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.committed
}

func (l *Library) checkAliveLocked() error {
	if l.crashed {
		return engine.ErrCrashed
	}
	return nil
}

// qualify prepends the library's namespace to a segment name.
func (l *Library) qualify(name string) string {
	if l.namespace == "" {
		return name
	}
	return l.namespace + "/" + name
}

// Name implements engine.Engine.
func (l *Library) Name() string { return "perseas" }

// CreateDB implements engine.Engine: the paper's PERSEAS_malloc. It
// allocates local memory for the database records and prepares the remote
// segments the records will be mirrored in.
func (l *Library) CreateDB(name string, size uint64) (engine.DB, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkAliveLocked(); err != nil {
		return nil, err
	}
	if _, ok := l.dbs[name]; ok {
		return nil, fmt.Errorf("perseas: database %q exists", name)
	}
	region, err := l.net.Malloc(l.qualify(dbRegionPrefix+name), size)
	if err != nil {
		return nil, fmt.Errorf("perseas: allocate database %q: %w", name, err)
	}
	db := &Database{id: l.nextDBID, name: name, region: region}
	l.nextDBID++
	l.dbs[name] = db
	l.byID[db.id] = db
	if err := l.writeDirectoryLocked(); err != nil {
		delete(l.dbs, name)
		delete(l.byID, db.id)
		_ = l.net.Free(region)
		return nil, err
	}
	return db, nil
}

// InitDB implements engine.Engine: the paper's PERSEAS_init_remote_db.
// Call it once after setting the local records to their initial values;
// it mirrors the whole database to the remote nodes. It must not run
// concurrently with transactions touching the same database.
func (l *Library) InitDB(db engine.DB) error {
	l.mu.Lock()
	if err := l.checkAliveLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	d, err := l.ownLocked(db)
	if err != nil {
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()
	// Acked everywhere: the initial image is the baseline every replica
	// and every future repair builds on.
	if err := l.net.PushAllAcked(d.region); err != nil {
		return fmt.Errorf("perseas: mirror database %q: %w", d.name, err)
	}
	return nil
}

// DropDB removes a database: its remote segments are freed on every
// mirror and the directory is republished. It cannot run while any
// transaction is open.
func (l *Library) DropDB(name string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkAliveLocked(); err != nil {
		return err
	}
	if len(l.txs) > 0 {
		return fmt.Errorf("perseas: drop database: %w", engine.ErrInTransaction)
	}
	db, ok := l.dbs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchDB, name)
	}
	if err := l.net.Free(db.region); err != nil {
		return fmt.Errorf("perseas: free database %q: %w", name, err)
	}
	db.stale = true
	delete(l.dbs, name)
	delete(l.byID, db.id)
	l.locks.releaseDB(db.id)
	return l.writeDirectoryLocked()
}

// OpenDB implements engine.Engine.
func (l *Library) OpenDB(name string) (engine.DB, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkAliveLocked(); err != nil {
		return nil, err
	}
	db, ok := l.dbs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchDB, name)
	}
	return db, nil
}

// Close implements engine.Engine. Remote segments stay exported so
// another node can take over the database.
func (l *Library) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.crashed = true
	l.retireAllLocked()
	return nil
}

// ownLocked checks that db is a live Database of this library. Caller
// holds l.mu.
func (l *Library) ownLocked(db engine.DB) (*Database, error) {
	d, ok := db.(*Database)
	if !ok {
		return nil, fmt.Errorf("perseas: foreign DB handle %T", db)
	}
	if d.stale {
		return nil, ErrStaleDB
	}
	if l.byID[d.id] != d {
		return nil, fmt.Errorf("perseas: unknown database handle %q", d.name)
	}
	return d, nil
}

// writeDirectoryLocked serialises the database directory into the
// metadata region and mirrors it. Caller holds l.mu; the metadata write
// lock is taken so the full-region push cannot race a commit word.
func (l *Library) writeDirectoryLocked() error {
	l.metaMu.Lock()
	defer l.metaMu.Unlock()
	buf := l.meta.Local
	// The directory may not grow into the slot commit words at the
	// region tail.
	limit := len(buf)
	if n := len(l.slots); n > 1 {
		limit = int(slotWordOffset(l.metaSize, n-1))
	}
	binary.BigEndian.PutUint32(buf[metaDBCountOff:], uint32(len(l.byID)))
	// The id counter is persisted so ids of dropped databases are never
	// reused after a crash: stale undo records naming a dropped id must
	// not be able to alias a database created after recovery.
	binary.BigEndian.PutUint32(buf[metaNextDBIDOff:], l.nextDBID)
	off := metaHeaderSize
	// Directory entries are ordered by id so recovery rebuilds ids
	// deterministically.
	for id := uint32(1); id < l.nextDBID; id++ {
		db, ok := l.byID[id]
		if !ok {
			continue
		}
		need := 4 + 8 + 2 + len(db.name)
		if off+need > limit {
			return fmt.Errorf("%w: %d databases", ErrMetaFull, len(l.byID))
		}
		binary.BigEndian.PutUint32(buf[off:], db.id)
		binary.BigEndian.PutUint64(buf[off+4:], db.region.Size())
		binary.BigEndian.PutUint16(buf[off+12:], uint16(len(db.name)))
		copy(buf[off+14:], db.name)
		off += need
	}
	l.dirEnd = uint64(off)
	// Acked everywhere: recovery parses the directory from a single
	// mirror's metadata copy, so quorum mode may not commit a directory
	// change that some replica has not seen.
	if err := l.net.PushAllAcked(l.meta); err != nil {
		return fmt.Errorf("perseas: publish directory: %w", err)
	}
	return nil
}

// directoryEnd computes the first byte past a directory with the given
// entries.
func directoryEnd(entries []dirEntry) uint64 {
	off := uint64(metaHeaderSize)
	for _, e := range entries {
		off += 14 + uint64(len(e.name))
	}
	return off
}

// readDirectory parses the metadata region into (id, name, size) tuples
// plus the persisted id counter.
func readDirectory(buf []byte) (committed uint64, undoSize uint64, nextDBID uint32, entries []dirEntry, err error) {
	if len(buf) < metaHeaderSize {
		return 0, 0, 0, nil, errors.New("perseas: metadata region truncated")
	}
	if binary.BigEndian.Uint64(buf[metaMagicOff:]) != metaMagic {
		return 0, 0, 0, nil, errors.New("perseas: bad metadata magic")
	}
	committed = binary.BigEndian.Uint64(buf[metaCommittedOff:])
	undoSize = binary.BigEndian.Uint64(buf[metaUndoSizeOff:])
	nextDBID = binary.BigEndian.Uint32(buf[metaNextDBIDOff:])
	count := binary.BigEndian.Uint32(buf[metaDBCountOff:])
	off := metaHeaderSize
	for i := uint32(0); i < count; i++ {
		if off+14 > len(buf) {
			return 0, 0, 0, nil, errors.New("perseas: metadata directory truncated")
		}
		e := dirEntry{
			id:   binary.BigEndian.Uint32(buf[off:]),
			size: binary.BigEndian.Uint64(buf[off+4:]),
		}
		nameLen := int(binary.BigEndian.Uint16(buf[off+12:]))
		if off+14+nameLen > len(buf) {
			return 0, 0, 0, nil, errors.New("perseas: metadata directory truncated")
		}
		e.name = string(buf[off+14 : off+14+nameLen])
		off += 14 + nameLen
		entries = append(entries, e)
	}
	return committed, undoSize, nextDBID, entries, nil
}

// dirEntry is one parsed directory row.
type dirEntry struct {
	id   uint32
	size uint64
	name string
}

// ReviveMirror reintegrates a repaired mirror node: every PERSEAS region
// — metadata, undo logs and all databases — is re-exported there and
// refilled from the primary's copies, restoring the replication degree.
// It must be called between transactions: the local copies are then
// exactly the committed state, so the resync cannot leak uncommitted
// data.
func (l *Library) ReviveMirror(i int) error {
	l.mu.Lock()
	if err := l.checkAliveLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	if len(l.txs) > 0 {
		l.mu.Unlock()
		return fmt.Errorf("perseas: revive mirror: %w", engine.ErrInTransaction)
	}
	l.mu.Unlock()
	return l.net.Revive(i)
}

// retireAllLocked invalidates every open transaction handle. Caller
// holds l.mu.
func (l *Library) retireAllLocked() {
	for tx := range l.txs {
		tx.done = true
	}
	l.txs = make(map[*Tx]struct{})
	for _, s := range l.slots {
		s.busy = false
	}
	l.locks = newConflictTable()
}

// Crash implements engine.Engine: the primary workstation fails. Local
// main memory — the databases, the undo-log slots, every pointer, every
// open transaction — is gone regardless of crash kind; only the remote
// mirrors survive.
func (l *Library) Crash(fault.CrashKind) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.crashed = true
	l.retireAllLocked()
	for _, db := range l.dbs {
		db.stale = true
	}
	l.dbs = make(map[string]*Database)
	l.byID = make(map[uint32]*Database)
	// Committers read l.meta under metaMu; taking the write lock here
	// fences any in-flight commit-word push before the region vanishes.
	l.metaMu.Lock()
	l.meta = nil
	l.metaMu.Unlock()
	l.slots = nil
	return nil
}
