package core

import (
	"encoding/binary"
	"hash/crc32"
)

// Undo-log record layout. A record is written contiguously into the local
// undo log and pushed to the remote undo log in one remote memory copy,
// so recovery can parse the remote log without any additional cursor
// state: it scans from offset zero and stops at the first record whose
// checksum fails or whose transaction id is not newer than the committed
// id published in the metadata region.
//
//	[0:8)   transaction id
//	[8:12)  database id
//	[12:20) offset of the saved range within the database
//	[20:24) length of the saved range
//	[24:28) CRC-32 (Castagnoli) of the 24 header bytes above + data
//	[28:..) before-image bytes
const (
	recordHeaderSize = 28
	// recordAlign keeps record starts 16-byte aligned so small records
	// occupy the fewest SCI packet slots.
	recordAlign = 16
	// undoChunk is the granularity recovery materialises remote undo
	// logs at: most crashes leave a handful of records per slot, so the
	// scan transfers a chunk or two, never the whole undo region.
	undoChunk = 64 << 10
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// undoRecord is one parsed record.
type undoRecord struct {
	txID   uint64
	dbID   uint32
	offset uint64
	length uint64
	data   []byte
}

// recordSize returns the bytes a record with n data bytes occupies,
// including alignment padding of the NEXT record start.
func recordSize(n uint64) uint64 {
	sz := recordHeaderSize + n
	if rem := sz % recordAlign; rem != 0 {
		sz += recordAlign - rem
	}
	return sz
}

// writeRecord serialises a record at log[cursor:], returning the number
// of bytes the log cursor must advance. The caller guarantees capacity.
func writeRecord(log []byte, cursor uint64, txID uint64, dbID uint32, offset uint64, data []byte) uint64 {
	h := log[cursor:]
	binary.BigEndian.PutUint64(h[0:], txID)
	binary.BigEndian.PutUint32(h[8:], dbID)
	binary.BigEndian.PutUint64(h[12:], offset)
	binary.BigEndian.PutUint32(h[20:], uint32(len(data)))
	crc := crc32.Update(0, crcTable, h[:24])
	crc = crc32.Update(crc, crcTable, data)
	binary.BigEndian.PutUint32(h[24:], crc)
	copy(h[recordHeaderSize:], data)
	return recordSize(uint64(len(data)))
}

// parseRecord reads the record at log[cursor:]. ok is false when the
// bytes there do not form a record with a valid checksum — which is how
// the recovery scan finds the end of the in-flight transaction's records.
func parseRecord(log []byte, cursor uint64) (rec undoRecord, advance uint64, ok bool) {
	if cursor+recordHeaderSize > uint64(len(log)) {
		return undoRecord{}, 0, false
	}
	h := log[cursor:]
	length := uint64(binary.BigEndian.Uint32(h[20:24]))
	if cursor+recordHeaderSize+length > uint64(len(log)) {
		return undoRecord{}, 0, false
	}
	crc := crc32.Update(0, crcTable, h[:24])
	crc = crc32.Update(crc, crcTable, h[recordHeaderSize:recordHeaderSize+length])
	if crc != binary.BigEndian.Uint32(h[24:28]) {
		return undoRecord{}, 0, false
	}
	rec = undoRecord{
		txID:   binary.BigEndian.Uint64(h[0:8]),
		dbID:   binary.BigEndian.Uint32(h[8:12]),
		offset: binary.BigEndian.Uint64(h[12:20]),
		length: length,
		data:   h[recordHeaderSize : recordHeaderSize+length],
	}
	return rec, recordSize(length), true
}

// scanUndoLog returns, in log order, the records of the single
// transaction written at the head of the log, provided it is newer than
// committed.
//
// The scan stops at the first invalid or stale record AND at the first
// record of a different transaction. The second condition is load-
// bearing: every transaction writes its records contiguously from offset
// zero, so beyond the head transaction's tail the log holds remnants of
// OLDER transactions — and when such a remnant belongs to an aborted
// transaction it may be an incomplete suffix of that transaction's
// records, whose before-images can carry uncommitted bytes (a later
// SetRange of the aborted transaction captured data an earlier range of
// the same transaction had already modified). Applying an incomplete
// suffix would write those uncommitted bytes with nothing left to
// restore them. A complete record set is only ever guaranteed for the
// transaction whose records start at offset zero, so that is the only
// one recovery may roll back — which is also the only one that can have
// touched the remote database.
func scanUndoLog(log []byte, committed uint64) []undoRecord {
	recs, _ := scanUndoLogLazy(committed, uint64(len(log)),
		func(uint64) ([]byte, error) { return log, nil })
	return recs
}

// scanUndoLogLazy is scanUndoLog over a partially materialised log
// buffer of size total bytes: before touching the first n bytes it calls
// ensure(n), which the caller implements by fetching the next chunk of
// the remote undo log and returning the buffer holding the materialised
// prefix (the buffer may move between calls as it grows; returned
// records alias the final one, and earlier copies keep their bytes).
// Recovery thus transfers only the log prefix the head transaction
// actually wrote, not the whole undo region.
func scanUndoLogLazy(committed, total uint64, ensure func(uint64) ([]byte, error)) ([]undoRecord, error) {
	var out []undoRecord
	var cursor uint64
	var headTx uint64
	for {
		log, err := ensure(cursor + recordHeaderSize)
		if err != nil {
			return nil, err
		}
		if cursor+recordHeaderSize > total {
			return out, nil
		}
		length := uint64(binary.BigEndian.Uint32(log[cursor+20 : cursor+24]))
		if cursor+recordHeaderSize+length > total {
			return out, nil
		}
		if log, err = ensure(cursor + recordHeaderSize + length); err != nil {
			return nil, err
		}
		rec, advance, ok := parseRecord(log, cursor)
		if !ok || rec.txID <= committed {
			return out, nil
		}
		if headTx == 0 {
			headTx = rec.txID
		} else if rec.txID != headTx {
			// A different transaction's remnant: possibly incomplete,
			// never applied.
			return out, nil
		}
		out = append(out, rec)
		cursor += advance
	}
}
