package core_test

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

// TestTransportEquivalence runs the identical seeded workload over the
// in-process SCI-model transport and over real TCP, then checks that the
// final database bytes — locally AND on the mirrors — are identical.
// The transport must affect timing only, never contents.
func TestTransportEquivalence(t *testing.T) {
	run := func(lib *core.Library, fetch func(name string) []byte) ([]byte, []byte) {
		t.Helper()
		db, err := lib.CreateDB("db", 4096)
		if err != nil {
			t.Fatal(err)
		}
		if err := lib.InitDB(db); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 150; i++ {
			tx, err := lib.BeginTx()
			if err != nil {
				t.Fatal(err)
			}
			n := 1 + rng.Intn(3)
			for j := 0; j < n; j++ {
				off := uint64(rng.Intn(4000))
				ln := uint64(1 + rng.Intn(64))
				if off+ln > 4096 {
					ln = 4096 - off
				}
				if err := tx.SetRange(db, off, ln); err != nil {
					t.Fatal(err)
				}
				for k := uint64(0); k < ln; k++ {
					db.Bytes()[off+k] = byte(rng.Intn(256))
				}
			}
			if rng.Intn(5) == 0 {
				if err := tx.Abort(); err != nil {
					t.Fatal(err)
				}
			} else if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		return append([]byte(nil), db.Bytes()...), fetch("perseas.db.db")
	}

	// In-process deployment.
	clock := simclock.NewSim()
	srvA := memserver.New()
	trA, err := transport.NewInProc(srvA, sci.DefaultParams(), clock)
	if err != nil {
		t.Fatal(err)
	}
	netA, err := netram.NewClient([]netram.Mirror{{Name: "inproc", T: trA}})
	if err != nil {
		t.Fatal(err)
	}
	libA, err := core.Init(netA, clock)
	if err != nil {
		t.Fatal(err)
	}
	localA, mirrorA := run(libA, func(name string) []byte {
		seg, err := srvA.Connect(name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := srvA.Read(seg.ID, 0, 4096)
		if err != nil {
			t.Fatal(err)
		}
		return data
	})

	// TCP deployment.
	addr := startTCPMirror(t, "tcp-mirror")
	netB := dialRAM(t, addr)
	libB, err := core.Init(netB, simclock.NewWall())
	if err != nil {
		t.Fatal(err)
	}
	cli, err := transport.DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	localB, mirrorB := run(libB, func(name string) []byte {
		h, err := cli.Connect(name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := cli.Read(h.ID, 0, 4096)
		if err != nil {
			t.Fatal(err)
		}
		return data
	})

	if !bytes.Equal(localA, localB) {
		t.Error("local contents diverge between transports")
	}
	if !bytes.Equal(mirrorA, mirrorB) {
		t.Error("mirror contents diverge between transports")
	}
	if !bytes.Equal(localA, mirrorA) {
		t.Error("in-process deployment: local and mirror diverge")
	}
	if !bytes.Equal(localB, mirrorB) {
		t.Error("TCP deployment: local and mirror diverge")
	}
}

var _ engine.Engine = (*core.Library)(nil)
