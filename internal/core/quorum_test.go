package core

import (
	"sync/atomic"
	"testing"

	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

// stallTransport parks every write on the gate channel while stall is
// set — a mirror that falls behind the quorum but stays reachable for
// reads and pings (recovery fetches from it through a fresh transport).
type stallTransport struct {
	transport.Transport
	stall atomic.Bool
	gate  chan struct{}
}

func (s *stallTransport) Write(seg uint32, offset uint64, data []byte) error {
	if s.stall.Load() {
		<-s.gate
	}
	return s.Transport.Write(seg, offset, data)
}

func (s *stallTransport) WriteBatch(writes []transport.BatchWrite) error {
	if s.stall.Load() {
		<-s.gate
	}
	if bw, ok := s.Transport.(transport.BatchWriter); ok {
		return bw.WriteBatch(writes)
	}
	for _, w := range writes {
		if err := s.Transport.Write(w.Seg, w.Offset, w.Data); err != nil {
			return err
		}
	}
	return nil
}

// quorumCrashRig wires a quorum-w library over n mirrors, of which the
// mirrors named in stalled get a stallTransport (initially passing
// writes through).
type quorumCrashRig struct {
	lib     *Library
	net     *netram.Client
	servers []*memserver.Server
	stalls  []*stallTransport
	clock   *simclock.SimClock
	gate    chan struct{}
}

func newQuorumCrashRig(t *testing.T, n, w int, stalled ...int) *quorumCrashRig {
	t.Helper()
	r := &quorumCrashRig{clock: simclock.NewSim(), gate: make(chan struct{})}
	isStalled := make(map[int]bool)
	for _, i := range stalled {
		isStalled[i] = true
	}
	var mirrors []netram.Mirror
	for i := 0; i < n; i++ {
		srv := memserver.New(memserver.WithLabel("node" + string(rune('A'+i))))
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), r.clock)
		if err != nil {
			t.Fatal(err)
		}
		r.servers = append(r.servers, srv)
		var tp transport.Transport = tr
		if isStalled[i] {
			st := &stallTransport{Transport: tr, gate: r.gate}
			r.stalls = append(r.stalls, st)
			tp = st
		}
		mirrors = append(mirrors, netram.Mirror{Name: srv.Label(), T: tp})
	}
	net, err := netram.NewClient(mirrors, netram.WithQuorum(w))
	if err != nil {
		t.Fatal(err)
	}
	r.net = net
	lib, err := Init(net, r.clock)
	if err != nil {
		t.Fatal(err)
	}
	r.lib = lib
	// Release any parked straggler at the end so its worker goroutine
	// retires; by then every assertion has run.
	t.Cleanup(func() { close(r.gate) })
	return r
}

// engageStalls turns the parked-write behaviour on after setup.
func (r *quorumCrashRig) engageStalls() {
	for _, st := range r.stalls {
		st.stall.Store(true)
	}
}

// attach simulates the primary dying and a fresh node taking over: a
// brand-new client over fresh transports to the same mirror servers
// (the old client — and its parked stragglers — is simply abandoned,
// as a dead process's in-flight writes are).
func (r *quorumCrashRig) attach(t *testing.T, w int) (*Library, *netram.Client) {
	t.Helper()
	var mirrors []netram.Mirror
	for _, srv := range r.servers {
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), r.clock)
		if err != nil {
			t.Fatal(err)
		}
		mirrors = append(mirrors, netram.Mirror{Name: srv.Label(), T: tr})
	}
	net, err := netram.NewClient(mirrors, netram.WithQuorum(w))
	if err != nil {
		t.Fatal(err)
	}
	lib, err := Attach(net, r.clock)
	if err != nil {
		t.Fatalf("attach after quorum crash: %v", err)
	}
	return lib, net
}

// TestQuorumCommitSurvivesPrimaryDeath is the tentpole crash window: a
// transaction commits at 2-of-3 acks, the straggler never receives its
// undo records, data or commit word, and the primary dies. A fresh node
// attaching over the mirrors must see the committed transaction, repair
// the lagging mirror before anything is readable, and leave every
// mirror byte-identical.
func TestQuorumCommitSurvivesPrimaryDeath(t *testing.T) {
	r := newQuorumCrashRig(t, 3, 2, 2)
	db, err := r.lib.CreateDB("bank", 512)
	if err != nil {
		t.Fatal(err)
	}
	for i := range db.Bytes() {
		db.Bytes()[i] = 0x11
	}
	if err := r.lib.InitDB(db); err != nil {
		t.Fatal(err)
	}

	// A fully propagated baseline commit.
	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 8); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[0:], []byte("baseline"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r.net.WaitCatchUp()

	// Mirror C stops receiving writes; the next commit reaches quorum
	// on A and B only.
	r.engageStalls()
	tx2, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.SetRange(db, 64, 10); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[64:], []byte("quorum-win"))
	if err := tx2.Commit(); err != nil {
		t.Fatalf("2-of-3 commit with a stalled straggler: %v", err)
	}
	if got := r.net.CatchUpPending(2); got == 0 {
		t.Fatal("straggler has no pending catch-up; the stall is not engaged")
	}

	// Primary dies here — quorum reached, catch-up outstanding.
	lib2, net2 := r.attach(t, 2)
	re, err := lib2.OpenDB("bank")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[64:74]); got != "quorum-win" {
		t.Errorf("quorum-committed tx lost: recovered %q", got)
	}
	if got := string(re.Bytes()[0:8]); got != "baseline" {
		t.Errorf("baseline commit lost: recovered %q", got)
	}
	if re.Bytes()[511] != 0x11 {
		t.Error("initial fill lost")
	}

	// Repair-before-read: after recovery every mirror — including the
	// one that missed the commit entirely — is byte-identical.
	mismatches, err := net2.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mismatches {
		t.Errorf("post-recovery divergence: %v", m)
	}

	// The attached node processes new transactions.
	tx3, err := lib2.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx3.SetRange(re, 0, 8); err != nil {
		t.Fatal(err)
	}
	copy(re.Bytes()[0:], []byte("newboss!"))
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestQuorumRecoveryWordOnSingleMirror stresses the word-merge: with
// w=1, the commit word (and the transaction's records) may exist on a
// single mirror when the primary dies. Recovery must pick the maximum
// word across copies, treat that transaction as committed, and repair
// both lagging mirrors from the one that has it.
func TestQuorumRecoveryWordOnSingleMirror(t *testing.T) {
	r := newQuorumCrashRig(t, 3, 1, 1, 2)
	db, err := r.lib.CreateDB("ledger", 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.lib.InitDB(db); err != nil {
		t.Fatal(err)
	}
	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 6); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[0:], []byte("stable"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r.net.WaitCatchUp()

	// Only mirror A receives anything from here on.
	r.engageStalls()
	tx2, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.SetRange(db, 128, 6); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[128:], []byte("lonely"))
	if err := tx2.Commit(); err != nil {
		t.Fatalf("1-of-3 commit: %v", err)
	}

	lib2, net2 := r.attach(t, 1)
	re, err := lib2.OpenDB("ledger")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[128:134]); got != "lonely" {
		t.Errorf("single-mirror committed tx lost: recovered %q", got)
	}
	if got := string(re.Bytes()[0:6]); got != "stable" {
		t.Errorf("baseline lost: recovered %q", got)
	}
	mismatches, err := net2.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mismatches {
		t.Errorf("post-recovery divergence: %v", m)
	}
}

// TestQuorumRecoveryRollsBackInFlight: the dual window — the primary
// dies after a transaction's undo records and data reached a quorum but
// its commit word reached nobody. The transaction never committed;
// recovery must roll the touched mirrors back using the before-images
// and leave the mirror set byte-identical at the pre-transaction state.
func TestQuorumRecoveryRollsBackInFlight(t *testing.T) {
	r := newQuorumCrashRig(t, 3, 2, 2)
	db, err := r.lib.CreateDB("bank", 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.lib.InitDB(db); err != nil {
		t.Fatal(err)
	}
	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 6); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[0:], []byte("stable"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	r.net.WaitCatchUp()

	// In-flight transaction: undo records land (quorum), data is pushed
	// by hand (simulating the mid-commit crash before the word push, as
	// TestRecoverRollsBackInFlightTransaction does on the all-ack path).
	r.engageStalls()
	tx2, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.SetRange(db, 0, 6); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[0:], []byte("BROKEN"))
	if err := r.net.Push(db.(*Database).region, 0, 6); err != nil {
		t.Fatal(err)
	}

	lib2, net2 := r.attach(t, 2)
	re, err := lib2.OpenDB("bank")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[0:6]); got != "stable" {
		t.Errorf("recovered %q, want rolled-back %q", got, "stable")
	}
	mismatches, err := net2.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mismatches {
		t.Errorf("post-rollback divergence: %v", m)
	}
}
