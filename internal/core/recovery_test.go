package core

import (
	"bytes"
	"testing"

	"github.com/ics-forth/perseas/internal/fault"
)

// crashAndRecover simulates a primary failure and runs recovery.
func (r *rig) crashAndRecover(t *testing.T) {
	t.Helper()
	if err := r.lib.Crash(fault.CrashPower); err != nil {
		t.Fatal(err)
	}
	if err := r.lib.Recover(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverCommittedState(t *testing.T) {
	r := newRig(t, 2)
	db := r.mustCreate(t, "db", 512, 0x11)
	r.update(t, db, 100, []byte("committed!"))

	r.crashAndRecover(t)

	re, err := r.lib.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[100:110]); got != "committed!" {
		t.Errorf("recovered %q, want %q", got, "committed!")
	}
	// The untouched bytes carry the initial fill.
	if re.Bytes()[0] != 0x11 || re.Bytes()[511] != 0x11 {
		t.Error("recovered database lost its initial content")
	}
	if r.lib.Stats().Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", r.lib.Stats().Recoveries)
	}
}

func TestRecoverRollsBackInFlightTransaction(t *testing.T) {
	r := newRig(t, 2)
	db := r.mustCreate(t, "db", 512, 0)
	r.update(t, db, 0, []byte("stable"))

	// Start a transaction and crash after its updates partially
	// propagated to the remote database (mid-commit, before the commit
	// word): push the range by hand to simulate the partial commit.
	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 6); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[0:], []byte("BROKEN"))
	if err := r.net.Push(db.(*Database).region, 0, 6); err != nil {
		t.Fatal(err)
	}

	r.crashAndRecover(t)

	re, err := r.lib.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[:6]); got != "stable" {
		t.Errorf("recovered %q, want rolled-back %q", got, "stable")
	}
	// The mirrors were repaired too.
	for _, srv := range r.servers {
		seg, err := srv.Connect("perseas.db.db")
		if err != nil {
			t.Fatal(err)
		}
		got, _ := srv.Read(seg.ID, 0, 6)
		if string(got) != "stable" {
			t.Errorf("mirror %s holds %q after recovery", srv.Label(), got)
		}
	}
}

func TestRecoverUncommittedNotPropagated(t *testing.T) {
	// Crash with an open transaction whose updates never left the local
	// node: the remote database is already legal; recovery must keep
	// the committed state.
	r := newRig(t, 2)
	db := r.mustCreate(t, "db", 256, 0)
	r.update(t, db, 0, []byte("good"))

	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 4); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[0:], []byte("evil"))
	// No pushes: crash strikes before commit.
	r.crashAndRecover(t)

	re, err := r.lib.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[:4]); got != "good" {
		t.Errorf("recovered %q, want %q", got, "good")
	}
}

func TestRecoverAfterCommitKeepsNewState(t *testing.T) {
	// Crash immediately after a successful commit: the new state is
	// durable.
	r := newRig(t, 2)
	db := r.mustCreate(t, "db", 256, 0)
	r.update(t, db, 0, []byte("v1"))
	r.update(t, db, 0, []byte("v2"))

	r.crashAndRecover(t)
	re, err := r.lib.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[:2]); got != "v2" {
		t.Errorf("recovered %q, want %q", got, "v2")
	}
}

func TestRecoverAfterAbortThenCrash(t *testing.T) {
	// An aborted transaction leaves stale records with fresh ids in the
	// remote undo log. A crash before the next commit must still
	// recover the committed state (applying those records is harmless —
	// their before-images equal the committed data).
	r := newRig(t, 2)
	db := r.mustCreate(t, "db", 256, 0)
	r.update(t, db, 0, []byte("keep"))

	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 4); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[0:], []byte("temp"))
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}

	r.crashAndRecover(t)
	re, err := r.lib.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[:4]); got != "keep" {
		t.Errorf("recovered %q, want %q", got, "keep")
	}

	// The library keeps working after recovery.
	tx2, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.SetRange(re, 0, 4); err != nil {
		t.Fatal(err)
	}
	copy(re.Bytes()[0:], []byte("next"))
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverMultipleDatabases(t *testing.T) {
	r := newRig(t, 2)
	a := r.mustCreate(t, "alpha", 128, 1)
	b := r.mustCreate(t, "beta", 256, 2)
	c := r.mustCreate(t, "gamma", 64, 3)
	r.update(t, a, 0, []byte("AAAA"))
	r.update(t, b, 10, []byte("BBBB"))
	r.update(t, c, 20, []byte("CCCC"))

	r.crashAndRecover(t)

	for _, tc := range []struct {
		name   string
		size   uint64
		offset uint64
		want   string
		fill   byte
	}{
		{"alpha", 128, 0, "AAAA", 1},
		{"beta", 256, 10, "BBBB", 2},
		{"gamma", 64, 20, "CCCC", 3},
	} {
		db, err := r.lib.OpenDB(tc.name)
		if err != nil {
			t.Fatalf("open %s: %v", tc.name, err)
		}
		if db.Size() != tc.size {
			t.Errorf("%s size = %d, want %d", tc.name, db.Size(), tc.size)
		}
		if got := string(db.Bytes()[tc.offset : tc.offset+4]); got != tc.want {
			t.Errorf("%s = %q, want %q", tc.name, got, tc.want)
		}
		if db.Bytes()[tc.size-1] != tc.fill {
			t.Errorf("%s lost its fill byte", tc.name)
		}
	}
}

func TestRecoverPreservesTxIDMonotonicity(t *testing.T) {
	r := newRig(t, 1)
	db := r.mustCreate(t, "db", 64, 0)
	r.update(t, db, 0, []byte("a")) // tx 1
	r.update(t, db, 1, []byte("b")) // tx 2

	// In-flight tx 3 crashes.
	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 2); err != nil {
		t.Fatal(err)
	}
	r.crashAndRecover(t)

	if got := r.lib.CommittedTxID(); got != 2 {
		t.Errorf("committed = %d, want 2", got)
	}
	// The next transaction must not reuse id 3's records ambiguously:
	// its id must exceed every id seen in the log.
	re, err := r.lib.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.SetRange(re, 0, 2); err != nil {
		t.Fatal(err)
	}
	copy(re.Bytes(), []byte("zz"))
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := r.lib.CommittedTxID(); got != 4 {
		t.Errorf("committed after recovery-following tx = %d, want 4 (skipping in-flight id 3)", got)
	}
}

func TestAttachFromFreshNode(t *testing.T) {
	// The paper: the database may be reconstructed quickly in ANY
	// workstation of the network. Build a brand-new library instance
	// (fresh process) over the same mirrors and take over.
	r := newRig(t, 2)
	db := r.mustCreate(t, "db", 128, 0)
	r.update(t, db, 0, []byte("takeover"))

	// The original primary silently dies; a different node attaches.
	takeover, err := Attach(r.net, r.clock)
	if err != nil {
		t.Fatal(err)
	}
	re, err := takeover.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[:8]); got != "takeover" {
		t.Errorf("attached node sees %q", got)
	}
	// And it can process new transactions.
	tx, err := takeover.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(re, 0, 8); err != nil {
		t.Fatal(err)
	}
	copy(re.Bytes(), []byte("newboss!"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverWithOneMirrorDown(t *testing.T) {
	r := newRig(t, 2)
	db := r.mustCreate(t, "db", 128, 0)
	r.update(t, db, 0, []byte("redundant"))

	r.servers[0].Crash()
	r.crashAndRecover(t)

	re, err := r.lib.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[:9]); got != "redundant" {
		t.Errorf("recovered %q via surviving mirror", got)
	}
}

func TestRecoverFailsWhenAllMirrorsDown(t *testing.T) {
	r := newRig(t, 2)
	_ = r.mustCreate(t, "db", 128, 0)
	for _, srv := range r.servers {
		srv.Crash()
	}
	if err := r.lib.Crash(fault.CrashPower); err != nil {
		t.Fatal(err)
	}
	if err := r.lib.Recover(); err == nil {
		t.Error("recovery with every mirror down must fail")
	}
}

func TestRepeatedCrashRecoverCycles(t *testing.T) {
	r := newRig(t, 2)
	db := r.mustCreate(t, "db", 64, 0)
	want := make([]byte, 8)
	for i := 0; i < 5; i++ {
		payload := bytes.Repeat([]byte{byte('a' + i)}, 8)
		r.update(t, db, 0, payload)
		copy(want, payload)
		r.crashAndRecover(t)
		re, err := r.lib.OpenDB("db")
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if !bytes.Equal(re.Bytes()[:8], want) {
			t.Fatalf("cycle %d: recovered %q, want %q", i, re.Bytes()[:8], want)
		}
		db = re
	}
}
