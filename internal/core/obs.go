package core

import "github.com/ics-forth/perseas/internal/obs"

// CommitMetrics breaks a transaction's cost into the paper's phases
// (Fig. 3): the local before-image copy, the remote undo-log push, the
// database range push at commit, and the one small remote write that
// publishes the commit word. Every histogram holds nanoseconds of
// clock delta — on a simulated clock that is exactly the modelled
// time, and the instrumentation only ever reads the clock, so the
// reproduced figures are identical with or without it.
type CommitMetrics struct {
	// LocalCopy is SetRange's step 1: before-image into the local undo
	// slot.
	LocalCopy obs.Histogram
	// UndoPush is SetRange's step 2: the log record to the remote undo
	// log.
	UndoPush obs.Histogram
	// RangePush is Commit's step 3: the modified database ranges to
	// every mirror.
	RangePush obs.Histogram
	// WordPush is the atomic commit point: one 8-byte remote write of
	// the slot's commit word.
	WordPush obs.Histogram
	// CommitTotal is a whole successful Commit call.
	CommitTotal obs.Histogram
	// Repairs counts ranges re-pushed by Abort after a partially
	// executed Commit, restoring mirror/local agreement.
	Repairs obs.Counter
}

// RecoveryMetrics breaks a crash recovery into its phases, mirroring
// the spans WithRecoveryParallelism parallelises: metadata reconnect
// and snapshots, undo-slot reconnect, database image fetch, undo-log
// scans, rollback publish, staged quorum repair, and the quorum undo
// republish. Histograms hold nanoseconds of clock delta; the clock is
// only ever read, so instrumentation never shifts modelled time.
type RecoveryMetrics struct {
	// MetaFetch is metadata reconnect, directory fetch and — under
	// quorum — the per-mirror metadata snapshots.
	MetaFetch obs.Histogram
	// SlotConnect is undo-slot reconnection plus commit-word settlement.
	SlotConnect obs.Histogram
	// DBFetch is database reconnection and full-image fetch.
	DBFetch obs.Histogram
	// SlotScan is the per-slot head-transaction undo-log scans.
	SlotScan obs.Histogram
	// Rollback is the all-ack in-flight rollback and its mirror repair
	// publish.
	Rollback obs.Histogram
	// Repair is the staged quorum repair: winner fetches, local applies
	// and the acked publish.
	Repair obs.Histogram
	// Republish is the quorum undo-log republish (winner prefix plus
	// remote tail zeroing).
	Republish obs.Histogram
	// RecoverTotal is a whole successful Recover call.
	RecoverTotal obs.Histogram
}

// Metrics exposes the library's commit-path histograms.
func (l *Library) Metrics() *CommitMetrics { return &l.metrics }

// RecoveryMetrics exposes the library's recovery-phase histograms.
func (l *Library) RecoveryMetrics() *RecoveryMetrics { return &l.recMetrics }

// RegisterMetrics registers the commit-path breakdown and the
// network-RAM client's counters on reg.
func (l *Library) RegisterMetrics(reg *obs.Registry) {
	l.RegisterMetricsPrefixed(reg, "perseas")
}

// RegisterMetricsPrefixed registers the same series under a caller-chosen
// name prefix, so several shard instances can share one registry without
// colliding ("perseas_shard0_commit_total_ns", ...).
func (l *Library) RegisterMetricsPrefixed(reg *obs.Registry, prefix string) {
	m := &l.metrics
	reg.RegisterHistogram(prefix+"_commit_local_copy_ns", "SetRange before-image local copy", &m.LocalCopy)
	reg.RegisterHistogram(prefix+"_commit_undo_push_ns", "SetRange undo record remote push", &m.UndoPush)
	reg.RegisterHistogram(prefix+"_commit_range_push_ns", "Commit database range push", &m.RangePush)
	reg.RegisterHistogram(prefix+"_commit_word_push_ns", "commit word publish", &m.WordPush)
	reg.RegisterHistogram(prefix+"_commit_total_ns", "whole successful Commit call", &m.CommitTotal)
	reg.RegisterCounter(prefix+"_abort_mirror_repairs_total", "ranges re-pushed by Abort after a failed Commit", &m.Repairs)
	rm := &l.recMetrics
	reg.RegisterHistogram(prefix+"_recover_meta_fetch_ns", "recovery metadata reconnect + snapshots", &rm.MetaFetch)
	reg.RegisterHistogram(prefix+"_recover_slot_connect_ns", "recovery undo-slot reconnect + word settlement", &rm.SlotConnect)
	reg.RegisterHistogram(prefix+"_recover_db_fetch_ns", "recovery database reconnect + image fetch", &rm.DBFetch)
	reg.RegisterHistogram(prefix+"_recover_slot_scan_ns", "recovery undo-log head scans", &rm.SlotScan)
	reg.RegisterHistogram(prefix+"_recover_rollback_ns", "recovery in-flight rollback + repair publish", &rm.Rollback)
	reg.RegisterHistogram(prefix+"_recover_quorum_repair_ns", "recovery staged quorum repair", &rm.Repair)
	reg.RegisterHistogram(prefix+"_recover_undo_republish_ns", "recovery quorum undo-log republish", &rm.Republish)
	reg.RegisterHistogram(prefix+"_recover_total_ns", "whole successful Recover call", &rm.RecoverTotal)
	reg.RegisterGauge(prefix+"_recover_parallelism", "workers crash recovery may use (1 = serial)", func() uint64 {
		if l.recoveryWorkers > 1 {
			return uint64(l.recoveryWorkers)
		}
		return 1
	})
	l.net.RegisterMetricsPrefixed(reg, prefix+"_netram")
}

// RecoveryLatencyRows renders the recovery-phase breakdown as table rows
// for perseas-recover and perseas-bench.
func (l *Library) RecoveryLatencyRows() []obs.LatencyRow {
	m := &l.recMetrics
	return []obs.LatencyRow{
		{Name: "meta fetch", Snap: m.MetaFetch.Snapshot()},
		{Name: "slot connect", Snap: m.SlotConnect.Snapshot()},
		{Name: "db fetch", Snap: m.DBFetch.Snapshot()},
		{Name: "slot scan", Snap: m.SlotScan.Snapshot()},
		{Name: "rollback", Snap: m.Rollback.Snapshot()},
		{Name: "quorum repair", Snap: m.Repair.Snapshot()},
		{Name: "undo republish", Snap: m.Republish.Snapshot()},
		{Name: "recover total", Snap: m.RecoverTotal.Snapshot()},
	}
}

// ConflictOccupancy reports how many range claims live transactions
// currently hold in the conflict table — a direct gauge of write-set
// pressure and a leading indicator of conflict-abort storms.
func (l *Library) ConflictOccupancy() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, claims := range l.locks.byDB {
		n += len(claims)
	}
	return n
}

// CommitLatencyRows renders the commit-path breakdown as table rows
// for perseas-bench and perseas-stress.
func (l *Library) CommitLatencyRows() []obs.LatencyRow {
	m := &l.metrics
	return []obs.LatencyRow{
		{Name: "local undo copy", Snap: m.LocalCopy.Snapshot()},
		{Name: "remote undo push", Snap: m.UndoPush.Snapshot()},
		{Name: "db range push", Snap: m.RangePush.Snapshot()},
		{Name: "commit word push", Snap: m.WordPush.Snapshot()},
		{Name: "commit total", Snap: m.CommitTotal.Snapshot()},
	}
}
