package core

import (
	"bytes"
	"errors"
	"testing"

	"github.com/ics-forth/perseas/internal/engine"
)

func TestUpdateCommits(t *testing.T) {
	r := newRig(t, 2)
	db := r.mustCreate(t, "db", 128, 0)
	err := r.lib.Update(func(tx *Tx) error {
		if err := tx.Write(db, 10, []byte("closure api")); err != nil {
			return err
		}
		got, err := tx.Read(db, 10, 11)
		if err != nil {
			return err
		}
		if string(got) != "closure api" {
			t.Errorf("read inside tx = %q", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(db.Bytes()[10:21]); got != "closure api" {
		t.Errorf("after commit = %q", got)
	}
	// Durable on the mirrors.
	seg, err := r.servers[0].Connect("perseas.db.db")
	if err != nil {
		t.Fatal(err)
	}
	remote, _ := r.servers[0].Read(seg.ID, 10, 11)
	if string(remote) != "closure api" {
		t.Errorf("mirror = %q", remote)
	}
	if r.lib.InTransaction() {
		t.Error("transaction left open")
	}
}

func TestUpdateAbortsOnError(t *testing.T) {
	r := newRig(t, 1)
	db := r.mustCreate(t, "db", 64, 0x33)
	sentinel := errors.New("business rule violated")
	err := r.lib.Update(func(tx *Tx) error {
		if err := tx.Write(db, 0, []byte("dirty")); err != nil {
			return err
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	if !bytes.Equal(db.Bytes(), bytes.Repeat([]byte{0x33}, 64)) {
		t.Error("error path did not roll back")
	}
	if r.lib.InTransaction() {
		t.Error("transaction left open")
	}
}

func TestUpdateAbortsOnPanic(t *testing.T) {
	r := newRig(t, 1)
	db := r.mustCreate(t, "db", 64, 0x44)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic should propagate")
			}
		}()
		_ = r.lib.Update(func(tx *Tx) error {
			if err := tx.Write(db, 0, []byte("doomed")); err != nil {
				return err
			}
			panic("boom")
		})
	}()
	if !bytes.Equal(db.Bytes(), bytes.Repeat([]byte{0x44}, 64)) {
		t.Error("panic path did not roll back")
	}
	if r.lib.InTransaction() {
		t.Error("transaction left open after panic")
	}
	// The library still works.
	if err := r.lib.Update(func(tx *Tx) error {
		return tx.Write(db, 0, []byte("alive"))
	}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateWritable(t *testing.T) {
	r := newRig(t, 1)
	db := r.mustCreate(t, "db", 64, 0)
	err := r.lib.Update(func(tx *Tx) error {
		buf, err := tx.Writable(db, 8, 8)
		if err != nil {
			return err
		}
		copy(buf, "in-place")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(db.Bytes()[8:16]); got != "in-place" {
		t.Errorf("got %q", got)
	}
}

func TestUpdateValidation(t *testing.T) {
	r := newRig(t, 1)
	db := r.mustCreate(t, "db", 64, 0)
	err := r.lib.Update(func(tx *Tx) error {
		return tx.Write(db, 60, []byte("spills over"))
	})
	if !errors.Is(err, ErrBadRange) {
		t.Errorf("overflow write: %v", err)
	}
	err = r.lib.Update(func(tx *Tx) error {
		_, err := tx.Read(db, 60, 8)
		return err
	})
	if !errors.Is(err, ErrBadRange) {
		t.Errorf("overflow read: %v", err)
	}
	// A nested Update is simply a second concurrent transaction: legal
	// on disjoint ranges, refused with ErrConflict on overlapping ones.
	err = r.lib.Update(func(tx *Tx) error {
		if err := tx.Write(db, 0, []byte("outer")); err != nil {
			return err
		}
		return r.lib.Update(func(inner *Tx) error {
			if err := inner.Write(db, 0, []byte("inner")); !errors.Is(err, engine.ErrConflict) {
				t.Errorf("overlapping nested write: %v", err)
			}
			return inner.Write(db, 32, []byte("disjoint"))
		})
	})
	if err != nil {
		t.Errorf("nested update on disjoint ranges: %v", err)
	}
	if got := string(db.Bytes()[:5]); got != "outer" {
		t.Errorf("outer write lost: %q", got)
	}
	if got := string(db.Bytes()[32:40]); got != "disjoint" {
		t.Errorf("nested write lost: %q", got)
	}
}
