package core

import (
	"bytes"
	"fmt"
	"testing"
)

// TestCommitAllocsZero pins the allocation-free steady-state commit
// path: once the handle, undo slot and netram scratch buffers are warm,
// a full Begin/SetRange/update/Commit cycle allocates nothing — over
// one mirror (serial push) and over two (parallel fan-out).
func TestCommitAllocsZero(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	for _, nm := range []int{1, 2} {
		t.Run(fmt.Sprintf("%d-mirror", nm), func(t *testing.T) {
			r := newRig(t, nm)
			db := r.mustCreate(t, "accounts", 8192, 0)
			buf := db.Bytes()
			cycle := func() {
				tx, err := r.lib.BeginTx()
				if err != nil {
					t.Fatal(err)
				}
				if err := tx.SetRange(db, 0, 64); err != nil {
					t.Fatal(err)
				}
				if err := tx.SetRange(db, 4096, 128); err != nil {
					t.Fatal(err)
				}
				buf[0]++
				buf[4096]++
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 8; i++ { // warm slot, scratch and pools
				cycle()
			}
			if n := testing.AllocsPerRun(100, cycle); n != 0 {
				t.Errorf("commit cycle allocates %.1f objects per run, want 0", n)
			}
		})
	}
}

// TestStoreGatherCoalescesAdjacentRanges: with WithStoreGather enabled,
// adjacent and overlapping pending ranges of one database travel as a
// single merged wire range, and both commit and abort stay correct.
func TestStoreGatherCoalescesAdjacentRanges(t *testing.T) {
	r := newRig(t, 1, WithStoreGather())
	db := r.mustCreate(t, "accounts", 4096, 0xAA)
	buf := db.Bytes()

	before := r.net.Stats()
	tx, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	// Three declared ranges, but the first two are adjacent and the
	// third overlaps the second — one merged range [0,192) on the wire.
	for _, rg := range [][2]uint64{{0, 64}, {64, 64}, {100, 92}} {
		if err := tx.SetRange(db, rg[0], rg[1]); err != nil {
			t.Fatal(err)
		}
	}
	copy(buf[:192], bytes.Repeat([]byte{0x17}, 192))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// SetRange pushed 3 undo records; commit pushed 1 merged data range
	// plus the commit word.
	gotPushes := r.net.Stats().Pushes - before.Pushes
	if want := uint64(3 + 1 + 1); gotPushes != want {
		t.Errorf("pushes = %d, want %d (coalesced commit)", gotPushes, want)
	}
	seg, err := r.servers[0].Connect("perseas.db.accounts")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.servers[0].Read(seg.ID, 0, 192)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf[:192]) {
		t.Error("mirror diverged from local after coalesced commit")
	}

	// Abort with adjacent ranges restores the before-image exactly.
	tx2, err := r.lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.SetRange(db, 0, 64); err != nil {
		t.Fatal(err)
	}
	if err := tx2.SetRange(db, 64, 64); err != nil {
		t.Fatal(err)
	}
	copy(buf[:128], bytes.Repeat([]byte{0x99}, 128))
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:128], bytes.Repeat([]byte{0x17}, 128)) {
		t.Error("abort did not restore the before-image locally")
	}
	got, err = r.servers[0].Read(seg.ID, 0, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf[:128]) {
		t.Error("mirror diverged from local after abort")
	}
}
