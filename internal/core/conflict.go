package core

import (
	"fmt"

	"github.com/ics-forth/perseas/internal/engine"
)

// conflictTable tracks which byte ranges of which databases are held by
// in-flight transactions. The paper's in-place update discipline requires
// that a declared range have exactly one writer until its transaction
// finishes: an overlapping SetRange from a second transaction would read
// (into its before-image) or overwrite bytes whose fate the first
// transaction has not decided yet. Overlaps within one transaction stay
// legal, as in the sequential library.
//
// All methods are called with the owning Library's mu held.
type conflictTable struct {
	byDB map[uint32][]rangeClaim
}

// rangeClaim is one held half-open range [lo,hi) of a database.
type rangeClaim struct {
	lo, hi uint64
	tx     uint64
}

func newConflictTable() conflictTable {
	return conflictTable{byDB: make(map[uint32][]rangeClaim)}
}

// claim records [off,off+n) of database dbID as held by tx, or returns
// engine.ErrConflict when another live transaction already holds an
// overlapping range.
func (c *conflictTable) claim(dbID uint32, off, n, tx uint64) error {
	hi := off + n
	for _, cl := range c.byDB[dbID] {
		if cl.tx != tx && cl.lo < hi && off < cl.hi {
			return fmt.Errorf("%w: db %d range [%d,+%d) held by tx %d",
				engine.ErrConflict, dbID, off, n, cl.tx)
		}
	}
	c.byDB[dbID] = append(c.byDB[dbID], rangeClaim{lo: off, hi: hi, tx: tx})
	return nil
}

// overlaps reports whether any live claim on dbID intersects
// [off,off+n), regardless of owner. The shard-migration snapshot uses it
// to skip chunks with an undecided writer.
func (c *conflictTable) overlaps(dbID uint32, off, n uint64) bool {
	hi := off + n
	for _, cl := range c.byDB[dbID] {
		if cl.lo < hi && off < cl.hi {
			return true
		}
	}
	return false
}

// releaseAll drops every claim held by tx (called when the transaction
// commits, aborts or is wiped out by a crash).
func (c *conflictTable) releaseAll(tx uint64) {
	for dbID, claims := range c.byDB {
		kept := claims[:0]
		for _, cl := range claims {
			if cl.tx != tx {
				kept = append(kept, cl)
			}
		}
		// The emptied slice stays in the table: its retained capacity
		// is what keeps the next transaction's claims allocation-free.
		// releaseDB removes the entry when the database is dropped.
		c.byDB[dbID] = kept
	}
}

// releaseDB drops every claim on one database (used when the database is
// dropped; callers already ensure no transaction is open).
func (c *conflictTable) releaseDB(dbID uint32) {
	delete(c.byDB, dbID)
}
