package core

import "github.com/ics-forth/perseas/internal/engine"

var _ engine.Engine = (*Library)(nil)
