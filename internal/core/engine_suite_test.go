package core_test

import (
	"testing"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/enginetest"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

// newPerseas builds a PERSEAS engine over two in-process mirrors.
func newPerseas(t *testing.T) engine.Engine {
	t.Helper()
	clock := simclock.NewSim()
	var mirrors []netram.Mirror
	for i := 0; i < 2; i++ {
		srv := memserver.New()
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
		if err != nil {
			t.Fatal(err)
		}
		mirrors = append(mirrors, netram.Mirror{Name: srv.Label(), T: tr})
	}
	net, err := netram.NewClient(mirrors)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := core.Init(net, clock)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestPerseasEngineConformance(t *testing.T) {
	enginetest.Run(t, "perseas", newPerseas, enginetest.Caps{
		// The primary's crash kind is irrelevant: durable state lives
		// in the remote mirrors, an independent failure domain.
		SurvivesKind:    func(fault.CrashKind) bool { return true },
		DurableOnCommit: true,
	})
}

// newPerseasHW builds PERSEAS over a hardware-mirroring NIC group
// (Telegraphos-style): one transport, two nodes behind it.
func newPerseasHW(t *testing.T) engine.Engine {
	t.Helper()
	clock := simclock.NewSim()
	nodes := []*memserver.Server{memserver.New(), memserver.New()}
	hw, err := transport.NewHWMirror(nodes, sci.DefaultParams(), clock)
	if err != nil {
		t.Fatal(err)
	}
	net, err := netram.NewClient([]netram.Mirror{{Name: "hw-group", T: hw}})
	if err != nil {
		t.Fatal(err)
	}
	lib, err := core.Init(net, clock)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestPerseasHWMirrorConformance(t *testing.T) {
	enginetest.Run(t, "perseas-hw", newPerseasHW, enginetest.Caps{
		SurvivesKind:    func(fault.CrashKind) bool { return true },
		DurableOnCommit: true,
	})
}
