package core_test

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

// startTCPMirror runs a memory server on loopback and returns its
// address.
func startTCPMirror(t *testing.T, label string) string {
	t.Helper()
	srv := memserver.New(memserver.WithLabel(label))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = transport.Serve(l, srv)
	}()
	t.Cleanup(func() {
		l.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("mirror did not shut down")
		}
	})
	return l.Addr().String()
}

// dialRAM connects a fresh network-RAM client to the given mirrors.
func dialRAM(t *testing.T, addrs ...string) *netram.Client {
	t.Helper()
	var mirrors []netram.Mirror
	for _, addr := range addrs {
		tr, err := transport.DialTCP(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		mirrors = append(mirrors, netram.Mirror{Name: addr, T: tr})
	}
	ram, err := netram.NewClient(mirrors)
	if err != nil {
		t.Fatal(err)
	}
	return ram
}

// TestFullStackOverTCP drives the complete PERSEAS stack over real
// sockets: transactions, abort, crash of the primary process, and
// take-over by a second client process with fresh connections.
func TestFullStackOverTCP(t *testing.T) {
	addrA := startTCPMirror(t, "mirrorA")
	addrB := startTCPMirror(t, "mirrorB")

	// --- The primary node's lifetime. ---
	ram := dialRAM(t, addrA, addrB)
	lib, err := core.Init(ram, simclock.NewWall())
	if err != nil {
		t.Fatal(err)
	}
	db, err := lib.CreateDB("counter", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.InitDB(db); err != nil {
		t.Fatal(err)
	}

	// A few committed increments.
	for i := 0; i < 10; i++ {
		tx, err := lib.BeginTx()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.SetRange(db, 0, 8); err != nil {
			t.Fatal(err)
		}
		binary.BigEndian.PutUint64(db.Bytes(), binary.BigEndian.Uint64(db.Bytes())+1)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// An aborted one.
	tx, err := lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 8); err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint64(db.Bytes(), 999)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	// An in-flight one, cut short by the crash.
	inflight, err := lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := inflight.SetRange(db, 0, 8); err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint64(db.Bytes(), 777)
	if err := lib.Crash(fault.CrashPower); err != nil {
		t.Fatal(err)
	}

	// --- A different workstation takes over with its own connections. ---
	ram2 := dialRAM(t, addrA, addrB)
	takeover, err := core.Attach(ram2, simclock.NewWall())
	if err != nil {
		t.Fatalf("attach over TCP: %v", err)
	}
	re, err := takeover.OpenDB("counter")
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(re.Bytes()); got != 10 {
		t.Errorf("recovered counter = %d, want 10 (commits survive; abort and in-flight roll back)", got)
	}

	// The take-over node continues committing.
	for i := 0; i < 5; i++ {
		tx, err := takeover.BeginTx()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.SetRange(re, 0, 8); err != nil {
			t.Fatal(err)
		}
		binary.BigEndian.PutUint64(re.Bytes(), binary.BigEndian.Uint64(re.Bytes())+1)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := binary.BigEndian.Uint64(re.Bytes()); got != 15 {
		t.Errorf("counter after takeover = %d, want 15", got)
	}
}

// TestTCPMirrorDiesMidWorkload kills one mirror's listener while commits
// are flowing: the client must degrade that mirror and keep committing
// through the survivor, and a fresh client must still recover the full
// state from the survivor.
func TestTCPMirrorDiesMidWorkload(t *testing.T) {
	srvA := memserver.New(memserver.WithLabel("victim"))
	lA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = transport.Serve(lA, srvA) }()
	addrB := startTCPMirror(t, "survivor")

	ram := dialRAM(t, lA.Addr().String(), addrB)
	lib, err := core.Init(ram, simclock.NewWall())
	if err != nil {
		t.Fatal(err)
	}
	db, err := lib.CreateDB("counter", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.InitDB(db); err != nil {
		t.Fatal(err)
	}

	bump := func() error {
		return lib.Update(func(tx *core.Tx) error {
			buf, err := tx.Writable(db, 0, 8)
			if err != nil {
				return err
			}
			binary.BigEndian.PutUint64(buf, binary.BigEndian.Uint64(buf)+1)
			return nil
		})
	}
	for i := 0; i < 5; i++ {
		if err := bump(); err != nil {
			t.Fatal(err)
		}
	}

	// The victim node vanishes: listener down, connections reset.
	lA.Close()
	srvA.Crash()

	// Commits must keep flowing (the first one may pay the detection).
	for i := 0; i < 5; i++ {
		if err := bump(); err != nil {
			t.Fatalf("commit %d after mirror death: %v", i, err)
		}
	}
	if got := ram.Live(); got != 1 {
		t.Errorf("Live = %d, want 1", got)
	}
	if got := binary.BigEndian.Uint64(db.Bytes()); got != 10 {
		t.Errorf("counter = %d, want 10", got)
	}

	// Take-over through the survivor alone.
	ram2 := dialRAM(t, addrB)
	takeover, err := core.Attach(ram2, simclock.NewWall())
	if err != nil {
		t.Fatal(err)
	}
	re, err := takeover.OpenDB("counter")
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint64(re.Bytes()); got != 10 {
		t.Errorf("recovered counter = %d, want 10", got)
	}
}

// TestTCPCommitDurableOnBothMirrors checks that a committed range is
// byte-identical on every mirror, read back through fresh connections.
func TestTCPCommitDurableOnBothMirrors(t *testing.T) {
	addrA := startTCPMirror(t, "mirrorA")
	addrB := startTCPMirror(t, "mirrorB")
	ram := dialRAM(t, addrA, addrB)
	lib, err := core.Init(ram, simclock.NewWall())
	if err != nil {
		t.Fatal(err)
	}
	db, err := lib.CreateDB("db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.InitDB(db); err != nil {
		t.Fatal(err)
	}
	tx, err := lib.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 1000, 11); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[1000:1011], "over-the-net")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	for _, addr := range []string{addrA, addrB} {
		cli, err := transport.DialTCP(addr)
		if err != nil {
			t.Fatal(err)
		}
		h, err := cli.Connect("perseas.db.db")
		if err != nil {
			t.Fatalf("%s: %v", addr, err)
		}
		got, err := cli.Read(h.ID, 1000, 11)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "over-the-ne" {
			t.Errorf("mirror %s holds %q", addr, got)
		}
		cli.Close()
	}
}
