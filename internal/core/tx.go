package core

import (
	"encoding/binary"
	"fmt"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/netram"
)

// Begin implements engine.Engine: the paper's PERSEAS_begin_transaction.
// It is a purely local operation — transaction ids are only published at
// commit time.
func (l *Library) Begin() error {
	if err := l.checkAlive(); err != nil {
		return err
	}
	if l.txActive {
		return engine.ErrInTransaction
	}
	l.lastTxID++
	l.txID = l.lastTxID
	l.txActive = true
	l.cursor = 0
	l.ranges = l.ranges[:0]
	l.pushed = l.pushed[:0]
	l.stats.Begun++
	return nil
}

// SetRange implements engine.Engine: the paper's PERSEAS_set_range. It
// logs the declared range's original image to the local undo log (one
// local memory copy) and propagates that log record to the remote undo
// log (one remote write), after which the application may update the
// range in place.
func (l *Library) SetRange(db engine.DB, offset, length uint64) error {
	if err := l.checkAlive(); err != nil {
		return err
	}
	if !l.txActive {
		return engine.ErrNoTransaction
	}
	d, err := l.own(db)
	if err != nil {
		return err
	}
	if offset > d.Size() || length > d.Size()-offset {
		return fmt.Errorf("%w: [%d,+%d) in %d-byte database %q",
			ErrBadRange, offset, length, d.Size(), d.name)
	}
	need := recordSize(length)
	if l.cursor+need > l.undo.Size() {
		return fmt.Errorf("%w: need %d bytes, %d free",
			ErrUndoLogFull, need, l.undo.Size()-l.cursor)
	}

	// Step 1 (paper Fig. 3): before-image into the local undo log.
	advance := writeRecord(l.undo.Local, l.cursor, l.txID, d.id, offset,
		d.region.Local[offset:offset+length])
	l.clock.Advance(l.mem.CopyCost(int(recordHeaderSize + length)))

	// Step 2: the log record propagates to the remote undo log.
	if !l.noRemoteUndo {
		if err := l.net.Push(l.undo, l.cursor, recordHeaderSize+length); err != nil {
			return fmt.Errorf("perseas: push undo record: %w", err)
		}
	}

	l.cursor += advance
	l.ranges = append(l.ranges, pending{db: d, offset: offset, length: length})
	l.stats.SetRanges++
	l.stats.BytesLogged += length
	return nil
}

// Commit implements engine.Engine: the paper's
// PERSEAS_commit_transaction. The modified portions of the database are
// copied to the equivalent portions in the remote nodes' memories
// (step 3 of Fig. 3); the transaction then commits atomically with one
// small remote write of the commit word, which also discards the remote
// undo log (records up to the committed id are ignored by recovery).
func (l *Library) Commit() error {
	if err := l.checkAlive(); err != nil {
		return err
	}
	if !l.txActive {
		return engine.ErrNoTransaction
	}
	// Ranges are grouped per database so each group travels in one
	// batched exchange per mirror — one TCP round trip per table
	// instead of one per range. The SCI model prices the batch exactly
	// like individual stores, so the reproduced figures are unaffected.
	type group struct {
		db      *Database
		ranges  []netram.Range
		members []pending
	}
	var groups []group
	index := make(map[*Database]int)
	for _, r := range l.ranges {
		gi, ok := index[r.db]
		if !ok {
			gi = len(groups)
			index[r.db] = gi
			groups = append(groups, group{db: r.db})
		}
		groups[gi].ranges = append(groups[gi].ranges, netram.Range{Offset: r.offset, Length: r.length})
		groups[gi].members = append(groups[gi].members, r)
	}
	for _, g := range groups {
		if err := l.net.PushMany(g.db.region, g.ranges); err != nil {
			return fmt.Errorf("perseas: push database ranges: %w", err)
		}
		// Remember what reached the mirrors so Abort can repair them.
		l.pushed = append(l.pushed, g.members...)
	}

	// The atomic commit point: publish the transaction id.
	binary.BigEndian.PutUint64(l.meta.Local[metaCommittedOff:], l.txID)
	if err := l.net.Push(l.meta, metaCommittedOff, 8); err != nil {
		// Roll the local commit word back; the transaction stays
		// uncommitted and can be retried or aborted.
		binary.BigEndian.PutUint64(l.meta.Local[metaCommittedOff:], l.committed)
		return fmt.Errorf("perseas: publish commit word: %w", err)
	}

	l.committed = l.txID
	l.txActive = false
	l.ranges = l.ranges[:0]
	l.cursor = 0
	l.pushed = l.pushed[:0]
	l.stats.Committed++
	return nil
}

// Abort implements engine.Engine: the paper's
// PERSEAS_abort_transaction. Declared ranges are restored from the local
// undo log with plain local memory copies, newest record first. If a
// failed Commit had already pushed some ranges to the mirrors, those
// ranges are re-pushed with their restored (pre-transaction) content so
// local and remote databases stay identical.
func (l *Library) Abort() error {
	if err := l.checkAlive(); err != nil {
		return err
	}
	if !l.txActive {
		return engine.ErrNoTransaction
	}

	// Walk the local undo log and restore before-images in reverse
	// order, so overlapping SetRange declarations unwind correctly.
	var recs []undoRecord
	var cursor uint64
	for cursor < l.cursor {
		rec, advance, ok := parseRecord(l.undo.Local, cursor)
		if !ok {
			return fmt.Errorf("perseas: corrupt local undo log at %d", cursor)
		}
		recs = append(recs, rec)
		cursor += advance
	}
	for i := len(recs) - 1; i >= 0; i-- {
		rec := recs[i]
		db, ok := l.byID[rec.dbID]
		if !ok {
			return fmt.Errorf("perseas: undo record for unknown database %d", rec.dbID)
		}
		l.mem.Copy(l.clock, db.region.Local[rec.offset:rec.offset+rec.length], rec.data)
	}

	// Repair mirrors touched by a partially executed Commit.
	for _, r := range l.pushed {
		if err := l.net.Push(r.db.region, r.offset, r.length); err != nil {
			return fmt.Errorf("perseas: repair mirror after failed commit: %w", err)
		}
	}

	l.txActive = false
	l.ranges = l.ranges[:0]
	l.cursor = 0
	l.pushed = l.pushed[:0]
	l.stats.Aborted++
	return nil
}
