package core

import (
	"encoding/binary"
	"fmt"
	"slices"
	"time"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/trace"
)

// Tx is one in-flight PERSEAS transaction. A handle belongs to the
// goroutine that began it; handles from different Begin calls run
// concurrently, each logging into its own undo slot and committing
// through its own commit word.
type Tx struct {
	l    *Library
	id   uint64
	slot *undoSlot
	// cursor is the write position in the slot's undo log. Only the
	// owning goroutine touches it.
	cursor uint64
	ranges []pending
	pushed []pending
	// scratch is the commit path's reusable netram.Range buffer (one
	// database's run at a time); capacity survives across the handle's
	// reuses.
	scratch []netram.Range
	// done marks the handle retired (committed, aborted, or wiped out by
	// a crash); guarded by l.mu.
	done bool
	// tt buffers this transaction's span tree (nil when tracing is off;
	// every method on the nil handle is a no-op). root is the open "tx"
	// span covering the handle's whole lifetime. Owned by the driving
	// goroutine, like cursor.
	tt   *trace.TxTrace
	root trace.SpanRef
	// prepared marks a transaction whose ranges Prepare already pushed;
	// CommitPrepared publishes its commit word. prevWord and prepStart
	// carry the rollback word and the start time across the two halves.
	// All three are owned by the driving goroutine.
	prepared  bool
	prevWord  uint64
	prepStart time.Duration
}

// ID returns the transaction id (published at commit time).
func (t *Tx) ID() uint64 { return t.id }

// TraceID returns the transaction's trace id, 0 when tracing is off.
// A serving layer uses it to stitch its own request spans onto this
// transaction's span tree (trace.Recorder.LinkedSpan).
func (t *Tx) TraceID() uint64 { return t.tt.Trace() }

// Begin implements engine.Engine: the paper's PERSEAS_begin_transaction,
// returning an explicit handle. It is a purely local operation on the
// warm path — transaction ids are only published at commit time — but
// the first transaction to raise the concurrency level allocates and
// mirrors a fresh undo slot.
func (l *Library) Begin() (engine.Tx, error) {
	return l.BeginTx()
}

// BeginTraced implements engine.TraceBeginner: Begin adopting a trace
// id propagated from another process, so this library's commit-path
// spans join the remote caller's span tree instead of starting one of
// their own. With traceID 0 (or tracing off) it is exactly Begin.
func (l *Library) BeginTraced(traceID, parentSpan uint64) (engine.Tx, error) {
	return l.BeginTxTraced(traceID, parentSpan)
}

// BeginTxTraced is BeginTraced returning the concrete handle type.
func (l *Library) BeginTxTraced(traceID, parentSpan uint64) (*Tx, error) {
	return l.beginTx(traceID, parentSpan)
}

// BeginTx is Begin returning the concrete handle type, for callers that
// want the PERSEAS-specific helpers (Write, Writable, Read).
func (l *Library) BeginTx() (*Tx, error) {
	return l.beginTx(0, 0)
}

func (l *Library) beginTx(traceID, parentSpan uint64) (*Tx, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkAliveLocked(); err != nil {
		return nil, err
	}
	slot, err := l.acquireSlotLocked()
	if err != nil {
		return nil, err
	}
	l.lastTxID++
	t := slot.tx
	if t == nil {
		t = &Tx{}
		slot.tx = t
	}
	// Reset the recycled handle in place; ranges/pushed/scratch keep
	// their capacity, which is what makes the steady-state commit path
	// allocation-free.
	t.l, t.id, t.slot = l, l.lastTxID, slot
	t.cursor = 0
	t.ranges = t.ranges[:0]
	t.pushed = t.pushed[:0]
	t.done = false
	t.prepared = false
	slot.busy = true
	l.txs[t] = struct{}{}
	l.stats.Begun++
	if traceID != 0 {
		t.tt = l.tracer.TxAdopt(traceID, parentSpan)
	} else {
		t.tt = l.tracer.Tx()
	}
	t.root = t.tt.Start(trace.LayerEngine, "tx")
	return t, nil
}

// finishLocked retires a transaction handle: its conflict claims are
// released and its undo slot becomes reusable. Caller holds l.mu.
func (l *Library) finishLocked(t *Tx) {
	t.done = true
	t.slot.busy = false
	// Snapshot the catch-up frontier: the slot may not host a new
	// transaction until every push this one enqueued has landed on
	// every mirror (no-op under all-ack, where the Fence zero value is
	// already Done). See undoSlot.fence.
	t.slot.fence = l.net.Fence()
	l.locks.releaseAll(t.id)
	delete(l.txs, t)
}

// SetRange implements engine.Tx: the paper's PERSEAS_set_range. It logs
// the declared range's original image to the transaction's local undo
// slot (one local memory copy) and propagates that log record to the
// slot's remote mirror (one remote write), after which the application
// may update the range in place. A range held by another in-flight
// transaction fails with engine.ErrConflict.
func (t *Tx) SetRange(db engine.DB, offset, length uint64) error {
	l := t.l
	l.mu.Lock()
	if err := l.checkAliveLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	if t.done {
		l.mu.Unlock()
		return engine.ErrNoTransaction
	}
	d, err := l.ownLocked(db)
	if err != nil {
		l.mu.Unlock()
		return err
	}
	if offset > d.Size() || length > d.Size()-offset {
		l.mu.Unlock()
		return fmt.Errorf("%w: [%d,+%d) in %d-byte database %q",
			ErrBadRange, offset, length, d.Size(), d.name)
	}
	need := recordSize(length)
	if t.cursor+need > t.slot.region.Size() {
		l.mu.Unlock()
		return fmt.Errorf("%w: need %d bytes, %d free",
			ErrUndoLogFull, need, t.slot.region.Size()-t.cursor)
	}
	if err := l.locks.claim(d.id, offset, length, t.id); err != nil {
		l.stats.Conflicts++
		l.mu.Unlock()
		t.tt.Event(trace.LayerEngine, "conflict", uint64(d.id))
		return err
	}
	l.mu.Unlock()

	// From here the range belongs to this transaction: the copies and
	// pushes below cannot race another transaction's writes, so they run
	// without the library lock.
	sr := t.tt.Start(trace.LayerEngine, "set_range")

	// Step 1 (paper Fig. 3): before-image into the local undo log.
	phase := l.clock.Now()
	recOff := t.cursor
	cp := t.tt.Start(trace.LayerCore, "local_undo_copy")
	advance := writeRecord(t.slot.region.Local, recOff, t.id, d.id, offset,
		d.region.Local[offset:offset+length])
	l.clock.Advance(l.mem.CopyCost(int(recordHeaderSize + length)))
	cp.EndN(recordHeaderSize + length)
	l.metrics.LocalCopy.ObserveDuration(l.clock.Now() - phase)

	// The record is consumed — cursor and range list advance before the
	// remote push, not after. A failing Push can still reach a subset
	// of the mirrors; if the cursor did not move, the next SetRange
	// would overwrite this half-pushed record in place and the reached
	// mirror's undo log would silently diverge from the local one.
	// Advancing regardless of the push outcome keeps the log
	// append-only everywhere and lets Abort unwind the claim normally.
	t.cursor += advance
	t.ranges = append(t.ranges, pending{db: d, offset: offset, length: length})

	// Step 2: the log record propagates to the remote undo log. On
	// failure the claim stays held until the caller aborts, which
	// releases every claim of this transaction at once.
	if !l.noRemoteUndo {
		phase = l.clock.Now()
		up := t.tt.Start(trace.LayerCore, "undo_push")
		if err := l.net.PushTraced(t.slot.region, recOff, recordHeaderSize+length, t.tt); err != nil {
			up.End()
			sr.End()
			return fmt.Errorf("perseas: push undo record: %w", err)
		}
		up.EndN(recordHeaderSize + length)
		l.metrics.UndoPush.ObserveDuration(l.clock.Now() - phase)
	}
	sr.EndN(length)

	l.mu.Lock()
	l.stats.SetRanges++
	l.stats.BytesLogged += length
	l.mu.Unlock()
	return nil
}

// Commit implements engine.Tx: the paper's PERSEAS_commit_transaction.
// The modified portions of the database are copied to the equivalent
// portions in the remote nodes' memories (step 3 of Fig. 3); the
// transaction then commits atomically with one small remote write of its
// slot's commit word, which also discards that slot's remote undo log
// (records up to the committed id are ignored by recovery).
func (t *Tx) Commit() error {
	l := t.l
	l.mu.Lock()
	if err := l.checkAliveLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	if t.done {
		l.mu.Unlock()
		return engine.ErrNoTransaction
	}
	prevWord := t.slot.committed
	l.mu.Unlock()

	merged := t.mergeRanges()
	cm := t.tt.Start(trace.LayerEngine, "commit")
	total := l.clock.Now()
	if err := t.pushRanges(cm, merged, false); err != nil {
		return err
	}
	if err := t.publishWord(cm, prevWord); err != nil {
		return err
	}
	l.metrics.CommitTotal.ObserveDuration(l.clock.Now() - total)
	return t.retireCommitted()
}

// Prepare runs the first half of the two-phase form of Commit the shard
// router uses for cross-shard transactions: every modified range is
// pushed to this instance's mirrors (commit step 3), but the commit word
// stays unpublished and the transaction stays open with its claims held.
// A prepared transaction either finishes with CommitPrepared or rolls
// back with Abort. If the node dies in between, the prepared state is
// indistinguishable from a crash in the middle of an ordinary Commit, so
// plain recovery rolls it back — unless a coordinator decision record
// says otherwise (RecoverWithDecisions).
func (t *Tx) Prepare() error {
	l := t.l
	l.mu.Lock()
	if err := l.checkAliveLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	if t.done {
		l.mu.Unlock()
		return engine.ErrNoTransaction
	}
	prevWord := t.slot.committed
	l.mu.Unlock()

	merged := t.mergeRanges()
	pp := t.tt.Start(trace.LayerEngine, "prepare")
	t.prepStart = l.clock.Now()
	if err := t.pushRanges(pp, merged, true); err != nil {
		return err
	}
	pp.EndN(uint64(len(merged)))
	t.prevWord = prevWord
	t.prepared = true
	return nil
}

// CommitPrepared publishes the commit word of a transaction Prepare left
// in the prepared state — the per-shard completion half of a cross-shard
// commit. The word push is the same atomic commit point an ordinary
// Commit uses; once it lands, this shard's part of the transaction
// survives any crash. A failed push leaves the transaction prepared (the
// local word rolls back), so a coordinator holding a durable decision
// can re-drive the idempotent push instead of leaving the transaction —
// and its claims and undo slot — in doubt until the next crash.
func (t *Tx) CommitPrepared() error {
	l := t.l
	if !t.prepared {
		return fmt.Errorf("perseas: CommitPrepared on an unprepared transaction")
	}
	cm := t.tt.Start(trace.LayerEngine, "commit_prepared")
	if err := t.publishWord(cm, t.prevWord); err != nil {
		return err
	}
	t.prepared = false
	l.metrics.CommitTotal.ObserveDuration(l.clock.Now() - t.prepStart)
	return t.retireCommitted()
}

// Slot returns the undo-slot index this transaction logs into. A
// cross-shard coordinator persists (shard, slot, id) triples in its
// decision record so recovery can finish a decided commit slot by slot.
func (t *Tx) Slot() int { return t.slot.idx }

// mergeRanges orders (and optionally coalesces) the pending ranges for
// the commit-path push.
func (t *Tx) mergeRanges() []pending {
	l := t.l
	// Sort the pending ranges by (database, offset): sorting groups
	// each database's ranges contiguously, so each database travels in
	// one batched exchange per mirror (one TCP round trip per table
	// instead of one per range), and primes the optional store-gather
	// merge below. Push order across databases is commutative on the
	// SCI model (virtual time is a sum of per-write costs), so
	// reordering leaves reproduced figures untouched. The handle's own
	// slices back everything; a warm commit allocates nothing.
	slices.SortFunc(t.ranges, func(a, b pending) int {
		if a.db != b.db {
			if a.db.id < b.db.id {
				return -1
			}
			return 1
		}
		switch {
		case a.offset < b.offset:
			return -1
		case a.offset > b.offset:
			return 1
		default:
			return 0
		}
	})
	merged := t.ranges
	if l.coalesce {
		// Store-gather: collapse adjacent/overlapping ranges of the
		// same database into one wire range, the way the SCI adapter's
		// store-gathering collapses back-to-back stores into full
		// 64-byte packets. In place on the sorted slice.
		merged = t.ranges[:0]
		for _, r := range t.ranges {
			if n := len(merged); n > 0 {
				last := &merged[n-1]
				if last.db == r.db && r.offset <= last.offset+last.length {
					if end := r.offset + r.length; end > last.offset+last.length {
						last.length = end - last.offset
					}
					continue
				}
			}
			merged = append(merged, r)
		}
		t.ranges = merged
	}
	return merged
}

// pushRanges is commit step 3 (paper Fig. 3): the modified portions of
// each database travel to its mirrors, one batched exchange per database
// per mirror. parent is the enclosing "commit" or "prepare" span; it is
// closed on failure so the trace tree stays balanced. allAck forces the
// full-fanout join on quorum clients — Prepare needs it, because a
// coordinator decision makes the prepared data durable without a commit
// word and recovery then has no word-max mirror guaranteed to hold the
// data; Commit's word push carries that guarantee itself, so the fast
// quorum join stays safe there.
func (t *Tx) pushRanges(parent trace.SpanRef, merged []pending, allAck bool) error {
	l := t.l
	phase := l.clock.Now()
	rp := t.tt.Start(trace.LayerCore, "range_push")
	for i := 0; i < len(merged); {
		db := merged[i].db
		j := i
		scratch := t.scratch[:0]
		for ; j < len(merged) && merged[j].db == db; j++ {
			scratch = append(scratch, netram.Range{Offset: merged[j].offset, Length: merged[j].length})
		}
		t.scratch = scratch
		// Record the run as pushed BEFORE the attempt: PushMany can
		// fail after reaching a subset of the mirrors, and a range that
		// reached even one mirror must be re-pushed by Abort or that
		// mirror's database silently diverges from local.
		t.pushed = append(t.pushed, merged[i:j]...)
		push := l.net.PushManyTraced
		if allAck {
			push = l.net.PushManyAckedTraced
		}
		if err := push(db.region, scratch, t.tt); err != nil {
			rp.End()
			parent.End()
			return fmt.Errorf("perseas: push database ranges: %w", err)
		}
		i = j
	}
	rp.EndN(uint64(len(merged)))
	l.metrics.RangePush.ObserveDuration(l.clock.Now() - phase)
	return nil
}

// publishWord is the atomic commit point: publish the transaction id in
// this slot's commit word. Commit words of different slots are disjoint
// bytes of the metadata region, so concurrent committers share the
// read lock; only a directory rewrite (which pushes the whole region)
// excludes them. parent is the enclosing "commit" or "commit_prepared"
// span; publishWord closes it on every path.
func (t *Tx) publishWord(parent trace.SpanRef, prevWord uint64) error {
	l := t.l
	l.metaMu.RLock()
	meta := l.meta
	if meta == nil {
		// A simulated crash raced the commit; recovery decides the
		// transaction's fate from what reached the mirrors.
		l.metaMu.RUnlock()
		parent.End()
		return engine.ErrCrashed
	}
	phase := l.clock.Now()
	wp := t.tt.Start(trace.LayerCore, "word_push")
	binary.BigEndian.PutUint64(meta.Local[t.slot.wordOff:], t.id)
	if err := l.net.PushTraced(meta, t.slot.wordOff, 8, t.tt); err != nil {
		// Roll the local commit word back; the transaction stays
		// uncommitted and can be retried or aborted.
		binary.BigEndian.PutUint64(meta.Local[t.slot.wordOff:], prevWord)
		l.metaMu.RUnlock()
		wp.End()
		parent.End()
		return fmt.Errorf("perseas: publish commit word: %w", err)
	}
	l.metaMu.RUnlock()
	wp.EndN(8)
	parent.End()
	l.metrics.WordPush.ObserveDuration(l.clock.Now() - phase)
	return nil
}

// retireCommitted finalises a transaction whose commit word landed:
// claims release, the slot frees, and the trace tree closes.
func (t *Tx) retireCommitted() error {
	l := t.l
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		// A simulated crash raced the final push; the handle was already
		// retired and whether the commit word made it out is exactly
		// what recovery will decide.
		return engine.ErrCrashed
	}
	if t.done {
		return engine.ErrNoTransaction
	}
	t.slot.committed = t.id
	if t.id > l.committed {
		l.committed = t.id
	}
	l.finishLocked(t)
	l.stats.Committed++
	t.root.EndN(t.id)
	t.tt.Finish()
	t.tt = nil
	return nil
}

// Abort implements engine.Tx: the paper's PERSEAS_abort_transaction.
// Declared ranges are restored from the transaction's local undo slot
// with plain local memory copies, newest record first. If a failed
// Commit had already pushed some ranges to the mirrors, those ranges are
// re-pushed with their restored (pre-transaction) content so local and
// remote databases stay identical.
func (t *Tx) Abort() error {
	l := t.l
	l.mu.Lock()
	if err := l.checkAliveLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	if t.done {
		l.mu.Unlock()
		return engine.ErrNoTransaction
	}
	l.mu.Unlock()
	ab := t.tt.Start(trace.LayerEngine, "abort")

	// Every database this transaction touched is reachable from its own
	// pending ranges — no shared lookup needed while restoring.
	owned := make(map[uint32]*Database, len(t.ranges))
	for _, r := range t.ranges {
		owned[r.db.id] = r.db
	}

	// Walk the slot's local undo log and restore before-images in
	// reverse order, so overlapping SetRange declarations unwind
	// correctly.
	var recs []undoRecord
	var cursor uint64
	for cursor < t.cursor {
		rec, advance, ok := parseRecord(t.slot.region.Local, cursor)
		if !ok {
			return fmt.Errorf("perseas: corrupt local undo log at %d", cursor)
		}
		recs = append(recs, rec)
		cursor += advance
	}
	for i := len(recs) - 1; i >= 0; i-- {
		rec := recs[i]
		db, ok := owned[rec.dbID]
		if !ok {
			return fmt.Errorf("perseas: undo record for unknown database %d", rec.dbID)
		}
		l.mem.Copy(l.clock, db.region.Local[rec.offset:rec.offset+rec.length], rec.data)
	}

	// Repair mirrors touched by a partially executed Commit. t.pushed
	// includes groups whose PushMany failed partway — a range that
	// reached even one mirror needs its restored content re-pushed.
	for _, r := range t.pushed {
		if err := l.net.PushTraced(r.db.region, r.offset, r.length, t.tt); err != nil {
			ab.End()
			return fmt.Errorf("perseas: repair mirror after failed commit: %w", err)
		}
		l.metrics.Repairs.Inc()
	}
	ab.End()

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return engine.ErrCrashed
	}
	if t.done {
		return engine.ErrNoTransaction
	}
	l.finishLocked(t)
	l.stats.Aborted++
	t.root.End()
	t.tt.Finish()
	t.tt = nil
	return nil
}
