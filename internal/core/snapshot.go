package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/ics-forth/perseas/internal/engine"
)

// Snapshot format. The paper positions PERSEAS as a high-speed front-end
// that complements persistent stores; snapshots are the hand-off point: a
// consistent image of every database that can be archived on any durable
// medium, guarding against the one failure mirroring cannot absorb —
// all mirror nodes lost in the same interval.
//
//	[0:8)  magic "PERSNAP\x01"
//	[8:16) committed transaction id at capture time
//	[16:20) database count
//	then per database:
//	  [0:2)  name length  [2:..) name
//	  [..+8) size          [..+4) CRC-32C of the content
//	  [..]   content bytes
const snapshotMagic = uint64(0x504552534e415001)

// ErrBadSnapshot is returned when a snapshot stream fails validation.
var ErrBadSnapshot = errors.New("perseas: corrupt or truncated snapshot")

// WriteSnapshot writes a consistent image of every database to w. It
// must be called between transactions, when the local copies hold
// exactly the committed state.
func (l *Library) WriteSnapshot(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.checkAliveLocked(); err != nil {
		return err
	}
	if len(l.txs) > 0 {
		return fmt.Errorf("perseas: snapshot: %w", engine.ErrInTransaction)
	}
	var hdr [20]byte
	binary.BigEndian.PutUint64(hdr[0:], snapshotMagic)
	binary.BigEndian.PutUint64(hdr[8:], l.committed)
	binary.BigEndian.PutUint32(hdr[16:], uint32(len(l.byID)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("perseas: write snapshot header: %w", err)
	}
	for id := uint32(1); id < l.nextDBID; id++ {
		db, ok := l.byID[id]
		if !ok {
			continue
		}
		name := []byte(db.name)
		entry := make([]byte, 2+len(name)+8+4)
		binary.BigEndian.PutUint16(entry[0:], uint16(len(name)))
		copy(entry[2:], name)
		binary.BigEndian.PutUint64(entry[2+len(name):], db.Size())
		crc := crc32.Checksum(db.region.Local, crcTable)
		binary.BigEndian.PutUint32(entry[2+len(name)+8:], crc)
		if _, err := w.Write(entry); err != nil {
			return fmt.Errorf("perseas: write snapshot entry: %w", err)
		}
		if _, err := w.Write(db.region.Local); err != nil {
			return fmt.Errorf("perseas: write snapshot data: %w", err)
		}
	}
	return nil
}

// RestoreSnapshot loads an archived snapshot into this library, creating
// and mirroring every database it contains. The library must not already
// hold databases with the same names. The restored state becomes the
// committed state; the transaction-id counter advances past the
// snapshot's id so log records can never be confused across the restore.
func (l *Library) RestoreSnapshot(r io.Reader) error {
	l.mu.Lock()
	if err := l.checkAliveLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	if len(l.txs) > 0 {
		l.mu.Unlock()
		return fmt.Errorf("perseas: restore: %w", engine.ErrInTransaction)
	}
	l.mu.Unlock()
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("%w: header: %v", ErrBadSnapshot, err)
	}
	if binary.BigEndian.Uint64(hdr[0:]) != snapshotMagic {
		return fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	snapTx := binary.BigEndian.Uint64(hdr[8:])
	count := binary.BigEndian.Uint32(hdr[16:])

	for i := uint32(0); i < count; i++ {
		var lenBuf [2]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return fmt.Errorf("%w: entry %d: %v", ErrBadSnapshot, i, err)
		}
		nameLen := binary.BigEndian.Uint16(lenBuf[:])
		rest := make([]byte, int(nameLen)+12)
		if _, err := io.ReadFull(r, rest); err != nil {
			return fmt.Errorf("%w: entry %d: %v", ErrBadSnapshot, i, err)
		}
		name := string(rest[:nameLen])
		size := binary.BigEndian.Uint64(rest[nameLen:])
		wantCRC := binary.BigEndian.Uint32(rest[nameLen+8:])
		if size > 1<<40 {
			return fmt.Errorf("%w: entry %q claims %d bytes", ErrBadSnapshot, name, size)
		}
		content := make([]byte, size)
		if _, err := io.ReadFull(r, content); err != nil {
			return fmt.Errorf("%w: content of %q: %v", ErrBadSnapshot, name, err)
		}
		if crc32.Checksum(content, crcTable) != wantCRC {
			return fmt.Errorf("%w: checksum mismatch in %q", ErrBadSnapshot, name)
		}

		db, err := l.CreateDB(name, size)
		if err != nil {
			return fmt.Errorf("perseas: restore %q: %w", name, err)
		}
		copy(db.Bytes(), content)
		if err := l.InitDB(db); err != nil {
			return fmt.Errorf("perseas: mirror restored %q: %w", name, err)
		}
	}
	l.mu.Lock()
	if snapTx > l.lastTxID {
		l.lastTxID = snapTx
	}
	l.mu.Unlock()
	return nil
}
