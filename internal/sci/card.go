package sci

import (
	"fmt"
	"sync"
	"time"
)

// Card models one Dolphin PCI-SCI adapter issuing remote writes and reads.
// It is a pure timing/traffic model: it computes which SCI packets a store
// operation generates and how long the operation takes, but does not move
// bytes itself (the transport layer does that). A Card is safe for
// concurrent use; each operation is modelled as if it ran alone, which
// matches the single-writer use the paper's library makes of the card.
type Card struct {
	params Params

	mu    sync.Mutex
	stats Stats
}

// Stats aggregates the traffic a card has carried.
type Stats struct {
	// StoreOps and ReadOps count modelled operations.
	StoreOps uint64
	ReadOps  uint64
	// BytesStored and BytesRead count payload bytes.
	BytesStored uint64
	BytesRead   uint64
	// Packets64 and Packets16 count emitted SCI packets by kind.
	Packets64 uint64
	Packets16 uint64
	// Busy is the cumulative modelled latency of all operations.
	Busy time.Duration
}

// New returns a card using the given timing parameters.
func New(params Params) (*Card, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Card{params: params}, nil
}

// MustNew is New for parameter sets known to be valid; it panics
// otherwise. Intended for tests and package-internal defaults.
func MustNew(params Params) *Card {
	c, err := New(params)
	if err != nil {
		panic(err)
	}
	return c
}

// Params returns the card's timing parameters.
func (c *Card) Params() Params { return c.params }

// Stats returns a snapshot of the card's traffic counters.
func (c *Card) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the traffic counters.
func (c *Card) ResetStats() {
	c.mu.Lock()
	c.stats = Stats{}
	c.mu.Unlock()
}

// StoreResult describes one modelled remote-store operation.
type StoreResult struct {
	// Packets are the SCI packets the operation emitted, in order.
	Packets []Packet
	// Latency is the end-to-end one-way application latency.
	Latency time.Duration
}

// Store models a remote write of n bytes starting at remote address addr.
// It walks the address range word by word through the eight gather
// buffers: every 64-byte chunk that is completely covered drains as one
// full 64-byte packet the moment its last word is written, and chunks
// only partially covered drain at the end of the operation as one
// 16-byte packet per touched 16-byte slot.
func (c *Card) Store(addr uint64, n int) StoreResult {
	if n <= 0 {
		return StoreResult{}
	}
	end := addr + uint64(n)

	var packets []Packet
	words := 0

	// Walk 64-byte chunks of the range. Contiguous stores fill each
	// chunk's gather buffer in address order.
	for chunk := AlignDown(addr); chunk < end; chunk += BufferSize {
		lo := max64(chunk, addr)
		hi := min64(chunk+BufferSize, end)
		// The processor issues one bus word per 4 bytes, including
		// ragged edges (a sub-word store still occupies a bus word).
		firstWord := lo &^ (WordSize - 1)
		lastWord := (hi - 1) &^ (WordSize - 1)
		words += int((lastWord-firstWord)/WordSize) + 1

		buf := BufferID(chunk)
		if lo == chunk && hi == chunk+BufferSize {
			// Whole chunk gathered: the store of the buffer's last
			// word triggers an immediate full-packet flush.
			packets = append(packets, Packet{
				Kind: Packet64, Addr: chunk, Len: BufferSize, Buffer: buf,
			})
			continue
		}
		// Partially filled buffer: drained at operation end as one
		// 16-byte packet per touched 16-byte-aligned slot.
		for slot := lo &^ (SmallPacketSize - 1); slot < hi; slot += SmallPacketSize {
			slo := max64(slot, lo)
			shi := min64(slot+SmallPacketSize, hi)
			packets = append(packets, Packet{
				Kind: Packet16, Addr: slo, Len: int(shi - slo), Buffer: buf,
			})
		}
	}

	var n64, n16 int
	for _, p := range packets {
		if p.Kind == Packet64 {
			n64++
		} else {
			n16++
		}
	}
	lat := c.params.PacketBase + time.Duration(words)*c.params.PIOWordCost +
		c.params.packetCost(n64, n16)

	c.mu.Lock()
	c.stats.StoreOps++
	c.stats.BytesStored += uint64(n)
	for _, p := range packets {
		if p.Kind == Packet64 {
			c.stats.Packets64++
		} else {
			c.stats.Packets16++
		}
	}
	c.stats.Busy += lat
	c.mu.Unlock()

	return StoreResult{Packets: packets, Latency: lat}
}

// StoreLatency is Store without materialising the packet list; it is the
// fast path used by transports that only need timing.
func (c *Card) StoreLatency(addr uint64, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	end := addr + uint64(n)
	words := 0
	var n64, n16 int
	for chunk := AlignDown(addr); chunk < end; chunk += BufferSize {
		lo := max64(chunk, addr)
		hi := min64(chunk+BufferSize, end)
		firstWord := lo &^ (WordSize - 1)
		lastWord := (hi - 1) &^ (WordSize - 1)
		words += int((lastWord-firstWord)/WordSize) + 1
		if lo == chunk && hi == chunk+BufferSize {
			n64++
			continue
		}
		n16 += int((hi-1)/SmallPacketSize) - int(lo/SmallPacketSize) + 1
	}
	lat := c.params.PacketBase + time.Duration(words)*c.params.PIOWordCost +
		c.params.packetCost(n64, n16)

	c.mu.Lock()
	c.stats.StoreOps++
	c.stats.BytesStored += uint64(n)
	c.stats.Packets64 += uint64(n64)
	c.stats.Packets16 += uint64(n16)
	c.stats.Busy += lat
	c.mu.Unlock()
	return lat
}

// ReadLatency models a remote read of n bytes from remote address addr.
// SCI remote reads stall the issuing processor for the full round trip,
// so the model charges the store cost scaled by the read penalty.
func (c *Card) ReadLatency(addr uint64, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	base := c.storeShapeLatency(addr, n)
	lat := time.Duration(float64(base) * c.params.ReadPenalty)
	c.mu.Lock()
	c.stats.ReadOps++
	c.stats.BytesRead += uint64(n)
	c.stats.Busy += lat
	c.mu.Unlock()
	return lat
}

// storeShapeLatency computes store-shaped latency without touching stats.
func (c *Card) storeShapeLatency(addr uint64, n int) time.Duration {
	end := addr + uint64(n)
	words := 0
	var n64, n16 int
	for chunk := AlignDown(addr); chunk < end; chunk += BufferSize {
		lo := max64(chunk, addr)
		hi := min64(chunk+BufferSize, end)
		firstWord := lo &^ (WordSize - 1)
		lastWord := (hi - 1) &^ (WordSize - 1)
		words += int((lastWord-firstWord)/WordSize) + 1
		if lo == chunk && hi == chunk+BufferSize {
			n64++
			continue
		}
		n16 += int((hi-1)/SmallPacketSize) - int(lo/SmallPacketSize) + 1
	}
	return c.params.PacketBase + time.Duration(words)*c.params.PIOWordCost +
		c.params.packetCost(n64, n16)
}

// packetCost prices a packet mix: the first eight full packets pay the
// buffer-filling cost, further ones stream through the saturated
// eight-buffer pipeline at near-memory throughput.
func (p Params) packetCost(n64, n16 int) time.Duration {
	full := n64
	if full > NumWriteBuffers {
		full = NumWriteBuffers
	}
	streamed := n64 - full
	cost := time.Duration(full)*p.Packet64Cost +
		time.Duration(streamed)*p.Packet64Streamed
	if n16 > 0 {
		// The first small packet pays full price; the creation of the
		// following ones overlaps with it (buffer streaming).
		cost += p.Packet16Cost + time.Duration(n16-1)*p.Packet16Streamed
	}
	return cost
}

// String implements fmt.Stringer for diagnostics.
func (s Stats) String() string {
	return fmt.Sprintf("stores=%d reads=%d bytes=%d/%d pkts64=%d pkts16=%d busy=%v",
		s.StoreOps, s.ReadOps, s.BytesStored, s.BytesRead, s.Packets64, s.Packets16, s.Busy)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
