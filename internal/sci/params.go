// Package sci models the Dolphin PCI-SCI cluster adapter the paper's
// prototype ran on (Scalable Coherent Interface, ring topology).
//
// The model reproduces the mechanism the paper describes in Section 4:
//
//   - The card exposes eight internal 64-byte write buffers. Physical
//     memory is divided into 64-byte chunks aligned on 64-byte boundaries;
//     bits 0-5 of an address select the offset inside a buffer and bits
//     6-8 select which of the eight buffers the chunk maps to (Fig. 4).
//   - Stores to contiguous addresses are gathered in the buffers ("store
//     gathering") and each buffer transmits independently ("buffer
//     streaming"), amortising SCI packet overhead over many stores.
//   - A buffer whose last word (offset 60) is written flushes immediately
//     as one whole 64-byte SCI packet; buffers still partially filled at
//     the end of an operation drain as a set of 16-byte packets.
//
// Latency constants are calibrated to the paper's measurements: a 4-byte
// remote store completes end-to-end in 2.7 microseconds and a 200-byte
// store in roughly 17 microseconds, with whole 64-byte aligned regions
// enjoying the lowest per-byte cost for every size above 32 bytes
// (Fig. 5).
package sci

import (
	"errors"
	"fmt"
	"time"
)

// Architectural constants of the PCI-SCI card (Section 4, Fig. 4).
const (
	// BufferSize is the size in bytes of one internal gather buffer and
	// of a full SCI packet payload.
	BufferSize = 64
	// NumWriteBuffers is the number of internal buffers dedicated to
	// remote writes (half of the card's sixteen).
	NumWriteBuffers = 8
	// WordSize is the store granularity of the processor bus.
	WordSize = 4
	// SmallPacketSize is the payload of the short SCI packet used to
	// drain partially filled buffers.
	SmallPacketSize = 16
	// WordsPerBuffer is the number of 4-byte words in a gather buffer.
	WordsPerBuffer = BufferSize / WordSize
)

// Params holds the calibrated timing constants of the card model. All
// costs are one-way, end-to-end application-level latencies, matching how
// the paper reports its measurements.
type Params struct {
	// PIOWordCost is charged for every 4-byte word the processor pushes
	// over the PCI bus into a gather buffer.
	PIOWordCost time.Duration
	// PacketBase is the fixed cost of launching the first packet of an
	// operation: PIO setup plus SCI send/ack turnaround.
	PacketBase time.Duration
	// Packet64Cost is the marginal cost of one full 64-byte SCI packet
	// while the card's eight buffers are still filling.
	Packet64Cost time.Duration
	// Packet64Streamed is the marginal cost of a full packet once all
	// eight buffers stream in parallel (from the ninth packet of an
	// operation on): the pipeline is saturated and throughput
	// approaches the local memory subsystem, as the paper reports for
	// stores to contiguous remote addresses.
	Packet64Streamed time.Duration
	// Packet16Cost is the marginal cost of the first 16-byte SCI packet
	// of an operation.
	Packet16Cost time.Duration
	// Packet16Streamed is the marginal cost of further 16-byte packets
	// in the same operation: the paper observes that the overhead of
	// creating a second small packet overlaps with that of the first
	// thanks to buffer streaming.
	Packet16Streamed time.Duration
	// HopCost is the extra latency per intermediate ring hop between
	// the sender and the destination node.
	HopCost time.Duration
	// ReadPenalty multiplies the total cost of remote reads: SCI remote
	// reads stall the processor for the full round trip, so they are
	// substantially slower than posted writes.
	ReadPenalty float64
}

// DefaultParams returns constants calibrated against Fig. 5 of the paper:
// 2.7 us for a 4-byte store, ~3.4 us when a <=16-byte store straddles a
// 16-byte alignment boundary, ~5.6 us for one whole 64-byte buffer, and
// ~16.4 us for a 200-byte store at word offset 0.
func DefaultParams() Params {
	return Params{
		PIOWordCost:      20 * time.Nanosecond,
		PacketBase:       1080 * time.Nanosecond,
		Packet64Cost:     3800 * time.Nanosecond,
		Packet64Streamed: 750 * time.Nanosecond,
		Packet16Cost:     1600 * time.Nanosecond,
		Packet16Streamed: 1200 * time.Nanosecond,
		HopCost:          500 * time.Nanosecond,
		ReadPenalty:      3.0,
	}
}

// Validate reports whether the parameter set is usable.
func (p Params) Validate() error {
	switch {
	case p.PIOWordCost < 0:
		return errors.New("sci: PIOWordCost must be non-negative")
	case p.PacketBase <= 0:
		return errors.New("sci: PacketBase must be positive")
	case p.Packet64Cost <= 0:
		return errors.New("sci: Packet64Cost must be positive")
	case p.Packet64Streamed <= 0 || p.Packet64Streamed > p.Packet64Cost:
		return errors.New("sci: Packet64Streamed must be in (0, Packet64Cost]")
	case p.Packet16Cost <= 0:
		return errors.New("sci: Packet16Cost must be positive")
	case p.Packet16Streamed <= 0 || p.Packet16Streamed > p.Packet16Cost:
		return errors.New("sci: Packet16Streamed must be in (0, Packet16Cost]")
	case p.HopCost < 0:
		return errors.New("sci: HopCost must be non-negative")
	case p.ReadPenalty < 1:
		return fmt.Errorf("sci: ReadPenalty %v must be >= 1", p.ReadPenalty)
	}
	return nil
}

// BufferID returns which of the eight internal write buffers the 64-byte
// chunk containing addr maps to: bits 6 through 8 of the address (Fig. 4).
func BufferID(addr uint64) int {
	return int((addr >> 6) & (NumWriteBuffers - 1))
}

// BufferOffset returns the byte offset of addr inside its gather buffer:
// the six least-significant address bits (Fig. 4).
func BufferOffset(addr uint64) int {
	return int(addr & (BufferSize - 1))
}

// AlignDown rounds addr down to the enclosing 64-byte chunk boundary.
func AlignDown(addr uint64) uint64 { return addr &^ (BufferSize - 1) }

// AlignUp rounds addr up to the next 64-byte chunk boundary.
func AlignUp(addr uint64) uint64 {
	return (addr + BufferSize - 1) &^ (BufferSize - 1)
}
