package sci

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"negative pio", func(p *Params) { p.PIOWordCost = -1 }},
		{"zero base", func(p *Params) { p.PacketBase = 0 }},
		{"zero pkt64", func(p *Params) { p.Packet64Cost = 0 }},
		{"zero pkt16", func(p *Params) { p.Packet16Cost = 0 }},
		{"negative hop", func(p *Params) { p.HopCost = -1 }},
		{"read penalty below one", func(p *Params) { p.ReadPenalty = 0.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatal("want validation error, got nil")
			}
			if _, err := New(p); err == nil {
				t.Fatal("New accepted invalid params")
			}
		})
	}
}

func TestBufferMapping(t *testing.T) {
	tests := []struct {
		addr       uint64
		wantBuf    int
		wantOffset int
	}{
		{0x0, 0, 0},
		{0x3f, 0, 63},
		{0x40, 1, 0},
		{0x7c, 1, 60},
		{0x1c0, 7, 0},
		{0x200, 0, 0}, // wraps: bit 9 and above ignored by buffer id
		{0x23f, 0, 63},
		{0x1000, 0, 0},
		{0x10c4, 3, 4},
	}
	for _, tt := range tests {
		if got := BufferID(tt.addr); got != tt.wantBuf {
			t.Errorf("BufferID(%#x) = %d, want %d", tt.addr, got, tt.wantBuf)
		}
		if got := BufferOffset(tt.addr); got != tt.wantOffset {
			t.Errorf("BufferOffset(%#x) = %d, want %d", tt.addr, got, tt.wantOffset)
		}
	}
}

func TestAlign(t *testing.T) {
	tests := []struct {
		addr           uint64
		wantDn, wantUp uint64
	}{
		{0, 0, 0},
		{1, 0, 64},
		{63, 0, 64},
		{64, 64, 64},
		{65, 64, 128},
		{200, 192, 256},
	}
	for _, tt := range tests {
		if got := AlignDown(tt.addr); got != tt.wantDn {
			t.Errorf("AlignDown(%d) = %d, want %d", tt.addr, got, tt.wantDn)
		}
		if got := AlignUp(tt.addr); got != tt.wantUp {
			t.Errorf("AlignUp(%d) = %d, want %d", tt.addr, got, tt.wantUp)
		}
	}
}

func TestStoreSmallSinglePacket(t *testing.T) {
	card := MustNew(DefaultParams())
	res := card.Store(0, 4)
	if len(res.Packets) != 1 {
		t.Fatalf("4-byte aligned store: want 1 packet, got %v", res.Packets)
	}
	if res.Packets[0].Kind != Packet16 {
		t.Errorf("want 16-byte packet, got %v", res.Packets[0])
	}
	// Calibration: the paper measures 2.7 us end-to-end for this store.
	got := res.Latency
	if got < 2500*time.Nanosecond || got > 2900*time.Nanosecond {
		t.Errorf("4-byte store latency = %v, want ~2.7us", got)
	}
}

func TestStoreStraddles16ByteBoundaryTwoPackets(t *testing.T) {
	card := MustNew(DefaultParams())
	// 8 bytes starting at offset 12 cross the 16-byte alignment
	// boundary: the card sends two 16-byte packets (paper, Section 4).
	res := card.Store(12, 8)
	if len(res.Packets) != 2 {
		t.Fatalf("straddling store: want 2 packets, got %v", res.Packets)
	}
	for _, p := range res.Packets {
		if p.Kind != Packet16 {
			t.Errorf("want 16-byte packets, got %v", p)
		}
	}
	single := card.Store(16, 8)
	if len(single.Packets) != 1 {
		t.Fatalf("aligned 8-byte store: want 1 packet, got %v", single.Packets)
	}
	if single.Latency >= res.Latency {
		t.Errorf("aligned store (%v) should be faster than straddling store (%v)",
			single.Latency, res.Latency)
	}
}

func TestStoreFullBufferOnePacket64(t *testing.T) {
	card := MustNew(DefaultParams())
	res := card.Store(0, BufferSize)
	if len(res.Packets) != 1 || res.Packets[0].Kind != Packet64 {
		t.Fatalf("full-buffer store: want one 64-byte packet, got %v", res.Packets)
	}
	if res.Packets[0].Len != BufferSize {
		t.Errorf("packet len = %d, want %d", res.Packets[0].Len, BufferSize)
	}
}

func TestStoreWholeBufferFasterThanPartial(t *testing.T) {
	// Paper: for sizes >= 32 bytes it is better to copy whole 64-byte
	// aligned regions. A full 64-byte store must beat a 48-byte store.
	card := MustNew(DefaultParams())
	full := card.StoreLatency(0, 64)
	partial := card.StoreLatency(0, 48)
	if full >= partial {
		t.Errorf("64-byte store (%v) should be faster than 48-byte store (%v)", full, partial)
	}
}

func TestAlignedCopyBetterThreshold(t *testing.T) {
	params := DefaultParams()
	// At and above 32 bytes, expansion to 64-byte aligned regions should
	// win or tie for typical unaligned offsets.
	for _, n := range []int{32, 40, 48, 56, 120} {
		better, err := AlignedCopyBetter(params, 8, n)
		if err != nil {
			t.Fatal(err)
		}
		if !better {
			t.Errorf("size %d at offset 8: expected aligned expansion to win", n)
		}
	}
	// Tiny stores must not be expanded: a 4-byte store is one cheap
	// 16-byte packet while a 64-byte expansion costs a full packet.
	better, err := AlignedCopyBetter(params, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if better {
		t.Error("size 4: expansion should lose")
	}
}

func TestStore200BytesMatchesFigure5(t *testing.T) {
	card := MustNew(DefaultParams())
	res := card.Store(0, 200)
	// 200 bytes at offset 0 = three full 64-byte packets + one 8-byte
	// tail in a 16-byte packet.
	var n64, n16 int
	for _, p := range res.Packets {
		switch p.Kind {
		case Packet64:
			n64++
		case Packet16:
			n16++
		}
	}
	if n64 != 3 || n16 != 1 {
		t.Fatalf("200-byte store: want 3x64 + 1x16 packets, got %d/%d (%v)", n64, n16, res.Packets)
	}
	// Fig. 5's curve tops out around 17 us at 200 bytes.
	if res.Latency < 14*time.Microsecond || res.Latency > 19*time.Microsecond {
		t.Errorf("200-byte latency = %v, want ~16-17us", res.Latency)
	}
}

func TestWriteLatencyCurveMonotoneIn64ByteChunks(t *testing.T) {
	pts, err := WriteLatencyCurve(DefaultParams(), 64, 1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Latency <= pts[i-1].Latency {
			t.Errorf("latency not increasing at size %d: %v <= %v",
				pts[i].Size, pts[i].Latency, pts[i-1].Latency)
		}
	}
}

func TestStoreLatencyAgreesWithStore(t *testing.T) {
	cardA := MustNew(DefaultParams())
	cardB := MustNew(DefaultParams())
	for _, tc := range []struct {
		addr uint64
		n    int
	}{{0, 4}, {12, 8}, {0, 64}, {4, 64}, {0, 200}, {60, 200}, {3, 1}, {0, 1 << 20}} {
		a := cardA.Store(tc.addr, tc.n).Latency
		b := cardB.StoreLatency(tc.addr, tc.n)
		if a != b {
			t.Errorf("Store(%#x,%d)=%v but StoreLatency=%v", tc.addr, tc.n, a, b)
		}
	}
}

func TestStorePacketsCoverRangeExactly(t *testing.T) {
	// Property: for any (offset, size), the union of emitted packet
	// payload ranges covers [addr, addr+n) with full-64 packets aligned.
	card := MustNew(DefaultParams())
	f := func(off uint16, sz uint16) bool {
		addr := uint64(off % 512)
		n := int(sz%1024) + 1
		res := card.Store(addr, n)
		covered := uint64(0)
		for _, p := range res.Packets {
			lo := max64(p.Addr, addr)
			hi := min64(p.Addr+uint64(p.Len), addr+uint64(n))
			if hi > lo {
				covered += hi - lo
			}
			if p.Kind == Packet64 && (p.Addr%BufferSize != 0 || p.Len != BufferSize) {
				return false
			}
			if p.Len <= 0 || p.Len > p.Kind.PayloadCap() {
				return false
			}
		}
		return covered >= uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreZeroAndNegative(t *testing.T) {
	card := MustNew(DefaultParams())
	if res := card.Store(0, 0); len(res.Packets) != 0 || res.Latency != 0 {
		t.Errorf("zero-size store should be free, got %+v", res)
	}
	if res := card.Store(0, -5); len(res.Packets) != 0 || res.Latency != 0 {
		t.Errorf("negative store should be free, got %+v", res)
	}
	if lat := card.StoreLatency(0, 0); lat != 0 {
		t.Errorf("zero-size StoreLatency = %v, want 0", lat)
	}
	if lat := card.ReadLatency(0, 0); lat != 0 {
		t.Errorf("zero-size ReadLatency = %v, want 0", lat)
	}
}

func TestReadSlowerThanWrite(t *testing.T) {
	card := MustNew(DefaultParams())
	w := card.StoreLatency(0, 64)
	r := card.ReadLatency(0, 64)
	if r <= w {
		t.Errorf("remote read (%v) should be slower than remote write (%v)", r, w)
	}
}

func TestStatsAccumulate(t *testing.T) {
	card := MustNew(DefaultParams())
	card.Store(0, 64)
	card.Store(0, 4)
	card.ReadLatency(0, 16)
	s := card.Stats()
	if s.StoreOps != 2 || s.ReadOps != 1 {
		t.Errorf("ops = %d/%d, want 2/1", s.StoreOps, s.ReadOps)
	}
	if s.BytesStored != 68 || s.BytesRead != 16 {
		t.Errorf("bytes = %d/%d, want 68/16", s.BytesStored, s.BytesRead)
	}
	if s.Packets64 != 1 || s.Packets16 != 1 {
		t.Errorf("packets = %d/%d, want 1/1", s.Packets64, s.Packets16)
	}
	if s.Busy <= 0 {
		t.Error("busy time should be positive")
	}
	card.ResetStats()
	if got := card.Stats(); got != (Stats{}) {
		t.Errorf("after reset stats = %+v, want zero", got)
	}
}

func TestRingHops(t *testing.T) {
	ring, err := NewRing(4, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		src, dst, want int
	}{
		{0, 1, 0}, {1, 2, 0}, {3, 0, 0},
		{0, 2, 1}, {0, 3, 2}, {2, 1, 2},
	}
	for _, tt := range tests {
		got, err := ring.Hops(tt.src, tt.dst)
		if err != nil {
			t.Fatalf("Hops(%d,%d): %v", tt.src, tt.dst, err)
		}
		if got != tt.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", tt.src, tt.dst, got, tt.want)
		}
	}
	if _, err := ring.Hops(0, 0); err == nil {
		t.Error("Hops(0,0) should error")
	}
	if _, err := ring.Hops(-1, 2); err == nil {
		t.Error("Hops(-1,2) should error")
	}
	if _, err := ring.Hops(0, 4); err == nil {
		t.Error("Hops(0,4) should error")
	}
}

func TestRingHopDelay(t *testing.T) {
	params := DefaultParams()
	ring, err := NewRing(3, params)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ring.HopDelay(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d != params.HopCost {
		t.Errorf("HopDelay(0,2) = %v, want %v", d, params.HopCost)
	}
	d, err = ring.HopDelay(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("HopDelay(0,1) = %v, want 0", d)
	}
}

func TestRingRejectsTinyRings(t *testing.T) {
	if _, err := NewRing(1, DefaultParams()); err == nil {
		t.Error("one-node ring should be rejected")
	}
	bad := DefaultParams()
	bad.PacketBase = 0
	if _, err := NewRing(2, bad); err == nil {
		t.Error("invalid params should be rejected")
	}
}

func TestPacketKindString(t *testing.T) {
	if Packet16.String() != "sci16" || Packet64.String() != "sci64" {
		t.Errorf("unexpected kind strings: %v %v", Packet16, Packet64)
	}
	if PacketKind(9).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func TestWriteLatencyCurveAt(t *testing.T) {
	params := DefaultParams()
	at0, err := WriteLatencyCurveAt(params, 0, 4, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := WriteLatencyCurve(params, 4, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range at0 {
		if at0[i] != curve[i] {
			t.Fatalf("offset-0 curve differs from WriteLatencyCurve at %d", i)
		}
	}
	// An unaligned start pays more for whole-buffer-sized stores: the
	// store straddles two chunks and drains as small packets.
	at8, err := WriteLatencyCurveAt(params, 8, 64, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if at8[0].Latency <= at0[15].Latency { // 64-byte point of offset 0
		t.Errorf("64B at offset 8 (%v) should cost more than at offset 0 (%v)",
			at8[0].Latency, at0[15].Latency)
	}
	if _, err := WriteLatencyCurveAt(params, 64, 4, 8, 4); err == nil {
		t.Error("offset beyond buffer should be rejected")
	}
}
