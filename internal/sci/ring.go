package sci

import (
	"errors"
	"fmt"
	"time"
)

// Ring models the SCI ring topology the prototype's two PCs were cabled
// in. SCI packets travel downstream around the ring from the sender to
// the destination; every intermediate hop adds a fixed forwarding delay.
type Ring struct {
	nodes  int
	params Params
}

// NewRing builds a ring of n nodes (n >= 2) sharing the given card
// parameters.
func NewRing(n int, params Params) (*Ring, error) {
	if n < 2 {
		return nil, errors.New("sci: a ring needs at least two nodes")
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Ring{nodes: n, params: params}, nil
}

// Nodes returns the number of stations on the ring.
func (r *Ring) Nodes() int { return r.nodes }

// Hops returns the number of intermediate stations an SCI packet crosses
// travelling downstream from node src to node dst. Adjacent downstream
// neighbours are zero hops apart; a packet never crosses its destination.
func (r *Ring) Hops(src, dst int) (int, error) {
	if src < 0 || src >= r.nodes || dst < 0 || dst >= r.nodes {
		return 0, fmt.Errorf("sci: node out of range: src=%d dst=%d nodes=%d", src, dst, r.nodes)
	}
	if src == dst {
		return 0, fmt.Errorf("sci: src and dst are the same node %d", src)
	}
	d := (dst - src + r.nodes) % r.nodes
	return d - 1, nil
}

// HopDelay returns the extra latency packets from src to dst incur from
// intermediate ring hops.
func (r *Ring) HopDelay(src, dst int) (time.Duration, error) {
	hops, err := r.Hops(src, dst)
	if err != nil {
		return 0, err
	}
	return time.Duration(hops) * r.params.HopCost, nil
}
