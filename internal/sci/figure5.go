package sci

import (
	"fmt"
	"time"
)

// LatencyPoint is one sample of the remote-write latency curve.
type LatencyPoint struct {
	// Size is the store size in bytes.
	Size int
	// Latency is the modelled one-way end-to-end latency.
	Latency time.Duration
}

// WriteLatencyCurve reproduces the measurement behind Fig. 5 of the
// paper: the application-level one-way latency of one remote store, for
// data sizes from minSize to maxSize in the given step, with the first
// word of every store mapping to the first word of an SCI buffer (word
// offset 0). Stats accumulated while sweeping are discarded.
func WriteLatencyCurve(params Params, minSize, maxSize, step int) ([]LatencyPoint, error) {
	card, err := New(params)
	if err != nil {
		return nil, err
	}
	if minSize < 1 {
		minSize = 1
	}
	if step < 1 {
		step = 1
	}
	var pts []LatencyPoint
	for n := minSize; n <= maxSize; n += step {
		pts = append(pts, LatencyPoint{Size: n, Latency: card.StoreLatency(0, n)})
	}
	return pts, nil
}

// WriteLatencyCurveAt is WriteLatencyCurve with the first byte of every
// store mapped to the given offset within an SCI buffer. The paper's
// Fig. 5 shows word offset 0; other offsets shift the sawtooth because
// edge chunks drain as sets of 16-byte packets and stores that reach a
// buffer's last word flush earlier.
func WriteLatencyCurveAt(params Params, offset uint64, minSize, maxSize, step int) ([]LatencyPoint, error) {
	if offset >= BufferSize {
		return nil, fmt.Errorf("sci: word offset %d outside a %d-byte buffer", offset, BufferSize)
	}
	card, err := New(params)
	if err != nil {
		return nil, err
	}
	if minSize < 1 {
		minSize = 1
	}
	if step < 1 {
		step = 1
	}
	var pts []LatencyPoint
	for n := minSize; n <= maxSize; n += step {
		pts = append(pts, LatencyPoint{Size: n, Latency: card.StoreLatency(offset, n)})
	}
	return pts, nil
}

// AlignedCopyBetter reports whether, for a copy of n bytes starting at
// the given offset within a 64-byte chunk, expanding the copy to cover
// whole 64-byte aligned regions yields lower modelled latency than
// copying the range as-is. The paper's sci_memcpy applies the expansion
// for all sizes of 32 bytes or more.
func AlignedCopyBetter(params Params, offset uint64, n int) (bool, error) {
	card, err := New(params)
	if err != nil {
		return false, err
	}
	asIs := card.StoreLatency(offset, n)
	lo := AlignDown(offset)
	hi := AlignUp(offset + uint64(n))
	expanded := card.StoreLatency(lo, int(hi-lo))
	return expanded <= asIs, nil
}
