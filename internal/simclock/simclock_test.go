package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestSimClockAdvance(t *testing.T) {
	c := NewSim()
	if c.Now() != 0 {
		t.Fatalf("fresh clock reads %v", c.Now())
	}
	c.Advance(3 * time.Microsecond)
	c.Advance(2 * time.Microsecond)
	if got := c.Now(); got != 5*time.Microsecond {
		t.Errorf("Now = %v, want 5us", got)
	}
	c.Advance(-time.Hour) // ignored
	if got := c.Now(); got != 5*time.Microsecond {
		t.Errorf("negative advance changed clock: %v", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("Reset did not rewind: %v", c.Now())
	}
}

func TestSimClockZeroValueUsable(t *testing.T) {
	var c SimClock
	c.Advance(time.Second)
	if c.Now() != time.Second {
		t.Errorf("zero-value clock broken: %v", c.Now())
	}
}

func TestSimClockConcurrent(t *testing.T) {
	c := NewSim()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != 8000*time.Nanosecond {
		t.Errorf("concurrent advances lost ticks: %v", got)
	}
}

func TestWallClock(t *testing.T) {
	c := NewWall()
	a := c.Now()
	time.Sleep(time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Errorf("wall clock not advancing: %v -> %v", a, b)
	}
	c.Advance(time.Hour) // no-op
	if c.Now() > b+time.Second {
		t.Error("Advance affected wall clock")
	}
	var zero WallClock
	if zero.Now() < 0 {
		t.Error("zero-value wall clock negative")
	}
}

func TestStopwatch(t *testing.T) {
	c := NewSim()
	sw := NewStopwatch(c)
	c.Advance(42 * time.Microsecond)
	if got := sw.Elapsed(); got != 42*time.Microsecond {
		t.Errorf("Elapsed = %v", got)
	}
	sw.Restart()
	if got := sw.Elapsed(); got != 0 {
		t.Errorf("Elapsed after restart = %v", got)
	}
}

func TestMicroseconds(t *testing.T) {
	if got := Microseconds(2700 * time.Nanosecond); got != "2.70us" {
		t.Errorf("Microseconds = %q", got)
	}
}
