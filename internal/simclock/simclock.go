// Package simclock provides virtual time sources for the PERSEAS
// simulation substrates.
//
// Every timing-sensitive component (the SCI interconnect model, the
// magnetic-disk model, the Rio file-cache model, local memcpy cost
// accounting) charges elapsed time to a Clock instead of sleeping. A
// deterministic SimClock makes every reproduced figure independent of the
// host machine, while WallClock lets the same code paths run against real
// time when the library is used over a real TCP transport.
package simclock

import (
	"fmt"
	"sync"
	"time"
)

// Clock is a virtual time source. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current virtual time since the clock epoch.
	Now() time.Duration
	// Advance moves the clock forward by d. Advance with a negative
	// duration is a programming error and is ignored.
	Advance(d time.Duration)
}

// SimClock is a deterministic, manually advanced clock. The zero value is
// ready to use and reads zero time.
type SimClock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewSim returns a SimClock starting at virtual time zero.
func NewSim() *SimClock { return &SimClock{} }

// Now reports the current virtual time.
func (c *SimClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves virtual time forward by d. Negative durations are ignored.
func (c *SimClock) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// Reset rewinds the clock to virtual time zero.
func (c *SimClock) Reset() {
	c.mu.Lock()
	c.now = 0
	c.mu.Unlock()
}

// WallClock reads the host monotonic clock. Advance is a no-op: real time
// passes on its own.
type WallClock struct {
	epoch time.Time
	once  sync.Once
}

// NewWall returns a WallClock whose epoch is the moment of creation.
func NewWall() *WallClock {
	return &WallClock{epoch: time.Now()}
}

// Now reports time elapsed since the clock epoch.
func (c *WallClock) Now() time.Duration {
	c.once.Do(func() {
		if c.epoch.IsZero() {
			c.epoch = time.Now()
		}
	})
	return time.Since(c.epoch)
}

// Advance is a no-op for wall-clock time.
func (c *WallClock) Advance(time.Duration) {}

// Stopwatch measures an interval on any Clock.
type Stopwatch struct {
	clock Clock
	start time.Duration
}

// NewStopwatch starts a stopwatch on clock.
func NewStopwatch(clock Clock) *Stopwatch {
	return &Stopwatch{clock: clock, start: clock.Now()}
}

// Restart resets the stopwatch origin to the current clock reading.
func (s *Stopwatch) Restart() { s.start = s.clock.Now() }

// Elapsed reports time since the stopwatch was started or restarted.
func (s *Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }

// Microseconds formats a duration as fractional microseconds, the unit the
// paper reports latencies in.
func Microseconds(d time.Duration) string {
	return fmt.Sprintf("%.2fus", float64(d.Nanoseconds())/1e3)
}
