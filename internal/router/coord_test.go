package router

import (
	"maps"
	"testing"
)

// TestPlacementTombstoneErasesOverride checks the placement log's
// tombstone semantics end to end: parsing drops the tombstoned name and
// compaction forgets its whole history, while live overrides survive
// both.
func TestPlacementTombstoneErasesOverride(t *testing.T) {
	rig := newTestRig(t, 2, 1)
	r := rig.r
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rec := range []struct {
		name  string
		shard int
	}{
		{"alpha", 1},
		{"beta", 1},
		{"alpha", placementTombstone},
	} {
		if _, _, err := r.appendPlacementLocked(rec.name, rec.shard); err != nil {
			t.Fatal(err)
		}
	}

	want := map[string]int{"beta": 1}
	got, cursor := parsePlacements(r.coord.Local)
	if !maps.Equal(got, want) {
		t.Fatalf("parsePlacements = %v, want %v", got, want)
	}
	if cursor != r.coordCursor {
		t.Fatalf("parse cursor = %d, append cursor = %d", cursor, r.coordCursor)
	}

	r.compactPlacementsLocked()
	got, _ = parsePlacements(r.coord.Local)
	if !maps.Equal(got, want) {
		t.Fatalf("parsePlacements after compaction = %v, want %v", got, want)
	}
	// Compaction keeps exactly one record: the tombstoned name left no
	// trace behind.
	if wantLen := uint64(coordPlacementOff + 2 + len("beta") + 2 + 4); r.coordCursor != wantLen {
		t.Fatalf("compacted cursor = %d, want %d", r.coordCursor, wantLen)
	}
}
