package router

import (
	"errors"
	"strings"
	"testing"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
)

// These tests pin the three crash windows of the cross-shard commit
// protocol with deterministic schedules: the coordinator hooks fire at
// exact protocol points and memserver partitions make individual
// prepares fail on demand.

// TestCoordinatorDiesBeforeDecision crashes the whole node after every
// participant prepared but before the decision record exists. Without a
// decision the transaction never committed: recovery must roll back all
// shards and leave no trace of the new values.
func TestCoordinatorDiesBeforeDecision(t *testing.T) {
	rig := newTestRig(t, 2, 2)
	r := rig.r
	db0 := mkDB(t, r, dbOnShard(t, r, 0, "p"), 4096, 0x01)
	db1 := mkDB(t, r, dbOnShard(t, r, 1, "p"), 4096, 0x02)
	name0, name1 := dbOnShard(t, r, 0, "p"), dbOnShard(t, r, 1, "p")

	r.hookAfterPrepare = func() {
		r.hookAfterPrepare = nil
		if err := r.Crash(fault.CrashPower); err != nil {
			t.Errorf("crash in hook: %v", err)
		}
	}
	tx, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range []engine.DB{db0, db1} {
		if err := tx.SetRange(db, 256, 16); err != nil {
			t.Fatal(err)
		}
		for i := 256; i < 272; i++ {
			db.Bytes()[i] = 0xEE
		}
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit succeeded across a coordinator crash")
	}

	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().DecisionsReplayed; got != 0 {
		t.Fatalf("DecisionsReplayed = %d, want 0: no decision was ever published", got)
	}
	checkRolledBack := func() {
		for name, want := range map[string]byte{name0: 0x01, name1: 0x02} {
			db, err := r.OpenDB(name)
			if err != nil {
				t.Fatal(err)
			}
			for i := 256; i < 272; i++ {
				if db.Bytes()[i] != want {
					t.Fatalf("%s[%d] = %#x after recovery, want %#x (rolled back)", name, i, db.Bytes()[i], want)
				}
			}
		}
	}
	checkRolledBack()

	// A second cycle proves the rollback itself is durable on the mirrors.
	if err := r.Crash(fault.CrashPower); err != nil {
		t.Fatal(err)
	}
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	checkRolledBack()
}

// TestCoordinatorDiesAfterDecision crashes the node after the decision
// record landed on shard 0's mirrors but before any participant
// published its commit word. The decision is the commit point: recovery
// must finish the transaction on every shard — zero lost committed
// transactions.
func TestCoordinatorDiesAfterDecision(t *testing.T) {
	rig := newTestRig(t, 3, 2)
	r := rig.r
	names := []string{dbOnShard(t, r, 0, "d"), dbOnShard(t, r, 1, "d"), dbOnShard(t, r, 2, "d")}
	dbs := make([]engine.DB, len(names))
	for i, name := range names {
		dbs[i] = mkDB(t, r, name, 4096, 0x00)
	}

	r.hookAfterDecision = func() {
		r.hookAfterDecision = nil
		if err := r.Crash(fault.CrashPower); err != nil {
			t.Errorf("crash in hook: %v", err)
		}
	}
	tx, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range dbs {
		if err := tx.SetRange(db, 512, 8); err != nil {
			t.Fatal(err)
		}
		copy(db.Bytes()[512:], []byte("COMMITED"))
	}
	err = tx.Commit()
	if err == nil {
		t.Fatal("commit reported clean success across a crash")
	}
	if !strings.Contains(err.Error(), "durable") {
		t.Fatalf("commit error %q does not mark the decision durable", err)
	}

	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().DecisionsReplayed; got != 1 {
		t.Fatalf("DecisionsReplayed = %d, want 1", got)
	}
	for _, name := range names {
		db, err := r.OpenDB(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := string(db.Bytes()[512:520]); got != "COMMITED" {
			t.Fatalf("%s[512:520] = %q after recovery, want COMMITED", name, got)
		}
	}

	// The replayed slot was zeroed: a second crash/recover cycle must not
	// replay it again.
	if err := r.Crash(fault.CrashPower); err != nil {
		t.Fatal(err)
	}
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().DecisionsReplayed; got != 1 {
		t.Fatalf("DecisionsReplayed = %d after second recovery, want still 1", got)
	}
	for _, name := range names {
		db, err := r.OpenDB(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := string(db.Bytes()[512:520]); got != "COMMITED" {
			t.Fatalf("%s[512:520] = %q after second recovery, want COMMITED", name, got)
		}
	}
}

// TestParticipantDiesMidPrepare makes one participant shard entirely
// unreachable so its prepare fails after the others succeeded — K of N
// prepared, no decision. The coordinator aborts what it can; then the
// mirrors come back (the guardian's revive path) and the whole node
// power-fails. Recovery must roll everything back — the K successful
// prepares must not surface as a partial commit.
func TestParticipantDiesMidPrepare(t *testing.T) {
	rig := newTestRig(t, 3, 2)
	r := rig.r
	names := []string{dbOnShard(t, r, 0, "m"), dbOnShard(t, r, 1, "m"), dbOnShard(t, r, 2, "m")}
	dbs := make([]engine.DB, len(names))
	for i, name := range names {
		dbs[i] = mkDB(t, r, name, 4096, 0x7A)
	}

	tx, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range dbs {
		if err := tx.SetRange(db, 64, 32); err != nil {
			t.Fatal(err)
		}
		for i := 64; i < 96; i++ {
			db.Bytes()[i] = 0xDD
		}
	}
	// The declarations (and their undo records) are on the wire; now
	// shard 2's whole mirror set drops off the network, so its prepare
	// cannot land anywhere. (A single lost mirror is absorbed as a
	// degradation; losing the shard takes losing them all.)
	rig.servers[2][0].Partition()
	rig.servers[2][1].Partition()
	err = tx.Commit()
	if err == nil {
		t.Fatal("commit succeeded with an unreachable participant shard")
	}
	if errors.Is(err, engine.ErrCrashed) || errors.Is(err, engine.ErrNoTransaction) {
		t.Fatalf("commit error %v, want a prepare push failure", err)
	}
	if got := r.Stats().CrossShardAborts; got != 1 {
		t.Fatalf("CrossShardAborts = %d, want 1", got)
	}

	// The partition heals and the guardian's repair path reintegrates the
	// mirrors; then the whole node power-fails.
	rig.servers[2][0].Heal()
	rig.servers[2][1].Heal()
	for i := 0; i < 2; i++ {
		if err := rig.nets[2].Revive(i); err != nil {
			t.Fatalf("revive shard 2 mirror %d: %v", i, err)
		}
	}
	if err := r.Crash(fault.CrashPower); err != nil {
		t.Fatal(err)
	}
	checkRolledBack := func() {
		for _, name := range names {
			db, err := r.OpenDB(name)
			if err != nil {
				t.Fatal(err)
			}
			for i := 64; i < 96; i++ {
				if db.Bytes()[i] != 0x7A {
					t.Fatalf("%s[%d] = %#x after recovery, want 0x7A (rolled back)", name, i, db.Bytes()[i])
				}
			}
		}
	}
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	checkRolledBack()

	// Recovery's rollback pushes reconverge the mirrors the partition had
	// split; a second cycle reads only mirror state and must agree.
	if err := r.Crash(fault.CrashPower); err != nil {
		t.Fatal(err)
	}
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	checkRolledBack()
}

// TestCompletionFailureRepairedLive makes a participant's commit-word
// push fail after the decision is durable: the transaction is committed
// but in doubt on that shard. The live repair path must re-drive the
// idempotent word push once the mirrors return — releasing the shard's
// claims, its undo slot and the decision slot — without needing a
// crash/recover cycle.
func TestCompletionFailureRepairedLive(t *testing.T) {
	rig := newTestRig(t, 2, 2)
	r := rig.r
	name0, name1 := dbOnShard(t, r, 0, "r"), dbOnShard(t, r, 1, "r")
	db0 := mkDB(t, r, name0, 4096, 0)
	db1 := mkDB(t, r, name1, 4096, 0)

	// After the decision record lands, shard 1's whole mirror set drops
	// off the network, so its commit-word push cannot land anywhere.
	r.hookAfterDecision = func() {
		r.hookAfterDecision = nil
		rig.servers[1][0].Partition()
		rig.servers[1][1].Partition()
	}
	tx, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range []engine.DB{db0, db1} {
		if err := tx.SetRange(db, 32, 6); err != nil {
			t.Fatal(err)
		}
		copy(db.Bytes()[32:], []byte("REPAIR"))
	}
	err = tx.Commit()
	if err == nil {
		t.Fatal("commit reported clean success with an unreachable participant")
	}
	if !strings.Contains(err.Error(), "durable") {
		t.Fatalf("commit error %q does not mark the decision durable", err)
	}

	// While the partition holds, repair cannot finish: the commit stays
	// in doubt and its decision slot stays occupied.
	if n := r.RepairInDoubt(); n != 1 {
		t.Fatalf("RepairInDoubt under partition = %d in doubt, want 1", n)
	}

	// The mirrors return and the shard reintegrates them; repair now
	// finishes the commit.
	rig.servers[1][0].Heal()
	rig.servers[1][1].Heal()
	for i := 0; i < 2; i++ {
		if err := rig.nets[1].Revive(i); err != nil {
			t.Fatalf("revive shard 1 mirror %d: %v", i, err)
		}
	}
	if n := r.RepairInDoubt(); n != 0 {
		t.Fatalf("RepairInDoubt after heal = %d in doubt, want 0", n)
	}
	st := r.Stats()
	if st.CompletionsRepaired != 1 || st.CrossShardCommits != 1 {
		t.Fatalf("stats = %+v, want 1 repaired completion counted as a cross-shard commit", st)
	}
	r.mu.Lock()
	free := len(r.coordFree)
	r.mu.Unlock()
	if free != coordSlots {
		t.Fatalf("decision slots free = %d, want %d: repair must release the slot", free, coordSlots)
	}

	// The repaired shard's claims and undo slot are free again: the same
	// ranges commit cross-shard without conflict or slot exhaustion.
	tx2, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range []engine.DB{db0, db1} {
		if err := tx2.SetRange(db, 32, 6); err != nil {
			t.Fatal(err)
		}
		copy(db.Bytes()[32:], []byte("AGAIN!"))
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	rig.verifyMirrors(t)

	// Both commits are durable through a crash, with nothing left for
	// decision replay.
	if err := r.Crash(fault.CrashPower); err != nil {
		t.Fatal(err)
	}
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().DecisionsReplayed; got != 0 {
		t.Fatalf("DecisionsReplayed = %d, want 0: repair already retired the record", got)
	}
	for _, name := range []string{name0, name1} {
		db, err := r.OpenDB(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := string(db.Bytes()[32:38]); got != "AGAIN!" {
			t.Fatalf("%s[32:38] = %q after recovery, want AGAIN!", name, got)
		}
	}
}

// TestCommittedWorkSurvivesChaosCycle interleaves committed and
// in-flight cross-shard transactions at the crash: the committed one
// must survive recovery, the in-flight one must vanish.
func TestCommittedWorkSurvivesChaosCycle(t *testing.T) {
	rig := newTestRig(t, 2, 2)
	r := rig.r
	db0 := mkDB(t, r, dbOnShard(t, r, 0, "w"), 4096, 0)
	db1 := mkDB(t, r, dbOnShard(t, r, 1, "w"), 4096, 0)
	name0, name1 := dbOnShard(t, r, 0, "w"), dbOnShard(t, r, 1, "w")

	// A fully committed cross-shard transaction.
	tx, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range []engine.DB{db0, db1} {
		if err := tx.SetRange(db, 0, 4); err != nil {
			t.Fatal(err)
		}
		copy(db.Bytes()[0:], []byte("KEEP"))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// An in-flight one, declared and half-written but never committed.
	tx2, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range []engine.DB{db0, db1} {
		if err := tx2.SetRange(db, 8, 4); err != nil {
			t.Fatal(err)
		}
		copy(db.Bytes()[8:], []byte("LOSE"))
	}

	if err := r.Crash(fault.CrashPower); err != nil {
		t.Fatal(err)
	}
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{name0, name1} {
		db, err := r.OpenDB(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := string(db.Bytes()[0:4]); got != "KEEP" {
			t.Fatalf("%s committed data = %q after recovery, want KEEP", name, got)
		}
		for i := 8; i < 12; i++ {
			if db.Bytes()[i] != 0 {
				t.Fatalf("%s[%d] = %#x: uncommitted write survived recovery", name, i, db.Bytes()[i])
			}
		}
	}
}
