package router

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
)

func TestMigrateDBMovesData(t *testing.T) {
	rig := newTestRig(t, 2, 2)
	r := rig.r
	name := dbOnShard(t, r, 0, "g")
	db := mkDB(t, r, name, 1<<20, 0x5C)
	write(t, r, db, 1234, []byte("payload"))

	if err := r.MigrateDB(name, 1); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Migrations; got != 1 {
		t.Fatalf("Migrations = %d, want 1", got)
	}

	// The wrapper rebound: reads and writes now go through shard 1.
	if got := string(db.Bytes()[1234:1241]); got != "payload" {
		t.Fatalf("migrated data = %q, want payload", got)
	}
	if _, err := r.Shard(1).OpenDB(name); err != nil {
		t.Fatalf("destination shard does not hold %q: %v", name, err)
	}
	if _, err := r.Shard(0).OpenDB(name); err == nil {
		t.Fatalf("source shard still holds %q after migration", name)
	}
	write(t, r, db, 0, []byte("post-move"))
	rig.verifyMirrors(t)

	// The placement override is durable: after a full crash the database
	// recovers on its new home, not its hash home.
	if err := r.Crash(fault.CrashPower); err != nil {
		t.Fatal(err)
	}
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	db2, err := r.OpenDB(name)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(db2.Bytes()[0:9]); got != "post-move" {
		t.Fatalf("recovered data = %q, want post-move", got)
	}
	if got := string(db2.Bytes()[1234:1241]); got != "payload" {
		t.Fatalf("recovered data = %q, want payload", got)
	}
	if _, err := r.Shard(1).OpenDB(name); err != nil {
		t.Fatalf("recovery lost the placement override for %q: %v", name, err)
	}
}

func TestMigrateDBToOwnShardIsNoOp(t *testing.T) {
	rig := newTestRig(t, 2, 1)
	r := rig.r
	name := dbOnShard(t, r, 1, "n")
	mkDB(t, r, name, 4096, 0)
	if err := r.MigrateDB(name, 1); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Migrations; got != 0 {
		t.Fatalf("Migrations = %d for a same-shard move, want 0", got)
	}
}

// TestMigrateDBUnderLoad moves a database while writers keep committing
// to it. Each worker owns an 8-byte counter slot it increments per
// transaction; after the move every slot must hold exactly the number of
// commits its worker reported, both locally and on the destination
// shard's mirrors.
func TestMigrateDBUnderLoad(t *testing.T) {
	rig := newTestRig(t, 2, 2)
	r := rig.r
	name := dbOnShard(t, r, 0, "l")
	db := mkDB(t, r, name, 1<<20, 0)

	const workers = 4
	var wg sync.WaitGroup
	commits := make([]uint64, workers)
	stop := make(chan struct{})
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			off := uint64(w) * 8
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := r.Begin()
				if err != nil {
					errCh <- err
					return
				}
				if err := tx.SetRange(db, off, 8); err != nil {
					_ = tx.Abort()
					if errors.Is(err, engine.ErrConflict) {
						continue // quiesced by the final epoch; retry
					}
					errCh <- err
					return
				}
				// Bytes() after a successful SetRange is stable: the claim
				// blocks the migration's switch until this tx finishes.
				b := db.Bytes()
				binary.BigEndian.PutUint64(b[off:], binary.BigEndian.Uint64(b[off:])+1)
				if err := tx.Commit(); err != nil {
					errCh <- err
					return
				}
				commits[w]++
				// A short idle gap between transactions gives the final
				// epoch's whole-database claim a window to drain into.
				time.Sleep(100 * time.Microsecond)
			}
		}(w)
	}

	migErr := r.MigrateDB(name, 1)
	close(stop)
	wg.Wait()
	if migErr != nil {
		t.Fatal(migErr)
	}
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	total := uint64(0)
	for w := 0; w < workers; w++ {
		if got := binary.BigEndian.Uint64(db.Bytes()[w*8:]); got != commits[w] {
			t.Fatalf("worker %d slot = %d, want %d commits", w, got, commits[w])
		}
		total += commits[w]
	}
	if total == 0 {
		t.Fatal("no transactions committed during the migration")
	}
	t.Logf("migrated under %d commits", total)
	rig.verifyMirrors(t)

	// The moved copy must also survive a crash: recovery reads it from
	// the destination shard's mirrors.
	if err := r.Crash(fault.CrashPower); err != nil {
		t.Fatal(err)
	}
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	db2, err := r.OpenDB(name)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		if got := binary.BigEndian.Uint64(db2.Bytes()[w*8:]); got != commits[w] {
			t.Fatalf("worker %d slot = %d after recovery, want %d", w, got, commits[w])
		}
	}
}

// TestDropAfterMigrateRetiresOverride drops a migrated database and
// recreates it under the same name: the recreation lands back on the
// name's hash home, and — the part DropDB's placement tombstone exists
// for — recovery must agree. Without the tombstone the stale override
// survives in the coordinator log, recovery routes the name to the old
// destination shard and its stale-copy sweep destroys the live
// recreated database.
func TestDropAfterMigrateRetiresOverride(t *testing.T) {
	rig := newTestRig(t, 2, 2)
	r := rig.r
	name := dbOnShard(t, r, 0, "t")
	mkDB(t, r, name, 4096, 0x33)
	if err := r.MigrateDB(name, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.DropDB(name); err != nil {
		t.Fatal(err)
	}

	db := mkDB(t, r, name, 4096, 0x44)
	if got := r.ShardFor(name); got != 0 {
		t.Fatalf("recreated %q routed to shard %d, want hash home 0", name, got)
	}
	write(t, r, db, 7, []byte("fresh-life"))

	check := func() {
		db2, err := r.OpenDB(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := string(db2.Bytes()[7:17]); got != "fresh-life" {
			t.Fatalf("recovered data = %q, want fresh-life", got)
		}
		if db2.Bytes()[0] != 0x44 {
			t.Fatalf("recovered data = %#x, want the recreated 0x44 fill", db2.Bytes()[0])
		}
		if _, err := r.Shard(0).OpenDB(name); err != nil {
			t.Fatalf("recreated database missing from its hash home: %v", err)
		}
		if _, err := r.Shard(1).OpenDB(name); err == nil {
			t.Fatalf("%q still present on the retired override shard", name)
		}
	}
	for cycle := 0; cycle < 2; cycle++ {
		if err := r.Crash(fault.CrashPower); err != nil {
			t.Fatal(err)
		}
		if err := r.Recover(); err != nil {
			t.Fatal(err)
		}
		check()
	}
}

// TestWriteDuringFinalEpochReachesDestinationMirrors commits a write in
// the window between the catch-up epochs and the final quiesce. Its
// dirty record is taken at SetRange time, while the range claim is
// held, so the final epoch's dirty snapshot must cover it and the
// destination's mirrors — not just its local copy — must hold the new
// bytes, which a post-migration crash proves.
func TestWriteDuringFinalEpochReachesDestinationMirrors(t *testing.T) {
	rig := newTestRig(t, 2, 2)
	r := rig.r
	name := dbOnShard(t, r, 0, "f")
	db := mkDB(t, r, name, 1<<20, 0x10)

	r.hookBeforeQuiesce = func() {
		r.hookBeforeQuiesce = nil
		write(t, r, db, 4096, []byte("last-moment"))
	}
	if err := r.MigrateDB(name, 1); err != nil {
		t.Fatal(err)
	}
	rig.verifyMirrors(t)

	if err := r.Crash(fault.CrashPower); err != nil {
		t.Fatal(err)
	}
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	db2, err := r.OpenDB(name)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(db2.Bytes()[4096:4107]); got != "last-moment" {
		t.Fatalf("destination mirrors lost the final-epoch write: got %q", got)
	}
}

// TestMigrationInterruptedByCrash power-fails between epochs: the
// placement record never landed, so recovery must leave the database on
// its source shard and drop the half-filled destination copy.
func TestMigrationInterruptedByCrash(t *testing.T) {
	rig := newTestRig(t, 2, 2)
	r := rig.r
	name := dbOnShard(t, r, 0, "i")
	db := mkDB(t, r, name, 1<<20, 0x42)
	write(t, r, db, 99, []byte("source-truth"))

	// Simulate the interruption directly: a destination copy exists (the
	// epochs were underway) when the node dies.
	destCopy, err := r.Shard(1).CreateDB(name, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	copy(destCopy.Bytes()[0:], []byte("half-filled garbage"))

	if err := r.Crash(fault.CrashPower); err != nil {
		t.Fatal(err)
	}
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	db2, err := r.OpenDB(name)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(db2.Bytes()[99:111]); got != "source-truth" {
		t.Fatalf("recovered data = %q, want source-truth", got)
	}
	if _, err := r.Shard(1).OpenDB(name); err == nil {
		t.Fatal("half-filled destination copy survived recovery")
	}
	// And a fresh migration attempt still works afterwards.
	if err := r.MigrateDB(name, 1); err != nil {
		t.Fatal(err)
	}
	db3, err := r.OpenDB(name)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(db3.Bytes()[99:111]); got != "source-truth" {
		t.Fatalf("re-migrated data = %q, want source-truth", got)
	}
}
