// Package router shards the PERSEAS region namespace across N
// independent library instances and fronts them with the same
// engine.Engine contract, so benchmarks, stress drivers and applications
// run unchanged against 1 or many shards.
//
// Each shard is a complete PERSEAS instance — its own mirror set,
// conflict table, undo-log arena, metadata region and (in full rigs)
// guardian — so aggregate write throughput and database capacity scale
// with the shard count instead of being bounded by a single node's
// mirror link. A database lives wholly on one shard, placed by a hash of
// its name (with migration overrides); SetRange routes to the owning
// shard's conflict table and undo log.
//
// Transactions that touch a single shard — the common case — commit
// through that shard's unchanged one-word commit path; the router adds
// no network traffic, no extra clock reads and no trace spans, which is
// what keeps 1-shard figure reproductions byte-identical to the bare
// library. Transactions that touch several shards follow the genuineness
// rule of partial replication: only the touched shards participate.
// Their commit is coordinator-driven:
//
//  1. Prepare, in parallel on every participant: undo records are
//     already mirrored by SetRange; Prepare pushes the modified database
//     ranges (each shard's pushes ride its own mirror fan-out workers)
//     and leaves the commit word unpublished.
//  2. Decide: the coordinator writes one decision record — global id
//     plus every participant's (shard, undo-slot, transaction id) — into
//     its mirrored decision region. The push of that record is the
//     atomic commit point of the whole transaction.
//  3. Complete, in parallel: each participant publishes its own commit
//     word, exactly the one small write an ordinary commit ends with.
//
// If the coordinator dies before step 2, no decision exists and every
// shard's standard recovery rolls the prepared transaction back from its
// remote undo log. If it dies after step 2, recovery replays the
// decision: each named slot's commit word is forced up to the decided id
// before the rollback scan, so the transaction commits everywhere. A
// completed decision record is zeroed; replaying a stale record is a
// no-op because commit words only move forward.
package router

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/flight"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/obs"
)

// Stats counts router activity.
type Stats struct {
	// SingleShardCommits took a shard's unchanged commit path.
	SingleShardCommits uint64
	// CrossShardCommits went through the prepare/decide/complete
	// protocol.
	CrossShardCommits uint64
	// CrossShardAborts are cross-shard transactions rolled back after a
	// failed prepare or decision push.
	CrossShardAborts uint64
	// DecisionsReplayed counts decision records recovery finished on
	// behalf of a dead coordinator.
	DecisionsReplayed uint64
	// CompletionsRepaired counts decided commits whose failed word
	// pushes RepairInDoubt finished on the live system.
	CompletionsRepaired uint64
	// Migrations counts completed online database moves.
	Migrations uint64
}

// metrics is Stats as lock-free counters.
type metrics struct {
	single, cross, crossAborts, replayed, repaired, migrations obs.Counter
}

// Router fronts the shard set. It implements engine.Engine.
type Router struct {
	shards []*core.Library
	nets   []*netram.Client

	// mu guards the placement map, wrapper cache, coordinator region
	// bookkeeping and the crashed flag. It is never held across network
	// pushes on the commit path.
	mu     sync.Mutex
	placed map[string]int // placement overrides + created databases
	// overridden marks names with a durable placement record in the
	// coordinator log; DropDB must retire that record with a tombstone
	// or recovery routes the name to a shard it no longer lives on.
	overridden map[string]bool
	dbs        map[string]*DB // live wrappers by name
	migrations map[string]*migration
	// indoubt holds decided cross-shard commits whose commit-word push
	// failed transiently; RepairInDoubt re-drives them so their shards'
	// claims, undo slots and decision records free up without a crash.
	indoubt []indoubtCommit
	crashed bool
	// gen increments on every crash; handles from an older generation
	// are retired, like the library's retireAllLocked.
	gen uint64

	// Coordinator decision region state (nil / empty at 1 shard, where
	// no cross-shard transaction can exist).
	coord       *netram.Region
	coordFree   []int
	coordCursor uint64
	nextGID     uint64

	metrics metrics
	// flight records in-doubt commit repairs; nil disables. Set during
	// wiring, before traffic flows.
	flight *flight.Recorder

	// Test hooks, fired on the committing goroutine between protocol
	// phases (and on the migrating goroutine before the final quiesce);
	// nil outside white-box crash-schedule tests.
	hookAfterPrepare  func()
	hookAfterDecision func()
	hookBeforeQuiesce func()
}

// New builds a router over pre-wired shard libraries. With more than one
// shard it allocates the coordinator decision region on shard 0's mirror
// set; at exactly one shard the router is a pure pass-through wrapper
// and touches nothing.
func New(shards []*core.Library) (*Router, error) {
	if len(shards) == 0 {
		return nil, errors.New("router: need at least one shard")
	}
	r := &Router{
		shards:     shards,
		nets:       make([]*netram.Client, len(shards)),
		placed:     make(map[string]int),
		overridden: make(map[string]bool),
		dbs:        make(map[string]*DB),
		migrations: make(map[string]*migration),
	}
	for i, lib := range shards {
		r.nets[i] = lib.Net()
	}
	if len(shards) > 1 {
		coord, err := r.nets[0].Malloc(CoordRegionName, coordSize)
		if err != nil {
			return nil, fmt.Errorf("router: allocate coordinator region: %w", err)
		}
		writeCoordHeader(coord.Local, len(shards))
		if err := r.nets[0].PushAcked(coord, 0, coordHeaderSize); err != nil {
			return nil, fmt.Errorf("router: publish coordinator header: %w", err)
		}
		r.coord = coord
		r.coordFree = allCoordSlots()
		r.coordCursor = coordPlacementOff
	}
	return r, nil
}

// Name implements engine.Engine. The router presents as PERSEAS: it is a
// deployment topology, not a different engine.
func (r *Router) Name() string { return "perseas" }

// Shards reports the shard count.
func (r *Router) Shards() int { return len(r.shards) }

// Shard exposes shard i's library, for tests and tooling.
func (r *Router) Shard(i int) *core.Library { return r.shards[i] }

// ShardFor reports which shard a database with the given name lives on
// (or would be created on).
func (r *Router) ShardFor(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.homeShardLocked(name)
}

// homeShardLocked resolves a name to its shard: a migration override if
// one exists, otherwise the FNV-1a hash of the name. Caller holds r.mu.
func (r *Router) homeShardLocked(name string) int {
	if s, ok := r.placed[name]; ok {
		return s
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	return int(h.Sum32() % uint32(len(r.shards)))
}

// CreateDB implements engine.Engine: the database is created on its home
// shard and wrapped with routing identity.
func (r *Router) CreateDB(name string, size uint64) (engine.DB, error) {
	r.mu.Lock()
	if r.crashed {
		r.mu.Unlock()
		return nil, engine.ErrCrashed
	}
	shard := r.homeShardLocked(name)
	r.mu.Unlock()
	inner, err := r.shards[shard].CreateDB(name, size)
	if err != nil {
		return nil, err
	}
	d := &DB{r: r, name: name, shard: shard, inner: inner}
	r.mu.Lock()
	r.placed[name] = shard
	r.dbs[name] = d
	r.mu.Unlock()
	return d, nil
}

// InitDB implements engine.Engine.
func (r *Router) InitDB(db engine.DB) error {
	d, ok := db.(*DB)
	if !ok || d.r != r {
		return fmt.Errorf("router: foreign DB handle %T", db)
	}
	r.mu.Lock()
	if r.crashed {
		r.mu.Unlock()
		return engine.ErrCrashed
	}
	shard, inner := d.shard, d.inner
	r.mu.Unlock()
	return r.shards[shard].InitDB(inner)
}

// OpenDB implements engine.Engine.
func (r *Router) OpenDB(name string) (engine.DB, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.crashed {
		return nil, engine.ErrCrashed
	}
	if d, ok := r.dbs[name]; ok {
		return d, nil
	}
	shard := r.homeShardLocked(name)
	inner, err := r.shards[shard].OpenDB(name)
	if err != nil {
		return nil, err
	}
	d := &DB{r: r, name: name, shard: shard, inner: inner}
	r.dbs[name] = d
	return d, nil
}

// DropDB removes a database from its shard. Like the library's DropDB it
// requires that shard to be between transactions. Dropping a migrated
// database also retires its durable placement override with a tombstone
// record, so a later recreation lands on its hash home both live and
// after a crash — without the tombstone, recovery would rebuild the
// stale override and its stale-copy sweep would destroy the recreated
// database. Like the library's own DropDB, a drop must not race a
// CreateDB of the same name.
func (r *Router) DropDB(name string) error {
	r.mu.Lock()
	if r.crashed {
		r.mu.Unlock()
		return engine.ErrCrashed
	}
	if r.migrations[name] != nil {
		r.mu.Unlock()
		return fmt.Errorf("router: database %q is migrating", name)
	}
	shard := r.homeShardLocked(name)
	overridden := r.overridden[name]
	r.mu.Unlock()
	if err := r.shards[shard].DropDB(name); err != nil {
		// A retry after an earlier failed tombstone push finds the copy
		// already gone; the override still needs retiring below.
		if !(overridden && errors.Is(err, core.ErrNoSuchDB)) {
			return err
		}
	}
	r.mu.Lock()
	delete(r.dbs, name)
	if !overridden {
		delete(r.placed, name)
		r.mu.Unlock()
		return nil
	}
	if r.crashed || r.coord == nil {
		r.mu.Unlock()
		return engine.ErrCrashed
	}
	coord := r.coord
	off, n, err := r.appendPlacementLocked(name, placementTombstone)
	if err != nil {
		r.mu.Unlock()
		return fmt.Errorf("router: retire placement of %q: %w", name, err)
	}
	r.mu.Unlock()
	if err := r.nets[0].PushAcked(coord, off, n); err != nil {
		// The override record is still durable; r.placed keeps the name
		// pinned to it so live routing and a recovery agree (a recreation
		// lands back on the override shard). Retrying DropDB clears it.
		return fmt.Errorf("router: retire placement of %q: %w", name, err)
	}
	r.mu.Lock()
	delete(r.placed, name)
	delete(r.overridden, name)
	r.mu.Unlock()
	return nil
}

// Begin implements engine.Engine. The handle begins a sub-transaction on
// a shard the first time SetRange touches it — the genuineness rule:
// shards a transaction does not touch take no part in its commit.
func (r *Router) Begin() (engine.Tx, error) {
	return r.BeginTraced(0, 0)
}

// BeginTraced implements engine.TraceBeginner: the handle remembers the
// propagated tracing context and passes it to each shard
// sub-transaction it lazily begins.
func (r *Router) BeginTraced(traceID, parentSpan uint64) (engine.Tx, error) {
	r.mu.Lock()
	crashed, gen := r.crashed, r.gen
	r.mu.Unlock()
	if crashed {
		return nil, engine.ErrCrashed
	}
	return &routerTx{
		r: r, gen: gen, subs: make([]*core.Tx, len(r.shards)),
		traceID: traceID, traceSpan: parentSpan,
	}, nil
}

// Crash implements engine.Engine: the routing node and every shard
// primary fail together. Only the shards' mirror sets (and the mirrored
// decision region) survive.
func (r *Router) Crash(kind fault.CrashKind) error {
	r.mu.Lock()
	r.crashed = true
	r.gen++
	r.coord = nil
	r.coordFree = nil
	r.dbs = make(map[string]*DB)
	r.migrations = make(map[string]*migration)
	// In-doubt completions die with the node; recovery finishes them
	// from their decision records.
	r.indoubt = nil
	r.mu.Unlock()
	for _, lib := range r.shards {
		_ = lib.Crash(kind)
	}
	return nil
}

// Recover implements engine.Engine. Order matters: the decision region
// is read first, so each shard's recovery can finish decided commits
// whose word pushes the crash swallowed; then stale copies left by an
// interrupted migration are dropped and placement is rebuilt.
func (r *Router) Recover() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.crashed {
		return errors.New("router: recover called on a running router")
	}

	decisions := make([]map[int]uint64, len(r.shards))
	var replayed []int
	overrides := make(map[string]int)
	var coord *netram.Region
	if len(r.shards) > 1 {
		var err error
		coord, err = r.nets[0].Connect(CoordRegionName)
		if err != nil {
			return fmt.Errorf("router: reconnect coordinator region: %w", err)
		}
		if err := r.nets[0].FetchInto(coord, 0, coord.Size()); err != nil {
			return fmt.Errorf("router: fetch coordinator region: %w", err)
		}
		shardCount, err := readCoordHeader(coord.Local)
		if err != nil {
			return err
		}
		if shardCount != len(r.shards) {
			return fmt.Errorf("router: coordinator region recorded %d shards, router has %d",
				shardCount, len(r.shards))
		}
		var maxGID uint64
		for s := 0; s < coordSlots; s++ {
			dec, ok := parseDecision(coord.Local, s)
			if !ok {
				continue
			}
			if dec.gid > maxGID {
				maxGID = dec.gid
			}
			for _, p := range dec.parts {
				if int(p.shard) >= len(r.shards) {
					continue
				}
				if decisions[p.shard] == nil {
					decisions[p.shard] = make(map[int]uint64)
				}
				if p.txid > decisions[p.shard][int(p.slot)] {
					decisions[p.shard][int(p.slot)] = p.txid
				}
			}
			replayed = append(replayed, s)
		}
		var cursor uint64
		overrides, cursor = parsePlacements(coord.Local)
		r.coordCursor = cursor
		r.nextGID = maxGID
	}

	for i, lib := range r.shards {
		if err := lib.RecoverWithDecisions(decisions[i]); err != nil {
			return fmt.Errorf("router: recover shard %d: %w", i, err)
		}
	}

	// Every replayed decision is now complete on all its participants;
	// retire the records so the slots free up.
	for _, s := range replayed {
		off := coordSlotOff(s)
		clear(coord.Local[off : off+8])
		if err := r.nets[0].PushAcked(coord, off, 8); err != nil {
			return fmt.Errorf("router: retire decision record: %w", err)
		}
		r.metrics.replayed.Inc()
	}
	if len(r.shards) > 1 {
		r.coord = coord
		r.coordFree = allCoordSlots()
	}

	// Rebuild placement from the durable overrides, then drop copies an
	// interrupted migration left on a shard that does not own them: a
	// half-filled destination (no override recorded yet) or an undropped
	// source (override recorded, drop lost to the crash).
	r.placed = make(map[string]int)
	r.overridden = make(map[string]bool)
	for name, shard := range overrides {
		if shard < len(r.shards) {
			r.placed[name] = shard
			r.overridden[name] = true
		}
	}
	for i, lib := range r.shards {
		for _, name := range lib.DatabaseNames() {
			if r.homeShardLocked(name) != i {
				if err := lib.DropDB(name); err != nil {
					return fmt.Errorf("router: drop stale migration copy %q on shard %d: %w",
						name, i, err)
				}
			}
		}
	}
	r.dbs = make(map[string]*DB)
	r.migrations = make(map[string]*migration)
	r.indoubt = nil
	r.crashed = false
	return nil
}

// Close implements engine.Engine. Every shard's remote segments stay
// exported, like the library's own Close.
func (r *Router) Close() error {
	r.mu.Lock()
	r.crashed = true
	r.coord = nil
	r.mu.Unlock()
	for _, lib := range r.shards {
		_ = lib.Close()
	}
	return nil
}

// Stats snapshots the router counters.
func (r *Router) Stats() Stats {
	return Stats{
		SingleShardCommits:  r.metrics.single.Load(),
		CrossShardCommits:   r.metrics.cross.Load(),
		CrossShardAborts:    r.metrics.crossAborts.Load(),
		DecisionsReplayed:   r.metrics.replayed.Load(),
		CompletionsRepaired: r.metrics.repaired.Load(),
		Migrations:          r.metrics.migrations.Load(),
	}
}

// SetFlight attaches a flight recorder for in-doubt repair events.
// Call during wiring, before traffic flows; nil records nothing.
func (r *Router) SetFlight(f *flight.Recorder) { r.flight = f }

// RegisterMetrics registers the router's own counters plus every shard's
// commit-path and netram series under per-shard prefixes
// ("perseas_shard0_commit_total_ns", ...), giving each shard its own
// observability identity on one registry.
func (r *Router) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterGauge("perseas_router_shards", "configured shard count", func() uint64 {
		return uint64(len(r.shards))
	})
	reg.RegisterCounter("perseas_router_single_shard_commits_total", "commits through one shard's plain path", &r.metrics.single)
	reg.RegisterCounter("perseas_router_cross_shard_commits_total", "commits through the cross-shard protocol", &r.metrics.cross)
	reg.RegisterCounter("perseas_router_cross_shard_aborts_total", "cross-shard transactions rolled back at commit", &r.metrics.crossAborts)
	reg.RegisterCounter("perseas_router_decisions_replayed_total", "decision records finished by recovery", &r.metrics.replayed)
	reg.RegisterCounter("perseas_router_completions_repaired_total", "decided commits finished by live in-doubt repair", &r.metrics.repaired)
	reg.RegisterCounter("perseas_router_migrations_total", "completed online database migrations", &r.metrics.migrations)
	for i, lib := range r.shards {
		lib.RegisterMetricsPrefixed(reg, fmt.Sprintf("perseas_shard%d", i))
	}
}

// CommitLatencyRows merges every shard's commit-path breakdown into one
// table, as if all commits had gone through one instance.
func (r *Router) CommitLatencyRows() []obs.LatencyRow {
	rows := r.shards[0].CommitLatencyRows()
	for _, lib := range r.shards[1:] {
		for i, row := range lib.CommitLatencyRows() {
			rows[i].Snap = rows[i].Snap.Merge(row.Snap)
		}
	}
	return rows
}

// DB is a routed database handle: the shard library's handle plus the
// routing identity that sends SetRange to the owning shard. Migration
// atomically rebinds shard and inner handle; readers access them under
// the router lock.
type DB struct {
	r    *Router
	name string
	// shard and inner are guarded by r.mu (migration rebinds them).
	shard int
	inner engine.DB
}

// Name implements engine.DB.
func (d *DB) Name() string { return d.name }

// Size implements engine.DB.
func (d *DB) Size() uint64 {
	d.r.mu.Lock()
	inner := d.inner
	d.r.mu.Unlock()
	return inner.Size()
}

// Bytes implements engine.DB. After a migration the returned slice is
// the destination shard's local copy; callers that cached the slice
// across transactions must call Bytes again, exactly as they must after
// a crash and reopen.
func (d *DB) Bytes() []byte {
	d.r.mu.Lock()
	inner := d.inner
	d.r.mu.Unlock()
	return inner.Bytes()
}
