package router

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/flight"
)

// routerTx is one routed transaction: at most one sub-transaction per
// shard, begun lazily on first touch. A handle is owned by the goroutine
// that began it, like every engine.Tx.
type routerTx struct {
	r *Router
	// subs[i] is the open sub-transaction on shard i, nil if untouched.
	subs []*core.Tx
	done bool
	// gen is the router generation at Begin; a crash bumps it, retiring
	// this handle.
	gen uint64
	// traceID/traceSpan carry an adopted cross-process tracing context
	// (BeginTraced); every lazily-begun shard sub-transaction adopts
	// them, so a routed transaction's spans across all touched shards
	// join the remote caller's one tree. Zero when untraced.
	traceID   uint64
	traceSpan uint64
}

// TraceID reports the adopted cross-process trace id (0 when this
// transaction was not begun with one); the front door stitches its
// request spans with it.
func (t *routerTx) TraceID() uint64 { return t.traceID }

// checkOpen orders the crashed and retired checks the way the library
// does: a crash outranks a retired handle.
func (t *routerTx) checkOpen() error {
	t.r.mu.Lock()
	crashed, gen := t.r.crashed, t.r.gen
	t.r.mu.Unlock()
	if crashed {
		return engine.ErrCrashed
	}
	if t.done || gen != t.gen {
		return engine.ErrNoTransaction
	}
	return nil
}

// SetRange implements engine.Tx: the declaration routes to the shard
// that owns the database and lands in that shard's conflict table and
// undo log.
func (t *routerTx) SetRange(db engine.DB, offset, length uint64) error {
	r := t.r
	d, ok := db.(*DB)
	if !ok || d.r != r {
		return fmt.Errorf("router: foreign DB handle %T", db)
	}
retry:
	r.mu.Lock()
	if r.crashed {
		r.mu.Unlock()
		return engine.ErrCrashed
	}
	gen := r.gen
	shard, inner := d.shard, d.inner
	r.mu.Unlock()
	if t.done || gen != t.gen {
		return engine.ErrNoTransaction
	}
	sub := t.subs[shard]
	if sub == nil {
		var err error
		sub, err = r.shards[shard].BeginTxTraced(t.traceID, t.traceSpan)
		if err != nil {
			return err
		}
		t.subs[shard] = sub
	}
	if err := sub.SetRange(inner, offset, length); err != nil {
		if errors.Is(err, core.ErrStaleDB) {
			// The database migrated away between the routing snapshot
			// above and the declaration landing on the source shard:
			// the migration drops the source copy (staling the old
			// inner handle) only after rebinding the wrapper, so a
			// stale error with a REBOUND wrapper always means "follow
			// the move" — re-route to the destination. A stale handle
			// with an unchanged binding is a genuine post-crash handle
			// and surfaces.
			r.mu.Lock()
			rebound := d.inner != inner
			r.mu.Unlock()
			if rebound {
				goto retry
			}
		}
		return err
	}
	// Feed a live migration's dirty set now, while this transaction's
	// range claim is held. The migration's final epoch begins with a
	// whole-database claim, which can only succeed after this claim
	// releases — so the record is guaranteed to be in the dirty set that
	// final epoch pushes, whether the transaction commits (re-copy the
	// new bytes) or aborts (re-copy the restored ones). Recording at
	// commit time instead loses committed writes two ways: core Commit
	// releases claims before the router regains control, so the final
	// claim can slip in and snapshot the dirty set first; and a
	// migration registered between the routing lookup above and the
	// claim would never be fed at all, while its epoch-0 sweep may already
	// have copied the range's pre-transaction bytes.
	r.mu.Lock()
	if mig := r.migrations[d.name]; mig != nil {
		mig.addDirty(offset, length)
	}
	r.mu.Unlock()
	return nil
}

// Commit implements engine.Tx. One touched shard commits through that
// shard's unchanged path; several touched shards go through the
// coordinator-driven prepare / decide / complete protocol.
func (t *routerTx) Commit() error {
	if err := t.checkOpen(); err != nil {
		return err
	}
	var live []*core.Tx
	var shardIdx []int
	for i, sub := range t.subs {
		if sub != nil {
			live = append(live, sub)
			shardIdx = append(shardIdx, i)
		}
	}
	switch len(live) {
	case 0:
		// An empty transaction has nothing to make durable.
		t.done = true
		return nil
	case 1:
		err := live[0].Commit()
		if err == nil {
			t.r.metrics.single.Inc()
			t.done = true
			return nil
		}
		if errors.Is(err, engine.ErrCrashed) || errors.Is(err, engine.ErrNoTransaction) {
			t.done = true
		}
		// Other push failures leave the handle open for Abort, exactly
		// like the library.
		return err
	default:
		return t.commitCross(live, shardIdx)
	}
}

// commitCross is the coordinator side of a cross-shard commit.
func (t *routerTx) commitCross(live []*core.Tx, shardIdx []int) error {
	r := t.r

	// Older decided commits stuck in doubt hold range claims, undo slots
	// and decision records; re-drive them before adding more load.
	r.RepairInDoubt()

	// Phase 1 — prepare every participant in parallel. Each shard pushes
	// this transaction's ranges to its own mirror set (riding that
	// shard's fan-out workers); commit words stay unpublished.
	errs := make([]error, len(live))
	var wg sync.WaitGroup
	for i, sub := range live {
		wg.Add(1)
		go func(i int, sub *core.Tx) {
			defer wg.Done()
			errs[i] = sub.Prepare()
		}(i, sub)
	}
	wg.Wait()
	if r.hookAfterPrepare != nil {
		r.hookAfterPrepare()
	}
	if err := firstError(errs); err != nil {
		// No decision exists, so aborting everywhere is safe: prepared
		// shards restore from their undo logs and repair their mirrors;
		// the failed shard does the same for whatever it half-pushed.
		t.abortSubs(live)
		r.metrics.crossAborts.Inc()
		t.done = true
		return fmt.Errorf("router: cross-shard prepare: %w", err)
	}

	// Phase 2 — the commit point: one decision record naming every
	// participant's (shard, slot, id), mirrored on shard 0's servers.
	gid, slot, err := r.publishDecision(live, shardIdx)
	if err != nil {
		t.abortSubs(live)
		r.metrics.crossAborts.Inc()
		t.done = true
		return fmt.Errorf("router: publish decision: %w", err)
	}
	_ = gid
	if r.hookAfterDecision != nil {
		r.hookAfterDecision()
	}

	// Phase 3 — complete in parallel: each participant publishes its own
	// commit word. The word push is idempotent (a failed push rolls the
	// local word back and leaves the transaction prepared), so transient
	// failures retry in place.
	for i, sub := range live {
		wg.Add(1)
		go func(i int, sub *core.Tx) {
			defer wg.Done()
			errs[i] = completePrepared(sub)
		}(i, sub)
	}
	wg.Wait()
	t.done = true
	if err := firstError(errs); err != nil {
		// The decision is durable: this transaction is committed even
		// though some participant's word push keeps failing. The record
		// stays occupied so recovery can finish it after a crash; on a
		// live system the still-prepared participants are parked for
		// RepairInDoubt, which re-drives their word pushes and releases
		// the decision slot — otherwise they would hold their range
		// claims and undo slots until the next crash.
		var stuck []*core.Tx
		for i, e := range errs {
			if e != nil && !errors.Is(e, engine.ErrCrashed) && !errors.Is(e, engine.ErrNoTransaction) {
				stuck = append(stuck, live[i])
			}
		}
		r.mu.Lock()
		if len(stuck) > 0 && !r.crashed && r.gen == t.gen {
			r.indoubt = append(r.indoubt, indoubtCommit{gid: gid, slot: slot, subs: stuck})
		}
		r.mu.Unlock()
		return fmt.Errorf("router: cross-shard completion (decision %d is durable): %w", gid, err)
	}
	r.releaseDecision(slot)
	r.metrics.cross.Inc()
	return nil
}

// completeAttempts and completeBackoff bound the in-place retry of a
// participant's commit-word push before the transaction is parked in
// doubt.
const (
	completeAttempts = 4
	completeBackoff  = 200 * time.Microsecond
)

// completePrepared publishes one participant's commit word, retrying
// transient push failures. Crash and retired-handle errors are final:
// recovery owns the completion then.
func completePrepared(sub *core.Tx) error {
	var err error
	for attempt := 0; attempt < completeAttempts; attempt++ {
		err = sub.CommitPrepared()
		if err == nil || errors.Is(err, engine.ErrCrashed) || errors.Is(err, engine.ErrNoTransaction) {
			return err
		}
		time.Sleep(completeBackoff << attempt)
	}
	return err
}

// indoubtCommit is a decided cross-shard commit some of whose
// participants still owe their commit-word push.
type indoubtCommit struct {
	gid  uint64
	slot int
	subs []*core.Tx
}

// RepairInDoubt re-drives the completion of decided cross-shard commits
// whose commit-word pushes failed transiently, freeing their shards'
// range claims, undo slots and coordinator decision slots without
// waiting for a crash. It runs opportunistically before every
// cross-shard commit and may be called directly by tooling. It returns
// the number of commits still in doubt.
func (r *Router) RepairInDoubt() int {
	r.mu.Lock()
	if r.crashed || len(r.indoubt) == 0 {
		n := len(r.indoubt)
		r.mu.Unlock()
		return n
	}
	pending := r.indoubt
	r.indoubt = nil
	r.mu.Unlock()

	var still []indoubtCommit
	for _, ic := range pending {
		var stuck []*core.Tx
		abandoned := false
		for _, sub := range ic.subs {
			err := sub.CommitPrepared()
			if err == nil {
				continue
			}
			if errors.Is(err, engine.ErrCrashed) || errors.Is(err, engine.ErrNoTransaction) {
				// The node crashed under us: the decision record stays
				// occupied and recovery finishes the commit.
				abandoned = true
				continue
			}
			stuck = append(stuck, sub)
		}
		switch {
		case abandoned:
		case len(stuck) == 0:
			r.releaseDecision(ic.slot)
			r.metrics.cross.Inc()
			r.metrics.repaired.Inc()
			r.flight.Record(flight.InDoubtRepair, "router", "in-doubt commit completed", ic.gid)
		default:
			still = append(still, indoubtCommit{gid: ic.gid, slot: ic.slot, subs: stuck})
		}
	}
	r.mu.Lock()
	if !r.crashed {
		r.indoubt = append(still, r.indoubt...)
	}
	n := len(r.indoubt)
	r.mu.Unlock()
	return n
}

// Abort implements engine.Tx: every touched shard rolls back. Sub-
// transactions already retired (by a preceding failed commit's cleanup
// or a crash) are skipped.
func (t *routerTx) Abort() error {
	if err := t.checkOpen(); err != nil {
		return err
	}
	var live []*core.Tx
	for _, sub := range t.subs {
		if sub != nil {
			live = append(live, sub)
		}
	}
	t.done = true
	return t.abortSubs(live)
}

// abortSubs aborts every given sub-transaction, tolerating ones already
// retired, and reports the first real failure.
func (t *routerTx) abortSubs(live []*core.Tx) error {
	var first error
	for _, sub := range live {
		if err := sub.Abort(); err != nil &&
			!errors.Is(err, engine.ErrNoTransaction) && first == nil {
			first = err
		}
	}
	return first
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
