package router

import (
	"errors"
	"fmt"
	"sync"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/engine"
)

// routerTx is one routed transaction: at most one sub-transaction per
// shard, begun lazily on first touch. A handle is owned by the goroutine
// that began it, like every engine.Tx.
type routerTx struct {
	r *Router
	// subs[i] is the open sub-transaction on shard i, nil if untouched.
	subs []*core.Tx
	// touched records declared ranges of migrating databases; their
	// commit re-dirties the migration copy. Empty unless a migration is
	// in flight.
	touched []touch
	done    bool
	// gen is the router generation at Begin; a crash bumps it, retiring
	// this handle.
	gen uint64
}

type touch struct {
	name string
	off  uint64
	n    uint64
}

// checkOpen orders the crashed and retired checks the way the library
// does: a crash outranks a retired handle.
func (t *routerTx) checkOpen() error {
	t.r.mu.Lock()
	crashed, gen := t.r.crashed, t.r.gen
	t.r.mu.Unlock()
	if crashed {
		return engine.ErrCrashed
	}
	if t.done || gen != t.gen {
		return engine.ErrNoTransaction
	}
	return nil
}

// SetRange implements engine.Tx: the declaration routes to the shard
// that owns the database and lands in that shard's conflict table and
// undo log.
func (t *routerTx) SetRange(db engine.DB, offset, length uint64) error {
	r := t.r
	d, ok := db.(*DB)
	if !ok || d.r != r {
		return fmt.Errorf("router: foreign DB handle %T", db)
	}
	r.mu.Lock()
	if r.crashed {
		r.mu.Unlock()
		return engine.ErrCrashed
	}
	gen := r.gen
	shard, inner := d.shard, d.inner
	migrating := r.migrations[d.name] != nil
	r.mu.Unlock()
	if t.done || gen != t.gen {
		return engine.ErrNoTransaction
	}
	sub := t.subs[shard]
	if sub == nil {
		var err error
		sub, err = r.shards[shard].BeginTx()
		if err != nil {
			return err
		}
		t.subs[shard] = sub
	}
	if err := sub.SetRange(inner, offset, length); err != nil {
		return err
	}
	if migrating {
		t.touched = append(t.touched, touch{name: d.name, off: offset, n: length})
	}
	return nil
}

// Commit implements engine.Tx. One touched shard commits through that
// shard's unchanged path; several touched shards go through the
// coordinator-driven prepare / decide / complete protocol.
func (t *routerTx) Commit() error {
	if err := t.checkOpen(); err != nil {
		return err
	}
	var live []*core.Tx
	var shardIdx []int
	for i, sub := range t.subs {
		if sub != nil {
			live = append(live, sub)
			shardIdx = append(shardIdx, i)
		}
	}
	switch len(live) {
	case 0:
		// An empty transaction has nothing to make durable.
		t.done = true
		return nil
	case 1:
		err := live[0].Commit()
		if err == nil {
			t.r.metrics.single.Inc()
			t.done = true
			t.recordDirty()
			return nil
		}
		if errors.Is(err, engine.ErrCrashed) || errors.Is(err, engine.ErrNoTransaction) {
			t.done = true
		}
		// Other push failures leave the handle open for Abort, exactly
		// like the library.
		return err
	default:
		return t.commitCross(live, shardIdx)
	}
}

// commitCross is the coordinator side of a cross-shard commit.
func (t *routerTx) commitCross(live []*core.Tx, shardIdx []int) error {
	r := t.r

	// Phase 1 — prepare every participant in parallel. Each shard pushes
	// this transaction's ranges to its own mirror set (riding that
	// shard's fan-out workers); commit words stay unpublished.
	errs := make([]error, len(live))
	var wg sync.WaitGroup
	for i, sub := range live {
		wg.Add(1)
		go func(i int, sub *core.Tx) {
			defer wg.Done()
			errs[i] = sub.Prepare()
		}(i, sub)
	}
	wg.Wait()
	if r.hookAfterPrepare != nil {
		r.hookAfterPrepare()
	}
	if err := firstError(errs); err != nil {
		// No decision exists, so aborting everywhere is safe: prepared
		// shards restore from their undo logs and repair their mirrors;
		// the failed shard does the same for whatever it half-pushed.
		t.abortSubs(live)
		r.metrics.crossAborts.Inc()
		t.done = true
		return fmt.Errorf("router: cross-shard prepare: %w", err)
	}

	// Phase 2 — the commit point: one decision record naming every
	// participant's (shard, slot, id), mirrored on shard 0's servers.
	gid, slot, err := r.publishDecision(live, shardIdx)
	if err != nil {
		t.abortSubs(live)
		r.metrics.crossAborts.Inc()
		t.done = true
		return fmt.Errorf("router: publish decision: %w", err)
	}
	_ = gid
	if r.hookAfterDecision != nil {
		r.hookAfterDecision()
	}

	// Phase 3 — complete in parallel: each participant publishes its own
	// commit word.
	for i, sub := range live {
		wg.Add(1)
		go func(i int, sub *core.Tx) {
			defer wg.Done()
			errs[i] = sub.CommitPrepared()
		}(i, sub)
	}
	wg.Wait()
	t.done = true
	if err := firstError(errs); err != nil {
		// The decision is durable: any participant that missed its word
		// push finishes this commit during recovery. The record stays
		// occupied so recovery can find it.
		return fmt.Errorf("router: cross-shard completion (decision %d is durable): %w", gid, err)
	}
	r.releaseDecision(slot)
	r.metrics.cross.Inc()
	t.recordDirty()
	return nil
}

// Abort implements engine.Tx: every touched shard rolls back. Sub-
// transactions already retired (by a preceding failed commit's cleanup
// or a crash) are skipped.
func (t *routerTx) Abort() error {
	if err := t.checkOpen(); err != nil {
		return err
	}
	var live []*core.Tx
	for _, sub := range t.subs {
		if sub != nil {
			live = append(live, sub)
		}
	}
	t.done = true
	return t.abortSubs(live)
}

// abortSubs aborts every given sub-transaction, tolerating ones already
// retired, and reports the first real failure.
func (t *routerTx) abortSubs(live []*core.Tx) error {
	var first error
	for _, sub := range live {
		if err := sub.Abort(); err != nil &&
			!errors.Is(err, engine.ErrNoTransaction) && first == nil {
			first = err
		}
	}
	return first
}

// recordDirty feeds this transaction's committed ranges on migrating
// databases into the migration's dirty set, so the next copy epoch
// re-copies them.
func (t *routerTx) recordDirty() {
	if len(t.touched) == 0 {
		return
	}
	r := t.r
	r.mu.Lock()
	for _, tc := range t.touched {
		if mig := r.migrations[tc.name]; mig != nil {
			mig.addDirty(tc.off, tc.n)
		}
	}
	r.mu.Unlock()
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
