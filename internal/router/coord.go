package router

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/engine"
)

// The coordinator's durable state is one small mirrored region on shard
// 0's memory servers, shaped like everything else in PERSEAS: fixed
// slots written with single pushes, checksummed records, and recovery by
// scanning. It holds two things:
//
//   - Decision records: one per in-flight cross-shard commit. The push
//     of a record is that transaction's atomic commit point; the record
//     is zeroed once every participant's commit word landed. Crashing
//     between those two pushes is the window recovery replays.
//   - The placement log: one appended record per completed migration,
//     naming a database's non-hash home (or a tombstone retiring the
//     override when the database is dropped). It makes placement
//     overrides survive a coordinator crash.
const (
	// CoordRegionName is the decision region's segment name on shard 0's
	// mirrors.
	CoordRegionName = "perseas.coord"

	coordMagic      = uint64(0x5045525343524430) // "PERSCRD0"
	coordHeaderSize = 64
	coordSlotSize   = 256
	coordSlots      = 128
	// Per participant: shard u16, undo-slot u16, transaction id u64.
	coordPartSize     = 12
	coordPlacementOff = coordHeaderSize + coordSlots*coordSlotSize
	coordPlacementLen = 32 << 10
	coordSize         = coordPlacementOff + coordPlacementLen

	// MaxParticipants bounds the shards one transaction may touch: what
	// fits a decision slot. 20 shards per transaction is far beyond any
	// genuine workload; transactions touching more must be split.
	MaxParticipants = (coordSlotSize - 10 - 4) / coordPartSize

	// placementTombstone is the shard value of a placement record that
	// retires a database's override: DropDB appends it so a dropped,
	// then recreated database lands back on its hash home after a crash
	// instead of recovery trusting a stale override (and sweeping the
	// live recreated copy as migration garbage). parsePlacements erases
	// the name, so compaction drops the whole history.
	placementTombstone = 0xFFFF
)

var coordCRC = crc32.MakeTable(crc32.Castagnoli)

func coordSlotOff(s int) uint64 { return coordHeaderSize + uint64(s)*coordSlotSize }

func allCoordSlots() []int {
	free := make([]int, coordSlots)
	for i := range free {
		free[i] = i
	}
	return free
}

func writeCoordHeader(buf []byte, shards int) {
	binary.BigEndian.PutUint64(buf[0:], coordMagic)
	binary.BigEndian.PutUint32(buf[8:], uint32(shards))
}

func readCoordHeader(buf []byte) (shards int, err error) {
	if len(buf) < coordHeaderSize {
		return 0, errors.New("router: coordinator region truncated")
	}
	if binary.BigEndian.Uint64(buf[0:]) != coordMagic {
		return 0, errors.New("router: bad coordinator region magic")
	}
	return int(binary.BigEndian.Uint32(buf[8:])), nil
}

// decisionPart names one participant of a decided commit.
type decisionPart struct {
	shard uint16
	slot  uint16
	txid  uint64
}

// decision is one decoded record.
type decision struct {
	gid   uint64
	parts []decisionPart
}

// encodeDecision serialises a record into slot bytes and returns the
// byte count to push:
//
//	[0:8)          global transaction id (0 = free slot)
//	[8:10)         participant count P
//	[10+12i:...)   participant i: shard u16 | undo-slot u16 | txid u64
//	[10+12P:+4)    CRC-32 (Castagnoli) of everything above
func encodeDecision(buf []byte, gid uint64, parts []decisionPart) uint64 {
	binary.BigEndian.PutUint64(buf[0:], gid)
	binary.BigEndian.PutUint16(buf[8:], uint16(len(parts)))
	off := 10
	for _, p := range parts {
		binary.BigEndian.PutUint16(buf[off:], p.shard)
		binary.BigEndian.PutUint16(buf[off+2:], p.slot)
		binary.BigEndian.PutUint64(buf[off+4:], p.txid)
		off += coordPartSize
	}
	crc := crc32.Checksum(buf[:off], coordCRC)
	binary.BigEndian.PutUint32(buf[off:], crc)
	return uint64(off + 4)
}

// parseDecision decodes slot s of a region image. ok is false for free
// slots and for records whose checksum fails (a crash mid-push: the
// decision never became durable, so the transaction aborts).
func parseDecision(local []byte, s int) (decision, bool) {
	off := coordSlotOff(s)
	buf := local[off : off+coordSlotSize]
	gid := binary.BigEndian.Uint64(buf[0:])
	if gid == 0 {
		return decision{}, false
	}
	n := int(binary.BigEndian.Uint16(buf[8:]))
	if n == 0 || n > MaxParticipants {
		return decision{}, false
	}
	end := 10 + n*coordPartSize
	if crc32.Checksum(buf[:end], coordCRC) != binary.BigEndian.Uint32(buf[end:]) {
		return decision{}, false
	}
	dec := decision{gid: gid, parts: make([]decisionPart, n)}
	for i := range dec.parts {
		p := buf[10+i*coordPartSize:]
		dec.parts[i] = decisionPart{
			shard: binary.BigEndian.Uint16(p[0:]),
			slot:  binary.BigEndian.Uint16(p[2:]),
			txid:  binary.BigEndian.Uint64(p[4:]),
		}
	}
	return dec, true
}

// publishDecision allocates a decision slot, encodes the participants
// and pushes the record — the whole transaction's atomic commit point.
func (r *Router) publishDecision(live []*core.Tx, shardIdx []int) (gid uint64, slot int, err error) {
	if len(live) > MaxParticipants {
		return 0, -1, fmt.Errorf("router: transaction touches %d shards, decision record holds %d",
			len(live), MaxParticipants)
	}
	r.mu.Lock()
	if r.crashed || r.coord == nil {
		r.mu.Unlock()
		return 0, -1, engine.ErrCrashed
	}
	if len(r.coordFree) == 0 {
		r.mu.Unlock()
		return 0, -1, errors.New("router: decision slots exhausted; too many cross-shard commits in flight")
	}
	slot = r.coordFree[len(r.coordFree)-1]
	r.coordFree = r.coordFree[:len(r.coordFree)-1]
	r.nextGID++
	gid = r.nextGID
	coord := r.coord
	parts := make([]decisionPart, len(live))
	for i, sub := range live {
		parts[i] = decisionPart{shard: uint16(shardIdx[i]), slot: uint16(sub.Slot()), txid: sub.ID()}
	}
	off := coordSlotOff(slot)
	n := encodeDecision(coord.Local[off:off+coordSlotSize], gid, parts)
	r.mu.Unlock()

	// The decision record is the cross-shard atomic commit point and
	// recovery reads it from whichever coordinator mirror it reaches
	// first, so it must land on all of them even on a quorum client.
	if err := r.nets[0].PushAcked(coord, off, n); err != nil {
		r.mu.Lock()
		r.coordFree = append(r.coordFree, slot)
		r.mu.Unlock()
		return 0, -1, err
	}
	return gid, slot, nil
}

// releaseDecision retires a completed record: the global id zeroes, the
// zero pushes, and the slot returns to the free list. A failed zero push
// leaves a stale record behind, which is harmless — replaying a decision
// whose words already landed is a no-op, and the next occupant of the
// slot overwrites it whole.
func (r *Router) releaseDecision(slot int) {
	r.mu.Lock()
	coord := r.coord
	if coord == nil || r.crashed {
		r.mu.Unlock()
		return
	}
	off := coordSlotOff(slot)
	clear(coord.Local[off : off+8])
	r.mu.Unlock()
	_ = r.nets[0].PushAcked(coord, off, 8)
	r.mu.Lock()
	if !r.crashed && r.coord != nil {
		r.coordFree = append(r.coordFree, slot)
	}
	r.mu.Unlock()
}

// appendPlacementLocked appends one placement record and returns the
// range to push. Caller holds r.mu and pushes after unlocking:
//
//	[0:2)    name length n (0 terminates the log)
//	[2:2+n)  database name
//	[2+n:+2) shard u16
//	[4+n:+4) CRC-32 (Castagnoli) of everything above
//
// When the log area fills, it is compacted in place: only the latest
// record per database matters.
func (r *Router) appendPlacementLocked(name string, shard int) (off, n uint64, err error) {
	if r.coord == nil {
		return 0, 0, engine.ErrCrashed
	}
	need := uint64(2 + len(name) + 2 + 4)
	if r.coordCursor+need+2 > coordSize {
		r.compactPlacementsLocked()
		if r.coordCursor+need+2 > coordSize {
			return 0, 0, errors.New("router: placement log full")
		}
		// The compacted log must be republished whole.
		off = coordPlacementOff
		r.encodePlacementLocked(name, shard)
		return off, r.coordCursor - off, nil
	}
	off = r.coordCursor
	r.encodePlacementLocked(name, shard)
	return off, need, nil
}

func (r *Router) encodePlacementLocked(name string, shard int) {
	buf := r.coord.Local[r.coordCursor:]
	binary.BigEndian.PutUint16(buf[0:], uint16(len(name)))
	copy(buf[2:], name)
	binary.BigEndian.PutUint16(buf[2+len(name):], uint16(shard))
	end := 4 + len(name)
	crc := crc32.Checksum(buf[:end], coordCRC)
	binary.BigEndian.PutUint32(buf[end:], crc)
	r.coordCursor += uint64(end + 4)
}

// compactPlacementsLocked rewrites the log with one record per database.
func (r *Router) compactPlacementsLocked() {
	latest, _ := parsePlacements(r.coord.Local)
	clear(r.coord.Local[coordPlacementOff:coordSize])
	r.coordCursor = coordPlacementOff
	for name, shard := range latest {
		r.encodePlacementLocked(name, shard)
	}
}

// parsePlacements scans the log, returning the latest shard per database
// and the append cursor.
func parsePlacements(local []byte) (map[string]int, uint64) {
	out := make(map[string]int)
	cursor := uint64(coordPlacementOff)
	for cursor+2 <= coordSize {
		n := uint64(binary.BigEndian.Uint16(local[cursor:]))
		if n == 0 || cursor+n+8 > coordSize {
			break
		}
		end := cursor + 4 + n
		crc := crc32.Checksum(local[cursor:end], coordCRC)
		if crc != binary.BigEndian.Uint32(local[end:]) {
			// A torn append: the record never became durable, so the
			// migration it describes never completed.
			break
		}
		name := string(local[cursor+2 : cursor+2+n])
		shard := int(binary.BigEndian.Uint16(local[cursor+2+n:]))
		if shard == placementTombstone {
			delete(out, name)
		} else {
			out[name] = shard
		}
		cursor = end + 4
	}
	return out, cursor
}
