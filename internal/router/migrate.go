package router

import (
	"errors"
	"fmt"
	"time"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/netram"
)

// Online shard migration reuses the dirty-epoch discipline of
// netram.RebuildMirror: copy the database in chunks while transactions
// keep committing against the source shard, re-copy what changed each
// epoch, and only quiesce the database for a final shrinking epoch.
// Instead of refilling a replacement mirror from the primary, the epochs
// fill a destination shard's copy from the source shard:
//
//	epoch 0   chunked sweep of the whole database; chunks under a live
//	          claim are skipped and marked dirty
//	epoch i   re-copy the ranges declared by transactions (or skipped)
//	          since the last epoch, coalesced
//	final     whole-database claim quiesces writers; the remaining dirty
//	          ranges copy over; the placement record lands in the
//	          coordinator log (the migration's durable switch point);
//	          the wrapper rebinds and the source copy drops
//
// Crash safety mirrors the cross-shard commit: before the placement
// record is durable the source shard owns the database and recovery
// drops the half-filled destination; after it, the destination owns it
// and recovery drops the undropped source.

const (
	migrateChunk = 256 << 10
	// migrateMaxEpochs bounds the catch-up loop before the final
	// quiescing epoch forces convergence.
	migrateMaxEpochs = 8
	// migrateClaimTimeout bounds how long the final epoch waits for
	// in-flight transactions to drain.
	migrateClaimTimeout = 10 * time.Second
)

// migration is the in-flight state of one database move; routerTx
// SetRange feeds its dirty set the moment a range claim is taken, so
// every range a transaction can still change is dirty before that
// transaction's claims release — which is what makes the final epoch's
// dirty snapshot complete (ClaimDB only succeeds once all claims are
// released, hence after all their dirty records landed). dirty is
// guarded by the router's mu.
type migration struct {
	dirty []netram.Range
}

// addDirty records a declared range for the next copy epoch. Caller
// holds the router's mu.
func (m *migration) addDirty(off, n uint64) {
	m.dirty = append(m.dirty, netram.Range{Offset: off, Length: n})
}

// MigrateDB moves a database to another shard while transactions keep
// running. Writers see at most a short window of engine.ErrConflict
// retries during the final epoch, the same backpressure any conflicting
// transaction sees. Handles held by the application stay valid: their
// routing rebinds atomically at the switch point.
func (r *Router) MigrateDB(name string, dest int) error {
	if dest < 0 || dest >= len(r.shards) {
		return fmt.Errorf("router: destination shard %d out of range [0,%d)", dest, len(r.shards))
	}
	r.mu.Lock()
	if r.crashed {
		r.mu.Unlock()
		return engine.ErrCrashed
	}
	if r.coord == nil {
		r.mu.Unlock()
		return errors.New("router: migration needs a multi-shard router")
	}
	if r.migrations[name] != nil {
		r.mu.Unlock()
		return fmt.Errorf("router: database %q is already migrating", name)
	}
	d, ok := r.dbs[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("router: database %q is not open", name)
	}
	src := d.shard
	if src == dest {
		r.mu.Unlock()
		return nil
	}
	srcInner := d.inner
	mig := &migration{}
	r.migrations[name] = mig
	r.mu.Unlock()

	srcLib, destLib := r.shards[src], r.shards[dest]
	fail := func(err error) error {
		r.mu.Lock()
		delete(r.migrations, name)
		r.mu.Unlock()
		return err
	}

	// A leftover destination copy from an interrupted earlier attempt is
	// garbage; recovery normally drops it, but a crash-free retry must
	// too.
	if _, err := destLib.OpenDB(name); err == nil {
		if err := destLib.DropDB(name); err != nil {
			return fail(fmt.Errorf("router: drop leftover copy of %q: %w", name, err))
		}
	}
	destInner, err := destLib.CreateDB(name, srcInner.Size())
	if err != nil {
		return fail(fmt.Errorf("router: create destination copy of %q: %w", name, err))
	}

	// Epoch 0: chunked sweep. Chunks under a live claim have an
	// undecided writer; they re-enter through the dirty set.
	size := srcInner.Size()
	buf := make([]byte, migrateChunk)
	copyRange := func(off, n uint64) error {
		for n > 0 {
			step := min(n, uint64(migrateChunk))
			if err := srcLib.SnapshotRange(srcInner, off, step, buf); err != nil {
				if errors.Is(err, engine.ErrConflict) {
					r.mu.Lock()
					mig.addDirty(off, step)
					r.mu.Unlock()
					off, n = off+step, n-step
					continue
				}
				return err
			}
			copy(destInner.Bytes()[off:off+step], buf[:step])
			if err := destLib.PushRange(destInner, off, step); err != nil {
				return err
			}
			off, n = off+step, n-step
		}
		return nil
	}
	if err := copyRange(0, size); err != nil {
		return fail(fmt.Errorf("router: migrate %q epoch 0: %w", name, err))
	}

	// Catch-up epochs: drain the dirty set while it keeps shrinking.
	for epoch := 1; epoch <= migrateMaxEpochs; epoch++ {
		r.mu.Lock()
		dirty := netram.Coalesce(mig.dirty)
		mig.dirty = nil
		r.mu.Unlock()
		if len(dirty) == 0 {
			break
		}
		for _, rg := range dirty {
			if err := copyRange(rg.Offset, rg.Length); err != nil {
				return fail(fmt.Errorf("router: migrate %q epoch %d: %w", name, epoch, err))
			}
		}
	}

	// Final epoch: quiesce the database. New SetRange declarations on it
	// conflict against the whole-database claim until the switch; the
	// claim itself waits for in-flight holders to finish.
	if r.hookBeforeQuiesce != nil {
		r.hookBeforeQuiesce()
	}
	deadline := time.Now().Add(migrateClaimTimeout)
	for {
		err := srcLib.ClaimDB(srcInner)
		if err == nil {
			break
		}
		if !errors.Is(err, engine.ErrConflict) {
			return fail(fmt.Errorf("router: quiesce %q: %w", name, err))
		}
		if time.Now().After(deadline) {
			return fail(fmt.Errorf("router: quiesce %q: transactions did not drain: %w", name, err))
		}
		time.Sleep(200 * time.Microsecond)
	}
	release := func() { srcLib.ReleaseDBClaim() }

	// Under the claim the local copy is exactly the committed state:
	// take it whole (local memory is cheap; the wire is not) and push
	// only what the epochs have not already mirrored.
	copy(destInner.Bytes(), srcInner.Bytes())
	r.mu.Lock()
	final := netram.Coalesce(mig.dirty)
	mig.dirty = nil
	r.mu.Unlock()
	for _, rg := range final {
		if err := destLib.PushRange(destInner, rg.Offset, rg.Length); err != nil {
			release()
			return fail(fmt.Errorf("router: migrate %q final push: %w", name, err))
		}
	}

	// The durable switch point: the placement record. Before this push
	// the source owns the database; after it, the destination does.
	r.mu.Lock()
	if r.crashed || r.coord == nil {
		r.mu.Unlock()
		release()
		return fail(engine.ErrCrashed)
	}
	coord := r.coord
	off, n, err := r.appendPlacementLocked(name, dest)
	if err != nil {
		r.mu.Unlock()
		release()
		return fail(fmt.Errorf("router: record placement of %q: %w", name, err))
	}
	r.mu.Unlock()
	if err := r.nets[0].PushAcked(coord, off, n); err != nil {
		release()
		return fail(fmt.Errorf("router: publish placement of %q: %w", name, err))
	}

	// Rebind the live wrapper; from here every new SetRange routes to
	// the destination shard.
	r.mu.Lock()
	d.shard = dest
	d.inner = destInner
	r.placed[name] = dest
	r.overridden[name] = true
	delete(r.migrations, name)
	r.mu.Unlock()

	// Drop the source copy; the migration claim releases with it.
	if err := srcLib.DropDBMigrated(name); err != nil {
		return fmt.Errorf("router: drop source copy of %q: %w", name, err)
	}
	r.metrics.migrations.Inc()
	return nil
}
