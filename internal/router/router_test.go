package router

import (
	"bytes"
	"errors"
	"testing"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/enginetest"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

// testRig is a sharded router over in-process mirrors, with direct
// handles on every layer for fault injection.
type testRig struct {
	r       *Router
	libs    []*core.Library
	nets    []*netram.Client
	servers [][]*memserver.Server
	clock   *simclock.SimClock
}

// newTestRig wires shards×mirrors in-process memory servers on one
// simulated clock.
func newTestRig(t *testing.T, shards, mirrors int) *testRig {
	t.Helper()
	rig := &testRig{clock: simclock.NewSim()}
	for s := 0; s < shards; s++ {
		var ms []netram.Mirror
		var srvs []*memserver.Server
		for m := 0; m < mirrors; m++ {
			srv := memserver.New()
			tr, err := transport.NewInProc(srv, sci.DefaultParams(), rig.clock)
			if err != nil {
				t.Fatal(err)
			}
			ms = append(ms, netram.Mirror{Name: srv.Label(), T: tr})
			srvs = append(srvs, srv)
		}
		net, err := netram.NewClient(ms)
		if err != nil {
			t.Fatal(err)
		}
		lib, err := core.Init(net, rig.clock)
		if err != nil {
			t.Fatal(err)
		}
		rig.libs = append(rig.libs, lib)
		rig.nets = append(rig.nets, net)
		rig.servers = append(rig.servers, srvs)
	}
	r, err := New(rig.libs)
	if err != nil {
		t.Fatal(err)
	}
	rig.r = r
	return rig
}

// dbOnShard finds a database name that hashes to the wanted shard.
func dbOnShard(t *testing.T, r *Router, shard int, tag string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		name := tag + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
		if r.ShardFor(name) == shard {
			return name
		}
	}
	t.Fatalf("no name found for shard %d", shard)
	return ""
}

// mkDB creates and initialises a database filled with pattern.
func mkDB(t *testing.T, e engine.Engine, name string, size uint64, pattern byte) engine.DB {
	t.Helper()
	db, err := e.CreateDB(name, size)
	if err != nil {
		t.Fatal(err)
	}
	b := db.Bytes()
	for i := range b {
		b[i] = pattern
	}
	if err := e.InitDB(db); err != nil {
		t.Fatal(err)
	}
	return db
}

// write runs one transaction setting db[off:off+len(data)) = data.
func write(t *testing.T, e engine.Engine, db engine.DB, off uint64, data []byte) {
	t.Helper()
	tx, err := e.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, off, uint64(len(data))); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[off:], data)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// verifyMirrors checks local/remote agreement on every shard.
func (rig *testRig) verifyMirrors(t *testing.T) {
	t.Helper()
	for s, net := range rig.nets {
		mm, err := net.VerifyAll()
		if err != nil {
			t.Fatalf("shard %d verify: %v", s, err)
		}
		if len(mm) != 0 {
			t.Fatalf("shard %d: %d local/mirror mismatches: %+v", s, len(mm), mm)
		}
	}
}

func TestCrossShardCommitSurvivesCrash(t *testing.T) {
	rig := newTestRig(t, 2, 2)
	r := rig.r
	name0 := dbOnShard(t, r, 0, "x")
	name1 := dbOnShard(t, r, 1, "x")
	db0 := mkDB(t, r, name0, 4096, 0xAA)
	db1 := mkDB(t, r, name1, 4096, 0xBB)

	tx, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range []engine.DB{db0, db1} {
		if err := tx.SetRange(db, 100, 8); err != nil {
			t.Fatal(err)
		}
		copy(db.Bytes()[100:], []byte("DECIDED!"))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().CrossShardCommits; got != 1 {
		t.Fatalf("CrossShardCommits = %d, want 1", got)
	}
	rig.verifyMirrors(t)

	if err := r.Crash(fault.CrashPower); err != nil {
		t.Fatal(err)
	}
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{name0, name1} {
		db, err := r.OpenDB(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := db.Bytes()[100:108]; !bytes.Equal(got, []byte("DECIDED!")) {
			t.Fatalf("%s[100:108] = %q after recovery, want DECIDED!", name, got)
		}
	}
}

func TestCrossShardAbortRestoresBothShards(t *testing.T) {
	rig := newTestRig(t, 2, 2)
	r := rig.r
	db0 := mkDB(t, r, dbOnShard(t, r, 0, "a"), 4096, 0x11)
	db1 := mkDB(t, r, dbOnShard(t, r, 1, "a"), 4096, 0x22)

	tx, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range []engine.DB{db0, db1} {
		if err := tx.SetRange(db, 0, 64); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			db.Bytes()[i] = 0xFF
		}
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if db0.Bytes()[i] != 0x11 {
			t.Fatalf("db0[%d] = %#x after abort, want 0x11", i, db0.Bytes()[i])
		}
		if db1.Bytes()[i] != 0x22 {
			t.Fatalf("db1[%d] = %#x after abort, want 0x22", i, db1.Bytes()[i])
		}
	}
	rig.verifyMirrors(t)
}

func TestSingleShardCommitTakesPlainPath(t *testing.T) {
	rig := newTestRig(t, 2, 1)
	r := rig.r
	db := mkDB(t, r, dbOnShard(t, r, 1, "s"), 1024, 0)
	write(t, r, db, 0, []byte("solo"))
	st := r.Stats()
	if st.SingleShardCommits != 1 || st.CrossShardCommits != 0 {
		t.Fatalf("stats = %+v, want exactly one single-shard commit", st)
	}
	// No decision slot may have been consumed.
	r.mu.Lock()
	free := len(r.coordFree)
	r.mu.Unlock()
	if free != coordSlots {
		t.Fatalf("decision slots free = %d, want %d", free, coordSlots)
	}
}

func TestCrossShardConflictArbitration(t *testing.T) {
	rig := newTestRig(t, 2, 1)
	r := rig.r
	db0 := mkDB(t, r, dbOnShard(t, r, 0, "c"), 4096, 0)
	db1 := mkDB(t, r, dbOnShard(t, r, 1, "c"), 4096, 0)

	tx1, _ := r.Begin()
	if err := tx1.SetRange(db0, 0, 128); err != nil {
		t.Fatal(err)
	}
	if err := tx1.SetRange(db1, 0, 128); err != nil {
		t.Fatal(err)
	}
	tx2, _ := r.Begin()
	if err := tx2.SetRange(db1, 64, 128); !errors.Is(err, engine.ErrConflict) {
		t.Fatalf("overlapping cross-shard SetRange: %v, want ErrConflict", err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestRetiredHandleAfterRecovery(t *testing.T) {
	rig := newTestRig(t, 2, 1)
	r := rig.r
	tx, err := r.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Crash(fault.CrashProcess); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, engine.ErrCrashed) {
		t.Fatalf("Commit after crash: %v, want ErrCrashed", err)
	}
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, engine.ErrNoTransaction) {
		t.Fatalf("Commit on pre-crash handle after recovery: %v, want ErrNoTransaction", err)
	}
}

// newShardedEngine adapts the rig to the conformance suite's factory.
func newShardedEngine(shards int) func(t *testing.T) engine.Engine {
	return func(t *testing.T) engine.Engine {
		return newTestRig(t, shards, 2).r
	}
}

// TestRouterEngineConformance runs the full engine contract suite —
// lifecycle, visibility, aborts, conflicts, crash/recovery, concurrent
// commits, randomised crash schedules — against sharded routers.
func TestRouterEngineConformance(t *testing.T) {
	enginetest.Run(t, "router-2", newShardedEngine(2), enginetest.Caps{
		SurvivesKind:    func(fault.CrashKind) bool { return true },
		DurableOnCommit: true,
	})
}

func TestRouterEngineConformance3Shards(t *testing.T) {
	enginetest.Run(t, "router-3", newShardedEngine(3), enginetest.Caps{
		SurvivesKind:    func(fault.CrashKind) bool { return true },
		DurableOnCommit: true,
	})
}
