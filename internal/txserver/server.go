// Package txserver is the transaction front door: it serves the
// PERSEAS transaction API itself — Begin/SetRange/Commit/Abort and the
// database lifecycle — over the wire protocol, on top of any
// engine.Engine (the concurrent PERSEAS library, a sequential core, or
// the sharded router). The paper's client-server split (Section 4)
// stops at raw remote memory; this layer completes it, so many client
// processes can drive one PERSEAS installation without linking the
// library.
//
// Connections are pipelined: a client may stream many requests before
// reading replies. Every request carries a correlation ID the server
// echoes, and each request is handled on its own goroutine, so replies
// complete out of order — a long commit never convoys an independent
// transaction's begin behind it. Requests touching the *same*
// transaction must be awaited by the client before sending the next
// (the engine.Tx ownership contract on the wire); requests for
// different transactions interleave freely on one connection.
//
// Commits pass through a cross-client group-commit gate (convoy.go)
// that generalises the TCP transport's leader-handoff write combiner:
// commits arriving while a mirror fan-out window is in flight batch
// into the next window and run as one overlapping fan-out.
//
// Backpressure is explicit. Each connection has a bounded number of
// in-flight requests and the server a bounded number of live
// transactions; beyond either bound the server answers a typed BUSY
// reply instead of queueing without limit. Slow readers are bounded by
// per-frame write deadlines, and a connection-count limit turns away
// accepts beyond capacity with a BUSY reply. A frame that fails to
// decode draws a typed BAD-REQUEST reply and the connection is closed
// — one malformed client cannot wedge the convoy or the process.
package txserver

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/flight"
	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/trace"
	"github.com/ics-forth/perseas/internal/wire"
)

// CommitMode selects how commits reach the engine.
type CommitMode int

const (
	// GroupCommit batches commits arriving during a mirror fan-out
	// window into the next window (the default).
	GroupCommit CommitMode = iota
	// SerialCommit runs one commit at a time, each paying its own
	// fan-out — the no-batching baseline the benchmarks compare
	// against.
	SerialCommit
)

// String implements fmt.Stringer.
func (m CommitMode) String() string {
	if m == SerialCommit {
		return "serial"
	}
	return "group"
}

// Defaults. MaxConns leaves headroom over the 10k-connection serving
// target; MaxInFlight bounds one connection's pipeline; MaxTxs bounds
// the server-wide transaction working set (and with it the conflict
// table's occupancy).
const (
	DefaultMaxConns     = 16384
	DefaultMaxInFlight  = 64
	DefaultMaxTxs       = 8192
	DefaultWriteTimeout = 10 * time.Second
)

// Metrics are the server's counters and distributions.
type Metrics struct {
	// ConnsTotal counts accepted connections; ConnsRejected those
	// turned away at the connection limit.
	ConnsTotal    obs.Counter
	ConnsRejected obs.Counter
	// Requests counts every decoded request; Busy the admission
	// rejections; Malformed the connections dropped over undecodable
	// frames.
	Requests  obs.Counter
	Busy      obs.Counter
	Malformed obs.Counter
	// Transaction outcomes.
	TxsBegun     obs.Counter
	TxsCommitted obs.Counter
	TxsAborted   obs.Counter
	// Depth samples a connection's in-flight request count at each
	// arrival; Batch is the group-commit convoy size distribution.
	Depth obs.Histogram
	Batch obs.Histogram
}

// Option configures a Server.
type Option func(*Server)

// WithMaxConns bounds concurrent connections (0 keeps the default).
func WithMaxConns(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxConns = n
		}
	}
}

// WithMaxInFlight bounds one connection's pipelined requests.
func WithMaxInFlight(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxInFlight = n
		}
	}
}

// WithMaxTxs bounds server-wide live transactions.
func WithMaxTxs(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxTxs = n
		}
	}
}

// WithWriteTimeout bounds each response frame's write (slow readers).
func WithWriteTimeout(d time.Duration) Option {
	return func(s *Server) {
		if d > 0 {
			s.writeTimeout = d
		}
	}
}

// WithCommitMode selects the commit gate policy.
func WithCommitMode(m CommitMode) Option {
	return func(s *Server) { s.mode = m }
}

// WithFaultInjection serves OpTxCrash/OpTxRecover, so conformance and
// chaos harnesses can exercise the recovery path over the wire. Never
// enable it on a production listener.
func WithFaultInjection() Option {
	return func(s *Server) { s.faultOps = true }
}

// WithTracer records per-request server spans (and group-commit
// events) on rec, stitched to the engine's transaction trees when the
// engine exposes trace ids.
func WithTracer(rec *trace.Recorder) Option {
	return func(s *Server) { s.tracer = rec }
}

// WithFlightRecorder records the server's anomalies — admission
// rejections, malformed frames — on r for post-incident replay.
func WithFlightRecorder(r *flight.Recorder) Option {
	return func(s *Server) { s.flight = r }
}

// serverDB is one database the server holds open, keyed by the wire
// handle it issued.
type serverDB struct {
	id     uint32
	db     engine.DB
	inited bool
}

// txRange is one declared range, remembered for commit validation.
type txRange struct {
	db          uint32
	off, length uint64
}

// serverTx is one live transaction. mu serialises operations on the
// handle — the engine.Tx ownership contract, enforced server-side so a
// client that pipelines same-transaction requests anyway cannot
// corrupt the engine.
type serverTx struct {
	id      uint64
	tx      engine.Tx
	owner   *srvConn
	traceID uint64
	mu      sync.Mutex
	ranges  []txRange
	done    bool
}

// Server serves the transaction API on top of an engine.
type Server struct {
	eng          engine.Engine
	maxConns     int
	maxInFlight  int
	maxTxs       int
	writeTimeout time.Duration
	mode         CommitMode
	faultOps     bool
	tracer       *trace.Recorder
	flight       *flight.Recorder

	conns   atomic.Int64
	liveTxs atomic.Int64

	mu     sync.Mutex
	txs    map[uint64]*serverTx
	dbs    map[uint32]*serverDB
	byName map[string]uint32
	nextTx uint64
	nextDB uint32

	gate convoy
	// serial is the SerialCommit gate: one commit at a time.
	serial sync.Mutex

	m Metrics
}

// New builds a server over eng.
func New(eng engine.Engine, opts ...Option) *Server {
	s := &Server{
		eng:          eng,
		maxConns:     DefaultMaxConns,
		maxInFlight:  DefaultMaxInFlight,
		maxTxs:       DefaultMaxTxs,
		writeTimeout: DefaultWriteTimeout,
		txs:          make(map[uint64]*serverTx),
		dbs:          make(map[uint32]*serverDB),
		byName:       make(map[string]uint32),
	}
	for _, o := range opts {
		o(s)
	}
	s.gate.observe = func(n int) {
		s.m.Batch.Observe(uint64(n))
		s.tracer.Event(trace.LayerServer, "convoy", uint64(n))
	}
	return s
}

// Metrics exposes the server's counters.
func (s *Server) Metrics() *Metrics { return &s.m }

// Mode reports the commit gate policy.
func (s *Server) Mode() CommitMode { return s.mode }

// Conns reports the live connection count.
func (s *Server) Conns() int { return int(s.conns.Load()) }

// LiveTxs reports the live transaction count.
func (s *Server) LiveTxs() int { return int(s.liveTxs.Load()) }

// RegisterMetrics publishes the server's counters on reg under the
// perseas_txserver_* names.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	m := &s.m
	reg.RegisterGauge("perseas_txserver_connections", "live client connections",
		func() uint64 { return uint64(s.conns.Load()) })
	reg.RegisterGauge("perseas_txserver_inflight_txs", "live transactions",
		func() uint64 { return uint64(s.liveTxs.Load()) })
	reg.RegisterCounter("perseas_txserver_conns_total", "connections accepted", &m.ConnsTotal)
	reg.RegisterCounter("perseas_txserver_conns_rejected_total", "connections turned away at the limit", &m.ConnsRejected)
	reg.RegisterCounter("perseas_txserver_requests_total", "requests decoded", &m.Requests)
	reg.RegisterCounter("perseas_txserver_busy_total", "requests answered BUSY by admission control", &m.Busy)
	reg.RegisterCounter("perseas_txserver_malformed_total", "connections dropped over undecodable frames", &m.Malformed)
	reg.RegisterCounter("perseas_txserver_txs_begun_total", "transactions begun", &m.TxsBegun)
	reg.RegisterCounter("perseas_txserver_txs_committed_total", "transactions committed", &m.TxsCommitted)
	reg.RegisterCounter("perseas_txserver_txs_aborted_total", "transactions aborted", &m.TxsAborted)
	reg.RegisterHistogram("perseas_txserver_pipeline_depth", "in-flight requests per connection at arrival", &m.Depth)
	reg.RegisterHistogram("perseas_txserver_commit_batch", "commits per group-commit convoy", &m.Batch)
}

// Stats assembles the wire-visible counter snapshot.
func (s *Server) Stats() wire.TxStats {
	batch := s.m.Batch.Snapshot()
	depth := s.m.Depth.Snapshot()
	return wire.TxStats{
		Conns:           uint64(s.conns.Load()),
		ConnsTotal:      s.m.ConnsTotal.Load(),
		ConnsRejected:   s.m.ConnsRejected.Load(),
		TxsBegun:        s.m.TxsBegun.Load(),
		TxsCommitted:    s.m.TxsCommitted.Load(),
		TxsAborted:      s.m.TxsAborted.Load(),
		TxsInFlight:     uint64(s.liveTxs.Load()),
		BusyRejected:    s.m.Busy.Load(),
		MalformedFrames: s.m.Malformed.Load(),
		Convoys:         batch.Count,
		ConvoyCommits:   batch.Sum,
		BatchP50:        uint64(batch.Quantile(0.50)),
		BatchP99:        uint64(batch.Quantile(0.99)),
		BatchMax:        batch.Max,
		DepthP50:        uint64(depth.Quantile(0.50)),
		DepthP99:        uint64(depth.Quantile(0.99)),
		DepthMax:        depth.Max,
	}
}

// Serve accepts connections on l until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		nc, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if int(s.conns.Load()) >= s.maxConns {
			s.m.ConnsRejected.Inc()
			s.flight.Record(flight.ConnReject, "txserver", "connection limit reached", uint64(s.maxConns))
			_ = nc.SetWriteDeadline(time.Now().Add(s.writeTimeout))
			_ = wire.SendResponse(nc, &wire.Response{
				Status: wire.StatusError, Code: wire.TxBusy,
				Err: "txserver: connection limit reached",
			})
			nc.Close()
			continue
		}
		s.conns.Add(1)
		s.m.ConnsTotal.Inc()
		go s.serveConn(nc)
	}
}

// srvConn is one client connection's state.
type srvConn struct {
	s        *Server
	c        net.Conn
	out      chan *wire.Response
	inFlight atomic.Int64
	handlers sync.WaitGroup
}

// ServeConn serves a single already-accepted connection (tests and
// in-process harnesses). It returns when the connection is done.
func (s *Server) ServeConn(nc net.Conn) {
	s.conns.Add(1)
	s.m.ConnsTotal.Inc()
	s.serveConn(nc)
}

func (s *Server) serveConn(nc net.Conn) {
	defer s.conns.Add(-1)
	c := &srvConn{s: s, c: nc, out: make(chan *wire.Response, 256)}
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		c.writeLoop()
	}()

	c.readLoop()
	// Handlers still running may enqueue; wait them out, then let the
	// writer drain and exit.
	c.handlers.Wait()
	close(c.out)
	writer.Wait()
	nc.Close()
	s.releaseConn(c)
}

// readLoop decodes frames and dispatches handlers until the stream
// ends or a frame fails to decode.
func (c *srvConn) readLoop() {
	s := c.s
	for {
		req, err := wire.RecvRequest(c.c)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) {
				return
			}
			// The frame arrived but did not decode: answer with a typed
			// error so the client learns why, then drop the connection —
			// resynchronising an undecodable stream is hopeless.
			s.m.Malformed.Inc()
			s.flight.Record(flight.MalformedFrame, "txserver", err.Error(), 0)
			c.out <- &wire.Response{
				Status: wire.StatusError, Code: wire.TxBadRequest,
				Err: fmt.Sprintf("txserver: malformed frame: %v", err),
			}
			return
		}
		s.m.Requests.Inc()
		depth := c.inFlight.Add(1)
		s.m.Depth.Observe(uint64(depth))
		if int(depth) > s.maxInFlight {
			s.m.Busy.Inc()
			s.flight.Record(flight.BusyReject, "txserver", "connection pipeline limit reached", uint64(depth))
			c.finish(&wire.Response{
				Status: wire.StatusError, ID: req.ID, Code: wire.TxBusy,
				Err: "txserver: connection pipeline limit reached",
			})
			continue
		}
		c.handlers.Add(1)
		go func() {
			defer c.handlers.Done()
			c.finish(s.handle(c, req))
		}()
	}
}

// finish enqueues a response and retires its request's pipeline slot.
func (c *srvConn) finish(resp *wire.Response) {
	c.out <- resp
	c.inFlight.Add(-1)
}

// writeLoop writes responses under a per-frame deadline. After a write
// error the connection is torn down and the remaining responses drain
// into the void, so handlers never block on a dead peer.
func (c *srvConn) writeLoop() {
	dead := false
	for resp := range c.out {
		if dead {
			continue
		}
		_ = c.c.SetWriteDeadline(time.Now().Add(c.s.writeTimeout))
		if err := wire.SendResponse(c.c, resp); err != nil {
			dead = true
			c.c.Close() // unblock the read loop too
		}
	}
}

// releaseConn aborts the connection's orphaned transactions, so a
// dying client's conflict-table claims do not outlive it.
func (s *Server) releaseConn(c *srvConn) {
	s.mu.Lock()
	var orphans []*serverTx
	for id, st := range s.txs {
		if st.owner == c {
			orphans = append(orphans, st)
			delete(s.txs, id)
		}
	}
	s.mu.Unlock()
	for _, st := range orphans {
		st.mu.Lock()
		if !st.done {
			st.done = true
			_ = st.tx.Abort()
			s.liveTxs.Add(-1)
			s.m.TxsAborted.Inc()
		}
		st.mu.Unlock()
	}
}

// handle executes one request and builds its response.
func (s *Server) handle(c *srvConn, req *wire.Request) *wire.Response {
	switch req.Op {
	case wire.OpTxBegin:
		return s.handleBegin(c, req)
	case wire.OpTxSetRange:
		return s.handleSetRange(c, req)
	case wire.OpTxCommit:
		return s.handleCommit(c, req)
	case wire.OpTxAbort:
		return s.handleAbort(c, req)
	case wire.OpTxOpenDB:
		return s.handleOpenDB(req)
	case wire.OpTxCreateDB:
		return s.handleCreateDB(req)
	case wire.OpTxRead:
		return s.handleRead(req)
	case wire.OpTxLoad:
		return s.handleLoad(req)
	case wire.OpTxInitDB:
		return s.handleInitDB(req)
	case wire.OpTxStats:
		stats := s.Stats()
		return &wire.Response{Status: wire.StatusOK, ID: req.ID, Data: wire.EncodeTxStats(&stats)}
	case wire.OpTxCrash:
		return s.handleCrash(req)
	case wire.OpTxRecover:
		return s.handleRecover(req)
	default:
		return fail(req, wire.TxError, "txserver: unexpected op %s", req.Op)
	}
}

// fail builds a typed error response.
func fail(req *wire.Request, code wire.TxCode, format string, args ...any) *wire.Response {
	return &wire.Response{
		Status: wire.StatusError, ID: req.ID, Code: code,
		Err: fmt.Sprintf(format, args...),
	}
}

// engineFail maps an engine error onto its wire code.
func engineFail(req *wire.Request, err error) *wire.Response {
	return &wire.Response{
		Status: wire.StatusError, ID: req.ID, Code: codeOf(err), Err: err.Error(),
	}
}

// codeOf classifies an engine error.
func codeOf(err error) wire.TxCode {
	switch {
	case errors.Is(err, engine.ErrBusy):
		return wire.TxBusy
	case errors.Is(err, engine.ErrConflict):
		return wire.TxConflict
	case errors.Is(err, engine.ErrNoTransaction):
		return wire.TxNoTransaction
	case errors.Is(err, engine.ErrInTransaction):
		return wire.TxInTransaction
	case errors.Is(err, engine.ErrCrashed):
		return wire.TxCrashed
	case errors.Is(err, engine.ErrUnrecoverable):
		return wire.TxUnrecoverable
	default:
		return wire.TxError
	}
}

func (s *Server) handleBegin(c *srvConn, req *wire.Request) *wire.Response {
	if int(s.liveTxs.Load()) >= s.maxTxs {
		s.m.Busy.Inc()
		s.flight.Record(flight.BusyReject, "txserver", "transaction limit reached", uint64(s.maxTxs))
		return fail(req, wire.TxBusy, "txserver: transaction limit reached")
	}
	sp := s.tracer.LinkedSpanFrom(trace.LayerServer, "serve_begin", req.TraceID, req.TraceSpan)
	tx, err := s.begin(req)
	if err != nil {
		sp.End()
		// The engine's own capacity limit (undo slots exhausted) is as
		// retryable as the server's admission gate; count it the same.
		if errors.Is(err, engine.ErrBusy) {
			s.m.Busy.Inc()
			s.flight.Record(flight.BusyReject, "txserver", "engine at capacity", 0)
		}
		return engineFail(req, err)
	}
	st := &serverTx{tx: tx, owner: c, traceID: req.TraceID}
	if st.traceID == 0 {
		if tt, ok := tx.(interface{ TraceID() uint64 }); ok {
			st.traceID = tt.TraceID()
		}
	}
	s.mu.Lock()
	s.nextTx++
	st.id = s.nextTx
	s.txs[st.id] = st
	s.mu.Unlock()
	s.liveTxs.Add(1)
	s.m.TxsBegun.Inc()
	sp.EndN(st.id)
	return &wire.Response{Status: wire.StatusOK, ID: req.ID, Tx: st.id}
}

// begin starts an engine transaction, handing a propagated trace
// context to engines that can adopt one (engine.TraceBeginner) so the
// engine's own spans land in the remote client's trace tree.
func (s *Server) begin(req *wire.Request) (engine.Tx, error) {
	if req.TraceID != 0 {
		if tb, ok := s.eng.(engine.TraceBeginner); ok {
			return tb.BeginTraced(req.TraceID, req.TraceSpan)
		}
	}
	return s.eng.Begin()
}

// lookupTx resolves a transaction handle for c; a handle another
// connection owns is as unknown as one that never existed.
func (s *Server) lookupTx(c *srvConn, id uint64) *serverTx {
	s.mu.Lock()
	st := s.txs[id]
	s.mu.Unlock()
	if st == nil || st.owner != c {
		return nil
	}
	return st
}

// lookupDB resolves a database handle.
func (s *Server) lookupDB(id uint32) *serverDB {
	s.mu.Lock()
	db := s.dbs[id]
	s.mu.Unlock()
	return db
}

// dropTx retires a finished transaction. Caller holds st.mu; the done
// guard keeps a crash wipe and a concurrent finisher from both
// decrementing the live count.
func (s *Server) dropTx(st *serverTx) {
	if st.done {
		return
	}
	st.done = true
	s.liveTxs.Add(-1)
	s.mu.Lock()
	delete(s.txs, st.id)
	s.mu.Unlock()
}

func (s *Server) handleSetRange(c *srvConn, req *wire.Request) *wire.Response {
	st := s.lookupTx(c, req.Tx)
	if st == nil {
		return fail(req, wire.TxUnknownTx, "txserver: no transaction %d", req.Tx)
	}
	db := s.lookupDB(req.Seg)
	if db == nil {
		return fail(req, wire.TxUnknownDB, "txserver: no database handle %d", req.Seg)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.done {
		return fail(req, wire.TxUnknownTx, "txserver: transaction %d already finished", req.Tx)
	}
	sp := s.tracer.LinkedSpanFrom(trace.LayerServer, "serve_set_range", st.traceID, req.TraceSpan)
	err := st.tx.SetRange(db.db, req.Offset, req.Size)
	sp.EndN(req.Size)
	if err != nil {
		return engineFail(req, err)
	}
	st.ranges = append(st.ranges, txRange{db: req.Seg, off: req.Offset, length: req.Size})
	// Hand back the range's current bytes. The conflict table just
	// granted this transaction the range, so nobody else writes it until
	// commit/abort — the client uses the copy to bring its local replica
	// up to date with other clients' committed updates.
	cur := make([]byte, req.Size)
	copy(cur, db.db.Bytes()[req.Offset:req.Offset+req.Size])
	return &wire.Response{Status: wire.StatusOK, ID: req.ID, Data: cur}
}

func (s *Server) handleCommit(c *srvConn, req *wire.Request) *wire.Response {
	st := s.lookupTx(c, req.Tx)
	if st == nil {
		return fail(req, wire.TxUnknownTx, "txserver: no transaction %d", req.Tx)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.done {
		return fail(req, wire.TxUnknownTx, "txserver: transaction %d already finished", req.Tx)
	}
	// Apply the client's final bytes, each write validated against the
	// transaction's declared ranges — the server never lets one client
	// scribble outside what the conflict table granted it.
	for _, e := range req.Batch {
		if !st.covers(e.Seg, e.Offset, uint64(len(e.Data))) {
			return fail(req, wire.TxBadRequest,
				"txserver: commit write db=%d [%d,+%d) outside declared ranges",
				e.Seg, e.Offset, len(e.Data))
		}
		db := s.lookupDB(e.Seg)
		if db == nil {
			return fail(req, wire.TxUnknownDB, "txserver: no database handle %d", e.Seg)
		}
		copy(db.db.Bytes()[e.Offset:], e.Data)
	}
	sp := s.tracer.LinkedSpanFrom(trace.LayerServer, "serve_commit", st.traceID, req.TraceSpan)
	err := s.commit(st.tx.Commit)
	sp.EndN(uint64(len(req.Batch)))
	s.dropTx(st)
	if err != nil {
		return engineFail(req, err)
	}
	s.m.TxsCommitted.Inc()
	return &wire.Response{Status: wire.StatusOK, ID: req.ID}
}

// covers reports whether [off, off+n) of db lies inside one declared
// range.
func (st *serverTx) covers(db uint32, off, n uint64) bool {
	for _, r := range st.ranges {
		if r.db == db && off >= r.off && off+n <= r.off+r.length {
			return true
		}
	}
	return false
}

// commit runs an engine commit through the configured gate.
func (s *Server) commit(do commitFn) error {
	if s.mode == SerialCommit {
		s.serial.Lock()
		err := do()
		s.serial.Unlock()
		s.m.Batch.Observe(1)
		return err
	}
	return s.gate.run(do)
}

func (s *Server) handleAbort(c *srvConn, req *wire.Request) *wire.Response {
	st := s.lookupTx(c, req.Tx)
	if st == nil {
		return fail(req, wire.TxUnknownTx, "txserver: no transaction %d", req.Tx)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.done {
		return fail(req, wire.TxUnknownTx, "txserver: transaction %d already finished", req.Tx)
	}
	sp := s.tracer.LinkedSpanFrom(trace.LayerServer, "serve_abort", st.traceID, req.TraceSpan)
	err := st.tx.Abort()
	sp.End()
	s.dropTx(st)
	if err != nil {
		return engineFail(req, err)
	}
	s.m.TxsAborted.Inc()
	return &wire.Response{Status: wire.StatusOK, ID: req.ID}
}

func (s *Server) handleOpenDB(req *wire.Request) *wire.Response {
	db, err := s.eng.OpenDB(req.Name)
	if err != nil {
		return engineFail(req, err)
	}
	h := s.publishDB(db, true)
	return &wire.Response{Status: wire.StatusOK, ID: req.ID, Seg: h, Size: db.Size()}
}

func (s *Server) handleCreateDB(req *wire.Request) *wire.Response {
	db, err := s.eng.CreateDB(req.Name, req.Size)
	if err != nil {
		return engineFail(req, err)
	}
	h := s.publishDB(db, false)
	return &wire.Response{Status: wire.StatusOK, ID: req.ID, Seg: h, Size: db.Size()}
}

// publishDB issues a wire handle for db. Reopening a name issues a
// fresh handle bound to the engine's current region — what a client
// needs after Recover, when pre-crash handles must go stale rather
// than alias dead buffers.
func (s *Server) publishDB(db engine.DB, inited bool) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextDB++
	h := s.nextDB
	s.dbs[h] = &serverDB{id: h, db: db, inited: inited}
	if prev, ok := s.byName[db.Name()]; ok {
		// The previous handle for this name no longer reaches the live
		// region; retire it so misuse surfaces as UNKNOWN-DB.
		if old := s.dbs[prev]; old != nil && old.db != db {
			delete(s.dbs, prev)
		}
	}
	s.byName[db.Name()] = h
	return h
}

func (s *Server) handleRead(req *wire.Request) *wire.Response {
	db := s.lookupDB(req.Seg)
	if db == nil {
		return fail(req, wire.TxUnknownDB, "txserver: no database handle %d", req.Seg)
	}
	b := db.db.Bytes()
	end := req.Offset + uint64(req.Length)
	if end < req.Offset || end > uint64(len(b)) {
		return fail(req, wire.TxBadRequest, "txserver: read [%d,+%d) outside database of %d bytes",
			req.Offset, req.Length, len(b))
	}
	out := make([]byte, req.Length)
	copy(out, b[req.Offset:end])
	return &wire.Response{Status: wire.StatusOK, ID: req.ID, Data: out}
}

func (s *Server) handleLoad(req *wire.Request) *wire.Response {
	s.mu.Lock()
	db := s.dbs[req.Seg]
	if db != nil && db.inited {
		s.mu.Unlock()
		return fail(req, wire.TxBadRequest, "txserver: load into initialised database %d (use transactions)", req.Seg)
	}
	s.mu.Unlock()
	if db == nil {
		return fail(req, wire.TxUnknownDB, "txserver: no database handle %d", req.Seg)
	}
	b := db.db.Bytes()
	end := req.Offset + uint64(len(req.Data))
	if end < req.Offset || end > uint64(len(b)) {
		return fail(req, wire.TxBadRequest, "txserver: load [%d,+%d) outside database of %d bytes",
			req.Offset, len(req.Data), len(b))
	}
	copy(b[req.Offset:end], req.Data)
	return &wire.Response{Status: wire.StatusOK, ID: req.ID}
}

func (s *Server) handleInitDB(req *wire.Request) *wire.Response {
	db := s.lookupDB(req.Seg)
	if db == nil {
		return fail(req, wire.TxUnknownDB, "txserver: no database handle %d", req.Seg)
	}
	if err := s.eng.InitDB(db.db); err != nil {
		return engineFail(req, err)
	}
	s.mu.Lock()
	db.inited = true
	s.mu.Unlock()
	return &wire.Response{Status: wire.StatusOK, ID: req.ID}
}

func (s *Server) handleCrash(req *wire.Request) *wire.Response {
	if !s.faultOps {
		return fail(req, wire.TxError, "txserver: fault injection not enabled")
	}
	err := s.eng.Crash(fault.CrashKind(req.Size))
	// Every open transaction died with the engine's volatile state, and
	// every database handle now points at a dead buffer.
	s.mu.Lock()
	victims := make([]*serverTx, 0, len(s.txs))
	for id, st := range s.txs {
		victims = append(victims, st)
		delete(s.txs, id)
	}
	s.dbs = make(map[uint32]*serverDB)
	s.byName = make(map[string]uint32)
	s.mu.Unlock()
	for _, st := range victims {
		st.mu.Lock()
		if !st.done {
			st.done = true
			s.liveTxs.Add(-1)
		}
		st.mu.Unlock()
	}
	if err != nil {
		return engineFail(req, err)
	}
	return &wire.Response{Status: wire.StatusOK, ID: req.ID}
}

func (s *Server) handleRecover(req *wire.Request) *wire.Response {
	if !s.faultOps {
		return fail(req, wire.TxError, "txserver: fault injection not enabled")
	}
	if err := s.eng.Recover(); err != nil {
		return engineFail(req, err)
	}
	return &wire.Response{Status: wire.StatusOK, ID: req.ID}
}
