package txserver

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/flight"
	"github.com/ics-forth/perseas/internal/wire"
)

// fakeEngine is a minimal in-memory engine whose Commit can be held
// open through commitGate, so tests control exactly when a convoy
// window closes.
type fakeEngine struct {
	mu         sync.Mutex
	dbs        map[string]*fakeDB
	crashed    bool
	commitGate chan struct{} // when non-nil, Commit blocks on a receive
	commits    atomic.Int64
}

type fakeDB struct {
	name string
	buf  []byte
}

func (d *fakeDB) Name() string  { return d.name }
func (d *fakeDB) Size() uint64  { return uint64(len(d.buf)) }
func (d *fakeDB) Bytes() []byte { return d.buf }

type fakeTx struct {
	e    *fakeEngine
	done bool
}

func newFakeEngine() *fakeEngine {
	return &fakeEngine{dbs: make(map[string]*fakeDB)}
}

func (e *fakeEngine) Name() string { return "fake" }

func (e *fakeEngine) CreateDB(name string, size uint64) (engine.DB, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return nil, engine.ErrCrashed
	}
	if _, ok := e.dbs[name]; ok {
		return nil, fmt.Errorf("fake: database %q exists", name)
	}
	db := &fakeDB{name: name, buf: make([]byte, size)}
	e.dbs[name] = db
	return db, nil
}

func (e *fakeEngine) InitDB(engine.DB) error { return nil }

func (e *fakeEngine) OpenDB(name string) (engine.DB, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return nil, engine.ErrCrashed
	}
	db, ok := e.dbs[name]
	if !ok {
		return nil, fmt.Errorf("fake: no database %q", name)
	}
	return db, nil
}

func (e *fakeEngine) Begin() (engine.Tx, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return nil, engine.ErrCrashed
	}
	return &fakeTx{e: e}, nil
}

func (t *fakeTx) SetRange(db engine.DB, offset, length uint64) error {
	if t.done {
		return engine.ErrNoTransaction
	}
	if offset+length > db.Size() || offset+length < offset {
		return fmt.Errorf("fake: range out of bounds")
	}
	return nil
}

func (t *fakeTx) Commit() error {
	if t.done {
		return engine.ErrNoTransaction
	}
	t.done = true
	if gate := t.e.commitGate; gate != nil {
		<-gate
	}
	t.e.mu.Lock()
	crashed := t.e.crashed
	t.e.mu.Unlock()
	if crashed {
		return engine.ErrCrashed
	}
	t.e.commits.Add(1)
	return nil
}

func (t *fakeTx) Abort() error {
	if t.done {
		return engine.ErrNoTransaction
	}
	t.done = true
	return nil
}

func (e *fakeEngine) Crash(fault.CrashKind) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.crashed = true
	return nil
}

func (e *fakeEngine) Recover() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.crashed = false
	return nil
}

func (e *fakeEngine) Close() error { return nil }

// rawConn drives a server connection frame by frame, so tests exercise
// the protocol below the client library.
type rawConn struct {
	t *testing.T
	c net.Conn
}

func dialRaw(t *testing.T, s *Server) *rawConn {
	t.Helper()
	a, b := net.Pipe()
	go s.ServeConn(b)
	t.Cleanup(func() { a.Close() })
	return &rawConn{t: t, c: a}
}

func (r *rawConn) send(req *wire.Request) {
	r.t.Helper()
	if err := wire.SendRequest(r.c, req); err != nil {
		r.t.Fatalf("send %s: %v", req.Op, err)
	}
}

func (r *rawConn) recv() *wire.Response {
	r.t.Helper()
	resp, err := wire.RecvResponse(r.c)
	if err != nil {
		r.t.Fatalf("recv: %v", err)
	}
	return resp
}

// rpc is a synchronous request/response exchange.
func (r *rawConn) rpc(req *wire.Request) *wire.Response {
	r.t.Helper()
	r.send(req)
	return r.recv()
}

func (r *rawConn) mustOK(req *wire.Request) *wire.Response {
	r.t.Helper()
	resp := r.rpc(req)
	if resp.Status != wire.StatusOK {
		r.t.Fatalf("%s: %s (%s)", req.Op, resp.Err, resp.Code)
	}
	return resp
}

// beginTx runs Begin/CreateDB/SetRange and returns the handles.
func setupTx(t *testing.T, c *rawConn, name string) (tx uint64, db uint32) {
	t.Helper()
	cr := c.mustOK(&wire.Request{Op: wire.OpTxCreateDB, ID: 1, Name: name, Size: 64})
	bg := c.mustOK(&wire.Request{Op: wire.OpTxBegin, ID: 2})
	c.mustOK(&wire.Request{Op: wire.OpTxSetRange, ID: 3, Tx: bg.Tx, Seg: cr.Seg, Offset: 0, Size: 16})
	return bg.Tx, cr.Seg
}

// TestMalformedFrameClosesConnection is the regression test for the
// malformed-frame path: the server answers with a typed BAD-REQUEST
// error, closes the connection without panicking, and keeps serving —
// in particular the group-commit convoy still runs for later clients.
func TestMalformedFrameClosesConnection(t *testing.T) {
	s := New(newFakeEngine())
	c := dialRaw(t, s)

	// A frame that decodes as garbage: too short for any request.
	if err := wire.WriteFrame(c.c, []byte{0xFF, 0x01}); err != nil {
		t.Fatalf("write garbage frame: %v", err)
	}
	resp := c.recv()
	if resp.Status != wire.StatusError || resp.Code != wire.TxBadRequest {
		t.Fatalf("garbage frame answered %v/%v, want ERROR/BAD-REQUEST", resp.Status, resp.Code)
	}
	// The server hangs up after reporting.
	if _, err := wire.RecvResponse(c.c); !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("connection still open after malformed frame: %v", err)
	}
	if got := s.Metrics().Malformed.Load(); got != 1 {
		t.Fatalf("malformed counter = %d, want 1", got)
	}

	// A fresh connection commits normally: nothing wedged.
	c2 := dialRaw(t, s)
	tx, db := setupTx(t, c2, "after")
	c2.mustOK(&wire.Request{Op: wire.OpTxCommit, ID: 4, Tx: tx,
		Batch: []wire.BatchEntry{{Seg: db, Offset: 0, Data: []byte("hello")}}})
	if s.Stats().TxsCommitted != 1 {
		t.Fatal("commit after malformed connection did not land")
	}
}

// TestGroupCommitBatches holds one commit's fan-out window open while
// more clients commit, and checks they ran as one convoy batch:
// leader blocked in the engine, followers queued in the gate, then one
// release — the followers must run as a single convoy.
func TestGroupCommitBatches(t *testing.T) {
	const followers = 4
	eng := newFakeEngine()
	gate := make(chan struct{})
	eng.commitGate = gate
	s := New(eng)

	lead := dialRaw(t, s)
	ltx, ldb := setupTx(t, lead, "lead")
	lead.send(&wire.Request{Op: wire.OpTxCommit, ID: 10, Tx: ltx,
		Batch: []wire.BatchEntry{{Seg: ldb, Offset: 0, Data: []byte("L")}}})

	conns := make([]*rawConn, followers)
	for i := range conns {
		conns[i] = dialRaw(t, s)
		tx, db := setupTx(t, conns[i], fmt.Sprintf("f%d", i))
		conns[i].send(&wire.Request{Op: wire.OpTxCommit, ID: 10, Tx: tx,
			Batch: []wire.BatchEntry{{Seg: db, Offset: 0, Data: []byte("F")}}})
	}
	// Followers pile up behind the leader's open window.
	for {
		s.gate.mu.Lock()
		q := len(s.gate.queue)
		s.gate.mu.Unlock()
		if q == followers {
			break
		}
		runtime.Gosched()
	}
	// Release the leader, then the whole follower batch.
	for i := 0; i < followers+1; i++ {
		gate <- struct{}{}
	}
	lead.recv()
	for _, c := range conns {
		resp := c.recv()
		if resp.Status != wire.StatusOK {
			t.Fatalf("follower commit failed: %s", resp.Err)
		}
	}
	snap := s.Metrics().Batch.Snapshot()
	if snap.Max != followers {
		t.Fatalf("largest convoy = %d, want %d", snap.Max, followers)
	}
	if got := eng.commits.Load(); got != followers+1 {
		t.Fatalf("engine saw %d commits, want %d", got, followers+1)
	}
	st := s.Stats()
	if st.Convoys != 2 || st.ConvoyCommits != followers+1 {
		t.Fatalf("stats convoys=%d commits=%d, want 2/%d", st.Convoys, st.ConvoyCommits, followers+1)
	}
}

// TestPipelineAdmission: a connection over its in-flight bound draws a
// typed BUSY reply while the stuck request still completes.
func TestPipelineAdmission(t *testing.T) {
	eng := newFakeEngine()
	gate := make(chan struct{})
	eng.commitGate = gate
	s := New(eng, WithMaxInFlight(1))

	c := dialRaw(t, s)
	tx, db := setupTx(t, c, "adm")
	c.send(&wire.Request{Op: wire.OpTxCommit, ID: 20, Tx: tx,
		Batch: []wire.BatchEntry{{Seg: db, Offset: 0, Data: []byte("x")}}})
	// The commit occupies the single pipeline slot; the stats request
	// behind it must bounce.
	c.send(&wire.Request{Op: wire.OpTxStats, ID: 21})

	busy := c.recv()
	if busy.ID != 21 || busy.Code != wire.TxBusy {
		t.Fatalf("pipelined overflow answered id=%d code=%s, want 21/BUSY", busy.ID, busy.Code)
	}
	gate <- struct{}{}
	ok := c.recv()
	if ok.ID != 20 || ok.Status != wire.StatusOK {
		t.Fatalf("held commit answered id=%d status=%v", ok.ID, ok.Status)
	}
	if s.Metrics().Busy.Load() != 1 {
		t.Fatalf("busy counter = %d, want 1", s.Metrics().Busy.Load())
	}
}

// TestTxAdmission: Begin beyond the server-wide transaction bound is
// BUSY until an earlier transaction retires.
func TestTxAdmission(t *testing.T) {
	s := New(newFakeEngine(), WithMaxTxs(1))
	c := dialRaw(t, s)
	first := c.mustOK(&wire.Request{Op: wire.OpTxBegin, ID: 1})
	busy := c.rpc(&wire.Request{Op: wire.OpTxBegin, ID: 2})
	if busy.Code != wire.TxBusy {
		t.Fatalf("second begin answered %s, want BUSY", busy.Code)
	}
	c.mustOK(&wire.Request{Op: wire.OpTxAbort, ID: 3, Tx: first.Tx})
	c.mustOK(&wire.Request{Op: wire.OpTxBegin, ID: 4})
}

// TestFlightRecordsAdmissionRejections: a configured flight recorder
// captures the BUSY as a structured busy_reject event.
func TestFlightRecordsAdmissionRejections(t *testing.T) {
	fr := flight.New(8)
	fr.Enable()
	s := New(newFakeEngine(), WithMaxTxs(1), WithFlightRecorder(fr))
	c := dialRaw(t, s)
	first := c.mustOK(&wire.Request{Op: wire.OpTxBegin, ID: 1})
	if busy := c.rpc(&wire.Request{Op: wire.OpTxBegin, ID: 2}); busy.Code != wire.TxBusy {
		t.Fatalf("second begin answered %s, want BUSY", busy.Code)
	}
	c.mustOK(&wire.Request{Op: wire.OpTxAbort, ID: 3, Tx: first.Tx})
	evs := fr.Snapshot()
	if len(evs) != 1 {
		t.Fatalf("flight recorder holds %d events, want 1", len(evs))
	}
	if evs[0].Kind != flight.BusyReject || evs[0].Source != "txserver" {
		t.Fatalf("recorded %s from %s, want busy_reject from txserver", evs[0].Kind, evs[0].Source)
	}
}

// TestConnAdmission: accepts beyond the connection bound are turned
// away with a BUSY reply on a real listener.
func TestConnAdmission(t *testing.T) {
	s := New(newFakeEngine(), WithMaxConns(1))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = s.Serve(l) }()

	c1, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	r1 := &rawConn{t: t, c: c1}
	r1.mustOK(&wire.Request{Op: wire.OpTxStats, ID: 1})

	c2, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	resp, err := wire.RecvResponse(c2)
	if err != nil {
		t.Fatalf("rejected connection: %v", err)
	}
	if resp.Code != wire.TxBusy {
		t.Fatalf("over-limit accept answered %s, want BUSY", resp.Code)
	}
	if s.Metrics().ConnsRejected.Load() != 1 {
		t.Fatalf("rejected counter = %d, want 1", s.Metrics().ConnsRejected.Load())
	}
}

// TestTxHandleIsConnectionScoped: another connection's transaction
// handle is as unknown as a made-up one.
func TestTxHandleIsConnectionScoped(t *testing.T) {
	s := New(newFakeEngine())
	a := dialRaw(t, s)
	b := dialRaw(t, s)
	bg := a.mustOK(&wire.Request{Op: wire.OpTxBegin, ID: 1})
	resp := b.rpc(&wire.Request{Op: wire.OpTxCommit, ID: 1, Tx: bg.Tx})
	if resp.Code != wire.TxUnknownTx {
		t.Fatalf("foreign handle answered %s, want UNKNOWN-TX", resp.Code)
	}
}

// TestCommitOutsideDeclaredRange: commit bytes outside the declared
// ranges are rejected before touching the database.
func TestCommitOutsideDeclaredRange(t *testing.T) {
	s := New(newFakeEngine())
	c := dialRaw(t, s)
	tx, db := setupTx(t, c, "bounds") // declares [0,16)
	resp := c.rpc(&wire.Request{Op: wire.OpTxCommit, ID: 9, Tx: tx,
		Batch: []wire.BatchEntry{{Seg: db, Offset: 32, Data: []byte("nope")}}})
	if resp.Code != wire.TxBadRequest {
		t.Fatalf("out-of-range commit answered %s, want BAD-REQUEST", resp.Code)
	}
}

// TestDisconnectAbortsOrphans: transactions owned by a dropped
// connection are aborted so their conflict-table claims die with it.
func TestDisconnectAbortsOrphans(t *testing.T) {
	s := New(newFakeEngine())
	a, b := net.Pipe()
	done := make(chan struct{})
	go func() { s.ServeConn(b); close(done) }()
	r := &rawConn{t: t, c: a}
	r.mustOK(&wire.Request{Op: wire.OpTxBegin, ID: 1})
	if s.LiveTxs() != 1 {
		t.Fatalf("live txs = %d, want 1", s.LiveTxs())
	}
	a.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("serveConn did not return after client hangup")
	}
	if s.LiveTxs() != 0 {
		t.Fatalf("live txs = %d after hangup, want 0", s.LiveTxs())
	}
	if s.Metrics().TxsAborted.Load() != 1 {
		t.Fatalf("aborted counter = %d, want 1", s.Metrics().TxsAborted.Load())
	}
}

// TestMemoryOpsRejected: memory-protocol opcodes on a transaction
// listener are answered with a typed error and the connection stays
// usable (tooling probes rely on this).
func TestMemoryOpsRejected(t *testing.T) {
	s := New(newFakeEngine())
	c := dialRaw(t, s)
	resp := c.rpc(&wire.Request{Op: wire.OpPing, ID: 1})
	if resp.Status != wire.StatusError || resp.Code != wire.TxError {
		t.Fatalf("memory op answered %v/%v, want ERROR/ERROR", resp.Status, resp.Code)
	}
	c.mustOK(&wire.Request{Op: wire.OpTxStats, ID: 2})
}

// TestFaultOpsGated: crash and recover are refused unless fault
// injection was enabled at construction.
func TestFaultOpsGated(t *testing.T) {
	s := New(newFakeEngine())
	c := dialRaw(t, s)
	for _, op := range []wire.Op{wire.OpTxCrash, wire.OpTxRecover} {
		resp := c.rpc(&wire.Request{Op: op, ID: 1, Size: uint64(fault.CrashProcess)})
		if resp.Status != wire.StatusError {
			t.Fatalf("%s served without fault injection", op)
		}
	}
}

// TestCrashWipesHandles: after a crash every transaction and database
// handle is gone; recovery plus OpenDB issues fresh ones.
func TestCrashWipesHandles(t *testing.T) {
	s := New(newFakeEngine(), WithFaultInjection())
	c := dialRaw(t, s)
	tx, db := setupTx(t, c, "wipe")
	c.mustOK(&wire.Request{Op: wire.OpTxCrash, ID: 5, Size: uint64(fault.CrashProcess)})
	if resp := c.rpc(&wire.Request{Op: wire.OpTxCommit, ID: 6, Tx: tx}); resp.Code != wire.TxUnknownTx {
		t.Fatalf("post-crash commit answered %s, want UNKNOWN-TX", resp.Code)
	}
	if resp := c.rpc(&wire.Request{Op: wire.OpTxRead, ID: 7, Seg: db, Length: 8}); resp.Code != wire.TxUnknownDB {
		t.Fatalf("post-crash read answered %s, want UNKNOWN-DB", resp.Code)
	}
	if s.LiveTxs() != 0 {
		t.Fatalf("live txs = %d after crash, want 0", s.LiveTxs())
	}
	c.mustOK(&wire.Request{Op: wire.OpTxRecover, ID: 8})
	c.mustOK(&wire.Request{Op: wire.OpTxOpenDB, ID: 9, Name: "wipe"})
}
