// The group-commit convoy: the TCP transport's leader-handoff write
// combiner (internal/transport/tcp.go), generalised from combining one
// client's writes on one wire to combining many clients' commits on
// one engine.
//
// The shape is identical. The first commit to arrive while the gate is
// free leads immediately — a convoy of one, no added latency. Commits
// arriving while a mirror fan-out window is in flight queue behind it;
// when the window closes, the queue's head is promoted to leader and
// runs the whole accumulated batch as one overlapping fan-out, so the
// transport-level combiner underneath sees the batch's mirror writes
// together and merges them into shared exchanges. Leadership hands off
// down the queue without any dedicated scheduler goroutine, and an
// idle server keeps no goroutine parked.
package txserver

import "sync"

// commitFn is one queued commit — a closure over the transaction's
// engine handle.
type commitFn func() error

// convoyWaiter is one commit waiting in the gate's queue. Exactly one
// of its channels fires: promoted when the waiter must lead the next
// batch, done when another leader ran its commit.
type convoyWaiter struct {
	do       commitFn
	promoted chan struct{}
	done     chan error
}

// convoy is the cross-client group-commit gate.
type convoy struct {
	mu sync.Mutex
	// busy marks an in-flight batch (the fan-out window).
	busy bool
	// queue holds commits that arrived during the window; its head is
	// promoted to lead the next batch.
	queue []*convoyWaiter
	// observe reports each batch's size when it completes.
	observe func(int)
}

// run executes do through the gate and returns its error. It blocks
// until the commit has actually run — either by this goroutine leading
// a batch, or by a concurrent leader running it as part of one.
func (g *convoy) run(do commitFn) error {
	g.mu.Lock()
	if !g.busy {
		g.busy = true
		g.mu.Unlock()
		err := do()
		g.finish(1)
		return err
	}
	w := &convoyWaiter{do: do, promoted: make(chan struct{}), done: make(chan error, 1)}
	g.queue = append(g.queue, w)
	g.mu.Unlock()
	select {
	case <-w.promoted:
		return g.lead(w)
	case err := <-w.done:
		return err
	}
}

// lead runs the current queue — self included — as one batch. The
// batch's commits run concurrently so their mirror writes overlap in
// the window and the transport combiner merges them.
func (g *convoy) lead(self *convoyWaiter) error {
	g.mu.Lock()
	batch := g.queue
	g.queue = nil
	g.mu.Unlock()

	var wg sync.WaitGroup
	for _, w := range batch {
		if w == self {
			continue
		}
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.done <- w.do()
		}()
	}
	selfErr := self.do()
	wg.Wait()
	g.finish(len(batch))
	return selfErr
}

// finish closes a batch's window: it reports the batch size and, when
// commits queued up during the window, promotes the queue's head to
// lead them. The head stays in the queue — lead takes the whole queue,
// itself included, as the next batch.
func (g *convoy) finish(batchSize int) {
	if g.observe != nil {
		g.observe(batchSize)
	}
	g.mu.Lock()
	if len(g.queue) == 0 {
		g.busy = false
		g.mu.Unlock()
		return
	}
	head := g.queue[0]
	g.mu.Unlock()
	close(head.promoted)
}
