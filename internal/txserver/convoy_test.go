package txserver

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// waitQueue spins until g's queue holds n waiters.
func waitQueue(g *convoy, n int) {
	for {
		g.mu.Lock()
		q := len(g.queue)
		g.mu.Unlock()
		if q == n {
			return
		}
		runtime.Gosched()
	}
}

// TestConvoySingle: an uncontended commit leads immediately as a batch
// of one.
func TestConvoySingle(t *testing.T) {
	var batches []int
	g := &convoy{observe: func(n int) { batches = append(batches, n) }}
	ran := false
	if err := g.run(func() error { ran = true; return nil }); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !ran {
		t.Fatal("commit did not run")
	}
	if len(batches) != 1 || batches[0] != 1 {
		t.Fatalf("batches = %v, want [1]", batches)
	}
}

// TestConvoyBatches: commits arriving while a window is in flight run
// together as the next batch, and every commit's error comes back to
// its own caller.
func TestConvoyBatches(t *testing.T) {
	const waiters = 8

	var mu sync.Mutex
	var batches []int
	g := &convoy{observe: func(n int) {
		mu.Lock()
		batches = append(batches, n)
		mu.Unlock()
	}}

	gate := make(chan struct{})
	started := make(chan struct{})
	var leadErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		leadErr = g.run(func() error {
			close(started)
			<-gate // hold the window open while the others queue
			return nil
		})
	}()
	<-started

	// Queue more commits behind the open window; they cannot start
	// until the leader finishes.
	var ran atomic.Int64
	queued := make(chan struct{})
	var qwg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			queued <- struct{}{}
			if err := g.run(func() error { ran.Add(1); return nil }); err != nil {
				t.Errorf("queued run: %v", err)
			}
		}()
	}
	for i := 0; i < waiters; i++ {
		<-queued
	}
	// The queued goroutines have announced themselves but may not have
	// enqueued yet; spin until the queue holds them all.
	waitQueue(g, waiters)

	close(gate)
	wg.Wait()
	qwg.Wait()
	if leadErr != nil {
		t.Fatalf("leader: %v", leadErr)
	}
	if got := ran.Load(); got != waiters {
		t.Fatalf("ran %d queued commits, want %d", got, waiters)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 2 || batches[0] != 1 || batches[1] != waiters {
		t.Fatalf("batches = %v, want [1 %d]", batches, waiters)
	}
}

// TestConvoyErrorsPerCommit: a failing commit fails only its caller.
func TestConvoyErrorsPerCommit(t *testing.T) {
	g := &convoy{}
	gate := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = g.run(func() error { close(started); <-gate; return nil })
	}()
	<-started

	errs := make(chan error, 2)
	enqueue := func(fail bool) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- g.run(func() error {
				if fail {
					return errBoom
				}
				return nil
			})
		}()
	}
	enqueue(true)
	enqueue(false)
	waitQueue(g, 2)
	close(gate)
	wg.Wait()

	var failed, passed int
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			failed++
		} else {
			passed++
		}
	}
	if failed != 1 || passed != 1 {
		t.Fatalf("failed=%d passed=%d, want exactly one of each", failed, passed)
	}
}

var errBoom = errTest("boom")

type errTest string

func (e errTest) Error() string { return string(e) }
