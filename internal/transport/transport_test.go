package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
)

// newInProc builds an in-process transport over a fresh server and clock.
func newInProc(t *testing.T, opts ...InProcOption) (*InProc, *simclock.SimClock) {
	t.Helper()
	clock := simclock.NewSim()
	tr, err := NewInProc(memserver.New(), sci.DefaultParams(), clock, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return tr, clock
}

// startTCP runs a memory server on a loopback listener and returns a
// connected client.
func startTCP(t *testing.T) (*TCP, *memserver.Server) {
	t.Helper()
	srv := memserver.New()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = Serve(l, srv)
	}()
	t.Cleanup(func() {
		l.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not shut down")
		}
	})
	cli, err := DialTCP(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli, srv
}

// transportContract exercises the full Transport behaviour against any
// implementation.
func transportContract(t *testing.T, tr Transport) {
	t.Helper()

	if err := tr.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	seg, err := tr.Malloc("db", 1024)
	if err != nil {
		t.Fatalf("malloc: %v", err)
	}
	if seg.Size != 1024 || seg.ID == 0 {
		t.Fatalf("bad handle %+v", seg)
	}

	payload := []byte("perseas mirrors memory")
	if err := tr.Write(seg.ID, 100, payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := tr.Read(seg.ID, 100, uint32(len(payload)))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read %q, want %q", got, payload)
	}

	// Out-of-bounds surfaces as an error.
	if err := tr.Write(seg.ID, 1020, payload); err == nil {
		t.Fatal("out-of-bounds write should fail")
	}
	if _, err := tr.Read(seg.ID, 2000, 4); err == nil {
		t.Fatal("out-of-bounds read should fail")
	}

	// Reconnect by name sees the same segment.
	re, err := tr.Connect("db")
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	if re.ID != seg.ID || re.Size != seg.Size {
		t.Fatalf("connect handle %+v != malloc handle %+v", re, seg)
	}
	if _, err := tr.Connect("nope"); err == nil {
		t.Fatal("connect to unknown name should fail")
	}

	list, err := tr.List()
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(list) != 1 || list[0].Name != "db" {
		t.Fatalf("list = %+v", list)
	}

	if err := tr.Free(seg.ID); err != nil {
		t.Fatalf("free: %v", err)
	}
	if err := tr.Free(seg.ID); err == nil {
		t.Fatal("double free should fail")
	}
}

// batchContract exercises WriteBatch against any transport implementing
// BatchWriter.
func batchContract(t *testing.T, tr Transport) {
	t.Helper()
	bw, ok := tr.(BatchWriter)
	if !ok {
		t.Fatal("transport does not implement BatchWriter")
	}
	seg, err := tr.Malloc("batch-db", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteBatch([]BatchWrite{
		{Seg: seg.ID, Offset: 0, Data: []byte("first")},
		{Seg: seg.ID, Offset: 512, Data: []byte("second")},
	}); err != nil {
		t.Fatalf("batch: %v", err)
	}
	a, err := tr.Read(seg.ID, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Read(seg.ID, 512, 6)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != "first" || string(b) != "second" {
		t.Errorf("batch wrote %q/%q", a, b)
	}
	// A bad entry fails the whole batch, atomically.
	err = bw.WriteBatch([]BatchWrite{
		{Seg: seg.ID, Offset: 100, Data: []byte("DIRTY")},
		{Seg: seg.ID, Offset: 1020, Data: []byte("spills over")},
	})
	if err == nil {
		t.Fatal("invalid batch should fail")
	}
	got, err := tr.Read(seg.ID, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == "DIRTY" {
		t.Error("failed batch was partially applied")
	}
	if err := tr.Free(seg.ID); err != nil {
		t.Fatal(err)
	}
}

func TestInProcBatch(t *testing.T) {
	tr, _ := newInProc(t)
	batchContract(t, tr)
}

func TestTCPBatch(t *testing.T) {
	cli, _ := startTCP(t)
	batchContract(t, cli)
}

func TestHWMirrorBatch(t *testing.T) {
	hw, _, _ := newHW(t, 2)
	batchContract(t, hw)
}

func TestInProcContract(t *testing.T) {
	tr, _ := newInProc(t)
	transportContract(t, tr)
}

func TestTCPContract(t *testing.T) {
	cli, _ := startTCP(t)
	transportContract(t, cli)
}

func TestInProcChargesSimulatedTime(t *testing.T) {
	tr, clock := newInProc(t)
	seg, err := tr.Malloc("db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	before := clock.Now()
	if err := tr.Write(seg.ID, 0, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	elapsed := clock.Now() - before
	// The paper: one 4-byte remote store costs 2.7 us.
	if elapsed < 2500*time.Nanosecond || elapsed > 2900*time.Nanosecond {
		t.Errorf("4-byte write charged %v, want ~2.7us", elapsed)
	}

	before = clock.Now()
	if err := tr.Write(seg.ID, 0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	full := clock.Now() - before
	if full <= elapsed {
		t.Errorf("64-byte write (%v) should cost more than 4-byte (%v)", full, elapsed)
	}

	// Reads are slower than writes on SCI.
	before = clock.Now()
	if _, err := tr.Read(seg.ID, 0, 64); err != nil {
		t.Fatal(err)
	}
	read := clock.Now() - before
	if read <= full {
		t.Errorf("remote read (%v) should cost more than remote write (%v)", read, full)
	}
}

func TestInProcHopsAddLatency(t *testing.T) {
	params := sci.DefaultParams()
	near, nearClock := newInProc(t)
	far, farClock := newInProc(t, WithHops(3, params))

	segNear, err := near.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	segFar, err := far.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	n0, f0 := nearClock.Now(), farClock.Now()
	if err := near.Write(segNear.ID, 0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := far.Write(segFar.ID, 0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	dNear, dFar := nearClock.Now()-n0, farClock.Now()-f0
	want := 3 * params.HopCost
	if dFar-dNear != want {
		t.Errorf("hop surcharge = %v, want %v", dFar-dNear, want)
	}
}

func TestInProcClosed(t *testing.T) {
	tr, _ := newInProc(t)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Malloc("x", 64); !errors.Is(err, ErrClosed) {
		t.Errorf("malloc after close: %v", err)
	}
	if err := tr.Write(1, 0, []byte{1}); !errors.Is(err, ErrClosed) {
		t.Errorf("write after close: %v", err)
	}
	if err := tr.Ping(); !errors.Is(err, ErrClosed) {
		t.Errorf("ping after close: %v", err)
	}
}

func TestInProcPingCrashedServer(t *testing.T) {
	tr, _ := newInProc(t)
	tr.Server().Crash()
	if err := tr.Ping(); err == nil {
		t.Error("ping to crashed node should fail")
	}
}

func TestTCPSegmentsSurviveClientReconnect(t *testing.T) {
	cli, _ := startTCP(t)
	seg, err := cli.Malloc("perseas.meta", 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Write(seg.ID, 0, []byte("survives")); err != nil {
		t.Fatal(err)
	}
	addr := cli.addr
	// Simulate the client process dying: drop the connection.
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	h, err := re.Connect("perseas.meta")
	if err != nil {
		t.Fatalf("reconnect: %v", err)
	}
	got, err := re.Read(h.ID, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "survives" {
		t.Errorf("read %q after reconnect, want %q", got, "survives")
	}
}

func TestTCPStats(t *testing.T) {
	cli, _ := startTCP(t)
	seg, err := cli.Malloc("db", 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Write(seg.ID, 0, []byte("abcd")); err != nil {
		t.Fatal(err)
	}
	st, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 1 || st.BytesHeld != 128 || st.WriteOps != 1 || st.BytesWritten != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTCPClosedClient(t *testing.T) {
	cli, _ := startTCP(t)
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Errorf("second close should be a no-op: %v", err)
	}
	if err := cli.Ping(); !errors.Is(err, ErrClosed) {
		t.Errorf("ping after close: %v", err)
	}
}

func TestTCPLargeWrite(t *testing.T) {
	cli, _ := startTCP(t)
	const size = 1 << 20
	seg, err := cli.Malloc("big", size)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := cli.Write(seg.ID, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := cli.Read(seg.ID, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("1 MiB round trip corrupted data")
	}
}

// TestTCPWriteCombiner hammers one TCP transport from many goroutines:
// concurrent Write and WriteBatch calls ride shared combined exchanges,
// and every byte must still land exactly where its caller put it.
func TestTCPWriteCombiner(t *testing.T) {
	cli, _ := startTCP(t)
	const workers, writes = 8, 50
	seg, err := cli.Malloc("combined", workers*writes*8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < writes; i++ {
				off := uint64(w*writes+i) * 8
				val := make([]byte, 8)
				binary.BigEndian.PutUint64(val, off)
				if w%2 == 0 {
					errs[w] = cli.Write(seg.ID, off, val)
				} else {
					errs[w] = cli.WriteBatch([]BatchWrite{{Seg: seg.ID, Offset: off, Data: val}})
				}
				if errs[w] != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	got, err := cli.Read(seg.ID, 0, workers*writes*8)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(got); off += 8 {
		if v := binary.BigEndian.Uint64(got[off:]); v != uint64(off) {
			t.Fatalf("offset %d holds %d", off, v)
		}
	}
}

// disconnectContract exercises Disconnect against any transport
// implementing Disconnector: the reference count visible through List
// returns to zero and unknown segments fail.
func disconnectContract(t *testing.T, tr Transport) {
	t.Helper()
	dc, ok := tr.(Disconnector)
	if !ok {
		t.Fatal("transport does not implement Disconnector")
	}
	seg, err := tr.Malloc("dc-db", 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Connect("dc-db"); err != nil {
		t.Fatal(err)
	}
	list, err := tr.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Conns != 1 {
		t.Fatalf("after connect, list = %+v, want one segment with Conns=1", list)
	}
	if err := dc.Disconnect(seg.ID); err != nil {
		t.Fatalf("disconnect: %v", err)
	}
	list, err = tr.List()
	if err != nil {
		t.Fatal(err)
	}
	if list[0].Conns != 0 {
		t.Fatalf("after disconnect, Conns = %d, want 0", list[0].Conns)
	}
	if err := dc.Disconnect(99999); err == nil {
		t.Fatal("disconnect of unknown segment should fail")
	}
	if err := tr.Free(seg.ID); err != nil {
		t.Fatal(err)
	}
}

func TestInProcDisconnect(t *testing.T) {
	tr, _ := newInProc(t)
	disconnectContract(t, tr)
}

func TestTCPDisconnect(t *testing.T) {
	cli, _ := startTCP(t)
	disconnectContract(t, cli)
}

func TestHWMirrorDisconnect(t *testing.T) {
	hw, _, _ := newHW(t, 2)
	disconnectContract(t, hw)
}

func TestTCPMetrics(t *testing.T) {
	cli, _ := startTCP(t)
	seg, err := cli.Malloc("m-db", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Write(seg.ID, 0, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := cli.WriteBatch([]BatchWrite{
		{Seg: seg.ID, Offset: 0, Data: []byte("a")},
		{Seg: seg.ID, Offset: 8, Data: []byte("b")},
	}); err != nil {
		t.Fatal(err)
	}
	m := cli.Metrics()
	// Dial + malloc + write + batch = at least 3 exchanges and 1 dial.
	if got := m.Exchanges.Load(); got < 3 {
		t.Errorf("Exchanges = %d, want >= 3", got)
	}
	if got := m.Dials.Load(); got < 1 {
		t.Errorf("Dials = %d, want >= 1", got)
	}
	bs := m.BatchSize.Snapshot()
	if bs.Count != 2 {
		t.Errorf("BatchSize count = %d, want 2 (one single write + one batch)", bs.Count)
	}
	if bs.Max != 2 {
		t.Errorf("BatchSize max = %d, want 2", bs.Max)
	}
	lat := m.ExchangeLatency.Snapshot()
	if lat.Count < 3 {
		t.Errorf("ExchangeLatency count = %d, want >= 3", lat.Count)
	}
}
