package transport

import (
	"fmt"
	"net"
	"sync"

	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/wire"
)

// TCP is a transport speaking the wire protocol to a memory server over a
// network connection. It serialises requests: the paper's client blocks
// until each remote-memory request is serviced, and the transaction
// library issues operations from a single thread of control.
type TCP struct {
	mu     sync.Mutex
	conn   net.Conn
	closed bool
}

// DialTCP connects to a memory server at addr.
func DialTCP(addr string) (*TCP, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		// Small synchronous requests dominate; Nagle would serialise
		// them against the peer's delayed ACKs.
		_ = tc.SetNoDelay(true)
	}
	return &TCP{conn: conn}, nil
}

// call performs one synchronous request/response exchange.
func (t *TCP) call(req *wire.Request) (*wire.Response, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	if err := wire.SendRequest(t.conn, req); err != nil {
		return nil, err
	}
	resp, err := wire.RecvResponse(t.conn)
	if err != nil {
		return nil, err
	}
	return resp, respErr(resp)
}

// Malloc implements Transport.
func (t *TCP) Malloc(name string, size uint64) (SegmentHandle, error) {
	resp, err := t.call(&wire.Request{Op: wire.OpMalloc, Name: name, Size: size})
	if err != nil {
		return SegmentHandle{}, err
	}
	return SegmentHandle{ID: resp.Seg, Size: resp.Size}, nil
}

// Free implements Transport.
func (t *TCP) Free(seg uint32) error {
	_, err := t.call(&wire.Request{Op: wire.OpFree, Seg: seg})
	return err
}

// Write implements Transport.
func (t *TCP) Write(seg uint32, offset uint64, data []byte) error {
	_, err := t.call(&wire.Request{Op: wire.OpWrite, Seg: seg, Offset: offset, Data: data})
	return err
}

// WriteBatch implements BatchWriter: all writes travel in one frame and
// are applied atomically by the server.
func (t *TCP) WriteBatch(writes []BatchWrite) error {
	entries := make([]wire.BatchEntry, len(writes))
	for i, w := range writes {
		entries[i] = wire.BatchEntry{Seg: w.Seg, Offset: w.Offset, Data: w.Data}
	}
	_, err := t.call(&wire.Request{Op: wire.OpWriteBatch, Batch: entries})
	return err
}

// Read implements Transport.
func (t *TCP) Read(seg uint32, offset uint64, n uint32) ([]byte, error) {
	resp, err := t.call(&wire.Request{Op: wire.OpRead, Seg: seg, Offset: offset, Length: n})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Connect implements Transport.
func (t *TCP) Connect(name string) (SegmentHandle, error) {
	resp, err := t.call(&wire.Request{Op: wire.OpConnect, Name: name})
	if err != nil {
		return SegmentHandle{}, err
	}
	return SegmentHandle{ID: resp.Seg, Size: resp.Size}, nil
}

// List implements Transport.
func (t *TCP) List() ([]wire.SegmentInfo, error) {
	resp, err := t.call(&wire.Request{Op: wire.OpList})
	if err != nil {
		return nil, err
	}
	return resp.Segments, nil
}

// Ping implements Transport.
func (t *TCP) Ping() error {
	_, err := t.call(&wire.Request{Op: wire.OpPing})
	return err
}

// Stats fetches server-side counters; not part of the Transport
// interface but useful for tooling.
func (t *TCP) Stats() (wire.ServerStats, error) {
	resp, err := t.call(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return wire.ServerStats{}, err
	}
	return resp.Stats, nil
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	return t.conn.Close()
}

var (
	_ Transport   = (*TCP)(nil)
	_ BatchWriter = (*TCP)(nil)
)

// Serve accepts connections on l and services each against srv until l is
// closed. It returns the first accept error (net.ErrClosed after a clean
// shutdown). Each connection is handled on its own goroutine; Serve
// returns only after all of them drain.
func Serve(l net.Listener, srv *memserver.Server) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			serveConn(conn, srv)
		}()
	}
}

// serveConn services one client connection until EOF or a protocol error.
func serveConn(conn net.Conn, srv *memserver.Server) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	for {
		req, err := wire.RecvRequest(conn)
		if err != nil {
			return
		}
		resp := srv.Handle(req)
		if err := wire.SendResponse(conn, resp); err != nil {
			return
		}
	}
}
