package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/trace"
	"github.com/ics-forth/perseas/internal/wire"
)

// tcpMaxConns caps the connection pool a TCP transport grows to. Each
// in-flight request needs one connection; beyond this, callers queue.
const tcpMaxConns = 8

// TCP is a transport speaking the wire protocol to a memory server over
// network connections. Each request still blocks its caller — the
// paper's client waits until every remote-memory request is serviced —
// but the transport pools connections so requests from concurrent
// transactions pipeline on the wire instead of serialising behind one
// socket.
//
// Writes additionally pass through a group-commit combiner: while one
// caller's write exchange is on the wire, writes from concurrent
// callers queue up and the next exchange carries all of them in a
// single batched frame. A lone writer pays nothing (its write goes out
// immediately, alone); concurrent writers split the per-exchange cost —
// syscalls and wire framing — across the batch.
type TCP struct {
	addr string

	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	idle   []net.Conn
	// total counts live connections, idle plus checked out; callers wait
	// on cond when it reaches tcpMaxConns and no connection is idle.
	total int

	// Write-combiner state: wbusy marks a combined exchange in flight,
	// wqueue holds the callers that will ride the next one.
	wmu    sync.Mutex
	wbusy  bool
	wqueue []*queuedWrite

	metrics TCPMetrics
	// tracer records combiner exchanges and leader handoffs as
	// infrastructure spans; nil disables. Set during wiring, before
	// traffic flows.
	tracer *trace.Recorder
}

// SetTracer attaches a span recorder for combiner activity. Every
// recorder method is nil-safe, so a nil tracer records nothing.
func (t *TCP) SetTracer(rec *trace.Recorder) { t.tracer = rec }

// TCPMetrics are the client-side counters one TCP transport keeps.
// Latencies are wall-clock (this transport talks to real sockets, so
// there is no simulated clock to consult). All fields are lock-free;
// read them live or through Registry rendering.
type TCPMetrics struct {
	// Exchanges counts request/response round trips attempted.
	Exchanges obs.Counter
	// ExchangeLatency is nanoseconds per completed exchange.
	ExchangeLatency obs.Histogram
	// Dials counts TCP connections established for the pool.
	Dials obs.Counter
	// PoolWaits counts acquires that blocked because the pool was at
	// capacity with nothing idle.
	PoolWaits obs.Counter
	// CombinedExchanges counts write exchanges that carried more than
	// one caller's writes (the group-commit combiner firing).
	CombinedExchanges obs.Counter
	// BatchSize is the distribution of entries per write exchange.
	BatchSize obs.Histogram
}

// Metrics exposes the transport's counters.
func (t *TCP) Metrics() *TCPMetrics { return &t.metrics }

// RegisterMetrics registers the transport's counters on reg under the
// given prefix (e.g. "perseas_transport_mirror0").
func (t *TCP) RegisterMetrics(reg *obs.Registry, prefix string) {
	m := &t.metrics
	reg.RegisterCounter(prefix+"_exchanges_total", "request/response round trips", &m.Exchanges)
	reg.RegisterHistogram(prefix+"_exchange_latency_ns", "wall-clock ns per exchange", &m.ExchangeLatency)
	reg.RegisterCounter(prefix+"_dials_total", "pool connections dialled", &m.Dials)
	reg.RegisterCounter(prefix+"_pool_waits_total", "acquires that blocked on a full pool", &m.PoolWaits)
	reg.RegisterCounter(prefix+"_combined_exchanges_total", "write exchanges carrying >1 caller", &m.CombinedExchanges)
	reg.RegisterHistogram(prefix+"_batch_size", "write entries per exchange", &m.BatchSize)
}

// queuedWrite is one caller's write set awaiting a combined exchange.
// Instances are pooled: the writes scratch and the lead-batch scratch
// keep their capacity across calls, so the steady-state write path
// allocates nothing (the one-shot promoted/done channels are created
// only when a caller actually queues behind a busy combiner).
type queuedWrite struct {
	writes []wire.BatchEntry
	// batch is set at promotion time: the full batch this entry leads.
	batch    []*queuedWrite
	err      error
	promoted chan struct{}
	done     chan struct{}
}

// queuedWritePool recycles queuedWrite carriers across Write/WriteBatch
// calls on every TCP transport.
var queuedWritePool sync.Pool

func getQueuedWrite() *queuedWrite {
	q, _ := queuedWritePool.Get().(*queuedWrite)
	if q == nil {
		q = &queuedWrite{}
	}
	return q
}

func putQueuedWrite(q *queuedWrite) {
	for i := range q.writes {
		q.writes[i] = wire.BatchEntry{} // drop payload refs before pooling
	}
	q.writes = q.writes[:0]
	for i := range q.batch {
		q.batch[i] = nil
	}
	q.batch = q.batch[:0]
	q.err = nil
	q.promoted, q.done = nil, nil
	queuedWritePool.Put(q)
}

// DialTCP connects to a memory server at addr.
func DialTCP(addr string) (*TCP, error) {
	conn, err := dialOne(addr)
	if err != nil {
		return nil, err
	}
	t := &TCP{addr: addr, idle: []net.Conn{conn}, total: 1}
	t.cond = sync.NewCond(&t.mu)
	t.metrics.Dials.Inc()
	return t, nil
}

func dialOne(addr string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		// Small synchronous requests dominate; Nagle would serialise
		// them against the peer's delayed ACKs.
		_ = tc.SetNoDelay(true)
	}
	return conn, nil
}

// acquire checks a connection out of the pool, dialling a new one when
// none is idle and the pool may still grow.
func (t *TCP) acquire() (net.Conn, error) {
	t.mu.Lock()
	waited := false
	for {
		if t.closed {
			t.mu.Unlock()
			return nil, ErrClosed
		}
		if n := len(t.idle); n > 0 {
			conn := t.idle[n-1]
			t.idle = t.idle[:n-1]
			t.mu.Unlock()
			return conn, nil
		}
		if t.total < tcpMaxConns {
			t.total++
			t.mu.Unlock()
			conn, err := dialOne(t.addr)
			if err != nil {
				t.mu.Lock()
				t.total--
				t.cond.Signal()
				t.mu.Unlock()
				return nil, err
			}
			t.metrics.Dials.Inc()
			return conn, nil
		}
		if !waited {
			waited = true
			t.metrics.PoolWaits.Inc()
		}
		t.cond.Wait()
	}
}

// release returns a healthy connection to the pool; broken ones are
// dropped so the next caller dials afresh.
func (t *TCP) release(conn net.Conn, healthy bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !healthy || t.closed {
		t.total--
		_ = conn.Close()
	} else {
		t.idle = append(t.idle, conn)
	}
	t.cond.Signal()
}

// call performs one synchronous request/response exchange on a pooled
// connection.
func (t *TCP) call(req *wire.Request) (*wire.Response, error) {
	t.metrics.Exchanges.Inc()
	start := time.Now()
	conn, err := t.acquire()
	if err != nil {
		return nil, err
	}
	if err := wire.SendRequest(conn, req); err != nil {
		t.release(conn, false)
		return nil, err
	}
	resp, err := wire.RecvResponse(conn)
	if err != nil {
		t.release(conn, false)
		return nil, err
	}
	t.release(conn, true)
	t.metrics.ExchangeLatency.ObserveDuration(time.Since(start))
	return resp, respErr(resp)
}

// Malloc implements Transport.
func (t *TCP) Malloc(name string, size uint64) (SegmentHandle, error) {
	resp, err := t.call(&wire.Request{Op: wire.OpMalloc, Name: name, Size: size})
	if err != nil {
		return SegmentHandle{}, err
	}
	return SegmentHandle{ID: resp.Seg, Size: resp.Size}, nil
}

// Free implements Transport.
func (t *TCP) Free(seg uint32) error {
	_, err := t.call(&wire.Request{Op: wire.OpFree, Seg: seg})
	return err
}

// Write implements Transport.
func (t *TCP) Write(seg uint32, offset uint64, data []byte) error {
	q := getQueuedWrite()
	q.writes = append(q.writes, wire.BatchEntry{Seg: seg, Offset: offset, Data: data})
	err := t.combine(q)
	putQueuedWrite(q)
	return err
}

// WriteBatch implements BatchWriter: all writes travel in one frame and
// are applied atomically by the server. Batches from concurrent callers
// may be merged into one exchange; each caller's own writes stay
// contiguous and in order within it.
func (t *TCP) WriteBatch(writes []BatchWrite) error {
	if len(writes) == 0 {
		return nil
	}
	q := getQueuedWrite()
	for _, w := range writes {
		q.writes = append(q.writes, wire.BatchEntry{Seg: w.Seg, Offset: w.Offset, Data: w.Data})
	}
	err := t.combine(q)
	putQueuedWrite(q)
	return err
}

// combine sends the caller's writes, coalescing them with writes from
// concurrent callers into a single wire exchange. The first caller to
// arrive while the combiner is free leads immediately — a lone writer
// is never delayed. Callers arriving while an exchange is in flight
// queue up; when the exchange completes, the head of the queue is
// promoted to lead the next one, carrying everyone queued behind it.
func (t *TCP) combine(q *queuedWrite) error {
	t.wmu.Lock()
	if !t.wbusy {
		t.wbusy = true
		t.wmu.Unlock()
		q.batch = append(q.batch, q)
		return t.lead(q.batch, q)
	}
	q.promoted = make(chan struct{})
	q.done = make(chan struct{})
	t.wqueue = append(t.wqueue, q)
	t.wmu.Unlock()
	select {
	case <-q.done:
		return q.err
	case <-q.promoted:
		return t.lead(q.batch, q)
	}
}

// lead performs one combined exchange for batch (which contains self),
// delivers the result to the followers, and hands leadership to the
// next queued caller, if any.
func (t *TCP) lead(batch []*queuedWrite, self *queuedWrite) error {
	sp := t.tracer.Start(trace.LayerTransport, "combine")
	var err error
	if len(batch) == 1 && len(self.writes) == 1 {
		w := self.writes[0]
		t.metrics.BatchSize.Observe(1)
		_, err = t.call(&wire.Request{Op: wire.OpWrite, Seg: w.Seg, Offset: w.Offset, Data: w.Data})
		sp.EndN(1)
	} else {
		ep, _ := batchEntryPool.Get().(*[]wire.BatchEntry)
		if ep == nil {
			ep = new([]wire.BatchEntry)
		}
		entries := (*ep)[:0]
		for _, q := range batch {
			entries = append(entries, q.writes...)
		}
		t.metrics.BatchSize.Observe(uint64(len(entries)))
		if len(batch) > 1 {
			t.metrics.CombinedExchanges.Inc()
		}
		_, err = t.call(&wire.Request{Op: wire.OpWriteBatch, Batch: entries})
		sp.EndN(uint64(len(entries)))
		for i := range entries {
			entries[i] = wire.BatchEntry{} // drop payload refs before pooling
		}
		*ep = entries[:0]
		batchEntryPool.Put(ep)
	}
	for _, q := range batch {
		if q != self {
			q.err = err
			close(q.done)
		}
	}
	t.wmu.Lock()
	if len(t.wqueue) > 0 {
		next := t.wqueue[0]
		next.batch = t.wqueue
		t.wqueue = nil
		t.wmu.Unlock()
		// The queue head becomes the next exchange's leader, carrying
		// everyone queued behind it.
		t.tracer.Event(trace.LayerTransport, "leader_handoff", uint64(len(next.batch)))
		close(next.promoted)
	} else {
		t.wbusy = false
		t.wmu.Unlock()
	}
	return err
}

// Read implements Transport.
func (t *TCP) Read(seg uint32, offset uint64, n uint32) ([]byte, error) {
	resp, err := t.call(&wire.Request{Op: wire.OpRead, Seg: seg, Offset: offset, Length: n})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Fill implements Filler.
func (t *TCP) Fill(seg uint32, offset, n uint64) error {
	_, err := t.call(&wire.Request{Op: wire.OpFill, Seg: seg, Offset: offset, Size: n})
	return err
}

// Connect implements Transport.
func (t *TCP) Connect(name string) (SegmentHandle, error) {
	resp, err := t.call(&wire.Request{Op: wire.OpConnect, Name: name})
	if err != nil {
		return SegmentHandle{}, err
	}
	return SegmentHandle{ID: resp.Seg, Size: resp.Size}, nil
}

// Disconnect implements Disconnector.
func (t *TCP) Disconnect(seg uint32) error {
	_, err := t.call(&wire.Request{Op: wire.OpDisconnect, Seg: seg})
	return err
}

// List implements Transport.
func (t *TCP) List() ([]wire.SegmentInfo, error) {
	resp, err := t.call(&wire.Request{Op: wire.OpList})
	if err != nil {
		return nil, err
	}
	return resp.Segments, nil
}

// Ping implements Transport.
func (t *TCP) Ping() error {
	_, err := t.call(&wire.Request{Op: wire.OpPing})
	return err
}

// Probe implements Prober. Over a real network there is no out-of-band
// liveness channel, so a probe is a full ping exchange; TCP never runs
// on simulated time, so nothing needs to stay uncharged.
func (t *TCP) Probe() error { return t.Ping() }

// Stats fetches server-side counters; not part of the Transport
// interface but useful for tooling.
func (t *TCP) Stats() (wire.ServerStats, error) {
	resp, err := t.call(&wire.Request{Op: wire.OpStats})
	if err != nil {
		return wire.ServerStats{}, err
	}
	return resp.Stats, nil
}

// Close implements Transport. Idle connections close immediately;
// checked-out connections close as their requests finish.
func (t *TCP) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	var firstErr error
	for _, conn := range t.idle {
		if err := conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		t.total--
	}
	t.idle = nil
	t.cond.Broadcast()
	return firstErr
}

var (
	_ Transport    = (*TCP)(nil)
	_ BatchWriter  = (*TCP)(nil)
	_ Disconnector = (*TCP)(nil)
	_ Prober       = (*TCP)(nil)
	_ Filler       = (*TCP)(nil)
)

// Serve accepts connections on l and services each against srv until l is
// closed. It returns the first accept error (net.ErrClosed after a clean
// shutdown). Each connection is handled on its own goroutine; Serve
// returns only after all of them drain.
func Serve(l net.Listener, srv *memserver.Server) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			serveConn(conn, srv)
		}()
	}
}

// serveConn services one client connection until EOF or a protocol error.
func serveConn(conn net.Conn, srv *memserver.Server) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	for {
		req, err := wire.RecvRequest(conn)
		if err != nil {
			return
		}
		resp := srv.Handle(req)
		if err := wire.SendResponse(conn, resp); err != nil {
			return
		}
	}
}
