package transport

import (
	"errors"
	"fmt"
	"sync"

	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/wire"
)

// HWMirror models a network interface with transparent hardware support
// for mirroring — the PRAM, Telegraphos and SHRIMP class of NICs the
// paper singles out as making PERSEAS easier to implement. A single
// remote store is duplicated to every mirror node by the interface
// itself, so the application pays the SCI cost once regardless of the
// replication degree.
//
// HWMirror presents the whole mirror group as ONE Transport: the
// network-RAM client sees a single "remote node" whose reliability is
// that of the group.
type HWMirror struct {
	nodes []*memserver.Server
	card  *sci.Card
	clock simclock.Clock

	mu     sync.Mutex
	closed bool
	nextID uint32
	// segs maps the group-visible segment id to the per-node ids.
	segs map[uint32][]uint32
	size map[uint32]uint64
	name map[string]uint32
}

// NewHWMirror builds a hardware-mirroring transport over the given
// nodes.
func NewHWMirror(nodes []*memserver.Server, params sci.Params, clock simclock.Clock) (*HWMirror, error) {
	if len(nodes) == 0 {
		return nil, errors.New("transport: hardware mirror needs at least one node")
	}
	card, err := sci.New(params)
	if err != nil {
		return nil, err
	}
	return &HWMirror{
		nodes:  nodes,
		card:   card,
		clock:  clock,
		nextID: 1,
		segs:   make(map[uint32][]uint32),
		size:   make(map[uint32]uint64),
		name:   make(map[string]uint32),
	}, nil
}

func (t *HWMirror) check() error {
	if t.closed {
		return ErrClosed
	}
	return nil
}

// rpc charges one small request/response exchange (hardware fans the
// request out; the acknowledgement collapses in the interface).
func (t *HWMirror) rpc() {
	p := t.card.Params()
	t.clock.Advance(2 * (p.PacketBase + p.Packet16Cost))
}

// Malloc implements Transport: the segment is exported on every node,
// but the caller holds one group-visible handle.
func (t *HWMirror) Malloc(name string, size uint64) (SegmentHandle, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(); err != nil {
		return SegmentHandle{}, err
	}
	t.rpc()
	if name != "" {
		if _, ok := t.name[name]; ok {
			return SegmentHandle{}, fmt.Errorf("transport: hw-mirror segment %q exists", name)
		}
	}
	ids := make([]uint32, len(t.nodes))
	for i, node := range t.nodes {
		seg, err := node.Malloc(name, size)
		if err != nil {
			for j := 0; j < i; j++ {
				_ = t.nodes[j].Free(ids[j])
			}
			return SegmentHandle{}, err
		}
		ids[i] = seg.ID
	}
	id := t.nextID
	t.nextID++
	t.segs[id] = ids
	t.size[id] = size
	if name != "" {
		t.name[name] = id
	}
	return SegmentHandle{ID: id, Size: size}, nil
}

// Free implements Transport.
func (t *HWMirror) Free(seg uint32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(); err != nil {
		return err
	}
	t.rpc()
	ids, ok := t.segs[seg]
	if !ok {
		return fmt.Errorf("transport: hw-mirror: no segment %d", seg)
	}
	var firstErr error
	for i, node := range t.nodes {
		if err := node.Free(ids[i]); err != nil && firstErr == nil && !node.Crashed() {
			firstErr = err
		}
	}
	delete(t.segs, seg)
	delete(t.size, seg)
	for name, id := range t.name {
		if id == seg {
			delete(t.name, name)
		}
	}
	return firstErr
}

// Write implements Transport: ONE modelled SCI store, duplicated to all
// nodes by the interface hardware. At least one node must accept it.
func (t *HWMirror) Write(seg uint32, offset uint64, data []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(); err != nil {
		return err
	}
	ids, ok := t.segs[seg]
	if !ok {
		return fmt.Errorf("transport: hw-mirror: no segment %d", seg)
	}
	t.clock.Advance(t.card.StoreLatency(offset, len(data)))
	wrote := 0
	var lastErr error
	for i, node := range t.nodes {
		if err := node.Write(ids[i], offset, data); err != nil {
			lastErr = err
			continue
		}
		wrote++
	}
	if wrote == 0 {
		return fmt.Errorf("transport: hw-mirror write reached no node: %w", lastErr)
	}
	return nil
}

// WriteBatch implements BatchWriter: one SCI charge per entry, the
// hardware fans each store out to every node.
func (t *HWMirror) WriteBatch(writes []BatchWrite) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(); err != nil {
		return err
	}
	perNode := make([][]wire.BatchEntry, len(t.nodes))
	for _, w := range writes {
		ids, ok := t.segs[w.Seg]
		if !ok {
			return fmt.Errorf("transport: hw-mirror: no segment %d", w.Seg)
		}
		t.clock.Advance(t.card.StoreLatency(w.Offset, len(w.Data)))
		for i := range t.nodes {
			perNode[i] = append(perNode[i], wire.BatchEntry{Seg: ids[i], Offset: w.Offset, Data: w.Data})
		}
	}
	wrote := 0
	var lastErr error
	for i, node := range t.nodes {
		if err := node.WriteBatch(perNode[i]); err != nil {
			lastErr = err
			continue
		}
		wrote++
	}
	if wrote == 0 {
		return fmt.Errorf("transport: hw-mirror batch reached no node: %w", lastErr)
	}
	return nil
}

// Read implements Transport: served by the first live node.
func (t *HWMirror) Read(seg uint32, offset uint64, n uint32) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(); err != nil {
		return nil, err
	}
	ids, ok := t.segs[seg]
	if !ok {
		return nil, fmt.Errorf("transport: hw-mirror: no segment %d", seg)
	}
	t.clock.Advance(t.card.ReadLatency(offset, int(n)))
	var lastErr error
	for i, node := range t.nodes {
		data, err := node.Read(ids[i], offset, n)
		if err == nil {
			return data, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("transport: hw-mirror read: %w", lastErr)
}

// Connect implements Transport.
func (t *HWMirror) Connect(name string) (SegmentHandle, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(); err != nil {
		return SegmentHandle{}, err
	}
	t.rpc()
	id, ok := t.name[name]
	if !ok {
		// The group-side mapping died with the client process; rebuild
		// it from the surviving nodes.
		return t.reconnectLocked(name)
	}
	// Take one reference on each node holding the segment so the group
	// reference count mirrors what Disconnect will later drop.
	for _, node := range t.nodes {
		if !node.Crashed() {
			_, _ = node.Connect(name)
		}
	}
	return SegmentHandle{ID: id, Size: t.size[id]}, nil
}

// reconnectLocked rebuilds a group handle from whichever nodes still
// hold the named segment.
func (t *HWMirror) reconnectLocked(name string) (SegmentHandle, error) {
	ids := make([]uint32, len(t.nodes))
	var size uint64
	found := 0
	for i, node := range t.nodes {
		seg, err := node.Connect(name)
		if err != nil {
			continue
		}
		ids[i] = seg.ID
		size = uint64(len(seg.Data))
		found++
	}
	if found == 0 {
		return SegmentHandle{}, fmt.Errorf("transport: hw-mirror: no node holds %q", name)
	}
	id := t.nextID
	t.nextID++
	t.segs[id] = ids
	t.size[id] = size
	t.name[name] = id
	return SegmentHandle{ID: id, Size: size}, nil
}

// Disconnect implements Disconnector: the reference is dropped on every
// node that still holds the segment.
func (t *HWMirror) Disconnect(seg uint32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(); err != nil {
		return err
	}
	t.rpc()
	ids, ok := t.segs[seg]
	if !ok {
		return fmt.Errorf("transport: hw-mirror: no segment %d", seg)
	}
	var firstErr error
	for i, node := range t.nodes {
		if err := node.Disconnect(ids[i]); err != nil && firstErr == nil && !node.Crashed() {
			firstErr = err
		}
	}
	return firstErr
}

// List implements Transport (from the first live node).
func (t *HWMirror) List() ([]wire.SegmentInfo, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(); err != nil {
		return nil, err
	}
	t.rpc()
	for _, node := range t.nodes {
		if !node.Crashed() {
			return node.List(), nil
		}
	}
	return nil, errors.New("transport: hw-mirror: all nodes down")
}

// Ping implements Transport: the group answers while any node lives.
func (t *HWMirror) Ping() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(); err != nil {
		return err
	}
	t.rpc()
	for _, node := range t.nodes {
		if node.Probe() == nil {
			return nil
		}
	}
	return errors.New("transport: hw-mirror: all nodes down")
}

// Probe implements Prober: the group is alive while any node lives.
// Like the per-node probe it charges no virtual time — liveness rides
// the interface's idle cycles.
func (t *HWMirror) Probe() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.check(); err != nil {
		return err
	}
	for _, node := range t.nodes {
		if node.Probe() == nil {
			return nil
		}
	}
	return errors.New("transport: hw-mirror: all nodes down")
}

// Close implements Transport.
func (t *HWMirror) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	return nil
}

var (
	_ Transport    = (*HWMirror)(nil)
	_ BatchWriter  = (*HWMirror)(nil)
	_ Disconnector = (*HWMirror)(nil)
	_ Prober       = (*HWMirror)(nil)
)
