// Package transport connects the PERSEAS client library to remote memory
// servers.
//
// Two implementations are provided. InProc holds a direct reference to a
// memserver.Server in the same process and charges every operation's
// modelled PCI-SCI latency to a virtual clock — this is the configuration
// used to reproduce the paper's figures deterministically. TCP speaks the
// wire protocol over a real network connection, demonstrating the same
// client-server protocol between genuinely separate processes.
package transport

import (
	"errors"
	"fmt"

	"github.com/ics-forth/perseas/internal/wire"
)

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// SegmentHandle identifies a remote segment mapped through a transport.
type SegmentHandle struct {
	// ID is the server-side segment id.
	ID uint32
	// Size is the segment length in bytes.
	Size uint64
}

// Transport is a connection to one remote memory server. Implementations
// must be safe for concurrent use by a single client process.
type Transport interface {
	// Malloc exports a new named segment on the remote node.
	Malloc(name string, size uint64) (SegmentHandle, error)
	// Free releases a remote segment.
	Free(seg uint32) error
	// Write copies data into remote memory (the remote half of the
	// paper's sci_memcpy).
	Write(seg uint32, offset uint64, data []byte) error
	// Read copies bytes back from remote memory; used by recovery.
	Read(seg uint32, offset uint64, n uint32) ([]byte, error)
	// Connect re-maps an existing named segment after a client crash.
	Connect(name string) (SegmentHandle, error)
	// List enumerates live remote segments.
	List() ([]wire.SegmentInfo, error)
	// Ping verifies the remote node is alive.
	Ping() error
	// Close releases the connection. The remote segments survive.
	Close() error
}

// BatchWrite is one write of a WriteBatch call.
type BatchWrite struct {
	Seg    uint32
	Offset uint64
	Data   []byte
}

// BatchWriter is implemented by transports that can apply several writes
// in one exchange — one network round trip instead of one per range. The
// server validates the whole batch before applying any of it.
type BatchWriter interface {
	WriteBatch(writes []BatchWrite) error
}

// Disconnector is implemented by transports whose server tracks client
// references per segment. Disconnect releases one reference taken by
// Connect, so a client that abandons a half-assembled region (for
// example, a mirror disagreeing on a region's size) leaves nothing
// attached on the remote node.
type Disconnector interface {
	Disconnect(seg uint32) error
}

// Prober is implemented by transports that support a lightweight
// out-of-band liveness probe: the heartbeat a failure detector sends
// every interval. Unlike Ping — a full protocol exchange — a probe is
// modelled as riding the interconnect's idle cycles, so on the
// simulated transports it charges no virtual time; a failure detector
// polling every few milliseconds therefore cannot shift a reproduced
// figure. Transports without the capability fall back to Ping.
type Prober interface {
	Probe() error
}

// Filler is implemented by transports that can zero a remote range
// server-side in one small exchange, instead of shipping a payload of
// zero bytes. Recovery uses it to clear the stale tail of a republished
// undo log; transports without the capability fall back to chunked
// zero writes.
type Filler interface {
	Fill(seg uint32, offset, n uint64) error
}

// respErr converts an error response into a Go error.
func respErr(resp *wire.Response) error {
	if resp.Status == wire.StatusOK {
		return nil
	}
	if resp.Err == "" {
		return errors.New("transport: remote error")
	}
	return fmt.Errorf("transport: remote: %s", resp.Err)
}
