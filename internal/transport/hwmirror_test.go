package transport

import (
	"bytes"
	"testing"

	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
)

func newHW(t *testing.T, n int) (*HWMirror, []*memserver.Server, *simclock.SimClock) {
	t.Helper()
	clock := simclock.NewSim()
	var nodes []*memserver.Server
	for i := 0; i < n; i++ {
		nodes = append(nodes, memserver.New())
	}
	hw, err := NewHWMirror(nodes, sci.DefaultParams(), clock)
	if err != nil {
		t.Fatal(err)
	}
	return hw, nodes, clock
}

func TestHWMirrorContract(t *testing.T) {
	hw, _, _ := newHW(t, 2)
	transportContract(t, hw)
}

func TestHWMirrorValidation(t *testing.T) {
	if _, err := NewHWMirror(nil, sci.DefaultParams(), simclock.NewSim()); err == nil {
		t.Error("empty node list should be rejected")
	}
	bad := sci.DefaultParams()
	bad.PacketBase = 0
	if _, err := NewHWMirror([]*memserver.Server{memserver.New()}, bad, simclock.NewSim()); err == nil {
		t.Error("invalid params should be rejected")
	}
}

func TestHWMirrorWriteReachesAllNodes(t *testing.T) {
	hw, nodes, _ := newHW(t, 3)
	seg, err := hw.Malloc("db", 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := hw.Write(seg.ID, 10, []byte("broadcast")); err != nil {
		t.Fatal(err)
	}
	for i, node := range nodes {
		s, err := node.Connect("db")
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		got, err := node.Read(s.ID, 10, 9)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, []byte("broadcast")) {
			t.Errorf("node %d holds %q", i, got)
		}
	}
}

func TestHWMirrorWriteCostIndependentOfDegree(t *testing.T) {
	// The hardware duplicates packets: writing through a 1-node and a
	// 3-node group must charge identical virtual time.
	hw1, _, clock1 := newHW(t, 1)
	hw3, _, clock3 := newHW(t, 3)
	seg1, err := hw1.Malloc("db", 1024)
	if err != nil {
		t.Fatal(err)
	}
	seg3, err := hw3.Malloc("db", 1024)
	if err != nil {
		t.Fatal(err)
	}
	t1, t3 := clock1.Now(), clock3.Now()
	if err := hw1.Write(seg1.ID, 0, make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	if err := hw3.Write(seg3.ID, 0, make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	d1, d3 := clock1.Now()-t1, clock3.Now()-t3
	if d1 != d3 {
		t.Errorf("write cost depends on degree: 1 node %v, 3 nodes %v", d1, d3)
	}
}

func TestHWMirrorSurvivesNodeLoss(t *testing.T) {
	hw, nodes, _ := newHW(t, 2)
	seg, err := hw.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := hw.Write(seg.ID, 0, []byte("redundant")); err != nil {
		t.Fatal(err)
	}
	nodes[0].Crash()
	// Writes and reads keep flowing through the survivor.
	if err := hw.Write(seg.ID, 0, []byte("still-up!")); err != nil {
		t.Fatalf("write with node down: %v", err)
	}
	got, err := hw.Read(seg.ID, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "still-up!" {
		t.Errorf("read %q", got)
	}
	if err := hw.Ping(); err != nil {
		t.Errorf("ping with one node alive: %v", err)
	}
	nodes[1].Crash()
	if err := hw.Ping(); err == nil {
		t.Error("ping with all nodes down should fail")
	}
	if err := hw.Write(seg.ID, 0, []byte("x")); err == nil {
		t.Error("write with all nodes down should fail")
	}
}

func TestHWMirrorReconnectAfterClientLoss(t *testing.T) {
	// The group mapping lives in the client process; after it dies, a
	// fresh HWMirror over the same nodes rebuilds handles by name.
	_, nodes, clock := newHW(t, 2)
	first, err := NewHWMirror(nodes, sci.DefaultParams(), clock)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := first.Malloc("perseas.meta", 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Write(seg.ID, 0, []byte("survives")); err != nil {
		t.Fatal(err)
	}

	second, err := NewHWMirror(nodes, sci.DefaultParams(), clock)
	if err != nil {
		t.Fatal(err)
	}
	h, err := second.Connect("perseas.meta")
	if err != nil {
		t.Fatalf("reconnect: %v", err)
	}
	if h.Size != 128 {
		t.Errorf("size = %d", h.Size)
	}
	got, err := second.Read(h.ID, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "survives" {
		t.Errorf("read %q", got)
	}
}

func TestHWMirrorMallocUnwindsOnFailure(t *testing.T) {
	clock := simclock.NewSim()
	big := memserver.New()
	small := memserver.New(memserver.WithCapacity(32))
	hw, err := NewHWMirror([]*memserver.Server{big, small}, sci.DefaultParams(), clock)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hw.Malloc("db", 64); err == nil {
		t.Fatal("malloc should fail when one node lacks memory")
	}
	if got := big.Held(); got != 0 {
		t.Errorf("big node still holds %d bytes", got)
	}
}
