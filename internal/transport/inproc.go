package transport

import (
	"fmt"
	"sync"
	"time"

	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/wire"
)

// InProc is a transport to a memory server living in the same process.
// Data moves by direct memory copy, exactly as it does over a
// memory-mapped SCI segment, and every operation charges its modelled
// PCI-SCI cost to the supplied clock. This is the deterministic
// configuration behind all reproduced figures.
type InProc struct {
	server *memserver.Server
	card   *sci.Card
	clock  simclock.Clock
	// hopDelay is added to every remote operation for intermediate ring
	// hops between this client and the server node.
	hopDelay time.Duration

	mu     sync.Mutex
	closed bool
}

// InProcOption configures an InProc transport.
type InProcOption func(*InProc)

// WithHops places the remote node the given number of intermediate ring
// hops downstream, adding hops*HopCost to every operation.
func WithHops(hops int, params sci.Params) InProcOption {
	return func(t *InProc) {
		if hops > 0 {
			t.hopDelay = time.Duration(hops) * params.HopCost
		}
	}
}

// NewInProc builds an in-process transport to server, modelling the NIC
// with the given SCI parameters and charging time to clock.
func NewInProc(server *memserver.Server, params sci.Params, clock simclock.Clock, opts ...InProcOption) (*InProc, error) {
	card, err := sci.New(params)
	if err != nil {
		return nil, err
	}
	t := &InProc{server: server, card: card, clock: clock}
	for _, o := range opts {
		o(t)
	}
	return t, nil
}

// Card exposes the transport's NIC model for traffic inspection.
func (t *InProc) Card() *sci.Card { return t.card }

// Server exposes the in-process remote node (tests use this to inject
// crashes).
func (t *InProc) Server() *memserver.Server { return t.server }

func (t *InProc) check() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	return nil
}

// rpc charges the modelled cost of a small request/response exchange:
// one short store each way plus ring hops in both directions.
func (t *InProc) rpc() {
	p := t.card.Params()
	t.clock.Advance(2*(p.PacketBase+p.Packet16Cost) + 2*t.hopDelay)
}

// Malloc implements Transport.
func (t *InProc) Malloc(name string, size uint64) (SegmentHandle, error) {
	if err := t.check(); err != nil {
		return SegmentHandle{}, err
	}
	t.rpc()
	seg, err := t.server.Malloc(name, size)
	if err != nil {
		return SegmentHandle{}, err
	}
	return SegmentHandle{ID: seg.ID, Size: uint64(len(seg.Data))}, nil
}

// Free implements Transport.
func (t *InProc) Free(seg uint32) error {
	if err := t.check(); err != nil {
		return err
	}
	t.rpc()
	return t.server.Free(seg)
}

// Write implements Transport. The remote store cost is modelled from the
// destination offset exactly as the card would see the physical address:
// exported segments are 64-byte aligned, so the offset within the segment
// determines gather-buffer mapping and packetisation.
func (t *InProc) Write(seg uint32, offset uint64, data []byte) error {
	if err := t.check(); err != nil {
		return err
	}
	t.clock.Advance(t.card.StoreLatency(offset, len(data)) + t.hopDelay)
	return t.server.Write(seg, offset, data)
}

// WriteBatch implements BatchWriter. On the SCI model a batch is simply
// the same sequence of remote stores — each range still pays its own
// packetisation, so batched and unbatched commits cost identical virtual
// time; the batch only removes per-request round trips on transports
// that have them.
func (t *InProc) WriteBatch(writes []BatchWrite) error {
	if err := t.check(); err != nil {
		return err
	}
	ep, _ := batchEntryPool.Get().(*[]wire.BatchEntry)
	if ep == nil {
		ep = new([]wire.BatchEntry)
	}
	entries := (*ep)[:0]
	for _, w := range writes {
		entries = append(entries, wire.BatchEntry{Seg: w.Seg, Offset: w.Offset, Data: w.Data})
		t.clock.Advance(t.card.StoreLatency(w.Offset, len(w.Data)) + t.hopDelay)
	}
	err := t.server.WriteBatch(entries)
	for i := range entries {
		entries[i] = wire.BatchEntry{} // drop payload refs before pooling
	}
	*ep = entries[:0]
	batchEntryPool.Put(ep)
	return err
}

// batchEntryPool recycles the wire.BatchEntry conversion buffers of
// WriteBatch across all InProc transports, keeping the simulated
// commit path allocation-free.
var batchEntryPool sync.Pool

// Read implements Transport.
func (t *InProc) Read(seg uint32, offset uint64, n uint32) ([]byte, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	t.clock.Advance(t.card.ReadLatency(offset, int(n)) + t.hopDelay)
	return t.server.Read(seg, offset, n)
}

// Fill implements Filler. A fill is one small request frame regardless
// of n — the zeroing happens on the remote node — so it costs a plain
// round trip, not a store of n bytes.
func (t *InProc) Fill(seg uint32, offset, n uint64) error {
	if err := t.check(); err != nil {
		return err
	}
	t.rpc()
	return t.server.Fill(seg, offset, n)
}

// Connect implements Transport.
func (t *InProc) Connect(name string) (SegmentHandle, error) {
	if err := t.check(); err != nil {
		return SegmentHandle{}, err
	}
	t.rpc()
	seg, err := t.server.Connect(name)
	if err != nil {
		return SegmentHandle{}, err
	}
	return SegmentHandle{ID: seg.ID, Size: uint64(len(seg.Data))}, nil
}

// Disconnect implements Disconnector.
func (t *InProc) Disconnect(seg uint32) error {
	if err := t.check(); err != nil {
		return err
	}
	t.rpc()
	return t.server.Disconnect(seg)
}

// List implements Transport.
func (t *InProc) List() ([]wire.SegmentInfo, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	t.rpc()
	return t.server.List(), nil
}

// Probe implements Prober: an out-of-band liveness check that charges
// no virtual time, so a failure detector heartbeating every interval
// leaves every reproduced figure byte-identical.
func (t *InProc) Probe() error {
	if err := t.check(); err != nil {
		return err
	}
	if err := t.server.Probe(); err != nil {
		return fmt.Errorf("transport: %w", err)
	}
	return nil
}

// Ping implements Transport.
func (t *InProc) Ping() error {
	if err := t.check(); err != nil {
		return err
	}
	t.rpc()
	if err := t.server.Probe(); err != nil {
		return fmt.Errorf("transport: %w", err)
	}
	return nil
}

// Close implements Transport.
func (t *InProc) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	return nil
}

var (
	_ Transport    = (*InProc)(nil)
	_ BatchWriter  = (*InProc)(nil)
	_ Disconnector = (*InProc)(nil)
	_ Prober       = (*InProc)(nil)
	_ Filler       = (*InProc)(nil)
)
