package transport

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/memserver"
)

// TestTCPManyConcurrentClients hammers one memory server with many
// simultaneous TCP clients, each working its own segment, and verifies
// every byte afterwards. This is the server's real deployment shape: the
// paper's remote node donates memory to whatever workstations ask.
func TestTCPManyConcurrentClients(t *testing.T) {
	srv := memserver.New()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = Serve(l, srv)
	}()
	defer func() {
		l.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not drain")
		}
	}()

	const (
		clients = 12
		rounds  = 60
		segSize = 8 << 10
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := DialTCP(l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			seg, err := cli.Malloc(fmt.Sprintf("client-%d", c), segSize)
			if err != nil {
				errs <- err
				return
			}
			pattern := bytes.Repeat([]byte{byte(c + 1)}, 512)
			for r := 0; r < rounds; r++ {
				off := uint64((r * 512) % segSize)
				if err := cli.Write(seg.ID, off, pattern); err != nil {
					errs <- fmt.Errorf("client %d write: %w", c, err)
					return
				}
				got, err := cli.Read(seg.ID, off, 512)
				if err != nil {
					errs <- fmt.Errorf("client %d read: %w", c, err)
					return
				}
				if !bytes.Equal(got, pattern) {
					errs <- fmt.Errorf("client %d corruption at round %d", c, r)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every client's segment holds exactly its own pattern.
	for c := 0; c < clients; c++ {
		seg, err := srv.Connect(fmt.Sprintf("client-%d", c))
		if err != nil {
			t.Fatalf("client %d segment missing: %v", c, err)
		}
		for i, b := range seg.Data {
			if b != byte(c+1) {
				t.Fatalf("client %d byte %d = %d (cross-client corruption)", c, i, b)
			}
		}
	}
	if got := srv.Held(); got != clients*segSize {
		t.Errorf("Held = %d, want %d", got, clients*segSize)
	}
}
