// Package memserver implements the remote node's memory server.
//
// In the paper's client-server model the server process runs on the
// remote workstation and is responsible for accepting requests (remote
// malloc and free) and manipulating its main memory: exporting physical
// memory segments and freeing them when necessary. Exported segments are
// plain byte slices here; the client maps them through a transport.
//
// Segments carry names so that a client restarting after a crash can
// reconnect to the segments it lost the pointers to (the paper's
// sci_connect_segment): first the PERSEAS metadata segments, then from
// those the mirrored database records.
package memserver

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/ics-forth/perseas/internal/wire"
)

// Errors returned by server operations.
var (
	// ErrNoSuchSegment is returned for operations on unknown segment ids.
	ErrNoSuchSegment = errors.New("memserver: no such segment")
	// ErrNoSuchName is returned when Connect finds no segment by name.
	ErrNoSuchName = errors.New("memserver: no segment with that name")
	// ErrNameInUse is returned when Malloc reuses a live segment name.
	ErrNameInUse = errors.New("memserver: segment name already in use")
	// ErrOutOfMemory is returned when an allocation would exceed the
	// server's exported-memory budget.
	ErrOutOfMemory = errors.New("memserver: exported memory budget exhausted")
	// ErrBadRange is returned when a read or write falls outside a
	// segment.
	ErrBadRange = errors.New("memserver: access outside segment bounds")
	// ErrBadSize is returned for zero or negative allocation sizes.
	ErrBadSize = errors.New("memserver: allocation size must be positive")
)

// Segment is one exported main-memory region.
type Segment struct {
	// ID is the server-assigned handle.
	ID uint32
	// Name is the optional reconnection name ("" for anonymous).
	Name string
	// Data is the exported memory itself.
	Data []byte
	// conns counts live client references taken via Connect and dropped
	// via Disconnect, guarded by the server mutex. Leaked references
	// show up in List as a non-zero Conns on a segment nobody uses.
	conns uint32
}

// Stats counts the traffic a server has absorbed.
type Stats struct {
	Mallocs      uint64
	Frees        uint64
	WriteOps     uint64
	ReadOps      uint64
	BytesWritten uint64
	BytesRead    uint64
	Connects     uint64
	Disconnects  uint64
	BatchOps     uint64
}

// Server is a remote-memory server instance. The zero value is not
// usable; construct with New.
type Server struct {
	mu       sync.RWMutex
	segs     map[uint32]*Segment
	byName   map[string]uint32
	nextID   uint32
	capacity uint64
	held     uint64
	stats    Stats
	crashed  bool
	// partitioned simulates a network partition or OS hang: the node
	// stops answering every request — including health probes — but its
	// memory survives, unlike a Crash. Heal reconnects it.
	partitioned bool
	nodeLabel   string
}

// Option configures a Server.
type Option func(*Server)

// WithCapacity bounds the total bytes the server will export. Zero (the
// default) means unbounded.
func WithCapacity(bytes uint64) Option {
	return func(s *Server) { s.capacity = bytes }
}

// WithLabel names the server in error messages (useful with several
// mirror nodes).
func WithLabel(label string) Option {
	return func(s *Server) { s.nodeLabel = label }
}

// New returns an empty memory server.
func New(opts ...Option) *Server {
	s := &Server{
		segs:      make(map[uint32]*Segment),
		byName:    make(map[string]uint32),
		nextID:    1,
		nodeLabel: "remote",
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Label returns the server's diagnostic label.
func (s *Server) Label() string { return s.nodeLabel }

// Malloc exports a new zeroed segment of the given size. If name is
// non-empty it is registered for post-crash reconnection and must be
// unique among live segments.
func (s *Server) Malloc(name string, size uint64) (*Segment, error) {
	if size == 0 {
		return nil, ErrBadSize
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkAlive(); err != nil {
		return nil, err
	}
	if name != "" {
		if _, ok := s.byName[name]; ok {
			return nil, fmt.Errorf("%w: %q", ErrNameInUse, name)
		}
	}
	if s.capacity != 0 && s.held+size > s.capacity {
		return nil, fmt.Errorf("%w: held %d + want %d > cap %d",
			ErrOutOfMemory, s.held, size, s.capacity)
	}
	seg := &Segment{ID: s.nextID, Name: name, Data: make([]byte, size)}
	s.nextID++
	s.segs[seg.ID] = seg
	if name != "" {
		s.byName[name] = seg.ID
	}
	s.held += size
	s.stats.Mallocs++
	return seg, nil
}

// Free releases a segment.
func (s *Server) Free(id uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkAlive(); err != nil {
		return err
	}
	seg, ok := s.segs[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrNoSuchSegment, id)
	}
	delete(s.segs, id)
	if seg.Name != "" {
		delete(s.byName, seg.Name)
	}
	s.held -= uint64(len(seg.Data))
	s.stats.Frees++
	return nil
}

// Write copies data into a segment at the given offset.
func (s *Server) Write(id uint32, offset uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkAlive(); err != nil {
		return err
	}
	seg, ok := s.segs[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrNoSuchSegment, id)
	}
	if offset > uint64(len(seg.Data)) || uint64(len(data)) > uint64(len(seg.Data))-offset {
		return fmt.Errorf("%w: write [%d,+%d) into %d-byte segment %d",
			ErrBadRange, offset, len(data), len(seg.Data), id)
	}
	copy(seg.Data[offset:], data)
	s.stats.WriteOps++
	s.stats.BytesWritten += uint64(len(data))
	return nil
}

// WriteBatch applies several writes atomically: every entry is validated
// against the live segment table before any byte moves, so a bad entry
// leaves the node's memory untouched.
func (s *Server) WriteBatch(entries []wire.BatchEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkAlive(); err != nil {
		return err
	}
	for i, e := range entries {
		seg, ok := s.segs[e.Seg]
		if !ok {
			return fmt.Errorf("%w: batch entry %d: id %d", ErrNoSuchSegment, i, e.Seg)
		}
		if e.Offset > uint64(len(seg.Data)) || uint64(len(e.Data)) > uint64(len(seg.Data))-e.Offset {
			return fmt.Errorf("%w: batch entry %d: [%d,+%d) into %d-byte segment %d",
				ErrBadRange, i, e.Offset, len(e.Data), len(seg.Data), e.Seg)
		}
	}
	for _, e := range entries {
		copy(s.segs[e.Seg].Data[e.Offset:], e.Data)
		s.stats.WriteOps++
		s.stats.BytesWritten += uint64(len(e.Data))
	}
	s.stats.BatchOps++
	return nil
}

// Fill zeroes n bytes of a segment starting at offset — a write whose
// payload never crosses the wire. Accounted as a write of n bytes so
// the node's byte counters still reflect the memory it touched.
func (s *Server) Fill(id uint32, offset, n uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkAlive(); err != nil {
		return err
	}
	seg, ok := s.segs[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrNoSuchSegment, id)
	}
	if offset > uint64(len(seg.Data)) || n > uint64(len(seg.Data))-offset {
		return fmt.Errorf("%w: fill [%d,+%d) into %d-byte segment %d",
			ErrBadRange, offset, n, len(seg.Data), id)
	}
	zero := seg.Data[offset : offset+n]
	for i := range zero {
		zero[i] = 0
	}
	s.stats.WriteOps++
	s.stats.BytesWritten += n
	return nil
}

// Read copies n bytes out of a segment starting at offset.
func (s *Server) Read(id uint32, offset uint64, n uint32) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkAlive(); err != nil {
		return nil, err
	}
	seg, ok := s.segs[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNoSuchSegment, id)
	}
	if offset > uint64(len(seg.Data)) || uint64(n) > uint64(len(seg.Data))-offset {
		return nil, fmt.Errorf("%w: read [%d,+%d) from %d-byte segment %d",
			ErrBadRange, offset, n, len(seg.Data), id)
	}
	out := make([]byte, n)
	copy(out, seg.Data[offset:])
	s.stats.ReadOps++
	s.stats.BytesRead += uint64(n)
	return out, nil
}

// Connect looks up a named segment for a reconnecting client and takes
// one reference on it; Disconnect drops the reference.
func (s *Server) Connect(name string) (*Segment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkAlive(); err != nil {
		return nil, err
	}
	id, ok := s.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchName, name)
	}
	seg := s.segs[id]
	seg.conns++
	s.stats.Connects++
	return seg, nil
}

// Disconnect drops one client reference taken by Connect. The segment
// itself stays exported — references only track who is attached, so
// tooling can tell an abandoned segment from a live one.
func (s *Server) Disconnect(id uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkAlive(); err != nil {
		return err
	}
	seg, ok := s.segs[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrNoSuchSegment, id)
	}
	if seg.conns > 0 {
		seg.conns--
	}
	s.stats.Disconnects++
	return nil
}

// Get returns a live segment by id. Transports use this to map segment
// memory directly.
func (s *Server) Get(id uint32) (*Segment, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.checkAlive(); err != nil {
		return nil, err
	}
	seg, ok := s.segs[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNoSuchSegment, id)
	}
	return seg, nil
}

// List enumerates live segments ordered by id.
func (s *Server) List() []wire.SegmentInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]wire.SegmentInfo, 0, len(s.segs))
	for _, seg := range s.segs {
		out = append(out, wire.SegmentInfo{ID: seg.ID, Size: uint64(len(seg.Data)), Name: seg.Name, Conns: seg.conns})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// Held reports the bytes currently exported.
func (s *Server) Held() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.held
}

// Crash simulates the remote node losing power or halting: all exported
// segments vanish and every subsequent operation fails until Restart.
func (s *Server) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashed = true
	s.segs = make(map[uint32]*Segment)
	s.byName = make(map[string]uint32)
	s.held = 0
}

// Restart brings a crashed server back with empty memory.
func (s *Server) Restart() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashed = false
}

// Crashed reports whether the server is down.
func (s *Server) Crashed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.crashed
}

// Partition simulates a network partition or OS hang: every subsequent
// operation — including health probes — fails until Heal, but exported
// memory survives. A failure detector cannot tell a partitioned node
// from a crashed one; only what happens after reintegration differs.
func (s *Server) Partition() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.partitioned = true
}

// Heal ends a partition; the node answers again with its memory intact.
func (s *Server) Heal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.partitioned = false
}

// Partitioned reports whether the server is unreachable but alive.
func (s *Server) Partitioned() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.partitioned
}

// Probe is the server half of the lightweight liveness probe a failure
// detector heartbeats with: it answers exactly when regular operations
// would, without touching the traffic counters.
func (s *Server) Probe() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.checkAlive()
}

func (s *Server) checkAlive() error {
	if s.crashed {
		return fmt.Errorf("memserver: node %s is down", s.nodeLabel)
	}
	if s.partitioned {
		return fmt.Errorf("memserver: node %s is unreachable", s.nodeLabel)
	}
	return nil
}

// Handle services one wire request, producing the matching response.
// Transport loops (TCP, in-process pipes) call this for every frame.
func (s *Server) Handle(req *wire.Request) *wire.Response {
	fail := func(err error) *wire.Response {
		return &wire.Response{Status: wire.StatusError, Err: err.Error()}
	}
	switch req.Op {
	case wire.OpMalloc:
		seg, err := s.Malloc(req.Name, req.Size)
		if err != nil {
			return fail(err)
		}
		return &wire.Response{Status: wire.StatusOK, Seg: seg.ID, Size: uint64(len(seg.Data))}
	case wire.OpFree:
		if err := s.Free(req.Seg); err != nil {
			return fail(err)
		}
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpWrite:
		if err := s.Write(req.Seg, req.Offset, req.Data); err != nil {
			return fail(err)
		}
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpWriteBatch:
		if err := s.WriteBatch(req.Batch); err != nil {
			return fail(err)
		}
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpRead:
		data, err := s.Read(req.Seg, req.Offset, req.Length)
		if err != nil {
			return fail(err)
		}
		return &wire.Response{Status: wire.StatusOK, Data: data}
	case wire.OpFill:
		if err := s.Fill(req.Seg, req.Offset, req.Size); err != nil {
			return fail(err)
		}
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpConnect:
		seg, err := s.Connect(req.Name)
		if err != nil {
			return fail(err)
		}
		return &wire.Response{Status: wire.StatusOK, Seg: seg.ID, Size: uint64(len(seg.Data))}
	case wire.OpDisconnect:
		if err := s.Disconnect(req.Seg); err != nil {
			return fail(err)
		}
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpList:
		return &wire.Response{Status: wire.StatusOK, Segments: s.List()}
	case wire.OpPing:
		if err := s.Probe(); err != nil {
			return fail(err)
		}
		return &wire.Response{Status: wire.StatusOK}
	case wire.OpStats:
		st := s.Stats()
		return &wire.Response{Status: wire.StatusOK, Stats: wire.ServerStats{
			Segments:     uint32(len(s.List())),
			BytesHeld:    s.Held(),
			WriteOps:     st.WriteOps,
			ReadOps:      st.ReadOps,
			BytesWritten: st.BytesWritten,
			BytesRead:    st.BytesRead,
			Mallocs:      st.Mallocs,
			Frees:        st.Frees,
			Connects:     st.Connects,
			Disconnects:  st.Disconnects,
			BatchOps:     st.BatchOps,
		}}
	default:
		return fail(fmt.Errorf("memserver: unknown op %v", req.Op))
	}
}
