package memserver

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"github.com/ics-forth/perseas/internal/wire"
)

func TestMallocFree(t *testing.T) {
	s := New()
	seg, err := s.Malloc("db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if seg.ID == 0 || len(seg.Data) != 4096 || seg.Name != "db" {
		t.Fatalf("unexpected segment %+v", seg)
	}
	if got := s.Held(); got != 4096 {
		t.Errorf("Held = %d, want 4096", got)
	}
	if err := s.Free(seg.ID); err != nil {
		t.Fatal(err)
	}
	if got := s.Held(); got != 0 {
		t.Errorf("Held after free = %d, want 0", got)
	}
	if err := s.Free(seg.ID); !errors.Is(err, ErrNoSuchSegment) {
		t.Errorf("double free: got %v, want ErrNoSuchSegment", err)
	}
}

func TestMallocZeroSize(t *testing.T) {
	s := New()
	if _, err := s.Malloc("x", 0); !errors.Is(err, ErrBadSize) {
		t.Errorf("got %v, want ErrBadSize", err)
	}
}

func TestMallocDuplicateName(t *testing.T) {
	s := New()
	if _, err := s.Malloc("db", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Malloc("db", 64); !errors.Is(err, ErrNameInUse) {
		t.Errorf("got %v, want ErrNameInUse", err)
	}
	// Anonymous segments never collide.
	if _, err := s.Malloc("", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Malloc("", 64); err != nil {
		t.Fatal(err)
	}
	// Freed names become reusable.
	seg, err := s.Connect("db")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Free(seg.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Malloc("db", 64); err != nil {
		t.Errorf("name should be reusable after free: %v", err)
	}
}

func TestCapacity(t *testing.T) {
	s := New(WithCapacity(100))
	if _, err := s.Malloc("a", 60); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Malloc("b", 60); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("got %v, want ErrOutOfMemory", err)
	}
	if _, err := s.Malloc("c", 40); err != nil {
		t.Errorf("exact fit should succeed: %v", err)
	}
}

func TestWriteRead(t *testing.T) {
	s := New()
	seg, err := s.Malloc("db", 128)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("the quick brown fox")
	if err := s.Write(seg.ID, 10, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(seg.ID, 10, uint32(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("read back %q, want %q", got, payload)
	}
	// Remaining bytes stay zero.
	head, err := s.Read(seg.ID, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(head, make([]byte, 10)) {
		t.Errorf("head = %v, want zeros", head)
	}
}

func TestWriteReadBounds(t *testing.T) {
	s := New()
	seg, err := s.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		offset uint64
		n      int
	}{
		{"past end", 65, 1},
		{"spills over", 60, 8},
		{"huge offset", 1 << 40, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := s.Write(seg.ID, tt.offset, make([]byte, tt.n)); !errors.Is(err, ErrBadRange) {
				t.Errorf("write: got %v, want ErrBadRange", err)
			}
			if _, err := s.Read(seg.ID, tt.offset, uint32(tt.n)); !errors.Is(err, ErrBadRange) {
				t.Errorf("read: got %v, want ErrBadRange", err)
			}
		})
	}
	// Zero-length access at the very end is legal.
	if err := s.Write(seg.ID, 64, nil); err != nil {
		t.Errorf("empty write at end: %v", err)
	}
	if err := s.Write(99, 0, []byte{1}); !errors.Is(err, ErrNoSuchSegment) {
		t.Errorf("write to unknown segment: got %v", err)
	}
	if _, err := s.Read(99, 0, 1); !errors.Is(err, ErrNoSuchSegment) {
		t.Errorf("read from unknown segment: got %v", err)
	}
}

func TestConnect(t *testing.T) {
	s := New()
	seg, err := s.Malloc("perseas.meta", 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(seg.ID, 0, []byte("state")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Connect("perseas.meta")
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != seg.ID {
		t.Errorf("Connect returned id %d, want %d", got.ID, seg.ID)
	}
	if _, err := s.Connect("missing"); !errors.Is(err, ErrNoSuchName) {
		t.Errorf("got %v, want ErrNoSuchName", err)
	}
}

func TestGet(t *testing.T) {
	s := New()
	seg, err := s.Malloc("db", 32)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(seg.ID)
	if err != nil || got != seg {
		t.Errorf("Get = %v, %v; want original segment", got, err)
	}
	if _, err := s.Get(12345); !errors.Is(err, ErrNoSuchSegment) {
		t.Errorf("got %v, want ErrNoSuchSegment", err)
	}
}

func TestList(t *testing.T) {
	s := New()
	if got := s.List(); len(got) != 0 {
		t.Fatalf("fresh server lists %v", got)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Malloc(fmt.Sprintf("seg%d", i), uint64(64*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	got := s.List()
	if len(got) != 5 {
		t.Fatalf("List len = %d, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].ID <= got[i-1].ID {
			t.Errorf("List not ordered by id: %v", got)
		}
	}
}

func TestCrashAndRestart(t *testing.T) {
	s := New()
	seg, err := s.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	s.Crash()
	if !s.Crashed() {
		t.Fatal("server should report crashed")
	}
	if _, err := s.Malloc("x", 64); err == nil {
		t.Error("malloc on crashed server should fail")
	}
	if err := s.Write(seg.ID, 0, []byte{1}); err == nil {
		t.Error("write on crashed server should fail")
	}
	s.Restart()
	if s.Crashed() {
		t.Fatal("server should be up after restart")
	}
	// Memory did not survive: the old segment is gone.
	if _, err := s.Get(seg.ID); !errors.Is(err, ErrNoSuchSegment) {
		t.Errorf("old segment survived crash: %v", err)
	}
	if got := s.Held(); got != 0 {
		t.Errorf("Held after crash = %d, want 0", got)
	}
	if _, err := s.Malloc("db", 64); err != nil {
		t.Errorf("restarted server should malloc: %v", err)
	}
}

func TestStatsCounting(t *testing.T) {
	s := New()
	seg, _ := s.Malloc("db", 64)
	_ = s.Write(seg.ID, 0, []byte("abcd"))
	_, _ = s.Read(seg.ID, 0, 2)
	_ = s.Free(seg.ID)
	st := s.Stats()
	if st.Mallocs != 1 || st.Frees != 1 || st.WriteOps != 1 || st.ReadOps != 1 {
		t.Errorf("ops stats = %+v", st)
	}
	if st.BytesWritten != 4 || st.BytesRead != 2 {
		t.Errorf("byte stats = %+v", st)
	}
}

func TestHandleWireOps(t *testing.T) {
	s := New()

	resp := s.Handle(&wire.Request{Op: wire.OpMalloc, Name: "db", Size: 128})
	if resp.Status != wire.StatusOK {
		t.Fatalf("malloc failed: %s", resp.Err)
	}
	id := resp.Seg

	resp = s.Handle(&wire.Request{Op: wire.OpWrite, Seg: id, Offset: 8, Data: []byte("xyz")})
	if resp.Status != wire.StatusOK {
		t.Fatalf("write failed: %s", resp.Err)
	}

	resp = s.Handle(&wire.Request{Op: wire.OpRead, Seg: id, Offset: 8, Length: 3})
	if resp.Status != wire.StatusOK || !bytes.Equal(resp.Data, []byte("xyz")) {
		t.Fatalf("read: %+v", resp)
	}

	resp = s.Handle(&wire.Request{Op: wire.OpConnect, Name: "db"})
	if resp.Status != wire.StatusOK || resp.Seg != id || resp.Size != 128 {
		t.Fatalf("connect: %+v", resp)
	}

	resp = s.Handle(&wire.Request{Op: wire.OpList})
	if resp.Status != wire.StatusOK || len(resp.Segments) != 1 {
		t.Fatalf("list: %+v", resp)
	}

	resp = s.Handle(&wire.Request{Op: wire.OpPing})
	if resp.Status != wire.StatusOK {
		t.Fatalf("ping: %+v", resp)
	}

	resp = s.Handle(&wire.Request{Op: wire.OpStats})
	if resp.Status != wire.StatusOK || resp.Stats.Segments != 1 || resp.Stats.WriteOps != 1 {
		t.Fatalf("stats: %+v", resp)
	}

	resp = s.Handle(&wire.Request{Op: wire.OpFree, Seg: id})
	if resp.Status != wire.StatusOK {
		t.Fatalf("free failed: %s", resp.Err)
	}

	resp = s.Handle(&wire.Request{Op: wire.OpFree, Seg: id})
	if resp.Status != wire.StatusError {
		t.Fatal("double free over wire should fail")
	}

	resp = s.Handle(&wire.Request{Op: wire.Op(200)})
	if resp.Status != wire.StatusError {
		t.Fatal("unknown op should fail")
	}
}

func TestHandlePingWhileCrashed(t *testing.T) {
	s := New()
	s.Crash()
	if resp := s.Handle(&wire.Request{Op: wire.OpPing}); resp.Status != wire.StatusError {
		t.Error("ping on crashed server should fail")
	}
}

func TestConcurrentClients(t *testing.T) {
	s := New()
	seg, err := s.Malloc("shared", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := bytes.Repeat([]byte{byte(g + 1)}, 64)
			base := uint64(g * 8192)
			for i := 0; i < 100; i++ {
				off := base + uint64(i%64)*64
				if err := s.Write(seg.ID, off, buf); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if _, err := s.Read(seg.ID, off, 64); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.WriteOps != 800 || st.ReadOps != 800 {
		t.Errorf("ops = %d/%d, want 800/800", st.WriteOps, st.ReadOps)
	}
}

func TestWriteReadRoundTripProperty(t *testing.T) {
	s := New()
	seg, err := s.Malloc("prop", 4096)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, data []byte) bool {
		o := uint64(off) % 4096
		if uint64(len(data)) > 4096-o {
			data = data[:4096-o]
		}
		if err := s.Write(seg.ID, o, data); err != nil {
			return false
		}
		got, err := s.Read(seg.ID, o, uint32(len(data)))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectDisconnectRefcount(t *testing.T) {
	s := New()
	seg, err := s.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Connect("db"); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.List()[0].Conns; got != 3 {
		t.Fatalf("after 3 connects, Conns = %d, want 3", got)
	}
	if err := s.Disconnect(seg.ID); err != nil {
		t.Fatal(err)
	}
	if got := s.List()[0].Conns; got != 2 {
		t.Fatalf("after disconnect, Conns = %d, want 2", got)
	}
	// Disconnect never underflows the count.
	for i := 0; i < 5; i++ {
		if err := s.Disconnect(seg.ID); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.List()[0].Conns; got != 0 {
		t.Fatalf("Conns underflowed to %d", got)
	}
	if err := s.Disconnect(12345); !errors.Is(err, ErrNoSuchSegment) {
		t.Errorf("Disconnect(unknown) = %v, want ErrNoSuchSegment", err)
	}
	st := s.Stats()
	if st.Connects != 3 || st.Disconnects != 6 {
		t.Errorf("stats Connects/Disconnects = %d/%d, want 3/6", st.Connects, st.Disconnects)
	}
}

func TestHandleDisconnect(t *testing.T) {
	s := New()
	seg, err := s.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	if resp := s.Handle(&wire.Request{Op: wire.OpConnect, Name: "db"}); resp.Status != wire.StatusOK {
		t.Fatalf("connect failed: %s", resp.Err)
	}
	if resp := s.Handle(&wire.Request{Op: wire.OpDisconnect, Seg: seg.ID}); resp.Status != wire.StatusOK {
		t.Fatalf("disconnect failed: %s", resp.Err)
	}
	if got := s.List()[0].Conns; got != 0 {
		t.Fatalf("Conns = %d after wire connect+disconnect, want 0", got)
	}
	if resp := s.Handle(&wire.Request{Op: wire.OpDisconnect, Seg: 999}); resp.Status != wire.StatusError {
		t.Fatal("disconnect of unknown segment should fail")
	}
}

func TestHandleStatsExtendedFields(t *testing.T) {
	s := New()
	seg, err := s.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Connect("db"); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBatch([]wire.BatchEntry{{Seg: seg.ID, Offset: 0, Data: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	resp := s.Handle(&wire.Request{Op: wire.OpStats})
	if resp.Status != wire.StatusOK {
		t.Fatalf("stats failed: %s", resp.Err)
	}
	st := resp.Stats
	if st.Mallocs != 1 || st.Connects != 1 || st.BatchOps != 1 {
		t.Errorf("extended stats = %+v, want Mallocs/Connects/BatchOps all 1", st)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	s := New(WithLabel("island"))
	seg, err := s.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(seg.ID, 0, []byte("survives")); err != nil {
		t.Fatal(err)
	}

	s.Partition()
	if !s.Partitioned() || s.Crashed() {
		t.Fatalf("state after Partition: partitioned=%v crashed=%v", s.Partitioned(), s.Crashed())
	}
	// Unreachable: probes and regular ops fail alike.
	if err := s.Probe(); err == nil {
		t.Fatal("probe answered across the partition")
	}
	if err := s.Write(seg.ID, 0, []byte("x")); err == nil {
		t.Fatal("write crossed the partition")
	}
	if _, err := s.Read(seg.ID, 0, 8); err == nil {
		t.Fatal("read crossed the partition")
	}

	// Heal: unlike Crash/Restart, memory is intact.
	s.Heal()
	if s.Partitioned() {
		t.Fatal("still partitioned after Heal")
	}
	if err := s.Probe(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(seg.ID, 0, 8)
	if err != nil || !bytes.Equal(got, []byte("survives")) {
		t.Fatalf("after heal: %q %v", got, err)
	}
}

func TestProbeDoesNotTouchStats(t *testing.T) {
	s := New()
	before := s.Stats()
	for i := 0; i < 10; i++ {
		if err := s.Probe(); err != nil {
			t.Fatal(err)
		}
	}
	if after := s.Stats(); after != before {
		t.Fatalf("probe changed stats: %+v -> %+v", before, after)
	}
}
