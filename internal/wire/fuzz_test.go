package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest exercises the request decoder with arbitrary bytes;
// it must never panic and every successfully decoded request must
// re-encode losslessly.
func FuzzDecodeRequest(f *testing.F) {
	seed, _ := EncodeRequest(&Request{Op: OpWrite, Seg: 3, Offset: 64, Data: []byte("abc")})
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 40))
	// Transaction-service shapes: pipelined ids, tx handles, a commit
	// batch, and the fault ops.
	txSeeds := []*Request{
		{Op: OpTxBegin, ID: 1},
		{Op: OpTxSetRange, ID: 2, Tx: 9, Seg: 1, Offset: 64, Size: 32},
		{Op: OpTxCommit, ID: 3, Tx: 9, Batch: []BatchEntry{{Seg: 1, Offset: 64, Data: []byte("xy")}}},
		{Op: OpTxAbort, ID: 4, Tx: 9},
		{Op: OpTxOpenDB, ID: 5, Name: "db"},
		{Op: OpTxCreateDB, ID: 6, Name: "db", Size: 4096},
		{Op: OpTxRead, ID: 7, Seg: 1, Offset: 0, Length: 128},
		{Op: OpTxLoad, ID: 8, Seg: 1, Offset: 0, Data: []byte("seed")},
		{Op: OpTxInitDB, ID: 9, Seg: 1},
		{Op: OpTxStats, ID: 10},
		{Op: OpTxCrash, ID: 11, Size: 2},
		{Op: OpTxRecover, ID: 12},
	}
	for _, req := range txSeeds {
		s, _ := EncodeRequest(req)
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeRequest(body)
		if err != nil {
			return
		}
		out, err := EncodeRequest(req)
		if err != nil {
			// Decoded values can exceed encoder limits only via the
			// name-length guard, which the decoder enforces too.
			t.Fatalf("decoded request failed to re-encode: %v", err)
		}
		again, err := DecodeRequest(out)
		if err != nil {
			t.Fatalf("re-encoded request failed to decode: %v", err)
		}
		if again.Op != req.Op || again.Seg != req.Seg || again.Offset != req.Offset ||
			again.Length != req.Length || again.Size != req.Size || again.Name != req.Name ||
			again.ID != req.ID || again.Tx != req.Tx ||
			!bytes.Equal(again.Data, req.Data) {
			t.Fatalf("round trip diverged: %+v vs %+v", again, req)
		}
	})
}

// FuzzDecodeResponse is the response-side twin.
func FuzzDecodeResponse(f *testing.F) {
	seed, _ := EncodeResponse(&Response{Status: StatusOK, Segments: []SegmentInfo{{ID: 1, Size: 64, Name: "x"}}})
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xA5}, 64))
	txOK, _ := EncodeResponse(&Response{Status: StatusOK, ID: 42, Tx: 7})
	f.Add(txOK)
	busy, _ := EncodeResponse(&Response{Status: StatusError, ID: 43, Code: TxBusy, Err: "busy"})
	f.Add(busy)
	stats, _ := EncodeResponse(&Response{Status: StatusOK, ID: 44, Data: EncodeTxStats(&TxStats{Conns: 3})})
	f.Add(stats)
	f.Fuzz(func(t *testing.T, body []byte) {
		resp, err := DecodeResponse(body)
		if err != nil {
			return
		}
		out, err := EncodeResponse(resp)
		if err != nil {
			if len(resp.Segments) == 0 {
				t.Fatalf("decoded response failed to re-encode: %v", err)
			}
			return
		}
		again, err := DecodeResponse(out)
		if err != nil {
			t.Fatalf("re-encoded response failed to decode: %v", err)
		}
		if again.Status != resp.Status || again.ID != resp.ID ||
			again.Tx != resp.Tx || again.Code != resp.Code {
			t.Fatalf("round trip diverged: %+v vs %+v", again, resp)
		}
	})
}

// FuzzDecodeTxStats exercises the stats-blob decoder: arbitrary bytes
// must yield a value or an error, never a panic, and every decoded
// value must round-trip.
func FuzzDecodeTxStats(f *testing.F) {
	f.Add(EncodeTxStats(&TxStats{Conns: 2, Convoys: 9, BatchMax: 4}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x7F}, 200))
	f.Fuzz(func(t *testing.T, body []byte) {
		s, err := DecodeTxStats(body)
		if err != nil {
			return
		}
		again, err := DecodeTxStats(EncodeTxStats(s))
		if err != nil {
			t.Fatalf("re-encoded stats failed to decode: %v", err)
		}
		if *again != *s {
			t.Fatalf("round trip diverged: %+v vs %+v", again, s)
		}
	})
}
