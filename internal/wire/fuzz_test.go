package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest exercises the request decoder with arbitrary bytes;
// it must never panic and every successfully decoded request must
// re-encode losslessly.
func FuzzDecodeRequest(f *testing.F) {
	seed, _ := EncodeRequest(&Request{Op: OpWrite, Seg: 3, Offset: 64, Data: []byte("abc")})
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 40))
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeRequest(body)
		if err != nil {
			return
		}
		out, err := EncodeRequest(req)
		if err != nil {
			// Decoded values can exceed encoder limits only via the
			// name-length guard, which the decoder enforces too.
			t.Fatalf("decoded request failed to re-encode: %v", err)
		}
		again, err := DecodeRequest(out)
		if err != nil {
			t.Fatalf("re-encoded request failed to decode: %v", err)
		}
		if again.Op != req.Op || again.Seg != req.Seg || again.Offset != req.Offset ||
			again.Length != req.Length || again.Size != req.Size || again.Name != req.Name ||
			!bytes.Equal(again.Data, req.Data) {
			t.Fatalf("round trip diverged: %+v vs %+v", again, req)
		}
	})
}

// FuzzDecodeResponse is the response-side twin.
func FuzzDecodeResponse(f *testing.F) {
	seed, _ := EncodeResponse(&Response{Status: StatusOK, Segments: []SegmentInfo{{ID: 1, Size: 64, Name: "x"}}})
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xA5}, 64))
	f.Fuzz(func(t *testing.T, body []byte) {
		resp, err := DecodeResponse(body)
		if err != nil {
			return
		}
		if _, err := EncodeResponse(resp); err != nil && len(resp.Segments) == 0 {
			t.Fatalf("decoded response failed to re-encode: %v", err)
		}
	})
}
