package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		req  Request
	}{
		{"malloc", Request{Op: OpMalloc, Size: 1 << 20, Name: "db.accounts"}},
		{"free", Request{Op: OpFree, Seg: 7}},
		{"write", Request{Op: OpWrite, Seg: 3, Offset: 4096, Data: []byte{1, 2, 3, 4}}},
		{"write empty", Request{Op: OpWrite, Seg: 3, Offset: 0}},
		{"read", Request{Op: OpRead, Seg: 9, Offset: 128, Length: 64}},
		{"connect", Request{Op: OpConnect, Name: "perseas.meta"}},
		{"list", Request{Op: OpList}},
		{"ping", Request{Op: OpPing}},
		{"stats", Request{Op: OpStats}},
		{"batch", Request{Op: OpWriteBatch, Batch: []BatchEntry{
			{Seg: 1, Offset: 0, Data: []byte("aa")},
			{Seg: 2, Offset: 4096, Data: []byte("bbbb")},
		}}},
		{"tx begin", Request{Op: OpTxBegin, ID: 42}},
		{"tx setrange", Request{Op: OpTxSetRange, ID: 43, Tx: 7, Seg: 2, Offset: 128, Size: 64}},
		{"tx commit", Request{Op: OpTxCommit, ID: 44, Tx: 7, Batch: []BatchEntry{
			{Seg: 2, Offset: 128, Data: []byte("final bytes")},
		}}},
		{"tx abort", Request{Op: OpTxAbort, ID: 45, Tx: 7}},
		{"tx opendb", Request{Op: OpTxOpenDB, ID: 46, Name: "accounts"}},
		{"tx createdb", Request{Op: OpTxCreateDB, ID: 47, Name: "accounts", Size: 1 << 16}},
		{"tx read", Request{Op: OpTxRead, ID: 48, Seg: 2, Offset: 0, Length: 4096}},
		{"tx load", Request{Op: OpTxLoad, ID: 49, Seg: 2, Offset: 64, Data: []byte("init")}},
		{"tx stats", Request{Op: OpTxStats, ID: 50}},
		{"tx begin traced", Request{Op: OpTxBegin, ID: 51, TraceID: 9, TraceSpan: 2}},
		{"tx commit traced", Request{Op: OpTxCommit, ID: 52, Tx: 7, TraceID: 1<<62 | 5, TraceSpan: 1<<63 | 3, Batch: []BatchEntry{
			{Seg: 2, Offset: 128, Data: []byte("final bytes")},
		}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			body, err := EncodeRequest(&tt.req)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := DecodeRequest(body)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(*got, tt.req) {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v", *got, tt.req)
			}
		})
	}
}

func TestResponseRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		resp Response
	}{
		{"ok", Response{Status: StatusOK, Seg: 5, Size: 4096}},
		{"error", Response{Status: StatusError, Err: "no such segment"}},
		{"data", Response{Status: StatusOK, Data: []byte("hello")}},
		{"list", Response{Status: StatusOK, Segments: []SegmentInfo{
			{ID: 1, Size: 64, Name: "a"},
			{ID: 2, Size: 128, Name: "b"},
		}}},
		{"stats", Response{Status: StatusOK, Stats: ServerStats{
			Segments: 2, BytesHeld: 192, WriteOps: 10, ReadOps: 3,
			BytesWritten: 640, BytesRead: 64,
			Mallocs: 4, Frees: 2, Connects: 7, Disconnects: 5, BatchOps: 3,
		}}},
		{"list-with-conns", Response{Status: StatusOK, Segments: []SegmentInfo{
			{ID: 1, Size: 64, Name: "a", Conns: 2},
			{ID: 2, Size: 128, Name: "b", Conns: 0},
		}}},
		{"tx ok", Response{Status: StatusOK, ID: 42, Tx: 7}},
		{"tx conflict", Response{Status: StatusError, ID: 43, Code: TxConflict, Err: "range held"}},
		{"tx busy", Response{Status: StatusError, ID: 44, Code: TxBusy, Err: "server saturated"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			body, err := EncodeResponse(&tt.resp)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := DecodeResponse(body)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(*got, tt.resp) {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v", *got, tt.resp)
			}
		})
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(op uint8, seg uint32, off uint64, length uint32, size uint64, name string, data []byte) bool {
		if len(name) > MaxName {
			name = name[:MaxName]
		}
		req := Request{
			Op: Op(op), Seg: seg, Offset: off, Length: length, Size: size,
			Name: name, Data: data,
		}
		body, err := EncodeRequest(&req)
		if err != nil {
			return false
		}
		got, err := DecodeRequest(body)
		if err != nil {
			return false
		}
		if len(data) == 0 {
			// Decoder normalises empty data to nil.
			return got.Op == req.Op && got.Seg == req.Seg && got.Offset == req.Offset &&
				got.Length == req.Length && got.Size == req.Size && got.Name == req.Name &&
				len(got.Data) == 0
		}
		return reflect.DeepEqual(*got, req)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRequestTruncated(t *testing.T) {
	req := Request{Op: OpWrite, Seg: 1, Offset: 10, Data: []byte("payload")}
	body, err := EncodeRequest(&req)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(body); cut++ {
		if _, err := DecodeRequest(body[:cut]); err == nil {
			t.Errorf("decode of %d/%d bytes should fail", cut, len(body))
		}
	}
}

func TestDecodeResponseTruncated(t *testing.T) {
	resp := Response{Status: StatusOK, Segments: []SegmentInfo{{ID: 1, Size: 2, Name: "x"}}}
	body, err := EncodeResponse(&resp)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(body); cut++ {
		if _, err := DecodeResponse(body[:cut]); err == nil {
			t.Errorf("decode of %d/%d bytes should fail", cut, len(body))
		}
	}
}

func TestDecodeResponseCorruptSegmentCount(t *testing.T) {
	resp := Response{Status: StatusOK}
	body, err := EncodeResponse(&resp)
	if err != nil {
		t.Fatal(err)
	}
	// The segment count field sits after status(1)+seg(4)+size(8)+
	// data len(4)+err len(4) = byte 21.
	body[21] = 0xff
	body[22] = 0xff
	if _, err := DecodeResponse(body); err == nil {
		t.Error("corrupt segment count should fail to decode")
	}
}

func TestNameTooLong(t *testing.T) {
	long := strings.Repeat("x", MaxName+1)
	if _, err := EncodeRequest(&Request{Op: OpMalloc, Name: long}); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("encode long name: got %v, want ErrNameTooLong", err)
	}
	if _, err := EncodeResponse(&Response{
		Status:   StatusOK,
		Segments: []SegmentInfo{{Name: long}},
	}); !errors.Is(err, ErrNameTooLong) {
		t.Errorf("encode long segment name: got %v, want ErrNameTooLong", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{{}, {1}, []byte("hello world"), bytes.Repeat([]byte{0xab}, 1<<16)}
	for _, b := range bodies {
		if err := WriteFrame(&buf, b); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	for i, want := range bodies {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame %d mismatch: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Errorf("drained stream: got %v, want EOF", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("write oversized: got %v, want ErrFrameTooLarge", err)
	}
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("read oversized: got %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameShortBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(short)); err == nil {
		t.Error("short body should fail")
	}
}

func TestSendRecvRequestResponse(t *testing.T) {
	var buf bytes.Buffer
	req := Request{Op: OpWrite, Seg: 2, Offset: 64, Data: []byte("abc")}
	if err := SendRequest(&buf, &req); err != nil {
		t.Fatal(err)
	}
	gotReq, err := RecvRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*gotReq, req) {
		t.Errorf("request mismatch: %+v vs %+v", *gotReq, req)
	}

	resp := Response{Status: StatusOK, Seg: 2}
	if err := SendResponse(&buf, &resp); err != nil {
		t.Fatal(err)
	}
	gotResp, err := RecvResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*gotResp, resp) {
		t.Errorf("response mismatch: %+v vs %+v", *gotResp, resp)
	}
}

func TestDecodeArbitraryBytesNeverPanics(t *testing.T) {
	// Decoders face bytes from the network; arbitrary input must yield
	// an error or a value, never a panic or out-of-range access.
	f := func(body []byte) bool {
		_, _ = DecodeRequest(body)
		_, _ = DecodeResponse(body)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Adversarial shapes: giant length prefixes everywhere.
	evil := make([]byte, 64)
	for i := range evil {
		evil[i] = 0xFF
	}
	if _, err := DecodeRequest(evil); err == nil {
		t.Error("all-0xFF request decoded")
	}
	if _, err := DecodeResponse(evil); err == nil {
		t.Error("all-0xFF response decoded")
	}
}

func TestReadFrameArbitraryHeader(t *testing.T) {
	f := func(hdr [4]byte, body []byte) bool {
		stream := append(hdr[:], body...)
		_, _ = ReadFrame(bytes.NewReader(stream))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpMalloc: "MALLOC", OpFree: "FREE", OpWrite: "WRITE", OpRead: "READ",
		OpConnect: "CONNECT", OpList: "LIST", OpPing: "PING", OpStats: "STATS",
		OpTxBegin: "TX-BEGIN", OpTxSetRange: "TX-SETRANGE", OpTxCommit: "TX-COMMIT",
		OpTxAbort: "TX-ABORT", OpTxOpenDB: "TX-OPENDB", OpTxCreateDB: "TX-CREATEDB",
		OpTxRead: "TX-READ", OpTxLoad: "TX-LOAD", OpTxInitDB: "TX-INITDB",
		OpTxStats: "TX-STATS", OpTxCrash: "TX-CRASH", OpTxRecover: "TX-RECOVER",
		Op(99): "OP(99)",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", uint8(op), got, want)
		}
	}
}

func TestTxCodeString(t *testing.T) {
	for code, want := range map[TxCode]string{
		TxOK: "OK", TxError: "ERROR", TxBusy: "BUSY", TxConflict: "CONFLICT",
		TxNoTransaction: "NO-TRANSACTION", TxInTransaction: "IN-TRANSACTION",
		TxCrashed: "CRASHED", TxUnrecoverable: "UNRECOVERABLE",
		TxUnknownTx: "UNKNOWN-TX", TxUnknownDB: "UNKNOWN-DB",
		TxBadRequest: "BAD-REQUEST", TxCode(99): "CODE(99)",
	} {
		if got := code.String(); got != want {
			t.Errorf("TxCode(%d).String() = %q, want %q", uint8(code), got, want)
		}
	}
}

func TestTxStatsRoundTrip(t *testing.T) {
	s := TxStats{
		Conns: 3, ConnsTotal: 11, ConnsRejected: 2,
		TxsBegun: 100, TxsCommitted: 90, TxsAborted: 10, TxsInFlight: 4,
		BusyRejected: 7, MalformedFrames: 1,
		Convoys: 30, ConvoyCommits: 90, BatchP50: 2, BatchP99: 9, BatchMax: 12,
		DepthP50: 1, DepthP99: 5, DepthMax: 8,
	}
	got, err := DecodeTxStats(EncodeTxStats(&s))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if *got != s {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", *got, s)
	}
	// Truncation at every cut must fail, never panic.
	blob := EncodeTxStats(&s)
	for cut := 0; cut < len(blob); cut++ {
		if _, err := DecodeTxStats(blob[:cut]); err == nil {
			t.Errorf("decode of %d/%d bytes should fail", cut, len(blob))
		}
	}
}

// TestUntracedFrameBytesUnchanged pins the propagation format's
// compatibility contract: a request without trace context encodes to
// the exact bytes the pre-propagation protocol produced, so enabling
// the tracing code path changes nothing for untraced traffic (and the
// reproduced figures that ride on frame sizes).
func TestUntracedFrameBytesUnchanged(t *testing.T) {
	req := &Request{Op: OpTxSetRange, ID: 11, Tx: 3, Seg: 1, Offset: 64, Size: 32}
	body, err := EncodeRequest(req)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// The legacy layout: op(1) seg(4) off(8) len(4) size(8) name(4)
	// data(4) nbatch(4) id(8) tx(8) = 53 bytes, no trace tail.
	if len(body) != 53 {
		t.Fatalf("untraced frame is %d bytes, want the legacy 53", len(body))
	}
	traced := *req
	traced.TraceID, traced.TraceSpan = 5, 9
	tbody, err := EncodeRequest(&traced)
	if err != nil {
		t.Fatalf("encode traced: %v", err)
	}
	if len(tbody) != len(body)+16 {
		t.Fatalf("traced frame is %d bytes, want untraced+16 = %d", len(tbody), len(body)+16)
	}
	if !bytes.Equal(tbody[:len(body)], body) {
		t.Fatal("traced frame does not extend the untraced layout")
	}
	// An old decoder's view: truncating the tail recovers the untraced
	// request — the fields an old peer understands are unchanged.
	got, err := DecodeRequest(tbody[:len(body)])
	if err != nil {
		t.Fatalf("decode truncated: %v", err)
	}
	if !reflect.DeepEqual(*got, *req) {
		t.Errorf("legacy view mismatch:\n got %+v\nwant %+v", *got, *req)
	}
	// A zero TraceID in the tail means untraced: the span id must not
	// leak through.
	zero := *req
	zero.TraceID, zero.TraceSpan = 0, 0
	zbody := append(append([]byte(nil), body...), make([]byte, 16)...)
	gz, err := DecodeRequest(zbody)
	if err != nil {
		t.Fatalf("decode zero tail: %v", err)
	}
	if gz.TraceID != 0 || gz.TraceSpan != 0 {
		t.Errorf("zero trace tail decoded as %d/%d, want 0/0", gz.TraceID, gz.TraceSpan)
	}
}
