// Package wire defines the binary protocol spoken between the PERSEAS
// client library and the remote memory server.
//
// The paper's reliable network RAM is driven by a client-server model:
// the server process on the remote node accepts requests (remote malloc
// and free), exports physical memory segments, and applies remote writes.
// This package frames those requests over any ordered byte stream.
//
// Framing: every message is a 4-byte big-endian length followed by the
// message body. Request bodies start with a 1-byte opcode; response
// bodies start with a 1-byte status. All multi-byte integers are
// big-endian. Strings and byte blobs are 4-byte-length-prefixed.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// Op identifies a request type.
type Op uint8

// Protocol opcodes. These mirror the operations the paper lists for the
// reliable network RAM layer plus housekeeping used by recovery.
const (
	// OpMalloc exports a new named segment on the server
	// (sci_get_new_segment in the paper).
	OpMalloc Op = iota + 1
	// OpFree releases a segment (sci_free_segment).
	OpFree
	// OpWrite copies bytes into a segment (the remote half of
	// sci_memcpy).
	OpWrite
	// OpRead copies bytes out of a segment (remote read, used during
	// recovery).
	OpRead
	// OpConnect looks up an existing named segment so a restarted
	// client can re-map it (sci_connect_segment).
	OpConnect
	// OpList enumerates live segments; used by recovery and tooling.
	OpList
	// OpPing checks server liveness.
	OpPing
	// OpStats fetches server counters.
	OpStats
	// OpWriteBatch applies several writes in one exchange, validated
	// together and applied atomically. One round trip covers a whole
	// commit's range pushes on the TCP transport.
	OpWriteBatch
	// OpDisconnect drops one client reference to a connected segment
	// (the inverse of OpConnect), so a client abandoning a half-built
	// region leaves no stray handles behind on the mirror.
	OpDisconnect

	// The transaction-service opcodes follow: the same framing carries
	// the PERSEAS transaction API itself (txserver/txclient), not just
	// raw memory. Transaction requests are pipelined — a connection may
	// stream many before reading replies — so each carries a request ID
	// the server echoes, letting replies complete out of order.

	// OpTxBegin starts a transaction; the response carries its handle
	// in Tx.
	OpTxBegin
	// OpTxSetRange declares db[Offset:Offset+Size) of database handle
	// Seg as written by transaction Tx, capturing the server-side
	// before-image. The response Data carries the range's current
	// server-side bytes: once the conflict table grants the range, the
	// client refreshes its local replica from them, so read-modify-write
	// transactions from independent client processes observe each
	// other's committed updates.
	OpTxSetRange
	// OpTxCommit carries the final bytes of every declared range in
	// Batch (Seg = database handle) and commits transaction Tx.
	OpTxCommit
	// OpTxAbort rolls transaction Tx back.
	OpTxAbort
	// OpTxOpenDB re-attaches the named database; the response carries
	// its handle in Seg and its length in Size.
	OpTxOpenDB
	// OpTxCreateDB allocates a zeroed named database of Size bytes;
	// the response carries its handle in Seg.
	OpTxCreateDB
	// OpTxRead copies Length bytes at Offset out of database handle
	// Seg — how a client (re)hydrates its local replica after OpenDB.
	OpTxRead
	// OpTxLoad stores Data at Offset of database handle Seg outside any
	// transaction; only legal before OpTxInitDB publishes the initial
	// image.
	OpTxLoad
	// OpTxInitDB publishes database handle Seg's current content as its
	// initial durable state (the paper's PERSEAS_init_remote_db).
	OpTxInitDB
	// OpTxStats fetches transaction-server counters; the response Data
	// holds an encoded TxStats.
	OpTxStats
	// OpTxCrash simulates a crash of the given fault kind (Size) on the
	// serving engine. Served only when fault injection is enabled —
	// conformance and chaos harnesses, never production.
	OpTxCrash
	// OpTxRecover rebuilds the serving engine after OpTxCrash. Gated
	// like OpTxCrash.
	OpTxRecover

	// OpFill zeroes Size bytes at Offset of segment Seg server-side.
	// Recovery uses it to clear the stale tail of a republished undo
	// log without shipping a payload of zeroes over the wire.
	OpFill
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpMalloc:
		return "MALLOC"
	case OpFree:
		return "FREE"
	case OpWrite:
		return "WRITE"
	case OpRead:
		return "READ"
	case OpConnect:
		return "CONNECT"
	case OpList:
		return "LIST"
	case OpPing:
		return "PING"
	case OpStats:
		return "STATS"
	case OpWriteBatch:
		return "WRITE-BATCH"
	case OpDisconnect:
		return "DISCONNECT"
	case OpTxBegin:
		return "TX-BEGIN"
	case OpTxSetRange:
		return "TX-SETRANGE"
	case OpTxCommit:
		return "TX-COMMIT"
	case OpTxAbort:
		return "TX-ABORT"
	case OpTxOpenDB:
		return "TX-OPENDB"
	case OpTxCreateDB:
		return "TX-CREATEDB"
	case OpTxRead:
		return "TX-READ"
	case OpTxLoad:
		return "TX-LOAD"
	case OpTxInitDB:
		return "TX-INITDB"
	case OpTxStats:
		return "TX-STATS"
	case OpTxCrash:
		return "TX-CRASH"
	case OpTxRecover:
		return "TX-RECOVER"
	case OpFill:
		return "FILL"
	default:
		return fmt.Sprintf("OP(%d)", uint8(o))
	}
}

// Status is the first byte of every response.
type Status uint8

// Response status codes.
const (
	// StatusOK indicates success.
	StatusOK Status = iota + 1
	// StatusError carries a server-side error message.
	StatusError
)

// TxCode classifies a transaction-service failure so clients can map
// it back onto the engine's sentinel errors instead of parsing error
// strings. TxOK (the zero value) rides on every success and on every
// non-transaction response.
type TxCode uint8

// Transaction-service reply codes.
const (
	// TxOK is success.
	TxOK TxCode = iota
	// TxError is a failure with no finer classification; Err carries
	// the detail.
	TxError
	// TxBusy is an admission-control rejection: the server is at its
	// in-flight or connection limit and the client should back off and
	// retry.
	TxBusy
	// TxConflict maps engine.ErrConflict: the declared range overlaps
	// one held by another live transaction.
	TxConflict
	// TxNoTransaction maps engine.ErrNoTransaction.
	TxNoTransaction
	// TxInTransaction maps engine.ErrInTransaction.
	TxInTransaction
	// TxCrashed maps engine.ErrCrashed.
	TxCrashed
	// TxUnrecoverable maps engine.ErrUnrecoverable.
	TxUnrecoverable
	// TxUnknownTx means the request named a transaction handle the
	// server does not hold (already finished, or wiped by a crash).
	TxUnknownTx
	// TxUnknownDB means the request named a database handle the server
	// does not hold.
	TxUnknownDB
	// TxBadRequest means the frame decoded but the request is
	// malformed (out-of-bounds range, write outside declared ranges,
	// load after init). The server answers it and closes the
	// connection.
	TxBadRequest
)

// String implements fmt.Stringer.
func (c TxCode) String() string {
	switch c {
	case TxOK:
		return "OK"
	case TxError:
		return "ERROR"
	case TxBusy:
		return "BUSY"
	case TxConflict:
		return "CONFLICT"
	case TxNoTransaction:
		return "NO-TRANSACTION"
	case TxInTransaction:
		return "IN-TRANSACTION"
	case TxCrashed:
		return "CRASHED"
	case TxUnrecoverable:
		return "UNRECOVERABLE"
	case TxUnknownTx:
		return "UNKNOWN-TX"
	case TxUnknownDB:
		return "UNKNOWN-DB"
	case TxBadRequest:
		return "BAD-REQUEST"
	default:
		return fmt.Sprintf("CODE(%d)", uint8(c))
	}
}

// Limits guarding against malformed or hostile frames.
const (
	// MaxFrame is the largest message body accepted (64 MiB + slack),
	// sized to carry a whole mirrored database segment.
	MaxFrame = 64<<20 + 4096
	// MaxName is the longest segment name accepted.
	MaxName = 256
)

// Protocol errors.
var (
	// ErrFrameTooLarge is returned when a peer announces a frame
	// exceeding MaxFrame.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrNameTooLong is returned for segment names exceeding MaxName.
	ErrNameTooLong = errors.New("wire: segment name too long")
	// ErrTruncated is returned when a message body is shorter than its
	// fields require.
	ErrTruncated = errors.New("wire: truncated message")
)

// BatchEntry is one write of an OpWriteBatch request.
type BatchEntry struct {
	Seg    uint32
	Offset uint64
	Data   []byte
}

// Request is a client-to-server message. Which fields are meaningful
// depends on Op: Malloc uses Name+Size; Free uses Seg; Write uses
// Seg+Offset+Data; Read uses Seg+Offset+Length; Connect uses Name;
// WriteBatch uses Batch.
type Request struct {
	Op     Op
	Seg    uint32
	Offset uint64
	Length uint32
	Size   uint64
	Name   string
	Data   []byte
	Batch  []BatchEntry
	// ID is the pipelining correlation id: the server echoes it on the
	// matching response, so a connection can stream many requests and
	// complete replies out of order. Zero on the memory protocol.
	ID uint64
	// Tx names the transaction a Tx* request operates on.
	Tx uint64
	// TraceID carries the client's distributed-tracing id on Tx*
	// requests, 0 when the client is not tracing; TraceSpan is the id
	// of the client-side span enclosing this request, the parent the
	// server hangs its own spans under. Both ride as optional trailing
	// fields encoded only when TraceID is non-zero, so untraced frames
	// stay byte-identical to the pre-propagation protocol and old peers
	// interoperate unchanged.
	TraceID   uint64
	TraceSpan uint64
}

// SegmentInfo describes one exported segment in a LIST response.
type SegmentInfo struct {
	ID   uint32
	Size uint64
	Name string
	// Conns counts live client references (Connects minus Disconnects);
	// tooling uses it to spot leaked handles after failed reconnects.
	Conns uint32
}

// ServerStats carries server counters in a STATS response.
type ServerStats struct {
	Segments     uint32
	BytesHeld    uint64
	WriteOps     uint64
	ReadOps      uint64
	BytesWritten uint64
	BytesRead    uint64
	Mallocs      uint64
	Frees        uint64
	Connects     uint64
	Disconnects  uint64
	BatchOps     uint64
}

// Response is a server-to-client message. Err is set when Status is
// StatusError; the other fields depend on the request that elicited it.
type Response struct {
	Status   Status
	Seg      uint32
	Size     uint64
	Data     []byte
	Err      string
	Segments []SegmentInfo
	Stats    ServerStats
	// ID echoes the request's correlation id (pipelining).
	ID uint64
	// Tx carries the transaction handle a TX-BEGIN created.
	Tx uint64
	// Code classifies transaction-service failures (TxOK on success).
	Code TxCode
}

// appendU32/appendU64/appendBytes build message bodies.
func appendU32(b []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

func appendBytes(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

type reader struct {
	b   []byte
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.err = ErrTruncated
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 4 {
		r.err = ErrTruncated
		return 0
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.err = ErrTruncated
		return 0
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if uint64(n) > uint64(len(r.b)) {
		r.err = ErrTruncated
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

// EncodeRequest serialises a request body (without the frame length).
func EncodeRequest(req *Request) ([]byte, error) {
	return appendRequest(make([]byte, 0, 32+len(req.Name)+len(req.Data)), req)
}

// appendRequest serialises a request body onto b (which may carry
// reusable capacity) and returns the extended slice.
func appendRequest(b []byte, req *Request) ([]byte, error) {
	if len(req.Name) > MaxName {
		return nil, ErrNameTooLong
	}
	if len(req.Data) > math.MaxUint32 {
		return nil, ErrFrameTooLarge
	}
	b = append(b, byte(req.Op))
	b = appendU32(b, req.Seg)
	b = appendU64(b, req.Offset)
	b = appendU32(b, req.Length)
	b = appendU64(b, req.Size)
	b = appendBytes(b, []byte(req.Name))
	b = appendBytes(b, req.Data)
	b = appendU32(b, uint32(len(req.Batch)))
	for _, e := range req.Batch {
		b = appendU32(b, e.Seg)
		b = appendU64(b, e.Offset)
		b = appendBytes(b, e.Data)
	}
	b = appendU64(b, req.ID)
	b = appendU64(b, req.Tx)
	if req.TraceID != 0 {
		b = appendU64(b, req.TraceID)
		b = appendU64(b, req.TraceSpan)
	}
	return b, nil
}

// DecodeRequest parses a request body.
func DecodeRequest(body []byte) (*Request, error) {
	r := &reader{b: body}
	req := &Request{
		Op:     Op(r.u8()),
		Seg:    r.u32(),
		Offset: r.u64(),
		Length: r.u32(),
		Size:   r.u64(),
	}
	name := r.bytes()
	data := r.bytes()
	nBatch := r.u32()
	if r.err == nil && uint64(nBatch) > uint64(len(r.b)) {
		// Each entry takes at least 16 bytes; a count beyond the
		// remaining body is corrupt.
		return nil, ErrTruncated
	}
	for i := uint32(0); i < nBatch && r.err == nil; i++ {
		e := BatchEntry{Seg: r.u32(), Offset: r.u64()}
		if d := r.bytes(); len(d) > 0 {
			e.Data = append([]byte(nil), d...)
		}
		req.Batch = append(req.Batch, e)
	}
	req.ID = r.u64()
	req.Tx = r.u64()
	// Optional trace-context tail: present only when the peer traced
	// the request. Old peers simply end the body here; a zero TraceID
	// in the tail means untraced and the span id is discarded with it.
	if r.err == nil && len(r.b) >= 16 {
		traceID := r.u64()
		traceSpan := r.u64()
		if traceID != 0 {
			req.TraceID, req.TraceSpan = traceID, traceSpan
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(name) > MaxName {
		return nil, ErrNameTooLong
	}
	req.Name = string(name)
	if len(data) > 0 {
		req.Data = append([]byte(nil), data...)
	}
	return req, nil
}

// EncodeResponse serialises a response body (without the frame length).
func EncodeResponse(resp *Response) ([]byte, error) {
	return appendResponse(make([]byte, 0, 64+len(resp.Data)), resp)
}

// appendResponse serialises a response body onto b (which may carry
// reusable capacity) and returns the extended slice.
func appendResponse(b []byte, resp *Response) ([]byte, error) {
	if len(resp.Data) > math.MaxUint32 {
		return nil, ErrFrameTooLarge
	}
	b = append(b, byte(resp.Status))
	b = appendU32(b, resp.Seg)
	b = appendU64(b, resp.Size)
	b = appendBytes(b, resp.Data)
	b = appendBytes(b, []byte(resp.Err))
	b = appendU32(b, uint32(len(resp.Segments)))
	for _, s := range resp.Segments {
		if len(s.Name) > MaxName {
			return nil, ErrNameTooLong
		}
		b = appendU32(b, s.ID)
		b = appendU64(b, s.Size)
		b = appendBytes(b, []byte(s.Name))
		b = appendU32(b, s.Conns)
	}
	b = appendU32(b, resp.Stats.Segments)
	b = appendU64(b, resp.Stats.BytesHeld)
	b = appendU64(b, resp.Stats.WriteOps)
	b = appendU64(b, resp.Stats.ReadOps)
	b = appendU64(b, resp.Stats.BytesWritten)
	b = appendU64(b, resp.Stats.BytesRead)
	b = appendU64(b, resp.Stats.Mallocs)
	b = appendU64(b, resp.Stats.Frees)
	b = appendU64(b, resp.Stats.Connects)
	b = appendU64(b, resp.Stats.Disconnects)
	b = appendU64(b, resp.Stats.BatchOps)
	b = appendU64(b, resp.ID)
	b = appendU64(b, resp.Tx)
	b = append(b, byte(resp.Code))
	return b, nil
}

// DecodeResponse parses a response body.
func DecodeResponse(body []byte) (*Response, error) {
	r := &reader{b: body}
	resp := &Response{
		Status: Status(r.u8()),
		Seg:    r.u32(),
		Size:   r.u64(),
	}
	data := r.bytes()
	errMsg := r.bytes()
	nseg := r.u32()
	if r.err == nil && uint64(nseg) > uint64(len(r.b)) {
		// Each segment entry takes at least 16 bytes; a count larger
		// than the remaining body is corrupt.
		return nil, ErrTruncated
	}
	for i := uint32(0); i < nseg && r.err == nil; i++ {
		s := SegmentInfo{ID: r.u32(), Size: r.u64()}
		s.Name = string(r.bytes())
		s.Conns = r.u32()
		resp.Segments = append(resp.Segments, s)
	}
	resp.Stats.Segments = r.u32()
	resp.Stats.BytesHeld = r.u64()
	resp.Stats.WriteOps = r.u64()
	resp.Stats.ReadOps = r.u64()
	resp.Stats.BytesWritten = r.u64()
	resp.Stats.BytesRead = r.u64()
	resp.Stats.Mallocs = r.u64()
	resp.Stats.Frees = r.u64()
	resp.Stats.Connects = r.u64()
	resp.Stats.Disconnects = r.u64()
	resp.Stats.BatchOps = r.u64()
	resp.ID = r.u64()
	resp.Tx = r.u64()
	resp.Code = TxCode(r.u8())
	if r.err != nil {
		return nil, r.err
	}
	if len(data) > 0 {
		resp.Data = append([]byte(nil), data...)
	}
	resp.Err = string(errMsg)
	return resp, nil
}

// WriteFrame writes one length-prefixed message body to w.
func WriteFrame(w io.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write frame header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("wire: write frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed message body from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("wire: read frame body: %w", err)
	}
	return body, nil
}

// encBufPool recycles encode buffers across SendRequest/SendResponse
// calls so a steady stream of small frames (the commit path's writes
// and their acks) allocates nothing. Buffers that grew past
// maxPooledBuf — bulk rebuild copies, multi-megabyte reads — are
// dropped instead of pinned in the pool.
var encBufPool sync.Pool

const maxPooledBuf = 1 << 20

func getEncBuf() *[]byte {
	bp, _ := encBufPool.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	return bp
}

func putEncBuf(bp *[]byte) {
	if cap(*bp) > maxPooledBuf {
		return
	}
	*bp = (*bp)[:0]
	encBufPool.Put(bp)
}

// SendRequest frames and writes a request.
func SendRequest(w io.Writer, req *Request) error {
	bp := getEncBuf()
	body, err := appendRequest((*bp)[:0], req)
	if err != nil {
		putEncBuf(bp)
		return err
	}
	*bp = body
	err = WriteFrame(w, body)
	putEncBuf(bp)
	return err
}

// RecvRequest reads and parses one request.
func RecvRequest(r io.Reader) (*Request, error) {
	body, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	return DecodeRequest(body)
}

// SendResponse frames and writes a response.
func SendResponse(w io.Writer, resp *Response) error {
	bp := getEncBuf()
	body, err := appendResponse((*bp)[:0], resp)
	if err != nil {
		putEncBuf(bp)
		return err
	}
	*bp = body
	err = WriteFrame(w, body)
	putEncBuf(bp)
	return err
}

// RecvResponse reads and parses one response.
func RecvResponse(r io.Reader) (*Response, error) {
	body, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	return DecodeResponse(body)
}

// TxStats carries transaction-server counters in an OpTxStats response
// (encoded into Response.Data so ordinary responses pay nothing for
// them). Quantiles are pre-computed server-side from its histograms.
type TxStats struct {
	// Conns is the live connection count; ConnsTotal counts every
	// connection ever accepted, ConnsRejected those turned away at the
	// connection limit.
	Conns         uint64
	ConnsTotal    uint64
	ConnsRejected uint64
	// Transaction outcomes, plus the live in-flight count.
	TxsBegun     uint64
	TxsCommitted uint64
	TxsAborted   uint64
	TxsInFlight  uint64
	// BusyRejected counts requests answered TxBusy by admission
	// control; MalformedFrames counts connections dropped for frames
	// that failed to decode.
	BusyRejected    uint64
	MalformedFrames uint64
	// Group-commit convoys: how many mirror fan-out windows ran and how
	// many commits they carried, with the batch-size distribution's
	// p50/p99/max.
	Convoys       uint64
	ConvoyCommits uint64
	BatchP50      uint64
	BatchP99      uint64
	BatchMax      uint64
	// Pipelined request depth per connection at arrival, p50/p99/max.
	DepthP50 uint64
	DepthP99 uint64
	DepthMax uint64
}

// EncodeTxStats serialises s as a standalone blob for Response.Data.
func EncodeTxStats(s *TxStats) []byte {
	b := make([]byte, 0, 17*8)
	for _, v := range []uint64{
		s.Conns, s.ConnsTotal, s.ConnsRejected,
		s.TxsBegun, s.TxsCommitted, s.TxsAborted, s.TxsInFlight,
		s.BusyRejected, s.MalformedFrames,
		s.Convoys, s.ConvoyCommits, s.BatchP50, s.BatchP99, s.BatchMax,
		s.DepthP50, s.DepthP99, s.DepthMax,
	} {
		b = appendU64(b, v)
	}
	return b
}

// DecodeTxStats parses a blob written by EncodeTxStats.
func DecodeTxStats(body []byte) (*TxStats, error) {
	r := &reader{b: body}
	s := &TxStats{}
	for _, p := range []*uint64{
		&s.Conns, &s.ConnsTotal, &s.ConnsRejected,
		&s.TxsBegun, &s.TxsCommitted, &s.TxsAborted, &s.TxsInFlight,
		&s.BusyRejected, &s.MalformedFrames,
		&s.Convoys, &s.ConvoyCommits, &s.BatchP50, &s.BatchP99, &s.BatchMax,
		&s.DepthP50, &s.DepthP99, &s.DepthMax,
	} {
		*p = r.u64()
	}
	if r.err != nil {
		return nil, r.err
	}
	return s, nil
}
