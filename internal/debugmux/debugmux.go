// Package debugmux assembles the one HTTP mux every PERSEAS process
// serves on its -metrics-addr listener: Prometheus metrics, the span
// recorder, the anomaly flight recorder, the cluster snapshot, and the
// runtime profiling endpoints. Centralising the wiring keeps every
// command's observability surface identical — an operator who knows
// one process's debug port knows them all.
package debugmux

import (
	"net/http"
	"net/http/pprof"
	"runtime"

	"github.com/ics-forth/perseas/internal/cluster"
	"github.com/ics-forth/perseas/internal/flight"
	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/trace"
)

// Config selects what the mux serves; every field is optional.
type Config struct {
	// Registry serves at /metrics.
	Registry *obs.Registry
	// Tracer serves Chrome trace-event JSON at /debug/traces.
	Tracer *trace.Recorder
	// Flight serves the anomaly ring at /debug/events.
	Flight *flight.Recorder
	// Cluster serves the aggregated health snapshot at /debug/cluster.
	Cluster *cluster.Config
	// BlockProfileRate, when > 0, enables goroutine blocking profiles
	// at that sampling rate (runtime.SetBlockProfileRate); the profile
	// serves at /debug/pprof/block.
	BlockProfileRate int
	// MutexProfileFraction, when > 0, enables mutex contention
	// profiles at that sampling fraction
	// (runtime.SetMutexProfileFraction); the profile serves at
	// /debug/pprof/mutex.
	MutexProfileFraction int
}

// Build returns the assembled mux. The pprof family
// (/debug/pprof/...) is always mounted: heap, goroutine and CPU
// profiles cost nothing until requested, and a live process that
// cannot be profiled is a live process that cannot be diagnosed.
func Build(cfg Config) *http.ServeMux {
	mux := http.NewServeMux()
	if cfg.Registry != nil {
		mux.Handle("/metrics", cfg.Registry)
	}
	if cfg.Tracer != nil {
		mux.Handle("/debug/traces", cfg.Tracer)
	}
	if cfg.Flight != nil {
		mux.Handle("/debug/events", cfg.Flight)
	}
	if cfg.Cluster != nil {
		mux.Handle("/debug/cluster", cfg.Cluster)
	}
	if cfg.BlockProfileRate > 0 {
		runtime.SetBlockProfileRate(cfg.BlockProfileRate)
	}
	if cfg.MutexProfileFraction > 0 {
		runtime.SetMutexProfileFraction(cfg.MutexProfileFraction)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
