package disk

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/simclock"
)

func newDisk(t *testing.T, p Params) (*Disk, *simclock.SimClock) {
	t.Helper()
	clock := simclock.NewSim()
	d, err := New(p, clock)
	if err != nil {
		t.Fatal(err)
	}
	return d, clock
}

func TestValidate(t *testing.T) {
	if err := DefaultParams(1 << 20).Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := DefaultParams(0)
	if err := bad.Validate(); err == nil {
		t.Error("zero size should be invalid")
	}
	bad = DefaultParams(1 << 20)
	bad.BytesPerSecond = 0
	if _, err := New(bad, simclock.NewSim()); err == nil {
		t.Error("zero transfer rate should be rejected")
	}
	bad = DefaultParams(1 << 20)
	bad.SeekAvg = -time.Millisecond
	if err := bad.Validate(); err == nil {
		t.Error("negative seek should be invalid")
	}
}

func TestWriteSyncCostsMilliseconds(t *testing.T) {
	d, clock := newDisk(t, DefaultParams(1<<20))
	if err := d.WriteSync(4096, []byte("commit record")); err != nil {
		t.Fatal(err)
	}
	lat := clock.Now()
	// Seek (8 ms) + rotation (4.17 ms) dominate: this is the magnetic
	// disk cost PERSEAS removes from the commit path.
	if lat < 10*time.Millisecond || lat > 20*time.Millisecond {
		t.Errorf("sync write cost %v, want ~12ms", lat)
	}
}

func TestSequentialAppendSkipsSeek(t *testing.T) {
	d, clock := newDisk(t, DefaultParams(1<<20))
	if err := d.WriteSync(0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	first := clock.Now()
	if err := d.WriteSync(512, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	second := clock.Now() - first
	if second >= first {
		t.Errorf("sequential append (%v) should be cheaper than first write (%v)", second, first)
	}
	p := d.Params()
	if second < p.RotationalHalf {
		t.Errorf("sequential append (%v) still pays rotation (%v)", second, p.RotationalHalf)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d, _ := newDisk(t, DefaultParams(1<<16))
	want := []byte("durable bytes")
	if err := d.WriteSync(100, want); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(100, len(want))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("read %q, want %q", got, want)
	}
	peek, err := d.Peek(100, len(want))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(peek, want) {
		t.Errorf("peek %q, want %q", peek, want)
	}
}

func TestBounds(t *testing.T) {
	d, _ := newDisk(t, DefaultParams(1024))
	if err := d.WriteSync(1020, make([]byte, 8)); !errors.Is(err, ErrBadRange) {
		t.Errorf("overflow sync write: %v", err)
	}
	if err := d.WriteAsync(2048, []byte{1}); !errors.Is(err, ErrBadRange) {
		t.Errorf("overflow async write: %v", err)
	}
	if _, err := d.Read(1024, 1); !errors.Is(err, ErrBadRange) {
		t.Errorf("overflow read: %v", err)
	}
	if _, err := d.Peek(0, -1); !errors.Is(err, ErrBadRange) {
		t.Errorf("negative peek: %v", err)
	}
}

func TestAsyncWriteCheapUntilBufferFills(t *testing.T) {
	p := DefaultParams(64 << 20)
	p.WriteBuffer = 64 << 10
	d, clock := newDisk(t, p)

	// First writes fit the buffer: nearly free.
	t0 := clock.Now()
	for i := 0; i < 4; i++ {
		if err := d.WriteAsync(uint64(i*4096), make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	cheap := clock.Now() - t0
	if cheap > time.Millisecond {
		t.Errorf("buffered async writes cost %v, want ~0", cheap)
	}

	// Sustained load beyond the buffer must stall at media rate.
	t0 = clock.Now()
	const burst = 10 << 20
	for off := uint64(0); off < burst; off += 64 << 10 {
		if err := d.WriteAsync(off, make([]byte, 64<<10)); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := clock.Now() - t0
	mediaTime := time.Duration(float64(burst) / p.BytesPerSecond * float64(time.Second))
	if elapsed < mediaTime/2 {
		t.Errorf("sustained async writes cost %v, want >= ~%v (media bound)", elapsed, mediaTime)
	}
	if d.Stats().Stalls == 0 {
		t.Error("sustained load should have stalled")
	}
}

func TestAsyncWithoutBufferIsSync(t *testing.T) {
	p := DefaultParams(1 << 20)
	p.WriteBuffer = 0
	d, clock := newDisk(t, p)
	if err := d.WriteAsync(0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	if clock.Now() < 10*time.Millisecond {
		t.Errorf("unbuffered async write cost %v, want sync cost", clock.Now())
	}
	if d.Stats().SyncWrites != 1 || d.Stats().AsyncWrites != 0 {
		t.Errorf("stats = %+v, want the write counted as sync", d.Stats())
	}
}

func TestFlushDrainsBuffer(t *testing.T) {
	p := DefaultParams(4 << 20)
	d, clock := newDisk(t, p)
	if err := d.WriteAsync(0, make([]byte, 128<<10)); err != nil {
		t.Fatal(err)
	}
	t0 := clock.Now()
	d.Flush()
	drain := clock.Now() - t0
	want := time.Duration(float64(128<<10) / p.BytesPerSecond * float64(time.Second))
	if drain < want/2 || drain > want*2 {
		t.Errorf("flush took %v, want ~%v", drain, want)
	}
	// A second flush is free.
	t0 = clock.Now()
	d.Flush()
	if clock.Now() != t0 {
		t.Error("empty flush should be free")
	}
}

func TestStats(t *testing.T) {
	d, _ := newDisk(t, DefaultParams(1<<20))
	_ = d.WriteSync(0, make([]byte, 100))
	_ = d.WriteAsync(200, make([]byte, 50))
	_, _ = d.Read(0, 10)
	st := d.Stats()
	if st.SyncWrites != 1 || st.AsyncWrites != 1 || st.Reads != 1 {
		t.Errorf("op counts = %+v", st)
	}
	if st.BytesWritten != 150 || st.BytesRead != 10 {
		t.Errorf("byte counts = %+v", st)
	}
	if st.Busy <= 0 {
		t.Error("busy should be positive")
	}
}
