// Package disk models a late-1990s magnetic disk: the storage device
// whose synchronous-write latency dominates traditional transaction
// systems and which PERSEAS removes from the commit path.
//
// The model captures the three behaviours the paper's comparison depends
// on:
//
//   - synchronous writes pay positioning latency (seek + rotation), so a
//     write-ahead log commit costs milliseconds;
//   - sequential appends avoid the seek but still pay rotational latency,
//     the property group commit exploits;
//   - asynchronous writes land in a bounded write buffer drained at disk
//     throughput, so "async" degrades to synchronous under sustained load
//     (the failure mode the paper points out in the related WAL-on-
//     network-memory scheme).
package disk

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/ics-forth/perseas/internal/simclock"
)

// Errors returned by the disk.
var (
	// ErrBadRange is returned for accesses beyond the device size.
	ErrBadRange = errors.New("disk: access beyond device size")
)

// Params describes the device.
type Params struct {
	// Size is the device capacity in bytes.
	Size uint64
	// SeekAvg is the average seek time paid by non-sequential accesses.
	SeekAvg time.Duration
	// RotationalHalf is the average rotational delay (half a revolution).
	RotationalHalf time.Duration
	// BytesPerSecond is the media transfer rate.
	BytesPerSecond float64
	// WriteBuffer is the size of the async write buffer; zero disables
	// asynchronous writes (every write is synchronous).
	WriteBuffer uint64
}

// DefaultParams models a 1997 7200 rpm SCSI disk: ~8 ms average seek,
// ~4.2 ms average rotational delay, 8 MB/s media rate.
func DefaultParams(size uint64) Params {
	return Params{
		Size:           size,
		SeekAvg:        8 * time.Millisecond,
		RotationalHalf: 4170 * time.Microsecond,
		BytesPerSecond: 8 << 20,
		WriteBuffer:    256 << 10,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.Size == 0:
		return errors.New("disk: size must be positive")
	case p.SeekAvg < 0 || p.RotationalHalf < 0:
		return errors.New("disk: latencies must be non-negative")
	case p.BytesPerSecond <= 0:
		return errors.New("disk: transfer rate must be positive")
	}
	return nil
}

// Stats counts device traffic.
type Stats struct {
	SyncWrites   uint64
	AsyncWrites  uint64
	Reads        uint64
	BytesWritten uint64
	BytesRead    uint64
	// Stalls counts async writes that blocked on a full write buffer.
	Stalls uint64
	// Busy is cumulative time charged to callers.
	Busy time.Duration
}

// Disk is one simulated device. Contents survive every crash kind. Safe
// for concurrent use.
type Disk struct {
	params Params
	clock  simclock.Clock

	mu    sync.Mutex
	data  []byte
	head  uint64 // last byte position touched; sequential detection
	stats Stats
	// drainFree is the virtual time at which the async write buffer
	// becomes empty again.
	drainFree time.Duration
}

// New creates a zeroed disk charging time to clock.
func New(params Params, clock simclock.Clock) (*Disk, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Disk{
		params: params,
		clock:  clock,
		data:   make([]byte, params.Size),
		// The head starts parked away from any data position so the
		// first access always pays a full seek.
		head: ^uint64(0),
	}, nil
}

// Params returns the device parameters.
func (d *Disk) Params() Params { return d.params }

// Stats returns a snapshot of the traffic counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Size returns the device capacity.
func (d *Disk) Size() uint64 { return d.params.Size }

func (d *Disk) checkRange(offset uint64, n int) error {
	if n < 0 || offset > d.params.Size || uint64(n) > d.params.Size-offset {
		return fmt.Errorf("%w: [%d,+%d) on %d-byte disk", ErrBadRange, offset, n, d.params.Size)
	}
	return nil
}

// transferTime returns media time for n bytes.
func (d *Disk) transferTime(n int) time.Duration {
	return time.Duration(float64(n) / d.params.BytesPerSecond * float64(time.Second))
}

// positioning returns the head-positioning cost of an access at offset,
// and updates the head.
func (d *Disk) positioning(offset uint64, n int) time.Duration {
	var lat time.Duration
	if offset == d.head {
		// Sequential: no seek, but the platter must still come around.
		lat = d.params.RotationalHalf
	} else {
		lat = d.params.SeekAvg + d.params.RotationalHalf
	}
	d.head = offset + uint64(n)
	return lat
}

// WriteSync writes data at offset and returns only after it is on the
// platter; the caller is charged full positioning plus transfer time.
func (d *Disk) WriteSync(offset uint64, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkRange(offset, len(data)); err != nil {
		return err
	}
	lat := d.positioning(offset, len(data)) + d.transferTime(len(data))
	copy(d.data[offset:], data)
	d.stats.SyncWrites++
	d.stats.BytesWritten += uint64(len(data))
	d.stats.Busy += lat
	d.clock.Advance(lat)
	return nil
}

// WriteAsync queues data for background writing. If the write buffer has
// room the caller is charged (almost) nothing; if the buffer is full the
// caller stalls until the drain catches up — exactly how asynchronous
// logging degrades under sustained load.
func (d *Disk) WriteAsync(offset uint64, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkRange(offset, len(data)); err != nil {
		return err
	}
	if d.params.WriteBuffer == 0 {
		// No buffer: degenerate to a synchronous write.
		lat := d.positioning(offset, len(data)) + d.transferTime(len(data))
		copy(d.data[offset:], data)
		d.stats.SyncWrites++
		d.stats.BytesWritten += uint64(len(data))
		d.stats.Busy += lat
		d.clock.Advance(lat)
		return nil
	}

	now := d.clock.Now()
	if d.drainFree < now {
		d.drainFree = now
	}
	// Occupancy is implied by how far in the future the drain completes.
	occupancy := float64((d.drainFree - now).Nanoseconds()) / float64(time.Second) * d.params.BytesPerSecond
	var stall time.Duration
	if occupancy+float64(len(data)) > float64(d.params.WriteBuffer) {
		// Stall until enough of the buffer has drained.
		excess := occupancy + float64(len(data)) - float64(d.params.WriteBuffer)
		stall = time.Duration(excess / d.params.BytesPerSecond * float64(time.Second))
		d.stats.Stalls++
	}
	d.drainFree += d.transferTime(len(data))

	copy(d.data[offset:], data)
	d.stats.AsyncWrites++
	d.stats.BytesWritten += uint64(len(data))
	d.stats.Busy += stall
	d.clock.Advance(stall)
	return nil
}

// Flush blocks until all buffered asynchronous writes are on the platter.
func (d *Disk) Flush() {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.clock.Now()
	if d.drainFree > now {
		wait := d.drainFree - now
		d.stats.Busy += wait
		d.clock.Advance(wait)
	}
}

// Read copies n bytes from offset, charging positioning plus transfer.
func (d *Disk) Read(offset uint64, n int) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkRange(offset, n); err != nil {
		return nil, err
	}
	lat := d.positioning(offset, n) + d.transferTime(n)
	out := make([]byte, n)
	copy(out, d.data[offset:])
	d.stats.Reads++
	d.stats.BytesRead += uint64(n)
	d.stats.Busy += lat
	d.clock.Advance(lat)
	return out, nil
}

// Peek reads without charging time; for tests and recovery inspection.
func (d *Disk) Peek(offset uint64, n int) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkRange(offset, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, d.data[offset:])
	return out, nil
}
