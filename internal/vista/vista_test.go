package vista

import (
	"errors"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/enginetest"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/riofs"
	"github.com/ics-forth/perseas/internal/simclock"
)

func newVista(t *testing.T, hasUPS bool, mutate ...func(*Options)) (*Vista, *simclock.SimClock) {
	t.Helper()
	clock := simclock.NewSim()
	p := riofs.DefaultParams()
	p.HasUPS = hasUPS
	rio := riofs.New(p, clock)
	opts := DefaultOptions()
	for _, m := range mutate {
		m(&opts)
	}
	v, err := New(rio, clock, opts)
	if err != nil {
		t.Fatal(err)
	}
	return v, clock
}

func TestVistaConformance(t *testing.T) {
	enginetest.Run(t, "vista",
		func(t *testing.T) engine.Engine {
			v, _ := newVista(t, false)
			return engine.NewSequential(v)
		},
		enginetest.Caps{
			SurvivesKind:    func(k fault.CrashKind) bool { return k != fault.CrashPower },
			DurableOnCommit: true,
		})
}

func TestVistaWithUPSConformance(t *testing.T) {
	enginetest.Run(t, "vista-ups",
		func(t *testing.T) engine.Engine {
			v, _ := newVista(t, true)
			return engine.NewSequential(v)
		},
		enginetest.Caps{
			SurvivesKind:    func(fault.CrashKind) bool { return true },
			DurableOnCommit: true,
		})
}

func TestNewValidation(t *testing.T) {
	clock := simclock.NewSim()
	rio := riofs.New(riofs.DefaultParams(), clock)
	if _, err := New(rio, clock, Options{UndoLogSize: 4}); err == nil {
		t.Error("tiny undo log should be rejected")
	}
}

func TestSmallTransactionIsMicrosecondScale(t *testing.T) {
	v, clock := newVista(t, false)
	db, err := v.CreateDB("db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.InitDB(db); err != nil {
		t.Fatal(err)
	}
	t0 := clock.Now()
	const txs = 100
	for i := 0; i < txs; i++ {
		if err := v.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := v.SetRange(db, uint64(i%64)*64, 4); err != nil {
			t.Fatal(err)
		}
		if err := v.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	perTx := (clock.Now() - t0) / txs
	// The paper places Vista's small transactions "in the area of a few
	// microseconds" — faster than PERSEAS (no network), far faster than
	// any WAL scheme.
	if perTx > 5*time.Microsecond {
		t.Errorf("vista small tx = %v, want low single-digit us", perTx)
	}
}

func TestUndoLogFull(t *testing.T) {
	v, _ := newVista(t, false, func(o *Options) { o.UndoLogSize = 128 })
	db, err := v.CreateDB("db", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := v.SetRange(db, 0, 80); err != nil {
		t.Fatal(err)
	}
	if err := v.SetRange(db, 80, 80); !errors.Is(err, ErrUndoLogFull) {
		t.Errorf("overflow: %v", err)
	}
	if err := v.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryIgnoresAbortedRemnants(t *testing.T) {
	// Regression for the incomplete-aborted-suffix hazard: tx N declares
	// overlapping ranges (so its second record's before-image holds
	// uncommitted bytes) and aborts; tx N+1 logs one small record and
	// the machine crashes. Recovery must roll back only tx N+1.
	v, _ := newVista(t, false)
	db, err := v.CreateDB("db", 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.InitDB(db); err != nil {
		t.Fatal(err)
	}
	// Committed baseline.
	if err := v.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := v.SetRange(db, 0, 24); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[0:], "committed-committed-1234")
	if err := v.Commit(); err != nil {
		t.Fatal(err)
	}
	// Aborted tx with overlapping ranges: the second captures the
	// first's uncommitted modification.
	if err := v.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := v.SetRange(db, 0, 20); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[0:], "UNCOMMITTED-GARBAGE!")
	if err := v.SetRange(db, 4, 20); err != nil { // overlaps; 20B keeps record sizes equal
		t.Fatal(err)
	}
	if err := v.Abort(); err != nil {
		t.Fatal(err)
	}
	// Next tx logs exactly one same-sized record, leaving the aborted
	// tx's second record intact behind it, then crashes mid-flight.
	if err := v.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := v.SetRange(db, 100, 20); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[100:], "in-flight-changes!!!")
	if err := v.Crash(fault.CrashOS); err != nil {
		t.Fatal(err)
	}
	if err := v.Recover(); err != nil {
		t.Fatal(err)
	}
	re, err := v.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[:24]); got != "committed-committed-1234" {
		t.Errorf("recovered %q; aborted remnant leaked", got)
	}
}

func TestPowerCrashWithoutUPSKillsVista(t *testing.T) {
	v, _ := newVista(t, false)
	db, err := v.CreateDB("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.InitDB(db); err != nil {
		t.Fatal(err)
	}
	if err := v.Crash(fault.CrashPower); err != nil {
		t.Fatal(err)
	}
	if err := v.Recover(); !errors.Is(err, engine.ErrUnrecoverable) {
		t.Errorf("recover after power loss: %v, want ErrUnrecoverable", err)
	}
}

func TestStats(t *testing.T) {
	v, _ := newVista(t, false)
	db, err := v.CreateDB("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := v.SetRange(db, 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := v.Commit(); err != nil {
		t.Fatal(err)
	}
	st := v.Stats()
	if st.Begun != 1 || st.Committed != 1 || st.SetRanges != 1 {
		t.Errorf("stats = %+v", st)
	}
}
