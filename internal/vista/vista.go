// Package vista reimplements the algorithmic core of Vista (Lowell &
// Chen, SOSP 1997), the fastest recoverable-memory library the paper
// compares against.
//
// Vista maps its database directly into the Rio file cache and gets rid
// of the redo log entirely: because the mapped memory itself survives
// crashes, a transaction only needs an undo log — also kept in Rio — to
// roll back uncommitted updates. Commit merely discards the undo log (one
// small store); abort copies the before-images back. This makes Vista
// extremely fast, but its recoverability is only as good as Rio: it
// requires the modified operating system, and on a power failure without
// a UPS everything is gone — the gap PERSEAS fills with remote mirroring
// while staying on an unmodified OS.
package vista

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/hostmem"
	"github.com/ics-forth/perseas/internal/riofs"
	"github.com/ics-forth/perseas/internal/simclock"
)

// Region names inside the Rio cache.
const (
	metaRegion   = "vista.meta"
	undoRegion   = "vista.undo"
	dbPrefix     = "vista.db."
	metaSize     = 4096
	committedOff = 0
	dbCountOff   = 8
	dirOff       = 32
)

// Undo record layout (same scheme as the PERSEAS log, kept in Rio):
//
//	[0:8) txid | [8:12) dbID | [12:20) offset | [20:24) length |
//	[24:28) crc | [28:..) before-image
const recordHeader = 28

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Errors specific to Vista.
var (
	// ErrUndoLogFull is returned when a transaction logs more
	// before-image bytes than the undo region holds.
	ErrUndoLogFull = errors.New("vista: undo log full")
	// ErrBadRange is returned for ranges outside a database.
	ErrBadRange = errors.New("vista: range outside database")
	// ErrNoSuchDB is returned for unknown database names.
	ErrNoSuchDB = errors.New("vista: no such database")
)

// Options configure a Vista instance.
type Options struct {
	// UndoLogSize bounds one transaction's before-images.
	UndoLogSize uint64
	// Mem prices local copies (Vista's operations are all direct
	// stores into mapped Rio memory).
	Mem hostmem.Model
	// SetRangeOverhead and CommitOverhead model Vista's (very thin)
	// software path: a few microseconds per declared range, almost
	// nothing at commit — the numbers behind Lowell & Chen's
	// "transactions for free" claim.
	SetRangeOverhead time.Duration
	CommitOverhead   time.Duration
}

// DefaultOptions sizes the undo log like the PERSEAS default.
func DefaultOptions() Options {
	return Options{
		UndoLogSize:      4 << 20,
		Mem:              hostmem.Default(),
		SetRangeOverhead: 3 * time.Microsecond,
		CommitOverhead:   1500 * time.Nanosecond,
	}
}

// database is one Vista-managed region, mapped straight into Rio.
type database struct {
	id    uint32
	name  string
	data  []byte
	stale bool
}

func (d *database) Name() string  { return d.name }
func (d *database) Size() uint64  { return uint64(len(d.data)) }
func (d *database) Bytes() []byte { return d.data }

// pending is one declared range of the open transaction.
type pending struct {
	db     *database
	offset uint64
	length uint64
}

// Vista is one instance of the baseline.
type Vista struct {
	opts  Options
	clock simclock.Clock
	rio   *riofs.Store

	meta []byte
	undo []byte

	dbs    map[string]*database
	byID   map[uint32]*database
	nextID uint32

	txActive bool
	txID     uint64
	lastTx   uint64
	cursor   uint64
	ranges   []pending

	crashed bool
	lost    bool
	stats   Stats
}

// Stats counts Vista activity.
type Stats struct {
	Begun      uint64
	Committed  uint64
	Aborted    uint64
	SetRanges  uint64
	Recoveries uint64
}

// New builds a Vista over the given Rio cache.
func New(rio *riofs.Store, clock simclock.Clock, opts Options) (*Vista, error) {
	if opts.UndoLogSize < recordHeader+1 {
		return nil, fmt.Errorf("vista: undo log too small (%d)", opts.UndoLogSize)
	}
	if err := rio.Create(metaRegion, metaSize); err != nil {
		return nil, fmt.Errorf("vista: create metadata: %w", err)
	}
	if err := rio.Create(undoRegion, opts.UndoLogSize); err != nil {
		return nil, fmt.Errorf("vista: create undo log: %w", err)
	}
	meta, err := rio.Map(metaRegion)
	if err != nil {
		return nil, err
	}
	undo, err := rio.Map(undoRegion)
	if err != nil {
		return nil, err
	}
	return &Vista{
		opts:   opts,
		clock:  clock,
		rio:    rio,
		meta:   meta,
		undo:   undo,
		dbs:    make(map[string]*database),
		byID:   make(map[uint32]*database),
		nextID: 1,
	}, nil
}

// Name implements engine.Engine.
func (v *Vista) Name() string { return "vista" }

// Stats returns a snapshot of the counters.
func (v *Vista) Stats() Stats { return v.stats }

func (v *Vista) checkAlive() error {
	if v.crashed {
		return engine.ErrCrashed
	}
	return nil
}

// CreateDB implements engine.Engine: the database lives directly in Rio.
func (v *Vista) CreateDB(name string, size uint64) (engine.DB, error) {
	if err := v.checkAlive(); err != nil {
		return nil, err
	}
	if _, ok := v.dbs[name]; ok {
		return nil, fmt.Errorf("vista: database %q exists", name)
	}
	if err := v.rio.Create(dbPrefix+name, size); err != nil {
		return nil, err
	}
	data, err := v.rio.Map(dbPrefix + name)
	if err != nil {
		return nil, err
	}
	db := &database{id: v.nextID, name: name, data: data}
	v.nextID++
	v.dbs[name] = db
	v.byID[db.id] = db
	v.writeDirectory()
	return db, nil
}

// InitDB implements engine.Engine. Vista's database already lives in
// stable (Rio) memory, so publishing the initial state costs nothing.
func (v *Vista) InitDB(db engine.DB) error {
	if err := v.checkAlive(); err != nil {
		return err
	}
	_, err := v.own(db)
	return err
}

// OpenDB implements engine.Engine.
func (v *Vista) OpenDB(name string) (engine.DB, error) {
	if err := v.checkAlive(); err != nil {
		return nil, err
	}
	db, ok := v.dbs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchDB, name)
	}
	return db, nil
}

func (v *Vista) own(db engine.DB) (*database, error) {
	d, ok := db.(*database)
	if !ok {
		return nil, fmt.Errorf("vista: foreign DB handle %T", db)
	}
	if d.stale {
		return nil, errors.New("vista: stale database handle; reopen after recovery")
	}
	if v.byID[d.id] != d {
		return nil, fmt.Errorf("vista: unknown database handle %q", d.name)
	}
	return d, nil
}

// writeDirectory records (id, size, name) rows in the metadata region so
// recovery can re-map databases.
func (v *Vista) writeDirectory() {
	binary.BigEndian.PutUint32(v.meta[dbCountOff:], uint32(len(v.byID)))
	off := dirOff
	for id := uint32(1); id < v.nextID; id++ {
		db, ok := v.byID[id]
		if !ok {
			continue
		}
		binary.BigEndian.PutUint32(v.meta[off:], db.id)
		binary.BigEndian.PutUint64(v.meta[off+4:], db.Size())
		binary.BigEndian.PutUint16(v.meta[off+12:], uint16(len(db.name)))
		copy(v.meta[off+14:], db.name)
		off += 14 + len(db.name)
	}
}

// Begin implements engine.Engine.
func (v *Vista) Begin() error {
	if err := v.checkAlive(); err != nil {
		return err
	}
	if v.txActive {
		return engine.ErrInTransaction
	}
	v.lastTx++
	v.txID = v.lastTx
	v.txActive = true
	v.cursor = 0
	v.ranges = v.ranges[:0]
	v.stats.Begun++
	return nil
}

// SetRange implements engine.Engine: one local copy of the before-image
// into the Rio-resident undo log. No second copy anywhere — that is the
// whole Vista trick.
func (v *Vista) SetRange(db engine.DB, offset, length uint64) error {
	if err := v.checkAlive(); err != nil {
		return err
	}
	if !v.txActive {
		return engine.ErrNoTransaction
	}
	d, err := v.own(db)
	if err != nil {
		return err
	}
	if offset > d.Size() || length > d.Size()-offset {
		return fmt.Errorf("%w: [%d,+%d) in %d-byte database %q",
			ErrBadRange, offset, length, d.Size(), d.name)
	}
	need := recordHeader + length
	if v.cursor+need > uint64(len(v.undo)) {
		return fmt.Errorf("%w: need %d bytes, %d free",
			ErrUndoLogFull, need, uint64(len(v.undo))-v.cursor)
	}
	h := v.undo[v.cursor:]
	binary.BigEndian.PutUint64(h[0:], v.txID)
	binary.BigEndian.PutUint32(h[8:], d.id)
	binary.BigEndian.PutUint64(h[12:], offset)
	binary.BigEndian.PutUint32(h[20:], uint32(length))
	crc := crc32.Update(0, crcTable, h[:24])
	crc = crc32.Update(crc, crcTable, d.data[offset:offset+length])
	binary.BigEndian.PutUint32(h[24:], crc)
	v.opts.Mem.Copy(v.clock, h[recordHeader:recordHeader+length], d.data[offset:offset+length])
	v.clock.Advance(v.opts.SetRangeOverhead)
	v.cursor += need
	v.ranges = append(v.ranges, pending{db: d, offset: offset, length: length})
	v.stats.SetRanges++
	return nil
}

// Commit implements engine.Engine: discard the undo log by bumping the
// committed transaction id — one 8-byte store into Rio.
func (v *Vista) Commit() error {
	if err := v.checkAlive(); err != nil {
		return err
	}
	if !v.txActive {
		return engine.ErrNoTransaction
	}
	binary.BigEndian.PutUint64(v.meta[committedOff:], v.txID)
	v.clock.Advance(v.opts.CommitOverhead + v.opts.Mem.CopyCost(8))
	v.txActive = false
	v.ranges = v.ranges[:0]
	v.cursor = 0
	v.stats.Committed++
	return nil
}

// Abort implements engine.Engine: walk the undo log backwards and restore
// before-images.
func (v *Vista) Abort() error {
	if err := v.checkAlive(); err != nil {
		return err
	}
	if !v.txActive {
		return engine.ErrNoTransaction
	}
	if err := v.rollback(v.txID - 1); err != nil {
		return err
	}
	v.txActive = false
	v.ranges = v.ranges[:0]
	v.cursor = 0
	v.stats.Aborted++
	return nil
}

// rollback applies, newest first, the undo records of the single
// transaction at the head of the log, provided it is newer than
// committed. Remnants of older (aborted) transactions beyond the head
// transaction's tail are never applied: they may be incomplete suffixes
// whose before-images carry uncommitted bytes.
func (v *Vista) rollback(committed uint64) error {
	type rec struct {
		dbID   uint32
		offset uint64
		length uint64
		data   []byte
	}
	var recs []rec
	var cursor uint64
	var headTx uint64
	for {
		if cursor+recordHeader > uint64(len(v.undo)) {
			break
		}
		h := v.undo[cursor:]
		length := uint64(binary.BigEndian.Uint32(h[20:24]))
		if cursor+recordHeader+length > uint64(len(v.undo)) {
			break
		}
		crc := crc32.Update(0, crcTable, h[:24])
		crc = crc32.Update(crc, crcTable, h[recordHeader:recordHeader+length])
		if crc != binary.BigEndian.Uint32(h[24:28]) {
			break
		}
		txID := binary.BigEndian.Uint64(h[0:8])
		if txID <= committed {
			break
		}
		if headTx == 0 {
			headTx = txID
		} else if txID != headTx {
			break
		}
		recs = append(recs, rec{
			dbID:   binary.BigEndian.Uint32(h[8:12]),
			offset: binary.BigEndian.Uint64(h[12:20]),
			length: length,
			data:   h[recordHeader : recordHeader+length],
		})
		cursor += recordHeader + length
	}
	for i := len(recs) - 1; i >= 0; i-- {
		rc := recs[i]
		db, ok := v.byID[rc.dbID]
		if !ok {
			return fmt.Errorf("vista: undo record for unknown database %d", rc.dbID)
		}
		if rc.offset > db.Size() || rc.length > db.Size()-rc.offset {
			return fmt.Errorf("vista: undo record outside database %q", db.name)
		}
		v.opts.Mem.Copy(v.clock, db.data[rc.offset:rc.offset+rc.length], rc.data)
	}
	return nil
}

// Crash implements engine.Engine. Vista has no volatile database state —
// everything lives in Rio — so a crash only drops the handles. Whether
// the Rio contents survive depends on the crash kind.
func (v *Vista) Crash(kind fault.CrashKind) error {
	v.crashed = true
	v.rio.Crash(kind)
	if v.rio.Lost() {
		v.lost = true
	}
	for _, db := range v.dbs {
		db.stale = true
	}
	v.txActive = false
	v.ranges = nil
	return nil
}

// Recover implements engine.Engine: re-map every region and roll back the
// in-flight transaction from the Rio-resident undo log.
func (v *Vista) Recover() error {
	if !v.crashed {
		return errors.New("vista: recover called on a running instance")
	}
	v.rio.Restart()
	if v.lost {
		return fmt.Errorf("%w: Rio cache destroyed by power failure", engine.ErrUnrecoverable)
	}
	meta, err := v.rio.Map(metaRegion)
	if err != nil {
		return fmt.Errorf("vista: re-map metadata: %w", err)
	}
	undo, err := v.rio.Map(undoRegion)
	if err != nil {
		return fmt.Errorf("vista: re-map undo log: %w", err)
	}
	v.meta, v.undo = meta, undo

	committed := binary.BigEndian.Uint64(meta[committedOff:])
	count := binary.BigEndian.Uint32(meta[dbCountOff:])
	dbs := make(map[string]*database, count)
	byID := make(map[uint32]*database, count)
	off := dirOff
	var maxID uint32
	for i := uint32(0); i < count; i++ {
		id := binary.BigEndian.Uint32(meta[off:])
		nameLen := int(binary.BigEndian.Uint16(meta[off+12:]))
		name := string(meta[off+14 : off+14+nameLen])
		off += 14 + nameLen
		data, err := v.rio.Map(dbPrefix + name)
		if err != nil {
			return fmt.Errorf("vista: re-map database %q: %w", name, err)
		}
		db := &database{id: id, name: name, data: data}
		dbs[name] = db
		byID[id] = db
		if id > maxID {
			maxID = id
		}
	}
	v.dbs = dbs
	v.byID = byID
	v.nextID = maxID + 1

	// Roll back the in-flight transaction, if any, and advance the id
	// counter past every id seen in the log.
	last := committed
	var cursor uint64
	for {
		if cursor+recordHeader > uint64(len(undo)) {
			break
		}
		h := undo[cursor:]
		length := uint64(binary.BigEndian.Uint32(h[20:24]))
		if cursor+recordHeader+length > uint64(len(undo)) {
			break
		}
		crc := crc32.Update(0, crcTable, h[:24])
		crc = crc32.Update(crc, crcTable, h[recordHeader:recordHeader+length])
		if crc != binary.BigEndian.Uint32(h[24:28]) {
			break
		}
		txID := binary.BigEndian.Uint64(h[0:8])
		if txID <= committed {
			break
		}
		if txID > last {
			last = txID
		}
		cursor += recordHeader + length
	}
	if err := v.rollback(committed); err != nil {
		return err
	}
	v.lastTx = last
	v.txActive = false
	v.crashed = false
	v.stats.Recoveries++
	return nil
}

// Close implements engine.Engine.
func (v *Vista) Close() error {
	v.crashed = true
	return nil
}

var _ engine.Sequential = (*Vista)(nil)
