package trace

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/simclock"
)

func TestDisabledRecorderRecordsNothing(t *testing.T) {
	r := NewRecorder()
	if tt := r.Tx(); tt != nil {
		t.Fatal("disabled recorder handed out a TxTrace")
	}
	sp := r.Start(LayerTransport, "combine")
	if sp.Active() {
		t.Fatal("disabled recorder handed out an active InfraSpan")
	}
	sp.End()
	r.Event(LayerGuardian, "beat", 1)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("disabled recorder kept %d spans", len(got))
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var r *Recorder
	r.Enable()
	r.Disable()
	r.SetClock(simclock.NewSim())
	r.SetSlowerThan(time.Second)
	r.Event(LayerEngine, "x", 0)
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil recorder snapshot = %v", got)
	}
	var tt *TxTrace
	ref := tt.Start(LayerEngine, "tx")
	tt.Event(LayerCore, "ev", 1)
	ref.End()
	ref.EndN(7)
	tt.Finish()
	if tt.Trace() != 0 {
		t.Fatal("nil TxTrace has a trace id")
	}
	var is InfraSpan
	is.Child(LayerNetram, "x").End()
	is.End()
	is.EndN(3)
}

func TestTxTraceBuildsTree(t *testing.T) {
	r := NewRecorder()
	clk := simclock.NewSim()
	r.SetClock(clk)
	r.Enable()

	tt := r.Tx()
	root := tt.Start(LayerEngine, "tx")
	clk.Advance(10 * time.Microsecond)
	sr := tt.Start(LayerEngine, "set_range")
	clk.Advance(5 * time.Microsecond)
	cp := tt.Start(LayerCore, "local_undo_copy")
	clk.Advance(2 * time.Microsecond)
	cp.EndN(64)
	tt.Event(LayerNetram, "retry", 1)
	sr.End()
	clk.Advance(3 * time.Microsecond)
	root.End()
	tt.Finish()

	spans := r.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(spans), spans)
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		byName[sp.Name] = sp
		if sp.Trace == 0 {
			t.Fatalf("tx span %q has trace 0", sp.Name)
		}
	}
	txSp, srSp, cpSp, rtSp := byName["tx"], byName["set_range"], byName["local_undo_copy"], byName["retry"]
	if txSp.Parent != 0 {
		t.Fatalf("root parent = %d", txSp.Parent)
	}
	if srSp.Parent != txSp.ID {
		t.Fatalf("set_range parent = %d, want %d", srSp.Parent, txSp.ID)
	}
	if cpSp.Parent != srSp.ID {
		t.Fatalf("local_undo_copy parent = %d, want %d", cpSp.Parent, srSp.ID)
	}
	if rtSp.Parent != cpSp.ID {
		// The copy span ended before the event fired; the event's
		// parent must be the still-open set_range span.
		if rtSp.Parent != srSp.ID {
			t.Fatalf("retry parent = %d, want %d", rtSp.Parent, srSp.ID)
		}
	}
	if !rtSp.Instant {
		t.Fatal("event span not marked instant")
	}
	if cpSp.Dur != 2*time.Microsecond {
		t.Fatalf("local_undo_copy dur = %v", cpSp.Dur)
	}
	if cpSp.Arg != 64 {
		t.Fatalf("local_undo_copy arg = %d", cpSp.Arg)
	}
	if txSp.Dur != 20*time.Microsecond {
		t.Fatalf("tx dur = %v", txSp.Dur)
	}
	if r.Metrics().KeptTxs.Load() != 1 {
		t.Fatalf("kept = %d", r.Metrics().KeptTxs.Load())
	}
}

func TestSlowerThanFiltersWholeTrees(t *testing.T) {
	r := NewRecorder()
	clk := simclock.NewSim()
	r.SetClock(clk)
	r.Enable()
	r.SetSlowerThan(time.Millisecond)

	fast := r.Tx()
	fsp := fast.Start(LayerEngine, "tx")
	clk.Advance(10 * time.Microsecond)
	fsp.End()
	fast.Finish()

	slow := r.Tx()
	ssp := slow.Start(LayerEngine, "tx")
	clk.Advance(2 * time.Millisecond)
	ssp.End()
	slow.Finish()

	spans := r.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want only the slow tx: %+v", len(spans), spans)
	}
	if spans[0].Trace != slow.Trace() && spans[0].Dur != 2*time.Millisecond {
		t.Fatalf("kept the wrong tx: %+v", spans[0])
	}
	m := r.Metrics()
	if m.KeptTxs.Load() != 1 || m.FilteredTxs.Load() != 1 {
		t.Fatalf("kept=%d filtered=%d, want 1/1", m.KeptTxs.Load(), m.FilteredTxs.Load())
	}
}

func TestFinishClosesOpenSpans(t *testing.T) {
	r := NewRecorder()
	clk := simclock.NewSim()
	r.SetClock(clk)
	r.Enable()
	tt := r.Tx()
	tt.Start(LayerEngine, "tx") // never explicitly ended
	clk.Advance(time.Microsecond)
	tt.Finish()
	spans := r.Snapshot()
	if len(spans) != 1 || spans[0].Dur != time.Microsecond {
		t.Fatalf("open span not closed by Finish: %+v", spans)
	}
}

func TestInfraSpansAndEvents(t *testing.T) {
	r := NewRecorder()
	clk := simclock.NewSim()
	r.SetClock(clk)
	r.Enable()
	r.SetSlowerThan(time.Hour) // must not filter infrastructure spans

	sp := r.Start(LayerTransport, "combine")
	clk.Advance(4 * time.Microsecond)
	child := sp.Child(LayerTransport, "exchange")
	clk.Advance(time.Microsecond)
	child.End()
	sp.EndN(3)
	r.Event(LayerGuardian, "mirror_dead", 2)

	spans := r.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for _, s := range spans {
		if s.Trace != 0 {
			t.Fatalf("infra span %q carries trace %d", s.Name, s.Trace)
		}
	}
	var combine, exch Span
	for _, s := range spans {
		switch s.Name {
		case "combine":
			combine = s
		case "exchange":
			exch = s
		}
	}
	if exch.Parent != combine.ID {
		t.Fatalf("child parent = %d, want %d", exch.Parent, combine.ID)
	}
	if combine.Arg != 3 {
		t.Fatalf("combine arg = %d", combine.Arg)
	}
}

func TestRingOverflowKeepsNewest(t *testing.T) {
	r := NewRecorder()
	r.Enable()
	total := infraSpans + 500
	for i := 0; i < total; i++ {
		r.Event(LayerEngine, "e", uint64(i))
	}
	spans := r.Snapshot()
	if len(spans) != infraSpans {
		t.Fatalf("ring holds %d spans, want %d", len(spans), infraSpans)
	}
	if r.Metrics().Overflows.Load() != 500 {
		t.Fatalf("overflows = %d, want 500", r.Metrics().Overflows.Load())
	}
	// The very first events must have been overwritten.
	for _, sp := range spans {
		if sp.Arg == 0 {
			t.Fatal("oldest span survived a full ring wrap")
		}
	}
}

func TestRareLayerSurvivesChattyLayerFlood(t *testing.T) {
	r := NewRecorder()
	r.Enable()
	// One guardian transition early in the run...
	r.Event(LayerGuardian, "mirror_dead", 2)
	// ...then far more transport and transaction traffic than any one
	// ring can hold. Per-layer infra rings must keep the guardian event.
	for i := 0; i < numShards*shardSpans+infraSpans; i++ {
		r.Event(LayerTransport, "combine", uint64(i))
		tt := r.Tx()
		tt.Start(LayerEngine, "tx").End()
		tt.Finish()
	}
	var found bool
	for _, sp := range r.Snapshot() {
		if sp.Layer == LayerGuardian && sp.Name == "mirror_dead" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("guardian event evicted by transport/tx flood")
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	r := NewRecorder()
	r.Enable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tt := r.Tx()
				root := tt.Start(LayerEngine, "tx")
				tt.Start(LayerCore, "phase").End()
				root.End()
				tt.Finish()
				is := r.Start(LayerTransport, "combine")
				is.EndN(uint64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Metrics().KeptTxs.Load(); got != 8*200 {
		t.Fatalf("kept %d trees, want %d", got, 8*200)
	}
	_ = r.Snapshot()
}

func TestRecorderNeverAdvancesClock(t *testing.T) {
	r := NewRecorder()
	clk := simclock.NewSim()
	r.SetClock(clk)
	r.Enable()
	tt := r.Tx()
	sp := tt.Start(LayerEngine, "tx")
	tt.Event(LayerCore, "ev", 1)
	sp.End()
	tt.Finish()
	r.Start(LayerGuardian, "rebuild").EndN(10)
	r.Event(LayerGuardian, "beat", 0)
	if now := clk.Now(); now != 0 {
		t.Fatalf("recording advanced the clock to %v", now)
	}
}

func TestRegisterMetrics(t *testing.T) {
	r := NewRecorder()
	r.Enable()
	r.Event(LayerEngine, "e", 1)
	reg := obs.NewRegistry()
	r.RegisterMetrics(reg)
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"perseas_trace_spans_total 1",
		"perseas_trace_tx_kept_total 0",
		"perseas_trace_tx_filtered_total 0",
		"perseas_trace_ring_overflow_total 0",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRecorder()
	r.Enable()
	r.Event(LayerGuardian, "mirror_dead", 1)
	srv := httptest.NewServer(r)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	spans, err := ReadChromeTrace(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "mirror_dead" {
		t.Fatalf("round-tripped spans = %+v", spans)
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder()
	r.Enable()
	r.Event(LayerEngine, "e", 1)
	r.Reset()
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("Reset left %d spans", len(got))
	}
}
