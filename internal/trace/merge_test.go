package trace

import (
	"bytes"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/simclock"
)

func TestTxAdoptTagsSpanIDs(t *testing.T) {
	r := NewRecorder()
	r.Enable()
	r.SetClock(simclock.NewSim())

	tt := r.TxAdopt(42, 7)
	if tt == nil {
		t.Fatal("TxAdopt returned nil on an enabled recorder")
	}
	if tt.Trace() != 42 {
		t.Fatalf("adopted trace id = %d, want 42", tt.Trace())
	}
	root := tt.Start(LayerEngine, "tx")
	child := tt.Start(LayerCore, "commit")
	child.End()
	root.End()
	tt.Finish()

	// A second adoption of the same trace (a routed transaction touching
	// two shards) must draw ids from a different tagged space.
	tt2 := r.TxAdopt(42, 7)
	root2 := tt2.Start(LayerEngine, "tx")
	root2.End()
	tt2.Finish()

	spans := r.Snapshot()
	seen := make(map[uint64]bool)
	var rootSpans int
	for _, sp := range spans {
		if sp.Trace != 42 {
			t.Fatalf("span %q trace = %d, want adopted id 42", sp.Name, sp.Trace)
		}
		if sp.ID&(1<<62) == 0 {
			t.Fatalf("adopted span %q id %#x lacks the bit-62 tag", sp.Name, sp.ID)
		}
		if seen[sp.ID] {
			t.Fatalf("span id %#x issued twice across adoptions", sp.ID)
		}
		seen[sp.ID] = true
		if sp.Parent == 7 {
			rootSpans++
		}
	}
	if rootSpans != 2 {
		t.Fatalf("%d spans hang under the propagated parent 7, want both roots", rootSpans)
	}
}

func TestTxAdoptDisabledAndUntraced(t *testing.T) {
	r := NewRecorder()
	if r.TxAdopt(5, 1) != nil {
		t.Fatal("TxAdopt on a disabled recorder must return nil")
	}
	r.Enable()
	if r.TxAdopt(0, 1) != nil {
		t.Fatal("TxAdopt of trace id 0 (untraced peer) must return nil")
	}
	var nilRec *Recorder
	if nilRec.TxAdopt(5, 1) != nil {
		t.Fatal("TxAdopt on a nil recorder must return nil")
	}
}

func TestSpanRefID(t *testing.T) {
	r := NewRecorder()
	r.Enable()
	tt := r.Tx()
	sp := tt.Start(LayerClient, "rtt")
	if sp.ID() == 0 {
		t.Fatal("live SpanRef.ID() = 0")
	}
	if (SpanRef{}).ID() != 0 {
		t.Fatal("zero SpanRef.ID() != 0")
	}
	sp.End()
	tt.Finish()
}

// TestCrossProcessChromeRoundTrip is the stitched-capture contract: a
// client capture and a server capture of the same transaction, written
// and re-read as Chrome trace JSON, merge into one tree per trace id
// with the clocks realigned.
func TestCrossProcessChromeRoundTrip(t *testing.T) {
	// Client process: its clock starts at 0.
	cliClk := simclock.NewSim()
	cli := NewRecorder()
	cli.Enable()
	cli.SetClock(cliClk)
	cli.SetProcess("client")

	// Server process: its clock started long before the client's — the
	// realistic misalignment the merge must absorb.
	srvClk := simclock.NewSim()
	srvClk.Advance(90 * time.Minute)
	srv := NewRecorder()
	srv.Enable()
	srv.SetClock(srvClk)
	srv.SetProcess("server")

	// Client side: tx > begin_rtt, then commit_rtt.
	ct := cli.Tx()
	traceID := ct.Trace()
	root := ct.Start(LayerClient, "tx")
	beginRTT := ct.Start(LayerClient, "begin_rtt")
	beginSpanID := beginRTT.ID()
	cliClk.Advance(2 * time.Millisecond)

	// Server side, inside the begin RTT: the adopted engine tree.
	st := srv.TxAdopt(traceID, beginSpanID)
	stRoot := st.Start(LayerEngine, "tx")
	srvClk.Advance(300 * time.Microsecond)
	commitSp := st.Start(LayerCore, "commit")
	srvClk.Advance(500 * time.Microsecond)
	commitSp.End()
	stRoot.End()
	st.Finish()
	env := srv.LinkedSpanFrom(LayerServer, "serve_begin", traceID, beginSpanID)
	srvClk.Advance(100 * time.Microsecond)
	env.End()

	cliClk.Advance(1 * time.Millisecond)
	beginRTT.End()
	root.End()
	ct.Finish()

	// Round-trip both captures through the Chrome JSON form.
	var cliBuf, srvBuf bytes.Buffer
	if err := WriteChromeTrace(&cliBuf, cli.Snapshot()); err != nil {
		t.Fatalf("write client trace: %v", err)
	}
	if err := WriteChromeTrace(&srvBuf, srv.Snapshot()); err != nil {
		t.Fatalf("write server trace: %v", err)
	}
	cliSpans, err := ReadChromeTrace(&cliBuf)
	if err != nil {
		t.Fatalf("read client trace: %v", err)
	}
	srvSpans, err := ReadChromeTrace(&srvBuf)
	if err != nil {
		t.Fatalf("read server trace: %v", err)
	}

	merged := MergeSpans(cliSpans, srvSpans)
	if got := StitchedTraces(merged); got != 1 {
		t.Fatalf("StitchedTraces = %d, want 1", got)
	}

	// One tree per trace id: every span's parent is either absent-root
	// (the client's own root) or another span of the same trace.
	ids := make(map[uint64]Span)
	for _, sp := range merged {
		if sp.Trace != traceID {
			t.Fatalf("merged span %q has trace %d, want %d", sp.Name, sp.Trace, traceID)
		}
		ids[sp.ID] = sp
	}
	var roots int
	for _, sp := range merged {
		if sp.Parent == 0 {
			roots++
			continue
		}
		if _, ok := ids[sp.Parent]; !ok {
			t.Fatalf("span %q (proc %s) parent %#x not in merged trace", sp.Name, sp.Proc, sp.Parent)
		}
	}
	if roots != 1 {
		t.Fatalf("merged trace has %d roots, want exactly the client tx span", roots)
	}

	// Clock realignment: every server span must land inside the client
	// RTT span that propagated its parent id.
	var rttStart, rttEnd time.Duration
	for _, sp := range merged {
		if sp.Name == "begin_rtt" {
			rttStart, rttEnd = sp.Start, sp.End()
		}
	}
	for _, sp := range merged {
		if sp.Proc != "server" {
			continue
		}
		if sp.Start < rttStart || sp.Start > rttEnd {
			t.Fatalf("server span %q start %v outside client RTT [%v, %v]",
				sp.Name, sp.Start, rttStart, rttEnd)
		}
	}

	// Process tags survive the JSON round trip.
	byProc := make(map[string]int)
	for _, sp := range merged {
		byProc[sp.Proc]++
	}
	if byProc["client"] == 0 || byProc["server"] == 0 {
		t.Fatalf("process tags lost in round trip: %v", byProc)
	}
}

func TestMergeSpansUnsharedTraceUsesFallbackOffset(t *testing.T) {
	a := []Span{
		{Trace: 1, ID: 1, Name: "tx", Start: 100 * time.Microsecond, Dur: 50 * time.Microsecond, Proc: "a"},
	}
	b := []Span{
		// Shared trace 1: anchors b's offset at -900us (1000 -> 100).
		{Trace: 1, ID: 1 << 62, Name: "remote", Start: 1000 * time.Microsecond, Dur: 10 * time.Microsecond, Proc: "b"},
		// Unshared trace 2 rides the same offset.
		{Trace: 2, ID: 1, Name: "other", Start: 1500 * time.Microsecond, Dur: 10 * time.Microsecond, Proc: "b"},
	}
	merged := MergeSpans(a, b)
	for _, sp := range merged {
		switch sp.Name {
		case "remote":
			if sp.Start != 100*time.Microsecond {
				t.Fatalf("shared-trace span shifted to %v, want 100µs", sp.Start)
			}
		case "other":
			if sp.Start != 600*time.Microsecond {
				t.Fatalf("unshared-trace span shifted to %v, want 600µs", sp.Start)
			}
		}
	}
}
