// Chrome trace-event JSON export and import. The format is the JSON
// object form ({"traceEvents": [...]}) understood by Perfetto
// (ui.perfetto.dev) and chrome://tracing: transactions render as one
// track per trace id under the "transactions" process, infrastructure
// as one track per layer under the "infrastructure" process, and every
// span keeps its tree coordinates (trace/id/parent) in args so a
// written file parses back into the exact span set (ReadChromeTrace).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// Synthetic pids of the two exported processes.
const (
	pidTransactions = 1
	pidInfra        = 2
)

// chromeEvent is one trace-event object. Timestamps and durations are
// microseconds, per the format.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Cat   string         `json:"cat,omitempty"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   uint64         `json:"pid"`
	Tid   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level JSON object.
type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit,omitempty"`
}

// sortSpans orders spans by start time, breaking ties by trace then id
// so output is deterministic.
func sortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		return a.ID < b.ID
	})
}

// us converts a duration to fractional microseconds.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace renders spans as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	f := chromeFile{DisplayUnit: "ns"}
	f.TraceEvents = append(f.TraceEvents,
		metaEvent("process_name", pidTransactions, 0, "transactions"),
		metaEvent("process_name", pidInfra, 0, "infrastructure"))
	for l := Layer(0); l < numLayers; l++ {
		f.TraceEvents = append(f.TraceEvents,
			metaEvent("thread_name", pidInfra, uint64(l), l.String()))
	}
	named := make(map[uint64]bool)
	for _, sp := range spans {
		if sp.Trace != 0 && !named[sp.Trace] {
			named[sp.Trace] = true
			f.TraceEvents = append(f.TraceEvents,
				metaEvent("thread_name", pidTransactions, sp.Trace, fmt.Sprintf("tx %d", sp.Trace)))
		}
	}
	for _, sp := range spans {
		pid, tid := uint64(pidInfra), uint64(sp.Layer)
		if sp.Trace != 0 {
			pid, tid = pidTransactions, sp.Trace
		}
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  sp.Layer.String(),
			Ts:   us(sp.Start),
			Pid:  pid,
			Tid:  tid,
			Args: map[string]any{
				"trace": sp.Trace, "id": sp.ID, "parent": sp.Parent,
				"layer": sp.Layer.String(), "arg": sp.Arg,
			},
		}
		if sp.Proc != "" {
			ev.Args["proc"] = sp.Proc
		}
		if sp.Instant {
			ev.Ph = "i"
			ev.Scope = "t"
		} else {
			ev.Ph = "X"
			ev.Dur = us(sp.Dur)
		}
		f.TraceEvents = append(f.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// metaEvent builds one "M" metadata event naming a process or thread.
func metaEvent(kind string, pid, tid uint64, name string) chromeEvent {
	return chromeEvent{
		Name: kind, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	}
}

// ReadChromeTrace parses trace-event JSON written by WriteChromeTrace
// back into spans (metadata events are skipped). It tolerates files
// from other producers as long as each event is an X or i phase; tree
// coordinates default to zero when the args are absent.
func ReadChromeTrace(r io.Reader) ([]Span, error) {
	var f chromeFile
	dec := json.NewDecoder(r)
	// Span ids carry high-bit tags (linked and adopted id spaces) that
	// exceed float64's 53-bit integer range; UseNumber keeps them exact
	// through the interface{}-typed args.
	dec.UseNumber()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: parse chrome trace: %w", err)
	}
	var spans []Span
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "i" {
			continue
		}
		sp := Span{
			Name:    ev.Name,
			Start:   time.Duration(ev.Ts * 1e3),
			Dur:     time.Duration(ev.Dur * 1e3),
			Instant: ev.Ph == "i",
		}
		sp.Trace = argUint(ev.Args, "trace")
		sp.ID = argUint(ev.Args, "id")
		sp.Parent = argUint(ev.Args, "parent")
		sp.Arg = argUint(ev.Args, "arg")
		if proc, ok := ev.Args["proc"].(string); ok {
			sp.Proc = proc
		}
		if name, ok := ev.Args["layer"].(string); ok {
			if l, ok := ParseLayer(name); ok {
				sp.Layer = l
			}
		} else if l, ok := ParseLayer(ev.Cat); ok {
			sp.Layer = l
		}
		spans = append(spans, sp)
	}
	sortSpans(spans)
	return spans, nil
}

// argUint pulls one numeric arg out of a parsed event.
func argUint(args map[string]any, key string) uint64 {
	switch v := args[key].(type) {
	case json.Number:
		n, err := strconv.ParseUint(v.String(), 10, 64)
		if err != nil {
			return 0
		}
		return n
	case float64:
		if v < 0 {
			return 0
		}
		return uint64(v)
	}
	return 0
}
