// Merging multi-process captures. Each process's recorder reads a
// clock that started when that process did, so the same transaction's
// client-side and server-side spans carry unrelated timestamps; the
// merge realigns them using the one anchor both sides share — the
// propagated parent span id — producing a single span set where every
// stitched transaction renders as one tree.
package trace

import (
	"sort"
	"time"
)

// MergeSpans merges per-process span captures into one set. The first
// capture is the time reference. For every later capture, each trace
// it shares with the spans merged so far is shifted independently: the
// capture's earliest span of that trace is moved to the start of the
// span it names as parent (the propagated wire.Request.TraceSpan), or
// to the trace's earliest already-merged span when that parent is not
// in the capture window. Spans of unshared traces and infrastructure
// spans (trace 0) shift by the median of the capture's per-trace
// offsets, keeping them roughly in place without an anchor of their
// own.
func MergeSpans(captures ...[]Span) []Span {
	type key struct{ trace, id uint64 }
	var out []Span
	startByID := make(map[key]time.Duration)
	traceMin := make(map[uint64]time.Duration)
	add := func(spans []Span) {
		for _, sp := range spans {
			out = append(out, sp)
			if sp.Trace == 0 {
				continue
			}
			startByID[key{sp.Trace, sp.ID}] = sp.Start
			if m, ok := traceMin[sp.Trace]; !ok || sp.Start < m {
				traceMin[sp.Trace] = sp.Start
			}
		}
	}
	for ci, capture := range captures {
		if ci == 0 {
			add(capture)
			continue
		}
		byTrace := make(map[uint64][]int)
		for i, sp := range capture {
			if sp.Trace != 0 {
				byTrace[sp.Trace] = append(byTrace[sp.Trace], i)
			}
		}
		offsets := make(map[uint64]time.Duration)
		var picked []time.Duration
		for t, idxs := range byTrace {
			anchor, shared := traceMin[t]
			if !shared {
				continue
			}
			earliest := idxs[0]
			for _, i := range idxs {
				if capture[i].Start < capture[earliest].Start {
					earliest = i
				}
			}
			if s, ok := startByID[key{t, capture[earliest].Parent}]; ok {
				anchor = s
			}
			off := anchor - capture[earliest].Start
			offsets[t] = off
			picked = append(picked, off)
		}
		var fallback time.Duration
		if len(picked) > 0 {
			sort.Slice(picked, func(i, j int) bool { return picked[i] < picked[j] })
			fallback = picked[len(picked)/2]
		}
		shifted := make([]Span, len(capture))
		for i, sp := range capture {
			off, ok := offsets[sp.Trace]
			if !ok {
				off = fallback
			}
			sp.Start += off
			shifted[i] = sp
		}
		add(shifted)
	}
	sortSpans(out)
	return out
}

// StitchedTraces counts the trace ids whose spans carry more than one
// process tag — the cross-process transactions a merged capture
// contains. Untagged spans (no SetProcess) count as one anonymous
// process.
func StitchedTraces(spans []Span) int {
	procs := make(map[uint64]map[string]struct{})
	for _, sp := range spans {
		if sp.Trace == 0 {
			continue
		}
		m := procs[sp.Trace]
		if m == nil {
			m = make(map[string]struct{})
			procs[sp.Trace] = m
		}
		m[sp.Proc] = struct{}{}
	}
	n := 0
	for _, m := range procs {
		if len(m) > 1 {
			n++
		}
	}
	return n
}
