package trace

import "testing"

// The disabled path is the one every production code path pays when
// tracing is off; it must stay well under 100ns (ISSUE 4 satellite).
func BenchmarkRecorderStartEndDisabled(b *testing.B) {
	r := NewRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.Start(LayerTransport, "combine")
		sp.End()
	}
}

func BenchmarkRecorderStartEndEnabled(b *testing.B) {
	r := NewRecorder()
	r.Enable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.Start(LayerTransport, "combine")
		sp.End()
	}
}

func BenchmarkTxTraceDisabled(b *testing.B) {
	r := NewRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tt := r.Tx()
		sp := tt.Start(LayerEngine, "tx")
		sp.End()
		tt.Finish()
	}
}

// BenchmarkPropagationDisabled measures the untraced client request
// path: a nil recorder hands out a nil TxTrace, every span is a no-op,
// and the propagated trace/span ids read back zero — this is what each
// txclient call pays when no tracer is configured.
func BenchmarkPropagationDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tt := r.Tx()
		rtt := tt.Start(LayerClient, "begin_rtt")
		_ = tt.Trace()
		_ = rtt.ID()
		rtt.End()
		tt.Finish()
	}
}

func BenchmarkTxTraceEnabled(b *testing.B) {
	r := NewRecorder()
	r.Enable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tt := r.Tx()
		sp := tt.Start(LayerEngine, "tx")
		tt.Start(LayerCore, "phase").End()
		sp.End()
		tt.Finish()
	}
}
