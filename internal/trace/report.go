// The text renderer: a top-K "slowest transactions" report with each
// transaction's span tree as the phase breakdown, the drill-down
// companion to obs.WriteLatencyTable's aggregate view.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/ics-forth/perseas/internal/simclock"
)

// txTree is one reassembled transaction.
type txTree struct {
	trace uint64
	total time.Duration
	spans []Span
}

// WriteSlowestReport renders the topK slowest transactions found in
// spans, each as an indented span tree with per-span durations, layers
// and payload args. Infrastructure spans (trace 0) are summarised in
// the header line only.
func WriteSlowestReport(w io.Writer, spans []Span, topK int) {
	if topK <= 0 {
		topK = 5
	}
	byTrace := make(map[uint64][]Span)
	infra := 0
	for _, sp := range spans {
		if sp.Trace == 0 {
			infra++
			continue
		}
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}
	trees := make([]txTree, 0, len(byTrace))
	for id, ss := range byTrace {
		trees = append(trees, txTree{trace: id, total: treeTotal(ss), spans: ss})
	}
	sort.Slice(trees, func(i, j int) bool {
		if trees[i].total != trees[j].total {
			return trees[i].total > trees[j].total
		}
		return trees[i].trace < trees[j].trace
	})
	fmt.Fprintf(w, "slowest transactions — %d captured, %d infrastructure span(s)\n",
		len(trees), infra)
	if len(trees) == 0 {
		fmt.Fprintln(w, "  (no transaction spans; raise the capture window or lower -trace-slower-than)")
		return
	}
	if topK > len(trees) {
		topK = len(trees)
	}
	for rank := 0; rank < topK; rank++ {
		t := trees[rank]
		fmt.Fprintf(w, "#%d  trace %d  total %s  (%d spans)\n",
			rank+1, t.trace, simclock.Microseconds(t.total), len(t.spans))
		writeTree(w, t.spans)
	}
}

// treeTotal is the transaction's wall span: its root's duration when a
// single root exists, else the envelope of every span.
func treeTotal(spans []Span) time.Duration {
	var root *Span
	roots := 0
	lo, hi := spans[0].Start, spans[0].End()
	for i := range spans {
		sp := &spans[i]
		if sp.Parent == 0 && !sp.Instant {
			roots++
			root = sp
		}
		if sp.Start < lo {
			lo = sp.Start
		}
		if sp.End() > hi {
			hi = sp.End()
		}
	}
	if roots == 1 {
		return root.Dur
	}
	return hi - lo
}

// writeTree prints spans as an indented tree, children in start order.
func writeTree(w io.Writer, spans []Span) {
	children := make(map[uint64][]Span)
	for _, sp := range spans {
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	for parent := range children {
		cs := children[parent]
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].Start != cs[j].Start {
				return cs[i].Start < cs[j].Start
			}
			return cs[i].ID < cs[j].ID
		})
		children[parent] = cs
	}
	var walk func(parent uint64, depth int)
	walk = func(parent uint64, depth int) {
		for _, sp := range children[parent] {
			indent := strings.Repeat("  ", depth+1)
			label := fmt.Sprintf("%s%s", indent, sp.Name)
			switch {
			case sp.Instant:
				fmt.Fprintf(w, "%-36s %12s  [%s]%s\n", label, "·", sp.Layer, argSuffix(sp.Arg))
			default:
				fmt.Fprintf(w, "%-36s %12s  [%s]%s\n", label,
					simclock.Microseconds(sp.Dur), sp.Layer, argSuffix(sp.Arg))
			}
			walk(sp.ID, depth+1)
		}
	}
	walk(0, 0)
}

// argSuffix renders a span's payload arg, when it has one.
func argSuffix(arg uint64) string {
	if arg == 0 {
		return ""
	}
	return fmt.Sprintf("  arg=%d", arg)
}
