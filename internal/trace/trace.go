// Package trace records per-transaction commit-path spans: where obs
// (histograms) shows the commit path's cost in aggregate, trace keeps
// the causal timeline of individual transactions — which copy, which
// mirror, which combiner handoff ate the time in *this* commit — plus
// the infrastructure activity (transport batches, guardian transitions,
// rebuild epochs) interleaved with them.
//
// The design follows obs's discipline exactly: the recorder never
// advances a clock (it only samples Now), charges no virtual time, and
// collapses to a single atomic load when disabled, so reproduced
// figures stay byte-identical with tracing compiled in, enabled, or
// off. Span storage is a sharded ring buffer: the newest spans win,
// writers touch one shard mutex for a few words (uncontended in
// practice — shards are keyed by trace id), and a transaction's spans
// are buffered in a goroutine-owned TxTrace with no locking at all
// until Finish flushes the whole tree at once. That buffering is also
// what makes slow-transaction capture cheap: Finish compares the
// transaction's total duration against the configured threshold and
// discards the tree wholesale when it is ordinary.
//
// Span trees reconstruct from (Trace, ID, Parent): every span of one
// transaction carries the transaction's trace id, infrastructure spans
// use trace id 0. Renderers live in export.go (Chrome/Perfetto JSON)
// and report.go (text top-K slowest transactions).
package trace

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/simclock"
)

// Layer identifies which layer of the stack emitted a span.
type Layer uint8

// The instrumented layers, top of the stack first.
const (
	// LayerEngine is the engine.Tx lifecycle: tx, set_range, commit,
	// abort, conflict.
	LayerEngine Layer = iota
	// LayerCore is the PERSEAS commit-path phases inside core: the
	// local undo copy, the undo push, the range push, the word push.
	LayerCore
	// LayerNetram is the network-RAM client: per-mirror writes,
	// fetches, retries, rebuild copies.
	LayerNetram
	// LayerTransport is the wire transport: combined write exchanges
	// and leader handoffs.
	LayerTransport
	// LayerGuardian is the failure detector: state transitions,
	// revives, rebuilds.
	LayerGuardian
	// LayerServer is the transaction front door: per-request serving
	// spans and group-commit convoys.
	LayerServer
	// LayerClient is the remote client library: pool acquisition,
	// request round trips, busy backoff — the half of a transaction's
	// life the server never sees.
	LayerClient

	numLayers
)

// String implements fmt.Stringer.
func (l Layer) String() string {
	switch l {
	case LayerEngine:
		return "engine"
	case LayerCore:
		return "core"
	case LayerNetram:
		return "netram"
	case LayerTransport:
		return "transport"
	case LayerGuardian:
		return "guardian"
	case LayerServer:
		return "server"
	case LayerClient:
		return "client"
	default:
		return "unknown"
	}
}

// ParseLayer maps a layer name back to its Layer (the inverse of
// String); ok reports whether the name is known.
func ParseLayer(s string) (Layer, bool) {
	for l := Layer(0); l < numLayers; l++ {
		if l.String() == s {
			return l, true
		}
	}
	return 0, false
}

// Span is one recorded interval (or instant) of work. Within one trace
// id, (ID, Parent) links spans into a tree; infrastructure spans carry
// trace id 0. Name must be a static (or long-lived) string — the
// recorder stores it without copying.
type Span struct {
	// Trace groups the spans of one transaction; 0 is infrastructure.
	Trace uint64
	// ID identifies the span within its trace; Parent is the enclosing
	// span's ID, 0 for roots.
	ID, Parent uint64
	// Layer is the stack layer that emitted the span.
	Layer Layer
	// Name labels the work ("commit", "range_push", a mirror label).
	Name string
	// Start is the recorder clock's reading when the span opened; Dur
	// is how long it stayed open (0 for instants).
	Start, Dur time.Duration
	// Arg is an optional payload: bytes moved, batch entries, a slot.
	Arg uint64
	// Proc names the process that recorded the span ("client",
	// "server-shard0"); empty for single-process captures. Merged
	// multi-process captures rely on it to tell which side of a stitched
	// transaction each span came from.
	Proc string
	// Instant marks a point event rather than an interval.
	Instant bool
}

// End reports when the span closed.
func (s Span) End() time.Duration { return s.Start + s.Dur }

// Ring geometry. Shards spread writer contention; each holds a
// fixed-size span ring where the newest spans overwrite the oldest.
// Transaction trees hash across numShards rings by trace id;
// infrastructure spans get one ring per layer, so a chatty layer
// (transport combine batches) can never evict the rare events of a
// quiet one (guardian transitions).
const (
	numShards  = 8
	shardSpans = 2048 // tx spans kept per shard; 16384 total
	infraSpans = 1024 // infrastructure spans kept per layer
)

// shard is one ring segment, guarded by its own mutex. The enabled
// gate keeps the mutex off the disabled path entirely, and tx spans
// arrive pre-batched, so in practice a lock covers one short copy.
type shard struct {
	mu  sync.Mutex
	buf []Span
	// pos counts spans ever written; pos % len(buf) is the next slot.
	pos uint64
	// pad keeps neighbouring shards off one cache line.
	_ [32]byte
}

// clockBox wraps the clock interface so it can swap atomically.
type clockBox struct{ c simclock.Clock }

// Metrics are the recorder's drop/overflow counters, registerable on an
// obs.Registry next to the metrics they complement.
type Metrics struct {
	// Spans counts spans written into the ring.
	Spans obs.Counter
	// KeptTxs counts transaction span trees flushed to the ring;
	// FilteredTxs counts trees discarded by the slower-than threshold.
	KeptTxs     obs.Counter
	FilteredTxs obs.Counter
	// Overflows counts ring slots overwritten before ever being read —
	// the capture window was shorter than the run.
	Overflows obs.Counter
}

// Recorder collects spans. The zero state is disabled: every recording
// call on a disabled (or nil) recorder is a single atomic load and all
// handle methods degrade to no-ops, cheap enough to leave compiled into
// the commit path unconditionally.
type Recorder struct {
	enabled atomic.Bool
	clock   atomic.Pointer[clockBox]
	// proc is the process tag stamped onto every recorded span; nil
	// means untagged (single-process captures).
	proc atomic.Pointer[string]
	// slower is the keep threshold in nanoseconds: a finished
	// transaction shorter than this is discarded whole.
	slower atomic.Int64
	// ids issues trace ids and infrastructure span ids.
	ids atomic.Uint64
	// shards ring transaction trees, hashed by trace id; infra rings
	// infrastructure spans, one per layer.
	shards  [numShards]shard
	infra   [numLayers]shard
	pool    sync.Pool
	metrics Metrics
}

// NewRecorder returns a disabled recorder reading the wall clock.
func NewRecorder() *Recorder {
	r := &Recorder{}
	r.clock.Store(&clockBox{c: simclock.NewWall()})
	for i := range r.shards {
		r.shards[i].buf = make([]Span, shardSpans)
	}
	for i := range r.infra {
		r.infra[i].buf = make([]Span, infraSpans)
	}
	return r
}

// Enable switches recording on. Nil-safe.
func (r *Recorder) Enable() {
	if r != nil {
		r.enabled.Store(true)
	}
}

// Disable switches recording off; in-flight TxTrace handles drain
// silently. Nil-safe.
func (r *Recorder) Disable() {
	if r != nil {
		r.enabled.Store(false)
	}
}

// Enabled reports whether spans are being recorded. Nil-safe.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// SetClock points timestamps at clk. Like every obs consumer the
// recorder only ever reads the clock (Now), never advances it; labs
// hand their SimClock here so span timestamps are modelled time.
// Nil-safe in both arguments.
func (r *Recorder) SetClock(clk simclock.Clock) {
	if r != nil && clk != nil {
		r.clock.Store(&clockBox{c: clk})
	}
}

// SetSlowerThan keeps only transactions whose total duration is at
// least d; zero keeps every finished transaction. Infrastructure spans
// are never filtered. Nil-safe.
func (r *Recorder) SetSlowerThan(d time.Duration) {
	if r == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	r.slower.Store(int64(d))
}

// SlowerThan reports the current keep threshold.
func (r *Recorder) SlowerThan() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.slower.Load())
}

// SetProcess tags every span this recorder keeps with name, so merged
// multi-process captures can tell the client's spans from the
// server's. Nil-safe; an empty name clears the tag.
func (r *Recorder) SetProcess(name string) {
	if r == nil {
		return
	}
	if name == "" {
		r.proc.Store(nil)
		return
	}
	r.proc.Store(&name)
}

// Process reports the recorder's process tag.
func (r *Recorder) Process() string {
	if r == nil {
		return ""
	}
	if p := r.proc.Load(); p != nil {
		return *p
	}
	return ""
}

// Metrics exposes the recorder's counters.
func (r *Recorder) Metrics() *Metrics { return &r.metrics }

// RegisterMetrics publishes the recorder's drop/overflow counters on
// reg under the perseas_trace_* names.
func (r *Recorder) RegisterMetrics(reg *obs.Registry) {
	m := &r.metrics
	reg.RegisterCounter("perseas_trace_spans_total", "spans written into the trace ring", &m.Spans)
	reg.RegisterCounter("perseas_trace_tx_kept_total", "transaction span trees kept", &m.KeptTxs)
	reg.RegisterCounter("perseas_trace_tx_filtered_total", "transaction span trees dropped below -trace-slower-than", &m.FilteredTxs)
	reg.RegisterCounter("perseas_trace_ring_overflow_total", "ring slots overwritten by newer spans", &m.Overflows)
}

// now samples the recorder clock.
func (r *Recorder) now() time.Duration {
	return r.clock.Load().c.Now()
}

// keep appends spans to the ring shard selected by key, overwriting the
// oldest entries when the shard is full.
func (r *Recorder) keep(spans []Span, key uint64) {
	if len(spans) == 0 {
		return
	}
	proc := r.Process()
	sh := &r.shards[key%numShards]
	sh.mu.Lock()
	for _, sp := range spans {
		if sh.pos >= uint64(len(sh.buf)) {
			r.metrics.Overflows.Inc()
		}
		sp.Proc = proc
		sh.buf[sh.pos%uint64(len(sh.buf))] = sp
		sh.pos++
	}
	sh.mu.Unlock()
	r.metrics.Spans.Add(uint64(len(spans)))
}

// keepOneTx appends a single span to the transaction ring shard its
// trace id hashes to, without a slice allocation.
func (r *Recorder) keepOneTx(sp Span) {
	sp.Proc = r.Process()
	sh := &r.shards[sp.Trace%numShards]
	sh.mu.Lock()
	if sh.pos >= uint64(len(sh.buf)) {
		r.metrics.Overflows.Inc()
	}
	sh.buf[sh.pos%uint64(len(sh.buf))] = sp
	sh.pos++
	sh.mu.Unlock()
	r.metrics.Spans.Inc()
}

// keepOne appends a single infrastructure span to its layer's ring,
// without a slice allocation.
func (r *Recorder) keepOne(sp Span) {
	sp.Proc = r.Process()
	sh := &r.infra[sp.Layer%numLayers]
	sh.mu.Lock()
	if sh.pos >= uint64(len(sh.buf)) {
		r.metrics.Overflows.Inc()
	}
	sh.buf[sh.pos%uint64(len(sh.buf))] = sp
	sh.pos++
	sh.mu.Unlock()
	r.metrics.Spans.Inc()
}

// Snapshot copies the ring's current contents, oldest first per shard,
// ordered by start time across shards. The copy is not a linearizable
// cut — spans landing during the walk may straddle it — which is fine
// for export and reporting.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	var out []Span
	for i := range r.shards {
		out = r.shards[i].drain(out)
	}
	for i := range r.infra {
		out = r.infra[i].drain(out)
	}
	sortSpans(out)
	return out
}

// drain appends the shard's current contents to out, oldest first.
func (sh *shard) drain(out []Span) []Span {
	sh.mu.Lock()
	n := sh.pos
	capacity := uint64(len(sh.buf))
	start := uint64(0)
	if n > capacity {
		start = n - capacity
	}
	for p := start; p < n; p++ {
		out = append(out, sh.buf[p%capacity])
	}
	sh.mu.Unlock()
	return out
}

// Reset discards every recorded span (the counters keep counting).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		sh.pos = 0
		sh.mu.Unlock()
	}
	for i := range r.infra {
		sh := &r.infra[i]
		sh.mu.Lock()
		sh.pos = 0
		sh.mu.Unlock()
	}
}

// ServeHTTP implements http.Handler: GET yields the ring's contents as
// Chrome trace-event JSON, mountable next to /metrics as /debug/traces.
func (r *Recorder) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = WriteChromeTrace(w, r.Snapshot())
}

// Tx opens a per-transaction span buffer carrying a fresh trace id, or
// nil when the recorder is disabled — every TxTrace and SpanRef method
// is nil-safe, so call sites thread the handle unconditionally. The
// returned handle is owned by the calling goroutine (matching the
// engine.Tx ownership contract) and records without locks until Finish.
func (r *Recorder) Tx() *TxTrace {
	if r == nil || !r.enabled.Load() {
		return nil
	}
	t, _ := r.pool.Get().(*TxTrace)
	if t == nil {
		t = &TxTrace{}
	}
	t.r = r
	t.trace = r.ids.Add(1)
	t.begin = r.now()
	return t
}

// TxAdopt opens a span buffer under a trace id another process began
// and propagated here — the server half of a stitched cross-process
// transaction. Span ids are drawn from a tagged space (bit 62 set,
// bits 32..61 a per-adoption nonce) so they can never collide with the
// originating process's sequential ids, or with another adoption of
// the same trace (a routed transaction adopts once per touched shard).
// Root spans attach under parentSpan, the propagated id of the remote
// span enclosing this process's work. A zero traceID (the peer was not
// tracing) or a disabled recorder returns nil, which every TxTrace
// method treats as off. Nil-safe.
func (r *Recorder) TxAdopt(traceID, parentSpan uint64) *TxTrace {
	if r == nil || !r.enabled.Load() || traceID == 0 {
		return nil
	}
	t, _ := r.pool.Get().(*TxTrace)
	if t == nil {
		t = &TxTrace{}
	}
	t.r = r
	t.trace = traceID
	t.begin = r.now()
	t.idTag = 1<<62 | (r.ids.Add(1)&(1<<30-1))<<32
	t.rootParent = parentSpan
	return t
}

// TxTrace buffers one transaction's span tree. Not safe for concurrent
// use — it belongs to the goroutine driving the transaction handle.
// The nil TxTrace is valid and records nothing.
type TxTrace struct {
	r     *Recorder
	trace uint64
	begin time.Duration
	spans []Span
	// stack holds the indices of currently open spans; the top is the
	// implicit parent of the next Start or Event.
	stack []int32
	// idTag is OR-ed into every span id; zero for locally-begun traces
	// (sequential ids), a bit-62-tagged nonce for adopted ones
	// (TxAdopt), keeping ids unique within a stitched cross-process
	// trace. rootParent is the remote span adopted roots hang under.
	idTag      uint64
	rootParent uint64
}

// Trace reports the handle's trace id (0 for nil).
func (t *TxTrace) Trace() uint64 {
	if t == nil {
		return 0
	}
	return t.trace
}

// Start opens a span nested under the innermost open span.
func (t *TxTrace) Start(layer Layer, name string) SpanRef {
	if t == nil {
		return SpanRef{}
	}
	parent := t.rootParent
	if n := len(t.stack); n > 0 {
		parent = t.idTag | (uint64(t.stack[n-1]) + 1)
	}
	idx := len(t.spans)
	t.spans = append(t.spans, Span{
		Trace: t.trace, ID: t.idTag | (uint64(idx) + 1), Parent: parent,
		Layer: layer, Name: name, Start: t.r.now(),
	})
	t.stack = append(t.stack, int32(idx))
	return SpanRef{t: t, idx: int32(idx)}
}

// Completed appends an already-finished span under the innermost open
// span. Used when work ran off-goroutine (a parallel mirror fan-out
// worker timed itself) and its interval is reported back after the
// join: the caller still owns the TxTrace, so appending here keeps the
// no-locking contract while placing the interval correctly in the tree.
func (t *TxTrace) Completed(layer Layer, name string, start, dur time.Duration, arg uint64) {
	if t == nil {
		return
	}
	parent := t.rootParent
	if n := len(t.stack); n > 0 {
		parent = t.idTag | (uint64(t.stack[n-1]) + 1)
	}
	t.spans = append(t.spans, Span{
		Trace: t.trace, ID: t.idTag | (uint64(len(t.spans)) + 1), Parent: parent,
		Layer: layer, Name: name, Start: start, Dur: dur, Arg: arg,
	})
}

// Event records an instant under the innermost open span.
func (t *TxTrace) Event(layer Layer, name string, arg uint64) {
	if t == nil {
		return
	}
	parent := t.rootParent
	if n := len(t.stack); n > 0 {
		parent = t.idTag | (uint64(t.stack[n-1]) + 1)
	}
	t.spans = append(t.spans, Span{
		Trace: t.trace, ID: t.idTag | (uint64(len(t.spans)) + 1), Parent: parent,
		Layer: layer, Name: name, Start: t.r.now(), Arg: arg, Instant: true,
	})
}

// Finish closes the transaction: any span still open is ended at the
// current clock reading, and the whole tree is flushed to the ring if
// the transaction's total duration reaches the slower-than threshold —
// otherwise it is discarded in one piece. The handle must not be used
// afterwards.
func (t *TxTrace) Finish() {
	if t == nil {
		return
	}
	r := t.r
	now := r.now()
	for _, idx := range t.stack {
		sp := &t.spans[idx]
		sp.Dur = now - sp.Start
	}
	if len(t.spans) > 0 && r.enabled.Load() && now-t.begin >= time.Duration(r.slower.Load()) {
		r.keep(t.spans, t.trace)
		r.metrics.KeptTxs.Inc()
	} else if len(t.spans) > 0 {
		r.metrics.FilteredTxs.Inc()
	}
	t.r = nil
	t.trace = 0
	t.idTag = 0
	t.rootParent = 0
	t.spans = t.spans[:0]
	t.stack = t.stack[:0]
	r.pool.Put(t)
}

// SpanRef is a handle to one open span of a TxTrace. The zero SpanRef
// is valid and does nothing.
type SpanRef struct {
	t   *TxTrace
	idx int32
}

// ID reports the span's id within its trace (0 for the zero SpanRef) —
// what a client propagates as the parent of the remote work this span
// encloses.
func (s SpanRef) ID() uint64 {
	if s.t == nil {
		return 0
	}
	return s.t.spans[s.idx].ID
}

// End closes the span.
func (s SpanRef) End() {
	s.close(0, false)
}

// EndN closes the span recording arg (bytes moved, entries batched).
func (s SpanRef) EndN(arg uint64) {
	s.close(arg, true)
}

func (s SpanRef) close(arg uint64, setArg bool) {
	if s.t == nil {
		return
	}
	sp := &s.t.spans[s.idx]
	sp.Dur = s.t.r.now() - sp.Start
	if setArg {
		sp.Arg = arg
	}
	// Pop this span (and, defensively, anything opened above it that
	// was never ended) off the open stack. A ref that is no longer on
	// the stack — ended twice — changes nothing.
	st := s.t.stack
	for n := len(st) - 1; n >= 0; n-- {
		if st[n] == s.idx {
			s.t.stack = st[:n]
			break
		}
	}
}

// Start opens an infrastructure span (trace id 0) — transport batches,
// guardian repairs, rebuild epochs: work not owned by one transaction.
// The span flushes to the ring when ended. Safe to call from any
// goroutine; returns an inert span when the recorder is disabled or
// nil.
func (r *Recorder) Start(layer Layer, name string) InfraSpan {
	if r == nil || !r.enabled.Load() {
		return InfraSpan{}
	}
	return InfraSpan{r: r, sp: Span{
		ID: r.ids.Add(1), Layer: layer, Name: name, Start: r.now(),
	}}
}

// LinkedSpan opens a span attached to an existing transaction's trace
// tree: it carries that transaction's trace id, so renderers place it
// on the same track as the engine-side spans, stitched as a sibling
// root (the server observed the request envelope around the engine's
// own tree). IDs are drawn from a high-bit-tagged space so they can
// never collide with the tree's sequential span ids. With a zero trace
// id (tracing off at Begin, or a non-tracing engine) it degrades to a
// plain infrastructure span. Nil-safe.
func (r *Recorder) LinkedSpan(layer Layer, name string, traceID uint64) InfraSpan {
	if r == nil || !r.enabled.Load() {
		return InfraSpan{}
	}
	if traceID == 0 {
		return r.Start(layer, name)
	}
	return InfraSpan{r: r, sp: Span{
		Trace: traceID, ID: 1<<63 | r.ids.Add(1),
		Layer: layer, Name: name, Start: r.now(),
	}}
}

// LinkedSpanFrom is LinkedSpan with an explicit parent: the span
// attaches under parentSpan of the transaction's tree instead of
// floating as a sibling root. The front door uses it to hang its
// request-envelope spans under the client-side span that sent the
// request (wire.Request.TraceSpan). A zero parent degrades to
// LinkedSpan. Nil-safe.
func (r *Recorder) LinkedSpanFrom(layer Layer, name string, traceID, parentSpan uint64) InfraSpan {
	if r == nil || !r.enabled.Load() {
		return InfraSpan{}
	}
	if traceID == 0 {
		return r.Start(layer, name)
	}
	return InfraSpan{r: r, sp: Span{
		Trace: traceID, ID: 1<<63 | r.ids.Add(1), Parent: parentSpan,
		Layer: layer, Name: name, Start: r.now(),
	}}
}

// Event records an infrastructure instant. Nil-safe.
func (r *Recorder) Event(layer Layer, name string, arg uint64) {
	if r == nil || !r.enabled.Load() {
		return
	}
	r.keepOne(Span{
		ID: r.ids.Add(1), Layer: layer, Name: name,
		Start: r.now(), Arg: arg, Instant: true,
	})
}

// InfraSpan is one open infrastructure span. It is a value: copies
// share nothing, and the zero InfraSpan does nothing.
type InfraSpan struct {
	r  *Recorder
	sp Span
}

// Active reports whether the span is recording.
func (s InfraSpan) Active() bool { return s.r != nil }

// Child opens a span nested under this one.
func (s InfraSpan) Child(layer Layer, name string) InfraSpan {
	if s.r == nil {
		return InfraSpan{}
	}
	return InfraSpan{r: s.r, sp: Span{
		ID: s.r.ids.Add(1), Parent: s.sp.ID,
		Layer: layer, Name: name, Start: s.r.now(),
	}}
}

// End closes the span and writes it to the ring.
func (s InfraSpan) End() {
	if s.r == nil {
		return
	}
	s.sp.Dur = s.r.now() - s.sp.Start
	s.flush()
}

// EndN is End recording arg.
func (s InfraSpan) EndN(arg uint64) {
	if s.r == nil {
		return
	}
	s.sp.Dur = s.r.now() - s.sp.Start
	s.sp.Arg = arg
	s.flush()
}

// flush routes the closed span to its ring: linked spans (non-zero
// trace id, from LinkedSpan) join the transaction shard their tree
// hashes to; plain infrastructure spans keep their per-layer ring.
func (s InfraSpan) flush() {
	if s.sp.Trace != 0 {
		s.r.keepOneTx(s.sp)
		return
	}
	s.r.keepOne(s.sp)
}
