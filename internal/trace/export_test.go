package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleSpans() []Span {
	return []Span{
		{Trace: 7, ID: 1, Parent: 0, Layer: LayerEngine, Name: "tx",
			Start: 10 * time.Microsecond, Dur: 90 * time.Microsecond},
		{Trace: 7, ID: 2, Parent: 1, Layer: LayerCore, Name: "local_undo_copy",
			Start: 20 * time.Microsecond, Dur: 5 * time.Microsecond, Arg: 64},
		{Trace: 7, ID: 3, Parent: 2, Layer: LayerNetram, Name: "retry",
			Start: 22 * time.Microsecond, Instant: true, Arg: 1},
		{Trace: 0, ID: 4, Parent: 0, Layer: LayerTransport, Name: "combine",
			Start: 15 * time.Microsecond, Dur: 3 * time.Microsecond, Arg: 2},
		{Trace: 0, ID: 5, Parent: 0, Layer: LayerGuardian, Name: "mirror_dead",
			Start: 40 * time.Microsecond, Instant: true, Arg: 1},
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	want := sampleSpans()
	sortSpans(want)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	var f map[string]any
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("exporter wrote invalid JSON: %v", err)
	}
	events, ok := f["traceEvents"].([]any)
	if !ok {
		t.Fatal("no traceEvents array")
	}
	// 2 process_name + 5 layer thread_name + 1 tx thread_name + 5 spans.
	if len(events) != 2+int(numLayers)+1+5 {
		t.Fatalf("got %d events, want %d", len(events), 2+int(numLayers)+1+5)
	}
	phases := map[string]int{}
	for _, e := range events {
		ev := e.(map[string]any)
		phases[ev["ph"].(string)]++
	}
	if phases["X"] != 3 || phases["i"] != 2 || phases["M"] != 2+int(numLayers)+1 {
		t.Fatalf("phase mix = %v", phases)
	}
}

func TestChromeTraceProcessSplit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"transactions"`, `"infrastructure"`, `"tx 7"`} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %s:\n%s", want, out)
		}
	}
}

func TestReadChromeTraceToleratesForeignEvents(t *testing.T) {
	in := `{"traceEvents":[
		{"name":"gc","ph":"B","ts":1,"pid":9,"tid":9},
		{"name":"work","ph":"X","ts":2,"dur":3,"pid":9,"tid":9}
	]}`
	spans, err := ReadChromeTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 || spans[0].Name != "work" || spans[0].Dur != 3*time.Microsecond {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestReadChromeTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadChromeTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage input parsed")
	}
}

func TestSlowestReport(t *testing.T) {
	var sb strings.Builder
	WriteSlowestReport(&sb, sampleSpans(), 5)
	out := sb.String()
	for _, want := range []string{
		"slowest transactions — 1 captured, 2 infrastructure span(s)",
		"#1  trace 7  total 90.00us  (3 spans)",
		"tx", "local_undo_copy", "retry", "arg=64",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestSlowestReportEmpty(t *testing.T) {
	var sb strings.Builder
	WriteSlowestReport(&sb, nil, 5)
	if !strings.Contains(sb.String(), "no transaction spans") {
		t.Fatalf("empty report = %q", sb.String())
	}
}
