package rvm

import (
	"github.com/ics-forth/perseas/internal/disk"
	"github.com/ics-forth/perseas/internal/fault"
)

// StableStore is the stable storage a write-ahead log lives on. The
// classic RVM uses a magnetic disk; RVM-on-Rio substitutes the Rio file
// cache, which is memory-fast but does not survive power failures on an
// unprotected machine.
type StableStore interface {
	// WriteSync writes data at offset and returns once it is stable.
	WriteSync(offset uint64, data []byte) error
	// Read copies n bytes from offset.
	Read(offset uint64, n int) ([]byte, error)
	// Size is the store capacity in bytes.
	Size() uint64
	// Survives reports whether the store's contents outlive a crash of
	// the given kind.
	Survives(kind fault.CrashKind) bool
}

// DiskStore adapts a simulated magnetic disk to StableStore. Platters
// survive every crash kind.
type DiskStore struct {
	*disk.Disk
}

// NewDiskStore wraps d.
func NewDiskStore(d *disk.Disk) DiskStore { return DiskStore{Disk: d} }

// Survives implements StableStore: magnetic media outlive all crashes.
func (DiskStore) Survives(fault.CrashKind) bool { return true }

var _ StableStore = DiskStore{}
