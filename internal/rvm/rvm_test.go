package rvm

import (
	"errors"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/disk"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/enginetest"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/simclock"
)

// newRVM builds an RVM over a fresh simulated disk.
func newRVM(t *testing.T, mutate ...func(*Options)) (*RVM, *simclock.SimClock) {
	t.Helper()
	clock := simclock.NewSim()
	dev, err := disk.New(disk.DefaultParams(16<<20), clock)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.LogSize = 4 << 20
	for _, m := range mutate {
		m(&opts)
	}
	r, err := New(NewDiskStore(dev), clock, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r, clock
}

func TestRVMEngineConformance(t *testing.T) {
	enginetest.Run(t, "rvm",
		func(t *testing.T) engine.Engine {
			r, _ := newRVM(t)
			return engine.NewSequential(r)
		},
		enginetest.Caps{
			SurvivesKind:    func(fault.CrashKind) bool { return true },
			DurableOnCommit: true,
		})
}

func TestRVMGroupCommitConformance(t *testing.T) {
	const group = 8
	enginetest.Run(t, "rvm-group",
		func(t *testing.T) engine.Engine {
			r, _ := newRVM(t, func(o *Options) {
				o.GroupCommit = true
				o.GroupSize = group
			})
			return engine.NewSequential(r)
		},
		enginetest.Caps{
			SurvivesKind:    func(fault.CrashKind) bool { return true },
			DurableOnCommit: false,
			LossWindow:      group,
		})
}

func TestNewValidatesLogSize(t *testing.T) {
	clock := simclock.NewSim()
	dev, err := disk.New(disk.DefaultParams(1<<20), clock)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.LogSize = 0
	if _, err := New(NewDiskStore(dev), clock, opts); err == nil {
		t.Error("zero log should be rejected")
	}
	opts.LogSize = 2 << 20
	if _, err := New(NewDiskStore(dev), clock, opts); err == nil {
		t.Error("log larger than device should be rejected")
	}
}

func TestCommitPaysDiskLatency(t *testing.T) {
	r, clock := newRVM(t)
	db, err := r.CreateDB("db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.InitDB(db); err != nil {
		t.Fatal(err)
	}
	t0 := clock.Now()
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := r.SetRange(db, 0, 64); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes(), []byte("x"))
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	lat := clock.Now() - t0
	// The synchronous log force costs a seek + rotation: milliseconds.
	// This is the 3-4 orders of magnitude PERSEAS wins by.
	if lat < 4*time.Millisecond {
		t.Errorf("commit cost %v, want >= disk positioning latency", lat)
	}
}

func TestGroupCommitAmortisesLogForces(t *testing.T) {
	const group = 16
	r, clock := newRVM(t, func(o *Options) {
		o.GroupCommit = true
		o.GroupSize = group
	})
	db, err := r.CreateDB("db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.InitDB(db); err != nil {
		t.Fatal(err)
	}
	t0 := clock.Now()
	for i := 0; i < group; i++ {
		if err := r.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := r.SetRange(db, uint64(i*16), 8); err != nil {
			t.Fatal(err)
		}
		if err := r.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	batched := clock.Now() - t0
	if got := r.Stats().LogForces; got != 1 {
		t.Errorf("log forces = %d, want 1 for a full batch", got)
	}
	perTx := batched / group
	// One force across 16 transactions: well under one positioning
	// latency each.
	if perTx > 4*time.Millisecond {
		t.Errorf("group-commit per-tx cost %v, want amortised", perTx)
	}
}

func TestFlushForcesPartialGroup(t *testing.T) {
	r, _ := newRVM(t, func(o *Options) {
		o.GroupCommit = true
		o.GroupSize = 64
	})
	db, err := r.CreateDB("db", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.InitDB(db); err != nil {
		t.Fatal(err)
	}
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := r.SetRange(db, 0, 8); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes(), []byte("forceme!"))
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().LogForces; got != 0 {
		t.Fatalf("premature force: %d", got)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().LogForces; got != 1 {
		t.Fatalf("flush should force once, got %d", got)
	}
	// The flushed transaction survives a crash.
	if err := r.Crash(fault.CrashPower); err != nil {
		t.Fatal(err)
	}
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	re, err := r.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[:8]); got != "forceme!" {
		t.Errorf("flushed tx lost: %q", got)
	}
}

func TestUnforcedGroupCommitsLostInCrash(t *testing.T) {
	r, _ := newRVM(t, func(o *Options) {
		o.GroupCommit = true
		o.GroupSize = 64
	})
	db, err := r.CreateDB("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.InitDB(db); err != nil {
		t.Fatal(err)
	}
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := r.SetRange(db, 0, 4); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes(), []byte("gone"))
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := r.Crash(fault.CrashProcess); err != nil {
		t.Fatal(err)
	}
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	re, err := r.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	if string(re.Bytes()[:4]) == "gone" {
		t.Error("unforced group commit unexpectedly survived")
	}
}

func TestTruncationReclaimsLog(t *testing.T) {
	r, _ := newRVM(t, func(o *Options) {
		o.LogSize = 64 << 10
		o.TruncateAt = 0.5
	})
	db, err := r.CreateDB("db", 8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.InitDB(db); err != nil {
		t.Fatal(err)
	}
	// Push enough committed bytes through the log to force truncations.
	for i := 0; i < 30; i++ {
		if err := r.Begin(); err != nil {
			t.Fatal(err)
		}
		if err := r.SetRange(db, 0, 4096); err != nil {
			t.Fatal(err)
		}
		db.Bytes()[0] = byte(i)
		if err := r.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Stats().Truncations; got == 0 {
		t.Error("no truncation despite log pressure")
	}
	// State is intact after crash+recovery across truncations.
	if err := r.Crash(fault.CrashOS); err != nil {
		t.Fatal(err)
	}
	if err := r.Recover(); err != nil {
		t.Fatal(err)
	}
	re, err := r.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	if re.Bytes()[0] != 29 {
		t.Errorf("post-truncation recovery lost data: %d", re.Bytes()[0])
	}
}

func TestTransactionLargerThanLog(t *testing.T) {
	r, _ := newRVM(t, func(o *Options) { o.LogSize = 4 << 10 })
	db, err := r.CreateDB("db", 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.InitDB(db); err != nil {
		t.Fatal(err)
	}
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := r.SetRange(db, 0, 8<<10); err != nil {
		t.Fatal(err)
	}
	if err := r.Commit(); !errors.Is(err, ErrLogFull) {
		t.Errorf("oversized commit: %v, want ErrLogFull", err)
	}
}

func TestDeviceFull(t *testing.T) {
	r, _ := newRVM(t) // 16 MiB device, 4 MiB log -> 12 MiB for images
	if _, err := r.CreateDB("big", 20<<20); err == nil {
		t.Error("database larger than image space should be rejected")
	}
}
