// Package rvm reimplements the algorithmic core of RVM — Lightweight
// Recoverable Virtual Memory (Satyanarayanan et al., TOCS 1994) — the
// baseline the paper compares PERSEAS against.
//
// RVM follows the classic write-ahead-logging protocol of the paper's
// Fig. 2. Three copies happen per update:
//
//  1. set_range copies the original data into an in-memory undo log
//     (used to roll back aborts quickly);
//  2. commit writes the new values of every declared range into the redo
//     log on stable storage — a synchronous magnetic-disk write, which is
//     the millisecond-scale cost PERSEAS eliminates;
//  3. when the log fills past a threshold, a truncation pass applies the
//     logged updates to the on-disk database image and reclaims the log.
//
// Recovery replays the redo log's committed transactions against the
// disk image. An optional group-commit mode batches several transactions
// per synchronous log write, trading latency for throughput — the
// "sophisticated optimisation" the paper's conclusions mention.
package rvm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/hostmem"
	"github.com/ics-forth/perseas/internal/simclock"
)

// Stable-storage layout: the device holds the database image region at
// the front and the redo log behind it.
//
// Redo log record:
//
//	[0:8)   transaction id
//	[8:12)  database id
//	[12:20) offset within the database
//	[20:24) length
//	[24:28) CRC-32C of header + data
//	[28:29) flags (bit 0: last record of its transaction = commit point)
//	[29:..) after-image bytes
const (
	logRecordHeader = 29
	flagCommit      = 1
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Errors specific to RVM.
var (
	// ErrLogFull is returned when the redo log cannot hold a
	// transaction even after truncation.
	ErrLogFull = errors.New("rvm: redo log full")
	// ErrBadRange is returned for ranges outside a database.
	ErrBadRange = errors.New("rvm: range outside database")
	// ErrNoSuchDB is returned for unknown database names.
	ErrNoSuchDB = errors.New("rvm: no such database")
)

// Options configure an RVM instance.
type Options struct {
	// LogSize is the redo log capacity on the device.
	LogSize uint64
	// GroupCommit batches up to GroupSize transactions per synchronous
	// log force.
	GroupCommit bool
	// GroupSize is the maximum batch when GroupCommit is on.
	GroupSize int
	// TruncateAt triggers log truncation when occupancy exceeds this
	// fraction.
	TruncateAt float64
	// Mem prices local copies.
	Mem hostmem.Model
	// SetRangeOverhead and CommitOverhead model RVM's software
	// bookkeeping — range registration, log-record construction and
	// buffer management. Lowell & Chen measured RVM's CPU path at
	// hundreds of microseconds per transaction on hardware of this era,
	// which is why RVM-on-Rio stays orders of magnitude slower than
	// undo-only libraries even with a memory-speed log.
	SetRangeOverhead time.Duration
	CommitOverhead   time.Duration
	// Label overrides the engine name reported to the harness
	// ("rvm-rio" for the Rio-backed variant).
	Label string
}

// DefaultOptions returns a configuration matching the era.
func DefaultOptions() Options {
	return Options{
		LogSize:          8 << 20,
		GroupSize:        32,
		TruncateAt:       0.5,
		Mem:              hostmem.Default(),
		SetRangeOverhead: 80 * time.Microsecond,
		CommitOverhead:   600 * time.Microsecond,
	}
}

// pendingRange is one declared range of the open transaction.
type pendingRange struct {
	db     *database
	offset uint64
	length uint64
	before []byte
}

// database is one RVM-managed region. The working copy lives in volatile
// main memory; the durable image lives on the device.
type database struct {
	id      uint32
	name    string
	data    []byte
	diskOff uint64
	size    uint64
	stale   bool
}

func (d *database) Name() string  { return d.name }
func (d *database) Size() uint64  { return d.size }
func (d *database) Bytes() []byte { return d.data }

// RVM is one instance of the baseline. Like the paper's subject systems
// it serves a single sequential application.
type RVM struct {
	opts  Options
	clock simclock.Clock
	store StableStore

	dbs      map[string]*database
	byID     map[uint32]*database
	nextID   uint32
	nextDisk uint64 // next free device offset for database images

	logStart uint64 // device offset of the redo log
	logHead  uint64 // append cursor, relative to logStart
	lastTx   uint64

	txActive bool
	ranges   []pendingRange

	// Group commit: transactions buffered since the last log force.
	groupBuf   []byte
	groupCount int

	crashed bool
	// lost is set when a crash destroyed the stable store itself
	// (e.g. power failure under RVM-on-Rio without a UPS).
	lost  bool
	stats Stats
}

// Stats counts RVM activity.
type Stats struct {
	Begun       uint64
	Committed   uint64
	Aborted     uint64
	SetRanges   uint64
	LogForces   uint64
	Truncations uint64
	Recoveries  uint64
}

// New builds an RVM over the given stable store. The log occupies the
// tail of the store.
func New(store StableStore, clock simclock.Clock, opts Options) (*RVM, error) {
	if opts.LogSize == 0 || opts.LogSize >= store.Size() {
		return nil, fmt.Errorf("rvm: log size %d must be in (0, store size %d)", opts.LogSize, store.Size())
	}
	if opts.GroupSize <= 0 {
		opts.GroupSize = 1
	}
	if opts.TruncateAt <= 0 || opts.TruncateAt > 1 {
		opts.TruncateAt = 0.5
	}
	return &RVM{
		opts:     opts,
		clock:    clock,
		store:    store,
		dbs:      make(map[string]*database),
		byID:     make(map[uint32]*database),
		nextID:   1,
		logStart: store.Size() - opts.LogSize,
	}, nil
}

// Name implements engine.Engine.
func (r *RVM) Name() string {
	if r.opts.Label != "" {
		return r.opts.Label
	}
	if r.opts.GroupCommit {
		return "rvm-group"
	}
	return "rvm"
}

// Stats returns a snapshot of the counters.
func (r *RVM) Stats() Stats { return r.stats }

func (r *RVM) checkAlive() error {
	if r.crashed {
		return engine.ErrCrashed
	}
	return nil
}

// CreateDB implements engine.Engine. The database image is carved out of
// the device front; the working copy is volatile main memory.
func (r *RVM) CreateDB(name string, size uint64) (engine.DB, error) {
	if err := r.checkAlive(); err != nil {
		return nil, err
	}
	if _, ok := r.dbs[name]; ok {
		return nil, fmt.Errorf("rvm: database %q exists", name)
	}
	if r.nextDisk+size > r.logStart {
		return nil, fmt.Errorf("rvm: device full: need %d, %d free before log", size, r.logStart-r.nextDisk)
	}
	db := &database{
		id:      r.nextID,
		name:    name,
		data:    make([]byte, size),
		diskOff: r.nextDisk,
		size:    size,
	}
	r.nextID++
	r.nextDisk += size
	r.dbs[name] = db
	r.byID[db.id] = db
	return db, nil
}

// InitDB implements engine.Engine: write the initial image to the device.
func (r *RVM) InitDB(db engine.DB) error {
	if err := r.checkAlive(); err != nil {
		return err
	}
	d, err := r.own(db)
	if err != nil {
		return err
	}
	return r.store.WriteSync(d.diskOff, d.data)
}

// OpenDB implements engine.Engine.
func (r *RVM) OpenDB(name string) (engine.DB, error) {
	if err := r.checkAlive(); err != nil {
		return nil, err
	}
	db, ok := r.dbs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchDB, name)
	}
	return db, nil
}

func (r *RVM) own(db engine.DB) (*database, error) {
	d, ok := db.(*database)
	if !ok {
		return nil, fmt.Errorf("rvm: foreign DB handle %T", db)
	}
	if d.stale {
		return nil, errors.New("rvm: stale database handle; reopen after recovery")
	}
	if r.byID[d.id] != d {
		return nil, fmt.Errorf("rvm: unknown database handle %q", d.name)
	}
	return d, nil
}

// Begin implements engine.Engine.
func (r *RVM) Begin() error {
	if err := r.checkAlive(); err != nil {
		return err
	}
	if r.txActive {
		return engine.ErrInTransaction
	}
	r.lastTx++
	r.txActive = true
	r.ranges = r.ranges[:0]
	r.stats.Begun++
	return nil
}

// SetRange implements engine.Engine: copy the original data into the
// in-memory undo log (Fig. 2 step 1).
func (r *RVM) SetRange(db engine.DB, offset, length uint64) error {
	if err := r.checkAlive(); err != nil {
		return err
	}
	if !r.txActive {
		return engine.ErrNoTransaction
	}
	d, err := r.own(db)
	if err != nil {
		return err
	}
	if offset > d.size || length > d.size-offset {
		return fmt.Errorf("%w: [%d,+%d) in %d-byte database %q",
			ErrBadRange, offset, length, d.size, d.name)
	}
	before := make([]byte, length)
	r.opts.Mem.Copy(r.clock, before, d.data[offset:offset+length])
	r.clock.Advance(r.opts.SetRangeOverhead)
	r.ranges = append(r.ranges, pendingRange{db: d, offset: offset, length: length, before: before})
	r.stats.SetRanges++
	return nil
}

// encodeRecord appends one redo record to buf.
func encodeRecord(buf []byte, txID uint64, dbID uint32, offset uint64, data []byte, last bool) []byte {
	var h [logRecordHeader]byte
	binary.BigEndian.PutUint64(h[0:], txID)
	binary.BigEndian.PutUint32(h[8:], dbID)
	binary.BigEndian.PutUint64(h[12:], offset)
	binary.BigEndian.PutUint32(h[20:], uint32(len(data)))
	crc := crc32.Update(0, crcTable, h[:24])
	crc = crc32.Update(crc, crcTable, data)
	binary.BigEndian.PutUint32(h[24:], crc)
	if last {
		h[28] = flagCommit
	}
	buf = append(buf, h[:]...)
	return append(buf, data...)
}

// Commit implements engine.Engine: the modifications propagate to the
// redo log in stable storage (Fig. 2 step 2) with a synchronous device
// write — the cost that ties RVM to magnetic-disk speed.
func (r *RVM) Commit() error {
	if err := r.checkAlive(); err != nil {
		return err
	}
	if !r.txActive {
		return engine.ErrNoTransaction
	}

	r.clock.Advance(r.opts.CommitOverhead)
	var rec []byte
	for i, rg := range r.ranges {
		after := rg.db.data[rg.offset : rg.offset+rg.length]
		// Building the log record is itself a local copy.
		r.clock.Advance(r.opts.Mem.CopyCost(int(rg.length) + logRecordHeader))
		rec = encodeRecord(rec, r.lastTx, rg.db.id, rg.offset, after, i == len(r.ranges)-1)
	}
	if len(r.ranges) == 0 {
		// Empty transaction: still a commit record so recovery sees it.
		rec = encodeRecord(rec, r.lastTx, 0, 0, nil, true)
	}

	if r.opts.GroupCommit {
		r.groupBuf = append(r.groupBuf, rec...)
		r.groupCount++
		if r.groupCount >= r.opts.GroupSize {
			if err := r.forceGroup(); err != nil {
				return err
			}
		}
	} else {
		if err := r.appendLog(rec); err != nil {
			return err
		}
	}

	r.txActive = false
	r.ranges = r.ranges[:0]
	r.stats.Committed++

	if float64(r.logHead) > float64(r.opts.LogSize)*r.opts.TruncateAt {
		return r.truncate()
	}
	return nil
}

// forceGroup flushes the batched commit records with one log force.
func (r *RVM) forceGroup() error {
	if len(r.groupBuf) == 0 {
		return nil
	}
	if err := r.appendLog(r.groupBuf); err != nil {
		return err
	}
	r.groupBuf = r.groupBuf[:0]
	r.groupCount = 0
	return nil
}

// Flush forces any batched group-commit records to stable storage.
// Transactions are only durable once their records are forced.
func (r *RVM) Flush() error {
	if err := r.checkAlive(); err != nil {
		return err
	}
	return r.forceGroup()
}

// appendLog writes rec at the log head with a synchronous device write.
func (r *RVM) appendLog(rec []byte) error {
	if r.logHead+uint64(len(rec)) > r.opts.LogSize {
		if err := r.truncate(); err != nil {
			return err
		}
		if r.logHead+uint64(len(rec)) > r.opts.LogSize {
			return fmt.Errorf("%w: record %d bytes, log %d", ErrLogFull, len(rec), r.opts.LogSize)
		}
	}
	if err := r.store.WriteSync(r.logStart+r.logHead, rec); err != nil {
		return err
	}
	r.logHead += uint64(len(rec))
	r.stats.LogForces++
	return nil
}

// truncate applies the logged after-images to the database disk images
// and reclaims the log (Fig. 2 step 3).
func (r *RVM) truncate() error {
	// The log's committed records are already reflected in the volatile
	// working copies; writing those back is equivalent to replaying the
	// log and far cheaper to model.
	for id := uint32(1); id < r.nextID; id++ {
		db, ok := r.byID[id]
		if !ok {
			continue
		}
		if err := r.store.WriteSync(db.diskOff, db.data); err != nil {
			return err
		}
	}
	// Erase the log head marker: a zeroed first header stops replay.
	var zero [logRecordHeader]byte
	if err := r.store.WriteSync(r.logStart, zero[:]); err != nil {
		return err
	}
	r.logHead = 0
	r.stats.Truncations++
	return nil
}

// Abort implements engine.Engine: restore before-images from the
// in-memory undo log, newest first.
func (r *RVM) Abort() error {
	if err := r.checkAlive(); err != nil {
		return err
	}
	if !r.txActive {
		return engine.ErrNoTransaction
	}
	for i := len(r.ranges) - 1; i >= 0; i-- {
		rg := r.ranges[i]
		r.opts.Mem.Copy(r.clock, rg.db.data[rg.offset:rg.offset+rg.length], rg.before)
	}
	r.txActive = false
	r.ranges = r.ranges[:0]
	r.stats.Aborted++
	return nil
}

// Crash implements engine.Engine: volatile state is lost for every crash
// kind, and the stable store itself is consulted for survival (a disk
// survives everything; a Rio cache does not survive power loss).
func (r *RVM) Crash(kind fault.CrashKind) error {
	r.crashed = true
	if !r.store.Survives(kind) {
		r.lost = true
	}
	for _, db := range r.dbs {
		db.stale = true
		db.data = nil
	}
	r.txActive = false
	r.ranges = nil
	r.groupBuf = nil
	r.groupCount = 0
	return nil
}

// Recover implements engine.Engine: read every database image back from
// the device and replay the redo log's committed transactions over it.
// Unforced group-commit batches are lost — those transactions never
// became durable.
func (r *RVM) Recover() error {
	if !r.crashed {
		return errors.New("rvm: recover called on a running instance")
	}
	if r.lost {
		return fmt.Errorf("%w: stable store destroyed", engine.ErrUnrecoverable)
	}
	// Reload images.
	newDBs := make(map[string]*database, len(r.dbs))
	newByID := make(map[uint32]*database, len(r.byID))
	for name, old := range r.dbs {
		img, err := r.store.Read(old.diskOff, int(old.size))
		if err != nil {
			return fmt.Errorf("rvm: reload %q: %w", name, err)
		}
		db := &database{id: old.id, name: name, data: img, diskOff: old.diskOff, size: old.size}
		newDBs[name] = db
		newByID[db.id] = db
	}

	// Replay committed transactions from the log.
	log, err := r.store.Read(r.logStart, int(r.opts.LogSize))
	if err != nil {
		return fmt.Errorf("rvm: read log: %w", err)
	}
	type replayRec struct {
		dbID   uint32
		offset uint64
		data   []byte
	}
	var cursor uint64
	var maxTx uint64
	var pending []replayRec
	for {
		if cursor+logRecordHeader > uint64(len(log)) {
			break
		}
		h := log[cursor:]
		length := uint64(binary.BigEndian.Uint32(h[20:24]))
		if cursor+logRecordHeader+length > uint64(len(log)) {
			break
		}
		crc := crc32.Update(0, crcTable, h[:24])
		crc = crc32.Update(crc, crcTable, h[logRecordHeader:logRecordHeader+length])
		if crc != binary.BigEndian.Uint32(h[24:28]) {
			break
		}
		txID := binary.BigEndian.Uint64(h[0:8])
		if txID == 0 || txID < maxTx {
			// Zeroed header (fresh log) or a stale record from before
			// the last truncation: replay stops here. Transaction ids
			// only grow within one log generation.
			break
		}
		rec := replayRec{
			dbID:   binary.BigEndian.Uint32(h[8:12]),
			offset: binary.BigEndian.Uint64(h[12:20]),
			data:   h[logRecordHeader : logRecordHeader+length],
		}
		pending = append(pending, rec)
		if h[28]&flagCommit != 0 {
			// Commit point: apply the whole transaction.
			for _, p := range pending {
				if db, ok := newByID[p.dbID]; ok && p.offset+uint64(len(p.data)) <= db.size {
					copy(db.data[p.offset:], p.data)
				}
			}
			pending = pending[:0]
			if txID > maxTx {
				maxTx = txID
			}
		}
		cursor += logRecordHeader + length
	}

	r.dbs = newDBs
	r.byID = newByID
	if maxTx > r.lastTx {
		r.lastTx = maxTx
	}
	r.logHead = cursor
	r.crashed = false
	r.stats.Recoveries++
	return nil
}

// Close implements engine.Engine.
func (r *RVM) Close() error {
	if !r.crashed && r.opts.GroupCommit {
		if err := r.forceGroup(); err != nil {
			return err
		}
	}
	r.crashed = true
	return nil
}

var _ engine.Sequential = (*RVM)(nil)
