// Package engine defines the common contract every transaction system in
// this repository implements — PERSEAS itself and the baselines it is
// evaluated against (RVM, RVM-on-Rio, Vista, WAL-on-network-memory) — so
// that the benchmark harness and the crash-consistency property tests run
// identically against all of them.
//
// The programming model is the one the paper's interface exposes, lifted
// from one implicit engine-global transaction to explicit handles: the
// application holds direct byte access to a main-memory database, obtains
// a Tx with Begin, declares each region it is about to modify with
// Tx.SetRange (which captures the before-image), and finishes with
// Tx.Commit or Tx.Abort. Engines that support it (PERSEAS) run many
// transactions concurrently; sequential cores are lifted to the same
// contract by NewSequential, which serialises whole transactions.
package engine

import (
	"errors"

	"github.com/ics-forth/perseas/internal/fault"
)

// Errors common to all engines.
var (
	// ErrNoTransaction is returned by SetRange/Commit/Abort on a handle
	// whose transaction already finished (committed, aborted or wiped
	// out by a crash).
	ErrNoTransaction = errors.New("engine: no transaction in progress")
	// ErrInTransaction is returned by operations that must run between
	// transactions (DropDB, mirror reintegration) while one is open.
	ErrInTransaction = errors.New("engine: transaction already in progress")
	// ErrCrashed is returned by every operation between Crash and
	// Recover.
	ErrCrashed = errors.New("engine: engine is crashed")
	// ErrUnrecoverable is returned by Recover when the durable state
	// needed for recovery did not survive the crash.
	ErrUnrecoverable = errors.New("engine: durable state lost; cannot recover")
	// ErrConflict is returned by Tx.SetRange when the declared range
	// overlaps a range held by another in-flight transaction. The caller
	// aborts and retries, as in any optimistic lock-conflict protocol.
	ErrConflict = errors.New("engine: range conflicts with a concurrent transaction")
	// ErrBusy is wrapped by errors reporting a transient capacity
	// limit — every undo slot occupied, an admission gate closed. The
	// operation is safe to retry after backing off; nothing about the
	// caller's state is invalidated.
	ErrBusy = errors.New("engine: busy")
)

// DB is one named database region managed by an engine.
type DB interface {
	// Name returns the region's stable name.
	Name() string
	// Size returns the region length in bytes.
	Size() uint64
	// Bytes returns the application-visible memory. Writes outside a
	// range declared with SetRange have undefined recovery semantics,
	// exactly as in the paper's library.
	Bytes() []byte
}

// Tx is one in-flight transaction. A handle is owned by the goroutine
// that began it; its methods must not be called concurrently with each
// other. Handles from different Begin calls may run concurrently when
// the engine supports it.
type Tx interface {
	// SetRange declares that the transaction will modify
	// db[offset:offset+length), capturing the before-image. It returns
	// ErrConflict when the range overlaps one held by another live
	// transaction.
	SetRange(db DB, offset, length uint64) error
	// Commit makes every modification to declared ranges durable and
	// retires the handle.
	Commit() error
	// Abort rolls every declared range back to its before-image and
	// retires the handle.
	Abort() error
}

// Engine is a transactional main-memory storage system.
//
// Lifecycle: CreateDB any number of regions, then any number of
// Begin / Tx.SetRange* / (Tx.Commit|Tx.Abort) transactions, possibly
// concurrent. Crash drops all volatile state; Recover rebuilds it from
// whatever the engine's substrate preserved, after which OpenDB
// re-attaches the surviving regions.
type Engine interface {
	// Name identifies the engine in reports ("perseas", "rvm", ...).
	Name() string

	// CreateDB allocates a zeroed named region.
	CreateDB(name string, size uint64) (DB, error)
	// InitDB publishes the current content of db as its initial durable
	// state, outside any transaction (the paper's
	// PERSEAS_init_remote_db). Call it once after filling in the
	// database's initial records.
	InitDB(db DB) error
	// OpenDB re-attaches an existing region, typically after Recover.
	OpenDB(name string) (DB, error)

	// Begin starts a transaction and returns its handle. Concurrent
	// Begin calls are safe on every engine: natively concurrent engines
	// hand out independent handles, sequential cores serialise (the
	// call blocks until the previous transaction finishes).
	Begin() (Tx, error)

	// Crash simulates a failure of the given kind on the machine
	// running the engine. All volatile state — including every open
	// transaction — is lost.
	Crash(kind fault.CrashKind) error
	// Recover rebuilds engine state after a crash. It returns
	// ErrUnrecoverable when the substrate's survival matrix says the
	// durable state did not make it.
	Recover() error

	// Close releases resources. The durable state remains.
	Close() error
}

// TraceBeginner is an optional Engine extension for engines that can
// adopt a distributed-tracing context propagated from another process:
// Begin with the transaction's spans recorded under traceID (instead
// of a locally-issued id), hanging beneath the remote parentSpan. The
// transaction front door uses it to stitch a remote client's spans and
// the serving engine's spans into one tree. Engines that do not trace,
// or calls with traceID 0 (the peer was not tracing), must behave
// exactly like Begin.
type TraceBeginner interface {
	BeginTraced(traceID, parentSpan uint64) (Tx, error)
}
