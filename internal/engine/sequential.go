package engine

import (
	"sync"

	"github.com/ics-forth/perseas/internal/fault"
)

// Sequential is the single-transaction core contract the baseline
// engines implement: the paper-era API with one implicit engine-global
// transaction and no internal synchronisation. NewSequential lifts such
// a core to the concurrent Engine contract.
type Sequential interface {
	Name() string
	CreateDB(name string, size uint64) (DB, error)
	InitDB(db DB) error
	OpenDB(name string) (DB, error)
	Begin() error
	SetRange(db DB, offset, length uint64) error
	Commit() error
	Abort() error
	Crash(kind fault.CrashKind) error
	Recover() error
	Close() error
}

// SequentialEngine adapts a Sequential core to the Engine interface.
// Every call into the core runs under one mutex, and whole transactions
// are serialised: Begin blocks while another handle is open, so
// concurrent callers interleave transaction-at-a-time — the strongest
// isolation a single-transaction core can offer, with no code change in
// the core itself.
type SequentialEngine struct {
	core Sequential

	mu   sync.Mutex
	cond *sync.Cond
	// busy is true while a SequentialTx is open; Begin waits on cond
	// until the current transaction commits, aborts or is wiped out by
	// a crash.
	busy bool
	cur  *SequentialTx
}

// NewSequential wraps a single-transaction core in a thread-safe,
// handle-based engine.
func NewSequential(core Sequential) *SequentialEngine {
	e := &SequentialEngine{core: core}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Core returns the wrapped single-transaction engine, for tests that
// need to poke at the concrete type.
func (e *SequentialEngine) Core() Sequential { return e.core }

// Name implements Engine.
func (e *SequentialEngine) Name() string { return e.core.Name() }

// CreateDB implements Engine.
func (e *SequentialEngine) CreateDB(name string, size uint64) (DB, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.core.CreateDB(name, size)
}

// InitDB implements Engine.
func (e *SequentialEngine) InitDB(db DB) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.core.InitDB(db)
}

// OpenDB implements Engine.
func (e *SequentialEngine) OpenDB(name string) (DB, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.core.OpenDB(name)
}

// Begin implements Engine. It blocks until no other transaction is open,
// then opens one in the core. Nested Begin from the goroutine that
// already holds the open handle would self-deadlock — with explicit
// handles there is no reason to ever write that.
func (e *SequentialEngine) Begin() (Tx, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.busy {
		e.cond.Wait()
	}
	if err := e.core.Begin(); err != nil {
		return nil, err
	}
	t := &SequentialTx{e: e}
	e.busy = true
	e.cur = t
	return t, nil
}

// Crash implements Engine. An open transaction's handle is retired —
// its volatile state died with the machine — and waiting Begin callers
// wake up to observe the crashed core.
func (e *SequentialEngine) Crash(kind fault.CrashKind) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.retireLocked()
	return e.core.Crash(kind)
}

// Recover implements Engine.
func (e *SequentialEngine) Recover() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.retireLocked()
	return e.core.Recover()
}

// Close implements Engine.
func (e *SequentialEngine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.retireLocked()
	return e.core.Close()
}

// retireLocked invalidates the open handle, if any, and releases waiting
// Begin callers.
func (e *SequentialEngine) retireLocked() {
	if e.cur != nil {
		e.cur.done = true
		e.cur = nil
	}
	if e.busy {
		e.busy = false
		e.cond.Broadcast()
	}
}

// SequentialTx is the handle a SequentialEngine hands out: a thin
// serialised view of the core's one implicit transaction.
type SequentialTx struct {
	e *SequentialEngine
	// done marks the handle retired (committed, aborted, or wiped out
	// by a crash); guarded by e.mu.
	done bool
}

// SetRange implements Tx.
func (t *SequentialTx) SetRange(db DB, offset, length uint64) error {
	t.e.mu.Lock()
	defer t.e.mu.Unlock()
	if t.done {
		return ErrNoTransaction
	}
	return t.e.core.SetRange(db, offset, length)
}

// Commit implements Tx. On success the handle is retired and the next
// waiting Begin proceeds; on failure the transaction stays open so the
// caller can Abort (mirroring the cores' own semantics).
func (t *SequentialTx) Commit() error {
	t.e.mu.Lock()
	defer t.e.mu.Unlock()
	if t.done {
		return ErrNoTransaction
	}
	err := t.e.core.Commit()
	if err == nil {
		t.done = true
		t.e.retireLocked()
	}
	return err
}

// Abort implements Tx. The handle is retired whether or not the core's
// rollback succeeds: a failed abort leaves the core in an undefined
// state that only Crash/Recover can clear, so holding the engine busy
// would deadlock every later Begin.
func (t *SequentialTx) Abort() error {
	t.e.mu.Lock()
	defer t.e.mu.Unlock()
	if t.done {
		return ErrNoTransaction
	}
	t.done = true
	err := t.e.core.Abort()
	t.e.retireLocked()
	return err
}

var (
	_ Engine = (*SequentialEngine)(nil)
	_ Tx     = (*SequentialTx)(nil)
)
