package aries

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord feeds the ARIES log decoder arbitrary bytes at
// arbitrary positions: it must never panic, never return a record whose
// payload slices escape the log, and never accept a corrupted CRC.
func FuzzDecodeRecord(f *testing.F) {
	good := (&logRecord{
		kind: recUpdate, txID: 3, prevLSN: 16, dbID: 1, offset: 128,
		before: []byte("old"), after: []byte("new"),
	}).encode(nil)
	f.Add(good, uint16(0))
	f.Add([]byte{}, uint16(0))
	f.Add(bytes.Repeat([]byte{0xEE}, 120), uint16(3))
	f.Fuzz(func(t *testing.T, log []byte, posRaw uint16) {
		pos := LSN(posRaw)
		rec, next, ok := decodeRecord(log, pos)
		if !ok {
			return
		}
		if uint64(next) > uint64(len(log)) || next <= pos {
			t.Fatalf("next lsn %d out of range (pos %d, log %d)", next, pos, len(log))
		}
		if len(rec.before) > len(log) || len(rec.after) > len(log) {
			t.Fatal("payload longer than log")
		}
	})
}

// FuzzDecodeCheckpoint checks the checkpoint payload decoder likewise.
func FuzzDecodeCheckpoint(f *testing.F) {
	f.Add(encodeCheckpoint(checkpointPayload{
		active: map[uint64]LSN{1: 2},
		dirty:  map[pageKey]LSN{{1, 2}: 3},
	}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 10))
	f.Fuzz(func(t *testing.T, b []byte) {
		_, _ = decodeCheckpoint(b)
	})
}
