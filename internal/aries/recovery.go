package aries

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/ics-forth/perseas/internal/engine"
)

// Recover implements engine.Engine with the classic ARIES three-pass
// restart:
//
//	analysis — from the master record's checkpoint, rebuild the active
//	           transaction table and dirty page table;
//	redo     — repeat history: re-apply every update and CLR whose LSN
//	           exceeds the stable page's LSN, loser transactions
//	           included;
//	undo     — roll back losers newest-first, writing a compensation
//	           log record for every undone update so that a crash
//	           during restart never undoes twice.
func (a *ARIES) Recover() error {
	if !a.crashed {
		return errors.New("aries: recover called on a running instance")
	}
	if a.lost {
		return fmt.Errorf("%w: stable store destroyed", engine.ErrUnrecoverable)
	}

	// Reload the stable images and their page LSNs.
	ps := a.opts.PageSize
	newDBs := make(map[string]*database, len(a.dbs))
	newByID := make(map[uint32]*database, len(a.byID))
	pageLSN := make(map[pageKey]LSN)
	for name, old := range a.dbs {
		img, err := a.store.Read(old.storeOff, int(old.stableBytes(ps)))
		if err != nil {
			return fmt.Errorf("aries: reload %q: %w", name, err)
		}
		db := &database{
			id: old.id, name: name,
			data:     make([]byte, old.size),
			storeOff: old.storeOff, size: old.size,
		}
		for p := uint32(0); p < db.pages(ps); p++ {
			off := uint64(p) * (8 + ps)
			pageLSN[pageKey{db.id, p}] = LSN(binary.BigEndian.Uint64(img[off:]))
			lo := uint64(p) * ps
			hi := lo + ps
			if hi > db.size {
				hi = db.size
			}
			copy(db.data[lo:hi], img[off+8:])
		}
		newDBs[name] = db
		newByID[db.id] = db
	}

	// Read the whole log region once.
	log, err := a.store.Read(a.logStart, int(a.opts.LogSize))
	if err != nil {
		return fmt.Errorf("aries: read log: %w", err)
	}
	master := LSN(binary.BigEndian.Uint64(log[:8]))

	// --- Analysis ---
	att := map[uint64]LSN{}
	dpt := map[pageKey]LSN{}
	scanFrom := LSN(masterSize)
	if master != nilLSN {
		rec, next, ok := decodeRecord(log, master)
		if !ok || rec.kind != recCheckpoint {
			return fmt.Errorf("aries: master record points at garbage (lsn %d)", master)
		}
		cp, err := decodeCheckpoint(rec.before)
		if err != nil {
			return err
		}
		for tx, lsn := range cp.active {
			att[tx] = lsn
		}
		for k, lsn := range cp.dirty {
			dpt[k] = lsn
		}
		scanFrom = next
	}
	var maxTx uint64
	end := scanFrom
	for pos := scanFrom; ; {
		rec, next, ok := decodeRecord(log, pos)
		if !ok {
			end = pos
			break
		}
		if rec.txID > maxTx {
			maxTx = rec.txID
		}
		switch rec.kind {
		case recUpdate, recCLR:
			att[rec.txID] = pos
			if db, ok := newByID[rec.dbID]; ok {
				a.recordPages(db, rec.offset, uint64(len(rec.before)), func(k pageKey) {
					if _, have := dpt[k]; !have {
						dpt[k] = pos
					}
				})
			}
		case recCommit, recAbort:
			delete(att, rec.txID)
		case recCheckpoint:
			// Nested checkpoint during the scan window: its tables are
			// already subsumed by the running analysis.
		}
		pos = next
	}

	// --- Redo: repeat history from the oldest recLSN. ---
	redoFrom := end
	for _, lsn := range dpt {
		if lsn < redoFrom {
			redoFrom = lsn
		}
	}
	for pos := redoFrom; pos < end; {
		rec, next, ok := decodeRecord(log, pos)
		if !ok {
			break
		}
		if rec.kind == recUpdate || rec.kind == recCLR {
			if db, ok := newByID[rec.dbID]; ok {
				a.redoRecord(db, &rec, pos, pageLSN)
			}
		}
		pos = next
	}

	// --- Undo: roll back losers, logging CLRs. ---
	a.dbs = newDBs
	a.byID = newByID
	a.pageLSN = pageLSN
	// The analysis DPT is the post-restart dirty set: redo re-applied
	// those pages' changes in memory only, so they must stay dirty (and
	// keep their recLSNs) until a future flush writes them back --
	// otherwise the next checkpoint would declare a clean cache while
	// stable pages still hold pre-recovery (loser) contents. Undo adds
	// its own pages below via touchPages.
	a.dirty = make(map[pageKey]LSN, len(dpt))
	for k, lsn := range dpt {
		if _, ok := newByID[k.dbID]; ok {
			a.dirty[k] = lsn
		}
	}
	a.logHead = end
	a.flushedLSN = end
	a.logBuf = a.logBuf[:0]
	a.crashed = false

	for tx, last := range att {
		if err := a.undoLoser(log, tx, last); err != nil {
			a.crashed = true
			return err
		}
	}
	if err := a.forceLog(); err != nil {
		a.crashed = true
		return err
	}

	if maxTx > a.lastTx {
		a.lastTx = maxTx
	}
	a.txActive = false
	a.open = nil
	a.txUpdates = a.txUpdates[:0]
	a.updatesLogged = 0
	a.stats.Recoveries++
	return nil
}

// recordPages invokes fn for every page a range covers.
func (a *ARIES) recordPages(d *database, offset, length uint64, fn func(pageKey)) {
	ps := a.opts.PageSize
	if length == 0 {
		return
	}
	for p := uint32(offset / ps); uint64(p)*ps < offset+length; p++ {
		fn(pageKey{d.id, p})
	}
}

// redoRecord re-applies an update/CLR page-portion-wise wherever the
// stable page is older than the record.
func (a *ARIES) redoRecord(d *database, rec *logRecord, lsn LSN, pageLSN map[pageKey]LSN) {
	ps := a.opts.PageSize
	length := uint64(len(rec.after))
	if length == 0 {
		return
	}
	for p := uint32(rec.offset / ps); uint64(p)*ps < rec.offset+length; p++ {
		k := pageKey{d.id, p}
		if pageLSN[k] >= lsn {
			continue // the flushed page already reflects this update
		}
		pageLo := uint64(p) * ps
		pageHi := pageLo + ps
		lo := rec.offset
		if lo < pageLo {
			lo = pageLo
		}
		hi := rec.offset + length
		if hi > pageHi {
			hi = pageHi
		}
		copy(d.data[lo:hi], rec.after[lo-rec.offset:hi-rec.offset])
		pageLSN[k] = lsn
	}
}

// undoLoser rolls one loser transaction back through its log chain,
// honouring CLR undoNext pointers and writing fresh CLRs.
func (a *ARIES) undoLoser(log []byte, tx uint64, last LSN) error {
	cur := last
	for cur != nilLSN {
		rec, _, ok := decodeRecord(log, cur)
		if !ok {
			return fmt.Errorf("aries: loser %d chain broken at lsn %d", tx, cur)
		}
		switch rec.kind {
		case recCLR:
			// Already compensated: skip to what remains.
			cur = rec.undoNext
		case recUpdate:
			db, ok := a.byID[rec.dbID]
			if !ok {
				return fmt.Errorf("aries: loser %d touches unknown db %d", tx, rec.dbID)
			}
			clr := logRecord{
				kind:     recCLR,
				txID:     tx,
				prevLSN:  last,
				undoNext: rec.prevLSN,
				dbID:     rec.dbID,
				offset:   rec.offset,
				before:   rec.before,
				after:    rec.before,
			}
			lsn, err := a.appendRecord(&clr)
			if err != nil {
				return err
			}
			last = lsn
			copy(db.data[rec.offset:rec.offset+uint64(len(rec.before))], rec.before)
			a.touchPages(db, rec.offset, uint64(len(rec.before)), lsn)
			a.stats.CLRsWritten++
			cur = rec.prevLSN
		default:
			cur = rec.prevLSN
		}
	}
	rec := logRecord{kind: recAbort, txID: tx, prevLSN: last}
	_, err := a.appendRecord(&rec)
	return err
}
