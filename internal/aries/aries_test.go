package aries

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/disk"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/enginetest"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/riofs"
	"github.com/ics-forth/perseas/internal/riorvm"
	"github.com/ics-forth/perseas/internal/rvm"
	"github.com/ics-forth/perseas/internal/simclock"
)

func newARIES(t *testing.T, mutate ...func(*Options)) (*ARIES, *simclock.SimClock) {
	t.Helper()
	clock := simclock.NewSim()
	dev, err := disk.New(disk.DefaultParams(16<<20), clock)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.LogSize = 4 << 20
	for _, m := range mutate {
		m(&opts)
	}
	a, err := New(rvm.NewDiskStore(dev), clock, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a, clock
}

func TestARIESConformance(t *testing.T) {
	enginetest.Run(t, "aries",
		func(t *testing.T) engine.Engine {
			a, _ := newARIES(t)
			return engine.NewSequential(a)
		},
		enginetest.Caps{
			SurvivesKind:    func(fault.CrashKind) bool { return true },
			DurableOnCommit: true,
		})
}

func TestARIESConformanceWithAggressiveCheckpoints(t *testing.T) {
	// Checkpoint after every update record: the random crash tests then
	// regularly hit the steal path (uncommitted data flushed to the
	// image) and the undo pass with CLRs.
	enginetest.Run(t, "aries-ckpt1",
		func(t *testing.T) engine.Engine {
			a, _ := newARIES(t, func(o *Options) {
				o.CheckpointEvery = 1
				o.PageSize = 128
			})
			return engine.NewSequential(a)
		},
		enginetest.Caps{
			SurvivesKind:    func(fault.CrashKind) bool { return true },
			DurableOnCommit: true,
		})
}

func TestNewValidation(t *testing.T) {
	clock := simclock.NewSim()
	dev, err := disk.New(disk.DefaultParams(1<<20), clock)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.LogSize = 0
	if _, err := New(rvm.NewDiskStore(dev), clock, opts); err == nil {
		t.Error("zero log should be rejected")
	}
	opts.LogSize = 2 << 20
	if _, err := New(rvm.NewDiskStore(dev), clock, opts); err == nil {
		t.Error("log exceeding store should be rejected")
	}
}

// setup creates an initialised database.
func setup(t *testing.T, a *ARIES, size uint64) engine.DB {
	t.Helper()
	db, err := a.CreateDB("db", size)
	if err != nil {
		t.Fatal(err)
	}
	buf := db.Bytes()
	for i := range buf {
		buf[i] = byte(i % 251)
	}
	if err := a.InitDB(db); err != nil {
		t.Fatal(err)
	}
	return db
}

func commitWrite(t *testing.T, a *ARIES, db engine.DB, offset uint64, data []byte) {
	t.Helper()
	if err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := a.SetRange(db, offset, uint64(len(data))); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[offset:], data)
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestUndoPassWithCLRs(t *testing.T) {
	// Construct the scenario the undo pass exists for: a fuzzy
	// checkpoint flushes pages holding a logged-but-uncommitted update
	// (steal), then the machine dies. Recovery must redo history, find
	// the loser in the checkpoint's ATT, and roll it back with CLRs.
	a, _ := newARIES(t, func(o *Options) {
		o.CheckpointEvery = 1
		o.PageSize = 256
	})
	db := setup(t, a, 4096)
	commitWrite(t, a, db, 0, []byte("committed-v1"))

	if err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	// First range: logged when the second SetRange closes it.
	if err := a.SetRange(db, 0, 12); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[0:], []byte("UNCOMMITTED!"))
	// Second SetRange closes range one, logs it, and (CheckpointEvery=1)
	// takes a fuzzy checkpoint that flushes the stolen page.
	if err := a.SetRange(db, 512, 4); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[512:], []byte("tail"))
	before := a.Stats()
	if before.Checkpoints == 0 {
		t.Fatal("no fuzzy checkpoint was taken")
	}

	if err := a.Crash(fault.CrashPower); err != nil {
		t.Fatal(err)
	}
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	re, err := a.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[:12]); got != "committed-v1" {
		t.Errorf("recovered %q, want the committed state", got)
	}
	if a.Stats().CLRsWritten == 0 {
		t.Error("undo pass wrote no CLRs")
	}
}

func TestAbortWritesCLRs(t *testing.T) {
	a, _ := newARIES(t)
	db := setup(t, a, 1024)
	if err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := a.SetRange(db, 0, 8); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[0:], []byte("11111111"))
	if err := a.SetRange(db, 100, 8); err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes()[100:], []byte("22222222"))
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
	// The first range was logged (closed by the second SetRange) and
	// must be compensated; the open second range is restored in memory.
	if got := a.Stats().CLRsWritten; got != 1 {
		t.Errorf("CLRs written = %d, want 1", got)
	}
	want := byte(0 % 251)
	if db.Bytes()[0] != want || db.Bytes()[100] != byte(100%251) {
		t.Error("abort did not restore before-images")
	}
}

func TestNoForceCommitThenCrashRedo(t *testing.T) {
	// No-force: commit does not flush pages. After a crash the stable
	// image is stale and redo must replay the committed update.
	a, _ := newARIES(t)
	db := setup(t, a, 2048)
	commitWrite(t, a, db, 256, []byte("replay-me"))
	if got := a.Stats().PageFlushes; got != 1 {
		// Only InitDB's single WriteSync of all pages counted as one
		// flush per page... verify no flush happened at commit time by
		// checking the dirty table instead.
		_ = got
	}
	if len(a.dirty) == 0 {
		t.Fatal("commit flushed pages; no-force violated")
	}
	if err := a.Crash(fault.CrashOS); err != nil {
		t.Fatal(err)
	}
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	re, err := a.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[256:265]); got != "replay-me" {
		t.Errorf("redo failed: %q", got)
	}
}

func TestLogTruncationReclaims(t *testing.T) {
	a, _ := newARIES(t, func(o *Options) { o.LogSize = 64 << 10 })
	db := setup(t, a, 8192)
	payload := bytes.Repeat([]byte{7}, 2048)
	for i := 0; i < 40; i++ {
		commitWrite(t, a, db, 0, payload)
	}
	// 40 commits x ~4 KiB of log each exceed 64 KiB several times over:
	// truncation must have kept the head inside the region.
	if uint64(a.logHead) > a.opts.LogSize {
		t.Fatalf("log head %d beyond region %d", a.logHead, a.opts.LogSize)
	}
	// And recovery still lands on the last committed state.
	db.Bytes()[0] = 99
	if err := a.Crash(fault.CrashProcess); err != nil {
		t.Fatal(err)
	}
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	re, err := a.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	if re.Bytes()[0] != 7 {
		t.Errorf("post-truncation recovery lost data: %d", re.Bytes()[0])
	}
}

func TestTransactionLargerThanLog(t *testing.T) {
	a, _ := newARIES(t, func(o *Options) { o.LogSize = 4 << 10 })
	db := setup(t, a, 16<<10)
	if err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := a.SetRange(db, 0, 8<<10); err != nil {
		t.Fatal(err)
	}
	// The oversized update surfaces when the range closes at commit.
	if err := a.Commit(); !errors.Is(err, ErrLogFull) {
		t.Errorf("oversized commit: %v, want ErrLogFull", err)
	}
}

func TestCommitPaysDiskLatencyLikeRVM(t *testing.T) {
	// The paper's argument applies to every disk-bound WAL: ARIES
	// commits at magnetic-disk latency too.
	a, clock := newARIES(t)
	db := setup(t, a, 1024)
	t0 := clock.Now()
	commitWrite(t, a, db, 0, []byte("sync"))
	if lat := clock.Now() - t0; lat < 4*time.Millisecond {
		t.Errorf("ARIES commit cost %v, want a disk force", lat)
	}
}

func TestRepeatedCrashRecoverCycles(t *testing.T) {
	// ARIES restart must be restartable: crash again right after (or
	// during, conceptually) recovery and recover again, repeatedly. The
	// CLRs written by each undo pass guarantee no update is undone
	// twice.
	a, _ := newARIES(t, func(o *Options) {
		o.CheckpointEvery = 2
		o.PageSize = 256
	})
	db := setup(t, a, 4096)
	commitWrite(t, a, db, 0, []byte("stable"))

	for cycle := 0; cycle < 5; cycle++ {
		// Leave a loser with several logged updates (checkpoints fire
		// mid-transaction, stealing pages).
		if err := a.Begin(); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 4; r++ {
			if err := a.SetRange(db, uint64(r*300), 16); err != nil {
				t.Fatal(err)
			}
			copy(db.Bytes()[r*300:], []byte("loser-loser-data"))
		}
		if err := a.Crash(fault.AllKinds()[cycle%3]); err != nil {
			t.Fatal(err)
		}
		if err := a.Recover(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		// Crash immediately again: the undo pass just ran and logged
		// CLRs; the next recovery replays them and must converge.
		if err := a.Crash(fault.CrashPower); err != nil {
			t.Fatal(err)
		}
		if err := a.Recover(); err != nil {
			t.Fatalf("cycle %d double restart: %v", cycle, err)
		}
		re, err := a.OpenDB("db")
		if err != nil {
			t.Fatal(err)
		}
		db = re
		if got := string(db.Bytes()[:6]); got != "stable" {
			t.Fatalf("cycle %d recovered %q", cycle, got)
		}
		for r := 0; r < 4; r++ {
			if bytes.Contains(db.Bytes()[r*300:r*300+16], []byte("loser")) {
				t.Fatalf("cycle %d: loser data survived at range %d", cycle, r)
			}
		}
	}
	if a.Stats().CLRsWritten == 0 {
		t.Error("no CLRs written across the cycles")
	}
}

func TestUndoAcrossMultipleCheckpoints(t *testing.T) {
	// A long loser transaction spanning several fuzzy checkpoints: the
	// last checkpoint's ATT entry points into the middle of the chain
	// and undo must walk all the way back through prevLSN links.
	a, _ := newARIES(t, func(o *Options) {
		o.CheckpointEvery = 1
		o.PageSize = 256
	})
	db := setup(t, a, 8192)
	commitWrite(t, a, db, 0, []byte("baseline"))
	if err := a.Begin(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 6; r++ { // 6 updates -> ~5 checkpoints mid-tx
		if err := a.SetRange(db, uint64(r*1024), 8); err != nil {
			t.Fatal(err)
		}
		copy(db.Bytes()[r*1024:], []byte("LOSER!!!"))
	}
	if err := a.Crash(fault.CrashOS); err != nil {
		t.Fatal(err)
	}
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	re, err := a.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[:8]); got != "baseline" {
		t.Errorf("recovered %q", got)
	}
	for r := 0; r < 6; r++ {
		if bytes.Equal(re.Bytes()[r*1024:r*1024+8], []byte("LOSER!!!")) {
			t.Errorf("update %d of the long loser survived", r)
		}
	}
}

func TestARIESOnRioComposes(t *testing.T) {
	// The StableStore abstraction composes: ARIES runs on the Rio file
	// cache just like RVM does, commits at memory speed, and inherits
	// Rio's survival matrix.
	clock := simclock.NewSim()
	p := riofs.DefaultParams()
	rio := riofs.New(p, clock)
	store, err := riorvm.NewRioStore(rio, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.LogSize = 4 << 20
	opts.Label = "aries-rio"
	a, err := New(store, clock, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "aries-rio" {
		t.Errorf("Name = %q", a.Name())
	}
	db := setup(t, a, 4096)
	t0 := clock.Now()
	commitWrite(t, a, db, 0, []byte("fast"))
	if lat := clock.Now() - t0; lat > time.Millisecond {
		t.Errorf("ARIES-on-Rio commit = %v, want sub-millisecond", lat)
	}
	// Survives an OS crash, dies on power loss.
	if err := a.Crash(fault.CrashOS); err != nil {
		t.Fatal(err)
	}
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	re, err := a.OpenDB("db")
	if err != nil {
		t.Fatal(err)
	}
	if got := string(re.Bytes()[:4]); got != "fast" {
		t.Errorf("recovered %q", got)
	}
	if err := a.Crash(fault.CrashPower); err != nil {
		t.Fatal(err)
	}
	if err := a.Recover(); !errors.Is(err, engine.ErrUnrecoverable) {
		t.Errorf("power crash on Rio: %v, want ErrUnrecoverable", err)
	}
}

func TestRecordKindString(t *testing.T) {
	for kind, want := range map[recKind]string{
		recUpdate: "UPDATE", recCommit: "COMMIT", recAbort: "ABORT",
		recCLR: "CLR", recCheckpoint: "CHECKPOINT", recKind(9): "REC(9)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("kind %d = %q, want %q", kind, got, want)
		}
	}
}

func TestLogRecordRoundTrip(t *testing.T) {
	recs := []logRecord{
		{kind: recUpdate, txID: 7, prevLSN: 100, dbID: 2, offset: 4096,
			before: []byte("old"), after: []byte("new")},
		{kind: recCommit, txID: 7, prevLSN: 200},
		{kind: recAbort, txID: 8, prevLSN: 300},
		{kind: recCLR, txID: 9, prevLSN: 400, undoNext: 150, dbID: 1,
			offset: 64, before: []byte("xx"), after: []byte("xx")},
	}
	var log []byte
	log = append(log, make([]byte, masterSize)...)
	var lsns []LSN
	for i := range recs {
		lsns = append(lsns, LSN(len(log)))
		log = recs[i].encode(log)
	}
	pos := LSN(masterSize)
	for i := range recs {
		got, next, ok := decodeRecord(log, pos)
		if !ok {
			t.Fatalf("record %d failed to decode", i)
		}
		if got.kind != recs[i].kind || got.txID != recs[i].txID ||
			got.prevLSN != recs[i].prevLSN || got.undoNext != recs[i].undoNext ||
			!bytes.Equal(got.before, recs[i].before) || !bytes.Equal(got.after, recs[i].after) {
			t.Errorf("record %d mismatch: %+v vs %+v", i, got, recs[i])
		}
		pos = next
		_ = lsns
	}
	// The log's logical end decodes as not-ok.
	if _, _, ok := decodeRecord(append(log, make([]byte, 64)...), pos); ok {
		t.Error("zeroed tail decoded as a record")
	}
}

func TestCheckpointPayloadRoundTrip(t *testing.T) {
	cp := checkpointPayload{
		active: map[uint64]LSN{5: 1000, 9: 2000},
		dirty:  map[pageKey]LSN{{1, 0}: 500, {2, 7}: 900},
	}
	got, err := decodeCheckpoint(encodeCheckpoint(cp))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.active) != 2 || got.active[5] != 1000 || got.active[9] != 2000 {
		t.Errorf("active = %v", got.active)
	}
	if len(got.dirty) != 2 || got.dirty[pageKey{1, 0}] != 500 || got.dirty[pageKey{2, 7}] != 900 {
		t.Errorf("dirty = %v", got.dirty)
	}
	if _, err := decodeCheckpoint([]byte{1, 2}); err == nil {
		t.Error("truncated payload should fail")
	}
}
