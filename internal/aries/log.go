// Package aries reimplements the algorithmic core of ARIES (Mohan et
// al., TODS 1992), the write-ahead-logging exemplar the paper cites
// alongside RVM. Unlike RVM's force-style scheme, ARIES buffers pages
// with a steal / no-force policy: dirty pages may reach the database
// image before commit and need not reach it at commit, with the log —
// update records, commit records, compensation log records (CLRs) and
// fuzzy checkpoints — restoring consistency through the classic
// three-pass recovery: analysis, redo (repeat history), undo.
//
// The implementation targets the same engine.Engine contract as every
// other system in this repository, so the conformance and crash suites
// apply unchanged. It exists as a reference baseline: the paper's point
// — that any disk-bound WAL commits at magnetic-disk latency — holds for
// ARIES exactly as for RVM.
package aries

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// LSN is a log sequence number: the byte offset of a record in the log.
type LSN uint64

// nilLSN marks "no LSN" (prev pointers of a transaction's first record).
const nilLSN = LSN(0)

// recKind enumerates log record types.
type recKind uint8

const (
	recUpdate recKind = iota + 1
	recCommit
	recAbort
	recCLR
	recCheckpoint
)

// String implements fmt.Stringer.
func (k recKind) String() string {
	switch k {
	case recUpdate:
		return "UPDATE"
	case recCommit:
		return "COMMIT"
	case recAbort:
		return "ABORT"
	case recCLR:
		return "CLR"
	case recCheckpoint:
		return "CHECKPOINT"
	default:
		return fmt.Sprintf("REC(%d)", uint8(k))
	}
}

// logRecord is the in-memory form of any log record.
//
// Wire layout (big endian):
//
//	[0:4)   total length
//	[4:5)   kind
//	[5:13)  txID
//	[13:21) prevLSN (same-transaction back-chain)
//	[21:29) undoNext (CLR only: next record to undo)
//	[29:33) dbID
//	[33:41) offset
//	[41:45) payload length n
//	[45:49) CRC-32C of bytes [4:45) + payloads
//	[49:49+n)   before-image (update) / checkpoint payload
//	[49+n:49+2n) after-image (update only)
type logRecord struct {
	kind     recKind
	txID     uint64
	prevLSN  LSN
	undoNext LSN
	dbID     uint32
	offset   uint64
	before   []byte
	after    []byte
}

const logHeaderSize = 49

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// size returns the encoded record size.
func (r *logRecord) size() int {
	switch r.kind {
	case recUpdate, recCLR:
		return logHeaderSize + len(r.before) + len(r.after)
	case recCheckpoint:
		return logHeaderSize + len(r.before)
	default:
		return logHeaderSize
	}
}

// encode appends the record to buf.
func (r *logRecord) encode(buf []byte) []byte {
	var h [logHeaderSize]byte
	binary.BigEndian.PutUint32(h[0:], uint32(r.size()))
	h[4] = byte(r.kind)
	binary.BigEndian.PutUint64(h[5:], r.txID)
	binary.BigEndian.PutUint64(h[13:], uint64(r.prevLSN))
	binary.BigEndian.PutUint64(h[21:], uint64(r.undoNext))
	binary.BigEndian.PutUint32(h[29:], r.dbID)
	binary.BigEndian.PutUint64(h[33:], r.offset)
	binary.BigEndian.PutUint32(h[41:], uint32(len(r.before)))
	crc := crc32.Update(0, crcTable, h[4:45])
	crc = crc32.Update(crc, crcTable, r.before)
	crc = crc32.Update(crc, crcTable, r.after)
	binary.BigEndian.PutUint32(h[45:], crc)
	buf = append(buf, h[:]...)
	buf = append(buf, r.before...)
	buf = append(buf, r.after...)
	return buf
}

// decodeRecord parses the record at log[pos:]. ok is false at the log's
// logical end (zeroed or corrupt bytes).
func decodeRecord(log []byte, pos LSN) (rec logRecord, next LSN, ok bool) {
	p := uint64(pos)
	if p+logHeaderSize > uint64(len(log)) {
		return logRecord{}, 0, false
	}
	h := log[p:]
	total := uint64(binary.BigEndian.Uint32(h[0:4]))
	if total < logHeaderSize || p+total > uint64(len(log)) {
		return logRecord{}, 0, false
	}
	kind := recKind(h[4])
	if kind < recUpdate || kind > recCheckpoint {
		return logRecord{}, 0, false
	}
	n := uint64(binary.BigEndian.Uint32(h[41:45]))
	var wantTotal uint64
	switch kind {
	case recUpdate, recCLR:
		wantTotal = logHeaderSize + 2*n
	case recCheckpoint:
		wantTotal = logHeaderSize + n
	default:
		wantTotal = logHeaderSize
	}
	if total != wantTotal {
		return logRecord{}, 0, false
	}
	var before, after []byte
	switch kind {
	case recUpdate, recCLR:
		before = log[p+logHeaderSize : p+logHeaderSize+n]
		after = log[p+logHeaderSize+n : p+total]
	case recCheckpoint:
		before = log[p+logHeaderSize : p+total]
	default:
		// Header-only records carry no payload; a nonzero length field
		// is corruption.
		if n != 0 {
			return logRecord{}, 0, false
		}
	}
	crc := crc32.Update(0, crcTable, h[4:45])
	crc = crc32.Update(crc, crcTable, before)
	crc = crc32.Update(crc, crcTable, after)
	if crc != binary.BigEndian.Uint32(h[45:49]) {
		return logRecord{}, 0, false
	}
	rec = logRecord{
		kind:     kind,
		txID:     binary.BigEndian.Uint64(h[5:13]),
		prevLSN:  LSN(binary.BigEndian.Uint64(h[13:21])),
		undoNext: LSN(binary.BigEndian.Uint64(h[21:29])),
		dbID:     binary.BigEndian.Uint32(h[29:33]),
		offset:   binary.BigEndian.Uint64(h[33:41]),
		before:   before,
		after:    after,
	}
	return rec, pos + LSN(total), true
}

// checkpointPayload serialises the fuzzy-checkpoint state: the active
// transaction table (txID -> lastLSN) and the dirty page table
// (dbID,page -> recLSN).
type checkpointPayload struct {
	active map[uint64]LSN
	dirty  map[pageKey]LSN
}

// pageKey identifies one page of one database.
type pageKey struct {
	dbID uint32
	page uint32
}

func encodeCheckpoint(cp checkpointPayload) []byte {
	buf := make([]byte, 0, 8+len(cp.active)*16+len(cp.dirty)*16)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(cp.active)))
	for tx, lsn := range cp.active {
		buf = binary.BigEndian.AppendUint64(buf, tx)
		buf = binary.BigEndian.AppendUint64(buf, uint64(lsn))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(cp.dirty)))
	for k, lsn := range cp.dirty {
		buf = binary.BigEndian.AppendUint32(buf, k.dbID)
		buf = binary.BigEndian.AppendUint32(buf, k.page)
		buf = binary.BigEndian.AppendUint64(buf, uint64(lsn))
	}
	return buf
}

func decodeCheckpoint(b []byte) (checkpointPayload, error) {
	cp := checkpointPayload{active: map[uint64]LSN{}, dirty: map[pageKey]LSN{}}
	if len(b) < 4 {
		return cp, fmt.Errorf("aries: checkpoint payload truncated")
	}
	na := binary.BigEndian.Uint32(b)
	b = b[4:]
	for i := uint32(0); i < na; i++ {
		if len(b) < 16 {
			return cp, fmt.Errorf("aries: checkpoint ATT truncated")
		}
		cp.active[binary.BigEndian.Uint64(b)] = LSN(binary.BigEndian.Uint64(b[8:]))
		b = b[16:]
	}
	if len(b) < 4 {
		return cp, fmt.Errorf("aries: checkpoint DPT truncated")
	}
	nd := binary.BigEndian.Uint32(b)
	b = b[4:]
	for i := uint32(0); i < nd; i++ {
		if len(b) < 16 {
			return cp, fmt.Errorf("aries: checkpoint DPT truncated")
		}
		k := pageKey{
			dbID: binary.BigEndian.Uint32(b),
			page: binary.BigEndian.Uint32(b[4:]),
		}
		cp.dirty[k] = LSN(binary.BigEndian.Uint64(b[8:]))
		b = b[16:]
	}
	return cp, nil
}
