package aries

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/hostmem"
	"github.com/ics-forth/perseas/internal/rvm"
	"github.com/ics-forth/perseas/internal/simclock"
)

// Errors specific to ARIES.
var (
	// ErrLogFull is returned when the log cannot hold a transaction.
	ErrLogFull = errors.New("aries: log full")
	// ErrBadRange is returned for ranges outside a database.
	ErrBadRange = errors.New("aries: range outside database")
	// ErrNoSuchDB is returned for unknown database names.
	ErrNoSuchDB = errors.New("aries: no such database")
)

// Options configure an ARIES instance.
type Options struct {
	// LogSize is the log capacity on the stable store.
	LogSize uint64
	// PageSize is the buffering granularity.
	PageSize uint64
	// CheckpointEvery takes a fuzzy checkpoint after this many logged
	// update records.
	CheckpointEvery int
	// Mem prices local copies.
	Mem hostmem.Model
	// SetRangeOverhead and CommitOverhead model the software path, as
	// for the RVM baseline.
	SetRangeOverhead time.Duration
	CommitOverhead   time.Duration
	// Label overrides the reported engine name.
	Label string
}

// DefaultOptions matches the RVM baseline's cost assumptions.
func DefaultOptions() Options {
	return Options{
		LogSize:          8 << 20,
		PageSize:         4096,
		CheckpointEvery:  64,
		Mem:              hostmem.Default(),
		SetRangeOverhead: 80 * time.Microsecond,
		CommitOverhead:   600 * time.Microsecond,
	}
}

// database is one ARIES-managed region: a main-memory working copy plus
// a paged image on the stable store. Each stable page is prefixed with
// its 8-byte pageLSN.
type database struct {
	id       uint32
	name     string
	data     []byte
	storeOff uint64
	size     uint64
	stale    bool
}

func (d *database) Name() string  { return d.name }
func (d *database) Size() uint64  { return d.size }
func (d *database) Bytes() []byte { return d.data }

// pages returns the page count.
func (d *database) pages(pageSize uint64) uint32 {
	return uint32((d.size + pageSize - 1) / pageSize)
}

// stableBytes returns the stable-store footprint (page headers included).
func (d *database) stableBytes(pageSize uint64) uint64 {
	return uint64(d.pages(pageSize)) * (8 + pageSize)
}

// openRange is a declared-but-not-yet-logged range: the update record is
// emitted when the range "closes" (at the next SetRange, Commit or
// Abort), once the after-image is known.
type openRange struct {
	db     *database
	offset uint64
	length uint64
	before []byte
}

// txUpdate remembers a logged update for in-memory abort.
type txUpdate struct {
	db     *database
	offset uint64
	before []byte
	lsn    LSN
}

// masterSize reserves the head of the log region for the master record:
// the LSN of the most recent checkpoint.
const masterSize = 16

// ARIES is one engine instance.
type ARIES struct {
	opts  Options
	clock simclock.Clock
	store rvm.StableStore

	dbs       map[string]*database
	byID      map[uint32]*database
	nextID    uint32
	nextStore uint64

	logStart   uint64 // store offset of the log region
	logHead    LSN    // next append position (relative to logStart)
	flushedLSN LSN    // log is stable up to here
	logBuf     []byte // [flushedLSN, logHead)

	pageLSN map[pageKey]LSN // volatile page table
	dirty   map[pageKey]LSN // DPT: recLSN per dirty page

	lastTx        uint64
	txActive      bool
	txLastLSN     LSN
	open          *openRange
	txUpdates     []txUpdate
	updatesLogged int

	crashed bool
	lost    bool
	stats   Stats
}

// Stats counts engine activity.
type Stats struct {
	Begun       uint64
	Committed   uint64
	Aborted     uint64
	SetRanges   uint64
	LogForces   uint64
	Checkpoints uint64
	PageFlushes uint64
	CLRsWritten uint64
	Recoveries  uint64
}

// New builds an ARIES engine over the given stable store; the log
// occupies the tail of the store.
func New(store rvm.StableStore, clock simclock.Clock, opts Options) (*ARIES, error) {
	if opts.PageSize == 0 {
		opts.PageSize = 4096
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 64
	}
	if opts.LogSize <= masterSize+logHeaderSize || opts.LogSize >= store.Size() {
		return nil, fmt.Errorf("aries: log size %d must be in (%d, store size %d)",
			opts.LogSize, masterSize+logHeaderSize, store.Size())
	}
	return &ARIES{
		opts:     opts,
		clock:    clock,
		store:    store,
		dbs:      make(map[string]*database),
		byID:     make(map[uint32]*database),
		nextID:   1,
		logStart: store.Size() - opts.LogSize,
		logHead:  masterSize,
		flushedLSN: func() LSN {
			return masterSize
		}(),
		pageLSN: make(map[pageKey]LSN),
		dirty:   make(map[pageKey]LSN),
	}, nil
}

// Name implements engine.Engine.
func (a *ARIES) Name() string {
	if a.opts.Label != "" {
		return a.opts.Label
	}
	return "aries"
}

// Stats returns a snapshot of the counters.
func (a *ARIES) Stats() Stats { return a.stats }

func (a *ARIES) checkAlive() error {
	if a.crashed {
		return engine.ErrCrashed
	}
	return nil
}

// CreateDB implements engine.Engine.
func (a *ARIES) CreateDB(name string, size uint64) (engine.DB, error) {
	if err := a.checkAlive(); err != nil {
		return nil, err
	}
	if _, ok := a.dbs[name]; ok {
		return nil, fmt.Errorf("aries: database %q exists", name)
	}
	db := &database{
		id:       a.nextID,
		name:     name,
		data:     make([]byte, size),
		storeOff: a.nextStore,
		size:     size,
	}
	if a.nextStore+db.stableBytes(a.opts.PageSize) > a.logStart {
		return nil, fmt.Errorf("aries: store full: %q needs %d bytes", name, db.stableBytes(a.opts.PageSize))
	}
	a.nextID++
	a.nextStore += db.stableBytes(a.opts.PageSize)
	a.dbs[name] = db
	a.byID[db.id] = db
	return db, nil
}

// InitDB implements engine.Engine: write every page (with zero LSNs) to
// the stable image.
func (a *ARIES) InitDB(db engine.DB) error {
	if err := a.checkAlive(); err != nil {
		return err
	}
	d, err := a.own(db)
	if err != nil {
		return err
	}
	return a.flushAllPages(d)
}

// flushAllPages force-writes every page of d with its current LSN.
func (a *ARIES) flushAllPages(d *database) error {
	ps := a.opts.PageSize
	buf := make([]byte, d.stableBytes(ps))
	for p := uint32(0); p < d.pages(ps); p++ {
		off := uint64(p) * (8 + ps)
		binary.BigEndian.PutUint64(buf[off:], uint64(a.pageLSN[pageKey{d.id, p}]))
		lo := uint64(p) * ps
		hi := lo + ps
		if hi > d.size {
			hi = d.size
		}
		copy(buf[off+8:], d.data[lo:hi])
	}
	if err := a.store.WriteSync(d.storeOff, buf); err != nil {
		return err
	}
	for p := uint32(0); p < d.pages(ps); p++ {
		delete(a.dirty, pageKey{d.id, p})
		a.stats.PageFlushes++
	}
	return nil
}

// OpenDB implements engine.Engine.
func (a *ARIES) OpenDB(name string) (engine.DB, error) {
	if err := a.checkAlive(); err != nil {
		return nil, err
	}
	db, ok := a.dbs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchDB, name)
	}
	return db, nil
}

func (a *ARIES) own(db engine.DB) (*database, error) {
	d, ok := db.(*database)
	if !ok {
		return nil, fmt.Errorf("aries: foreign DB handle %T", db)
	}
	if d.stale {
		return nil, errors.New("aries: stale database handle; reopen after recovery")
	}
	if a.byID[d.id] != d {
		return nil, fmt.Errorf("aries: unknown database handle %q", d.name)
	}
	return d, nil
}

// Begin implements engine.Engine.
func (a *ARIES) Begin() error {
	if err := a.checkAlive(); err != nil {
		return err
	}
	if a.txActive {
		return engine.ErrInTransaction
	}
	a.lastTx++
	a.txActive = true
	a.txLastLSN = nilLSN
	a.open = nil
	a.txUpdates = a.txUpdates[:0]
	a.stats.Begun++
	return nil
}

// SetRange implements engine.Engine: it closes the previously declared
// range (logging its update record now that the after-image is known),
// captures the new range's before-image, and may take a fuzzy checkpoint.
func (a *ARIES) SetRange(db engine.DB, offset, length uint64) error {
	if err := a.checkAlive(); err != nil {
		return err
	}
	if !a.txActive {
		return engine.ErrNoTransaction
	}
	d, err := a.own(db)
	if err != nil {
		return err
	}
	if offset > d.size || length > d.size-offset {
		return fmt.Errorf("%w: [%d,+%d) in %d-byte database %q",
			ErrBadRange, offset, length, d.size, d.name)
	}
	if err := a.closeOpenRange(); err != nil {
		return err
	}
	before := make([]byte, length)
	a.opts.Mem.Copy(a.clock, before, d.data[offset:offset+length])
	a.clock.Advance(a.opts.SetRangeOverhead)
	a.open = &openRange{db: d, offset: offset, length: length, before: before}
	a.stats.SetRanges++

	if a.updatesLogged >= a.opts.CheckpointEvery {
		return a.fuzzyCheckpoint()
	}
	return nil
}

// closeOpenRange logs the pending range's update record.
func (a *ARIES) closeOpenRange() error {
	if a.open == nil {
		return nil
	}
	r := a.open
	a.open = nil
	after := make([]byte, r.length)
	a.opts.Mem.Copy(a.clock, after, r.db.data[r.offset:r.offset+r.length])
	rec := logRecord{
		kind:    recUpdate,
		txID:    a.lastTx,
		prevLSN: a.txLastLSN,
		dbID:    r.db.id,
		offset:  r.offset,
		before:  r.before,
		after:   after,
	}
	lsn, err := a.appendRecord(&rec)
	if err != nil {
		return err
	}
	a.txLastLSN = lsn
	a.txUpdates = append(a.txUpdates, txUpdate{db: r.db, offset: r.offset, before: r.before, lsn: lsn})
	a.touchPages(r.db, r.offset, r.length, lsn)
	a.updatesLogged++
	return nil
}

// touchPages stamps the in-memory pageLSN table and the DPT for every
// page the range covers.
func (a *ARIES) touchPages(d *database, offset, length uint64, lsn LSN) {
	ps := a.opts.PageSize
	if length == 0 {
		return
	}
	for p := uint32(offset / ps); uint64(p)*ps < offset+length; p++ {
		k := pageKey{d.id, p}
		a.pageLSN[k] = lsn
		if _, ok := a.dirty[k]; !ok {
			a.dirty[k] = lsn
		}
	}
}

// appendRecord places a record in the log buffer, returning its LSN.
// Records become stable at the next force.
func (a *ARIES) appendRecord(rec *logRecord) (LSN, error) {
	sz := uint64(rec.size())
	if uint64(a.logHead)+sz > a.opts.LogSize {
		return 0, fmt.Errorf("%w: head %d + record %d > %d",
			ErrLogFull, a.logHead, sz, a.opts.LogSize)
	}
	lsn := a.logHead
	a.logBuf = rec.encode(a.logBuf)
	a.logHead += LSN(sz)
	a.clock.Advance(a.opts.Mem.CopyCost(int(sz)))
	return lsn, nil
}

// forceLog makes the log stable up to the current head (the WAL force).
func (a *ARIES) forceLog() error {
	if a.flushedLSN == a.logHead {
		return nil
	}
	if err := a.store.WriteSync(a.logStart+uint64(a.flushedLSN), a.logBuf); err != nil {
		return err
	}
	a.flushedLSN = a.logHead
	a.logBuf = a.logBuf[:0]
	a.stats.LogForces++
	return nil
}

// flushPage writes one page (with its LSN header) to the stable image,
// honouring the WAL rule: the log must be stable up to the pageLSN.
func (a *ARIES) flushPage(k pageKey) error {
	d, ok := a.byID[k.dbID]
	if !ok {
		delete(a.dirty, k)
		return nil
	}
	if a.pageLSN[k] > a.flushedLSN {
		if err := a.forceLog(); err != nil {
			return err
		}
	}
	ps := a.opts.PageSize
	buf := make([]byte, 8+ps)
	binary.BigEndian.PutUint64(buf, uint64(a.pageLSN[k]))
	lo := uint64(k.page) * ps
	hi := lo + ps
	if hi > d.size {
		hi = d.size
	}
	copy(buf[8:], d.data[lo:hi])
	if err := a.store.WriteSync(d.storeOff+uint64(k.page)*(8+ps), buf); err != nil {
		return err
	}
	delete(a.dirty, k)
	a.stats.PageFlushes++
	return nil
}

// fuzzyCheckpoint forces the log, writes back dirty pages — including,
// thanks to the steal policy, pages holding uncommitted data of the
// running transaction — and logs a checkpoint record carrying the active
// transaction table and the (now empty) dirty page table, finally
// updating the master record.
func (a *ARIES) fuzzyCheckpoint() error {
	if err := a.forceLog(); err != nil {
		return err
	}
	for k := range a.dirty {
		if err := a.flushPage(k); err != nil {
			return err
		}
	}
	cp := checkpointPayload{active: map[uint64]LSN{}, dirty: map[pageKey]LSN{}}
	if a.txActive && a.txLastLSN != nilLSN {
		cp.active[a.lastTx] = a.txLastLSN
	}
	for k, lsn := range a.dirty {
		cp.dirty[k] = lsn
	}
	rec := logRecord{kind: recCheckpoint, before: encodeCheckpoint(cp)}
	lsn, err := a.appendRecord(&rec)
	if err != nil {
		return err
	}
	if err := a.forceLog(); err != nil {
		return err
	}
	var master [masterSize]byte
	binary.BigEndian.PutUint64(master[:], uint64(lsn))
	if err := a.store.WriteSync(a.logStart, master[:]); err != nil {
		return err
	}
	a.updatesLogged = 0
	a.stats.Checkpoints++
	return nil
}

// Commit implements engine.Engine: close the final range, log the commit
// record and force the log — no page needs flushing (no-force).
func (a *ARIES) Commit() error {
	if err := a.checkAlive(); err != nil {
		return err
	}
	if !a.txActive {
		return engine.ErrNoTransaction
	}
	a.clock.Advance(a.opts.CommitOverhead)
	if err := a.closeOpenRange(); err != nil {
		return err
	}
	rec := logRecord{kind: recCommit, txID: a.lastTx, prevLSN: a.txLastLSN}
	if _, err := a.appendRecord(&rec); err != nil {
		return err
	}
	if err := a.forceLog(); err != nil {
		return err
	}
	a.txActive = false
	a.open = nil
	a.txUpdates = a.txUpdates[:0]
	a.stats.Committed++

	if uint64(a.logHead) > a.opts.LogSize/2 {
		return a.truncateLog()
	}
	return nil
}

// truncateLog reclaims the log between transactions: with every dirty
// page flushed, nothing before the head is needed for recovery, so the
// head rewinds and the old generation is fenced off with a zeroed record
// slot and a cleared master record.
func (a *ARIES) truncateLog() error {
	for k := range a.dirty {
		if err := a.flushPage(k); err != nil {
			return err
		}
	}
	fence := make([]byte, masterSize+logHeaderSize)
	if err := a.store.WriteSync(a.logStart, fence); err != nil {
		return err
	}
	a.logHead = masterSize
	a.flushedLSN = masterSize
	a.logBuf = a.logBuf[:0]
	a.updatesLogged = 0
	return nil
}

// Abort implements engine.Engine: undo the transaction through the log,
// writing one compensation log record per undone update, then an abort
// record — the ARIES discipline that makes undo restartable.
func (a *ARIES) Abort() error {
	if err := a.checkAlive(); err != nil {
		return err
	}
	if !a.txActive {
		return engine.ErrNoTransaction
	}
	// The still-open range was never logged: plain local restore.
	if r := a.open; r != nil {
		a.opts.Mem.Copy(a.clock, r.db.data[r.offset:r.offset+r.length], r.before)
		a.open = nil
	}
	// Logged updates are undone newest-first with CLRs.
	for i := len(a.txUpdates) - 1; i >= 0; i-- {
		u := a.txUpdates[i]
		undoNext := nilLSN
		if i > 0 {
			undoNext = a.txUpdates[i-1].lsn
		}
		clr := logRecord{
			kind:     recCLR,
			txID:     a.lastTx,
			prevLSN:  a.txLastLSN,
			undoNext: undoNext,
			dbID:     u.db.id,
			offset:   u.offset,
			before:   u.before, // CLR redo re-applies the before-image
			after:    u.before,
		}
		lsn, err := a.appendRecord(&clr)
		if err != nil {
			return err
		}
		a.txLastLSN = lsn
		a.opts.Mem.Copy(a.clock, u.db.data[u.offset:u.offset+uint64(len(u.before))], u.before)
		a.touchPages(u.db, u.offset, uint64(len(u.before)), lsn)
		a.stats.CLRsWritten++
	}
	rec := logRecord{kind: recAbort, txID: a.lastTx, prevLSN: a.txLastLSN}
	if _, err := a.appendRecord(&rec); err != nil {
		return err
	}
	a.txActive = false
	a.txUpdates = a.txUpdates[:0]
	a.stats.Aborted++
	return nil
}

// Crash implements engine.Engine: all volatile state vanishes — working
// copies, the page tables, the unforced log tail.
func (a *ARIES) Crash(kind fault.CrashKind) error {
	a.crashed = true
	if !a.store.Survives(kind) {
		a.lost = true
	}
	for _, db := range a.dbs {
		db.stale = true
		db.data = nil
	}
	a.txActive = false
	a.open = nil
	a.txUpdates = nil
	a.logBuf = nil
	a.pageLSN = make(map[pageKey]LSN)
	a.dirty = make(map[pageKey]LSN)
	return nil
}

// Close implements engine.Engine.
func (a *ARIES) Close() error {
	a.crashed = true
	return nil
}

var _ engine.Sequential = (*ARIES)(nil)
