// Package fault enumerates the failure classes the paper discusses and
// that every storage substrate and transaction engine in this repository
// must position itself against: application crashes, operating-system
// crashes, and power outages.
package fault

import "fmt"

// CrashKind is one failure class.
type CrashKind int

const (
	// CrashProcess is an application crash; the OS and main memory keep
	// running.
	CrashProcess CrashKind = iota + 1
	// CrashOS is an operating-system crash or hang (the case the Rio
	// file cache is built to survive).
	CrashOS
	// CrashPower is a power outage; all main memory contents are lost
	// unless the machine sits behind a working UPS.
	CrashPower
)

// AllKinds lists every crash kind, for table-driven tests.
func AllKinds() []CrashKind {
	return []CrashKind{CrashProcess, CrashOS, CrashPower}
}

// String implements fmt.Stringer.
func (k CrashKind) String() string {
	switch k {
	case CrashProcess:
		return "process"
	case CrashOS:
		return "os"
	case CrashPower:
		return "power"
	default:
		return fmt.Sprintf("crash(%d)", int(k))
	}
}
