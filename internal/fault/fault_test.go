package fault_test

import (
	"testing"

	"github.com/ics-forth/perseas/internal/disk"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/riofs"
	"github.com/ics-forth/perseas/internal/riorvm"
	"github.com/ics-forth/perseas/internal/rvm"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
	"github.com/ics-forth/perseas/internal/walnet"
)

func TestAllKinds(t *testing.T) {
	kinds := fault.AllKinds()
	if len(kinds) != 3 {
		t.Fatalf("AllKinds: %d kinds, want 3", len(kinds))
	}
	seen := make(map[fault.CrashKind]bool)
	for _, k := range kinds {
		if seen[k] {
			t.Errorf("kind %v listed twice", k)
		}
		seen[k] = true
		if k == 0 {
			t.Error("zero CrashKind in AllKinds (zero must stay invalid)")
		}
	}
	for _, want := range []fault.CrashKind{fault.CrashProcess, fault.CrashOS, fault.CrashPower} {
		if !seen[want] {
			t.Errorf("AllKinds missing %v", want)
		}
	}
}

func TestCrashKindString(t *testing.T) {
	cases := []struct {
		kind fault.CrashKind
		want string
	}{
		{fault.CrashProcess, "process"},
		{fault.CrashOS, "os"},
		{fault.CrashPower, "power"},
		{fault.CrashKind(0), "crash(0)"},
		{fault.CrashKind(99), "crash(99)"},
	}
	for _, c := range cases {
		if got := c.kind.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int(c.kind), got, c.want)
		}
	}
}

// TestSurvivalMatrix pins each storage substrate's position against
// every crash class — the paper's Table 1 durability story. Magnetic
// disk and network-mirrored memory survive everything (the latter
// because a power outage on ONE machine leaves the mirrors intact);
// the Rio file cache survives OS crashes by construction but loses
// power failures unless the machine sits behind a UPS.
func TestSurvivalMatrix(t *testing.T) {
	clock := simclock.NewSim()

	dev, err := disk.New(disk.DefaultParams(8<<20), clock)
	if err != nil {
		t.Fatal(err)
	}
	diskStore := rvm.NewDiskStore(dev)

	srv := memserver.New(memserver.WithLabel("remote"))
	tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
	if err != nil {
		t.Fatal(err)
	}
	ram, err := netram.NewClient([]netram.Mirror{{Name: "remote", T: tr}})
	if err != nil {
		t.Fatal(err)
	}
	walStore, err := walnet.NewStore(ram, dev, 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	rioStore, err := riorvm.NewRioStore(riofs.New(riofs.DefaultParams(), clock), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	upsParams := riofs.DefaultParams()
	upsParams.HasUPS = true
	rioUPS, err := riorvm.NewRioStore(riofs.New(upsParams, clock), 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	substrates := []struct {
		name  string
		store rvm.StableStore
		want  map[fault.CrashKind]bool
	}{
		{"disk", diskStore, map[fault.CrashKind]bool{
			fault.CrashProcess: true, fault.CrashOS: true, fault.CrashPower: true,
		}},
		{"wal-net", walStore, map[fault.CrashKind]bool{
			fault.CrashProcess: true, fault.CrashOS: true, fault.CrashPower: true,
		}},
		{"rio", rioStore, map[fault.CrashKind]bool{
			fault.CrashProcess: true, fault.CrashOS: true, fault.CrashPower: false,
		}},
		{"rio+ups", rioUPS, map[fault.CrashKind]bool{
			fault.CrashProcess: true, fault.CrashOS: true, fault.CrashPower: true,
		}},
	}
	for _, sub := range substrates {
		for _, kind := range fault.AllKinds() {
			if got := sub.store.Survives(kind); got != sub.want[kind] {
				t.Errorf("%s.Survives(%v) = %v, want %v", sub.name, kind, got, sub.want[kind])
			}
		}
	}
}
