// Package riorvm assembles the paper's second baseline: RVM running on
// top of the Rio file cache. The write-ahead-logging protocol is
// unchanged — package rvm provides it — but the redo log and database
// images live in Rio, so a log force costs a kernel file write measured
// in microseconds instead of a magnetic-disk write measured in
// milliseconds. The price is the survival matrix: without a UPS, a power
// failure destroys the cache and with it every committed transaction,
// which is exactly the failure mode the PERSEAS two-machine mirror closes.
package riorvm

import (
	"fmt"

	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/riofs"
	"github.com/ics-forth/perseas/internal/rvm"
	"github.com/ics-forth/perseas/internal/simclock"
)

// storeRegion is the Rio region backing the whole RVM store (images +
// log), addressed by offset like a device.
const storeRegion = "riorvm.store"

// RioStore adapts a Rio file cache to rvm.StableStore.
type RioStore struct {
	rio  *riofs.Store
	size uint64
}

// NewRioStore creates (or reuses) the backing region of the given size.
func NewRioStore(rio *riofs.Store, size uint64) (*RioStore, error) {
	if err := rio.Create(storeRegion, size); err != nil {
		return nil, fmt.Errorf("riorvm: create store region: %w", err)
	}
	return &RioStore{rio: rio, size: size}, nil
}

// WriteSync implements rvm.StableStore via the file-write path: Rio makes
// the write stable the moment the kernel copy completes.
func (s *RioStore) WriteSync(offset uint64, data []byte) error {
	return s.rio.WriteFile(storeRegion, offset, data)
}

// Read implements rvm.StableStore.
func (s *RioStore) Read(offset uint64, n int) ([]byte, error) {
	return s.rio.ReadFile(storeRegion, offset, n)
}

// Size implements rvm.StableStore.
func (s *RioStore) Size() uint64 { return s.size }

// Survives implements rvm.StableStore: Rio survives process and OS
// crashes by construction; power failures only behind a UPS.
func (s *RioStore) Survives(kind fault.CrashKind) bool {
	return kind != fault.CrashPower || s.rio.Params().HasUPS
}

var _ rvm.StableStore = (*RioStore)(nil)

// New builds the RVM-on-Rio baseline over the given file cache.
func New(rio *riofs.Store, size uint64, clock simclock.Clock, opts rvm.Options) (*rvm.RVM, error) {
	store, err := NewRioStore(rio, size)
	if err != nil {
		return nil, err
	}
	if opts.Label == "" {
		opts.Label = "rvm-rio"
	}
	return rvm.New(store, clock, opts)
}
