package riorvm

import (
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/enginetest"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/riofs"
	"github.com/ics-forth/perseas/internal/rvm"
	"github.com/ics-forth/perseas/internal/simclock"
)

func newRioRVM(t *testing.T, hasUPS bool) (*rvm.RVM, *simclock.SimClock) {
	t.Helper()
	clock := simclock.NewSim()
	p := riofs.DefaultParams()
	p.HasUPS = hasUPS
	rio := riofs.New(p, clock)
	opts := rvm.DefaultOptions()
	opts.LogSize = 4 << 20
	r, err := New(rio, 16<<20, clock, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r, clock
}

func TestRioRVMConformance(t *testing.T) {
	enginetest.Run(t, "rvm-rio",
		func(t *testing.T) engine.Engine {
			r, _ := newRioRVM(t, false)
			return engine.NewSequential(r)
		},
		enginetest.Caps{
			// Rio survives software crashes but not power loss.
			SurvivesKind:    func(k fault.CrashKind) bool { return k != fault.CrashPower },
			DurableOnCommit: true,
		})
}

func TestRioRVMWithUPSConformance(t *testing.T) {
	enginetest.Run(t, "rvm-rio-ups",
		func(t *testing.T) engine.Engine {
			r, _ := newRioRVM(t, true)
			return engine.NewSequential(r)
		},
		enginetest.Caps{
			SurvivesKind:    func(fault.CrashKind) bool { return true },
			DurableOnCommit: true,
		})
}

func TestName(t *testing.T) {
	r, _ := newRioRVM(t, false)
	if got := r.Name(); got != "rvm-rio" {
		t.Errorf("Name = %q, want rvm-rio", got)
	}
}

func TestCommitCostsMicrosecondsNotMilliseconds(t *testing.T) {
	r, clock := newRioRVM(t, false)
	db, err := r.CreateDB("db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.InitDB(db); err != nil {
		t.Fatal(err)
	}
	t0 := clock.Now()
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := r.SetRange(db, 0, 64); err != nil {
		t.Fatal(err)
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	lat := clock.Now() - t0
	// The log force is a kernel file write into memory: ~2 orders of
	// magnitude faster than a magnetic-disk force, ~1-2 orders slower
	// than PERSEAS's small remote writes.
	if lat < 10*time.Microsecond || lat > time.Millisecond {
		t.Errorf("RVM-on-Rio commit = %v, want tens-of-us scale", lat)
	}
}

func TestStoreSizeTooBig(t *testing.T) {
	clock := simclock.NewSim()
	rio := riofs.New(riofs.DefaultParams(), clock)
	store, err := NewRioStore(rio, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if store.Size() != 1<<20 {
		t.Errorf("Size = %d", store.Size())
	}
	// Second store on the same cache collides on the region name.
	if _, err := NewRioStore(rio, 1<<20); err == nil {
		t.Error("duplicate store region should fail")
	}
}
