// Package walnet assembles the related-work comparator the paper
// discusses (Ioanidis, Markatos & Sevaslidou, TR-190): a write-ahead
// logging system whose log is replicated in remote main memory, replacing
// synchronous disk writes with synchronous remote-memory writes plus
// asynchronous disk writes.
//
// The WAL protocol itself is the unmodified package rvm implementation;
// only the stable store differs. Each log force copies the record into
// local memory, pushes it to the remote mirror (microseconds) and queues
// an asynchronous disk write. The paper's criticism is visible under
// sustained load: once the disk write buffer fills, the asynchronous
// writes turn synchronous and commit throughput collapses to disk
// bandwidth — while PERSEAS never touches the disk at all.
package walnet

import (
	"fmt"

	"github.com/ics-forth/perseas/internal/disk"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/rvm"
	"github.com/ics-forth/perseas/internal/simclock"
)

// storeRegion names the mirrored store region on the remote nodes.
const storeRegion = "walnet.store"

// Store implements rvm.StableStore over a remote-memory mirror with
// asynchronous disk write-behind.
type Store struct {
	net    *netram.Client
	region *netram.Region
	dev    *disk.Disk
}

// NewStore builds the store. The mirror client should have alignment
// expansion disabled (netram.WithoutAlignment) because after a local
// crash the region's local buffer no longer matches the mirrors, and
// expanded pushes would leak stale neighbouring bytes.
func NewStore(net *netram.Client, dev *disk.Disk, size uint64) (*Store, error) {
	if size > dev.Size() {
		return nil, fmt.Errorf("walnet: store size %d exceeds disk size %d", size, dev.Size())
	}
	region, err := net.Malloc(storeRegion, size)
	if err != nil {
		return nil, fmt.Errorf("walnet: allocate mirror: %w", err)
	}
	return &Store{net: net, region: region, dev: dev}, nil
}

// WriteSync implements rvm.StableStore: the write is stable once the
// remote mirror holds it; the disk copy trails asynchronously and only
// costs time when the write buffer is full.
func (s *Store) WriteSync(offset uint64, data []byte) error {
	copy(s.region.Local[offset:], data)
	if err := s.net.Push(s.region, offset, uint64(len(data))); err != nil {
		return fmt.Errorf("walnet: push to mirror: %w", err)
	}
	if err := s.dev.WriteAsync(offset, data); err != nil {
		return fmt.Errorf("walnet: write-behind: %w", err)
	}
	return nil
}

// Read implements rvm.StableStore: the remote mirror is authoritative
// (it holds writes the disk may not have drained yet); the disk is the
// fallback when every mirror is down.
func (s *Store) Read(offset uint64, n int) ([]byte, error) {
	data, err := s.net.Fetch(s.region, offset, uint64(n))
	if err == nil {
		return data, nil
	}
	s.dev.Flush()
	return s.dev.Read(offset, n)
}

// Size implements rvm.StableStore.
func (s *Store) Size() uint64 { return s.region.Size() }

// Survives implements rvm.StableStore: the remote mirror is an
// independent failure domain and the disk backs it up, so local crashes
// of every kind are survivable.
func (s *Store) Survives(fault.CrashKind) bool { return true }

var _ rvm.StableStore = (*Store)(nil)

// New builds the WAL-on-network-memory comparator engine.
func New(net *netram.Client, dev *disk.Disk, size uint64, clock simclock.Clock, opts rvm.Options) (*rvm.RVM, error) {
	store, err := NewStore(net, dev, size)
	if err != nil {
		return nil, err
	}
	if opts.Label == "" {
		opts.Label = "wal-net"
	}
	return rvm.New(store, clock, opts)
}
