package walnet

import (
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/disk"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/enginetest"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/rvm"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

func newWalnet(t *testing.T, mutate ...func(*rvm.Options)) (*rvm.RVM, *simclock.SimClock, *disk.Disk) {
	t.Helper()
	clock := simclock.NewSim()
	srv := memserver.New()
	tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
	if err != nil {
		t.Fatal(err)
	}
	net, err := netram.NewClient(
		[]netram.Mirror{{Name: "remote", T: tr}}, netram.WithoutAlignment())
	if err != nil {
		t.Fatal(err)
	}
	dev, err := disk.New(disk.DefaultParams(32<<20), clock)
	if err != nil {
		t.Fatal(err)
	}
	opts := rvm.DefaultOptions()
	opts.LogSize = 4 << 20
	for _, m := range mutate {
		m(&opts)
	}
	r, err := New(net, dev, 16<<20, clock, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r, clock, dev
}

func TestWalnetConformance(t *testing.T) {
	enginetest.Run(t, "wal-net",
		func(t *testing.T) engine.Engine {
			r, _, _ := newWalnet(t)
			return engine.NewSequential(r)
		},
		enginetest.Caps{
			// The log's authoritative copy lives on the remote node,
			// an independent failure domain, with the disk behind it.
			SurvivesKind:    func(fault.CrashKind) bool { return true },
			DurableOnCommit: true,
		})
}

func TestName(t *testing.T) {
	r, _, _ := newWalnet(t)
	if got := r.Name(); got != "wal-net" {
		t.Errorf("Name = %q", got)
	}
}

func TestLightLoadCommitIsFast(t *testing.T) {
	r, clock, _ := newWalnet(t)
	db, err := r.CreateDB("db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.InitDB(db); err != nil {
		t.Fatal(err)
	}
	t0 := clock.Now()
	if err := r.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := r.SetRange(db, 0, 64); err != nil {
		t.Fatal(err)
	}
	if err := r.Commit(); err != nil {
		t.Fatal(err)
	}
	lat := clock.Now() - t0
	// One remote write plus an absorbed async disk write: microseconds.
	if lat > time.Millisecond {
		t.Errorf("light-load commit = %v, want microseconds", lat)
	}
}

func TestSustainedLoadDegradesToDiskThroughput(t *testing.T) {
	// The paper's critique of this scheme: under heavy load the write
	// buffers fill and the asynchronous disk writes become synchronous,
	// tying commit throughput to disk bandwidth.
	r, clock, dev := newWalnet(t)
	db, err := r.CreateDB("db", 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.InitDB(db); err != nil {
		t.Fatal(err)
	}

	var warm, sustained time.Duration
	const txBytes = 64 << 10
	measure := func(n int) time.Duration {
		t0 := clock.Now()
		for i := 0; i < n; i++ {
			if err := r.Begin(); err != nil {
				t.Fatal(err)
			}
			if err := r.SetRange(db, uint64(i%64)*txBytes, txBytes); err != nil {
				t.Fatal(err)
			}
			if err := r.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		return (clock.Now() - t0) / time.Duration(n)
	}
	warm = measure(3)       // fits the write buffer
	sustained = measure(40) // saturates it
	if sustained < warm*2 {
		t.Errorf("sustained per-tx cost %v should collapse well below buffer-absorbed cost %v",
			sustained, warm)
	}
	if dev.Stats().Stalls == 0 {
		t.Error("sustained load should have stalled on the write buffer")
	}
}

func TestStoreRejectsOversize(t *testing.T) {
	clock := simclock.NewSim()
	srv := memserver.New()
	tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
	if err != nil {
		t.Fatal(err)
	}
	net, err := netram.NewClient([]netram.Mirror{{Name: "r", T: tr}})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := disk.New(disk.DefaultParams(1<<20), clock)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(net, dev, 2<<20); err == nil {
		t.Error("store larger than disk should be rejected")
	}
}
