// Package rig assembles ready-to-run laboratory set-ups: each transaction
// engine wired to its substrates over a shared deterministic clock. The
// benchmark harness, the command-line tools and the Go benchmarks all
// build their engines here so every reproduced figure uses identical
// configurations.
package rig

import (
	"fmt"

	"github.com/ics-forth/perseas/internal/aries"
	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/disk"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/flight"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/riofs"
	"github.com/ics-forth/perseas/internal/riorvm"
	"github.com/ics-forth/perseas/internal/router"
	"github.com/ics-forth/perseas/internal/rvm"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/trace"
	"github.com/ics-forth/perseas/internal/transport"
	"github.com/ics-forth/perseas/internal/vista"
	"github.com/ics-forth/perseas/internal/walnet"
)

// Config sizes the laboratory.
type Config struct {
	// Mirrors is the PERSEAS/WAL-net replication degree (>= 1).
	Mirrors int
	// Spares is how many standby memory nodes to provision beyond the
	// mirror set. Spares idle until a guardian promotes one to replace
	// a dead mirror.
	Spares int
	// DeviceSize is the simulated disk capacity for disk-backed
	// engines.
	DeviceSize uint64
	// StoreSize is the image+log store size for Rio/WAL-net engines.
	StoreSize uint64
	// LogSize is the redo log capacity for WAL engines.
	LogSize uint64
	// UndoLogSize is the PERSEAS/Vista undo log capacity.
	UndoLogSize uint64
	// UPS marks Rio machines as UPS-protected.
	UPS bool
	// NoAlignment disables the PERSEAS 64-byte push expansion
	// (ablation).
	NoAlignment bool
	// NoRemoteUndo disables the PERSEAS remote undo-log push
	// (ablation; breaks recoverability, measurement only).
	NoRemoteUndo bool
	// HardwareMirroring models a NIC with transparent mirroring support
	// (PRAM / Telegraphos / SHRIMP): one store reaches every mirror for
	// the price of one.
	HardwareMirroring bool
	// SCIParams overrides the interconnect timing constants (used by
	// the technology-trend experiment). Zero value selects the
	// calibrated defaults.
	SCIParams *sci.Params
	// DiskParams overrides the magnetic-disk timing for disk-backed
	// engines; nil selects the defaults for DeviceSize.
	DiskParams *disk.Params
	// GroupCommit enables RVM group commit.
	GroupCommit bool
	// GroupSize is the RVM group-commit batch bound.
	GroupSize int
	// Tracer, when non-nil, records per-transaction span trees in
	// PERSEAS labs. The recorder's clock is pointed at the lab's
	// SimClock, so span timestamps are modelled time; recording never
	// advances the clock, leaving reproduced figures untouched.
	Tracer *trace.Recorder
	// Flight, when non-nil, is the anomaly flight recorder every
	// shard's netram client reports into. Like the tracer it only
	// reads the clock, so enabling it must not move a figure.
	Flight *flight.Recorder
	// Shards partitions the PERSEAS region namespace across this many
	// independent instances behind a router (0 and 1 both mean the plain
	// unsharded library). Each shard gets its own mirror set, conflict
	// table and undo logs on the shared clock.
	Shards int
	// RouterSingle forces the router wrapper even at one shard. The
	// single-shard router is a pure pass-through — identical mirrors,
	// labels and commit path — so figures must not move; the byte-identity
	// regression test builds labs both ways and compares output.
	RouterSingle bool
	// Quorum, when positive, makes pushes durable at this many mirror
	// acks instead of all of them (netram.WithQuorum); stragglers catch
	// up asynchronously. Zero keeps the historical all-ack join, so
	// every reproduced figure is untouched.
	Quorum int
	// RecoveryParallelism, when > 1, lets PERSEAS crash recovery use
	// that many workers per phase (core.WithRecoveryParallelism). 0 and
	// 1 keep the paper's serial recovery loop, so reproduced recovery
	// figures are untouched.
	RecoveryParallelism int
	// RebuildPipeline, when > 1, double-buffers the guardian rebuild's
	// bulk copy at that read-ahead depth and stripes its reads across
	// the surviving mirrors (netram.WithRebuildPipeline). 0 and 1 keep
	// the sequential copy loop.
	RebuildPipeline int
}

// DefaultConfig fits the paper's benchmarks: databases up to a few tens
// of megabytes, logs sized generously.
func DefaultConfig() Config {
	return Config{
		Mirrors:     1,
		DeviceSize:  96 << 20,
		StoreSize:   64 << 20,
		LogSize:     16 << 20,
		UndoLogSize: 8 << 20,
		GroupSize:   32,
	}
}

// Lab is one wired engine plus the handles tests and benchmarks poke at.
type Lab struct {
	Engine engine.Engine
	Clock  *simclock.SimClock
	// Servers holds the remote memory nodes of network-RAM engines.
	Servers []*memserver.Server
	// Net is the network-RAM client of PERSEAS/WAL-net labs.
	Net *netram.Client
	// SpareServers holds the standby memory nodes (Config.Spares of
	// them) a guardian may promote.
	SpareServers []*memserver.Server
	// Spares are the standby nodes as ready replacement mirrors, in
	// promotion order.
	Spares []netram.Mirror
	// Dev is the magnetic disk of disk-backed labs.
	Dev *disk.Disk
	// Rio is the file cache of Rio-backed labs.
	Rio *riofs.Store
	// Router is the shard router of sharded PERSEAS labs (also set with
	// RouterSingle). Engine aliases it.
	Router *router.Router
	// ShardLabs holds each shard's substrate handles in shard order. For
	// compatibility, the Lab-level Servers/Net/Spares fields alias shard
	// 0's.
	ShardLabs []*ShardLab
}

// ShardLab is one shard's slice of a sharded PERSEAS lab.
type ShardLab struct {
	Lib          *core.Library
	Net          *netram.Client
	Servers      []*memserver.Server
	Spares       []netram.Mirror
	SpareServers []*memserver.Server
}

// Builder constructs one lab; the string names the engine it builds.
type Builder struct {
	Name  string
	Build func(Config) (*Lab, error)
}

// sciParams picks the configured or default interconnect constants.
func (cfg Config) sciParams() sci.Params {
	if cfg.SCIParams != nil {
		return *cfg.SCIParams
	}
	return sci.DefaultParams()
}

// diskParams picks the configured or default disk constants.
func (cfg Config) diskParams() disk.Params {
	if cfg.DiskParams != nil {
		return *cfg.DiskParams
	}
	return disk.DefaultParams(cfg.DeviceSize)
}

// newNetRAM wires a mirror set over one clock. With hardware mirroring
// the whole group hides behind one transport whose NIC duplicates every
// store; otherwise each mirror is a separate software-managed node.
func newNetRAM(cfg Config, clock *simclock.SimClock, opts ...netram.Option) (*netram.Client, []*memserver.Server, error) {
	return newNetRAMLabeled(cfg, clock, "", opts...)
}

// newNetRAMLabeled is newNetRAM with a node-label prefix, so each shard
// of a sharded lab gets a distinguishable mirror set. The empty prefix
// reproduces the historical labels exactly.
func newNetRAMLabeled(cfg Config, clock *simclock.SimClock, prefix string, opts ...netram.Option) (*netram.Client, []*memserver.Server, error) {
	if cfg.Mirrors < 1 {
		return nil, nil, fmt.Errorf("rig: mirrors = %d, need >= 1", cfg.Mirrors)
	}
	params := cfg.sciParams()
	var servers []*memserver.Server
	for i := 0; i < cfg.Mirrors; i++ {
		servers = append(servers, memserver.New(memserver.WithLabel(fmt.Sprintf("%sremote-%d", prefix, i))))
	}
	var mirrors []netram.Mirror
	if cfg.HardwareMirroring {
		hw, err := transport.NewHWMirror(servers, params, clock)
		if err != nil {
			return nil, nil, err
		}
		mirrors = []netram.Mirror{{Name: prefix + "hw-group", T: hw}}
	} else {
		for i, srv := range servers {
			// Mirror i sits i hops further down the SCI ring.
			tr, err := transport.NewInProc(srv, params, clock, transport.WithHops(i, params))
			if err != nil {
				return nil, nil, err
			}
			mirrors = append(mirrors, netram.Mirror{Name: srv.Label(), T: tr})
		}
	}
	client, err := netram.NewClient(mirrors, opts...)
	if err != nil {
		return nil, nil, err
	}
	return client, servers, nil
}

// newSpares provisions the standby node pool on the same clock and
// interconnect model as the mirror set. A spare sits one hop past the
// farthest mirror — the next idle workstation down the ring.
func newSpares(cfg Config, clock *simclock.SimClock) ([]netram.Mirror, []*memserver.Server, error) {
	return newSparesLabeled(cfg, clock, "")
}

// newSparesLabeled is newSpares with a node-label prefix (see
// newNetRAMLabeled).
func newSparesLabeled(cfg Config, clock *simclock.SimClock, prefix string) ([]netram.Mirror, []*memserver.Server, error) {
	params := cfg.sciParams()
	var spares []netram.Mirror
	var servers []*memserver.Server
	for i := 0; i < cfg.Spares; i++ {
		srv := memserver.New(memserver.WithLabel(fmt.Sprintf("%sspare-%d", prefix, i)))
		tr, err := transport.NewInProc(srv, params, clock, transport.WithHops(cfg.Mirrors+i, params))
		if err != nil {
			return nil, nil, err
		}
		spares = append(spares, netram.Mirror{Name: srv.Label(), T: tr})
		servers = append(servers, srv)
	}
	return spares, servers, nil
}

// NewPerseas builds the PERSEAS lab: the plain library by default, or
// Config.Shards independent instances behind a router. Every shard rides
// the same simulated clock and interconnect model; at one shard without
// RouterSingle the construction is exactly the historical one.
func NewPerseas(cfg Config) (*Lab, error) {
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	clock := simclock.NewSim()
	var nopts []netram.Option
	if cfg.NoAlignment {
		nopts = append(nopts, netram.WithoutAlignment())
	}
	if cfg.Quorum > 0 {
		nopts = append(nopts, netram.WithQuorum(cfg.Quorum))
	}
	if cfg.RebuildPipeline > 1 {
		nopts = append(nopts, netram.WithRebuildPipeline(cfg.RebuildPipeline))
	}
	copts := []core.Option{core.WithUndoLogSize(cfg.UndoLogSize)}
	if cfg.NoRemoteUndo {
		copts = append(copts, core.WithUnsafeNoRemoteUndo())
	}
	if cfg.Tracer != nil {
		copts = append(copts, core.WithTracer(cfg.Tracer))
	}
	if cfg.Flight != nil {
		copts = append(copts, core.WithFlightRecorder(cfg.Flight))
	}
	if cfg.RecoveryParallelism > 1 {
		copts = append(copts, core.WithRecoveryParallelism(cfg.RecoveryParallelism))
	}

	buildShard := func(prefix string) (*ShardLab, error) {
		net, servers, err := newNetRAMLabeled(cfg, clock, prefix, nopts...)
		if err != nil {
			return nil, err
		}
		if cfg.Tracer != nil {
			net.SetTracer(cfg.Tracer)
		}
		if cfg.Flight != nil {
			net.SetFlight(cfg.Flight)
		}
		lib, err := core.Init(net, clock, copts...)
		if err != nil {
			return nil, err
		}
		spares, spareServers, err := newSparesLabeled(cfg, clock, prefix)
		if err != nil {
			return nil, err
		}
		return &ShardLab{Lib: lib, Net: net, Servers: servers,
			Spares: spares, SpareServers: spareServers}, nil
	}

	if shards == 1 && !cfg.RouterSingle {
		sl, err := buildShard("")
		if err != nil {
			return nil, err
		}
		return &Lab{Engine: sl.Lib, Clock: clock, Servers: sl.Servers, Net: sl.Net,
			Spares: sl.Spares, SpareServers: sl.SpareServers}, nil
	}

	lab := &Lab{Clock: clock}
	var libs []*core.Library
	for s := 0; s < shards; s++ {
		prefix := ""
		if shards > 1 {
			prefix = fmt.Sprintf("shard%d-", s)
		}
		sl, err := buildShard(prefix)
		if err != nil {
			return nil, err
		}
		lab.ShardLabs = append(lab.ShardLabs, sl)
		libs = append(libs, sl.Lib)
	}
	r, err := router.New(libs)
	if err != nil {
		return nil, err
	}
	lab.Engine = r
	lab.Router = r
	lab.Servers = lab.ShardLabs[0].Servers
	lab.Net = lab.ShardLabs[0].Net
	lab.Spares = lab.ShardLabs[0].Spares
	lab.SpareServers = lab.ShardLabs[0].SpareServers
	return lab, nil
}

// NewRVM builds the classic disk-backed RVM lab.
func NewRVM(cfg Config) (*Lab, error) {
	clock := simclock.NewSim()
	dev, err := disk.New(cfg.diskParams(), clock)
	if err != nil {
		return nil, err
	}
	opts := rvm.DefaultOptions()
	opts.LogSize = cfg.LogSize
	opts.GroupCommit = cfg.GroupCommit
	opts.GroupSize = cfg.GroupSize
	eng, err := rvm.New(rvm.NewDiskStore(dev), clock, opts)
	if err != nil {
		return nil, err
	}
	return &Lab{Engine: engine.NewSequential(eng), Clock: clock, Dev: dev}, nil
}

// NewRioRVM builds the RVM-on-Rio lab.
func NewRioRVM(cfg Config) (*Lab, error) {
	clock := simclock.NewSim()
	p := riofs.DefaultParams()
	p.HasUPS = cfg.UPS
	rio := riofs.New(p, clock)
	opts := rvm.DefaultOptions()
	opts.LogSize = cfg.LogSize
	eng, err := riorvm.New(rio, cfg.StoreSize, clock, opts)
	if err != nil {
		return nil, err
	}
	return &Lab{Engine: engine.NewSequential(eng), Clock: clock, Rio: rio}, nil
}

// NewVista builds the Vista lab.
func NewVista(cfg Config) (*Lab, error) {
	clock := simclock.NewSim()
	p := riofs.DefaultParams()
	p.HasUPS = cfg.UPS
	rio := riofs.New(p, clock)
	opts := vista.DefaultOptions()
	opts.UndoLogSize = cfg.UndoLogSize
	eng, err := vista.New(rio, clock, opts)
	if err != nil {
		return nil, err
	}
	return &Lab{Engine: engine.NewSequential(eng), Clock: clock, Rio: rio}, nil
}

// NewWalnet builds the WAL-on-network-memory lab.
func NewWalnet(cfg Config) (*Lab, error) {
	clock := simclock.NewSim()
	net, servers, err := newNetRAM(cfg, clock, netram.WithoutAlignment())
	if err != nil {
		return nil, err
	}
	dev, err := disk.New(cfg.diskParams(), clock)
	if err != nil {
		return nil, err
	}
	opts := rvm.DefaultOptions()
	opts.LogSize = cfg.LogSize
	eng, err := walnet.New(net, dev, cfg.StoreSize, clock, opts)
	if err != nil {
		return nil, err
	}
	return &Lab{Engine: engine.NewSequential(eng), Clock: clock, Servers: servers, Net: net, Dev: dev}, nil
}

// NewARIES builds the ARIES reference baseline (cited by the paper as a
// WAL exemplar; not part of its measured comparison, so not in All).
func NewARIES(cfg Config) (*Lab, error) {
	clock := simclock.NewSim()
	dev, err := disk.New(cfg.diskParams(), clock)
	if err != nil {
		return nil, err
	}
	opts := aries.DefaultOptions()
	opts.LogSize = cfg.LogSize
	eng, err := aries.New(rvm.NewDiskStore(dev), clock, opts)
	if err != nil {
		return nil, err
	}
	return &Lab{Engine: engine.NewSequential(eng), Clock: clock, Dev: dev}, nil
}

// All returns the builders of every engine, in the order the comparison
// tables report them.
func All() []Builder {
	return []Builder{
		{Name: "perseas", Build: NewPerseas},
		{Name: "rvm", Build: NewRVM},
		{Name: "rvm-group", Build: func(cfg Config) (*Lab, error) {
			cfg.GroupCommit = true
			return NewRVM(cfg)
		}},
		{Name: "rvm-rio", Build: NewRioRVM},
		{Name: "vista", Build: NewVista},
		{Name: "wal-net", Build: NewWalnet},
	}
}
