package rig

import (
	"testing"
)

func TestAllBuildersProduceWorkingEngines(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			lab, err := b.Build(DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer lab.Engine.Close()
			if got := lab.Engine.Name(); got != b.Name {
				t.Errorf("engine name %q != builder name %q", got, b.Name)
			}
			if lab.Clock == nil {
				t.Fatal("lab has no clock")
			}
			db, err := lab.Engine.CreateDB("smoke", 256)
			if err != nil {
				t.Fatal(err)
			}
			if err := lab.Engine.InitDB(db); err != nil {
				t.Fatal(err)
			}
			t0 := lab.Clock.Now()
			tx, err := lab.Engine.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.SetRange(db, 0, 16); err != nil {
				t.Fatal(err)
			}
			copy(db.Bytes(), "rig smoke test!!")
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			if lab.Clock.Now() <= t0 {
				t.Error("transaction charged no virtual time")
			}
		})
	}
}

func TestARIESBuilder(t *testing.T) {
	lab, err := NewARIES(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Engine.Close()
	if lab.Engine.Name() != "aries" || lab.Dev == nil {
		t.Errorf("aries lab wrong: name=%q", lab.Engine.Name())
	}
	db, err := lab.Engine.CreateDB("db", 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.Engine.InitDB(db); err != nil {
		t.Fatal(err)
	}
	tx, err := lab.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 8); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestHardwareMirroringConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mirrors = 3
	cfg.HardwareMirroring = true
	lab, err := NewPerseas(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Three nodes behind one hardware-mirroring transport.
	if len(lab.Servers) != 3 || lab.Net.Mirrors() != 1 {
		t.Errorf("servers=%d netMirrors=%d, want 3/1", len(lab.Servers), lab.Net.Mirrors())
	}
}

func TestPerseasMirrorCount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mirrors = 3
	lab, err := NewPerseas(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(lab.Servers) != 3 || lab.Net.Mirrors() != 3 {
		t.Errorf("servers=%d mirrors=%d, want 3", len(lab.Servers), lab.Net.Mirrors())
	}
	cfg.Mirrors = 0
	if _, err := NewPerseas(cfg); err == nil {
		t.Error("zero mirrors should be rejected")
	}
}

func TestLabHandlesExposed(t *testing.T) {
	perseas, err := NewPerseas(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if perseas.Net == nil || len(perseas.Servers) == 0 || perseas.Dev != nil {
		t.Error("perseas lab handles wrong")
	}
	rvm, err := NewRVM(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rvm.Dev == nil || rvm.Net != nil {
		t.Error("rvm lab handles wrong")
	}
	rio, err := NewRioRVM(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rio.Rio == nil {
		t.Error("rio lab handles wrong")
	}
	vista, err := NewVista(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if vista.Rio == nil {
		t.Error("vista lab handles wrong")
	}
	wal, err := NewWalnet(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if wal.Dev == nil || wal.Net == nil {
		t.Error("walnet lab handles wrong")
	}
}

func TestAblationConfigsApply(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoRemoteUndo = true
	cfg.NoAlignment = true
	lab, err := NewPerseas(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db, err := lab.Engine.CreateDB("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.Engine.InitDB(db); err != nil {
		t.Fatal(err)
	}
	tx, err := lab.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 32); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// No remote undo: the mirror saw the db push and the commit word
	// and the metadata/directory pushes, but no undo-log write.
	st := lab.Servers[0].Stats()
	if st.WriteOps == 0 {
		t.Fatal("no writes reached the mirror")
	}
}

func TestPerseasSparePool(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mirrors = 2
	cfg.Spares = 2
	lab, err := NewPerseas(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(lab.Spares) != 2 || len(lab.SpareServers) != 2 {
		t.Fatalf("spares = %d/%d, want 2/2", len(lab.Spares), len(lab.SpareServers))
	}
	if lab.Spares[0].Name != "spare-0" || lab.SpareServers[1].Label() != "spare-1" {
		t.Fatalf("spare labels: %q %q", lab.Spares[0].Name, lab.SpareServers[1].Label())
	}
	// Spares idle: provisioning them charges no virtual time beyond
	// what an identical spare-less lab pays, and holds no memory until
	// a guardian promotes one.
	base := cfg
	base.Spares = 0
	plain, err := NewPerseas(base)
	if err != nil {
		t.Fatal(err)
	}
	if lab.Clock.Now() != plain.Clock.Now() {
		t.Fatalf("spares shifted the clock: %v vs %v", lab.Clock.Now(), plain.Clock.Now())
	}
	for i, srv := range lab.SpareServers {
		if srv.Held() != 0 {
			t.Fatalf("spare %d holds %d bytes before promotion", i, srv.Held())
		}
	}
	// Each spare transport answers probes out of band.
	if err := lab.Spares[0].T.Ping(); err != nil {
		t.Fatal(err)
	}
}
