package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/ics-forth/perseas/internal/engine"
)

// ConcurrentWorkload is a workload whose transactions may run from many
// goroutines at once. ConcurrentTx must declare every range before
// touching a byte, so the engine's conflict table arbitrates row
// ownership; a lost arbitration returns engine.ErrConflict and the
// runner retries.
type ConcurrentWorkload interface {
	Workload
	ConcurrentTx(e engine.Engine, rng *rand.Rand) error
}

// WorkerStats counts one worker's outcomes.
type WorkerStats struct {
	// Committed transactions.
	Committed uint64
	// Conflicts lost to another worker's range claim (each one aborted
	// the handle and was retried).
	Conflicts uint64
}

// ConcurrentResult aggregates a concurrent run. Unlike Result it is
// measured on the wall clock: concurrency pays off in real elapsed
// time, which the serialised virtual clock cannot express.
type ConcurrentResult struct {
	Engine    string
	Workload  string
	Workers   int
	Elapsed   time.Duration
	Committed uint64
	Conflicts uint64
	TPS       float64
	PerWorker []WorkerStats
}

// String renders one row.
func (r ConcurrentResult) String() string {
	return fmt.Sprintf("%-10s %-14s %2d workers  %7d tx  %7d conflicts  %12v  %10.0f tps",
		r.Engine, r.Workload, r.Workers, r.Committed, r.Conflicts, r.Elapsed, r.TPS)
}

// RunConcurrent executes txsPerWorker committed transactions on each of
// the given number of workers, all sharing one engine. Conflicted
// transactions are retried and counted; any other error stops the run.
func RunConcurrent(e engine.Engine, w ConcurrentWorkload, workers, txsPerWorker int, seed int64) (ConcurrentResult, error) {
	if workers < 1 {
		return ConcurrentResult{}, fmt.Errorf("bench: need at least 1 worker, got %d", workers)
	}
	if err := w.Setup(e); err != nil {
		return ConcurrentResult{}, fmt.Errorf("bench: setup %s on %s: %w", w.Name(), e.Name(), err)
	}
	stats := make([]WorkerStats, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)))
			for stats[i].Committed < uint64(txsPerWorker) {
				switch err := w.ConcurrentTx(e, rng); {
				case err == nil:
					stats[i].Committed++
				case errors.Is(err, engine.ErrConflict):
					stats[i].Conflicts++
				default:
					errs[i] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return ConcurrentResult{}, fmt.Errorf("bench: worker %d: %w", i, err)
		}
	}
	res := ConcurrentResult{
		Engine:    e.Name(),
		Workload:  w.Name(),
		Workers:   workers,
		Elapsed:   elapsed,
		PerWorker: stats,
	}
	for _, s := range stats {
		res.Committed += s.Committed
		res.Conflicts += s.Conflicts
	}
	if elapsed > 0 {
		res.TPS = float64(res.Committed) / elapsed.Seconds()
	}
	return res, nil
}
