package bench

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync/atomic"

	"github.com/ics-forth/perseas/internal/engine"
)

// DebitCredit is the paper's second benchmark: it processes banking
// transactions very similar to TPC-B. Each transaction debits or credits
// a random account, updates the owning teller's and branch's balances,
// and appends a history record — four small writes spread across four
// tables, the access pattern main-memory transaction systems live on.
type DebitCredit struct {
	// Branches scales the database per the TPC-B layout: 10 tellers
	// and AccountsPerBranch accounts per branch.
	Branches          int
	AccountsPerBranch int

	accounts engine.DB
	tellers  engine.DB
	branches engine.DB
	history  engine.DB

	historyLen  uint64
	historyNext uint64
	// histCounter is the history-slot cursor concurrent transactions
	// claim atomically instead of historyNext.
	histCounter atomic.Uint64
}

// Record sizes follow the TPC-B style: fat rows padded for realism.
const (
	accountRecord = 100
	tellerRecord  = 100
	branchRecord  = 100
	historyRecord = 50
	tellersPerBr  = 10
)

// NewDebitCredit builds the workload; zero values select the defaults
// the paper-scale databases use (4 branches, 2500 accounts each — a
// ~1 MB account table).
func NewDebitCredit(branches, accountsPerBranch int) (*DebitCredit, error) {
	if branches <= 0 {
		branches = 4
	}
	if accountsPerBranch <= 0 {
		accountsPerBranch = 2500
	}
	return &DebitCredit{Branches: branches, AccountsPerBranch: accountsPerBranch}, nil
}

// Name implements Workload.
func (d *DebitCredit) Name() string { return "debit-credit" }

// DBBytes reports the total database footprint, used by the DB-size
// invariance table.
func (d *DebitCredit) DBBytes() uint64 {
	return uint64(d.Branches*d.AccountsPerBranch)*accountRecord +
		uint64(d.Branches*tellersPerBr)*tellerRecord +
		uint64(d.Branches)*branchRecord +
		d.historyBytes()
}

func (d *DebitCredit) historyBytes() uint64 {
	// History sized to hold ~4 records per account before wrapping.
	return uint64(d.Branches*d.AccountsPerBranch) * historyRecord * 4
}

// Setup implements Workload.
func (d *DebitCredit) Setup(e engine.Engine) error {
	var err error
	if d.accounts, err = initDB(e, "accounts",
		uint64(d.Branches*d.AccountsPerBranch)*accountRecord); err != nil {
		return err
	}
	if d.tellers, err = initDB(e, "tellers",
		uint64(d.Branches*tellersPerBr)*tellerRecord); err != nil {
		return err
	}
	if d.branches, err = initDB(e, "branches",
		uint64(d.Branches)*branchRecord); err != nil {
		return err
	}
	d.historyLen = d.historyBytes()
	if d.history, err = initDB(e, "history", d.historyLen); err != nil {
		return err
	}
	d.historyNext = 0
	return nil
}

// Attach re-opens the workload's tables on e instead of creating them —
// how a fresh client process (with its own replica of the database)
// joins tables another engine instance set up. cursorSeed staggers the
// history-slot cursor so independent clients spread over the history
// table instead of all fighting for slot zero.
func (d *DebitCredit) Attach(e engine.Engine, cursorSeed uint64) error {
	var err error
	if d.accounts, err = e.OpenDB("accounts"); err != nil {
		return err
	}
	if d.tellers, err = e.OpenDB("tellers"); err != nil {
		return err
	}
	if d.branches, err = e.OpenDB("branches"); err != nil {
		return err
	}
	if d.history, err = e.OpenDB("history"); err != nil {
		return err
	}
	d.historyLen = d.historyBytes()
	d.histCounter.Store(cursorSeed)
	return nil
}

// AccountsDelta sums every account balance's distance from its initial
// fill. Each committed transaction moves the sum by exactly its delta,
// so a driver keeping a ledger of committed deltas reconciles it
// against this to prove no committed transaction was lost.
func (d *DebitCredit) AccountsDelta() int64 {
	return sumBalanceDelta(d.accounts.Bytes(), accountRecord)
}

// Tx implements Workload: one TPC-B-style transaction.
func (d *DebitCredit) Tx(e engine.Engine, rng *rand.Rand) error {
	branch := rng.Intn(d.Branches)
	teller := branch*tellersPerBr + rng.Intn(tellersPerBr)
	account := branch*d.AccountsPerBranch + rng.Intn(d.AccountsPerBranch)
	delta := rng.Int63n(1_000_000) - 500_000

	accOff := uint64(account) * accountRecord
	telOff := uint64(teller) * tellerRecord
	brOff := uint64(branch) * branchRecord
	histOff := d.historyNext
	d.historyNext += historyRecord
	if d.historyNext+historyRecord > d.historyLen {
		d.historyNext = 0
	}

	// TPC-B updates just the 8-byte balance column of each row; the
	// history row is inserted whole. This small-write pattern is what
	// main-memory transaction systems are built for.
	accBal := updateBalance(d.accounts.Bytes()[accOff:accOff+8], delta)
	telBal := updateBalance(d.tellers.Bytes()[telOff:telOff+8], delta)
	brBal := updateBalance(d.branches.Bytes()[brOff:brOff+8], delta)

	hist := make([]byte, historyRecord)
	binary.BigEndian.PutUint64(hist[0:], uint64(account))
	binary.BigEndian.PutUint64(hist[8:], uint64(teller))
	binary.BigEndian.PutUint64(hist[16:], uint64(branch))
	binary.BigEndian.PutUint64(hist[24:], uint64(delta))

	return runTx(e, []rangeWrite{
		{db: d.accounts, offset: accOff, data: accBal},
		{db: d.tellers, offset: telOff, data: telBal},
		{db: d.branches, offset: brOff, data: brBal},
		{db: d.history, offset: histOff, data: hist},
	})
}

// ConcurrentTx implements ConcurrentWorkload: the same TPC-B
// transaction, restructured to be safe from many goroutines. Every row
// is declared with SetRange FIRST — the engine's conflict table then
// guarantees this transaction owns those bytes — and only afterwards
// read, modified and written in place; the history slot comes from an
// atomic cursor. A clash on a shared teller or branch row surfaces as
// engine.ErrConflict, which the caller treats as a retry.
func (d *DebitCredit) ConcurrentTx(e engine.Engine, rng *rand.Rand) error {
	_, err := d.ConcurrentTxDelta(e, rng)
	return err
}

// ConcurrentTxDelta is ConcurrentTx, additionally returning the
// committed transaction's balance delta so drivers can keep a
// committed-delta ledger (see AccountsDelta). The delta is meaningful
// only when the returned error is nil.
func (d *DebitCredit) ConcurrentTxDelta(e engine.Engine, rng *rand.Rand) (int64, error) {
	branch := rng.Intn(d.Branches)
	teller := branch*tellersPerBr + rng.Intn(tellersPerBr)
	account := branch*d.AccountsPerBranch + rng.Intn(d.AccountsPerBranch)
	delta := rng.Int63n(1_000_000) - 500_000

	accOff := uint64(account) * accountRecord
	telOff := uint64(teller) * tellerRecord
	brOff := uint64(branch) * branchRecord
	slots := d.historyLen / historyRecord
	histOff := (d.histCounter.Add(1) - 1) % slots * historyRecord

	tx, err := e.Begin()
	if err != nil {
		return 0, err
	}
	// Claims go most-contended-first (branch, then teller, then account):
	// a lost arbitration then aborts before any undo record has been
	// pushed to the mirrors, making retries cheap.
	for _, c := range []struct {
		db      engine.DB
		off, ln uint64
	}{
		{d.branches, brOff, 8},
		{d.tellers, telOff, 8},
		{d.accounts, accOff, 8},
		{d.history, histOff, historyRecord},
	} {
		if err := tx.SetRange(c.db, c.off, c.ln); err != nil {
			abortErr := tx.Abort()
			if abortErr != nil {
				return 0, fmt.Errorf("set_range: %v (abort: %v)", err, abortErr)
			}
			return 0, err
		}
	}

	// Sole owner of all four rows until commit: read-modify-write in
	// place.
	applyDelta(d.accounts.Bytes()[accOff:accOff+8], delta)
	applyDelta(d.tellers.Bytes()[telOff:telOff+8], delta)
	applyDelta(d.branches.Bytes()[brOff:brOff+8], delta)
	hist := d.history.Bytes()[histOff : histOff+historyRecord]
	binary.BigEndian.PutUint64(hist[0:], uint64(account))
	binary.BigEndian.PutUint64(hist[8:], uint64(teller))
	binary.BigEndian.PutUint64(hist[16:], uint64(branch))
	binary.BigEndian.PutUint64(hist[24:], uint64(delta))
	return delta, tx.Commit()
}

// applyDelta adjusts an owned row's 8-byte balance column in place.
func applyDelta(col []byte, delta int64) {
	binary.BigEndian.PutUint64(col, uint64(int64(binary.BigEndian.Uint64(col))+delta))
}

// updateBalance returns the row's 8-byte balance column adjusted by
// delta.
func updateBalance(col []byte, delta int64) []byte {
	out := make([]byte, 8)
	bal := int64(binary.BigEndian.Uint64(col[:8]))
	binary.BigEndian.PutUint64(out, uint64(bal+delta))
	return out
}

// CheckConsistency verifies the TPC-B invariant: the sum of account
// balances equals the sum of branch balances (both started from the same
// deterministic fill, so their *deltas* must match).
func (d *DebitCredit) CheckConsistency() error {
	accDelta := sumBalanceDelta(d.accounts.Bytes(), accountRecord)
	brDelta := sumBalanceDelta(d.branches.Bytes(), branchRecord)
	telDelta := sumBalanceDelta(d.tellers.Bytes(), tellerRecord)
	if accDelta != brDelta || accDelta != telDelta {
		return fmt.Errorf("bench: balance invariant violated: accounts=%d branches=%d tellers=%d",
			accDelta, brDelta, telDelta)
	}
	return nil
}

// sumBalanceDelta sums each record's balance minus its deterministic
// initial fill value.
func sumBalanceDelta(table []byte, record int) int64 {
	var sum int64
	for off := 0; off+record <= len(table); off += record {
		cur := int64(binary.BigEndian.Uint64(table[off : off+8]))
		init := initialBalance(off)
		sum += cur - init
	}
	return sum
}

// initialBalance reconstructs the deterministic fill initDB wrote at a
// record's first 8 bytes.
func initialBalance(off int) int64 {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte((off + i) % 251)
	}
	return int64(binary.BigEndian.Uint64(b[:]))
}
