package bench

import (
	"testing"
)

func TestRunConcurrentDebitCredit(t *testing.T) {
	lab := perseasLab(t)
	defer lab.Engine.Close()
	w, err := NewDebitCredit(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunConcurrent(lab.Engine, w, 4, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 200 {
		t.Errorf("committed = %d, want 200", res.Committed)
	}
	if len(res.PerWorker) != 4 {
		t.Fatalf("per-worker stats = %d entries", len(res.PerWorker))
	}
	for i, s := range res.PerWorker {
		if s.Committed != 50 {
			t.Errorf("worker %d committed %d, want 50", i, s.Committed)
		}
	}
	// Concurrent interleavings must never break the TPC-B invariant.
	if err := w.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestRunConcurrentOrderEntry(t *testing.T) {
	lab := perseasLab(t)
	defer lab.Engine.Close()
	w, err := NewOrderEntry(1, 50, 500)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunConcurrent(lab.Engine, w, 4, 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 100 {
		t.Errorf("committed = %d, want 100", res.Committed)
	}
}

func TestRunConcurrentSingleWorkerMatchesInvariant(t *testing.T) {
	lab := perseasLab(t)
	defer lab.Engine.Close()
	w, err := NewDebitCredit(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunConcurrent(lab.Engine, w, 1, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Conflicts != 0 {
		t.Errorf("single worker saw %d conflicts", res.Conflicts)
	}
	if err := w.CheckConsistency(); err != nil {
		t.Error(err)
	}
}
