package bench

import (
	"testing"

	"github.com/ics-forth/perseas/internal/rig"
)

func TestMixedValidation(t *testing.T) {
	if _, err := NewMixed(100, 0.5, 0); err == nil {
		t.Error("zero write size should fail")
	}
	if _, err := NewMixed(100, 0.5, 200); err == nil {
		t.Error("write larger than db should fail")
	}
	if _, err := NewMixed(100, 1.5, 8); err == nil {
		t.Error("read fraction above 1 should fail")
	}
	if _, err := NewMixed(100, -0.1, 8); err == nil {
		t.Error("negative read fraction should fail")
	}
}

func TestMixedReadFractionSpeedsUpPerseas(t *testing.T) {
	run := func(frac float64) float64 {
		lab, err := rig.NewPerseas(rig.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer lab.Engine.Close()
		w, err := NewMixed(1<<20, frac, 64)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(lab.Engine, lab.Clock, w, 400, 21)
		if err != nil {
			t.Fatal(err)
		}
		return res.TPS
	}
	writeOnly := run(0)
	readHeavy := run(0.9)
	// Reads are local loads: a 90%-read mix should push far more
	// transactions per second than a pure-write stream.
	if readHeavy < writeOnly*3 {
		t.Errorf("read-heavy mix %.0f tps vs write-only %.0f tps; reads should be nearly free",
			readHeavy, writeOnly)
	}
}

func TestMixedName(t *testing.T) {
	w, err := NewMixed(1024, 0.25, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Name(); got != "mixed-r25" {
		t.Errorf("Name = %q", got)
	}
}
