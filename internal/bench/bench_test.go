package bench

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/rig"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
)

func perseasLab(t *testing.T) *rig.Lab {
	t.Helper()
	lab, err := rig.NewPerseas(rig.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return lab
}

func TestSyntheticValidation(t *testing.T) {
	if _, err := NewSynthetic(100, 0); err == nil {
		t.Error("zero tx size should fail")
	}
	if _, err := NewSynthetic(100, 200); err == nil {
		t.Error("tx larger than db should fail")
	}
}

func TestSyntheticRunsOnPerseas(t *testing.T) {
	lab := perseasLab(t)
	w, err := NewSynthetic(1<<20, 256)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(lab.Engine, lab.Clock, w, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Txs != 100 || res.TPS <= 0 || res.PerTx <= 0 {
		t.Errorf("bad result %+v", res)
	}
	if res.Engine != "perseas" || res.Workload != "synthetic-256" {
		t.Errorf("labels: %+v", res)
	}
}

func TestDebitCreditConsistencyOnEveryEngine(t *testing.T) {
	for _, b := range rig.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			cfg := rig.DefaultConfig()
			lab, err := b.Build(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer lab.Engine.Close()
			w, err := NewDebitCredit(2, 200)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(lab.Engine, lab.Clock, w, 150, 7); err != nil {
				t.Fatal(err)
			}
			if err := w.CheckConsistency(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestOrderEntryRunsOnEveryEngine(t *testing.T) {
	for _, b := range rig.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			lab, err := b.Build(rig.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer lab.Engine.Close()
			w, err := NewOrderEntry(1, 100, 1000)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(lab.Engine, lab.Clock, w, 80, 11)
			if err != nil {
				t.Fatal(err)
			}
			if res.TPS <= 0 {
				t.Errorf("tps = %v", res.TPS)
			}
		})
	}
}

// TestPaperShapeComparison checks the paper's headline ordering on
// debit-credit: PERSEAS beats RVM by ~3-4 orders of magnitude, beats
// RVM-group and RVM-Rio by >= 1 order, and lands within a small factor
// of Vista.
func TestPaperShapeComparison(t *testing.T) {
	tps := map[string]float64{}
	for _, b := range rig.All() {
		lab, err := b.Build(rig.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewDebitCredit(2, 500)
		if err != nil {
			t.Fatal(err)
		}
		txs := 300
		if b.Name == "rvm" {
			txs = 60 // each commit costs ~12ms of virtual time
		}
		res, err := Run(lab.Engine, lab.Clock, w, txs, 13)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		tps[b.Name] = res.TPS
		_ = lab.Engine.Close()
	}
	t.Logf("debit-credit tps: %+v", tps)

	if ratio := tps["perseas"] / tps["rvm"]; ratio < 50 {
		t.Errorf("perseas/rvm = %.0fx, want orders of magnitude", ratio)
	}
	if tps["rvm"] > 999 {
		t.Errorf("rvm = %.0f tps; the paper says it \"barely achieves\" a 3-digit rate", tps["rvm"])
	}
	if ratio := tps["perseas"] / tps["rvm-group"]; ratio < 10 {
		t.Errorf("perseas/rvm-group = %.1fx, want >= 1 order of magnitude", ratio)
	}
	if ratio := tps["perseas"] / tps["rvm-rio"]; ratio < 2 {
		t.Errorf("perseas/rvm-rio = %.1fx, want clear win", ratio)
	}
	if ratio := tps["vista"] / tps["perseas"]; ratio < 1 || ratio > 20 {
		t.Errorf("vista/perseas = %.1fx, want vista somewhat faster but same class", ratio)
	}
	if tps["perseas"] < 15_000 {
		t.Errorf("perseas debit-credit = %.0f tps, paper reports a 5-digit rate", tps["perseas"])
	}
}

// TestFigure6Shape checks the synthetic sweep endpoints the paper quotes:
// small transactions in single-digit microseconds (>=100k tps) and 1 MB
// transactions under a tenth of a second.
func TestFigure6Shape(t *testing.T) {
	mk := func() (engine.Engine, *simclock.SimClock, error) {
		lab, err := rig.NewPerseas(rig.DefaultConfig())
		if err != nil {
			return nil, nil, err
		}
		return lab.Engine, lab.Clock, nil
	}
	pts, err := Sweep(mk, 2<<20, []uint64{4, 1 << 20}, 50)
	if err != nil {
		t.Fatal(err)
	}
	small, big := pts[0].Overhead, pts[1].Overhead
	if small > 12*time.Microsecond {
		t.Errorf("4-byte tx overhead %v, paper: ~9us", small)
	}
	if big > 100*time.Millisecond {
		t.Errorf("1 MB tx overhead %v, paper: < 0.1s", big)
	}
	if big <= small {
		t.Error("overhead should grow with size")
	}
}

func TestSweepMonotone(t *testing.T) {
	mk := func() (engine.Engine, *simclock.SimClock, error) {
		lab, err := rig.NewPerseas(rig.DefaultConfig())
		if err != nil {
			return nil, nil, err
		}
		return lab.Engine, lab.Clock, nil
	}
	pts, err := Sweep(mk, 2<<20, []uint64{64, 1024, 16384, 262144}, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Overhead <= pts[i-1].Overhead {
			t.Errorf("overhead not monotone at %d: %v <= %v",
				pts[i].TxSize, pts[i].Overhead, pts[i-1].Overhead)
		}
	}
}

func TestDBSizeInvariance(t *testing.T) {
	// The paper: performance is almost constant while the DB fits in
	// main memory.
	var tpss []float64
	for _, branches := range []int{1, 4, 8} {
		lab := perseasLab(t)
		w, err := NewDebitCredit(branches, 1000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(lab.Engine, lab.Clock, w, 200, 17)
		if err != nil {
			t.Fatal(err)
		}
		tpss = append(tpss, res.TPS)
		_ = lab.Engine.Close()
	}
	for i := 1; i < len(tpss); i++ {
		ratio := tpss[i] / tpss[0]
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("throughput varies %.2fx across db sizes (%v)", ratio, tpss)
		}
	}
}

func TestAblationAlignmentHelps(t *testing.T) {
	run := func(noAlign bool) time.Duration {
		cfg := rig.DefaultConfig()
		cfg.NoAlignment = noAlign
		lab, err := rig.NewPerseas(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer lab.Engine.Close()
		w, err := NewSynthetic(1<<20, 200)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(lab.Engine, lab.Clock, w, 100, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res.PerTx
	}
	withAlign := run(false)
	without := run(true)
	if withAlign >= without {
		t.Errorf("alignment expansion should help mid-size txs: with=%v without=%v",
			withAlign, without)
	}
}

func TestAblationRemoteUndoCost(t *testing.T) {
	run := func(noRemoteUndo bool) time.Duration {
		cfg := rig.DefaultConfig()
		cfg.NoRemoteUndo = noRemoteUndo
		lab, err := rig.NewPerseas(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer lab.Engine.Close()
		w, err := NewSynthetic(1<<20, 64)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(lab.Engine, lab.Clock, w, 100, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res.PerTx
	}
	safe := run(false)
	unsafe := run(true)
	if unsafe >= safe {
		t.Errorf("dropping the remote undo push must be cheaper: safe=%v unsafe=%v", safe, unsafe)
	}
	// But not free: the remote undo push is one of only three copies.
	if float64(safe-unsafe) < 0.15*float64(safe) {
		t.Errorf("remote undo cost suspiciously low: safe=%v unsafe=%v", safe, unsafe)
	}
}

func TestAblationExtraMirrorsCost(t *testing.T) {
	run := func(mirrors int) time.Duration {
		cfg := rig.DefaultConfig()
		cfg.Mirrors = mirrors
		lab, err := rig.NewPerseas(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer lab.Engine.Close()
		w, err := NewSynthetic(1<<20, 64)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(lab.Engine, lab.Clock, w, 100, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res.PerTx
	}
	one := run(1)
	three := run(3)
	if three <= one {
		t.Errorf("three mirrors must cost more than one: 1=%v 3=%v", one, three)
	}
	if three > 4*one {
		t.Errorf("mirroring overhead super-linear: 1=%v 3=%v", one, three)
	}
}

func TestRenderFigure5(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderFigure5(&buf, sci.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "200") {
		t.Errorf("figure 5 output incomplete:\n%s", out)
	}
}

func TestRenderFigure6AndTables(t *testing.T) {
	var buf bytes.Buffer
	RenderFigure6(&buf, []SweepPoint{
		{TxSize: 4, Overhead: 10 * time.Microsecond},
		{TxSize: 1 << 20, Overhead: 40 * time.Millisecond},
	})
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Error("figure 6 header missing")
	}

	buf.Reset()
	RenderTable1(&buf, []Result{
		{Engine: "perseas", Workload: "debit-credit", TPS: 25000},
		{Engine: "perseas", Workload: "order-entry", TPS: 8000},
	})
	if !strings.Contains(buf.String(), "debit-credit") {
		t.Error("table 1 missing rows")
	}

	buf.Reset()
	RenderComparison(&buf, []Result{
		{Engine: "perseas", Workload: "debit-credit", TPS: 25000, PerTx: 40 * time.Microsecond},
		{Engine: "rvm", Workload: "debit-credit", TPS: 80, PerTx: 12 * time.Millisecond},
	})
	if !strings.Contains(buf.String(), "rvm") || !strings.Contains(buf.String(), "x") {
		t.Error("comparison missing speedup column")
	}

	buf.Reset()
	RenderDBSize(&buf, []DBSizeRow{{Branches: 1, DBBytes: 1 << 20, TPS: 25000}})
	if !strings.Contains(buf.String(), "branches") {
		t.Error("dbsize table missing header")
	}

	buf.Reset()
	RenderAblation(&buf, []AblationRow{{Config: "default", TPS: 25000, PerTx: 40 * time.Microsecond}})
	if !strings.Contains(buf.String(), "default") {
		t.Error("ablation table missing rows")
	}
}

func TestRunTxAbortsOnBadRange(t *testing.T) {
	lab := perseasLab(t)
	db, err := lab.Engine.CreateDB("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.Engine.InitDB(db); err != nil {
		t.Fatal(err)
	}
	err = runTx(lab.Engine, []rangeWrite{{db: db, offset: 60, data: make([]byte, 8)}})
	if err == nil {
		t.Fatal("out-of-range tx should fail")
	}
	// The failed transaction was aborted: a new one can start.
	tx, err := lab.Engine.Begin()
	if err != nil {
		t.Errorf("engine left in-tx after failed runTx: %v", err)
	} else if err := tx.Abort(); err != nil {
		t.Error(err)
	}
}

func TestDebitCreditHistoryWraps(t *testing.T) {
	lab := perseasLab(t)
	w, err := NewDebitCredit(1, 20) // tiny: history wraps quickly
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(lab.Engine); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		if err := w.Tx(lab.Engine, rng); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	if err := w.CheckConsistency(); err != nil {
		t.Error(err)
	}
}
