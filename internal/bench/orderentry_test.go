package bench

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"github.com/ics-forth/perseas/internal/rig"
)

func TestOrderEntryPaymentMix(t *testing.T) {
	lab := perseasLab(t)
	w, err := NewOrderEntry(1, 50, 500)
	if err != nil {
		t.Fatal(err)
	}
	w.PaymentMix = 0.43
	if err := w.Setup(lab.Engine); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 400; i++ {
		if err := w.Tx(lab.Engine, rng); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	// Money conservation across the payment path: customer payments sum
	// to the warehouse year-to-date totals (all start from the same
	// deterministic fill, so compare deltas).
	custDelta := sumBalanceDelta(w.customer.Bytes(), customerRecord)
	whDelta := sumBalanceDelta(w.warehouse.Bytes(), warehouseRecord)
	if custDelta == 0 {
		t.Fatal("payment mix of 0.43 produced no payments")
	}
	if custDelta != whDelta {
		t.Errorf("payments not conserved: customers %d vs warehouses %d", custDelta, whDelta)
	}
	// And new-orders still flowed.
	var oid uint64
	for d := 0; d < 10; d++ {
		oid += binary.BigEndian.Uint64(w.district.Bytes()[d*districtRecord:])
	}
	if oid == 0 {
		t.Error("no new-orders were processed")
	}
}

func TestOrderEntryPaymentHeavierMixIsFaster(t *testing.T) {
	// Payments touch 3 ranges vs new-order's ~22: a payment-heavy mix
	// must push more transactions per second.
	run := func(mix float64) float64 {
		lab, err := rig.NewPerseas(rig.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer lab.Engine.Close()
		w, err := NewOrderEntry(1, 100, 1000)
		if err != nil {
			t.Fatal(err)
		}
		w.PaymentMix = mix
		res, err := Run(lab.Engine, lab.Clock, w, 300, 9)
		if err != nil {
			t.Fatal(err)
		}
		return res.TPS
	}
	pure := run(0)
	payHeavy := run(0.9)
	if payHeavy <= pure*1.5 {
		t.Errorf("payment-heavy mix (%.0f tps) should clearly beat pure new-order (%.0f tps)",
			payHeavy, pure)
	}
}

func TestOrderEntryDBBytesCountsAllTables(t *testing.T) {
	w, err := NewOrderEntry(2, 300, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	lab := perseasLab(t)
	if err := w.Setup(lab.Engine); err != nil {
		t.Fatal(err)
	}
	total := w.warehouse.Size() + w.district.Size() + w.customer.Size() +
		w.stock.Size() + w.order.Size() + w.orderLine.Size()
	if got := w.DBBytes(); got != total {
		t.Errorf("DBBytes = %d, want %d", got, total)
	}
}

func TestLatencyPercentilesPopulated(t *testing.T) {
	lab := perseasLab(t)
	w, err := NewDebitCredit(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(lab.Engine, lab.Clock, w, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.P50 <= 0 || res.P95 < res.P50 || res.P99 < res.P95 || res.Max < res.P99 {
		t.Errorf("percentiles disordered: %+v", res)
	}
}
