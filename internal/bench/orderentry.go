package bench

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync/atomic"

	"github.com/ics-forth/perseas/internal/engine"
)

// OrderEntry is the paper's third benchmark: it follows TPC-C and models
// the activities of a wholesale supplier. Each transaction is a TPC-C
// new-order: it reads and bumps the district's next-order counter,
// inserts an order row, and for 5-15 line items decrements a stock row
// and inserts an order-line row — a dozen-plus scattered writes, several
// times heavier than debit-credit.
type OrderEntry struct {
	// Warehouses scales the database: 10 districts per warehouse,
	// CustomersPerDistrict customers, ItemsPerWarehouse stock rows.
	Warehouses            int
	CustomersPerDistrict  int
	ItemsPerWarehouse     int
	districtsPerWarehouse int
	// PaymentMix is the fraction of transactions that are TPC-C
	// payments instead of new-orders (0 reproduces the paper's pure
	// order-entry stream; TPC-C proper uses ~0.43).
	PaymentMix float64

	warehouse engine.DB
	district  engine.DB
	customer  engine.DB
	stock     engine.DB
	order     engine.DB
	orderLine engine.DB

	orderLen  uint64
	orderNext uint64
	olLen     uint64
	olNext    uint64
	// Ring cursors concurrent transactions claim atomically instead of
	// orderNext/olNext.
	orderCounter atomic.Uint64
	olCounter    atomic.Uint64
}

// Record sizes in the TPC-C spirit (trimmed to main-memory scale).
const (
	warehouseRecord = 64
	districtRecord  = 96
	customerRecord  = 64
	stockRecord     = 64
	orderRecord     = 64
	orderLineRecord = 54
	minItems        = 5
	maxItems        = 15
)

// NewOrderEntry builds the workload; zero values pick paper-scale
// defaults (2 warehouses).
func NewOrderEntry(warehouses, customersPerDistrict, itemsPerWarehouse int) (*OrderEntry, error) {
	if warehouses <= 0 {
		warehouses = 2
	}
	if customersPerDistrict <= 0 {
		customersPerDistrict = 300
	}
	if itemsPerWarehouse <= 0 {
		itemsPerWarehouse = 10_000
	}
	return &OrderEntry{
		Warehouses:            warehouses,
		CustomersPerDistrict:  customersPerDistrict,
		ItemsPerWarehouse:     itemsPerWarehouse,
		districtsPerWarehouse: 10,
	}, nil
}

// Name implements Workload.
func (o *OrderEntry) Name() string { return "order-entry" }

// Setup implements Workload.
func (o *OrderEntry) Setup(e engine.Engine) error {
	var err error
	nDistricts := o.Warehouses * o.districtsPerWarehouse
	if o.warehouse, err = initDB(e, "warehouse",
		uint64(o.Warehouses)*warehouseRecord); err != nil {
		return err
	}
	if o.district, err = initDB(e, "district",
		uint64(nDistricts)*districtRecord); err != nil {
		return err
	}
	if o.customer, err = initDB(e, "customer",
		uint64(nDistricts*o.CustomersPerDistrict)*customerRecord); err != nil {
		return err
	}
	if o.stock, err = initDB(e, "stock",
		uint64(o.Warehouses*o.ItemsPerWarehouse)*stockRecord); err != nil {
		return err
	}
	// Order and order-line tables are append-and-wrap rings sized for
	// several thousand open orders.
	o.orderLen = uint64(nDistricts*o.CustomersPerDistrict) * orderRecord
	if o.order, err = initDB(e, "order", o.orderLen); err != nil {
		return err
	}
	o.olLen = o.orderLen / orderRecord * maxItems * orderLineRecord
	if o.orderLine, err = initDB(e, "order-line", o.olLen); err != nil {
		return err
	}
	o.orderNext, o.olNext = 0, 0
	return nil
}

// Tx implements Workload: a new-order transaction, or — with
// probability PaymentMix — a payment transaction.
func (o *OrderEntry) Tx(e engine.Engine, rng *rand.Rand) error {
	if o.PaymentMix > 0 && rng.Float64() < o.PaymentMix {
		return o.payment(e, rng)
	}
	return o.newOrder(e, rng)
}

// payment is the TPC-C payment transaction: a customer pays an amount,
// which lands in the district's and warehouse's year-to-date totals —
// three scattered 8-byte balance updates.
func (o *OrderEntry) payment(e engine.Engine, rng *rand.Rand) error {
	warehouse := rng.Intn(o.Warehouses)
	district := warehouse*o.districtsPerWarehouse + rng.Intn(o.districtsPerWarehouse)
	customer := district*o.CustomersPerDistrict + rng.Intn(o.CustomersPerDistrict)
	amount := uint64(1 + rng.Intn(5000))

	bump := func(db engine.DB, off uint64, delta uint64) rangeWrite {
		row := make([]byte, 8)
		binary.BigEndian.PutUint64(row, binary.BigEndian.Uint64(db.Bytes()[off:off+8])+delta)
		return rangeWrite{db: db, offset: off, data: row}
	}
	return runTx(e, []rangeWrite{
		bump(o.customer, uint64(customer)*customerRecord, amount),
		bump(o.district, uint64(district)*districtRecord+8, amount),
		bump(o.warehouse, uint64(warehouse)*warehouseRecord, amount),
	})
}

// newOrder is the TPC-C new-order transaction.
func (o *OrderEntry) newOrder(e engine.Engine, rng *rand.Rand) error {
	warehouse := rng.Intn(o.Warehouses)
	district := warehouse*o.districtsPerWarehouse + rng.Intn(o.districtsPerWarehouse)
	customer := rng.Intn(o.CustomersPerDistrict)
	items := minItems + rng.Intn(maxItems-minItems+1)

	writes := make([]rangeWrite, 0, 2+2*items)

	// Bump the district's next-order-id counter (first 8 bytes).
	dOff := uint64(district) * districtRecord
	dRow := append([]byte(nil), o.district.Bytes()[dOff:dOff+districtRecord]...)
	oid := binary.BigEndian.Uint64(dRow[:8]) + 1
	binary.BigEndian.PutUint64(dRow[:8], oid)
	writes = append(writes, rangeWrite{db: o.district, offset: dOff, data: dRow})

	// Insert the order row.
	oOff := o.orderNext
	o.orderNext += orderRecord
	if o.orderNext+orderRecord > o.orderLen {
		o.orderNext = 0
	}
	oRow := make([]byte, orderRecord)
	binary.BigEndian.PutUint64(oRow[0:], oid)
	binary.BigEndian.PutUint64(oRow[8:], uint64(district))
	binary.BigEndian.PutUint64(oRow[16:], uint64(customer))
	binary.BigEndian.PutUint64(oRow[24:], uint64(items))
	writes = append(writes, rangeWrite{db: o.order, offset: oOff, data: oRow})

	for i := 0; i < items; i++ {
		item := rng.Intn(o.ItemsPerWarehouse)
		qty := uint64(1 + rng.Intn(10))

		// Decrement the stock row's quantity (first 8 bytes).
		sOff := uint64(warehouse*o.ItemsPerWarehouse+item) * stockRecord
		sRow := append([]byte(nil), o.stock.Bytes()[sOff:sOff+stockRecord]...)
		have := binary.BigEndian.Uint64(sRow[:8])
		if have < qty {
			have += 91 // TPC-C restock rule
		}
		binary.BigEndian.PutUint64(sRow[:8], have-qty)
		writes = append(writes, rangeWrite{db: o.stock, offset: sOff, data: sRow})

		// Insert the order line.
		olOff := o.olNext
		o.olNext += orderLineRecord
		if o.olNext+orderLineRecord > o.olLen {
			o.olNext = 0
		}
		olRow := make([]byte, orderLineRecord)
		binary.BigEndian.PutUint64(olRow[0:], oid)
		binary.BigEndian.PutUint64(olRow[8:], uint64(item))
		binary.BigEndian.PutUint64(olRow[16:], qty)
		writes = append(writes, rangeWrite{db: o.orderLine, offset: olOff, data: olRow})
	}
	return runTx(e, writes)
}

// ConcurrentTx implements ConcurrentWorkload: a new-order transaction
// restructured for many goroutines. All rows are claimed with SetRange
// before any byte is read or modified; ring slots for the order and
// order-line inserts come from atomic cursors. A clash on a district
// counter or stock row surfaces as engine.ErrConflict (a retry for the
// caller).
func (o *OrderEntry) ConcurrentTx(e engine.Engine, rng *rand.Rand) error {
	warehouse := rng.Intn(o.Warehouses)
	district := warehouse*o.districtsPerWarehouse + rng.Intn(o.districtsPerWarehouse)
	customer := rng.Intn(o.CustomersPerDistrict)
	items := minItems + rng.Intn(maxItems-minItems+1)

	dOff := uint64(district) * districtRecord
	orderSlots := o.orderLen / orderRecord
	oOff := (o.orderCounter.Add(1) - 1) % orderSlots * orderRecord
	olSlots := o.olLen / orderLineRecord

	type claim struct {
		db      engine.DB
		off, ln uint64
	}
	claims := []claim{
		{o.district, dOff, 8},
		{o.order, oOff, orderRecord},
	}
	stockOffs := make([]uint64, items)
	olOffs := make([]uint64, items)
	qtys := make([]uint64, items)
	itemIDs := make([]uint64, items)
	for i := 0; i < items; i++ {
		item := rng.Intn(o.ItemsPerWarehouse)
		itemIDs[i] = uint64(item)
		qtys[i] = uint64(1 + rng.Intn(10))
		stockOffs[i] = uint64(warehouse*o.ItemsPerWarehouse+item) * stockRecord
		olOffs[i] = (o.olCounter.Add(1) - 1) % olSlots * orderLineRecord
		claims = append(claims,
			claim{o.stock, stockOffs[i], 8},
			claim{o.orderLine, olOffs[i], orderLineRecord})
	}
	tx, err := e.Begin()
	if err != nil {
		return err
	}
	for _, c := range claims {
		if err := tx.SetRange(c.db, c.off, c.ln); err != nil {
			abortErr := tx.Abort()
			if abortErr != nil {
				return fmt.Errorf("set_range: %v (abort: %v)", err, abortErr)
			}
			return err
		}
	}

	// Sole owner of every claimed row: read-modify-write in place.
	dRow := o.district.Bytes()[dOff : dOff+8]
	oid := binary.BigEndian.Uint64(dRow) + 1
	binary.BigEndian.PutUint64(dRow, oid)

	oRow := o.order.Bytes()[oOff : oOff+orderRecord]
	binary.BigEndian.PutUint64(oRow[0:], oid)
	binary.BigEndian.PutUint64(oRow[8:], uint64(district))
	binary.BigEndian.PutUint64(oRow[16:], uint64(customer))
	binary.BigEndian.PutUint64(oRow[24:], uint64(items))

	for i := 0; i < items; i++ {
		sRow := o.stock.Bytes()[stockOffs[i] : stockOffs[i]+8]
		have := binary.BigEndian.Uint64(sRow)
		if have < qtys[i] {
			have += 91 // TPC-C restock rule
		}
		binary.BigEndian.PutUint64(sRow, have-qtys[i])

		olRow := o.orderLine.Bytes()[olOffs[i] : olOffs[i]+orderLineRecord]
		binary.BigEndian.PutUint64(olRow[0:], oid)
		binary.BigEndian.PutUint64(olRow[8:], itemIDs[i])
		binary.BigEndian.PutUint64(olRow[16:], qtys[i])
	}
	return tx.Commit()
}

// DBBytes reports the database footprint.
func (o *OrderEntry) DBBytes() uint64 {
	nDistricts := uint64(o.Warehouses * o.districtsPerWarehouse)
	return uint64(o.Warehouses)*warehouseRecord +
		nDistricts*districtRecord +
		nDistricts*uint64(o.CustomersPerDistrict)*customerRecord +
		uint64(o.Warehouses*o.ItemsPerWarehouse)*stockRecord +
		o.orderLen + o.olLen
}

// String describes the scale.
func (o *OrderEntry) String() string {
	return fmt.Sprintf("order-entry(w=%d)", o.Warehouses)
}
