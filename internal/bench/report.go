package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"github.com/ics-forth/perseas/internal/sci"
)

// RenderFigure5 prints the SCI remote-write latency curve (paper Fig. 5):
// latency of one remote store, sizes 4-200 bytes, word offset 0.
func RenderFigure5(w io.Writer, params sci.Params) error {
	pts, err := sci.WriteLatencyCurve(params, 4, 200, 4)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 5 — SCI Remote Write Latency (one-way, word offset 0)")
	fmt.Fprintln(w, "size(B)  latency(us)")
	maxLat := 0.0
	for _, p := range pts {
		if us := float64(p.Latency.Nanoseconds()) / 1e3; us > maxLat {
			maxLat = us
		}
	}
	for _, p := range pts {
		us := float64(p.Latency.Nanoseconds()) / 1e3
		bar := strings.Repeat("*", int(us/maxLat*50))
		fmt.Fprintf(w, "%7d  %10.2f  %s\n", p.Size, us, bar)
	}
	return nil
}

// RenderFigure5Offsets prints the word-offset family of the remote-write
// latency measurement: the paper's Fig. 5 shows offset 0; other start
// offsets shift the packetisation (edge chunks drain as 16-byte packets
// and stores reaching a buffer's last word flush early).
func RenderFigure5Offsets(w io.Writer, params sci.Params) error {
	offsets := []uint64{0, 8, 32, 60}
	sizes := []int{4, 16, 32, 64, 128, 200}
	fmt.Fprintln(w, "Figure 5 (offset family) — latency in us by start offset within a 64B buffer")
	fmt.Fprintf(w, "%8s", "size(B)")
	for _, off := range offsets {
		fmt.Fprintf(w, " %9s", fmt.Sprintf("off=%d", off))
	}
	fmt.Fprintln(w)
	for _, size := range sizes {
		fmt.Fprintf(w, "%8d", size)
		for _, off := range offsets {
			pts, err := sci.WriteLatencyCurveAt(params, off, size, size, 1)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %9.2f", float64(pts[0].Latency.Nanoseconds())/1e3)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// RenderFigure6 prints the transaction-overhead curve (paper Fig. 6):
// per-transaction overhead versus transaction size, 4 B to 1 MB, log-log.
func RenderFigure6(w io.Writer, pts []SweepPoint) {
	fmt.Fprintln(w, "Figure 6 — Transaction Overhead of PERSEAS")
	fmt.Fprintln(w, "txsize(B)  overhead(us)   (log-log bar)")
	for _, p := range pts {
		us := float64(p.Overhead.Nanoseconds()) / 1e3
		// Log-scale bar: Fig. 6 spans 10 us .. 100 ms on a log axis.
		bar := ""
		if us > 1 {
			bar = strings.Repeat("*", int(math.Log10(us)*10))
		}
		fmt.Fprintf(w, "%9d  %12.2f   %s\n", p.TxSize, us, bar)
	}
	if len(pts) > 0 {
		first := pts[0]
		last := pts[len(pts)-1]
		fmt.Fprintf(w, "small tx: %v (%0.f tps); 1 MB tx: %v\n",
			first.Overhead, 1e9/float64(first.Overhead.Nanoseconds()), last.Overhead)
	}
}

// RenderTable1 prints the paper's Table 1: PERSEAS throughput on the two
// application benchmarks.
func RenderTable1(w io.Writer, results []Result) {
	fmt.Fprintln(w, "Table 1 — Performance of PERSEAS")
	fmt.Fprintf(w, "%-16s %s\n", "Benchmark", "Transactions per second")
	for _, r := range results {
		fmt.Fprintf(w, "%-16s %.0f\n", r.Workload, r.TPS)
	}
}

// RenderComparison prints the Section 5.1 cross-system comparison: every
// engine against every workload, with the PERSEAS speed-up.
func RenderComparison(w io.Writer, results []Result) {
	fmt.Fprintln(w, "Section 5.1 — PERSEAS vs recoverable-memory systems (tps)")
	// Group by workload, engines as rows.
	byWorkload := map[string][]Result{}
	var order []string
	for _, r := range results {
		if _, ok := byWorkload[r.Workload]; !ok {
			order = append(order, r.Workload)
		}
		byWorkload[r.Workload] = append(byWorkload[r.Workload], r)
	}
	for _, wl := range order {
		rs := byWorkload[wl]
		var perseas float64
		for _, r := range rs {
			if r.Engine == "perseas" {
				perseas = r.TPS
			}
		}
		fmt.Fprintf(w, "\n%s:\n", wl)
		fmt.Fprintf(w, "  %-10s %14s %14s %12s\n", "engine", "tps", "per-tx", "perseas/x")
		for _, r := range rs {
			ratio := "-"
			if r.Engine != "perseas" && r.TPS > 0 {
				ratio = fmt.Sprintf("%.1fx", perseas/r.TPS)
			}
			fmt.Fprintf(w, "  %-10s %14.0f %14v %12s\n", r.Engine, r.TPS, r.PerTx, ratio)
		}
	}
}

// RenderDBSize prints the DB-size invariance table: PERSEAS debit-credit
// throughput across database scales.
func RenderDBSize(w io.Writer, rows []DBSizeRow) {
	fmt.Fprintln(w, "Section 5.1 — throughput vs database size (debit-credit)")
	fmt.Fprintf(w, "%10s %12s %12s\n", "branches", "db bytes", "tps")
	for _, r := range rows {
		fmt.Fprintf(w, "%10d %12d %12.0f\n", r.Branches, r.DBBytes, r.TPS)
	}
}

// DBSizeRow is one row of the DB-size invariance table.
type DBSizeRow struct {
	Branches int
	DBBytes  uint64
	TPS      float64
}

// RenderAblation prints the design-choice ablation table.
func RenderAblation(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Ablation — PERSEAS design choices (debit-credit)")
	fmt.Fprintf(w, "%-28s %12s %12s\n", "configuration", "tps", "per-tx")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %12.0f %12v\n", r.Config, r.TPS, r.PerTx)
	}
}

// AblationRow is one ablation measurement.
type AblationRow struct {
	Config string
	TPS    float64
	PerTx  time.Duration
}

// RenderLatency prints per-engine latency distributions: the paper
// reports means, but tail behaviour is where WAL engines differ most
// (log truncations and checkpoints stall the unlucky transaction).
func RenderLatency(w io.Writer, results []Result) {
	fmt.Fprintln(w, "Latency distribution (debit-credit, virtual time)")
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s %12s\n",
		"engine", "mean", "p50", "p95", "p99", "max")
	for _, r := range results {
		fmt.Fprintf(w, "%-10s %12v %12v %12v %12v %12v\n",
			r.Engine, r.PerTx, r.P50, r.P95, r.P99, r.Max)
	}
}

// TrendRow is one projected year of the technology-trend experiment.
type TrendRow struct {
	// Year is years after the paper's baseline hardware.
	Year int
	// PerseasTPS and DiskTPS are debit-credit rates on the projected
	// network-bound (PERSEAS) and disk-bound (RVM group-commit)
	// systems.
	PerseasTPS float64
	DiskTPS    float64
}

// RenderTrend prints the Section 6 projection: interconnect speed
// improves 20-45% per year while magnetic-disk speed improves 10-20%, so
// the performance gains of the PERSEAS approach increase with time.
func RenderTrend(w io.Writer, rows []TrendRow) {
	fmt.Fprintln(w, "Section 6 — projected gains over time (debit-credit)")
	fmt.Fprintln(w, "(network improves 30%/yr, disk 15%/yr, per the paper's cited trends)")
	fmt.Fprintf(w, "%6s %14s %14s %10s\n", "year", "perseas tps", "rvm-group tps", "ratio")
	for _, r := range rows {
		ratio := 0.0
		if r.DiskTPS > 0 {
			ratio = r.PerseasTPS / r.DiskTPS
		}
		fmt.Fprintf(w, "%6d %14.0f %14.0f %9.0fx\n", r.Year, r.PerseasTPS, r.DiskTPS, ratio)
	}
}

// RecoveryRow is one measurement of post-crash recovery time.
type RecoveryRow struct {
	// DBBytes is the total database size reconstructed.
	DBBytes uint64
	// InFlightRanges is how many declared ranges the crashed
	// transaction had, all rolled back during recovery.
	InFlightRanges int
	// Elapsed is the virtual time from Recover's start to a usable
	// database.
	Elapsed time.Duration
}

// RenderRecovery prints the recovery-time table backing the paper's
// Section 6 claim that recovery can start right away on any workstation:
// no disk image is read and no log is replayed — the cost is fetching
// the mirrored database over the interconnect.
func RenderRecovery(w io.Writer, rows []RecoveryRow) {
	fmt.Fprintln(w, "Section 6 — recovery time vs database size (PERSEAS)")
	fmt.Fprintf(w, "%12s %16s %14s\n", "db bytes", "in-flight ranges", "recovery")
	for _, r := range rows {
		fmt.Fprintf(w, "%12d %16d %14v\n", r.DBBytes, r.InFlightRanges, r.Elapsed)
	}
}
