package bench

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"github.com/ics-forth/perseas/internal/engine"
)

// Mixed interleaves read-only transactions with small updates. The paper
// positions PERSEAS as the complement of remote-memory caching systems:
// those speed up reads, PERSEAS speeds up the write-dominated commit
// path — reads of a main-memory database are plain local loads and cost
// the transaction system nothing. This workload makes that visible: as
// ReadFraction rises, per-transaction cost collapses toward the price of
// Begin/Commit bookkeeping.
type Mixed struct {
	// DBSize is the database footprint.
	DBSize uint64
	// ReadFraction is the share of read-only transactions.
	ReadFraction float64
	// WriteSize is the bytes modified by each update transaction.
	WriteSize uint64

	db  engine.DB
	pat []byte
}

// NewMixed builds the workload.
func NewMixed(dbSize uint64, readFraction float64, writeSize uint64) (*Mixed, error) {
	if writeSize == 0 || writeSize > dbSize {
		return nil, fmt.Errorf("bench: write size %d must be in [1, db size %d]", writeSize, dbSize)
	}
	if readFraction < 0 || readFraction > 1 {
		return nil, fmt.Errorf("bench: read fraction %v must be in [0,1]", readFraction)
	}
	return &Mixed{DBSize: dbSize, ReadFraction: readFraction, WriteSize: writeSize}, nil
}

// Name implements Workload.
func (m *Mixed) Name() string {
	return fmt.Sprintf("mixed-r%02.0f", m.ReadFraction*100)
}

// Setup implements Workload.
func (m *Mixed) Setup(e engine.Engine) error {
	db, err := initDB(e, "mixed", m.DBSize)
	if err != nil {
		return err
	}
	m.db = db
	m.pat = make([]byte, m.WriteSize)
	for i := range m.pat {
		m.pat[i] = byte(i*3 + 1)
	}
	return nil
}

// Tx implements Workload: a read-only transaction (touching a few
// scattered records without declaring any range) or one small update.
func (m *Mixed) Tx(e engine.Engine, rng *rand.Rand) error {
	if rng.Float64() < m.ReadFraction {
		tx, err := e.Begin()
		if err != nil {
			return err
		}
		// Read a handful of scattered 8-byte records; a checksum keeps
		// the loads from being optimised away.
		var sum uint64
		buf := m.db.Bytes()
		for i := 0; i < 4; i++ {
			off := uint64(rng.Int63n(int64(m.DBSize - 8)))
			sum += binary.BigEndian.Uint64(buf[off:])
		}
		_ = sum
		return tx.Commit()
	}
	span := m.DBSize - m.WriteSize
	var off uint64
	if span > 0 {
		off = uint64(rng.Int63n(int64(span + 1)))
	}
	return runTx(e, []rangeWrite{{db: m.db, offset: off, data: m.pat}})
}
