package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/simclock"
)

// Result is one benchmark measurement on the virtual clock.
type Result struct {
	Engine   string
	Workload string
	Txs      int
	Elapsed  time.Duration
	PerTx    time.Duration
	TPS      float64
	// Latency percentiles over the measured transactions.
	P50, P95, P99, Max time.Duration
}

// String renders one row.
func (r Result) String() string {
	return fmt.Sprintf("%-10s %-14s %7d tx  %12v  %10v/tx  %12.0f tps  p50=%v p99=%v",
		r.Engine, r.Workload, r.Txs, r.Elapsed, r.PerTx, r.TPS, r.P50, r.P99)
}

// percentile returns the p-th percentile of sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// Run executes txs transactions of w against e, measuring virtual time.
// Setup and a small warm-up are excluded from the measurement, as in the
// paper's steady-state numbers.
func Run(e engine.Engine, clock *simclock.SimClock, w Workload, txs int, seed int64) (Result, error) {
	if err := w.Setup(e); err != nil {
		return Result{}, fmt.Errorf("bench: setup %s on %s: %w", w.Name(), e.Name(), err)
	}
	rng := rand.New(rand.NewSource(seed))
	warm := txs / 10
	if warm > 50 {
		warm = 50
	}
	for i := 0; i < warm; i++ {
		if err := w.Tx(e, rng); err != nil {
			return Result{}, fmt.Errorf("bench: warm-up tx on %s: %w", e.Name(), err)
		}
	}
	latencies := make([]time.Duration, 0, txs)
	start := clock.Now()
	for i := 0; i < txs; i++ {
		t0 := clock.Now()
		if err := w.Tx(e, rng); err != nil {
			return Result{}, fmt.Errorf("bench: tx %d on %s: %w", i, e.Name(), err)
		}
		latencies = append(latencies, clock.Now()-t0)
	}
	elapsed := clock.Now() - start
	res := Result{
		Engine:   e.Name(),
		Workload: w.Name(),
		Txs:      txs,
		Elapsed:  elapsed,
	}
	if txs > 0 && elapsed > 0 {
		res.PerTx = elapsed / time.Duration(txs)
		res.TPS = float64(txs) / elapsed.Seconds()
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		res.P50 = percentile(latencies, 0.50)
		res.P95 = percentile(latencies, 0.95)
		res.P99 = percentile(latencies, 0.99)
		res.Max = latencies[len(latencies)-1]
	}
	return res, nil
}

// SweepPoint is one sample of the transaction-overhead curve (Fig. 6).
type SweepPoint struct {
	// TxSize is the bytes modified per transaction.
	TxSize uint64
	// Overhead is the mean per-transaction virtual time.
	Overhead time.Duration
}

// LabFactory builds a fresh engine+clock pair per measurement so sweeps
// do not contaminate each other.
type LabFactory func() (engine.Engine, *simclock.SimClock, error)

// Figure6Sizes returns the transaction sizes of the paper's sweep:
// 4 bytes to 1 MByte.
func Figure6Sizes() []uint64 {
	var sizes []uint64
	for s := uint64(4); s <= 1<<20; s *= 2 {
		sizes = append(sizes, s)
	}
	return sizes
}

// Sweep measures transaction overhead as a function of transaction size
// (the paper's synthetic benchmark, Fig. 6).
func Sweep(mk LabFactory, dbSize uint64, sizes []uint64, txsPerSize int) ([]SweepPoint, error) {
	var pts []SweepPoint
	for _, size := range sizes {
		e, clock, err := mk()
		if err != nil {
			return nil, err
		}
		w, err := NewSynthetic(dbSize, size)
		if err != nil {
			return nil, err
		}
		res, err := Run(e, clock, w, txsPerSize, int64(size))
		if err != nil {
			return nil, fmt.Errorf("bench: sweep size %d: %w", size, err)
		}
		_ = e.Close()
		pts = append(pts, SweepPoint{TxSize: size, Overhead: res.PerTx})
	}
	return pts, nil
}
