package bench

import (
	"fmt"
	"math/rand"

	"github.com/ics-forth/perseas/internal/engine"
)

// Synthetic is the paper's first benchmark: it measures transaction
// overhead as a function of transaction size. Each transaction modifies a
// random location of the database; the modified size sweeps from 4 bytes
// to 1 megabyte (Fig. 6).
type Synthetic struct {
	// DBSize is the database size; the paper keeps it below main
	// memory.
	DBSize uint64
	// TxSize is the bytes each transaction modifies.
	TxSize uint64

	db  engine.DB
	pat []byte
}

// NewSynthetic builds the workload. The database must hold at least one
// transaction's range.
func NewSynthetic(dbSize, txSize uint64) (*Synthetic, error) {
	if txSize == 0 || txSize > dbSize {
		return nil, fmt.Errorf("bench: tx size %d must be in [1, db size %d]", txSize, dbSize)
	}
	return &Synthetic{DBSize: dbSize, TxSize: txSize}, nil
}

// Name implements Workload.
func (s *Synthetic) Name() string { return fmt.Sprintf("synthetic-%d", s.TxSize) }

// Setup implements Workload.
func (s *Synthetic) Setup(e engine.Engine) error {
	db, err := initDB(e, "synthetic", s.DBSize)
	if err != nil {
		return err
	}
	s.db = db
	s.pat = make([]byte, s.TxSize)
	for i := range s.pat {
		s.pat[i] = byte(i*7 + 13)
	}
	return nil
}

// Tx implements Workload: one update of TxSize bytes at a random
// location.
func (s *Synthetic) Tx(e engine.Engine, rng *rand.Rand) error {
	span := s.DBSize - s.TxSize
	var off uint64
	if span > 0 {
		off = uint64(rng.Int63n(int64(span + 1)))
	}
	return runTx(e, []rangeWrite{{db: s.db, offset: off, data: s.pat}})
}
