// Package bench implements the paper's three benchmarks — synthetic,
// debit-credit (TPC-B-like) and order-entry (TPC-C-like), the same suite
// Lowell & Chen used to measure RVM and Vista — plus the harness that
// runs any workload against any engine on the shared virtual clock and
// renders the paper's tables and figures.
package bench

import (
	"fmt"
	"math/rand"

	"github.com/ics-forth/perseas/internal/engine"
)

// Workload is one benchmark: it creates its databases on an engine and
// then executes transactions one at a time.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Setup creates and initialises the databases.
	Setup(e engine.Engine) error
	// Tx runs one complete transaction (begin..commit).
	Tx(e engine.Engine, rng *rand.Rand) error
}

// beginWriteCommit brackets a set of range writes in one transaction.
// Each write declares its range, then mutates the bytes in place.
type rangeWrite struct {
	db     engine.DB
	offset uint64
	data   []byte
}

func runTx(e engine.Engine, writes []rangeWrite) error {
	tx, err := e.Begin()
	if err != nil {
		return err
	}
	for _, w := range writes {
		if err := tx.SetRange(w.db, w.offset, uint64(len(w.data))); err != nil {
			abortErr := tx.Abort()
			return fmt.Errorf("set_range: %v (abort: %v)", err, abortErr)
		}
		copy(w.db.Bytes()[w.offset:], w.data)
	}
	return tx.Commit()
}

// initDB creates a database, fills it with a deterministic pattern and
// publishes the initial image.
func initDB(e engine.Engine, name string, size uint64) (engine.DB, error) {
	db, err := e.CreateDB(name, size)
	if err != nil {
		return nil, fmt.Errorf("create %s: %w", name, err)
	}
	buf := db.Bytes()
	for i := range buf {
		buf[i] = byte(i % 251)
	}
	if err := e.InitDB(db); err != nil {
		return nil, fmt.Errorf("init %s: %w", name, err)
	}
	return db, nil
}
