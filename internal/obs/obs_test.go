package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
	c.Reset()
	if got := c.Load(); got != 0 {
		t.Fatalf("after Reset, Load = %d, want 0", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("Count = %d, want 6", s.Count)
	}
	if s.Sum != 1106 {
		t.Fatalf("Sum = %d, want 1106", s.Sum)
	}
	if s.Min != 0 || s.Max != 1000 {
		t.Fatalf("Min/Max = %d/%d, want 0/1000", s.Min, s.Max)
	}
	if got := s.Mean(); math.Abs(got-1106.0/6) > 1e-9 {
		t.Fatalf("Mean = %g", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 uniform values 1..1000: p50 should land near 500 within the
	// power-of-two bucket resolution (bucket [512,1023] is wide, but
	// interpolation keeps the estimate in the right half).
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	if p50 < 256 || p50 > 1000 {
		t.Fatalf("p50 = %g, want within [256,1000]", p50)
	}
	if p100 := s.Quantile(1); p100 != 1000 {
		t.Fatalf("p100 = %g, want exactly max (1000)", p100)
	}
	if p0 := s.Quantile(0); p0 < 1 {
		t.Fatalf("p0 = %g, want >= observed min 1", p0)
	}
	// Quantiles are monotone.
	prev := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%g) = %g < previous %g, not monotone", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramSingleValue(t *testing.T) {
	var h Histogram
	h.Observe(77)
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 77 {
			t.Fatalf("Quantile(%g) = %g, want 77 (min==max clamps)", q, got)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatalf("empty histogram not all-zero: %+v", s)
	}
}

func TestObserveDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(1500 * time.Nanosecond)
	h.ObserveDuration(-time.Second) // clamps to 0
	s := h.Snapshot()
	if s.Count != 2 || s.Max != 1500 || s.Min != 0 {
		t.Fatalf("got %+v", s)
	}
}

func TestSnapshotMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(2)
	a.Observe(100)
	b.Observe(7)
	var empty HistogramSnapshot

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 3 || m.Sum != 109 || m.Min != 2 || m.Max != 100 {
		t.Errorf("merged = %+v, want count 3 sum 109 min 2 max 100", m)
	}
	if m.Buckets[3] != 1 { // 7 lands in [4,7]
		t.Errorf("bucket 3 = %d, want 1", m.Buckets[3])
	}
	// Empty snapshots are identity elements on either side.
	if got := empty.Merge(a.Snapshot()); got != a.Snapshot() {
		t.Error("empty.Merge(a) != a")
	}
	if got := a.Snapshot().Merge(empty); got != a.Snapshot() {
		t.Error("a.Merge(empty) != a")
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(5)
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("after Reset: %+v", s)
	}
	h.Observe(9)
	if s := h.Snapshot(); s.Min != 9 || s.Max != 9 {
		t.Fatalf("post-reset observe: %+v", s)
	}
}

// TestHistogramConcurrent exercises Observe from many goroutines under
// the race detector; totals must come out exact.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var c Counter
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64(w*per + i))
				c.Inc()
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("Count = %d, want %d", s.Count, workers*per)
	}
	if c.Load() != workers*per {
		t.Fatalf("Counter = %d, want %d", c.Load(), workers*per)
	}
	var inBuckets uint64
	for _, n := range s.Buckets {
		inBuckets += n
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket total %d != count %d", inBuckets, s.Count)
	}
	if s.Min != 0 || s.Max != workers*per-1 {
		t.Fatalf("Min/Max = %d/%d", s.Min, s.Max)
	}
}

func TestRegistryText(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(7)
	var h Histogram
	h.Observe(100)
	r.RegisterCounter("perseas_test_ops_total", "ops", &c)
	r.RegisterGauge("perseas_test_live", "live mirrors", func() uint64 { return 2 })
	r.RegisterHistogram("perseas_test_latency_ns", "latency", &h)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE perseas_test_ops_total counter",
		"perseas_test_ops_total 7",
		"# TYPE perseas_test_live gauge",
		"perseas_test_live 2",
		"# TYPE perseas_test_latency_ns summary",
		`perseas_test_latency_ns{quantile="0.5"} 100`,
		"perseas_test_latency_ns_sum 100",
		"perseas_test_latency_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryReregisterReplaces(t *testing.T) {
	r := NewRegistry()
	var c1, c2 Counter
	c1.Add(1)
	c2.Add(2)
	r.RegisterCounter("x_total", "", &c1)
	r.RegisterCounter("x_total", "", &c2)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Count(sb.String(), "\nx_total ") != 1 {
		t.Fatalf("duplicate rows after re-register:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "x_total 2") {
		t.Fatalf("last registration should win:\n%s", sb.String())
	}
}

func TestRegistryHTTP(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Inc()
	r.RegisterCounter("perseas_http_total", "", &c)
	srv := httptest.NewServer(r)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1024)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "perseas_http_total 1") {
		t.Fatalf("HTTP body missing counter: %q", buf[:n])
	}
	// Prometheus scrapers key the parser off the exact exposition
	// version, so pin the full header rather than a substring.
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
}

func TestHelpStringEscaping(t *testing.T) {
	r := NewRegistry()
	var c Counter
	r.RegisterCounter("perseas_esc_total", "line one\nwith a back\\slash", &c)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `# HELP perseas_esc_total line one\nwith a back\\slash` + "\n"
	if !strings.Contains(out, want) {
		t.Errorf("help not escaped:\n%s", out)
	}
	// The raw newline must not split the HELP comment across lines.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "with a back") {
			t.Errorf("unescaped newline leaked into exposition:\n%s", out)
		}
	}
}

func TestRenderLatencyTable(t *testing.T) {
	var h Histogram
	h.Observe(10_000) // 10µs
	var sb strings.Builder
	WriteLatencyTable(&sb, "commit path", []LatencyRow{
		{Name: "local copy", Snap: h.Snapshot()},
		{Name: "empty phase", Snap: HistogramSnapshot{}},
	})
	out := sb.String()
	if !strings.Contains(out, "commit path") || !strings.Contains(out, "local copy") {
		t.Fatalf("table missing rows:\n%s", out)
	}
	if !strings.Contains(out, "10.0") {
		t.Fatalf("table should show 10.0 us:\n%s", out)
	}
	if !strings.Contains(out, "empty phase") {
		t.Fatalf("empty rows should still print:\n%s", out)
	}
}

func TestRenderValueDistribution(t *testing.T) {
	var h Histogram
	for i := 0; i < 80; i++ {
		h.Observe(1)
	}
	for i := 0; i < 30; i++ {
		h.Observe(3)
	}
	var sb strings.Builder
	WriteValueDistribution(&sb, "combiner batch size", h.Snapshot())
	out := sb.String()
	if !strings.Contains(out, "combiner batch size") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "1 ") && !strings.Contains(out, "1  ") {
		t.Fatalf("missing bucket for value 1:\n%s", out)
	}
	if !strings.Contains(out, "2-3") {
		t.Fatalf("missing bucket 2-3:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("missing bars:\n%s", out)
	}
}

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		i      int
		lo, hi uint64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 4, 7},
		{64, 1 << 63, math.MaxUint64},
	}
	for _, c := range cases {
		lo, hi := bucketBounds(c.i)
		if lo != c.lo || hi != c.hi {
			t.Errorf("bucketBounds(%d) = %d,%d want %d,%d", c.i, lo, hi, c.lo, c.hi)
		}
	}
}
