package obs

import "testing"

// The histogram sits on every commit of every workload, so Observe must
// stay in the low tens of nanoseconds. Run with make bench-obs.

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
