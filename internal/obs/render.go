package obs

import (
	"fmt"
	"io"
	"strings"
)

// LatencyRow pairs a label with a nanosecond-valued histogram snapshot
// for WriteLatencyTable.
type LatencyRow struct {
	Name string
	Snap HistogramSnapshot
}

// usec converts a nanosecond quantity to microseconds for display.
func usec(ns float64) float64 { return ns / 1e3 }

// WriteLatencyTable renders rows of nanosecond histograms as a
// human-readable table in microseconds:
//
//	commit path                 count       p50       p95       p99      p999      mean
//	  local copy                 1234      12.0      18.5      22.1      24.0      13.2
func WriteLatencyTable(w io.Writer, title string, rows []LatencyRow) {
	fmt.Fprintf(w, "%-24s %9s %9s %9s %9s %9s %9s\n", title, "count", "p50(us)", "p95(us)", "p99(us)", "p999(us)", "mean(us)")
	for _, row := range rows {
		s := row.Snap
		if s.Count == 0 {
			fmt.Fprintf(w, "  %-22s %9d %9s %9s %9s %9s %9s\n", row.Name, 0, "-", "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(w, "  %-22s %9d %9.1f %9.1f %9.1f %9.1f %9.1f\n",
			row.Name, s.Count,
			usec(s.Quantile(0.5)), usec(s.Quantile(0.95)), usec(s.Quantile(0.99)),
			usec(s.Quantile(0.999)), usec(s.Mean()))
	}
}

// WriteValueDistribution renders a histogram of small integer values
// (e.g. combiner batch sizes) as a bucketed bar chart:
//
//	combiner batch size (mean 2.3, 120 samples)
//	  1          80  ########################################
//	  2-3        30  ###############
//	  4-7        10  #####
func WriteValueDistribution(w io.Writer, title string, s HistogramSnapshot) {
	fmt.Fprintf(w, "%s (mean %.1f, %d samples)\n", title, s.Mean(), s.Count)
	if s.Count == 0 {
		return
	}
	var peak uint64
	for _, n := range s.Buckets {
		if n > peak {
			peak = n
		}
	}
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		label := fmt.Sprintf("%d", lo)
		if hi > lo {
			label = fmt.Sprintf("%d-%d", lo, hi)
		}
		bar := int(n * 40 / peak)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(w, "  %-9s %7d  %s\n", label, n, strings.Repeat("#", bar))
	}
}
