// Package obs provides the lock-free observability primitives every
// PERSEAS hot path reports into: atomic counters and power-of-two
// histograms cheap enough to live inside the commit path, plus a
// registry that renders them as tables or Prometheus text.
//
// The commit path is the paper's whole argument — three memory copies
// instead of a disk write — so the instrumentation must not distort
// what it measures. Observe is a handful of atomic adds with no locks
// and no allocation, and nothing in this package ever advances a
// simulated clock: callers sample clock.Now() around the work and
// report the difference. That keeps the reproduced fig6/compare
// outputs byte-identical whether or not metrics are being collected.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing (but resettable) atomic count.
// The zero value is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// histBuckets is the number of power-of-two buckets a Histogram keeps:
// bucket 0 holds the value 0, bucket i (i >= 1) holds values in
// [2^(i-1), 2^i - 1]. 64 buckets cover the full uint64 range.
const histBuckets = 65

// Histogram is a lock-free histogram over uint64 values (latencies in
// nanoseconds, batch sizes, byte counts). Values land in power-of-two
// buckets, so Observe is one bits.Len64 plus four atomic operations —
// cheap enough for the commit fast path. Quantiles are estimated by
// linear interpolation inside the winning bucket, which is accurate to
// within the bucket's width (a factor of two). The zero value is ready
// to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // stored as ^value so zero means "empty"
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
	for {
		old := h.min.Load()
		if ^old <= v || h.min.CompareAndSwap(old, ^v) {
			break
		}
	}
	for {
		old := h.max.Load()
		if old >= v || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds. Negative
// durations (a clock stepping backwards) clamp to zero.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Reset zeroes the histogram. Concurrent Observes may straddle the
// reset; the histogram stays internally consistent enough for
// monitoring (counts never go negative, buckets never underflow).
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Snapshot returns a point-in-time copy for rendering. Buckets are
// loaded one at a time, so a snapshot taken during concurrent Observes
// is approximate — fine for monitoring, not a linearizable cut.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	if m := h.min.Load(); m != 0 {
		s.Min = ^m
	}
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a frozen view of a Histogram.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Min     uint64
	Max     uint64
	Buckets [histBuckets]uint64
}

// Merge folds another snapshot into this one, as if both histograms had
// observed one combined stream. Callers with one histogram per
// connection (e.g. a batch-size distribution per mirror transport) merge
// the snapshots to render a single table.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	if o.Count == 0 {
		return s
	}
	if s.Count == 0 {
		return o
	}
	out := s
	out.Count += o.Count
	out.Sum += o.Sum
	if o.Min < out.Min {
		out.Min = o.Min
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	for i := range out.Buckets {
		out.Buckets[i] += o.Buckets[i]
	}
	return out
}

// bucketBounds returns the value range [lo, hi] bucket i covers.
func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	lo = uint64(1) << (i - 1)
	hi = lo<<1 - 1
	if i == 64 {
		hi = math.MaxUint64
	}
	return lo, hi
}

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by locating the
// bucket holding the target rank and interpolating linearly inside it,
// clamped to the observed min and max so p0/p100 are exact.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if seen+float64(n) >= rank {
			lo, hi := bucketBounds(i)
			frac := 0.0
			if n > 0 {
				frac = (rank - seen) / float64(n)
			}
			v := float64(lo) + frac*float64(hi-lo)
			if v < float64(s.Min) {
				v = float64(s.Min)
			}
			if v > float64(s.Max) {
				v = float64(s.Max)
			}
			return v
		}
		seen += float64(n)
	}
	return float64(s.Max)
}
