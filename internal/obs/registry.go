package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Registry holds named metrics and renders them as Prometheus text
// exposition format. Registration order is preserved in the output so
// dumps are stable and diffable; names should follow the
// prometheus_style_snake_case convention with a unit suffix
// (_ns, _bytes, _total).
type Registry struct {
	mu      sync.Mutex
	entries []regEntry
}

type regEntry struct {
	name    string
	help    string
	counter *Counter
	gauge   func() uint64
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(e regEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.entries {
		if r.entries[i].name == e.name {
			// Last registration wins; re-registering after a component
			// restart (e.g. core.Attach after a crash) must not duplicate
			// rows in the exposition.
			r.entries[i] = e
			return
		}
	}
	r.entries = append(r.entries, e)
}

// RegisterCounter exposes c under name.
func (r *Registry) RegisterCounter(name, help string, c *Counter) {
	r.add(regEntry{name: name, help: help, counter: c})
}

// RegisterGauge exposes the value returned by fn under name. fn is
// called at render time and must be safe for concurrent use.
func (r *Registry) RegisterGauge(name, help string, fn func() uint64) {
	r.add(regEntry{name: name, help: help, gauge: fn})
}

// RegisterHistogram exposes h under name as a Prometheus summary with
// p50/p95/p99/p999 quantiles.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	r.add(regEntry{name: name, help: help, hist: h})
}

// Histogram returns the registered histogram by name, or nil. Useful
// for tools that render one specific distribution specially.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.entries {
		if e.name == name {
			return e.hist
		}
	}
	return nil
}

// quantiles rendered for every histogram, in exposition order.
var summaryQuantiles = []float64{0.5, 0.95, 0.99, 0.999}

// helpEscaper applies the exposition-format HELP escaping rules:
// backslash and newline are the only characters that need it.
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// WriteText renders every registered metric in Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	entries := make([]regEntry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()
	for _, e := range entries {
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, helpEscaper.Replace(e.help)); err != nil {
				return err
			}
		}
		var err error
		switch {
		case e.counter != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", e.name, e.name, e.counter.Load())
		case e.gauge != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", e.name, e.name, e.gauge())
		case e.hist != nil:
			s := e.hist.Snapshot()
			if _, err = fmt.Fprintf(w, "# TYPE %s summary\n", e.name); err != nil {
				return err
			}
			for _, q := range summaryQuantiles {
				if _, err = fmt.Fprintf(w, "%s{quantile=%q} %g\n", e.name, fmt.Sprintf("%g", q), s.Quantile(q)); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", e.name, s.Sum, e.name, s.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Names returns the registered metric names, sorted. Mostly for tests.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.entries))
	for i, e := range r.entries {
		names[i] = e.name
	}
	sort.Strings(names)
	return names
}

// ServeHTTP implements http.Handler so a registry can be mounted
// directly on a -metrics-addr listener.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WriteText(w)
}
