package guardian

import (
	"testing"

	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

// parked wraps a transport and blocks every write on the gate channel —
// a mirror that answers probes but cannot keep up with the quorum.
type parked struct {
	transport.Transport
	gate chan struct{}
}

func (p *parked) Write(seg uint32, offset uint64, data []byte) error {
	<-p.gate
	return p.Transport.Write(seg, offset, data)
}

func (p *parked) WriteBatch(writes []transport.BatchWrite) error {
	<-p.gate
	if bw, ok := p.Transport.(transport.BatchWriter); ok {
		return bw.WriteBatch(writes)
	}
	for _, w := range writes {
		if err := p.Transport.Write(w.Seg, w.Offset, w.Data); err != nil {
			return err
		}
	}
	return nil
}

// TestLagLimitTreatsLaggingMirrorAsSuspect pins the guardian's
// lag-aware health: a quorum mirror whose catch-up queue exceeds
// LagLimit counts as a missed heartbeat even though it answers probes,
// walking it toward the rebuild that resyncs it — and it relaxes back
// to Healthy once the lag drains.
func TestLagLimitTreatsLaggingMirrorAsSuspect(t *testing.T) {
	clock := simclock.NewSim()
	gate := make(chan struct{})
	var mirrors []netram.Mirror
	for i := 0; i < 3; i++ {
		srv := memserver.New(memserver.WithLabel("node" + string(rune('A'+i))))
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
		if err != nil {
			t.Fatal(err)
		}
		var tp transport.Transport = tr
		if i == 2 {
			tp = &parked{Transport: tr, gate: gate}
		}
		mirrors = append(mirrors, netram.Mirror{Name: srv.Label(), T: tp})
	}
	client, err := netram.NewClient(mirrors, netram.WithQuorum(2))
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(client, clock, Config{Misses: 3, LagLimit: 4})
	if err != nil {
		t.Fatal(err)
	}

	reg, err := client.Malloc("db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Nothing in flight: every mirror is healthy.
	g.Poll()
	for _, row := range g.Status() {
		if row.State != Healthy {
			t.Fatalf("mirror %d %v before any lag", row.Slot, row.State)
		}
	}

	// Park mirror C behind 6 quorum writes — past the LagLimit of 4.
	for i := 0; i < 6; i++ {
		if err := client.Push(reg, uint64(i)*64, 64); err != nil {
			t.Fatal(err)
		}
	}
	g.Poll()
	rows := g.Status()
	if rows[2].State != Suspect {
		t.Errorf("lagging mirror state = %v, want Suspect", rows[2].State)
	}
	if rows[2].CatchUp <= 4 {
		t.Errorf("reported catch-up lag = %d, want > 4", rows[2].CatchUp)
	}
	for i := 0; i < 2; i++ {
		if rows[i].State != Healthy {
			t.Errorf("fast mirror %d %v, want Healthy", i, rows[i].State)
		}
	}

	// Drain the lag: the mirror relaxes back to Healthy on the next
	// pass without ever being fenced.
	close(gate)
	client.WaitCatchUp()
	g.Poll()
	rows = g.Status()
	if rows[2].State != Healthy {
		t.Errorf("drained mirror state = %v, want Healthy", rows[2].State)
	}
	if rows[2].CatchUp != 0 {
		t.Errorf("drained catch-up lag = %d, want 0", rows[2].CatchUp)
	}
}
