package guardian

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

// rig is a netram client over n in-process mirrors plus s spare nodes,
// all sharing one clock.
type rig struct {
	net     *netram.Client
	servers []*memserver.Server
	spares  []netram.Mirror
	spareSv []*memserver.Server
	clock   simclock.Clock
}

func newRig(t *testing.T, nMirrors, nSpares int, clock simclock.Clock) *rig {
	t.Helper()
	node := func(label string) (netram.Mirror, *memserver.Server) {
		srv := memserver.New(memserver.WithLabel(label))
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
		if err != nil {
			t.Fatal(err)
		}
		return netram.Mirror{Name: label, T: tr}, srv
	}
	r := &rig{clock: clock}
	var mirrors []netram.Mirror
	for i := 0; i < nMirrors; i++ {
		m, srv := node("node" + string(rune('A'+i)))
		mirrors = append(mirrors, m)
		r.servers = append(r.servers, srv)
	}
	for i := 0; i < nSpares; i++ {
		m, srv := node(fmt.Sprintf("spare%d", i))
		r.spares = append(r.spares, m)
		r.spareSv = append(r.spareSv, srv)
	}
	net, err := netram.NewClient(mirrors)
	if err != nil {
		t.Fatal(err)
	}
	r.net = net
	return r
}

// tick advances the simulated clock by d and runs the detector.
func tick(t *testing.T, g *Guardian, clock *simclock.SimClock, d time.Duration) {
	t.Helper()
	clock.Advance(d)
	if !g.Tick() {
		t.Fatal("Tick did not fire after advancing past the interval")
	}
}

// TestGuardianKillMidWorkload is the acceptance scenario: a mirror dies
// in the middle of a transactional workload; the guardian confirms the
// death within the miss threshold, rebuilds onto a spare while further
// transactions commit, and afterwards every region is byte-identical on
// every mirror with zero lost commits.
func TestGuardianKillMidWorkload(t *testing.T) {
	clock := simclock.NewSim()
	r := newRig(t, 3, 1, clock)
	lib, err := core.Init(r.net, clock)
	if err != nil {
		t.Fatal(err)
	}
	db, err := lib.CreateDB("accounts", 32768)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.InitDB(db); err != nil {
		t.Fatal(err)
	}

	var events []Event
	var evMu sync.Mutex
	g, err := New(r.net, clock, Config{
		Interval: time.Second,
		Misses:   3,
		Spares:   r.spares,
		OnEvent: func(ev Event) {
			evMu.Lock()
			events = append(events, ev)
			evMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	commit := func(n int) {
		t.Helper()
		for k := 0; k < n; k++ {
			if err := lib.Update(func(tx *core.Tx) error {
				off := uint64((int(lib.CommittedTxID()) * 128) % 32000)
				if err := tx.SetRange(db, off, 64); err != nil {
					return err
				}
				copy(db.Bytes()[off:off+64], bytes.Repeat([]byte{byte(lib.CommittedTxID() + 1)}, 64))
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	commit(5)
	tick(t, g, clock, time.Second)
	for _, row := range g.Status() {
		if row.State != Healthy {
			t.Fatalf("slot %d %s before the kill", row.Slot, row.State)
		}
	}

	// Kill mirror 1 mid-workload.
	r.servers[1].Crash()
	commit(3)

	// Detection within the threshold: two suspect beats, the third
	// confirms death and triggers the rebuild — during which more
	// transactions commit concurrently.
	tick(t, g, clock, time.Second)
	tick(t, g, clock, time.Second)
	if st := g.Status()[1]; st.State != Suspect || st.Misses != 2 {
		t.Fatalf("after 2 missed beats: %+v", st)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		commit(10)
	}()
	tick(t, g, clock, time.Second) // confirms death, rebuilds synchronously
	wg.Wait()

	st := g.Status()[1]
	if st.State != Restored {
		t.Fatalf("slot 1 after rebuild: %+v", st)
	}
	if st.Mirror != "spare0" {
		t.Fatalf("slot 1 occupied by %q, want spare0", st.Mirror)
	}
	if st.Deaths != 1 || st.RebuildBytes == 0 {
		t.Fatalf("health row after rebuild: %+v", st)
	}
	if g.SparesLeft() != 0 {
		t.Fatalf("spares left = %d, want 0", g.SparesLeft())
	}
	if r.net.Live() != 3 {
		t.Fatalf("live mirrors = %d, want 3 (replication factor restored)", r.net.Live())
	}

	// Zero lost commits: every region byte-identical on every mirror,
	// and one more transaction lands everywhere.
	commit(1)
	if got := lib.CommittedTxID(); got != 19 {
		t.Fatalf("committed tx id = %d, want 19", got)
	}
	if mm, err := r.net.VerifyAll(); err != nil || len(mm) != 0 {
		t.Fatalf("verify after rebuild: %v %v", mm, err)
	}

	// The next good beat relaxes Restored to Healthy.
	tick(t, g, clock, time.Second)
	if st := g.Status()[1]; st.State != Healthy {
		t.Fatalf("slot 1 after restored beat: %v", st.State)
	}

	// The state machine walked exactly the documented path.
	var path []State
	evMu.Lock()
	for _, ev := range events {
		if ev.Slot == 1 {
			path = append(path, ev.To)
		}
	}
	evMu.Unlock()
	want := []State{Suspect, Dead, Rebuilding, Restored, Healthy}
	if fmt.Sprint(path) != fmt.Sprint(want) {
		t.Fatalf("slot 1 transitions = %v, want %v", path, want)
	}

	m := g.Metrics()
	if m.Deaths.Load() != 1 || m.Rebuilds.Load() != 1 || m.RebuildFailures.Load() != 0 {
		t.Fatalf("metrics: deaths=%d rebuilds=%d failures=%d",
			m.Deaths.Load(), m.Rebuilds.Load(), m.RebuildFailures.Load())
	}
}

// TestGuardianIdleIsClockNeutral pins the reproduction guarantee: with
// every mirror healthy, detector passes charge no virtual time, so a
// guardian left enabled cannot shift a reproduced figure.
func TestGuardianIdleIsClockNeutral(t *testing.T) {
	clock := simclock.NewSim()
	r := newRig(t, 3, 1, clock)
	g, err := New(r.net, clock, Config{Interval: time.Second, Misses: 3, Spares: r.spares})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := r.net.Malloc("fig", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.net.PushAll(reg); err != nil {
		t.Fatal(err)
	}
	before := clock.Now()
	for i := 0; i < 50; i++ {
		g.Poll()
	}
	if after := clock.Now(); after != before {
		t.Fatalf("idle guardian advanced virtual time by %v", after-before)
	}
	if got := g.Metrics().Heartbeats.Load(); got != 150 {
		t.Fatalf("heartbeats = %d, want 150", got)
	}
}

// TestGuardianRevivesHealedPartition: a partitioned node keeps its
// memory; when it answers again the guardian reintegrates it in place
// instead of burning a spare.
func TestGuardianRevivesHealedPartition(t *testing.T) {
	clock := simclock.NewSim()
	r := newRig(t, 2, 0, clock)
	reg, err := r.net.Malloc("db", 8192)
	if err != nil {
		t.Fatal(err)
	}
	copy(reg.Local, []byte("partition tolerant"))
	if err := r.net.PushAll(reg); err != nil {
		t.Fatal(err)
	}
	g, err := New(r.net, clock, Config{Interval: time.Second, Misses: 2})
	if err != nil {
		t.Fatal(err)
	}

	r.servers[1].Partition()
	tick(t, g, clock, time.Second)
	tick(t, g, clock, time.Second)
	st := g.Status()[1]
	if st.State != Dead {
		t.Fatalf("slot 1 after threshold: %v", st.State)
	}
	// Dead with an empty pool: recorded, not fatal.
	if !errors.Is(st.LastError, ErrNoSpares) {
		t.Fatalf("LastError = %v, want ErrNoSpares", st.LastError)
	}
	if r.net.Live() != 1 {
		t.Fatalf("live = %d, want 1", r.net.Live())
	}

	r.servers[1].Heal()
	tick(t, g, clock, time.Second)
	if st := g.Status()[1]; st.State != Restored {
		t.Fatalf("slot 1 after heal: %+v", st)
	}
	if got := g.Metrics().Revives.Load(); got != 1 {
		t.Fatalf("revives = %d, want 1", got)
	}
	if r.net.Live() != 2 {
		t.Fatalf("live after revive = %d, want 2", r.net.Live())
	}
	if mm, err := r.net.VerifyAll(); err != nil || len(mm) != 0 {
		t.Fatalf("verify after revive: %v %v", mm, err)
	}
}

// TestGuardianRebuildFailureReturnsSpare: a rebuild that cannot finish
// puts the spare back at the head of the pool and leaves the slot Dead
// for the next pass to retry.
func TestGuardianRebuildFailureReturnsSpare(t *testing.T) {
	clock := simclock.NewSim()
	r := newRig(t, 2, 1, clock)
	if _, err := r.net.Malloc("db", 4096); err != nil {
		t.Fatal(err)
	}
	g, err := New(r.net, clock, Config{Interval: time.Second, Misses: 1, Spares: r.spares})
	if err != nil {
		t.Fatal(err)
	}
	r.servers[1].Crash()
	r.spareSv[0].Partition() // the spare is unreachable too
	tick(t, g, clock, time.Second)
	st := g.Status()[1]
	if st.State != Dead || st.LastError == nil {
		t.Fatalf("after failed rebuild: %+v", st)
	}
	if g.SparesLeft() != 1 {
		t.Fatalf("spare consumed by a failed rebuild: left=%d", g.SparesLeft())
	}
	if g.Metrics().RebuildFailures.Load() != 1 {
		t.Fatal("rebuild failure not counted")
	}

	// The spare comes back: the next pass retries and succeeds.
	r.spareSv[0].Heal()
	tick(t, g, clock, time.Second)
	if st := g.Status()[1]; st.State != Restored {
		t.Fatalf("after retry: %+v", st)
	}
	if g.SparesLeft() != 0 || r.net.Live() != 2 {
		t.Fatalf("retry outcome: spares=%d live=%d", g.SparesLeft(), r.net.Live())
	}
}

// TestGuardianWallClockLoop smoke-tests Start/Stop end to end on real
// time: kill a mirror, watch the loop detect and rebuild.
func TestGuardianWallClockLoop(t *testing.T) {
	clock := simclock.NewWall()
	r := newRig(t, 2, 1, clock)
	reg, err := r.net.Malloc("db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	copy(reg.Local, []byte("wall clock"))
	if err := r.net.PushAll(reg); err != nil {
		t.Fatal(err)
	}
	g, err := New(r.net, clock, Config{Interval: 2 * time.Millisecond, Misses: 2, Spares: r.spares})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(); err == nil {
		t.Fatal("double Start allowed")
	}
	defer g.Stop()

	r.servers[1].Crash()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := g.Status()[1]
		if st.Deaths >= 1 && (st.State == Restored || st.State == Healthy) && r.net.Live() == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("loop never restored the mirror: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if mm, err := r.net.VerifyAll(); err != nil || len(mm) != 0 {
		t.Fatalf("verify: %v %v", mm, err)
	}
	g.Stop() // idempotent with the deferred Stop
}

func TestStateString(t *testing.T) {
	want := map[State]string{
		Healthy: "healthy", Suspect: "suspect", Dead: "dead",
		Rebuilding: "rebuilding", Restored: "restored", State(42): "state(42)",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), str)
		}
	}
}

func TestNewValidation(t *testing.T) {
	clock := simclock.NewSim()
	r := newRig(t, 1, 0, clock)
	if _, err := New(nil, clock, Config{}); err == nil {
		t.Error("nil client accepted")
	}
	if _, err := New(r.net, nil, Config{}); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := New(r.net, clock, Config{Spares: []netram.Mirror{{Name: "x"}}}); err == nil {
		t.Error("transportless spare accepted")
	}
	g, err := New(r.net, clock, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults applied; Tick not due until one interval elapses.
	if g.Tick() {
		t.Error("Tick fired with no time elapsed")
	}
	clock.Advance(time.Second)
	if !g.Tick() {
		t.Error("Tick did not fire after the default interval")
	}
}
