// Package guardian watches a network-RAM client's mirrors and restores
// the replication degree automatically when one dies.
//
// The paper's reliability argument says committed data survive as long
// as no two mirrors fail within the same repair interval — which makes
// the length of that interval the whole story. PERSEAS as published
// leaves the repair to an operator; the guardian closes the loop: a
// heartbeat failure detector confirms a mirror dead after a configured
// number of consecutive missed probes, then either revives the node in
// place (it answered again — a partition healed, a process restarted)
// or picks a replacement from a spare-node pool and re-replicates every
// live region onto it online, without pausing in-flight transactions.
//
// Every mirror walks a small state machine:
//
//	Healthy → Suspect → Dead → Rebuilding → Restored (→ Healthy)
//
// Suspect means probes are being missed but the threshold hasn't been
// reached; Dead fences the mirror off the data path; Rebuilding covers
// the bulk copy and catch-up; Restored is the first beat after a
// successful revive or rebuild, relaxing back to Healthy on the next
// good probe.
//
// Time discipline: the detector reads the client's clock — under
// SimClock, reproduced figures drive Tick explicitly and probes charge
// no virtual time (transport.Prober), so a guardian that never fires
// leaves every figure byte-identical. Start/Stop run the same Tick loop
// off a wall-clock ticker for live deployments. Only wall-clock
// metrics may use real time; the detector itself never does.
package guardian

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/ics-forth/perseas/internal/flight"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/trace"
)

// State is a mirror's position in the guardian's health state machine.
type State int

// The guardian health states, in escalation order.
const (
	// Healthy: the mirror answers probes.
	Healthy State = iota
	// Suspect: one or more consecutive probes missed, threshold not yet
	// reached.
	Suspect
	// Dead: the miss threshold fired; the mirror is fenced off the data
	// path and awaits revival or replacement.
	Dead
	// Rebuilding: a replacement from the spare pool is being filled by
	// the online copy.
	Rebuilding
	// Restored: revived or rebuilt this cycle; relaxes to Healthy on the
	// next good probe.
	Restored
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	case Rebuilding:
		return "rebuilding"
	case Restored:
		return "restored"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ErrNoSpares is returned (and recorded in MirrorHealth.LastError) when
// a mirror is confirmed dead but the spare pool is empty.
var ErrNoSpares = errors.New("guardian: mirror dead and no spare nodes left")

// Config parameterises a Guardian.
type Config struct {
	// Interval is the heartbeat period on the client's clock. Zero
	// defaults to one second.
	Interval time.Duration
	// Misses is how many consecutive failed probes confirm a mirror
	// dead. Zero defaults to 3.
	Misses int
	// Spares is the pool of standby nodes used as replacements, in
	// order. Each must carry a ready transport.
	Spares []netram.Mirror
	// OnEvent, when non-nil, observes every state transition (for logs
	// and CLIs). Called without guardian locks held.
	OnEvent func(Event)
	// LagLimit, when positive, treats a quorum mirror whose catch-up
	// queue holds more than this many pending writes as missing a
	// heartbeat even when it still answers probes: a reachable replica
	// that cannot keep up is as much a durability risk as a silent one,
	// and the miss path walks it through Suspect to the rebuild that
	// resyncs it. Zero disables the check (all-ack clients have no lag).
	LagLimit int
}

// Event is one state transition of one mirror.
type Event struct {
	// Slot is the mirror's index in the client topology.
	Slot int
	// Mirror is the mirror's label at the time of the event.
	Mirror string
	// From and To are the transition endpoints.
	From, To State
	// When is the clock reading (virtual under SimClock) at the
	// transition.
	When time.Duration
	// Err carries the probe or rebuild error behind the transition, if
	// any.
	Err error
}

// MirrorHealth is one row of the guardian's queryable status.
type MirrorHealth struct {
	// Slot is the mirror's index in the client topology.
	Slot int
	// Mirror is the current label occupying the slot.
	Mirror string
	// State is the slot's position in the health state machine.
	State State
	// Misses is the current consecutive-miss count.
	Misses int
	// LastBeat is the clock reading of the last successful probe.
	LastBeat time.Duration
	// Deaths counts how many times the slot was confirmed dead.
	Deaths int
	// RebuildBytes is the payload copied onto replacements for this
	// slot, cumulative.
	RebuildBytes uint64
	// SourceBytes is the payload this slot's mirror served as the read
	// source of other slots' rebuilds, cumulative. Under a pipelined
	// rebuild the bulk-copy reads stripe round-robin across the
	// survivors, so roughly equal values here mean the copy rode their
	// aggregate bandwidth instead of hammering the first live node.
	SourceBytes uint64
	// LastError is the most recent probe or rebuild error, nil when
	// healthy.
	LastError error
	// CatchUp is the mirror's pending quorum catch-up queue depth at
	// the time of the snapshot (always zero on all-ack clients).
	CatchUp int
}

// Metrics are the guardian's counters and histograms.
type Metrics struct {
	// Heartbeats counts successful probes.
	Heartbeats obs.Counter
	// Misses counts failed probes.
	Misses obs.Counter
	// Deaths counts confirmed mirror deaths.
	Deaths obs.Counter
	// Revives counts mirrors that rejoined in place.
	Revives obs.Counter
	// Rebuilds counts successful spare-node rebuilds.
	Rebuilds obs.Counter
	// RebuildFailures counts rebuilds that errored (the spare returns to
	// the pool).
	RebuildFailures obs.Counter
	// DetectionLatency observes, per death, the microseconds between the
	// last good beat and the death confirmation (clock delta — virtual
	// under SimClock).
	DetectionLatency obs.Histogram
	// RebuildDuration observes, per successful rebuild, its clock delta
	// in microseconds.
	RebuildDuration obs.Histogram
}

// mirrorState is the guardian's per-slot bookkeeping.
type mirrorState struct {
	state        State
	misses       int
	lastBeat     time.Duration
	deaths       int
	rebuildBytes uint64
	lastErr      error
}

// Guardian runs the failure detector and repair loop for one client.
type Guardian struct {
	client *netram.Client
	clock  simclock.Clock
	cfg    Config

	mu      sync.Mutex
	slots   []mirrorState
	spares  []netram.Mirror
	nextDue time.Duration
	metrics Metrics

	loopMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}

	// tracer records state transitions as instants and repairs as
	// infrastructure spans; nil disables. Set during wiring, before
	// Start.
	tracer *trace.Recorder
	// flight records state transitions as anomaly events; nil disables.
	// Set during wiring, before Start.
	flight *flight.Recorder
}

// stateSpanNames are the static span names for transition instants,
// indexed by the destination state (the trace recorder stores span
// names without copying, so they must be long-lived).
var stateSpanNames = [...]string{
	Healthy:    "mirror_healthy",
	Suspect:    "mirror_suspect",
	Dead:       "mirror_dead",
	Rebuilding: "mirror_rebuilding",
	Restored:   "mirror_restored",
}

// SetTracer attaches a span recorder. Every recorder method is
// nil-safe, so a nil tracer records nothing.
func (g *Guardian) SetTracer(rec *trace.Recorder) { g.tracer = rec }

// SetFlight attaches a flight recorder for transition anomaly events.
// Call during wiring, before Start; nil records nothing.
func (g *Guardian) SetFlight(r *flight.Recorder) { g.flight = r }

// New builds a Guardian over client, reading time from clock (pass the
// client's clock: the rig's SimClock for deterministic runs, a
// WallClock for live ones).
func New(client *netram.Client, clock simclock.Clock, cfg Config) (*Guardian, error) {
	if client == nil {
		return nil, errors.New("guardian: nil client")
	}
	if clock == nil {
		return nil, errors.New("guardian: nil clock")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Misses <= 0 {
		cfg.Misses = 3
	}
	for _, s := range cfg.Spares {
		if s.T == nil {
			return nil, fmt.Errorf("guardian: spare %q has no transport", s.Name)
		}
	}
	g := &Guardian{
		client: client,
		clock:  clock,
		cfg:    cfg,
		slots:  make([]mirrorState, client.Mirrors()),
		spares: append([]netram.Mirror(nil), cfg.Spares...),
	}
	now := clock.Now()
	for i := range g.slots {
		g.slots[i].lastBeat = now
	}
	g.nextDue = now + cfg.Interval
	return g, nil
}

// Metrics exposes the guardian's counters for registration or tests.
func (g *Guardian) Metrics() *Metrics { return &g.metrics }

// RegisterMetrics publishes the guardian's metrics on reg under the
// perseas_guardian_* names.
func (g *Guardian) RegisterMetrics(reg *obs.Registry) {
	m := &g.metrics
	reg.RegisterCounter("perseas_guardian_heartbeats_total", "successful mirror probes", &m.Heartbeats)
	reg.RegisterCounter("perseas_guardian_misses_total", "failed mirror probes", &m.Misses)
	reg.RegisterCounter("perseas_guardian_deaths_total", "mirrors confirmed dead", &m.Deaths)
	reg.RegisterCounter("perseas_guardian_revives_total", "mirrors revived in place", &m.Revives)
	reg.RegisterCounter("perseas_guardian_rebuilds_total", "spare-node rebuilds completed", &m.Rebuilds)
	reg.RegisterCounter("perseas_guardian_rebuild_failures_total", "spare-node rebuilds failed", &m.RebuildFailures)
	reg.RegisterGauge("perseas_guardian_spares_available", "standby nodes left in the pool", func() uint64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return uint64(len(g.spares))
	})
	reg.RegisterGauge("perseas_guardian_rebuild_bytes_total", "payload copied onto replacement mirrors, all slots", func() uint64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		var sum uint64
		for i := range g.slots {
			sum += g.slots[i].rebuildBytes
		}
		return sum
	})
	reg.RegisterHistogram("perseas_guardian_detection_latency_us", "last good beat to death confirmation", &m.DetectionLatency)
	reg.RegisterHistogram("perseas_guardian_rebuild_duration_us", "rebuild start to restored", &m.RebuildDuration)
}

// RebuildPipeline reports the client's rebuild bulk-copy read-ahead
// depth (1 = the sequential historical copy loop).
func (g *Guardian) RebuildPipeline() int { return g.client.RebuildPipeline() }

// SparesLeft reports how many standby nodes remain in the pool.
func (g *Guardian) SparesLeft() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.spares)
}

// Status reports one MirrorHealth row per slot, in slot order.
func (g *Guardian) Status() []MirrorHealth {
	g.mu.Lock()
	rows := make([]MirrorHealth, len(g.slots))
	for i, s := range g.slots {
		rows[i] = MirrorHealth{
			Slot:         i,
			State:        s.state,
			Misses:       s.misses,
			LastBeat:     s.lastBeat,
			Deaths:       s.deaths,
			RebuildBytes: s.rebuildBytes,
			LastError:    s.lastErr,
		}
	}
	g.mu.Unlock()
	src := g.client.RebuildSourceBytes()
	for i := range rows {
		rows[i].Mirror = g.client.MirrorName(i)
		rows[i].CatchUp = g.client.CatchUpPending(i)
		if i < len(src) {
			rows[i].SourceBytes = src[i]
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Slot < rows[j].Slot })
	return rows
}

// Tick runs one detector pass if the heartbeat interval has elapsed on
// the guardian's clock, and reports whether a pass ran. Deterministic
// harnesses call Tick after advancing the SimClock; Start's loop calls
// it off a wall-clock ticker.
func (g *Guardian) Tick() bool {
	now := g.clock.Now()
	g.mu.Lock()
	if now < g.nextDue {
		g.mu.Unlock()
		return false
	}
	g.nextDue = now + g.cfg.Interval
	g.mu.Unlock()
	g.pass(now)
	return true
}

// Poll forces a detector pass immediately, regardless of the interval.
// CLIs use it for a one-shot health snapshot.
func (g *Guardian) Poll() {
	g.pass(g.clock.Now())
}

// Start launches the wall-clock heartbeat loop. It is an error to
// Start a guardian twice without an intervening Stop.
func (g *Guardian) Start() error {
	g.loopMu.Lock()
	defer g.loopMu.Unlock()
	if g.stop != nil {
		return errors.New("guardian: already started")
	}
	g.stop = make(chan struct{})
	g.done = make(chan struct{})
	go g.loop(g.stop, g.done)
	return nil
}

// Stop halts the heartbeat loop and waits for an in-flight pass
// (including a rebuild) to finish.
func (g *Guardian) Stop() {
	g.loopMu.Lock()
	stop, done := g.stop, g.done
	g.stop, g.done = nil, nil
	g.loopMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (g *Guardian) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(g.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			g.Poll()
		}
	}
}

// pass probes every slot once and repairs what it finds dead. The
// guardian lock is never held across client calls: probes, revives and
// rebuilds run unlocked, so the data path and Status stay responsive
// during a long copy.
func (g *Guardian) pass(now time.Duration) {
	for i := 0; i < g.client.Mirrors(); i++ {
		err := g.client.ProbeMirror(i)
		if err == nil && g.cfg.LagLimit > 0 {
			// Lag-aware health: a mirror that answers probes but has
			// fallen too far behind the quorum counts as a miss, so the
			// ordinary Suspect→Dead→rebuild machinery resyncs it.
			if lag := g.client.CatchUpPending(i); lag > g.cfg.LagLimit {
				err = fmt.Errorf("guardian: catch-up lag %d writes exceeds limit %d", lag, g.cfg.LagLimit)
			}
		}

		g.mu.Lock()
		s := &g.slots[i]
		if s.state == Rebuilding {
			// A concurrent pass owns this slot's repair.
			g.mu.Unlock()
			continue
		}
		var ev *Event
		if err == nil {
			g.metrics.Heartbeats.Inc()
			s.lastBeat = now
			s.misses = 0
			s.lastErr = nil
			switch s.state {
			case Dead:
				// The node answers again: a healed partition or a
				// restarted process. Reintegrate it in place.
				g.mu.Unlock()
				g.revive(i, now)
				continue
			case Suspect, Restored:
				ev = g.transitionLocked(i, Healthy, nil, now)
			}
			g.mu.Unlock()
			g.emit(ev)
			continue
		}

		g.metrics.Misses.Inc()
		s.misses++
		s.lastErr = err
		if s.misses < g.cfg.Misses {
			if s.state == Healthy || s.state == Restored {
				ev = g.transitionLocked(i, Suspect, err, now)
			}
			g.mu.Unlock()
			g.emit(ev)
			continue
		}
		if s.state != Dead {
			g.metrics.Deaths.Inc()
			g.metrics.DetectionLatency.ObserveDuration(now - s.lastBeat)
			s.deaths++
			ev = g.transitionLocked(i, Dead, err, now)
		}
		g.mu.Unlock()
		g.emit(ev)
		// Confirmed dead (freshly or still, after an earlier repair could
		// not complete): fence it, then repair.
		_ = g.client.MarkMirrorDown(i)
		g.repair(i, now)
	}
}

// revive reintegrates a dead mirror that answers probes again.
func (g *Guardian) revive(slot int, now time.Duration) {
	sp := g.tracer.Start(trace.LayerGuardian, "revive")
	err := g.client.Revive(slot)
	sp.EndN(uint64(slot))
	g.mu.Lock()
	var ev *Event
	if err != nil {
		g.slots[slot].lastErr = err
		// Still Dead; the next pass retries or rebuilds.
	} else {
		g.metrics.Revives.Inc()
		ev = g.transitionLocked(slot, Restored, nil, now)
	}
	g.mu.Unlock()
	g.emit(ev)
}

// repair replaces a confirmed-dead mirror: revive if it answers again,
// else rebuild onto the next spare.
func (g *Guardian) repair(slot int, now time.Duration) {
	// One more probe before burning a spare: transient blips (a healed
	// partition) are reintegrated in place.
	if g.client.ProbeMirror(slot) == nil {
		g.revive(slot, now)
		return
	}

	g.mu.Lock()
	if len(g.spares) == 0 {
		g.slots[slot].lastErr = ErrNoSpares
		g.mu.Unlock()
		return
	}
	spare := g.spares[0]
	g.spares = g.spares[1:]
	ev := g.transitionLocked(slot, Rebuilding, nil, now)
	g.mu.Unlock()
	g.emit(ev)

	start := g.clock.Now()
	g.mu.Lock()
	base := g.slots[slot].rebuildBytes // cumulative across this slot's deaths
	g.mu.Unlock()
	sp := g.tracer.Start(trace.LayerGuardian, "rebuild")
	err := g.client.RebuildMirror(slot, spare, func(p netram.RebuildProgress) {
		g.mu.Lock()
		g.slots[slot].rebuildBytes = base + p.CopiedBytes
		g.mu.Unlock()
	})
	sp.EndN(uint64(slot))
	end := g.clock.Now()

	g.mu.Lock()
	if err != nil {
		g.metrics.RebuildFailures.Inc()
		g.slots[slot].lastErr = err
		// The spare was not consumed; return it to the head of the pool.
		g.spares = append([]netram.Mirror{spare}, g.spares...)
		ev = g.transitionLocked(slot, Dead, err, end)
		g.mu.Unlock()
		g.emit(ev)
		return
	}
	g.metrics.Rebuilds.Inc()
	g.metrics.RebuildDuration.ObserveDuration(end - start)
	g.slots[slot].misses = 0
	g.slots[slot].lastBeat = end
	g.slots[slot].lastErr = nil
	ev = g.transitionLocked(slot, Restored, nil, end)
	g.mu.Unlock()
	g.emit(ev)
}

// transitionLocked moves slot to state to, returning the Event to emit
// after the lock is released (nil when the state is unchanged).
func (g *Guardian) transitionLocked(slot int, to State, err error, now time.Duration) *Event {
	s := &g.slots[slot]
	if s.state == to {
		return nil
	}
	from := s.state
	s.state = to
	return &Event{Slot: slot, From: from, To: to, When: now, Err: err}
}

// emit delivers ev to the trace recorder and the configured observer,
// filling the mirror label outside the guardian lock.
func (g *Guardian) emit(ev *Event) {
	if ev == nil {
		return
	}
	g.tracer.Event(trace.LayerGuardian, stateSpanNames[ev.To], uint64(ev.Slot))
	if g.flight.Enabled() {
		g.flight.Record(flight.GuardianTransition, "guardian",
			fmt.Sprintf("%s: %s -> %s", g.client.MirrorName(ev.Slot), ev.From, ev.To),
			uint64(ev.Slot))
	}
	if g.cfg.OnEvent == nil {
		return
	}
	ev.Mirror = g.client.MirrorName(ev.Slot)
	g.cfg.OnEvent(*ev)
}
