// Package flight is the anomaly flight recorder: a bounded in-memory
// ring of structured events capturing the moments that matter when a
// cluster misbehaves — admission-control rejections, mirror
// degradations and push retries, guardian state transitions, quorum
// catch-up overflows, in-doubt commit repairs. Metrics say THAT these
// happened; the flight recorder says WHEN, in what order, and with
// what detail, which is what an operator actually needs at 3am.
//
// The recorder is deliberately cheap: a disabled recorder costs one
// atomic load per Record call and a nil recorder costs a nil check, so
// it can be threaded through hot paths unconditionally. Enabled, each
// event is one short critical section on a fixed-size ring — no
// allocation beyond the detail string the caller already built, no
// unbounded growth; when the ring wraps, the oldest events are dropped
// and counted.
//
// Snapshots serve over HTTP as JSON (mount the recorder on the metrics
// mux at /debug/events) and dump to a writer on shutdown, so a crash
// post-mortem has the last few thousand anomalies in order.
package flight

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/simclock"
)

// Kind classifies a recorded anomaly.
type Kind uint8

// The anomaly kinds, one per class of event worth replaying after an
// incident.
const (
	// BusyReject: the server's admission control rejected a request
	// (transaction, pipeline, or connection limit).
	BusyReject Kind = iota
	// ConnReject: a connection was refused at the listener limit.
	ConnReject
	// MalformedFrame: a connection died on an undecodable frame.
	MalformedFrame
	// MirrorDegrade: a mirror was marked down and writes continue
	// degraded.
	MirrorDegrade
	// MirrorRetry: a push to a mirror failed transiently and was
	// retried in place.
	MirrorRetry
	// GuardianTransition: the failure-detector state machine moved
	// (Healthy→Suspect, Suspect→Dead, Dead→Rebuilding, ...).
	GuardianTransition
	// CatchUpOverflow: a quorum-commit straggler's catch-up queue
	// overflowed and the mirror fell back to a full rebuild.
	CatchUpOverflow
	// InDoubtRepair: a decided cross-shard commit stuck in doubt was
	// re-driven to completion.
	InDoubtRepair
	// RecoveryPhase: crash recovery entered a phase (metadata fetch,
	// slot scan, database fetch, rollback, repair publish); the arg is
	// the recovery's parallelism.
	RecoveryPhase
	// RebuildPhase: an online mirror rebuild entered a phase (bulk
	// copy, catch-up epochs, final drain); the arg is the slot being
	// rebuilt.
	RebuildPhase
	numKinds
)

var kindNames = [numKinds]string{
	"busy_reject",
	"conn_reject",
	"malformed_frame",
	"mirror_degrade",
	"mirror_retry",
	"guardian_transition",
	"catchup_overflow",
	"indoubt_repair",
	"recovery_phase",
	"rebuild_phase",
}

// String returns the kind's snake_case name.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return "unknown"
}

// MarshalJSON renders the kind as its name, so /debug/events is
// readable without a decoder ring.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// Event is one recorded anomaly.
type Event struct {
	// Seq is the event's position in the recorder's total order,
	// starting at 1; gaps at the front of a snapshot mean the ring
	// wrapped and older events were dropped.
	Seq uint64 `json:"seq"`
	// At is the recorder clock's reading when the event was recorded.
	At time.Duration `json:"at_ns"`
	// Kind classifies the anomaly.
	Kind Kind `json:"kind"`
	// Source names the component that recorded it ("txserver",
	// "netram", "guardian[ram1]", "router").
	Source string `json:"source"`
	// Detail is a short human-readable specifics string.
	Detail string `json:"detail,omitempty"`
	// Arg is an optional numeric payload (a limit, a retry count, a
	// decision id).
	Arg uint64 `json:"arg,omitempty"`
}

// DefaultCapacity is the ring size when New is given none.
const DefaultCapacity = 1024

// Recorder is the bounded event ring. The zero value is unusable; use
// New. All methods are safe for concurrent use and safe on a nil
// receiver (no-ops), so components thread an optional recorder without
// guarding every call site.
type Recorder struct {
	enabled atomic.Bool
	dropped obs.Counter
	total   obs.Counter

	mu    sync.Mutex
	clock simclock.Clock
	ring  []Event
	next  uint64 // total events ever recorded; Seq of the next is next+1
}

// New builds a recorder with the given ring capacity (<= 0 selects
// DefaultCapacity). It starts disabled.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{ring: make([]Event, 0, capacity)}
}

// Enable turns recording on.
func (r *Recorder) Enable() {
	if r != nil {
		r.enabled.Store(true)
	}
}

// Enabled reports whether Record stores events.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// SetClock sets the clock stamping events (nil keeps events unstamped;
// processes sharing a clock with their trace recorder get events that
// line up with spans).
func (r *Recorder) SetClock(clk simclock.Clock) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.clock = clk
	r.mu.Unlock()
}

// Record stores one event. Disabled or nil recorders return
// immediately — this is the hot-path cost.
func (r *Recorder) Record(kind Kind, source, detail string, arg uint64) {
	if r == nil || !r.enabled.Load() {
		return
	}
	r.mu.Lock()
	var at time.Duration
	if r.clock != nil {
		at = r.clock.Now()
	}
	r.next++
	ev := Event{Seq: r.next, At: at, Kind: kind, Source: source, Detail: detail, Arg: arg}
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, ev)
	} else {
		r.ring[(r.next-1)%uint64(cap(r.ring))] = ev
		r.dropped.Inc()
	}
	r.mu.Unlock()
	r.total.Inc()
}

// Snapshot returns the retained events, oldest first.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.ring))
	if len(r.ring) < cap(r.ring) {
		return append(out, r.ring...)
	}
	// Full ring: the oldest retained event sits just past the newest.
	head := int(r.next % uint64(cap(r.ring)))
	out = append(out, r.ring[head:]...)
	return append(out, r.ring[:head]...)
}

// Total reports how many events were ever recorded; Dropped how many
// fell off the ring.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total.Load()
}

// Dropped reports how many events the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// RegisterMetrics publishes the recorder's volume counters on reg.
func (r *Recorder) RegisterMetrics(reg *obs.Registry) {
	if r == nil {
		return
	}
	reg.RegisterCounter("perseas_flight_events_total", "anomaly events recorded", &r.total)
	reg.RegisterCounter("perseas_flight_events_dropped_total", "anomaly events dropped off the ring", &r.dropped)
}

// dump is the JSON document served at /debug/events and written on
// shutdown.
type dump struct {
	Total   uint64  `json:"total"`
	Dropped uint64  `json:"dropped"`
	Events  []Event `json:"events"`
}

// WriteJSON writes the recorder's state as one indented JSON document.
func (r *Recorder) WriteJSON(w io.Writer) error {
	d := dump{Total: r.Total(), Dropped: r.Dropped(), Events: r.Snapshot()}
	if d.Events == nil {
		d.Events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ServeHTTP implements http.Handler: mount the recorder at
// /debug/events next to the metrics registry.
func (r *Recorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = r.WriteJSON(w)
}
