package flight

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/simclock"
)

// TestRingWrap: overflowing the ring drops the oldest events, keeps
// the newest in order, and counts the drops.
func TestRingWrap(t *testing.T) {
	r := New(4)
	r.Enable()
	clk := simclock.NewSim()
	r.SetClock(clk)
	for i := 0; i < 10; i++ {
		clk.Advance(time.Millisecond)
		r.Record(BusyReject, "txserver", "over limit", uint64(i))
	}
	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("snapshot holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(7 + i)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.Arg != wantSeq-1 {
			t.Fatalf("event %d has arg %d, want %d", i, ev.Arg, wantSeq-1)
		}
		if ev.At != time.Duration(wantSeq)*time.Millisecond {
			t.Fatalf("event %d stamped %v, want %v", i, ev.At, time.Duration(wantSeq)*time.Millisecond)
		}
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Fatalf("total=%d dropped=%d, want 10/6", r.Total(), r.Dropped())
	}
}

// TestDisabledAndNil: a disabled recorder records nothing; a nil one
// is safe everywhere.
func TestDisabledAndNil(t *testing.T) {
	r := New(0)
	r.Record(MirrorDegrade, "netram", "down", 0)
	if r.Total() != 0 || len(r.Snapshot()) != 0 {
		t.Fatal("disabled recorder stored an event")
	}
	var nilRec *Recorder
	nilRec.Record(MirrorDegrade, "netram", "down", 0)
	nilRec.Enable()
	nilRec.SetClock(simclock.NewSim())
	if nilRec.Enabled() || nilRec.Total() != 0 || nilRec.Dropped() != 0 || nilRec.Snapshot() != nil {
		t.Fatal("nil recorder misbehaved")
	}
	nilRec.RegisterMetrics(obs.NewRegistry())
}

// TestServeHTTPAndKinds: the HTTP dump is JSON with snake_case kind
// names and the volume counters.
func TestServeHTTPAndKinds(t *testing.T) {
	r := New(8)
	r.Enable()
	r.Record(GuardianTransition, "guardian[ram1]", "healthy->suspect", 0)
	r.Record(CatchUpOverflow, "netram", "queue full", 512)

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var d struct {
		Total   uint64 `json:"total"`
		Dropped uint64 `json:"dropped"`
		Events  []struct {
			Seq    uint64 `json:"seq"`
			Kind   string `json:"kind"`
			Source string `json:"source"`
			Arg    uint64 `json:"arg"`
		} `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatalf("decode /debug/events: %v", err)
	}
	if d.Total != 2 || d.Dropped != 0 || len(d.Events) != 2 {
		t.Fatalf("dump = %+v", d)
	}
	if d.Events[0].Kind != "guardian_transition" || d.Events[1].Kind != "catchup_overflow" {
		t.Fatalf("kind names = %q, %q", d.Events[0].Kind, d.Events[1].Kind)
	}
	if d.Events[1].Arg != 512 {
		t.Fatalf("arg = %d, want 512", d.Events[1].Arg)
	}

	// An empty recorder still dumps a well-formed document with an
	// events array, not null.
	var buf bytes.Buffer
	if err := New(4).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"events": []`)) {
		t.Fatalf("empty dump = %s", buf.String())
	}
}

// TestMetricsRegistered: the volume counters publish under
// perseas_flight_*.
func TestMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	r := New(4)
	r.Enable()
	r.RegisterMetrics(reg)
	r.Record(InDoubtRepair, "router", "re-driven", 7)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("perseas_flight_events_total 1")) {
		t.Fatalf("exposition missing flight totals:\n%s", buf.String())
	}
}

// BenchmarkRecordDisabled pins the hot-path cost of a disabled
// recorder: one atomic load, no allocation.
func BenchmarkRecordDisabled(b *testing.B) {
	r := New(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(BusyReject, "txserver", "over limit", 1)
	}
}

// BenchmarkRecordNil pins the nil-receiver cost.
func BenchmarkRecordNil(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(BusyReject, "txserver", "over limit", 1)
	}
}

// BenchmarkRecordEnabled is the enabled cost for sizing: one short
// critical section.
func BenchmarkRecordEnabled(b *testing.B) {
	r := New(1024)
	r.Enable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(BusyReject, "txserver", "over limit", 1)
	}
}
