package netram

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

// rig is a client over n in-process mirror nodes sharing one clock.
type rig struct {
	client  *Client
	servers []*memserver.Server
	clock   *simclock.SimClock
}

func newRig(t *testing.T, nMirrors int, opts ...Option) *rig {
	t.Helper()
	clock := simclock.NewSim()
	var mirrors []Mirror
	var servers []*memserver.Server
	for i := 0; i < nMirrors; i++ {
		srv := memserver.New(memserver.WithLabel("node" + string(rune('A'+i))))
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
		if err != nil {
			t.Fatal(err)
		}
		mirrors = append(mirrors, Mirror{Name: srv.Label(), T: tr})
		servers = append(servers, srv)
	}
	c, err := NewClient(mirrors, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{client: c, servers: servers, clock: clock}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(nil); !errors.Is(err, ErrNoMirrors) {
		t.Errorf("nil mirrors: got %v", err)
	}
	if _, err := NewClient([]Mirror{{Name: "x", T: nil}}); err == nil {
		t.Error("nil transport should be rejected")
	}
}

func TestMallocPushFetch(t *testing.T) {
	r := newRig(t, 2)
	reg, err := r.client.Malloc("db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Size() != 4096 || len(reg.Local) != 4096 {
		t.Fatalf("bad region %+v", reg)
	}

	copy(reg.Local[100:], []byte("mirrored data"))
	if err := r.client.Push(reg, 100, 13); err != nil {
		t.Fatal(err)
	}

	// Both mirrors hold the bytes.
	for i, srv := range r.servers {
		got, err := srv.Read(reg.Handle(i).ID, 100, 13)
		if err != nil {
			t.Fatalf("mirror %d: %v", i, err)
		}
		if !bytes.Equal(got, []byte("mirrored data")) {
			t.Errorf("mirror %d holds %q", i, got)
		}
	}

	// Fetch reads it back.
	got, err := r.client.Fetch(reg, 100, 13)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("mirrored data")) {
		t.Errorf("fetch = %q", got)
	}
}

func TestMallocZeroSize(t *testing.T) {
	r := newRig(t, 1)
	if _, err := r.client.Malloc("db", 0); err == nil {
		t.Error("zero-size malloc should fail")
	}
}

func TestMallocUnwindsOnPartialFailure(t *testing.T) {
	r := newRig(t, 2)
	// Fill the second mirror so its malloc fails.
	small := memserver.New(memserver.WithCapacity(10))
	tr, err := transport.NewInProc(small, sci.DefaultParams(), r.clock)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient([]Mirror{
		{Name: "big", T: mustInProc(t, r.servers[0], r.clock)},
		{Name: "small", T: tr},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Malloc("db", 64); err == nil {
		t.Fatal("malloc should fail when one mirror is out of memory")
	}
	// The successful allocation on the big mirror was unwound.
	if got := r.servers[0].Held(); got != 0 {
		t.Errorf("big mirror still holds %d bytes", got)
	}
}

func mustInProc(t *testing.T, srv *memserver.Server, clock simclock.Clock) transport.Transport {
	t.Helper()
	tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestPushAlignmentExpansion(t *testing.T) {
	r := newRig(t, 1)
	reg, err := r.client.Malloc("db", 1024)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reg.Local {
		reg.Local[i] = byte(i)
	}
	// A 56-byte push at offset 68 covers four 16-byte slots of chunk
	// [64,128): draining those as small packets costs more than one
	// full 64-byte packet, so sci_memcpy widens the copy to the whole
	// aligned chunk.
	if err := r.client.Push(reg, 68, 56); err != nil {
		t.Fatal(err)
	}
	st := r.client.Stats()
	if st.PushedBytes != 56 {
		t.Errorf("PushedBytes = %d, want 56", st.PushedBytes)
	}
	if st.WireBytes != 64 {
		t.Errorf("WireBytes = %d, want 64 (aligned expansion)", st.WireBytes)
	}
	// The expanded bytes are correct on the mirror (identical to local).
	got, err := r.servers[0].Read(reg.Handle(0).ID, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, reg.Local[64:128]) {
		t.Error("expanded region mismatch on mirror")
	}
}

func TestPushNarrowEdgesNotExpanded(t *testing.T) {
	// Edge chunks touching only one or two 16-byte slots drain cheaply
	// as small packets; widening them would cost a full packet plus
	// extra bus words, so sci_memcpy leaves them alone.
	r := newRig(t, 1)
	reg, err := r.client.Malloc("db", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.client.Push(reg, 100, 40); err != nil { // 2-slot + 1-slot edges
		t.Fatal(err)
	}
	if st := r.client.Stats(); st.WireBytes != 40 {
		t.Errorf("WireBytes = %d, want 40 (narrow edges untouched)", st.WireBytes)
	}
}

func TestPushSmallNotExpanded(t *testing.T) {
	r := newRig(t, 1)
	reg, err := r.client.Malloc("db", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.client.Push(reg, 100, 8); err != nil {
		t.Fatal(err)
	}
	if st := r.client.Stats(); st.WireBytes != 8 {
		t.Errorf("WireBytes = %d, want 8 (no expansion below threshold)", st.WireBytes)
	}
}

func TestPushWithoutAlignment(t *testing.T) {
	r := newRig(t, 1, WithoutAlignment())
	reg, err := r.client.Malloc("db", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.client.Push(reg, 100, 40); err != nil {
		t.Fatal(err)
	}
	if st := r.client.Stats(); st.WireBytes != 40 {
		t.Errorf("WireBytes = %d, want 40 (alignment disabled)", st.WireBytes)
	}
}

func TestPushExpansionClampsToRegionEnd(t *testing.T) {
	r := newRig(t, 1)
	reg, err := r.client.Malloc("db", 100) // not a multiple of 64
	if err != nil {
		t.Fatal(err)
	}
	// Pushing [4,96) widens its 4-slot head chunk down to offset 0, but
	// the tail cannot align up to 128 — the region ends at 100.
	if err := r.client.Push(reg, 4, 92); err != nil {
		t.Fatal(err)
	}
	if st := r.client.Stats(); st.WireBytes != 96 {
		t.Errorf("WireBytes = %d, want 96 (head widened, tail clamped)", st.WireBytes)
	}
}

func TestPushBounds(t *testing.T) {
	r := newRig(t, 1)
	reg, err := r.client.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.client.Push(reg, 60, 8); !errors.Is(err, ErrBadRange) {
		t.Errorf("overflow push: %v", err)
	}
	if err := r.client.Push(reg, 65, 1); !errors.Is(err, ErrBadRange) {
		t.Errorf("past-end push: %v", err)
	}
	if err := r.client.Push(reg, 0, 0); err != nil {
		t.Errorf("empty push should be a no-op: %v", err)
	}
	if _, err := r.client.Fetch(reg, 63, 2); !errors.Is(err, ErrBadRange) {
		t.Errorf("overflow fetch: %v", err)
	}
}

func TestPushAllAndFetchInto(t *testing.T) {
	r := newRig(t, 2)
	reg, err := r.client.Malloc("db", 300)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reg.Local {
		reg.Local[i] = byte(i * 7)
	}
	want := append([]byte(nil), reg.Local...)
	if err := r.client.PushAll(reg); err != nil {
		t.Fatal(err)
	}
	// Lose the local copy, restore from mirrors.
	for i := range reg.Local {
		reg.Local[i] = 0
	}
	if err := r.client.FetchInto(reg, 0, reg.Size()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reg.Local, want) {
		t.Error("FetchInto did not restore the region")
	}
}

func TestFetchFailsOverToSecondMirror(t *testing.T) {
	r := newRig(t, 2)
	reg, err := r.client.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	copy(reg.Local, []byte("failover"))
	if err := r.client.PushAll(reg); err != nil {
		t.Fatal(err)
	}
	r.servers[0].Crash()
	got, err := r.client.Fetch(reg, 0, 8)
	if err != nil {
		t.Fatalf("fetch with one mirror down: %v", err)
	}
	if string(got) != "failover" {
		t.Errorf("fetch = %q", got)
	}
	r.servers[1].Crash()
	if _, err := r.client.Fetch(reg, 0, 8); !errors.Is(err, ErrAllMirrorsDown) {
		t.Errorf("all mirrors down: %v", err)
	}
}

func TestPushSurvivesMirrorDeath(t *testing.T) {
	r := newRig(t, 2)
	reg, err := r.client.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	copy(reg.Local, []byte("available"))
	if err := r.client.PushAll(reg); err != nil {
		t.Fatal(err)
	}
	if got := r.client.Live(); got != 2 {
		t.Fatalf("Live = %d, want 2", got)
	}

	// Node 0 dies. The next push degrades it and succeeds on node 1.
	r.servers[0].Crash()
	copy(reg.Local, []byte("still ok!"))
	if err := r.client.Push(reg, 0, 9); err != nil {
		t.Fatalf("push with one mirror down: %v", err)
	}
	if got := r.client.Live(); got != 1 {
		t.Errorf("Live = %d, want 1 after degradation", got)
	}
	got, err := r.servers[1].Read(reg.Handle(1).ID, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "still ok!" {
		t.Errorf("survivor holds %q", got)
	}

	// Both down: pushes fail loudly.
	r.servers[1].Crash()
	if err := r.client.Push(reg, 0, 9); !errors.Is(err, ErrAllMirrorsDown) {
		t.Errorf("push with all mirrors down: %v", err)
	}
}

func TestPushBadRangeNotMaskedByDegradation(t *testing.T) {
	// A server-side range rejection is a bug, not a node failure: it
	// must surface, and the healthy mirror must not be marked down.
	r := newRig(t, 1)
	reg, err := r.client.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the handle to force a server-side error on a live node.
	reg.handles[0].ID = 9999
	if err := r.client.Push(reg, 0, 8); err == nil {
		t.Fatal("push to bogus segment should fail")
	}
	if got := r.client.Live(); got != 1 {
		t.Errorf("healthy mirror was degraded: Live = %d", got)
	}
}

func TestConnectAfterLocalCrash(t *testing.T) {
	r := newRig(t, 2)
	reg, err := r.client.Malloc("perseas.db", 128)
	if err != nil {
		t.Fatal(err)
	}
	copy(reg.Local, []byte("persistent state"))
	if err := r.client.PushAll(reg); err != nil {
		t.Fatal(err)
	}

	// A new client (the restarted process) reconnects by name.
	re, err := r.client.Connect("perseas.db")
	if err != nil {
		t.Fatal(err)
	}
	if re.Size() != 128 {
		t.Fatalf("reconnected size = %d, want 128", re.Size())
	}
	if err := r.client.FetchInto(re, 0, 16); err != nil {
		t.Fatal(err)
	}
	if string(re.Local[:16]) != "persistent state" {
		t.Errorf("recovered %q", re.Local[:16])
	}
}

func TestConnectUnknownName(t *testing.T) {
	r := newRig(t, 1)
	if _, err := r.client.Connect("ghost"); err == nil {
		t.Error("connect to unknown region should fail")
	}
}

func TestConnectWithOneMirrorDown(t *testing.T) {
	r := newRig(t, 2)
	reg, err := r.client.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	copy(reg.Local, []byte("alive"))
	if err := r.client.PushAll(reg); err != nil {
		t.Fatal(err)
	}
	r.servers[0].Crash()
	re, err := r.client.Connect("db")
	if err != nil {
		t.Fatalf("connect with one mirror down: %v", err)
	}
	if err := r.client.FetchInto(re, 0, 5); err != nil {
		t.Fatal(err)
	}
	if string(re.Local[:5]) != "alive" {
		t.Errorf("recovered %q", re.Local[:5])
	}
	// Pushes keep flowing to the surviving mirror.
	if err := r.client.Push(re, 0, 5); err != nil {
		t.Errorf("push after partial connect: %v", err)
	}
}

func TestFreeReleasesAllMirrors(t *testing.T) {
	r := newRig(t, 2)
	reg, err := r.client.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.client.Free(reg); err != nil {
		t.Fatal(err)
	}
	for i, srv := range r.servers {
		if got := srv.Held(); got != 0 {
			t.Errorf("mirror %d still holds %d bytes", i, got)
		}
	}
}

func TestPing(t *testing.T) {
	r := newRig(t, 2)
	if err := r.client.Ping(); err != nil {
		t.Fatal(err)
	}
	r.servers[1].Crash()
	if err := r.client.Ping(); err == nil {
		t.Error("ping should fail with a mirror down")
	}
}

func TestPushChargesNetworkTime(t *testing.T) {
	r := newRig(t, 1)
	reg, err := r.client.Malloc("db", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	t0 := r.clock.Now()
	if err := r.client.Push(reg, 0, 64); err != nil {
		t.Fatal(err)
	}
	small := r.clock.Now() - t0
	t0 = r.clock.Now()
	if err := r.client.Push(reg, 0, 1<<20); err != nil {
		t.Fatal(err)
	}
	big := r.clock.Now() - t0
	if small <= 0 || big <= small {
		t.Errorf("costs not monotone: 64B=%v 1MiB=%v", small, big)
	}
}

func TestPushFetchRoundTripProperty(t *testing.T) {
	r := newRig(t, 2)
	reg, err := r.client.Malloc("prop", 2048)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, data []byte) bool {
		o := uint64(off) % 2048
		if uint64(len(data)) > 2048-o {
			data = data[:2048-o]
		}
		copy(reg.Local[o:], data)
		if err := r.client.Push(reg, o, uint64(len(data))); err != nil {
			return false
		}
		got, err := r.client.Fetch(reg, o, uint64(len(data)))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsReset(t *testing.T) {
	r := newRig(t, 1)
	reg, err := r.client.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.client.PushAll(reg); err != nil {
		t.Fatal(err)
	}
	if st := r.client.Stats(); st.Pushes != 1 {
		t.Errorf("Pushes = %d, want 1", st.Pushes)
	}
	r.client.ResetStats()
	if st := r.client.Stats(); st != (Stats{}) {
		t.Errorf("stats after reset = %+v", st)
	}
}
