package netram

import (
	"errors"
	"testing"

	"github.com/ics-forth/perseas/internal/transport"
)

// flaky wraps a transport and fails Write/WriteBatch on a schedule while
// staying pingable — a transient network hiccup, not a dead node.
type flaky struct {
	transport.Transport
	failNext int // fail this many upcoming writes
	writes   int
	failures int
}

func (f *flaky) Write(seg uint32, offset uint64, data []byte) error {
	f.writes++
	if f.failNext > 0 {
		f.failNext--
		f.failures++
		return errors.New("flaky: transient write failure")
	}
	return f.Transport.Write(seg, offset, data)
}

func (f *flaky) WriteBatch(writes []transport.BatchWrite) error {
	f.writes++
	if f.failNext > 0 {
		f.failNext--
		f.failures++
		return errors.New("flaky: transient batch failure")
	}
	if bw, ok := f.Transport.(transport.BatchWriter); ok {
		return bw.WriteBatch(writes)
	}
	for _, w := range writes {
		if err := f.Transport.Write(w.Seg, w.Offset, w.Data); err != nil {
			return err
		}
	}
	return nil
}

func newFlakyRig(t *testing.T) (*Client, *flaky, *rig) {
	t.Helper()
	r := newRig(t, 1)
	fl := &flaky{Transport: r.client.mirrors[0].T}
	c, err := NewClient([]Mirror{{Name: "flaky", T: fl}})
	if err != nil {
		t.Fatal(err)
	}
	return c, fl, r
}

func TestPushRetriesTransientFailure(t *testing.T) {
	c, fl, r := newFlakyRig(t)
	reg, err := c.Malloc("db", 256)
	if err != nil {
		t.Fatal(err)
	}
	copy(reg.Local, []byte("retried"))

	fl.failNext = 1 // the first attempt fails; the retry succeeds
	if err := c.Push(reg, 0, 7); err != nil {
		t.Fatalf("transient failure should be retried: %v", err)
	}
	if c.Live() != 1 {
		t.Error("pingable mirror was degraded")
	}
	seg, err := r.servers[0].Connect("db")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.servers[0].Read(seg.ID, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "retried" {
		t.Errorf("mirror holds %q", got)
	}

	// Two consecutive failures exhaust the single retry.
	fl.failNext = 2
	if err := c.Push(reg, 0, 7); err == nil {
		t.Error("persistent failure should surface after one retry")
	}
	if c.Live() != 1 {
		t.Error("alive-but-failing mirror must not be silently degraded")
	}
}

func TestPushManyRetriesTransientFailure(t *testing.T) {
	c, fl, r := newFlakyRig(t)
	reg, err := c.Malloc("db", 256)
	if err != nil {
		t.Fatal(err)
	}
	copy(reg.Local[64:], []byte("batchy"))

	fl.failNext = 1
	if err := c.PushMany(reg, []Range{{Offset: 64, Length: 6}}); err != nil {
		t.Fatalf("transient batch failure should be retried: %v", err)
	}
	seg, err := r.servers[0].Connect("db")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.servers[0].Read(seg.ID, 64, 6)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "batchy" {
		t.Errorf("mirror holds %q", got)
	}

	fl.failNext = 2
	if err := c.PushMany(reg, []Range{{Offset: 64, Length: 6}}); err == nil {
		t.Error("persistent batch failure should surface")
	}
}
