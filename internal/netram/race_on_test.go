//go:build race

package netram

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under -race because its instrumentation
// allocates.
const raceEnabled = true
