package netram

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

// newQuorumRig builds a w-of-n client whose LAST mirror's writes park
// on the returned gate until it is closed — a straggler that is alive
// (it answers pings and probes) but arbitrarily slow.
func newQuorumRig(t *testing.T, n, w int) (*Client, []*memserver.Server, chan struct{}) {
	t.Helper()
	clock := simclock.NewSim()
	gate := make(chan struct{})
	var servers []*memserver.Server
	var mirrors []Mirror
	for i := 0; i < n; i++ {
		srv := memserver.New(memserver.WithLabel("node" + string(rune('A'+i))))
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		var tp transport.Transport = tr
		if i == n-1 {
			tp = &gated{Transport: tr, gate: gate}
		}
		mirrors = append(mirrors, Mirror{Name: srv.Label(), T: tp})
	}
	c, err := NewClient(mirrors, WithQuorum(w))
	if err != nil {
		t.Fatal(err)
	}
	return c, servers, gate
}

func TestWithQuorumValidation(t *testing.T) {
	mirrors := func(n int) []Mirror {
		clock := simclock.NewSim()
		var ms []Mirror
		for i := 0; i < n; i++ {
			srv := memserver.New()
			tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
			if err != nil {
				t.Fatal(err)
			}
			ms = append(ms, Mirror{Name: "m", T: tr})
		}
		return ms
	}
	if _, err := NewClient(mirrors(3), WithQuorum(4)); err == nil {
		t.Error("quorum larger than the mirror count should be rejected")
	}
	if _, err := NewClient(mirrors(3), WithQuorum(-1)); err == nil {
		t.Error("negative quorum should be rejected")
	}
	if _, err := NewClient(mirrors(3), WithQuorum(2), WithSerialFanout()); err == nil {
		t.Error("quorum needs the parallel fan-out; serial + quorum should be rejected")
	}
	// w == n is the all-ack default: the quorum machinery must be off.
	c, err := NewClient(mirrors(3), WithQuorum(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Quorum(); got != 0 {
		t.Errorf("Quorum() = %d after WithQuorum(n); want 0 (all-ack default)", got)
	}
	c2, err := NewClient(mirrors(3), WithQuorum(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Quorum(); got != 2 {
		t.Errorf("Quorum() = %d, want 2", got)
	}
}

// TestQuorumPushReturnsBeforeStraggler pins the tentpole behaviour: a
// 2-of-3 push returns once two mirrors acked, while the third is still
// parked; the straggler catches up asynchronously and WaitCatchUp is
// the barrier after which every mirror holds the bytes.
func TestQuorumPushReturnsBeforeStraggler(t *testing.T) {
	c, servers, gate := newQuorumRig(t, 3, 2)
	reg, err := c.Malloc("db", 256)
	if err != nil {
		t.Fatal(err)
	}
	copy(reg.Local, []byte("quorum-fast"))

	// The push must return even though mirror C cannot complete: two
	// acks are a quorum. (A hang here is the bug this test pins.)
	done := make(chan error, 1)
	go func() { done <- c.Push(reg, 0, 11) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("quorum push: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("2-of-3 push did not return while the straggler was parked")
	}

	// The fast mirrors hold the bytes; the straggler does not yet.
	for i := 0; i < 2; i++ {
		if got := mirrorBytes(t, servers[i], "db", 0, 11); !bytes.Equal(got, []byte("quorum-fast")) {
			t.Errorf("fast mirror %d holds %q", i, got)
		}
	}
	if got := mirrorBytes(t, servers[2], "db", 0, 11); bytes.Equal(got, []byte("quorum-fast")) {
		t.Error("straggler already holds the bytes; the gate is not parking writes")
	}
	if got := c.CatchUpPending(2); got != 1 {
		t.Errorf("CatchUpPending(straggler) = %d, want 1", got)
	}
	if snap := c.Metrics().AckDepth.Snapshot(); snap.Count != 1 {
		t.Errorf("AckDepth observations = %d, want 1", snap.Count)
	}

	// Release the straggler: catch-up completes and the mirrors
	// converge.
	close(gate)
	c.WaitCatchUp()
	if got := c.CatchUpPending(2); got != 0 {
		t.Errorf("CatchUpPending after WaitCatchUp = %d, want 0", got)
	}
	if got := mirrorBytes(t, servers[2], "db", 0, 11); !bytes.Equal(got, []byte("quorum-fast")) {
		t.Errorf("straggler holds %q after catch-up", got)
	}
	if c.Live() != 3 {
		t.Errorf("Live = %d, want 3 (a slow mirror is not a dead mirror)", c.Live())
	}
}

// TestQuorumFenceTracksStragglers: a fence taken mid-flight reports
// not-done until the straggler retires, and the zero fence (and any
// fence from an all-ack client) is trivially done.
func TestQuorumFenceTracksStragglers(t *testing.T) {
	var zero Fence
	if !zero.Done() {
		t.Error("zero fence must be trivially done")
	}

	c, _, gate := newQuorumRig(t, 3, 2)
	if f := c.Fence(); !f.Done() {
		t.Error("fence with nothing in flight must be done")
	}
	reg, err := c.Malloc("db", 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Push(reg, 0, 64); err != nil {
		t.Fatal(err)
	}
	f := c.Fence()
	if f.Done() {
		t.Error("fence must cover the parked straggler write")
	}
	close(gate)
	c.WaitCatchUp()
	if !f.Done() {
		t.Error("fence must be done once the straggler retired")
	}
}

// TestQuorumCatchUpOverflowDegradesMirror: a mirror that falls more
// than catchUpQueueLen writes behind is degraded (handed to the
// guardian's rebuild path) instead of accumulating unbounded lag —
// and the commit path keeps going on the remaining quorum.
func TestQuorumCatchUpOverflowDegradesMirror(t *testing.T) {
	c, servers, gate := newQuorumRig(t, 3, 2)
	reg, err := c.Malloc("db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	// The parked worker holds one job; catchUpQueueLen more queue up;
	// the next dispatch overflows and degrades the mirror.
	for i := 0; i < catchUpQueueLen+6; i++ {
		off := uint64(i%32) * 64
		copy(reg.Local[off:off+8], []byte{byte(i), 1, 2, 3, 4, 5, 6, 7})
		if err := c.Push(reg, off, 8); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if got := c.Metrics().CatchUpOverflows.Load(); got == 0 {
		t.Error("catch-up overflow was never counted")
	}
	if got := c.Live(); got != 2 {
		t.Errorf("Live = %d, want 2 (overflowed mirror degraded)", got)
	}

	// Release the parked worker so the queue drains (queued jobs for
	// the now-down mirror are dropped, preserving its write prefix).
	close(gate)
	c.WaitCatchUp()
	for i := 0; i < 2; i++ {
		if got := mirrorBytes(t, servers[i], "db", 0, 8); len(got) != 8 {
			t.Errorf("survivor %d unreadable", i)
		}
	}
}

// TestQuorumRaceMirrorDeathAndRebuild is the quorum-mode twin of
// TestFanoutRaceMirrorDeathAndRebuild: concurrent quorum pushes while a
// mirror dies and is rebuilt onto a spare. The rebuild's drain-then-copy
// must leave every surviving mirror byte-identical with local memory —
// the race detector watches the catch-up queue against the topology
// lock.
func TestQuorumRaceMirrorDeathAndRebuild(t *testing.T) {
	r := newRig(t, 3, WithQuorum(2))
	reg, err := r.client.Malloc("db", 16384)
	if err != nil {
		t.Fatal(err)
	}

	spareSrv := memserver.New(memserver.WithLabel("spare"))
	spareTr, err := transport.NewInProc(spareSrv, sci.DefaultParams(), r.clock)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * 4096)
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				off := base + uint64(k%32)*64
				copy(reg.Local[off:off+64], bytes.Repeat([]byte{byte(g<<4 | k&0xf)}, 64))
				if err := r.client.PushMany(reg, []Range{{Offset: off, Length: 64}}); err != nil {
					t.Errorf("pusher %d: %v", g, err)
					return
				}
			}
		}(g)
	}

	time.Sleep(5 * time.Millisecond)
	if err := r.client.MarkMirrorDown(2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if err := r.client.RebuildMirror(2, Mirror{Name: "spare", T: spareTr}, nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()

	r.client.WaitCatchUp()
	mismatches, err := r.client.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mismatches {
		t.Errorf("post-rebuild divergence: %v", m)
	}
}

// errSeq fails write attempts with a scripted sequence of DISTINCT
// errors, so a test can tell which attempt's error surfaced. A nil
// entry (or an exhausted script) passes the write through.
type errSeq struct {
	transport.Transport
	errs []error
}

func (e *errSeq) next() error {
	if len(e.errs) == 0 {
		return nil
	}
	err := e.errs[0]
	e.errs = e.errs[1:]
	return err
}

func (e *errSeq) Write(seg uint32, offset uint64, data []byte) error {
	if err := e.next(); err != nil {
		return err
	}
	return e.Transport.Write(seg, offset, data)
}

func (e *errSeq) WriteBatch(writes []transport.BatchWrite) error {
	if err := e.next(); err != nil {
		return err
	}
	if bw, ok := e.Transport.(transport.BatchWriter); ok {
		return bw.WriteBatch(writes)
	}
	for _, w := range writes {
		if err := e.Transport.Write(w.Seg, w.Offset, w.Data); err != nil {
			return err
		}
	}
	return nil
}

func newErrSeqRig(t *testing.T) (*Client, *errSeq) {
	t.Helper()
	r := newRig(t, 1)
	es := &errSeq{Transport: r.client.mirrors[0].T}
	c, err := NewClient([]Mirror{{Name: "seq", T: es}})
	if err != nil {
		t.Fatal(err)
	}
	return c, es
}

// TestRetryErrorSurfacesFinalAttempt pins the retry-error attribution
// fix: when the single retry fails too, the error the caller sees is
// the RETRY's — the mirror's current failure mode — with the first
// attempt's error preserved as context, not the other way round.
func TestRetryErrorSurfacesFinalAttempt(t *testing.T) {
	c, es := newErrSeqRig(t)
	reg, err := c.Malloc("db", 256)
	if err != nil {
		t.Fatal(err)
	}
	errFirst := errors.New("transient connection reset")
	errRetry := errors.New("segment checksum mismatch")
	es.errs = []error{errFirst, errRetry}

	err = c.Push(reg, 0, 8)
	if err == nil {
		t.Fatal("push with both attempts failing must error")
	}
	if !errors.Is(err, errRetry) {
		t.Errorf("surfaced error is not the retry's: %v", err)
	}
	if errors.Is(err, errFirst) {
		t.Errorf("stale first-attempt error surfaced as the failure: %v", err)
	}
	if !strings.Contains(err.Error(), errFirst.Error()) {
		t.Errorf("first attempt's error lost from the context: %v", err)
	}
}

// TestBatchRetryErrorSurfacesFinalAttempt is the same regression pinned
// on the batched (PushMany) path.
func TestBatchRetryErrorSurfacesFinalAttempt(t *testing.T) {
	c, es := newErrSeqRig(t)
	reg, err := c.Malloc("db", 256)
	if err != nil {
		t.Fatal(err)
	}
	errFirst := errors.New("transient batch stall")
	errRetry := errors.New("batch frame rejected")
	es.errs = []error{errFirst, errRetry}

	err = c.PushMany(reg, []Range{{Offset: 0, Length: 8}})
	if err == nil {
		t.Fatal("batch push with both attempts failing must error")
	}
	if !errors.Is(err, errRetry) {
		t.Errorf("surfaced error is not the retry's: %v", err)
	}
	if errors.Is(err, errFirst) {
		t.Errorf("stale first-attempt error surfaced as the failure: %v", err)
	}
	if !strings.Contains(err.Error(), errFirst.Error()) {
		t.Errorf("first attempt's error lost from the context: %v", err)
	}
}

// TestStragglerGaugeClearsOnSerialDegrade pins the gauge-staleness fix:
// once the client degrades to a single mirror (the serial path), the
// fanout_straggler_ns gauge must drop to zero instead of reporting the
// last parallel dispatch's spread forever.
func TestStragglerGaugeClearsOnSerialDegrade(t *testing.T) {
	r := newRig(t, 2)
	reg, err := r.client.Malloc("db", 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.client.Push(reg, 0, 64); err != nil {
		t.Fatal(err)
	}
	// Simulate a recorded spread, then lose a mirror: the next push
	// runs serially and must clear the gauge.
	r.client.straggler.Store(42)
	if err := r.client.MarkMirrorDown(1); err != nil {
		t.Fatal(err)
	}
	if err := r.client.Push(reg, 0, 64); err != nil {
		t.Fatal(err)
	}
	if got := r.client.straggler.Load(); got != 0 {
		t.Errorf("straggler gauge = %d after serial push, want 0", got)
	}
}

// TestStragglerGaugeClearsOnRebuild: a topology change (rebuild onto a
// spare) invalidates the last measured spread; the gauge resets.
func TestStragglerGaugeClearsOnRebuild(t *testing.T) {
	r := newRig(t, 2)
	reg, err := r.client.Malloc("db", 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.client.PushAll(reg); err != nil {
		t.Fatal(err)
	}
	if err := r.client.MarkMirrorDown(1); err != nil {
		t.Fatal(err)
	}
	spare := memserver.New(memserver.WithLabel("spare"))
	spareTr, err := transport.NewInProc(spare, sci.DefaultParams(), r.clock)
	if err != nil {
		t.Fatal(err)
	}
	r.client.straggler.Store(42)
	if err := r.client.RebuildMirror(1, Mirror{Name: "spare", T: spareTr}, nil); err != nil {
		t.Fatal(err)
	}
	if got := r.client.straggler.Load(); got != 0 {
		t.Errorf("straggler gauge = %d after rebuild, want 0", got)
	}
}
