// Parallel recovery support: the operations core's crash recovery uses
// to make its wall-clock cost scale with mirrors and regions instead of
// summing over them.
//
// ConnectMany reconnects several named regions concurrently while
// keeping the client's region list in input order, so recovery built at
// any parallelism installs regions deterministically. FetchIntoStriped
// splits a region into read-chunk pieces and stripes them round-robin
// across the mirrors holding the segment, aggregating NIC bandwidth the
// way the paper's recovery argument assumes a network of workstations
// can. ZeroRangeAcked clears a remote range without shipping a payload
// of zeroes — the transport does the zeroing server-side when it can.
package netram

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/ics-forth/perseas/internal/transport"
)

// ConnectMany re-maps the named regions after a crash, connecting up to
// workers names concurrently. The successfully connected prefix of
// names is appended to the client's region list in input order —
// exactly the order a serial Connect loop would have produced — and
// returned; the error that stopped the prefix (nil if every name
// connected) rides along. Connections past the first failure are
// released, so a missing name mid-list leaves nothing attached.
//
// With workers <= 1 the names connect serially on the caller's
// goroutine, still under a single topology lock acquisition.
func (c *Client) ConnectMany(names []string, workers int) ([]*Region, error) {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	regs := make([]*Region, len(names))
	errs := make([]error, len(names))
	if workers > len(names) {
		workers = len(names)
	}
	if workers <= 1 {
		for i, name := range names {
			regs[i], errs[i] = c.connectRegion(name)
			if errs[i] != nil {
				break
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(names) {
						return
					}
					regs[i], errs[i] = c.connectRegion(names[i])
				}
			}()
		}
		wg.Wait()
	}
	n := len(names)
	var stop error
	for i, err := range errs {
		if err != nil {
			n, stop = i, err
			break
		}
	}
	for i := n; i < len(names); i++ {
		if regs[i] != nil {
			c.releaseHandles(regs[i], len(c.mirrors))
			regs[i] = nil
		}
	}
	c.regions = append(c.regions, regs[:n]...)
	return regs[:n:n], stop
}

// FetchIntoStriped restores r.Local in full, striping read-chunk pieces
// round-robin across every mirror holding the segment so the transfer
// rides the aggregate bandwidth of the surviving nodes. Each chunk
// falls over to the remaining mirrors individually before failing the
// fetch. Safe during recovery for the same reason FetchInto is: any
// byte on which replicas may still disagree belongs to a head
// transaction of some undo slot, and recovery rolls back or repairs
// exactly those ranges after the fetch.
//
// With workers <= 1 it is FetchInto(r, 0, r.Size()) verbatim.
func (c *Client) FetchIntoStriped(r *Region, workers int) error {
	if workers <= 1 {
		return c.FetchInto(r, 0, r.Size())
	}
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	start := c.clock.Now()
	var eligible []int
	for i := range c.mirrors {
		if r.handles[i].ID != 0 {
			eligible = append(eligible, i)
		}
	}
	if len(eligible) == 0 {
		return fmt.Errorf("netram: striped fetch %q: %w", r.Name, ErrAllMirrorsDown)
	}
	size := r.Size()
	nChunks := int((size + c.readChunk - 1) / c.readChunk)
	if workers > nChunks {
		workers = nChunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				ci := int(next.Add(1)) - 1
				if ci >= nChunks {
					return
				}
				off := uint64(ci) * c.readChunk
				n := size - off
				if n > c.readChunk {
					n = c.readChunk
				}
				if err := c.fetchChunkStriped(r, eligible, ci, off, n); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	c.metrics.FetchLatency.ObserveDuration(c.clock.Now() - start)
	return nil
}

// fetchChunkStriped reads one chunk into r.Local[off:off+n] from the
// chunk's round-robin mirror, trying the other eligible mirrors on
// failure. Chunks are disjoint, so concurrent callers never overlap in
// the local buffer.
func (c *Client) fetchChunkStriped(r *Region, eligible []int, ci int, off, n uint64) error {
	var lastErr error
	for a := 0; a < len(eligible); a++ {
		mi := eligible[(ci+a)%len(eligible)]
		m := c.mirrors[mi]
		data, err := c.readChunked(m, r.handles[mi].ID, off, n)
		if err != nil {
			lastErr = fmt.Errorf("netram: fetch from mirror %s: %w", m.Name, err)
			continue
		}
		copy(r.Local[off:off+n], data)
		c.metrics.Fetches.Inc()
		c.metrics.FetchedBytes.Add(n)
		return nil
	}
	return fmt.Errorf("netram: striped fetch %q chunk at %d: %w (last: %v)",
		r.Name, off, ErrAllMirrorsDown, lastErr)
}

// ZeroRangeAcked zeroes r[offset:offset+n] on every live mirror holding
// the segment, joined on all of them (the PushAcked contract). Mirrors
// whose transport can fill server-side pay one small request regardless
// of n; the rest receive chunked writes of zeroes. The caller's local
// bytes for the range must already be zero — recovery's republish
// satisfies this because a freshly connected region starts zeroed and
// only the fetched prefix is ever copied in.
func (c *Client) ZeroRangeAcked(r *Region, offset, n uint64) error {
	if err := r.checkRange(offset, n); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	var zeroes []byte
	for i, m := range c.mirrors {
		if r.handles[i].ID == 0 || c.isDown(i) {
			continue
		}
		if f, ok := m.T.(transport.Filler); ok {
			if err := f.Fill(r.handles[i].ID, offset, n); err != nil {
				if pingErr := m.T.Ping(); pingErr != nil {
					// Node gone: absorbed by degradation, like a push.
					c.markDown(i)
					continue
				}
				return fmt.Errorf("netram: zero %q on mirror %s: %w", r.Name, m.Name, err)
			}
			c.metrics.Pushes.Inc()
			continue
		}
		if zeroes == nil {
			step := n
			if step > c.readChunk {
				step = c.readChunk
			}
			zeroes = make([]byte, step)
		}
		for done := uint64(0); done < n; {
			step := n - done
			if step > uint64(len(zeroes)) {
				step = uint64(len(zeroes))
			}
			if _, err := c.writeWithRetry(m, i, r.handles[i].ID, offset+done, zeroes[:step]); err != nil {
				if c.isDown(i) {
					break // degraded mid-write; survivors carry the range
				}
				return fmt.Errorf("netram: zero %q on mirror %s: %w", r.Name, m.Name, err)
			}
			c.metrics.WireBytes.Add(step)
			done += step
		}
		c.metrics.Pushes.Inc()
	}
	return nil
}
