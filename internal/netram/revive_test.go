package netram

import (
	"errors"
	"testing"

	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/transport"
)

func TestReviveRestoresReplication(t *testing.T) {
	r := newRig(t, 2)
	reg, err := r.client.Malloc("db", 256)
	if err != nil {
		t.Fatal(err)
	}
	copy(reg.Local, []byte("replicated state"))
	if err := r.client.PushAll(reg); err != nil {
		t.Fatal(err)
	}

	// Mirror 0 dies and is degraded; commits continue on mirror 1.
	r.servers[0].Crash()
	copy(reg.Local, []byte("REPLICATED STATE"))
	if err := r.client.Push(reg, 0, 16); err != nil {
		t.Fatal(err)
	}
	if got := r.client.Live(); got != 1 {
		t.Fatalf("Live = %d, want 1", got)
	}

	// The node is repaired (empty memory) and rejoins.
	r.servers[0].Restart()
	if err := r.client.Revive(0); err != nil {
		t.Fatalf("revive: %v", err)
	}
	if got := r.client.Live(); got != 2 {
		t.Errorf("Live = %d, want 2 after revive", got)
	}

	// The revived mirror holds the full current contents.
	seg, err := r.servers[0].Connect("db")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.servers[0].Read(seg.ID, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "REPLICATED STATE" {
		t.Errorf("revived mirror holds %q", got)
	}

	// And it receives subsequent pushes.
	copy(reg.Local, []byte("post-revive data"))
	if err := r.client.Push(reg, 0, 16); err != nil {
		t.Fatal(err)
	}
	got, err = r.servers[0].Read(seg.ID, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "post-revive data" {
		t.Errorf("revived mirror missed a push: %q", got)
	}
}

func TestReviveWhileNodeStillDown(t *testing.T) {
	r := newRig(t, 2)
	if _, err := r.client.Malloc("db", 64); err != nil {
		t.Fatal(err)
	}
	r.servers[1].Crash()
	if err := r.client.Revive(1); err == nil {
		t.Error("revive of a dead node should fail")
	}
	if err := r.client.Revive(7); err == nil {
		t.Error("revive of a nonexistent mirror should fail")
	}
}

func TestReviveNodeThatKeptItsMemory(t *testing.T) {
	// A network partition, not a crash: the node still holds the
	// segments. Revive reconnects and resyncs without re-allocating.
	r := newRig(t, 2)
	reg, err := r.client.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	copy(reg.Local, []byte("fresh"))
	if err := r.client.PushAll(reg); err != nil {
		t.Fatal(err)
	}
	// Simulate partition by marking it down manually via a failed push.
	r.servers[0].Crash()
	_ = r.client.Push(reg, 0, 5)
	r.servers[0].Restart()

	// After Restart the memserver has lost memory (crash semantics), so
	// this exercises the re-malloc path; now test the reconnect path on
	// the OTHER mirror: free nothing, just revive a healthy one.
	if err := r.client.Revive(0); err != nil {
		t.Fatal(err)
	}
	if err := r.client.Revive(1); err != nil {
		t.Fatalf("revive of a healthy mirror should be a resync no-op: %v", err)
	}
	mismatches, err := r.client.Verify(reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(mismatches) != 0 {
		t.Errorf("mirrors diverge after revive: %v", mismatches)
	}
}

func TestReplaceMirrorMigratesToNewNode(t *testing.T) {
	r := newRig(t, 2)
	reg, err := r.client.Malloc("db", 256)
	if err != nil {
		t.Fatal(err)
	}
	copy(reg.Local, []byte("migrate me"))
	if err := r.client.PushAll(reg); err != nil {
		t.Fatal(err)
	}

	// Node 0's owner reclaims it; a fresh machine joins in its place.
	newcomer := memserver.New(memserver.WithLabel("newcomer"))
	tr, err := transport.NewInProc(newcomer, sci.DefaultParams(), r.clock)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.client.ReplaceMirror(0, Mirror{Name: "newcomer", T: tr}); err != nil {
		t.Fatal(err)
	}
	if got := r.client.Live(); got != 2 {
		t.Errorf("Live = %d, want 2", got)
	}
	// The newcomer carries the data and receives pushes.
	seg, err := newcomer.Connect("db")
	if err != nil {
		t.Fatal(err)
	}
	got, err := newcomer.Read(seg.ID, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "migrate me" {
		t.Errorf("newcomer holds %q", got)
	}
	copy(reg.Local, []byte("post-swap!"))
	if err := r.client.Push(reg, 0, 10); err != nil {
		t.Fatal(err)
	}
	got, _ = newcomer.Read(seg.ID, 0, 10)
	if string(got) != "post-swap!" {
		t.Errorf("newcomer missed a push: %q", got)
	}

	// Recovery can now be served by the newcomer alone.
	r.servers[1].Crash()
	data, err := r.client.Fetch(reg, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "post-swap!" {
		t.Errorf("fetch via newcomer = %q", data)
	}
}

func TestReplaceMirrorValidation(t *testing.T) {
	r := newRig(t, 1)
	if _, err := r.client.Malloc("db", 64); err != nil {
		t.Fatal(err)
	}
	if err := r.client.ReplaceMirror(5, Mirror{}); err == nil {
		t.Error("bad index should fail")
	}
	if err := r.client.ReplaceMirror(0, Mirror{Name: "nil"}); err == nil {
		t.Error("nil transport should fail")
	}
	dead := memserver.New()
	dead.Crash()
	tr, err := transport.NewInProc(dead, sci.DefaultParams(), r.clock)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.client.ReplaceMirror(0, Mirror{Name: "dead", T: tr}); err == nil {
		t.Error("dead replacement should fail")
	}
	// The original mirror still serves after the failed swap.
	reg, err := r.client.Malloc("still-works", 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.client.PushAll(reg); err != nil {
		t.Errorf("client unusable after failed replacement: %v", err)
	}
}

func TestVerifyDetectsDivergence(t *testing.T) {
	r := newRig(t, 2)
	reg, err := r.client.Malloc("db", 128)
	if err != nil {
		t.Fatal(err)
	}
	copy(reg.Local, []byte("agreed"))
	if err := r.client.PushAll(reg); err != nil {
		t.Fatal(err)
	}
	mismatches, err := r.client.Verify(reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(mismatches) != 0 {
		t.Fatalf("clean mirrors reported %v", mismatches)
	}

	// Corrupt one mirror behind the client's back.
	seg, err := r.servers[1].Connect("db")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.servers[1].Write(seg.ID, 3, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	mismatches, err = r.client.Verify(reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(mismatches) != 1 {
		t.Fatalf("mismatches = %v, want exactly one", mismatches)
	}
	if mismatches[0].Offset != 3 || mismatches[0].Region != "db" {
		t.Errorf("mismatch = %+v", mismatches[0])
	}
	if mismatches[0].Error() == "" {
		t.Error("mismatch should format as an error")
	}
}

func TestVerifyAllMirrorsDown(t *testing.T) {
	r := newRig(t, 1)
	reg, err := r.client.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	r.servers[0].Crash()
	if _, err := r.client.Verify(reg); !errors.Is(err, ErrAllMirrorsDown) && err == nil {
		t.Errorf("verify with mirrors down: %v", err)
	}
}

func TestFreeUnregistersFromRevive(t *testing.T) {
	r := newRig(t, 2)
	keep, err := r.client.Malloc("keep", 64)
	if err != nil {
		t.Fatal(err)
	}
	gone, err := r.client.Malloc("gone", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.client.Free(gone); err != nil {
		t.Fatal(err)
	}
	r.servers[0].Crash()
	_ = r.client.Push(keep, 0, 4) // degrade mirror 0
	r.servers[0].Restart()
	if err := r.client.Revive(0); err != nil {
		t.Fatal(err)
	}
	// Only the live region was re-exported.
	if _, err := r.servers[0].Connect("keep"); err != nil {
		t.Errorf("keep missing after revive: %v", err)
	}
	if _, err := r.servers[0].Connect("gone"); err == nil {
		t.Error("freed region resurrected by revive")
	}
}
