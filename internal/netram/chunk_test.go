package netram

// Regression tests for two bugs on the recovery/audit path:
//
//  1. Fetch and Verify used to cast the transfer length to uint32 in a
//     single Read, silently truncating regions of 4 GiB and beyond (and
//     exceeding the wire frame limit long before that). Both now split
//     transfers at the client's read chunk; these tests drive the
//     splitting with a tiny chunk so no gigabyte allocations are needed.
//  2. Connect used to return early when a mirror disagreed on a region's
//     size, leaking the segment references already taken on the mirrors
//     that had answered.

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"

	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

// countingReads wraps a transport and counts Read calls, optionally
// failing every read after the first failAfter calls.
type countingReads struct {
	transport.Transport
	reads     atomic.Int64
	failAfter int64 // 0 = never fail
}

func (c *countingReads) Read(seg uint32, offset uint64, n uint32) ([]byte, error) {
	calls := c.reads.Add(1)
	if c.failAfter > 0 && calls > c.failAfter {
		return nil, errors.New("injected read failure")
	}
	return c.Transport.Read(seg, offset, n)
}

// newCountingRig builds a client over nMirrors in-process nodes whose
// transports count reads.
func newCountingRig(t *testing.T, nMirrors int, opts ...Option) (*Client, []*memserver.Server, []*countingReads) {
	t.Helper()
	clock := simclock.NewSim()
	var mirrors []Mirror
	var servers []*memserver.Server
	var counters []*countingReads
	for i := 0; i < nMirrors; i++ {
		srv := memserver.New(memserver.WithLabel("node" + string(rune('A'+i))))
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
		if err != nil {
			t.Fatal(err)
		}
		cr := &countingReads{Transport: tr}
		mirrors = append(mirrors, Mirror{Name: srv.Label(), T: cr})
		servers = append(servers, srv)
		counters = append(counters, cr)
	}
	c, err := NewClient(mirrors, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c, servers, counters
}

func TestFetchChunked(t *testing.T) {
	client, _, counters := newCountingRig(t, 1, WithReadChunk(8))
	reg, err := client.Malloc("db", 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reg.Local {
		reg.Local[i] = byte(i * 7)
	}
	if err := client.PushAll(reg); err != nil {
		t.Fatal(err)
	}

	counters[0].reads.Store(0)
	got, err := client.Fetch(reg, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, reg.Local) {
		t.Fatal("chunked fetch returned wrong bytes")
	}
	// 100 bytes at 8 per read = 13 reads (12 full + 1 tail of 4).
	if n := counters[0].reads.Load(); n != 13 {
		t.Errorf("fetch issued %d reads, want 13 chunks", n)
	}

	// A fetch within one chunk stays a single read.
	counters[0].reads.Store(0)
	if _, err := client.Fetch(reg, 10, 5); err != nil {
		t.Fatal(err)
	}
	if n := counters[0].reads.Load(); n != 1 {
		t.Errorf("small fetch issued %d reads, want 1", n)
	}

	st := client.Stats()
	if st.Fetches != 2 || st.FetchedBytes != 105 {
		t.Errorf("stats = %+v, want 2 fetches / 105 bytes", st)
	}
}

func TestFetchChunkedFailsOverWholeMirror(t *testing.T) {
	client, _, counters := newCountingRig(t, 2, WithReadChunk(8))
	reg, err := client.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reg.Local {
		reg.Local[i] = byte(i)
	}
	if err := client.PushAll(reg); err != nil {
		t.Fatal(err)
	}

	// Mirror 0 dies after 3 chunk reads; the fetch must restart on
	// mirror 1 from the beginning — never stitching two nodes' bytes.
	counters[0].reads.Store(0)
	counters[0].failAfter = 3
	got, err := client.Fetch(reg, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, reg.Local) {
		t.Fatal("failover fetch returned wrong bytes")
	}
	if n := counters[1].reads.Load(); n != 8 {
		t.Errorf("mirror 1 served %d reads, want all 8 chunks", n)
	}
}

func TestVerifyChunked(t *testing.T) {
	client, servers, counters := newCountingRig(t, 1, WithReadChunk(8))
	reg, err := client.Malloc("db", 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reg.Local {
		reg.Local[i] = byte(i)
	}
	if err := client.PushAll(reg); err != nil {
		t.Fatal(err)
	}

	counters[0].reads.Store(0)
	mm, err := client.Verify(reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(mm) != 0 {
		t.Fatalf("clean region reports mismatches: %v", mm)
	}
	if n := counters[0].reads.Load(); n != 13 {
		t.Errorf("verify issued %d reads, want 13 chunks", n)
	}

	// Corrupt one byte on the mirror, beyond the first chunk: the
	// mismatch offset must be exact even though the audit is chunked.
	if err := servers[0].Write(reg.Handle(0).ID, 77, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	mm, err = client.Verify(reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(mm) != 1 || mm[0].Offset != 77 {
		t.Fatalf("mismatches = %+v, want one at offset 77", mm)
	}
}

func TestConnectSizeMismatchReleasesHandles(t *testing.T) {
	// Plain rig: the transports must expose Disconnector for the
	// release path (a wrapper embedding the Transport interface would
	// mask it).
	rg := newRig(t, 2)
	client, servers := rg.client, rg.servers
	// The mirrors disagree on the region's size — the client process
	// that crashed mid-resize left them inconsistent.
	if _, err := servers[0].Malloc("db", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := servers[1].Malloc("db", 128); err != nil {
		t.Fatal(err)
	}

	if _, err := client.Connect("db"); err == nil {
		t.Fatal("Connect should fail on a size disagreement")
	}

	// The failed Connect must leave no stray references behind: every
	// segment on every mirror shows zero connections.
	for i, srv := range servers {
		for _, info := range srv.List() {
			if info.Conns != 0 {
				t.Errorf("mirror %d segment %q leaked %d reference(s) after failed Connect",
					i, info.Name, info.Conns)
			}
		}
	}
}
